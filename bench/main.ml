(* The experiment harness: one runner per table/figure/claim of the
   paper (see DESIGN.md and EXPERIMENTS.md for the index).

   Usage:
     bench/main.exe            run every experiment
     bench/main.exe e5 e8      run selected experiments
     bench/main.exe bechamel   also run the wall-time micro-bench suite
     bench/main.exe perf       interpreter-throughput bench; writes
                               BENCH_interp.json
     bench/main.exe perf-vm    copy-on-write fork/exec bench; writes
                               BENCH_vm.json
     bench/main.exe perf-page  demand-paging bench: multi-MB /shared
                               working set under shrinking RAM budgets;
                               writes BENCH_page.json
     bench/main.exe perf-cluster
                               cluster rounds over OCaml 5 domains at 1/2/4
                               domains; gates cost/console identity, writes
                               BENCH_cluster.json
     bench/main.exe perf-net   cluster traffic through the network
                               profiles (ideal/lan/wan/lossy): gossip
                               rwhod + per-machine users; gates trace
                               identity across domain counts, writes
                               BENCH_net.json
     bench/main.exe crash-sweep [seeds]
                               deterministic fault sweep: per seed, drive
                               /shared op traffic (and a cluster broadcast
                               burst with the net sites armed) under a
                               PRNG fault plan and require every recovery
                               fsck to come back clean *)

module Kernel = Hemlock_os.Kernel
module Proc = Hemlock_os.Proc
module Cpu = Hemlock_isa.Cpu
module Fs = Hemlock_sfs.Fs
module Path = Hemlock_sfs.Path
module Layout = Hemlock_vm.Layout
module Segment = Hemlock_vm.Segment
module Vm_object = Hemlock_vm.Vm_object
module As = Hemlock_vm.Address_space
module Prot = Hemlock_vm.Prot
module Stats = Hemlock_util.Stats
module Trace = Hemlock_isa.Trace
module Objfile = Hemlock_obj.Objfile
module Cc = Hemlock_cc.Cc
module Lds = Hemlock_linker.Lds
module Ldl = Hemlock_linker.Ldl
module Search = Hemlock_linker.Search
module Sharing = Hemlock_linker.Sharing
module Modinst = Hemlock_linker.Modinst
module Reloc_engine = Hemlock_linker.Reloc_engine
module Link_plan = Hemlock_linker.Link_plan
module Stable_link = Hemlock_linker.Stable_link
module Plt = Hemlock_baseline.Plt
module Channels = Hemlock_baseline.Channels
module Rwho = Hemlock_apps.Rwho
module Presto = Hemlock_apps.Presto
module Symtab = Hemlock_apps.Symtab
module Xfig = Hemlock_apps.Xfig
module Modgen = Hemlock_apps.Modgen

let boot () =
  let k = Kernel.create () in
  let ldl = Ldl.install k in
  Hemlock_runtime.Sync.install k;
  (k, ldl)

let write_obj k path obj = Fs.write_file (Kernel.fs k) path (Objfile.serialize obj)

let install_c k path src = write_obj k path (Cc.to_object ~name:(Filename.basename path) src)

let ctx_in k dir ?(env = []) () =
  { Search.fs = Kernel.fs k; cwd = Path.of_string ~cwd:Path.root dir; env }

let link k ~dir ~specs out =
  Lds.link (ctx_in k dir ())
    ~specs:(List.map (fun (n, c) -> { Lds.sp_name = n; sp_class = c }) specs)
    ~output:out ()

let run_native k f =
  let result = ref None in
  ignore
    (Kernel.spawn_native k ~name:"bench" (fun k proc ->
         result := Some (f k proc);
         0));
  Kernel.run k;
  Option.get !result

let header title =
  Printf.printf "\n==================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==================================================================\n"

(* ---------------------------------------------------------------------- *)
(* E1: Table 1 — sharing-class semantics, observed                          *)
(* ---------------------------------------------------------------------- *)

let counter_src = {|
int counter;
int bump() { counter = counter + 1; return counter; }
|}

let bump_main = {|
extern int bump();
int main() { return bump(); }
|}

let e1 () =
  header "E1 (Table 1): class creation and link times, observed on live processes";
  Printf.printf "%-16s | %-16s | %-22s | %-8s\n" "Sharing class" "When linked"
    "New instance/process" "Portion";
  Printf.printf "-----------------+------------------+------------------------+---------\n";
  List.iter
    (fun cls ->
      let k, ldl = boot () in
      let fs = Kernel.fs k in
      Fs.mkdir fs "/shared/lib";
      install_c k "/shared/lib/counter.o" counter_src;
      Fs.mkdir fs "/home/t";
      install_c k "/home/t/main.o" bump_main;
      ignore
        (link k ~dir:"/home/t"
           ~specs:[ ("main.o", Sharing.Static_private); ("/shared/lib/counter.o", cls) ]
           "prog");
      (* "When linked": does the created module file exist before any
         process runs (static link time) or only after (run time)?
         Private classes never create a file at all. *)
      let file_after_link = Fs.exists fs "/shared/lib/counter" in
      ignore (Kernel.spawn_exec k "/home/t/prog");
      Kernel.run k;
      let p2 = Kernel.spawn_exec k "/home/t/prog" in
      Kernel.run k;
      let code p = match p.Proc.state with Proc.Zombie c -> c | _ -> -99 in
      (* "New instance per process": the second process sees 1 iff it got
         its own fresh counter. *)
      let fresh_instance = code p2 = 1 in
      let when_linked =
        match Sharing.link_time cls with
        | Sharing.Static_link_time ->
          if Sharing.is_public cls && not file_after_link then "run time(!)"
          else "static link time"
        | Sharing.Run_time -> "run time"
      in
      (* "Portion": where did the module land? *)
      let portion =
        match Ldl.instances ldl p2 with
        | inst :: _ -> if Layout.is_public inst.Modinst.inst_base then "public" else "private"
        | [] -> if Sharing.is_public cls then "public" else "private(image)"
      in
      Printf.printf "%-16s | %-16s | %-22s | %-8s\n" (Sharing.to_string cls) when_linked
        (if fresh_instance then "yes" else "no") portion)
    [ Sharing.Static_private; Sharing.Dynamic_private; Sharing.Static_public; Sharing.Dynamic_public ];
  Printf.printf
    "\n(static-private shown as 'private(image)': it is combined into the load image)\n"

(* ---------------------------------------------------------------------- *)
(* E2: Figure 1 — building a program with linked-in shared objects          *)
(* ---------------------------------------------------------------------- *)

let e2 () =
  header "E2 (Figure 1): two programs built against the same shared .o";
  let k, ldl = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/shared/lib";
  install_c k "/shared/lib/shared1.o" counter_src;
  Fs.mkdir fs "/home/p1";
  Fs.mkdir fs "/home/p2";
  install_c k "/home/p1/main.o"
    {|extern int bump(); int main() { print_str("program1 sees "); print_int(bump()); print_str("\n"); return 0; }|};
  install_c k "/home/p2/main.o"
    {|extern int bump(); int main() { print_str("program2 sees "); print_int(bump()); print_str("\n"); return 0; }|};
  ignore
    (link k ~dir:"/home/p1"
       ~specs:
         [ ("main.o", Sharing.Static_private); ("/shared/lib/shared1.o", Sharing.Dynamic_public) ]
       "prog1");
  ignore
    (link k ~dir:"/home/p2"
       ~specs:
         [ ("main.o", Sharing.Static_private); ("/shared/lib/shared1.o", Sharing.Dynamic_public) ]
       "prog2");
  Printf.printf "after lds: module file exists? %b  (created by ldl on first use)\n"
    (Fs.exists fs "/shared/lib/shared1");
  ignore (Kernel.spawn_exec k "/home/p1/prog1");
  Kernel.run k;
  Printf.printf "after prog1: module file exists? %b\n" (Fs.exists fs "/shared/lib/shared1");
  ignore (Kernel.spawn_exec k "/home/p2/prog2");
  Kernel.run k;
  ignore (Kernel.spawn_exec k "/home/p1/prog1");
  Kernel.run k;
  print_string (Kernel.console k);
  Printf.printf "ldl warnings: %s\n"
    (match Ldl.warnings ldl with [] -> "(none)" | w -> String.concat "; " w)

(* ---------------------------------------------------------------------- *)
(* E3: Figure 2 — hierarchical inclusion with scoped linking                *)
(* ---------------------------------------------------------------------- *)

let e3 () =
  header "E3 (Figure 2): scoped linking over the A..G module DAG";
  let k, _ldl = boot () in
  let fs = Kernel.fs k in
  (* The figure's structure: the executable links A (shared), B, C;
     A pulls D (private) and E (shared); D pulls G; C pulls F and E;
     F pulls its own, different G.  The two G.o files live in different
     directories and export the same symbol. *)
  List.iter (Fs.mkdir fs) [ "/shared/sysA"; "/shared/sysC"; "/home/fig2" ];
  let ctx = ctx_in k "/" () in
  install_c k "/shared/sysA/g.o" "int g_value() { return 1000; }";
  install_c k "/shared/sysA/d.o" "extern int g_value(); int d_fn() { return g_value() + 1; }";
  Lds.embed_metadata ctx ~template:"/shared/sysA/d.o" ~modules:[ "g.o" ]
    ~search_path:[ "/shared/sysA" ];
  install_c k "/shared/sysA/e.o" "int e_fn() { return 50; }";
  install_c k "/shared/sysA/a.o"
    "extern int d_fn(); extern int e_fn(); int a_fn() { return d_fn() + e_fn(); }";
  Lds.embed_metadata ctx ~template:"/shared/sysA/a.o" ~modules:[ "d.o"; "e.o" ]
    ~search_path:[ "/shared/sysA" ];
  install_c k "/shared/sysC/g.o" "int g_value() { return 2000; }";
  install_c k "/shared/sysC/f.o" "extern int g_value(); int f_fn() { return g_value() + 2; }";
  Lds.embed_metadata ctx ~template:"/shared/sysC/f.o" ~modules:[ "g.o" ]
    ~search_path:[ "/shared/sysC" ];
  install_c k "/shared/sysC/c.o"
    "extern int f_fn(); extern int e_fn(); int c_fn() { return f_fn() + e_fn(); }";
  Lds.embed_metadata ctx ~template:"/shared/sysC/c.o" ~modules:[ "f.o"; "e.o" ]
    ~search_path:[ "/shared/sysC"; "/shared/sysA" ];
  install_c k "/home/fig2/b.o" "int b_fn() { return 7; }";
  install_c k "/home/fig2/main.o"
    {|
extern int a_fn();
extern int b_fn();
extern int c_fn();
int main() {
  print_str("A (via its own G): ");
  print_int(a_fn());
  print_str("\nC (via its own G): ");
  print_int(c_fn());
  print_str("\nB (private):       ");
  print_int(b_fn());
  print_str("\n");
  return 0;
}|};
  ignore
    (link k ~dir:"/home/fig2"
       ~specs:
         [
           ("main.o", Sharing.Static_private);
           ("b.o", Sharing.Static_private);
           ("/shared/sysA/a.o", Sharing.Dynamic_public);
           ("/shared/sysC/c.o", Sharing.Dynamic_public);
         ]
       "prog");
  ignore (Kernel.spawn_exec k "/home/fig2/prog");
  Kernel.run k;
  print_string (Kernel.console k);
  Printf.printf
    "both subsystems export g_value; scoped linking resolved each against its own list:\n\
    \  A = 1001 + 50 (sysA's G=1000), C = 2002 + 50 (sysC's G=2000)\n"

(* ---------------------------------------------------------------------- *)
(* E4: Figure 3 — address-space layout                                      *)
(* ---------------------------------------------------------------------- *)

let e4 () =
  header "E4 (Figure 3): Hemlock address spaces of two processes";
  let k, _ = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/shared/lib";
  install_c k "/shared/lib/shareda.o" "int a_var; int touch_a() { a_var = 1; return a_var; }";
  install_c k "/shared/lib/sharedb.o" "int b_var; int touch_b() { b_var = 1; return b_var; }";
  Fs.mkdir fs "/home/t";
  install_c k "/home/t/m1.o" "extern int touch_a(); int main() { return touch_a(); }";
  install_c k "/home/t/m2.o"
    "extern int touch_a(); extern int touch_b(); int main() { return touch_a() + touch_b(); }";
  ignore
    (link k ~dir:"/home/t"
       ~specs:
         [ ("m1.o", Sharing.Static_private); ("/shared/lib/shareda.o", Sharing.Dynamic_public) ]
       "p1");
  ignore
    (link k ~dir:"/home/t"
       ~specs:
         [
           ("m2.o", Sharing.Static_private);
           ("/shared/lib/shareda.o", Sharing.Dynamic_public);
           ("/shared/lib/sharedb.o", Sharing.Dynamic_public);
         ]
       "p2");
  let p1 = Kernel.spawn_exec k "/home/t/p1" in
  let p2 = Kernel.spawn_exec k "/home/t/p2" in
  Kernel.run k;
  Printf.printf "--- program 1 ---\n%s\n" (Format.asprintf "%a" As.pp p1.Proc.space);
  Printf.printf "--- program 2 ---\n%s\n" (Format.asprintf "%a" As.pp p2.Proc.space);
  Printf.printf
    "shared segment A sits at the same public address in both; private\n\
     images and stacks overload the same private addresses.\n"

(* ---------------------------------------------------------------------- *)
(* E5: rwho — files vs shared database                                      *)
(* ---------------------------------------------------------------------- *)

let e5 () =
  header "E5 (s4, rwho): spool files vs shared database";
  Printf.printf "%6s | %12s %12s | %12s %12s | %7s\n" "hosts" "rwho(files)" "rwho(shm)"
    "upd(files)" "upd(shm)" "speedup";
  Printf.printf "       |   ~cycles per rwho call   |  ~cycles per daemon upd   | (rwho)\n";
  Printf.printf "-------+---------------------------+---------------------------+--------\n";
  List.iter
    (fun n_hosts ->
      let (r1, _), (updf, rwhof, _) =
        Rwho.run_simulation ~style:Rwho.File_spool ~n_hosts ~rounds:2 ~max_users:4
      in
      let (r2, _), (upds, rwhos, _) =
        Rwho.run_simulation ~style:Rwho.Shared_db ~n_hosts ~rounds:2 ~max_users:4
      in
      assert (String.equal r1 r2);
      let total_updates = 2 * n_hosts in
      Printf.printf "%6d | %12d %12d | %12d %12d | %6.1fx\n" n_hosts (Stats.cycles rwhof)
        (Stats.cycles rwhos)
        (Stats.cycles updf / total_updates)
        (Stats.cycles upds / total_updates)
        (float_of_int (Stats.cycles rwhof) /. float_of_int (max 1 (Stats.cycles rwhos))))
    [ 8; 16; 32; 65; 128 ];
  Printf.printf
    "\n(the paper reports the shared rwho saving 'a little over a second' per\n\
     call on 65 machines; reports are byte-identical across both versions)\n";
  Printf.printf
    "\ntrue cluster deployment (one kernel per machine, broadcast network):\n";
  Printf.printf "%9s | %12s %12s | %7s\n" "machines" "rwho(files)" "rwho(shm)" "speedup";
  Printf.printf "----------+---------------------------+--------\n";
  List.iter
    (fun machines ->
      let (r1, _), d_files =
        Rwho.run_cluster ~style:Rwho.File_spool ~machines ~rounds:1 ~max_users:3
      in
      let (r2, _), d_shm =
        Rwho.run_cluster ~style:Rwho.Shared_db ~machines ~rounds:1 ~max_users:3
      in
      assert (String.equal r1 r2);
      Printf.printf "%9d | %12d %12d | %6.1fx\n" machines (Stats.cycles d_files)
        (Stats.cycles d_shm)
        (float_of_int (Stats.cycles d_files) /. float_of_int (max 1 (Stats.cycles d_shm))))
    [ 8; 16; 33; 65 ]

(* ---------------------------------------------------------------------- *)
(* E6: Lynx tables                                                          *)
(* ---------------------------------------------------------------------- *)

let e6 () =
  header "E6 (s4, Lynx): table transfer between generator and compiler";
  Printf.printf "%8s | %-18s | %10s | %10s | %9s\n" "entries" "style" "~cycles" "copies(B)"
    "src lines";
  Printf.printf "---------+--------------------+------------+------------+----------\n";
  List.iter
    (fun entries ->
      let _, ldl = boot () in
      let row name f =
        Stats.reset ();
        let outcome, d = Stats.measure f in
        Printf.printf "%8d | %-18s | %10d | %10d | %9d\n" entries name (Stats.cycles d)
          d.Stats.bytes_copied outcome.Symtab.oc_generated_lines
      in
      row "generated source" (fun () ->
          Symtab.run_generated_source ldl ~entries ~app_id:(string_of_int entries));
      row "linearised file" (fun () ->
          Symtab.run_linearized ldl ~entries ~app_id:(string_of_int entries));
      row "hemlock (init)" (fun () ->
          Symtab.run_hemlock ldl ~entries ~app_id:(string_of_int entries) ~first_run:true);
      row "hemlock (rerun)" (fun () ->
          Symtab.run_hemlock ldl ~entries ~app_id:(string_of_int entries) ~first_run:false))
    [ 128; 512; 2048 ];
  Printf.printf
    "\n(paper: tables = 5400 generated lines taking 18 s to compile, and 20-25%%\n\
     of utility code exists only to linearise; the hemlock rerun row is the\n\
     steady state - the persistent module is simply linked and used)\n"

(* ---------------------------------------------------------------------- *)
(* E7: xfig                                                                 *)
(* ---------------------------------------------------------------------- *)

let e7 () =
  header "E7 (s4, xfig): save/load vs persistent shared figure";
  Printf.printf "%8s | %-12s | %10s | %10s | %9s\n" "objects" "style" "~cycles" "copies(B)"
    "files";
  Printf.printf "---------+--------------+------------+------------+----------\n";
  List.iter
    (fun n ->
      let k, ldl = boot () in
      let session style f =
        let d =
          run_native k (fun k proc ->
              Ldl.attach ldl proc;
              Stats.reset ();
              snd (Stats.measure (fun () -> ignore (f k proc))))
        in
        Printf.printf "%8d | %-12s | %10d | %10d | %9d\n" n style (Stats.cycles d)
          d.Stats.bytes_copied d.Stats.files_opened
      in
      session "file .fig" (fun k proc ->
          Xfig.file_session k proc ~path:"/tmp/bench.fig" ~n_new:n ~dup:true);
      session "shared seg" (fun k proc ->
          Xfig.shm_session k proc ~path:"/shared/benchfig" ~n_new:n ~dup:true))
    [ 10; 100; 500 ];
  Printf.printf
    "\n(the shared figure needs no save/load translation at all - the paper's\n\
     xfig dropped >800 lines of it; the cost that remains is the in-place\n\
     pointer work both versions share)\n"

(* ---------------------------------------------------------------------- *)
(* E8: lazy linking                                                         *)
(* ---------------------------------------------------------------------- *)

let e8 () =
  header "E8 (s3): fault-driven lazy linking vs eager vs jump tables";
  let modules = 32 in
  Printf.printf "chain of %d modules; the driver uses a prefix of them\n\n" modules;
  Printf.printf "%6s | %-8s | %8s %8s | %8s | %10s | %s\n" "used" "strategy" "linked"
    "mapped" "faults" "~cycles" "notes";
  Printf.printf "-------+----------+-------------------+----------+------------+------\n";
  List.iter
    (fun used ->
      let lazy_run () =
        let _, ldl = boot () in
        Fs.mkdir (Kernel.fs (Ldl.kernel ldl)) "/home/chain";
        ignore (Modgen.install ldl ~dir:"/home/chain" ~modules);
        Modgen.link_driver ldl ~dir:"/home/chain" ~out:"/home/prog" ~used;
        Stats.reset ();
        let (r, linked, mapped), d =
          Stats.measure (fun () -> Modgen.run_lazy ldl ~prog:"/home/prog")
        in
        assert (r = Modgen.expected ~modules ~used);
        (linked, mapped, d)
      in
      let eager_run () =
        let _, ldl = boot () in
        Fs.mkdir (Kernel.fs (Ldl.kernel ldl)) "/home/chain";
        ignore (Modgen.install ldl ~dir:"/home/chain" ~modules);
        Modgen.link_driver ldl ~dir:"/home/chain" ~out:"/home/prog" ~used;
        Stats.reset ();
        let (r, linked, mapped), d =
          Stats.measure (fun () -> Modgen.run_eager ldl ~prog:"/home/prog")
        in
        assert (r = Modgen.expected ~modules ~used);
        (linked, mapped, d)
      in
      let plt_run () =
        let k, ldl = boot () in
        let plt = Plt.install k in
        Fs.mkdir (Kernel.fs k) "/home/chain";
        let templates = Modgen.install ldl ~dir:"/home/chain" ~modules in
        Stats.reset ();
        let (r, bound, stubs), d = Stats.measure (fun () -> Modgen.run_plt plt ~templates ~used) in
        assert (r = Modgen.expected ~modules ~used);
        (bound, stubs, d)
      in
      let linked, mapped, d = lazy_run () in
      Printf.printf "%6d | %-8s | %8d %8d | %8d | %10d |\n" used "lazy" linked mapped
        d.Stats.faults (Stats.cycles d);
      let linked, mapped, d = eager_run () in
      Printf.printf "%6d | %-8s | %8d %8d | %8d | %10d |\n" used "eager" linked mapped
        d.Stats.faults (Stats.cycles d);
      let bound, stubs, d = plt_run () in
      Printf.printf "%6d | %-8s | %8s %8d | %8d | %10d | %d/%d stubs bound\n" used "plt" "-"
        modules d.Stats.faults (Stats.cycles d) bound stubs)
    [ 0; 4; 8; 16; 31 ];
  Printf.printf
    "\n(lazy pays one fault per touched module and never links the rest; the\n\
     jump table binds functions cheaply but loads every library and resolves\n\
     all data eagerly, and cannot handle libraries that do not exist yet)\n"

(* ---------------------------------------------------------------------- *)
(* E9: presto                                                               *)
(* ---------------------------------------------------------------------- *)

let e9 () =
  header "E9 (s4, Presto): linker-based sharing vs assembly post-processing";
  Printf.printf "%8s | %-15s | %10s | %10s | %s\n" "workers" "style" "~cycles" "faults"
    "tooling";
  Printf.printf "---------+-----------------+------------+------------+---------------------\n";
  List.iter
    (fun workers ->
      let _, ldl = boot () in
      Stats.reset ();
      let r1, d1 =
        Stats.measure (fun () ->
            Presto.run_hemlock ldl ~workers ~work_iters:40 ~app_id:("h" ^ string_of_int workers))
      in
      assert (
        List.sort compare r1
        = List.sort compare (Presto.expected_results ~workers ~work_iters:40));
      Printf.printf "%8d | %-15s | %10d | %10d | %s\n" workers "hemlock" (Stats.cycles d1)
        d1.Stats.faults "a few lds arguments";
      Stats.reset ();
      let (r2, (lines, rewritten)), d2 =
        Stats.measure (fun () ->
            Presto.run_postprocessed ldl ~workers ~work_iters:40
              ~app_id:("p" ^ string_of_int workers))
      in
      assert (
        List.sort compare r2
        = List.sort compare (Presto.expected_results ~workers ~work_iters:40));
      Printf.printf "%8d | %-15s | %10d | %10d | %d asm lines, %d refs rewritten\n" workers
        "post-processor" (Stats.cycles d2) d2.Stats.faults lines rewritten)
    [ 2; 8; 32 ];
  Printf.printf
    "\n(the paper's post-processor was 432 lines of lex, consumed 1/4-1/3 of\n\
     compile time, and broke on compiler updates; with the linkers, selective\n\
     sharing is a link-time annotation plus the temp-dir symlink protocol)\n"

(* ---------------------------------------------------------------------- *)
(* E10: client/server interaction styles                                    *)
(* ---------------------------------------------------------------------- *)

let e10 () =
  header "E10 (s1 claims 3-4): shared memory vs messages vs files";
  Printf.printf "%8s | %-14s | %10s | %10s | %9s | %9s\n" "payload" "style" "~cycles"
    "copies(B)" "syscalls" "messages";
  Printf.printf "---------+----------------+------------+------------+-----------+----------\n";
  List.iter
    (fun payload ->
      List.iter
        (fun kind ->
          Stats.reset ();
          let d = Channels.run_exchange ~kind ~payload ~rounds:8 in
          Printf.printf "%8d | %-14s | %10d | %10d | %9d | %9d\n" payload
            (Channels.kind_to_string kind) (Stats.cycles d) d.Stats.bytes_copied
            d.Stats.syscalls d.Stats.messages_sent)
        Channels.all_kinds)
    [ 64; 1024; 16384 ];
  Printf.printf
    "\n(shared memory writes the request in place: zero copies, no per-round\n\
     kernel traffic; messages and files pay two copies per round plus\n\
     syscalls, files also pay opens - translation cost grows with payload)\n"

(* ---------------------------------------------------------------------- *)
(* E11: veneers and the gp register                                         *)
(* ---------------------------------------------------------------------- *)

let e11 () =
  header "E11 (s3): 28-bit jumps, veneers, and the banished $gp";
  (* Place two mutually-calling public modules on opposite sides of the
     0x4000_0000 region boundary by padding the shared partition. *)
  let k, _ldl = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/shared/pad";
  (* pads fill slots 0..252; the two templates take 253 and 254, so the
     created modules land in slots 255 (0x3ff00000) and 256 (0x40000000),
     straddling the 256MB jump-region boundary *)
  for i = 0 to 252 do
    Fs.create_file fs (Printf.sprintf "/shared/pad/f%03d" i)
  done;
  Fs.mkdir fs "/shared/far";
  install_c k "/shared/far/near.o"
    "extern int far_fn(); int near_fn() { return far_fn() + 1; }";
  install_c k "/shared/far/far.o" "int far_fn() { return 41; }";
  Fs.mkdir fs "/home/t";
  install_c k "/home/t/main.o" "extern int near_fn(); int main() { return near_fn(); }";
  Reloc_engine.reset_veneer_count ();
  ignore
    (link k ~dir:"/home/t"
       ~specs:
         [
           ("main.o", Sharing.Static_private);
           ("/shared/far/near.o", Sharing.Dynamic_public);
           ("/shared/far/far.o", Sharing.Dynamic_public);
         ]
       "prog");
  let p = Kernel.spawn_exec k "/home/t/prog" in
  Kernel.run k;
  Printf.printf "near module at %s, far module at %s\n"
    (Format.asprintf "%a" Layout.pp_addr (Fs.addr_of_path fs "/shared/far/near"))
    (Format.asprintf "%a" Layout.pp_addr (Fs.addr_of_path fs "/shared/far/far"));
  Printf.printf "program exit code: %d (expected 42)\n"
    (match p.Proc.state with Proc.Zombie c -> c | _ -> -1);
  Printf.printf "veneers created for out-of-range jumps: %d\n" (Reloc_engine.veneers_created ());
  (* gp rejection *)
  Fs.mkdir fs "/shared/gp";
  write_obj k "/shared/gp/gpmod.o"
    (Cc.to_object ~use_gp:true ~name:"gpmod.o" "int g; int f() { return g; }");
  (match
     link k ~dir:"/home/t"
       ~specs:
         [ ("main.o", Sharing.Static_private); ("/shared/gp/gpmod.o", Sharing.Static_public) ]
       "prog2"
   with
  | _ -> Printf.printf "ERROR: gp module accepted!\n"
  | exception Modinst.Link_error msg -> Printf.printf "gp module rejected by lds:\n  %s\n" msg);
  (* gp still fine for a private image *)
  Fs.mkdir fs "/home/gp";
  write_obj k "/home/gp/main.o"
    (Cc.to_object ~use_gp:true ~name:"main.o" "int g; int main() { g = 42; return g; }");
  ignore (link k ~dir:"/home/gp" ~specs:[ ("main.o", Sharing.Static_private) ] "prog");
  let p = Kernel.spawn_exec k "/home/gp/prog" in
  Kernel.run k;
  Printf.printf "gp-relative private image exit code: %d (expected 42)\n"
    (match p.Proc.state with Proc.Zombie c -> c | _ -> -1)

(* ---------------------------------------------------------------------- *)
(* E12: the 64-bit address index - linear table vs B-tree (future work)   *)
(* ---------------------------------------------------------------------- *)

let e12 () =
  header "E12 (s3 future work): addr->segment translation, linear table vs B-tree";
  let module Addr_index = Hemlock_sfs.Addr_index in
  Printf.printf "%9s | %14s | %14s | %7s\n" "segments" "linear probes" "b-tree probes"
    "ratio";
  Printf.printf "----------+----------------+----------------+--------\n";
  List.iter
    (fun n ->
      let run backend =
        let t = Addr_index.create backend in
        for i = 0 to n - 1 do
          Addr_index.register t ~base:(i * 0x4000) ~bytes:0x3000 (string_of_int i)
        done;
        Addr_index.reset_probes t;
        let rng = Hemlock_util.Prng.create ~seed:3 in
        let hits = ref 0 in
        for _ = 1 to 1000 do
          match Addr_index.translate t (Hemlock_util.Prng.int rng (n * 0x4000)) with
          | Some _ -> incr hits
          | None -> ()
        done;
        (Addr_index.probes t, !hits)
      in
      let lin, hits_lin = run Addr_index.Linear in
      let bt, hits_bt = run Addr_index.Btree_index in
      assert (hits_lin = hits_bt);
      Printf.printf "%9d | %14d | %14d | %6.0fx\n" n lin bt
        (float_of_int lin /. float_of_int (max 1 bt)))
    [ 64; 256; 1024; 4096; 16384 ];
  Printf.printf
    "\n(1000 random translations each; the 32-bit prototype's linear table is\n\
     fine at 1024 slots but the planned 64-bit system - every segment\n\
     addressable, arbitrary sizes - needs the B-tree, whose probes stay\n\
     logarithmic)\n"

(* ---------------------------------------------------------------------- *)
(* E13: creation-race scaling (ldl's file locking, s4 footnote 3)          *)
(* ---------------------------------------------------------------------- *)

let e13 () =
  header "E13 (ablation): N processes racing to create one shared module";
  Printf.printf "%6s | %10s | %8s | %10s | %s\n" "procs" "~cycles" "faults" "locks held"
    "counter reaches";
  Printf.printf "-------+------------+----------+------------+----------------\n";
  List.iter
    (fun n ->
      let k, _ldl = boot () in
      let fs = Kernel.fs k in
      Fs.mkdir fs "/shared/lib";
      install_c k "/shared/lib/counter.o" counter_src;
      Fs.mkdir fs "/home/t";
      install_c k "/home/t/main.o" bump_main;
      ignore
        (link k ~dir:"/home/t"
           ~specs:
             [
               ("main.o", Sharing.Static_private);
               ("/shared/lib/counter.o", Sharing.Dynamic_public);
             ]
           "prog");
      Stats.reset ();
      let procs = List.init n (fun _ -> Kernel.spawn_exec k "/home/t/prog") in
      Kernel.run k;
      let d = Stats.snapshot () in
      let top =
        List.fold_left
          (fun acc p -> match p.Proc.state with Proc.Zombie c -> max acc c | _ -> acc)
          0 procs
      in
      Printf.printf "%6d | %10d | %8d | %10d | %d\n" n (Stats.cycles d) d.Stats.faults
        d.Stats.syscalls top)
    [ 1; 4; 16; 64 ];
  Printf.printf
    "\n(exactly one process creates and initialises the module under the file\n\
     lock; the counter always reaches N - no lost updates, no double\n\
     creation, however wide the race)\n"

(* ---------------------------------------------------------------------- *)
(* bechamel wall-time suite                                                 *)
(* ---------------------------------------------------------------------- *)

let bechamel_suite () =
  header "Bechamel wall-time micro-benchmarks (one per experiment family)";
  Printf.printf
    "NOTE: these time the OCaml simulator on the host, not the simulated\n\
     machine; host costs (e.g. scheduler polling for the shm style) do not\n\
     track simulated costs.  The experiment tables above, in simulated\n\
     cycles, are the paper-comparable numbers.\n\n";
  let open Bechamel in
  let open Bechamel.Toolkit in
  let test_rwho style name =
    Test.make ~name
      (Staged.stage (fun () ->
           ignore (Rwho.run_simulation ~style ~n_hosts:8 ~rounds:1 ~max_users:2)))
  in
  let test_channels kind =
    Test.make
      ~name:("e10-" ^ Channels.kind_to_string kind)
      (Staged.stage (fun () -> ignore (Channels.run_exchange ~kind ~payload:512 ~rounds:2)))
  in
  let test_lazy name eager =
    Test.make ~name
      (Staged.stage (fun () ->
           let _, ldl = boot () in
           Fs.mkdir (Kernel.fs (Ldl.kernel ldl)) "/home/chain";
           ignore (Modgen.install ldl ~dir:"/home/chain" ~modules:8);
           Modgen.link_driver ldl ~dir:"/home/chain" ~out:"/home/prog" ~used:2;
           ignore
             (if eager then Modgen.run_eager ldl ~prog:"/home/prog"
              else Modgen.run_lazy ldl ~prog:"/home/prog")))
  in
  let test_xfig name shm =
    Test.make ~name
      (Staged.stage (fun () ->
           let k, ldl = boot () in
           ignore
             (run_native k (fun k proc ->
                  Ldl.attach ldl proc;
                  if shm then Xfig.shm_session k proc ~path:"/shared/bfig" ~n_new:30 ~dup:true
                  else Xfig.file_session k proc ~path:"/tmp/bfig.fig" ~n_new:30 ~dup:true))))
  in
  let tests =
    [
      test_rwho Rwho.File_spool "e5-rwho-files";
      test_rwho Rwho.Shared_db "e5-rwho-shm";
      test_channels Channels.Shared_memory;
      test_channels Channels.Message_passing;
      test_channels Channels.File_based;
      test_lazy "e8-lazy" false;
      test_lazy "e8-eager" true;
      test_xfig "e7-xfig-files" false;
      test_xfig "e7-xfig-shm" true;
    ]
  in
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.25) ~kde:None () in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ Instance.monotonic_clock ] test in
      let est = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name o ->
          match Analyze.OLS.estimates o with
          | Some [ e ] -> Printf.printf "%-24s %12.0f ns/run\n" name e
          | Some _ | None -> Printf.printf "%-24s (no estimate)\n" name)
        est)
    tests

(* ---------------------------------------------------------------------- *)
(* perf: interpreter throughput with/without the memory-system fast path   *)
(* ---------------------------------------------------------------------- *)

(* The hot loop calls into two dynamically linked public modules, so
   every iteration crosses mapping boundaries — the access pattern the
   fast path is for: instruction fetch from three code mappings plus
   stack loads/stores for the locals (the +i/-i runs cancel, leaving
   s = 16000 * 7 = 112000). *)
let perf_inc_a = "int inc_a() { return 3; }"

let perf_inc_b = "int inc_b() { return 4; }"

let perf_workload =
  {|
extern int inc_a();
extern int inc_b();
int main() {
  int i;
  int s;
  s = 0;
  i = 0;
  while (i < 16000) {
    s = s + inc_a();
    s = s + i; s = s + i; s = s + i; s = s + i;
    s = s + i; s = s + i; s = s + i; s = s + i;
    s = s - i; s = s - i; s = s - i; s = s - i;
    s = s - i; s = s - i; s = s - i; s = s - i;
    s = s + inc_b();
    i = i + 1;
  }
  return s - 111958;
}
|}

(* One switch per layer: [caches] is the memory-system fast path (TLB +
   decode cache), [jit] the trace compiler on top of it. *)
let with_profile ~caches ~jit ?threshold f =
  let tlb = !As.caching_default
  and dc = !Cpu.decode_cache_enabled
  and je = !Trace.enabled
  and jt = !Trace.threshold in
  As.caching_default := caches;
  Cpu.decode_cache_enabled := caches;
  Trace.enabled := jit;
  Option.iter (fun t -> Trace.threshold := t) threshold;
  Fun.protect
    ~finally:(fun () ->
      As.caching_default := tlb;
      Cpu.decode_cache_enabled := dc;
      Trace.enabled := je;
      Trace.threshold := jt)
    f

let measure_ns f =
  let open Bechamel in
  let open Bechamel.Toolkit in
  let test = Test.make ~name:"run" (Staged.stage f) in
  let cfg = Benchmark.cfg ~limit:30 ~quota:(Time.second 0.5) ~kde:None () in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] test in
  let est = Analyze.all ols Instance.monotonic_clock raw in
  let out = ref nan in
  Hashtbl.iter
    (fun _ o ->
      match Analyze.OLS.estimates o with Some [ e ] -> out := e | Some _ | None -> ())
    est;
  !out

(* Profiling target: the perf workload under the JIT only, looped long
   enough for a sampling profiler (`gprofng collect app`) to see the
   closure chains.  Not part of any acceptance run. *)
let perf_profile () =
  with_profile ~caches:true ~jit:true (fun () ->
      let k, _ldl = boot () in
      let fs = Kernel.fs k in
      Fs.mkdir fs "/shared/lib";
      install_c k "/shared/lib/inc_a.o" perf_inc_a;
      install_c k "/shared/lib/inc_b.o" perf_inc_b;
      Fs.mkdir fs "/home/perf";
      install_c k "/home/perf/main.o" perf_workload;
      ignore
        (link k ~dir:"/home/perf"
           ~specs:
             [
               ("main.o", Sharing.Static_private);
               ("/shared/lib/inc_a.o", Sharing.Dynamic_public);
               ("/shared/lib/inc_b.o", Sharing.Dynamic_public);
             ]
           "prog");
      for _ = 1 to 300 do
        let p = Kernel.spawn_exec k "/home/perf/prog" in
        Kernel.run k;
        match p.Proc.state with
        | Proc.Zombie 42 -> ()
        | _ -> failwith "perf-profile: workload did not exit 42"
      done)

let perf () =
  header "PERF: interpreter throughput — TLB + decode cache + trace JIT";
  (* One profile per configuration, each on a fresh kernel: the address
     space captures the caching flag when it is created. *)
  let profile ~caches ~jit =
    with_profile ~caches ~jit (fun () ->
        let k, _ldl = boot () in
        let fs = Kernel.fs k in
        Fs.mkdir fs "/shared/lib";
        install_c k "/shared/lib/inc_a.o" perf_inc_a;
        install_c k "/shared/lib/inc_b.o" perf_inc_b;
        Fs.mkdir fs "/home/perf";
        install_c k "/home/perf/main.o" perf_workload;
        ignore
          (link k ~dir:"/home/perf"
             ~specs:
               [
                 ("main.o", Sharing.Static_private);
                 ("/shared/lib/inc_a.o", Sharing.Dynamic_public);
                 ("/shared/lib/inc_b.o", Sharing.Dynamic_public);
               ]
             "prog");
        let run_once () =
          let p = Kernel.spawn_exec k "/home/perf/prog" in
          Kernel.run k;
          match p.Proc.state with
          | Proc.Zombie 42 -> ()
          | _ -> failwith "perf: workload did not exit 42"
        in
        run_once ();
        (* warm caches/allocator *)
        let (), d = Stats.measure run_once in
        let ns = measure_ns run_once in
        (d, ns))
  in
  let d_jit, ns_jit = profile ~caches:true ~jit:true in
  let d_on, ns_on = profile ~caches:true ~jit:false in
  let d_off, ns_off = profile ~caches:false ~jit:false in
  (* Neither fast path may be visible to the simulated cost model. *)
  let same a b =
    a.Stats.instructions = b.Stats.instructions
    && a.Stats.faults = b.Stats.faults
    && a.Stats.syscalls = b.Stats.syscalls
    && a.Stats.context_switches = b.Stats.context_switches
    && Stats.cycles a = Stats.cycles b
  in
  if not (same d_on d_off) then
    failwith "perf: simulated costs differ with caches on vs off";
  if not (same d_jit d_off) then
    failwith "perf: simulated costs differ with the JIT on vs off";
  let insns = d_on.Stats.instructions in
  let ips ns = float_of_int insns /. (ns *. 1e-9) in
  let speedup = ns_off /. ns_on in
  let jit_vs_nocache = ns_off /. ns_jit in
  let jit_vs_cache = ns_on /. ns_jit in
  Printf.printf "workload: %d simulated instructions per run (deterministic all ways)\n\n"
    insns;
  Printf.printf "%-12s | %14s | %16s | %s\n" "config" "ns/run" "insns/sec" "fast-path hits";
  Printf.printf "-------------+----------------+------------------+---------------------------\n";
  Printf.printf "%-12s | %14.0f | %16.0f | (none)\n" "nocache" ns_off (ips ns_off);
  Printf.printf "%-12s | %14.0f | %16.0f | tlb %d, decode %d\n" "cached" ns_on (ips ns_on)
    d_on.Stats.tlb_hits d_on.Stats.decode_hits;
  Printf.printf "%-12s | %14.0f | %16.0f | jit %d hits / %d compiles / %d exits\n" "jit"
    ns_jit (ips ns_jit) d_jit.Stats.jit_hits d_jit.Stats.jit_compiles
    d_jit.Stats.jit_exits;
  Printf.printf "\ncache speedup:          %.2fx\n" speedup;
  Printf.printf "jit over nocache:       %.2fx (floor 10x)\n" jit_vs_nocache;
  Printf.printf "jit over decode cache:  %.2fx (floor 3x)\n" jit_vs_cache;
  if jit_vs_nocache < 10.0 then
    failwith "perf: JIT throughput under the 10x-over-nocache acceptance floor";
  if jit_vs_cache < 3.0 then
    failwith "perf: JIT throughput under the 3x-over-decode-cache acceptance floor";
  let json =
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"interp_throughput\",\n\
      \  \"workload_instructions\": %d,\n\
      \  \"cached\": { \"ns_per_run\": %.0f, \"insns_per_sec\": %.0f },\n\
      \  \"uncached\": { \"ns_per_run\": %.0f, \"insns_per_sec\": %.0f },\n\
      \  \"jit\": { \"ns_per_run\": %.0f, \"insns_per_sec\": %.0f,\n\
      \            \"compiles\": %d, \"hits\": %d, \"exits\": %d, \"invalidations\": %d },\n\
      \  \"speedup\": %.2f,\n\
      \  \"jit_speedup_vs_uncached\": %.2f,\n\
      \  \"jit_speedup_vs_cached\": %.2f,\n\
      \  \"simulated_costs_identical\": true,\n\
      \  \"stats\": %s\n\
       }\n"
      insns ns_on (ips ns_on) ns_off (ips ns_off) ns_jit (ips ns_jit)
      d_jit.Stats.jit_compiles d_jit.Stats.jit_hits d_jit.Stats.jit_exits
      d_jit.Stats.jit_invalidations speedup jit_vs_nocache jit_vs_cache
      (Stats.to_json d_jit)
  in
  let path = Filename.concat (Sys.getcwd ()) "BENCH_interp.json" in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ---------------------------------------------------------------------- *)
(* perf-link: linker fast path — hashed symbols + memoized link plans      *)
(* ---------------------------------------------------------------------- *)

(* Deep-dependency Modgen workload: the driver names all N chain modules
   as dynamic dependencies and every module's own list is empty, so each
   of the ~2N unresolved references walks the root scope's full
   N-module list — O(N^2) locate calls and export probes on the cold
   path.  Repeated execs of the same program in one kernel are the
   stable-linking scenario: the first exec records link plans, later
   execs replay them. *)
let link_modules = 96

let with_link_caches enabled f =
  let sh = !Objfile.sym_hash_enabled
  and sc = !Search.cache_enabled
  and pc = !Link_plan.enabled in
  Objfile.sym_hash_enabled := enabled;
  Search.cache_enabled := enabled;
  Link_plan.enabled := enabled;
  Fun.protect
    ~finally:(fun () ->
      Objfile.sym_hash_enabled := sh;
      Search.cache_enabled := sc;
      Link_plan.enabled := pc)
    f

let perf_link () =
  header "PERF-LINK: link throughput — symbol hashing + memoized link plans";
  let modules = link_modules in
  let used = modules - 1 in
  let want = Modgen.expected ~modules ~used in
  (* One profile per setting, each on a fresh kernel (plan stores are
     per-kernel).  Returns the Stats delta of the first (recording) and
     a steady-state (replaying) exec, plus the steady-state host time. *)
  let profile enabled =
    with_link_caches enabled (fun () ->
        let k, ldl = boot () in
        let fs = Kernel.fs k in
        Fs.mkdir fs "/home/lib";
        ignore (Modgen.install ~deep:true ldl ~dir:"/home/lib" ~modules);
        Modgen.link_driver ~deep:modules ldl ~dir:"/home/lib" ~out:"/home/perf/prog"
          ~used;
        let run_once () =
          Kernel.console_clear k;
          let p = Kernel.spawn_exec k "/home/perf/prog" in
          Kernel.run k;
          match p.Proc.state with
          | Proc.Zombie 0 -> ()
          | _ -> failwith "perf-link: driver did not exit 0"
        in
        let (), d_first = Stats.measure run_once in
        if int_of_string_opt (String.trim (Kernel.console k)) <> Some want then
          failwith "perf-link: wrong driver output";
        let (), d_steady = Stats.measure run_once in
        let ns = measure_ns run_once in
        (d_first, d_steady, ns))
  in
  (* Boot profiles: same chain, but the measured exec is the FIRST one
     after [Kernel.reboot] — the reboot hook drops every kernel-resident
     cache, so without stable linking the exec pays the full cold path.
     With stable linking the pre-reboot exec's plans and symbol indexes
     are synced into /shared/.stable and the post-reboot exec replays
     them. *)
  let boot_profile stable =
    with_link_caches true (fun () ->
        let saved = !Stable_link.enabled in
        Stable_link.enabled := stable;
        Fun.protect
          ~finally:(fun () -> Stable_link.enabled := saved)
          (fun () ->
            let k, ldl = boot () in
            let fs = Kernel.fs k in
            Fs.mkdir fs "/home/lib";
            ignore (Modgen.install ~deep:true ldl ~dir:"/home/lib" ~modules);
            Modgen.link_driver ~deep:modules ldl ~dir:"/home/lib"
              ~out:"/home/perf/prog" ~used;
            let last = ref None in
            let run_once () =
              Kernel.console_clear k;
              let p = Kernel.spawn_exec k "/home/perf/prog" in
              Kernel.run k;
              last := Some p;
              match p.Proc.state with
              | Proc.Zombie 0 -> ()
              | _ -> failwith "perf-link: driver did not exit 0"
            in
            run_once ();
            (* records the plans *)
            if int_of_string_opt (String.trim (Kernel.console k)) <> Some want then
              failwith "perf-link: wrong driver output";
            let report =
              if stable then Ldl.stable_sync ldl
              else { Ldl.sync_plans = 0; sync_objs = 0; sync_skipped = 0 }
            in
            Kernel.reboot k;
            let (), d_boot = Stats.measure run_once in
            if int_of_string_opt (String.trim (Kernel.console k)) <> Some want then
              failwith "perf-link: wrong driver output on the first exec after reboot";
            (* First-exec latency: the reboot (cache teardown plus, with
               stable linking, the boot-time reseeding) runs between the
               timed windows, so each measured exec is exactly the first
               one after a boot; the boot work itself is timed
               separately and reported alongside. *)
            let iters = 40 in
            let t_boot = ref 0.0 and t_run = ref 0.0 in
            for _ = 1 to iters do
              let t0 = Unix.gettimeofday () in
              Kernel.reboot k;
              let t1 = Unix.gettimeofday () in
              run_once ();
              let t2 = Unix.gettimeofday () in
              t_boot := !t_boot +. (t1 -. t0);
              t_run := !t_run +. (t2 -. t1)
            done;
            let ns = !t_run /. float_of_int iters *. 1e9 in
            let boot_ns = !t_boot /. float_of_int iters *. 1e9 in
            let prov =
              match !last with Some p -> Ldl.linkstat_proc_json ldl p | None -> "[]"
            in
            (d_boot, ns, boot_ns, report, prov, Ldl.linkstat_json ldl)))
  in
  let f_on, s_on, ns_on = profile true in
  let f_off, s_off, ns_off = profile false in
  let d_cold_boot, ns_cold_boot, cold_reboot_ns, _, _, _ = boot_profile false in
  let d_stable_boot, ns_stable_boot, stable_reboot_ns, sync, stable_prov, linkstat =
    boot_profile true
  in
  (* The fast path must be invisible to the simulated cost model — on
     both the recording exec and the replaying one. *)
  let same a b =
    a.Stats.instructions = b.Stats.instructions
    && a.Stats.faults = b.Stats.faults
    && a.Stats.syscalls = b.Stats.syscalls
    && a.Stats.bytes_copied = b.Stats.bytes_copied
    && a.Stats.modules_linked = b.Stats.modules_linked
    && a.Stats.symbols_resolved = b.Stats.symbols_resolved
    && Stats.cycles a = Stats.cycles b
  in
  if not (same f_on f_off && same s_on s_off) then
    failwith "perf-link: simulated costs differ with the fast path on vs off";
  (* Stable linking too: replay re-performs every instantiation through
     the ordinary path and the loads are host-side segment reads, so the
     first exec after reboot must bill identically with and without it. *)
  if not (same d_cold_boot d_stable_boot) then
    failwith "perf-link: simulated costs differ cold-boot vs stable-boot";
  if sync.Ldl.sync_plans = 0 || sync.Ldl.sync_objs = 0 then
    failwith "perf-link: stable sync persisted nothing";
  let speedup = ns_off /. ns_on in
  let boot_speedup = ns_cold_boot /. ns_stable_boot in
  Printf.printf
    "workload: %d-module deep chain, %d faults / %d symbols per exec (deterministic both ways)\n\n"
    modules s_on.Stats.faults s_on.Stats.symbols_resolved;
  Printf.printf "%-12s | %14s | %s\n" "fast path" "ns/exec" "cache activity (first exec / steady exec)";
  Printf.printf "-------------+----------------+---------------------------------------\n";
  Printf.printf "%-12s | %14.0f | sym hash %d/%d, search %d/%d, plans %d/%d\n" "on" ns_on
    f_on.Stats.sym_hash_hits s_on.Stats.sym_hash_hits f_on.Stats.search_cache_hits
    s_on.Stats.search_cache_hits f_on.Stats.plan_hits s_on.Stats.plan_hits;
  Printf.printf "%-12s | %14.0f | sym hash %d/%d, search %d/%d, plans %d/%d\n" "off" ns_off
    f_off.Stats.sym_hash_hits s_off.Stats.sym_hash_hits f_off.Stats.search_cache_hits
    s_off.Stats.search_cache_hits f_off.Stats.plan_hits s_off.Stats.plan_hits;
  Printf.printf "\nspeedup (cold exec vs plan replay): %.2fx\n\n" speedup;
  Printf.printf "%-12s | %14s | %12s | %s\n" "boot" "ns/first-exec" "ns/reboot"
    "plan activity after reboot";
  Printf.printf
    "-------------+----------------+--------------+---------------------------------\n";
  Printf.printf "%-12s | %14.0f | %12.0f | plans %d hits / %d misses\n" "cold"
    ns_cold_boot cold_reboot_ns d_cold_boot.Stats.plan_hits d_cold_boot.Stats.plan_misses;
  Printf.printf "%-12s | %14.0f | %12.0f | plans %d hits / %d misses, stable loads %d\n"
    "stable" ns_stable_boot stable_reboot_ns d_stable_boot.Stats.plan_hits
    d_stable_boot.Stats.plan_misses d_stable_boot.Stats.stable_loads;
  Printf.printf
    "\nstable sync: %d plans + %d symbol indexes persisted (%d skipped)\n"
    sync.Ldl.sync_plans sync.Ldl.sync_objs sync.Ldl.sync_skipped;
  Printf.printf "boot speedup (cold boot vs stable boot): %.2fx (floor 5x)\n" boot_speedup;
  if boot_speedup < 5.0 then
    failwith "perf-link: stable-boot first exec under the 5x-over-cold-boot floor";
  let json =
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"link_throughput\",\n\
      \  \"modules\": %d,\n\
      \  \"faults_per_exec\": %d,\n\
      \  \"symbols_resolved_per_exec\": %d,\n\
      \  \"warm\": { \"ns_per_exec\": %.0f, \"plan_hits\": %d },\n\
      \  \"cold\": { \"ns_per_exec\": %.0f },\n\
      \  \"first_exec\": { \"sym_hash_hits\": %d, \"search_cache_hits\": %d },\n\
      \  \"speedup\": %.2f,\n\
      \  \"cold_boot\": { \"ns_first_exec\": %.0f, \"ns_reboot\": %.0f, \"stats\": %s },\n\
      \  \"stable_boot\": { \"ns_first_exec\": %.0f, \"ns_reboot\": %.0f,\n\
      \                    \"plans_persisted\": %d, \"objs_persisted\": %d,\n\
      \                    \"stats\": %s },\n\
      \  \"boot_speedup\": %.2f,\n\
      \  \"simulated_costs_identical\": true,\n\
      \  \"provenance\": %s,\n\
      \  \"linkstat\": %s}\n"
      modules s_on.Stats.faults s_on.Stats.symbols_resolved ns_on s_on.Stats.plan_hits
      ns_off f_on.Stats.sym_hash_hits f_on.Stats.search_cache_hits speedup ns_cold_boot
      cold_reboot_ns (Stats.to_json d_cold_boot) ns_stable_boot stable_reboot_ns
      sync.Ldl.sync_plans sync.Ldl.sync_objs (Stats.to_json d_stable_boot) boot_speedup
      stable_prov linkstat
  in
  let path = Filename.concat (Sys.getcwd ()) "BENCH_link.json" in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ---------------------------------------------------------------------- *)
(* perf-vm: copy-on-write fork and zero-copy exec                         *)
(* ---------------------------------------------------------------------- *)

(* Fork-heavy: the parent touches a 64-page heap, then forks/waits in a
   loop; each child dirties a single heap page and exits.  Eager fork
   deep-copies heap + image + stack every iteration; COW copies only
   the pages actually written. *)
let vm_fork_count = 8

let vm_fork_workload =
  Printf.sprintf
    {|
int main() {
  int *p;
  int i;
  int pid;
  int kids;
  p = sbrk(262144);
  i = 0;
  while (i < 65536) { p[i] = i; i = i + 1024; }
  kids = 0;
  while (kids < %d) {
    pid = fork();
    if (pid == 0) {
      p[0] = kids + 1;
      exit(0);
    }
    wait();
    kids = kids + 1;
  }
  print_int(p[0]);
  return 0;
}
|}
    vm_fork_count

(* Exec-heavy: a program whose image spans several pages (200 padding
   functions) and writes nothing but its stack.  Eager exec rebuilds
   and blits the placed image every spawn; COW maps a refcounted copy
   of a pristine master built on the first spawn. *)
let vm_exec_workload =
  let b = Buffer.create 8192 in
  for i = 0 to 199 do
    Buffer.add_string b (Printf.sprintf "int f%d() { return %d; }\n" i i)
  done;
  Buffer.add_string b "int main() { return f0() + f1() - 1; }\n";
  Buffer.contents b

let with_cow enabled f =
  let old = !Segment.cow_enabled in
  Segment.cow_enabled := enabled;
  Fun.protect ~finally:(fun () -> Segment.cow_enabled := old) f

let perf_vm () =
  header "PERF-VM: copy-on-write fork + zero-copy exec";
  (* One profile per mode, each on a fresh kernel (the zero-copy image
     masters are per-kernel, the COW flag is captured at clone/copy
     time).  Returns the steady-state Stats delta and host time of one
     full workload run. *)
  let profile ~src ~expect_console enabled =
    with_cow enabled (fun () ->
        let k, _ldl = boot () in
        Fs.mkdir (Kernel.fs k) "/home/perf";
        install_c k "/home/perf/main.o" src;
        ignore
          (link k ~dir:"/home/perf" ~specs:[ ("main.o", Sharing.Static_private) ]
             "prog");
        let run_once () =
          Kernel.console_clear k;
          let p = Kernel.spawn_exec k "/home/perf/prog" in
          Kernel.run k;
          (match p.Proc.state with
          | Proc.Zombie 0 -> ()
          | _ -> failwith "perf-vm: workload did not exit 0");
          if Kernel.console k <> expect_console then
            failwith "perf-vm: wrong workload output"
        in
        run_once ();
        (* warm the image master and allocator *)
        let (), d = Stats.measure run_once in
        let ns = measure_ns run_once in
        (d, ns))
  in
  (* COW must be invisible to the program: same instructions, same
     syscalls, same delivered faults, same console — only the copy
     traffic (and therefore cycles) may differ. *)
  let same_program a b =
    a.Stats.instructions = b.Stats.instructions
    && a.Stats.syscalls = b.Stats.syscalls
    && a.Stats.faults = b.Stats.faults
  in
  (* fork-heavy *)
  let df_on, nsf_on = profile ~src:vm_fork_workload ~expect_console:"0" true in
  let df_off, nsf_off = profile ~src:vm_fork_workload ~expect_console:"0" false in
  if not (same_program df_on df_off) then begin
    Printf.printf "cow:   insns %d syscalls %d faults %d\n" df_on.Stats.instructions
      df_on.Stats.syscalls df_on.Stats.faults;
    Printf.printf "eager: insns %d syscalls %d faults %d\n" df_off.Stats.instructions
      df_off.Stats.syscalls df_off.Stats.faults;
    failwith "perf-vm: fork workload behaves differently with COW on vs off"
  end;
  (* The whole point: COW must copy a small fraction of what eager fork
     copies.  Deterministic, so gate the build on it. *)
  if df_on.Stats.pages_copied * Layout.page_size * 4 > df_off.Stats.bytes_copied
  then failwith "perf-vm: COW fork copied more than 1/4 of the eager traffic";
  let fork_speedup_ns = nsf_off /. nsf_on in
  (* Fork throughput in the simulated cost model — the currency every
     experiment in this repo reports.  Host wall-clock barely moves
     because a host memcpy is cheap next to interpreting the workload;
     the cost model charges copies at 1 cycle/byte, which is the
     regime the paper's machines lived in. *)
  let fork_speedup_cycles =
    float_of_int (Stats.cycles df_off) /. float_of_int (Stats.cycles df_on)
  in
  if fork_speedup_cycles < 5.0 then
    failwith "perf-vm: COW fork throughput under the 5x acceptance floor";
  Printf.printf
    "fork-heavy: %d forks over a 64-page dirty heap per run (console identical both modes)\n\n"
    vm_fork_count;
  Printf.printf "%-12s | %14s | %12s | %s\n" "mode" "ns/run" "cycles/run"
    "copy traffic";
  Printf.printf
    "-------------+----------------+--------------+---------------------------\n";
  Printf.printf "%-12s | %14.0f | %12d | %d cow faults, %d pages copied, %d bytes saved\n"
    "cow" nsf_on (Stats.cycles df_on) df_on.Stats.cow_faults
    df_on.Stats.pages_copied df_on.Stats.bytes_saved;
  Printf.printf "%-12s | %14.0f | %12d | %d bytes copied eagerly\n" "eager" nsf_off
    (Stats.cycles df_off) df_off.Stats.bytes_copied;
  Printf.printf "\nfork throughput: %.2fx host, %.2fx simulated cycles\n\n"
    fork_speedup_ns fork_speedup_cycles;
  (* exec-heavy *)
  let de_on, nse_on = profile ~src:vm_exec_workload ~expect_console:"" true in
  let de_off, nse_off = profile ~src:vm_exec_workload ~expect_console:"" false in
  if not (same_program de_on de_off) then
    failwith "perf-vm: exec workload behaves differently with COW on vs off";
  let image_pages = de_on.Stats.bytes_saved / Layout.page_size in
  if image_pages > 0 && de_on.Stats.pages_copied >= image_pages then
    failwith "perf-vm: zero-copy exec still copied the whole image";
  let exec_speedup_ns = nse_off /. nse_on in
  Printf.printf "exec-heavy: multi-page image, one spawn per run\n\n";
  Printf.printf "%-12s | %14s | %s\n" "mode" "ns/exec" "image traffic";
  Printf.printf "-------------+----------------+---------------------------\n";
  Printf.printf "%-12s | %14.0f | %d of %d image pages copied (%d bytes saved)\n"
    "cow" nse_on de_on.Stats.pages_copied image_pages de_on.Stats.bytes_saved;
  Printf.printf "%-12s | %14.0f | image rebuilt and blitted per exec\n" "eager"
    nse_off;
  Printf.printf "\nexec throughput: %.2fx host\n" exec_speedup_ns;
  let json =
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"vm_cow\",\n\
      \  \"fork_throughput_speedup\": %.2f,\n\
      \  \"fork\": {\n\
      \    \"forks_per_run\": %d,\n\
      \    \"cow\": { \"ns_per_run\": %.0f, \"cycles\": %d, \"cow_faults\": %d, \"pages_copied\": %d, \"bytes_saved\": %d },\n\
      \    \"eager\": { \"ns_per_run\": %.0f, \"cycles\": %d, \"bytes_copied\": %d },\n\
      \    \"speedup_host\": %.2f,\n\
      \    \"speedup_cycles\": %.2f\n\
      \  },\n\
      \  \"exec\": {\n\
      \    \"image_pages\": %d,\n\
      \    \"cow\": { \"ns_per_exec\": %.0f, \"pages_copied\": %d, \"bytes_saved\": %d },\n\
      \    \"eager\": { \"ns_per_exec\": %.0f },\n\
      \    \"speedup_host\": %.2f\n\
      \  },\n\
      \  \"program_visible_behaviour_identical\": true,\n\
      \  \"stats\": %s\n\
       }\n"
      fork_speedup_cycles vm_fork_count nsf_on (Stats.cycles df_on) df_on.Stats.cow_faults
      df_on.Stats.pages_copied df_on.Stats.bytes_saved nsf_off
      (Stats.cycles df_off) df_off.Stats.bytes_copied fork_speedup_ns
      fork_speedup_cycles image_pages nse_on de_on.Stats.pages_copied
      de_on.Stats.bytes_saved nse_off exec_speedup_ns (Stats.to_json de_on)
  in
  let path = Filename.concat (Sys.getcwd ()) "BENCH_vm.json" in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ---------------------------------------------------------------------- *)
(* perf-jit: trace-compiler stress — threshold 1, invalidation-heavy      *)
(* ---------------------------------------------------------------------- *)

(* Threshold 1 compiles every anchor on first sight, so traces exist
   {e before} the lazy linker patches jump slots and before fork breaks
   COW sharing — the invalidation and store-guard paths run for real
   instead of being compiled around after the code has settled.  Every
   workload must cost exactly the same with the JIT off. *)
let perf_jit () =
  header "PERF-JIT: trace compiler stress — threshold 1, invalidation-heavy";
  let same a b =
    a.Stats.instructions = b.Stats.instructions
    && a.Stats.faults = b.Stats.faults
    && a.Stats.syscalls = b.Stats.syscalls
    && a.Stats.context_switches = b.Stats.context_switches
    && Stats.cycles a = Stats.cycles b
  in
  let run_case name setup =
    let profile ~jit () =
      with_profile ~caches:true ~jit ~threshold:1 (fun () ->
          let run_once = setup () in
          let (), d = Stats.measure run_once in
          d)
    in
    let d_off = profile ~jit:false () in
    let d_jit = profile ~jit:true () in
    if not (same d_off d_jit) then
      failwith
        (Printf.sprintf "perf-jit: %s costs differ with the JIT on vs off" name);
    Printf.printf
      "%-12s insns %9d | compiles %4d, hits %6d, exits %6d, invalidations %3d\n"
      name d_jit.Stats.instructions d_jit.Stats.jit_compiles
      d_jit.Stats.jit_hits d_jit.Stats.jit_exits d_jit.Stats.jit_invalidations;
    d_jit
  in
  (* Cross-module calls, linked lazily: at threshold 1 the caller's
     trace compiles while the jump slots still point at linker stubs,
     so the binding stores must invalidate and the re-entries recompile
     through the patched slots. *)
  let calls_case () =
    let k, _ldl = boot () in
    let fs = Kernel.fs k in
    Fs.mkdir fs "/shared/lib";
    install_c k "/shared/lib/inc_a.o" perf_inc_a;
    install_c k "/shared/lib/inc_b.o" perf_inc_b;
    Fs.mkdir fs "/home/perf";
    install_c k "/home/perf/main.o" perf_workload;
    ignore
      (link k ~dir:"/home/perf"
         ~specs:
           [
             ("main.o", Sharing.Static_private);
             ("/shared/lib/inc_a.o", Sharing.Dynamic_public);
             ("/shared/lib/inc_b.o", Sharing.Dynamic_public);
           ]
         "prog");
    fun () ->
      let p = Kernel.spawn_exec k "/home/perf/prog" in
      Kernel.run k;
      match p.Proc.state with
      | Proc.Zombie 42 -> ()
      | _ -> failwith "perf-jit: call workload did not exit 42"
  in
  (* Fork under COW: children inherit the parent's hot code and write
     shared pages; traces and their inline caches must never leak a
     parent page into a child (or vice versa). *)
  let fork_case () =
    let k, _ldl = boot () in
    Fs.mkdir (Kernel.fs k) "/home/perf";
    install_c k "/home/perf/fork.o" vm_fork_workload;
    ignore
      (link k ~dir:"/home/perf"
         ~specs:[ ("fork.o", Sharing.Static_private) ]
         "forkprog");
    fun () ->
      Kernel.console_clear k;
      let p = Kernel.spawn_exec k "/home/perf/forkprog" in
      Kernel.run k;
      (match p.Proc.state with
      | Proc.Zombie 0 -> ()
      | _ -> failwith "perf-jit: fork workload did not exit 0");
      if Kernel.console k <> "0" then
        failwith "perf-jit: fork workload console output changed"
  in
  let d_calls = run_case "calls" calls_case in
  let d_fork = run_case "fork-cow" fork_case in
  if d_calls.Stats.jit_compiles = 0 || d_fork.Stats.jit_compiles = 0 then
    failwith "perf-jit: a stress workload never reached the compiler";
  Printf.printf
    "\nsimulated costs identical with the JIT on and off for every workload\n"

(* ---------------------------------------------------------------------- *)
(* crash-sweep: deterministic fault plans over /shared op traffic         *)
(* ---------------------------------------------------------------------- *)

module Fault = Hemlock_util.Fault
module Prng = Hemlock_util.Prng

let sweep_pool = [| "/shared/a"; "/shared/b"; "/shared/d/c"; "/shared/d/e"; "/shared/f" |]

(* One seed = one reproducible run: the seed derives both the op stream
   and the fault plan (Fault.configure_random).  A simulated crash is
   recovered with rescan + fsck; the gate is that a second fsck is
   always clean — recovery converged, nothing left half-done. *)
(* ---------------------------------------------------------------------- *)
(* perf-page: demand paging — a /shared working set larger than RAM       *)
(* ---------------------------------------------------------------------- *)

(* A multi-MB shared working set chased through the E12 B-tree address
   index, profiled under a shrinking [HEMLOCK_RAM_PAGES] budget.  The
   billed cost model must be byte-identical at every budget and with
   the pager off entirely — only the pager's observability counters
   (major/minor faults, evictions, writebacks, peak residency) and host
   time may move. *)
let perf_page () =
  header "PERF-PAGE: demand paging under bounded simulated RAM";
  let module Addr_index = Hemlock_sfs.Addr_index in
  let files = 8 in
  let file_bytes = Layout.shared_slot_size in
  (* 8 MB of file pages *)
  let rounds = 3 in
  let saved_enabled = !Vm_object.enabled in
  let saved_ram = !Vm_object.ram_pages in
  let profile ~pager ram =
    Vm_object.reset ();
    Vm_object.enabled := pager;
    Vm_object.ram_pages := ram;
    let k, _ldl = boot () in
    let fs = Kernel.fs k in
    Fs.mkdir fs "/shared/ws";
    let path i = Printf.sprintf "/shared/ws/f%d" i in
    for i = 0 to files - 1 do
      Fs.create_file fs (path i);
      (* Fill every page so first touches are major faults (the backing
         file has content to read in), not zero-fill minors. *)
      Fs.write_file fs (path i) (Bytes.make file_bytes (Char.chr (65 + i)))
    done;
    let run () =
      let p =
        Kernel.spawn_native k ~name:"pager-ws" (fun k proc ->
            let idx = Addr_index.create Addr_index.Btree_index in
            let bases =
              Array.init files (fun i ->
                  let base =
                    Kernel.map_shared_file k proc ~path:(path i)
                      ~prot:Hemlock_vm.Prot.Read_write
                  in
                  Addr_index.register idx ~base ~bytes:file_bytes (path i);
                  base)
            in
            for round = 1 to rounds do
              Array.iteri
                (fun f base ->
                  let pg = ref 0 in
                  while !pg * Layout.page_size < file_bytes do
                    let addr = base + (!pg * Layout.page_size) in
                    (match Addr_index.translate idx addr with
                    | Some _ -> ()
                    | None -> failwith "perf-page: index lost a mapping");
                    ignore (Kernel.load_u32 k proc addr);
                    Kernel.store_u32 k proc addr (round + f + !pg);
                    pg := !pg + 1
                  done)
                bases
            done;
            0)
      in
      Kernel.run k;
      match p.Proc.state with
      | Proc.Zombie 0 -> ()
      | _ -> failwith "perf-page: workload did not exit 0"
    in
    let (), d = Stats.measure run in
    (d, Vm_object.peak_resident ())
  in
  let label = function
    | None -> "unbounded"
    | Some n -> Printf.sprintf "%d pages" n
  in
  let budgets = [ Some 1024; Some 512; Some 256; Some 128; Some 64; Some 32 ] in
  let off, _ = profile ~pager:false None in
  let base, peak0 = profile ~pager:true None in
  let curve = List.map (fun b -> (b, profile ~pager:true b)) budgets in
  (* The acceptance gate: the pager must be invisible to the cost
     model.  Anything billed — instructions, syscalls, delivered
     faults, and therefore cycles — is identical at every budget and
     with the pager off. *)
  let same a b =
    a.Stats.instructions = b.Stats.instructions
    && a.Stats.syscalls = b.Stats.syscalls
    && a.Stats.faults = b.Stats.faults
    && Stats.cycles a = Stats.cycles b
  in
  List.iter
    (fun (b, (d, _)) ->
      if not (same off d) then begin
        Printf.printf "pager off: insns %d syscalls %d faults %d cycles %d\n"
          off.Stats.instructions off.Stats.syscalls off.Stats.faults
          (Stats.cycles off);
        Printf.printf "%s: insns %d syscalls %d faults %d cycles %d\n" (label b)
          d.Stats.instructions d.Stats.syscalls d.Stats.faults (Stats.cycles d);
        failwith
          (Printf.sprintf "perf-page: simulated costs differ at %s vs pager off"
             (label b))
      end)
    ((None, (base, peak0)) :: curve);
  let ws_pages = files * file_bytes / Layout.page_size in
  Printf.printf
    "working set: %d shared files x %d KB = %d pages; %d full sweeps through the\n\
     B-tree address index; every budget bills the identical %d cycles\n\n"
    files (file_bytes / 1024) ws_pages rounds (Stats.cycles base);
  Printf.printf "%-10s | %6s | %6s | %8s | %10s | %8s\n" "ram" "major" "minor"
    "evicted" "written" "peak res";
  Printf.printf "-----------+--------+--------+----------+------------+---------\n";
  let row b (d, peak) =
    Printf.printf "%-10s | %6d | %6d | %8d | %10d | %8d\n" (label b)
      d.Stats.major_faults d.Stats.minor_faults d.Stats.pages_evicted
      d.Stats.pages_written_back peak
  in
  row None (base, peak0);
  List.iter (fun (b, r) -> row b r) curve;
  (* Sanity of the curve itself: squeezing RAM below the working set
     must actually evict, and dirty file pages must go through the
     journalled writeback barrier. *)
  (match List.assoc (Some 32) curve with
  | d, _ ->
    if d.Stats.pages_evicted = 0 then
      failwith "perf-page: 32-page budget evicted nothing";
    if d.Stats.pages_written_back = 0 then
      failwith "perf-page: dirty file pages never hit the writeback barrier");
  let json_rows =
    List.map
      (fun (b, (d, peak)) ->
        Printf.sprintf
          "    { \"ram_pages\": %s, \"major_faults\": %d, \"minor_faults\": %d, \
           \"pages_evicted\": %d, \"pages_written_back\": %d, \"peak_resident\": %d }"
          (match b with None -> "null" | Some n -> string_of_int n)
          d.Stats.major_faults d.Stats.minor_faults d.Stats.pages_evicted
          d.Stats.pages_written_back peak)
      ((None, (base, peak0)) :: curve)
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"demand_paging\",\n\
      \  \"working_set_pages\": %d,\n\
      \  \"sweep_rounds\": %d,\n\
      \  \"cycles_identical_all_budgets_and_pager_off\": true,\n\
      \  \"cycles\": %d,\n\
      \  \"curve\": [\n%s\n  ],\n\
      \  \"stats\": %s\n\
       }\n"
      ws_pages rounds (Stats.cycles base)
      (String.concat ",\n" json_rows) (Stats.to_json base)
  in
  let path = Filename.concat (Sys.getcwd ()) "BENCH_page.json" in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "\nwrote %s\n" path;
  Vm_object.enabled := saved_enabled;
  Vm_object.ram_pages := saved_ram;
  Vm_object.reset ()

(* ---------------------------------------------------------------------- *)
(* perf-cluster: cluster rounds spread over OCaml 5 domains                *)
(* ---------------------------------------------------------------------- *)

(* Per-machine interpreter load: enough straight-line arithmetic that a
   cluster round is dominated by ISA stepping, the part that actually
   parallelises across domains. *)
let cluster_compute_src =
  {|
int main() {
  int i;
  int s;
  s = 0;
  i = 0;
  while (i < 12000) {
    s = s + i; s = s + i; s = s + i; s = s + i;
    s = s - i; s = s - i; s = s - i; s = s + 1;
    i = i + 1;
  }
  return s - 72006000 + 42;
}
|}

(* Eight machines, each running one ISA compute process plus an
   rwhod-shaped pair (a broadcast tx, an inbox-draining rx daemon).
   Gates: per-machine observables (compute exit codes, datagrams
   received) and the merged simulated costs are identical at every
   domain count; wall time is reported per domain count, and the >= 2x
   scaling gate applies only when the host actually has >= 4 cores. *)
let perf_cluster () =
  header "PERF-CLUSTER: cluster rounds spread over OCaml 5 domains";
  let module Cluster = Hemlock_os.Cluster in
  let machines = 8 in
  let net_rounds = 6 in
  let payload = 128 in
  let expected_rx = (machines - 1) * net_rounds in
  let build () =
    (* pinned to [Ideal]: the gates below assert exact full-matrix
       delivery regardless of HEMLOCK_NET_PROFILE *)
    let c = Cluster.create ~profile:Hemlock_os.Net.Ideal ~machines () in
    let received = Array.make machines 0 in
    let computes =
      Array.init machines (fun i ->
          let k = Cluster.machine c i in
          ignore (Ldl.install k);
          Hemlock_runtime.Sync.install k;
          Fs.mkdir (Kernel.fs k) "/home/w";
          install_c k "/home/w/main.o" cluster_compute_src;
          ignore
            (link k ~dir:"/home/w" ~specs:[ ("main.o", Sharing.Static_private) ] "prog");
          let rx =
            Kernel.spawn_native k ~name:"rx" (fun k proc ->
                while true do
                  ignore (Kernel.msg_recv k proc Cluster.inbox);
                  received.(i) <- received.(i) + 1
                done;
                0)
          in
          Kernel.set_daemon k rx;
          ignore
            (Kernel.spawn_native k ~name:"tx" (fun _k _proc ->
                 for r = 1 to net_rounds do
                   Cluster.broadcast c ~from:i
                     (Bytes.make payload (Char.chr (64 + ((i + r) mod 32))))
                 done;
                 0));
          Kernel.spawn_exec k "/home/w/prog")
    in
    (c, received, computes)
  in
  let run_at domains =
    let c, received, computes = build () in
    let before = Stats.snapshot () in
    let t0 = Unix.gettimeofday () in
    Cluster.run ~domains c;
    let dt = Unix.gettimeofday () -. t0 in
    let d = Stats.diff ~before ~after:(Stats.snapshot ()) in
    Array.iteri
      (fun i p ->
        match p.Proc.state with
        | Proc.Zombie 42 -> ()
        | _ -> failwith (Printf.sprintf "perf-cluster: machine %d compute wrong exit" i))
      computes;
    Array.iteri
      (fun i n ->
        if n <> expected_rx then
          failwith
            (Printf.sprintf "perf-cluster: machine %d received %d/%d datagrams" i n
               expected_rx))
      received;
    (d, dt)
  in
  let reps = 3 in
  let profile domains =
    let runs = List.init reps (fun _ -> run_at domains) in
    let d0 = fst (List.hd runs) in
    List.iter
      (fun (d, _) ->
        if Stats.cycles d <> Stats.cycles d0 then
          failwith "perf-cluster: simulated costs differ across repetitions")
      runs;
    (d0, List.fold_left (fun acc (_, dt) -> min acc dt) infinity runs)
  in
  let counts = [ 1; 2; 4 ] in
  let results = List.map (fun n -> (n, profile n)) counts in
  let base, t1 = List.assoc 1 results in
  let same a b =
    a.Stats.instructions = b.Stats.instructions
    && a.Stats.syscalls = b.Stats.syscalls
    && a.Stats.faults = b.Stats.faults
    && a.Stats.context_switches = b.Stats.context_switches
    && a.Stats.messages_sent = b.Stats.messages_sent
    && a.Stats.bytes_copied = b.Stats.bytes_copied
    && Stats.cycles a = Stats.cycles b
  in
  List.iter
    (fun (n, (d, _)) ->
      if not (same base d) then
        failwith
          (Printf.sprintf "perf-cluster: simulated costs differ at %d domains vs 1" n))
    results;
  Printf.printf
    "%d machines x (1 ISA compute process + rwhod tx/rx pair), %d broadcast\n\
     datagrams per machine; every domain count bills the identical %d cycles,\n\
     %d messages, and every machine receives all %d peer datagrams\n\n"
    machines net_rounds (Stats.cycles base) base.Stats.messages_sent expected_rx;
  Printf.printf "%-8s | %12s | %8s\n" "domains" "wall ms" "speedup";
  Printf.printf "---------+--------------+---------\n";
  List.iter
    (fun (n, (_, dt)) ->
      Printf.printf "%-8d | %12.2f | %7.2fx\n" n (dt *. 1e3) (t1 /. dt))
    results;
  let host_cores = Domain.recommended_domain_count () in
  let _, t4 = List.assoc 4 results in
  let speedup4 = t1 /. t4 in
  if host_cores >= 4 then begin
    if speedup4 < 2.0 then
      failwith
        (Printf.sprintf "perf-cluster: expected >= 2x at 4 domains, got %.2fx" speedup4)
  end
  else
    Printf.printf
      "\nhost reports %d usable core(s): the >= 2x wall-clock gate needs >= 4,\n\
       so only the determinism gates apply on this machine\n"
      host_cores;
  let json =
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"cluster_domains\",\n\
      \  \"machines\": %d,\n\
      \  \"host_cores\": %d,\n\
      \  \"costs_identical_all_domain_counts\": true,\n\
      \  \"cycles\": %d,\n\
      \  \"messages\": %d,\n\
      \  \"stats\": %s,\n\
      \  \"runs\": [\n%s\n  ]\n\
       }\n"
      machines host_cores (Stats.cycles base) base.Stats.messages_sent
      (Stats.to_json base)
      (String.concat ",\n"
         (List.map
            (fun (n, (_, dt)) ->
              Printf.sprintf "    { \"domains\": %d, \"wall_ns\": %.0f, \"speedup\": %.3f }"
                n (dt *. 1e9) (t1 /. dt))
            results))
  in
  let path = Filename.concat (Sys.getcwd ()) "BENCH_cluster.json" in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "\nwrote %s\n" path

(* ---------------------------------------------------------------------- *)
(* perf-net: cluster traffic through lossy network profiles               *)
(* ---------------------------------------------------------------------- *)

(* N machines x simulated users: the gossip rwhod deployment plus, each
   epoch, a user on every machine exercising local message-queue IPC and
   firing a reliable remote-exec request at a random peer.  Run once per
   network profile; report delivery/drop/duplicate counts, convergence
   epochs and delivery-latency percentiles to BENCH_net.json.  The
   determinism gate reruns ideal and lossy at 4 domains and requires the
   identical trace. *)
let perf_net () =
  header "PERF-NET: cluster traffic under deterministic loss and latency";
  let module Cluster = Hemlock_os.Cluster in
  let module Net = Hemlock_os.Net in
  let module Gossip = Rwho.Gossip in
  let module Prng = Hemlock_util.Prng in
  let module Serializer = Hemlock_baseline.Serializer in
  let machines = 6 in
  let epochs = 5 in
  let seed = 11 in
  let run_profile profile ~domains =
    let g =
      Gossip.create ~profile ~seed ~domains Rwho.Shared_db ~machines ()
    in
    let c = Gossip.cluster g in
    let timeouts = Array.make machines 0 in
    let execs = Array.make machines 0 in
    (* per-machine user randomness, drawn only inside that machine's
       processes — same trace at every domain count *)
    let rngs = Array.init machines (fun i -> Prng.stream ~seed:(seed + 0x515) ~index:i) in
    let drive i k =
      ignore
        (Kernel.spawn_native k ~name:"user" (fun k proc ->
             let rng = rngs.(i) in
             (* local IPC: a private queue exercised end to end *)
             let q = Printf.sprintf "user-m%d" i in
             if not (Kernel.msgq_exists k q) then Kernel.msgq_create k q ~capacity:4;
             for n = 1 to 3 do
               Kernel.msg_send k proc q (Bytes.make (16 + n) 'u');
               ignore (Kernel.msg_recv k proc q)
             done;
             (* remote exec on a random peer, reliably *)
             let p = Prng.int rng (machines - 1) in
             let p = if p >= i then p + 1 else p in
             let cost = 50 + Prng.int rng 200 in
             (match
                Cluster.send_reliable c ~from:i ~dst:p
                  (Serializer.to_binary
                     (Serializer.List [ Serializer.Str "exec"; Serializer.Int cost ]))
              with
             | Ok () -> execs.(i) <- execs.(i) + 1
             | Error e ->
               assert (e = Hemlock_os.Errno.ETIMEDOUT);
               timeouts.(i) <- timeouts.(i) + 1);
             0))
    in
    let before = Stats.snapshot () in
    for _ = 1 to epochs do
      Gossip.epoch ~drive g
    done;
    let convergence = Gossip.converge ~max_epochs:64 g in
    let d = Stats.diff ~before ~after:(Stats.snapshot ()) in
    let tel = Net.telemetry (Cluster.net c) in
    let sum a = Array.fold_left ( + ) 0 a in
    let rounds = Cluster.rounds c in
    (* every live machine must read the same database at the end *)
    if not (Gossip.converged g) then
      failwith "perf-net: cluster failed to converge within the epoch budget";
    let fingerprint = Digest.to_hex (Digest.string (Gossip.ruptime g 0 ^ Gossip.rwho g 0)) in
    ( tel,
      sum timeouts,
      sum execs,
      convergence,
      rounds,
      Stats.cycles d,
      fingerprint )
  in
  let profiles = [ Net.Ideal; Net.Lan; Net.Wan; Net.Lossy ] in
  (* determinism gate: ideal and lossy must yield the identical delivery
     trace, simulated costs and database at 1 and 4 domains *)
  List.iter
    (fun profile ->
      let t1, to1, ex1, cv1, r1, cy1, f1 = run_profile profile ~domains:1 in
      let t4, to4, ex4, cv4, r4, cy4, f4 = run_profile profile ~domains:4 in
      if
        (t1.Net.t_sent, t1.Net.t_delivered, t1.Net.t_dropped, t1.Net.t_duplicated)
        <> (t4.Net.t_sent, t4.Net.t_delivered, t4.Net.t_dropped, t4.Net.t_duplicated)
        || t1.Net.t_latency <> t4.Net.t_latency
        || (to1, ex1, cv1, r1, cy1, f1) <> (to4, ex4, cv4, r4, cy4, f4)
      then
        failwith
          (Printf.sprintf "perf-net: %s trace differs at 4 domains vs 1"
             (Net.profile_to_string profile)))
    [ Net.Ideal; Net.Lossy ];
  Printf.printf
    "%d machines x (gossip rwhod + 1 user: local msgq IPC + reliable remote\n\
     exec), %d epochs then anti-entropy to convergence; ideal and lossy\n\
     traces verified identical at 1 and 4 domains\n\n"
    machines epochs;
  Printf.printf "%-7s | %5s | %5s | %5s | %4s | %5s | %5s | %4s | %4s | %4s\n"
    "profile" "sent" "deliv" "drop" "dup" "tmout" "convg" "p50" "p95" "p99";
  Printf.printf
    "--------+-------+-------+-------+------+-------+-------+------+------+------\n";
  let rows =
    List.map
      (fun profile ->
        let tel, timeouts, execs, convergence, rounds, cycles, _fp =
          run_profile profile ~domains:1
        in
        let p n = Net.percentile tel n in
        let conv_str = match convergence with Some n -> string_of_int n | None -> "-" in
        Printf.printf "%-7s | %5d | %5d | %5d | %4d | %5d | %5s | %4d | %4d | %4d\n"
          (Net.profile_to_string profile)
          tel.Net.t_sent tel.Net.t_delivered tel.Net.t_dropped tel.Net.t_duplicated
          timeouts conv_str (p 50) (p 95) (p 99);
        (profile, tel, timeouts, execs, convergence, rounds, cycles, p))
      profiles
  in
  (* sanity gates: the ideal profile drops nothing; the lossy profiles
     still converge and still execute the user traffic *)
  List.iter
    (fun (profile, tel, timeouts, execs, convergence, _rounds, _cycles, _p) ->
      (match profile with
      | Net.Ideal ->
        if tel.Net.t_dropped <> 0 || tel.Net.t_duplicated <> 0 || timeouts <> 0 then
          failwith "perf-net: ideal profile lost or duplicated traffic"
      | Net.Lan | Net.Wan | Net.Lossy -> ());
      if convergence = None then
        failwith
          (Printf.sprintf "perf-net: %s did not converge" (Net.profile_to_string profile));
      if execs + timeouts <> machines * epochs then
        failwith "perf-net: user exec requests unaccounted for")
    rows;
  let json =
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"net_profiles\",\n\
      \  \"machines\": %d,\n\
      \  \"epochs\": %d,\n\
      \  \"seed\": %d,\n\
      \  \"trace_identical_1_and_4_domains\": true,\n\
      \  \"stats\": %s,\n\
      \  \"profiles\": [\n%s\n  ]\n\
       }\n"
      machines epochs seed
      (Stats.to_json (Stats.snapshot ()))
      (String.concat ",\n"
         (List.map
            (fun (profile, tel, timeouts, execs, convergence, rounds, cycles, p) ->
              Printf.sprintf
                "    { \"profile\": %S, \"sent\": %d, \"delivered\": %d, \"dropped\": \
                 %d, \"duplicated\": %d, \"timeouts\": %d, \"execs_completed\": %d, \
                 \"convergence_epochs\": %s, \"rounds\": %d, \"cycles\": %d, \
                 \"delivered_per_round\": %.3f, \"latency_p50\": %d, \"latency_p95\": \
                 %d, \"latency_p99\": %d }"
                (Net.profile_to_string profile)
                tel.Net.t_sent tel.Net.t_delivered tel.Net.t_dropped
                tel.Net.t_duplicated timeouts execs
                (match convergence with Some n -> string_of_int n | None -> "null")
                rounds cycles
                (float_of_int tel.Net.t_delivered /. float_of_int (max 1 rounds))
                (p 50) (p 95) (p 99))
            rows))
  in
  let path = Filename.concat (Sys.getcwd ()) "BENCH_net.json" in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "\nwrote %s\n" path

let crash_sweep seeds =
  header "CRASH-SWEEP: deterministic fault plans over /shared op traffic";
  Printf.printf "%6s | %4s | %7s | %7s | %8s | %8s | %s\n" "seed" "ops" "faults"
    "crashes" "replayed" "rolled" "verdict";
  Printf.printf "-------+------+---------+---------+----------+----------+--------\n";
  let failures = ref 0 in
  List.iter
    (fun seed ->
      let fs = Fs.create () in
      Fs.mkdir fs "/shared/d";
      let prng = Prng.create ~seed in
      let nops = 12 + Prng.int prng 12 in
      let payload () =
        String.init (1 + Prng.int prng 12) (fun _ -> Char.chr (97 + Prng.int prng 26))
      in
      let pick () = Prng.choose prng sweep_pool in
      let injected_before = Stats.global.Stats.faults_injected in
      Fault.configure_random seed;
      let crashes = ref 0 and replayed = ref 0 and rolled = ref 0 in
      let ok = ref true in
      for _ = 1 to nops do
        let op () =
          match Prng.int prng 7 with
          | 0 -> Fs.create_file fs (pick ())
          | 1 -> Fs.write_file fs (pick ()) (Bytes.of_string (payload ()))
          | 2 -> Fs.append_file fs (pick ()) (Bytes.of_string (payload ()))
          | 3 -> Fs.rename fs ~src:(pick ()) (pick ())
          | 4 -> Fs.unlink fs (pick ())
          | 5 ->
            (* stable-link persist traffic: the fs.stable site fires
               before the journalled write, so plans arming it get to
               crash mid-persist like any other /shared writer *)
            Stable_link.persist_raw fs ~key:(payload ())
          | _ ->
            (* pager traffic: the eviction writeback barrier, so plans
               arming [fs.pageout] get to crash mid-flush too *)
            let path = pick () in
            let seg = Fs.segment_of fs path in
            Fs.page_writeback fs ~path ~seg ~page:(Prng.int prng 4)
        in
        match op () with
        | () | (exception Fs.Error _) | (exception Fault.Injected _) -> ()
        | exception Fault.Crash _ ->
          incr crashes;
          Fault.clear ();
          Fs.rescan_shared fs;
          let r = Fs.fsck fs in
          replayed := !replayed + r.Fs.fsck_replayed;
          rolled := !rolled + r.Fs.fsck_rolled_back;
          if not (Fs.fsck fs).Fs.fsck_clean then ok := false
      done;
      (* a short cluster burst so the net.send / net.deliver sites fire
         under the same plan: drops just vanish (datagram loss is not a
         consistency event), a crash kills the mid-operation machine *)
      (let module Cluster = Hemlock_os.Cluster in
       match
         let c = Cluster.create ~profile:Hemlock_os.Net.Ideal ~seed ~machines:2 () in
         for i = 0 to 1 do
           ignore
             (Kernel.spawn_native (Cluster.machine c i) ~name:"burst" (fun _k _proc ->
                  for r = 1 to 3 do
                    Cluster.broadcast c ~from:i (Bytes.make (8 + r) 'b')
                  done;
                  0))
         done;
         Cluster.run c
       with
       | () | (exception Fault.Injected _) | (exception Kernel.Deadlock _) -> ()
       | exception Fault.Crash _ -> incr crashes);
      Fault.clear ();
      if not (Fs.fsck fs).Fs.fsck_clean then ok := false;
      if not !ok then incr failures;
      Printf.printf "%6d | %4d | %7d | %7d | %8d | %8d | %s\n" seed nops
        (Stats.global.Stats.faults_injected - injected_before)
        !crashes !replayed !rolled
        (if !ok then "clean" else "FSCK NOT CLEAN"))
    seeds;
  if !failures > 0 then begin
    Printf.printf "\ncrash-sweep: %d seed(s) left the file system dirty\n" !failures;
    exit 1
  end;
  Printf.printf "\ncrash-sweep: every recovery fsck came back clean\n"

(* ---------------------------------------------------------------------- *)

let experiments =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6); ("e7", e7);
    ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11); ("e12", e12); ("e13", e13);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let sweep_seeds = List.filter_map int_of_string_opt args in
  let wanted =
    List.filter
      (fun a ->
        a <> "bechamel" && a <> "perf" && a <> "perf-link" && a <> "perf-vm"
        && a <> "perf-jit" && a <> "perf-profile" && a <> "perf-page"
        && a <> "perf-cluster" && a <> "perf-net" && a <> "crash-sweep"
        && int_of_string_opt a = None)
      args
  in
  let run_bechamel = List.mem "bechamel" args in
  let run_perf = List.mem "perf" args in
  let run_perf_link = List.mem "perf-link" args in
  let run_perf_vm = List.mem "perf-vm" args in
  let run_perf_jit = List.mem "perf-jit" args in
  let run_perf_profile = List.mem "perf-profile" args in
  let run_perf_page = List.mem "perf-page" args in
  let run_perf_cluster = List.mem "perf-cluster" args in
  let run_perf_net = List.mem "perf-net" args in
  let run_crash_sweep = List.mem "crash-sweep" args in
  let selected =
    (* `perf`/`perf-link`/`perf-vm`/`perf-jit`/`crash-sweep` alone run
       just those, not every experiment *)
    if
      wanted = []
      && (run_perf || run_perf_link || run_perf_vm || run_perf_jit
         || run_perf_profile || run_perf_page || run_perf_cluster || run_perf_net
         || run_crash_sweep)
    then []
    else if wanted = [] then experiments
    else
      List.filter_map
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> Some (name, f)
          | None ->
            Printf.eprintf "unknown experiment %s (have: %s)\n" name
              (String.concat " " (List.map fst experiments));
            None)
        wanted
  in
  List.iter (fun (_, f) -> f ()) selected;
  if run_bechamel then bechamel_suite ();
  if run_perf then perf ();
  if run_perf_link then perf_link ();
  if run_perf_vm then perf_vm ();
  if run_perf_jit then perf_jit ();
  if run_perf_profile then perf_profile ();
  if run_perf_page then perf_page ();
  if run_perf_cluster then perf_cluster ();
  if run_perf_net then perf_net ();
  if run_crash_sweep then
    crash_sweep (if sweep_seeds = [] then List.init 10 (fun i -> i + 1) else sweep_seeds);
  Printf.printf "\nAll experiments completed.\n"

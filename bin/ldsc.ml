(* ldsc — drive the Hemlock toolchain from the host command line.

   Source files from the host file system are loaded into a fresh
   simulated machine, compiled (Hem-C for .c, assembly for .s), linked
   with lds under the sharing classes given on the command line, and
   executed; the simulated console is printed.

     ldsc run main.c counter.c:dpub        # share counter.c publicly
     ldsc run -L libs main.c lib.o:dp      # dynamic private module
     ldsc run --runs 3 main.c counter.c:dpub   # run the program 3 times
     ldsc compile prog.c -o prog.o         # emit a template to the host
     ldsc objdump prog.o                   # inspect a template
     ldsc asm prog.c                       # show generated assembly *)

module Kernel = Hemlock_os.Kernel
module Proc = Hemlock_os.Proc
module Fs = Hemlock_sfs.Fs
module Path = Hemlock_sfs.Path
module Layout = Hemlock_vm.Layout
module As = Hemlock_vm.Address_space
module Stats = Hemlock_util.Stats
module Objfile = Hemlock_obj.Objfile
module Cc = Hemlock_cc.Cc
module Asm = Hemlock_isa.Asm
module Lds = Hemlock_linker.Lds
module Ldl = Hemlock_linker.Ldl
module Search = Hemlock_linker.Search
module Sharing = Hemlock_linker.Sharing
open Cmdliner

let read_host_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_host_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

(* A spec is "file" or "file:class". *)
let parse_spec s =
  match String.rindex_opt s ':' with
  | Some i ->
    let file = String.sub s 0 i in
    let cls = String.sub s (i + 1) (String.length s - i - 1) in
    (match Sharing.of_string cls with
    | Some cls -> Ok (file, cls)
    | None -> Error (Printf.sprintf "unknown sharing class %S in %S" cls s))
  | None -> Ok (s, Sharing.Static_private)

let compile_host_file ~use_gp path =
  let src = read_host_file path in
  let name = Filename.basename path in
  match Filename.extension path with
  | ".c" -> Cc.to_object ~use_gp ~name:(Filename.remove_extension name ^ ".o") src
  | ".lisp" | ".lsp" ->
    Hemlock_lisp.Lisp.to_object ~name:(Filename.remove_extension name ^ ".o") src
  | ".s" -> Asm.assemble ~name:(Filename.remove_extension name ^ ".o") src
  | ".o" -> Objfile.parse (Bytes.of_string src)
  | ext -> failwith (Printf.sprintf "%s: unknown source kind %S (want .c/.lisp/.s/.o)" path ext)

(* ----- run ----- *)

let cmd_run specs lib_dirs env_pairs use_gp show_stats show_layout show_linkstat runs =
  let specs =
    List.map (fun s -> match parse_spec s with Ok v -> v | Error e -> failwith e) specs
  in
  if specs = [] then failwith "no input files";
  let k = Kernel.create () in
  let ldl = Ldl.install k in
  Hemlock_runtime.Sync.install k;
  let fs = Kernel.fs k in
  Fs.mkdir fs "/home/work";
  if not (Fs.exists fs "/shared/lib") then Fs.mkdir fs "/shared/lib";
  (* Install each file: public templates go to /shared/lib, the rest to
     /home/work. *)
  let lds_specs =
    List.map
      (fun (file, cls) ->
        let obj = compile_host_file ~use_gp file in
        let base = Filename.remove_extension (Filename.basename file) ^ ".o" in
        let dest =
          if Sharing.is_public cls then "/shared/lib/" ^ base else "/home/work/" ^ base
        in
        Fs.write_file fs dest (Objfile.serialize obj);
        { Lds.sp_name = dest; sp_class = cls })
      specs
  in
  let env = List.map (fun kv ->
      match String.index_opt kv '=' with
      | Some i -> (String.sub kv 0 i, String.sub kv (i + 1) (String.length kv - i - 1))
      | None -> (kv, "")) env_pairs
  in
  let ctx = { Search.fs; cwd = Path.of_string ~cwd:Path.root "/home/work"; env } in
  let warnings =
    Lds.link ctx ~cli_dirs:lib_dirs ~specs:lds_specs ~output:"a.out" ()
  in
  List.iter (Printf.eprintf "lds: warning: %s\n") warnings;
  Stats.reset ();
  let last = ref None in
  for run = 1 to runs do
    Kernel.console_clear k;
    let proc = Kernel.spawn_exec k ~env "/home/work/a.out" in
    Kernel.run k;
    last := Some proc;
    let code = match proc.Proc.state with Proc.Zombie c -> c | _ -> -1 in
    if runs > 1 then Printf.printf "--- run %d (exit %d) ---\n" run code;
    print_string (Kernel.console k);
    if runs = 1 && code <> 0 then Printf.eprintf "[exit code %d]\n" code
  done;
  List.iter (Printf.eprintf "ldl: warning: %s\n") (Ldl.warnings ldl);
  (match (show_layout, !last) with
  | true, Some proc ->
    Printf.printf "--- address space ---\n%s\n" (Format.asprintf "%a" As.pp proc.Proc.space)
  | _, _ -> ());
  if show_stats then
    Printf.printf "--- stats ---\n%s\n" (Format.asprintf "%a" Stats.pp (Stats.snapshot ()));
  if show_linkstat then
    Printf.printf "--- linkstat ---\n%s\n" (Ldl.linkstat_json ldl);
  0

(* ----- compile / asm / objdump ----- *)

let cmd_compile file out use_gp =
  let obj = compile_host_file ~use_gp file in
  let out =
    match out with Some o -> o | None -> Filename.remove_extension file ^ ".o"
  in
  write_host_file out (Bytes.to_string (Objfile.serialize obj));
  Printf.printf "wrote %s (%d bytes text, %d data, %d bss, %d relocs)\n" out
    (Bytes.length obj.Objfile.text) (Bytes.length obj.Objfile.data) obj.Objfile.bss_size
    (List.length obj.Objfile.relocs);
  0

let cmd_asm file use_gp =
  print_string (Cc.to_asm ~use_gp (read_host_file file));
  0

let cmd_exedump file =
  let bytes = Bytes.of_string (read_host_file file) in
  if not (Hemlock_linker.Aout.looks_like bytes) then failwith (file ^ ": not an a.out");
  Format.printf "%a@." Hemlock_linker.Aout.pp (Hemlock_linker.Aout.parse bytes);
  0

let cmd_objdump file =
  let obj = Objfile.parse (Bytes.of_string (read_host_file file)) in
  Format.printf "%a@." Objfile.pp obj;
  Format.printf "disassembly:@.%s" (Hemlock_isa.Disasm.text ~base:0 obj.Objfile.text);
  0

(* ----- cmdliner plumbing ----- *)

let wrap f =
  try f () with
  | Failure msg | Cc.Error msg | Hemlock_lisp.Lisp.Error msg ->
    Printf.eprintf "ldsc: %s\n" msg;
    1
  | Lds.Link_error msg ->
    Printf.eprintf "ldsc: link error: %s\n" msg;
    1
  | Hemlock_linker.Modinst.Link_error msg ->
    Printf.eprintf "ldsc: link error: %s\n" msg;
    1
  | Fs.Error { op; path; kind } ->
    Printf.eprintf "ldsc: %s %s: %s\n" op path (Fs.err_kind_to_string kind);
    1
  | Sys_error msg ->
    Printf.eprintf "ldsc: %s\n" msg;
    1

let specs_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"FILE[:CLASS]"
         ~doc:"Source files (.c Hem-C, .lisp Hem-Lisp, .s assembly, .o template), each optionally \
               tagged with a sharing class: sp (static-private, default), dp \
               (dynamic-private), spub (static-public), dpub (dynamic-public).")

let lib_dirs_arg =
  Arg.(value & opt_all string [] & info [ "L" ] ~docv:"DIR" ~doc:"Extra module search directory.")

let env_arg =
  Arg.(value & opt_all string [] & info [ "env" ] ~docv:"K=V"
         ~doc:"Environment variable for the program (e.g. LD_LIBRARY_PATH=/x).")

let use_gp_arg =
  Arg.(value & flag & info [ "use-gp" ]
         ~doc:"Compile with \\$gp-relative addressing for scalar globals (rejected \
               for public modules, as in the paper).")

let stats_arg = Arg.(value & flag & info [ "stats" ] ~doc:"Print simulator cost counters.")

let layout_arg =
  Arg.(value & flag & info [ "layout" ] ~doc:"Print the final process's address space.")

let linkstat_arg =
  Arg.(value & flag & info [ "linkstat" ]
         ~doc:"Print the kernel linkstat dump: per-process symbol-resolution \
               provenance (cold walk vs. plan replay vs. stable-boot replay, hash \
               vs. linear probe) and the full cost-counter snapshot, as JSON.")

let runs_arg =
  Arg.(value & opt int 1 & info [ "runs" ] ~docv:"N"
         ~doc:"Execute the program N times (public modules persist between runs).")

let out_arg = Arg.(value & opt (some string) None & info [ "o" ] ~docv:"OUT" ~doc:"Output file.")

let file_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")

let run_cmd =
  Cmd.v (Cmd.info "run" ~doc:"Compile, link and execute a program on a fresh simulated machine")
    Term.(
      const (fun specs dirs env gp st lay lstat runs ->
          wrap (fun () -> cmd_run specs dirs env gp st lay lstat runs))
      $ specs_arg $ lib_dirs_arg $ env_arg $ use_gp_arg $ stats_arg $ layout_arg
      $ linkstat_arg $ runs_arg)

let compile_cmd =
  Cmd.v (Cmd.info "compile" ~doc:"Compile one source file to a template .o on the host")
    Term.(const (fun f o gp -> wrap (fun () -> cmd_compile f o gp)) $ file_arg $ out_arg $ use_gp_arg)

let asm_cmd =
  Cmd.v (Cmd.info "asm" ~doc:"Show the assembly generated for a Hem-C file")
    Term.(const (fun f gp -> wrap (fun () -> cmd_asm f gp)) $ file_arg $ use_gp_arg)

let objdump_cmd =
  Cmd.v (Cmd.info "objdump" ~doc:"Inspect a template object file")
    Term.(const (fun f -> wrap (fun () -> cmd_objdump f)) $ file_arg)

let exedump_cmd =
  Cmd.v (Cmd.info "exedump" ~doc:"Inspect an a.out produced by lds (use `run --keep` flows or compile one out-of-tree)")
    Term.(const (fun f -> wrap (fun () -> cmd_exedump f)) $ file_arg)

let () =
  let info =
    Cmd.info "ldsc"
      ~doc:"The Hemlock toolchain driver: linking shared segments, in simulation"
  in
  exit (Cmd.eval' (Cmd.group info [ run_cmd; compile_cmd; asm_cmd; objdump_cmd; exedump_cmd ]))

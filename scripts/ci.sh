#!/bin/sh
# Tier-1 gate: build, the full test suite with the memory-system fast
# path on and off, and the interpreter-throughput benchmark (which
# itself asserts the simulated cost model is cache-independent and
# writes BENCH_interp.json).
set -e
cd "$(dirname "$0")/.."

echo "== build =="
dune build

echo "== tests (caches on) =="
dune runtest --force

echo "== tests (caches off: HEMLOCK_NO_TLB + HEMLOCK_NO_DCACHE) =="
HEMLOCK_NO_TLB=1 HEMLOCK_NO_DCACHE=1 dune runtest --force

echo "== tests (linker fast path off: HEMLOCK_NO_SYMHASH + HEMLOCK_NO_PLANCACHE) =="
HEMLOCK_NO_SYMHASH=1 HEMLOCK_NO_PLANCACHE=1 dune runtest --force

echo "== tests (stable linking off: HEMLOCK_NO_STABLELINK) =="
HEMLOCK_NO_STABLELINK=1 dune runtest --force

echo "== tests (copy-on-write off: HEMLOCK_NO_COW) =="
HEMLOCK_NO_COW=1 dune runtest --force

echo "== tests (trace JIT off: HEMLOCK_NO_JIT) =="
HEMLOCK_NO_JIT=1 dune runtest --force

echo "== tests (trace JIT hot: HEMLOCK_JIT_THRESHOLD=1) =="
HEMLOCK_JIT_THRESHOLD=1 dune runtest --force

echo "== tests (demand paging off: HEMLOCK_NO_PAGER) =="
HEMLOCK_NO_PAGER=1 dune runtest --force

echo "== tests (RAM squeezed: HEMLOCK_RAM_PAGES=32) =="
HEMLOCK_RAM_PAGES=32 dune runtest --force

echo "== tests (clusters on 4 domains: HEMLOCK_DOMAINS=4) =="
HEMLOCK_DOMAINS=4 dune runtest --force

echo "== tests (range locks degraded to one big lock: HEMLOCK_NO_RANGELOCK=1) =="
HEMLOCK_NO_RANGELOCK=1 dune runtest --force

echo "== tests (network ideal, pinned: HEMLOCK_NET_PROFILE=ideal) =="
HEMLOCK_NET_PROFILE=ideal dune runtest --force

echo "== tests (network lossy: HEMLOCK_NET_PROFILE=lossy; gate is suite success — loss legitimately changes delivery) =="
HEMLOCK_NET_PROFILE=lossy dune runtest --force

echo "== examples =="
for ex in quickstart rwho_demo parallel_sum figure_editor lynx_tables editor_server; do
  echo "-- examples/$ex"
  dune exec "examples/$ex.exe" > /dev/null
done

echo "== crash sweep (deterministic fault plans; gate: recovery fsck clean) =="
dune exec bench/main.exe -- crash-sweep 1 2 3 4 5 6 7 8 9 10

echo "== crash sweep (clusters on 4 domains: HEMLOCK_DOMAINS=4) =="
HEMLOCK_DOMAINS=4 dune exec bench/main.exe -- crash-sweep 1 2 3 4 5 6 7 8 9 10

# Random fault plans draw from Fault.default_sites, which now includes
# net.send / net.deliver; the per-seed cluster burst inside crash-sweep
# exercises them.  A lossy network profile on top must not change the
# recovery verdicts.
echo "== crash sweep (network lossy: HEMLOCK_NET_PROFILE=lossy) =="
HEMLOCK_NET_PROFILE=lossy dune exec bench/main.exe -- crash-sweep 1 2 3 4 5 6 7 8 9 10

# The golden steps below double as the fault-layer-disabled check: the
# injection engine is compiled into every one of these paths but no plan
# is armed, and the transcripts must stay byte-identical to the seed.
echo "== golden transcript (E1-E13) =="
dune exec bench/main.exe -- e1 e2 e3 e4 e5 e6 e7 e8 e9 e10 e11 e12 e13 \
  > _build/e1_e13.txt
diff -u bench/golden_e1_e13.txt _build/e1_e13.txt
echo "golden transcript identical"

echo "== golden transcript (linker fast path off) =="
HEMLOCK_NO_SYMHASH=1 HEMLOCK_NO_PLANCACHE=1 \
  dune exec bench/main.exe -- e1 e2 e3 e4 e5 e6 e7 e8 e9 e10 e11 e12 e13 \
  > _build/e1_e13_nolinkfast.txt
diff -u bench/golden_e1_e13.txt _build/e1_e13_nolinkfast.txt
echo "golden transcript identical without the linker fast path"

echo "== golden transcript (stable linking off) =="
HEMLOCK_NO_STABLELINK=1 \
  dune exec bench/main.exe -- e1 e2 e3 e4 e5 e6 e7 e8 e9 e10 e11 e12 e13 \
  > _build/e1_e13_nostable.txt
diff -u bench/golden_e1_e13.txt _build/e1_e13_nostable.txt
echo "golden transcript identical without stable linking"

echo "== golden transcript (copy-on-write off) =="
HEMLOCK_NO_COW=1 \
  dune exec bench/main.exe -- e1 e2 e3 e4 e5 e6 e7 e8 e9 e10 e11 e12 e13 \
  > _build/e1_e13_nocow.txt
diff -u bench/golden_e1_e13.txt _build/e1_e13_nocow.txt
echo "golden transcript identical without copy-on-write"

echo "== golden transcript (trace JIT off) =="
HEMLOCK_NO_JIT=1 \
  dune exec bench/main.exe -- e1 e2 e3 e4 e5 e6 e7 e8 e9 e10 e11 e12 e13 \
  > _build/e1_e13_nojit.txt
diff -u bench/golden_e1_e13.txt _build/e1_e13_nojit.txt
echo "golden transcript identical without the trace JIT"

echo "== golden transcript (trace JIT hot: HEMLOCK_JIT_THRESHOLD=1) =="
HEMLOCK_JIT_THRESHOLD=1 \
  dune exec bench/main.exe -- e1 e2 e3 e4 e5 e6 e7 e8 e9 e10 e11 e12 e13 \
  > _build/e1_e13_hotjit.txt
diff -u bench/golden_e1_e13.txt _build/e1_e13_hotjit.txt
echo "golden transcript identical with every block trace-compiled"

echo "== golden transcript (demand paging off) =="
HEMLOCK_NO_PAGER=1 \
  dune exec bench/main.exe -- e1 e2 e3 e4 e5 e6 e7 e8 e9 e10 e11 e12 e13 \
  > _build/e1_e13_nopager.txt
diff -u bench/golden_e1_e13.txt _build/e1_e13_nopager.txt
echo "golden transcript identical without demand paging"

echo "== golden transcript (RAM squeezed: HEMLOCK_RAM_PAGES=32) =="
HEMLOCK_RAM_PAGES=32 \
  dune exec bench/main.exe -- e1 e2 e3 e4 e5 e6 e7 e8 e9 e10 e11 e12 e13 \
  > _build/e1_e13_ram32.txt
diff -u bench/golden_e1_e13.txt _build/e1_e13_ram32.txt
echo "golden transcript identical under a 32-page RAM budget"

echo "== golden transcript (single-domain oracle: HEMLOCK_DOMAINS=1) =="
HEMLOCK_DOMAINS=1 \
  dune exec bench/main.exe -- e1 e2 e3 e4 e5 e6 e7 e8 e9 e10 e11 e12 e13 \
  > _build/e1_e13_dom1.txt
diff -u bench/golden_e1_e13.txt _build/e1_e13_dom1.txt
echo "golden transcript identical on the single-domain oracle"

echo "== golden transcript (clusters on 4 domains: HEMLOCK_DOMAINS=4) =="
HEMLOCK_DOMAINS=4 \
  dune exec bench/main.exe -- e1 e2 e3 e4 e5 e6 e7 e8 e9 e10 e11 e12 e13 \
  > _build/e1_e13_dom4.txt
diff -u bench/golden_e1_e13.txt _build/e1_e13_dom4.txt
echo "golden transcript identical with clusters spread over 4 domains"

echo "== golden transcript (network ideal, pinned: HEMLOCK_NET_PROFILE=ideal) =="
HEMLOCK_NET_PROFILE=ideal HEMLOCK_NET_SEED=1 \
  dune exec bench/main.exe -- e1 e2 e3 e4 e5 e6 e7 e8 e9 e10 e11 e12 e13 \
  > _build/e1_e13_netideal.txt
diff -u bench/golden_e1_e13.txt _build/e1_e13_netideal.txt
echo "golden transcript identical with the ideal network pinned"

# Under a lossy profile the experiments must still *complete* (E5's
# cluster deployment pins its own delivery assumptions), but delivery
# differences are legitimate — only the ideal diff gates.
echo "== experiments complete under a lossy network (no golden gate) =="
HEMLOCK_NET_PROFILE=lossy \
  dune exec bench/main.exe -- e1 e2 e3 e4 e5 e6 e7 e8 e9 e10 e11 e12 e13 \
  > _build/e1_e13_netlossy.txt
echo "experiments completed under HEMLOCK_NET_PROFILE=lossy"

echo "== perf =="
dune exec bench/main.exe -- perf

echo "== perf-link (gates: stable boot >= 5x faster than cold boot, simulated costs identical) =="
dune exec bench/main.exe -- perf-link

echo "== perf-link (single-domain oracle: HEMLOCK_DOMAINS=1) =="
HEMLOCK_DOMAINS=1 dune exec bench/main.exe -- perf-link

echo "== perf-link (clusters on 4 domains: HEMLOCK_DOMAINS=4) =="
HEMLOCK_DOMAINS=4 dune exec bench/main.exe -- perf-link

echo "== perf-vm (gates: program-visible behaviour identical, cow copies <1/4 of eager, >=5x fork throughput) =="
dune exec bench/main.exe -- perf-vm

echo "== perf-jit (gates: simulated costs identical JIT on/off under invalidation stress) =="
dune exec bench/main.exe -- perf-jit

echo "== perf-page (gates: simulated costs identical at every RAM budget and pager off) =="
dune exec bench/main.exe -- perf-page

echo "== perf-cluster (gates: observables and simulated costs identical at 1/2/4 domains) =="
dune exec bench/main.exe -- perf-cluster

# perf-net internally reruns the ideal and lossy scenarios at 1 and 4
# domains and gates trace identity; the two invocations below smoke it
# with the suite's two domain defaults on top.
echo "== perf-net (gates: traffic trace identical at 1/4 domains; all profiles converge) =="
dune exec bench/main.exe -- perf-net

echo "== perf-net (clusters on 4 domains: HEMLOCK_DOMAINS=4) =="
HEMLOCK_DOMAINS=4 dune exec bench/main.exe -- perf-net

#!/bin/sh
# Tier-1 gate: build, the full test suite with the memory-system fast
# path on and off, and the interpreter-throughput benchmark (which
# itself asserts the simulated cost model is cache-independent and
# writes BENCH_interp.json).
set -e
cd "$(dirname "$0")/.."

echo "== build =="
dune build

echo "== tests (caches on) =="
dune runtest --force

echo "== tests (caches off: HEMLOCK_NO_TLB + HEMLOCK_NO_DCACHE) =="
HEMLOCK_NO_TLB=1 HEMLOCK_NO_DCACHE=1 dune runtest --force

echo "== perf =="
dune exec bench/main.exe -- perf

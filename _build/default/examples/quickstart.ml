(* Quickstart: transparent sharing of a variable between two programs.

   A "counter" module is written in Hem-C, compiled to a template on the
   shared partition, and linked into two different programs as a dynamic
   public module.  Neither program contains a single shared-memory
   set-up call: the counter is an ordinary extern, and the only
   Hemlock-specific thing anywhere is one linker argument.

   Run with:  dune exec examples/quickstart.exe *)

module Kernel = Hemlock_os.Kernel
module Fs = Hemlock_sfs.Fs
module Path = Hemlock_sfs.Path
module Cc = Hemlock_cc.Cc
module Lds = Hemlock_linker.Lds
module Ldl = Hemlock_linker.Ldl
module Search = Hemlock_linker.Search
module Sharing = Hemlock_linker.Sharing
module Objfile = Hemlock_obj.Objfile

(* The shared module: one variable, one function.  Nothing here knows it
   will be shared. *)
let counter_source = {|
int counter;

int bump() {
  counter = counter + 1;
  return counter;
}
|}

(* A client program: `bump` and `counter` are plain externs. *)
let program_source name =
  Printf.sprintf
    {|
extern int counter;
extern int bump();

int main() {
  print_str("%s: counter was ");
  print_int(counter);
  print_str(", bumped to ");
  print_int(bump());
  print_str("\n");
  return 0;
}
|}
    name

let () =
  (* Boot a simulated machine with the Hemlock linkers installed. *)
  let k = Kernel.create () in
  let _ldl = Ldl.install k in
  let fs = Kernel.fs k in

  (* "Compile" the shared template onto the shared partition, and the two
     programs' private sources into home directories. *)
  Fs.mkdir fs "/shared/lib";
  Fs.write_file fs "/shared/lib/counter.o"
    (Objfile.serialize (Cc.to_object ~name:"counter.o" counter_source));
  List.iter
    (fun name ->
      let home = "/home/" ^ name in
      Fs.mkdir fs home;
      Fs.write_file fs (home ^ "/main.o")
        (Objfile.serialize (Cc.to_object ~name:"main.o" (program_source name)));
      (* The Hemlock part: one extra linker argument tags the module's
         sharing class. *)
      let ctx = { Search.fs; cwd = Path.of_string ~cwd:Path.root home; env = [] } in
      ignore
        (Lds.link ctx
           ~specs:
             [
               { Lds.sp_name = "main.o"; sp_class = Sharing.Static_private };
               { Lds.sp_name = "/shared/lib/counter.o"; sp_class = Sharing.Dynamic_public };
             ]
           ~output:"prog" ()))
    [ "alpha"; "beta" ];

  (* Run alpha twice and beta once; they all see the same counter. *)
  ignore (Kernel.spawn_exec k "/home/alpha/prog");
  Kernel.run k;
  ignore (Kernel.spawn_exec k "/home/beta/prog");
  Kernel.run k;
  ignore (Kernel.spawn_exec k "/home/alpha/prog");
  Kernel.run k;
  print_string (Kernel.console k);

  Printf.printf "\nThe shared file system now contains:\n";
  List.iter
    (fun (slot, path) -> Printf.printf "  slot %4d at 0x%08x: %s\n" slot
        (Hemlock_vm.Layout.addr_of_slot slot) path)
    (Fs.shared_table fs);
  Printf.printf
    "\n'counter' was created by the dynamic linker the first time a program\n\
     touched it, lives at a globally unique address, and persists until\n\
     explicitly deleted - like a file, because it is one.\n"

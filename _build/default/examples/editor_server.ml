(* The paper's §3 vision: "rewriting the emacs editor with a functional
   interface to which every process with a text window can be linked.
   With lazy linking, we would not bother to bring the editor's more
   esoteric features into a particular process's address space unless
   and until they were needed."

   Here the "editor" is a suite of public modules: a core buffer module
   plus five feature modules, every one of them on the program's
   reachability graph.  The client uses two.  The rest are mapped
   (inaccessibly) but never linked.

   Run with:  dune exec examples/editor_server.exe *)

module Kernel = Hemlock_os.Kernel
module Fs = Hemlock_sfs.Fs
module Path = Hemlock_sfs.Path
module Cc = Hemlock_cc.Cc
module Lds = Hemlock_linker.Lds
module Ldl = Hemlock_linker.Ldl
module Search = Hemlock_linker.Search
module Sharing = Hemlock_linker.Sharing
module Modinst = Hemlock_linker.Modinst
module Objfile = Hemlock_obj.Objfile

let core_src = {|
char buffer[1024];
int buf_len;

int ed_insert(int ch) {
  buffer[buf_len] = ch;
  buf_len = buf_len + 1;
  return buf_len;
}

int ed_char_at(int i) { return buffer[i]; }
int ed_length() { return buf_len; }
|}

(* Each feature exports one entry point; some depend on others. *)
let features =
  [
    ( "ed_search",
      {|
extern int ed_char_at(int i);
extern int ed_length();
int ed_count(int ch) {
  int i; int n;
  i = 0; n = 0;
  while (i < ed_length()) {
    if (ed_char_at(i) == ch) { n = n + 1; }
    i = i + 1;
  }
  return n;
}|} );
    ("ed_spell", {|
extern int ed_count(int ch);
int ed_spellcheck() { return ed_count('z') * 100; }|});
    ("ed_calc", {|
int ed_evaluate(int x) { return x * x + 1; }|});
    ("ed_mail", {|
extern int ed_spellcheck();
int ed_send_mail() { return ed_spellcheck() + 1; }|});
    ("ed_art", {|
int ed_draw_banner() { return 9999; }|});
  ]

let client_src = {|
extern int ed_insert(int ch);
extern int ed_length();
extern int ed_count(int ch);

int main() {
  ed_insert('h'); ed_insert('e'); ed_insert('l'); ed_insert('l'); ed_insert('o');
  print_str("buffer holds ");
  print_int(ed_length());
  print_str(" chars, ");
  print_int(ed_count('l'));
  print_str(" of them 'l'\n");
  return 0;
}
|}

let () =
  let k = Kernel.create () in
  let ldl = Ldl.install k in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/shared/editor";
  let install name src =
    Fs.write_file fs
      (Printf.sprintf "/shared/editor/%s.o" name)
      (Objfile.serialize (Cc.to_object ~name:(name ^ ".o") src))
  in
  install "ed_core" core_src;
  List.iter (fun (name, src) -> install name src) features;
  (* Feature modules resolve the core through their own scope. *)
  let ctx = { Search.fs; cwd = Path.root; env = [] } in
  List.iter
    (fun (name, deps) ->
      Lds.embed_metadata ctx
        ~template:(Printf.sprintf "/shared/editor/%s.o" name)
        ~modules:deps ~search_path:[ "/shared/editor" ])
    [
      ("ed_search", [ "ed_core.o" ]);
      ("ed_spell", [ "ed_search.o" ]);
      ("ed_mail", [ "ed_spell.o" ]);
    ];
  Fs.mkdir fs "/home/client";
  Fs.write_file fs "/home/client/main.o"
    (Objfile.serialize (Cc.to_object ~name:"main.o" client_src));
  ignore
    (Lds.link
       { Search.fs; cwd = Path.of_string ~cwd:Path.root "/home/client"; env = [] }
       ~specs:
         ({ Lds.sp_name = "main.o"; sp_class = Sharing.Static_private }
         :: List.map
              (fun (name, _) ->
                { Lds.sp_name = Printf.sprintf "/shared/editor/%s.o" name;
                  sp_class = Sharing.Dynamic_public })
              (("ed_core", "") :: features))
       ~output:"edit" ());
  let proc = Kernel.spawn_exec k "/home/client/edit" in
  Kernel.run k;
  print_string (Kernel.console k);
  Printf.printf "\nThe client's reachability graph names all %d editor modules:\n"
    (1 + List.length features);
  List.iter
    (fun inst ->
      Printf.printf "  %-28s mapped at 0x%08x, %s\n" inst.Modinst.inst_key
        inst.Modinst.inst_base
        (if inst.Modinst.inst_obj.Objfile.relocs = [] then "self-contained"
         else if inst.Modinst.inst_linked then "LINKED on first use"
         else "never linked"))
    (Ldl.instances ldl proc);
  Printf.printf
    "\nOnly the modules that actually ran were linked on first touch; spell\n\
     and mail stayed as inaccessible mappings (calc and ascii-art are\n\
     self-contained, so creation already finished them) - lazy linking\n\
     carries the whole feature graph at the cost of only what runs.\n"

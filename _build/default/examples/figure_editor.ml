(* The xfig workload (paper sections 4 and 5): a figure kept as a
   pointer-linked structure in a shared segment, edited in place, with
   the position-dependence caveat demonstrated at the end.

   Run with:  dune exec examples/figure_editor.exe *)

module Kernel = Hemlock_os.Kernel
module Ldl = Hemlock_linker.Ldl
module Xfig = Hemlock_apps.Xfig
module Prng = Hemlock_util.Prng

let () =
  let k = Kernel.create () in
  let ldl = Ldl.install k in
  let done_ = ref false in
  ignore
    (Kernel.spawn_native k ~name:"xfig" (fun k proc ->
         Ldl.attach ldl proc;
         (* Session 1: draw a few objects.  No save step exists: the
            figure lives in /shared/figs/demo, which is both a file and
            the editor's live data structure. *)
         let rng = Prng.create ~seed:11 in
         Kernel.fs k |> fun fs ->
         if not (Hemlock_sfs.Fs.exists fs "/shared/figs") then
           Hemlock_sfs.Fs.mkdir fs "/shared/figs";
         let fig = Xfig.Shared_fig.create k proc ~path:"/shared/figs/demo" in
         List.iter (Xfig.Shared_fig.add k proc ~fig) (Xfig.gen_figure rng ~n:3);
         Printf.printf "session 1 drew %d objects\n" (Xfig.Shared_fig.count k proc ~fig);
         0));
  Kernel.run k;
  ignore
    (Kernel.spawn_native k ~name:"xfig2" (fun k proc ->
         Ldl.attach ldl proc;
         (* Session 2 (a different process): the figure is just there. *)
         let fig = Xfig.Shared_fig.attach k proc ~path:"/shared/figs/demo" in
         Printf.printf "session 2 opened the same figure: %d objects, no load/parse step\n"
           (Xfig.Shared_fig.count k proc ~fig);
         Xfig.Shared_fig.duplicate k proc ~fig ~dx:25 ~dy:25;
         Printf.printf "session 2 duplicated everything: now %d objects\n"
           (Xfig.Shared_fig.count k proc ~fig);
         List.iter
           (fun o ->
             Printf.printf "  kind=%d at (%d,%d) %dx%d\n" o.Xfig.o_kind o.Xfig.o_x o.Xfig.o_y
               o.Xfig.o_w o.Xfig.o_h)
           (Xfig.Shared_fig.objects k proc ~fig);
         (* The caveat (section 5, "Position-Dependent Files"): cp of the
            raw bytes breaks the internal pointers. *)
         let broken =
           Xfig.naive_copy_is_broken k proc ~src:"/shared/figs/demo" ~dst:"/shared/figs/copy"
         in
         Printf.printf
           "\nnaive `cp demo copy` of the figure file: pointers broken? %b\n\
            (figures 'can safely be copied only by xfig itself' - the price of\n\
            absolute internal pointers)\n"
           broken;
         done_ := true;
         0));
  Kernel.run k;
  assert !done_

(* The Lynx-compiler tables workload (paper section 4, "Programs with
   Non-Linear Data Structures"): scanner/parser generators sharing their
   tables with the compiler through a persistent public module.

   Run with:  dune exec examples/lynx_tables.exe *)

module Kernel = Hemlock_os.Kernel
module Ldl = Hemlock_linker.Ldl
module Symtab = Hemlock_apps.Symtab
module Stats = Hemlock_util.Stats

let () =
  let k = Kernel.create () in
  let ldl = Ldl.install k in
  ignore k;
  let entries = 600 in
  Printf.printf "tables of %d entries, three ways of getting them to the compiler:\n\n" entries;
  let show name f =
    Stats.reset ();
    let outcome, d = Stats.measure f in
    Printf.printf "  %-34s checksum=%d  ~cycles=%-6d generated-lines=%d\n" name
      outcome.Symtab.oc_checksum (Stats.cycles d) outcome.Symtab.oc_generated_lines
  in
  show "1. generate source + recompile" (fun () ->
      Symtab.run_generated_source ldl ~entries ~app_id:"demo");
  show "2. linearise to a file + reparse" (fun () ->
      Symtab.run_linearized ldl ~entries ~app_id:"demo");
  show "3. hemlock, first run (init tables)" (fun () ->
      Symtab.run_hemlock ldl ~entries ~app_id:"demo" ~first_run:true);
  show "3. hemlock, every later run" (fun () ->
      Symtab.run_hemlock ldl ~entries ~app_id:"demo" ~first_run:false);
  Printf.printf
    "\nAll three agree.  In the paper the generated 'C version of the tables\n\
     is over 5400 lines, and takes 18 seconds to compile'; with a persistent\n\
     module the utilities initialise the tables once and the compiler simply\n\
     links them in - eliminating 20-25%% of the utility code.\n"

(* The rwho workload (paper section 4, "Administrative Files"): rwhod
   keeping its database in shared memory instead of spool files.

   Run with:  dune exec examples/rwho_demo.exe *)

module Stats = Hemlock_util.Stats
module Rwho = Hemlock_apps.Rwho

let () =
  let n_hosts = 16 in
  Printf.printf "Simulating %d machines broadcasting status updates...\n\n" n_hosts;
  let (rwho_files, ruptime_files), (_, d_rwho_files, _) =
    Rwho.run_simulation ~style:Rwho.File_spool ~n_hosts ~rounds:2 ~max_users:3
  in
  let (rwho_shm, ruptime_shm), (_, d_rwho_shm, _) =
    Rwho.run_simulation ~style:Rwho.Shared_db ~n_hosts ~rounds:2 ~max_users:3
  in
  Printf.printf "$ ruptime        (shared-database version)\n%s\n" ruptime_shm;
  Printf.printf "$ rwho\n%s\n" rwho_shm;
  assert (String.equal rwho_files rwho_shm);
  assert (String.equal ruptime_files ruptime_shm);
  Printf.printf "The file-based utilities print byte-identical reports, but pay for it:\n\n";
  Printf.printf "  one rwho call, spool files:      %6d ~cycles  (%d files opened, %d bytes parsed)\n"
    (Stats.cycles d_rwho_files) d_rwho_files.Stats.files_opened d_rwho_files.Stats.bytes_copied;
  Printf.printf "  one rwho call, shared database:  %6d ~cycles  (%d files opened, %d bytes copied)\n"
    (Stats.cycles d_rwho_shm) d_rwho_shm.Stats.files_opened d_rwho_shm.Stats.bytes_copied;
  Printf.printf
    "\nThe shared version walks the daemon's live data structure directly -\n\
     no files, no parsing - the re-implementation the paper measured as\n\
     'both simpler and faster', saving about a second per call on their\n\
     65-machine network.\n"

examples/figure_editor.ml: Hemlock_apps Hemlock_linker Hemlock_os Hemlock_sfs Hemlock_util List Printf

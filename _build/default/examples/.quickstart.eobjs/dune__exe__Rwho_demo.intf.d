examples/rwho_demo.mli:

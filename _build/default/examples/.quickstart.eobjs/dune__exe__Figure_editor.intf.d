examples/figure_editor.mli:

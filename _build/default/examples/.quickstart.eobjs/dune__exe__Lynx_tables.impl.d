examples/lynx_tables.ml: Hemlock_apps Hemlock_linker Hemlock_os Hemlock_util Printf

examples/parallel_sum.ml: Hemlock_apps Hemlock_linker Hemlock_os Hemlock_runtime List Printf

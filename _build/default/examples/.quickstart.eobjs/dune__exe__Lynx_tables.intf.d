examples/lynx_tables.mli:

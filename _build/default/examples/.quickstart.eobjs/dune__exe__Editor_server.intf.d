examples/editor_server.mli:

examples/quickstart.ml: Hemlock_cc Hemlock_linker Hemlock_obj Hemlock_os Hemlock_sfs Hemlock_vm List Printf

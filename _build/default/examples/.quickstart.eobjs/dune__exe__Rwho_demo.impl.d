examples/rwho_demo.ml: Hemlock_apps Hemlock_util Printf String

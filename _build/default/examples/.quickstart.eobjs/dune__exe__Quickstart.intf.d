examples/quickstart.mli:

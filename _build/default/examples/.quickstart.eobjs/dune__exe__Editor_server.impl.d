examples/editor_server.ml: Hemlock_cc Hemlock_linker Hemlock_obj Hemlock_os Hemlock_sfs List Printf

(* The parallel-application protocol (paper section 4, "Parallel
   Applications"): a Presto-style program whose workers share variables
   through a dynamic public module found via a temp-dir symlink and
   LD_LIBRARY_PATH.

   Run with:  dune exec examples/parallel_sum.exe *)

module Kernel = Hemlock_os.Kernel
module Ldl = Hemlock_linker.Ldl
module Presto = Hemlock_apps.Presto

let () =
  let k = Kernel.create () in
  let ldl = Ldl.install k in
  Hemlock_runtime.Sync.install k;
  let workers = 8 in
  Printf.printf "Shared-data module source (compiled once, to a template):\n%s\n"
    Presto.shared_data_source;
  Printf.printf
    "The parent creates /shared/tmp/<app>, drops a symlink to the template\n\
     there, prepends the directory to LD_LIBRARY_PATH, and starts %d\n\
     workers.  The first worker's ldl creates and initialises the shared\n\
     data under a file lock; the rest link the same segment.  Each worker\n\
     grabs an index under a kernel lock and deposits its result.\n\n"
    workers;
  let results = Presto.run_hemlock ldl ~workers ~work_iters:100 ~app_id:"demo" in
  let expected = Presto.expected_results ~workers ~work_iters:100 in
  List.iteri (fun i r -> Printf.printf "  worker %d computed %d\n" i r) results;
  Printf.printf "\nsum of results: %d (expected %d)\n"
    (List.fold_left ( + ) 0 results)
    (List.fold_left ( + ) 0 expected);
  assert (List.sort compare results = List.sort compare expected);
  Printf.printf
    "\nThe parent then deleted the shared segment, the symlink and the\n\
     temporary directory - the manual cleanup the paper accepts in\n\
     exchange for doing none of the application's work itself.\n"

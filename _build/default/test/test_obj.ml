open Harness
module Objfile = Hemlock_obj.Objfile
module Aout = Hemlock_linker.Aout
module Sharing = Hemlock_linker.Sharing

let sample_obj () =
  {
    (Objfile.empty ~name:"sample.o") with
    Objfile.text = Bytes.of_string "TEXTTEXT";
    data = Bytes.of_string "DATA";
    bss_size = 12;
    symbols =
      [
        { Objfile.sym_name = "f"; sym_section = Objfile.Text; sym_offset = 0; sym_binding = Objfile.Global };
        { Objfile.sym_name = "d"; sym_section = Objfile.Data; sym_offset = 0; sym_binding = Objfile.Global };
        { Objfile.sym_name = "b"; sym_section = Objfile.Bss; sym_offset = 4; sym_binding = Objfile.Local };
      ];
    relocs =
      [
        {
          Objfile.rel_section = Objfile.Text;
          rel_offset = 4;
          rel_kind = Objfile.Jump26;
          rel_symbol = "g";
          rel_addend = 0;
        };
        {
          Objfile.rel_section = Objfile.Data;
          rel_offset = 0;
          rel_kind = Objfile.Abs32;
          rel_symbol = "d";
          rel_addend = -8;
        };
      ];
    uses_gp = true;
    own_modules = [ "next.o" ];
    own_search_path = [ "/shared/lib" ];
  }

let obj_roundtrip () =
  let obj = sample_obj () in
  let obj' = Objfile.parse (Objfile.serialize obj) in
  check_bool "equal" true (obj = obj')

let obj_bad_magic () =
  match Objfile.parse (Bytes.of_string "NOPE....") with
  | _ -> Alcotest.fail "expected failure"
  | exception Failure _ -> ()

let obj_layout () =
  let obj = sample_obj () in
  let text_b, data_b, bss_b = Objfile.section_bases obj in
  check_int "text base" 0 text_b;
  check_int "data base" 8 data_b;
  check_int "bss base" 12 bss_b;
  check_int "load size" 24 (Objfile.load_size obj);
  (* alignment: odd text length pads *)
  let obj2 = { obj with Objfile.text = Bytes.of_string "12345" } in
  let _, data_b, _ = Objfile.section_bases obj2 in
  check_int "padded" 8 data_b

let obj_undefined_exports () =
  let obj = sample_obj () in
  Alcotest.(check (list string)) "undefined" [ "g" ] (Objfile.undefined obj);
  check_int "exports exclude locals" 2 (List.length (Objfile.exports obj))

let aout_sample () =
  {
    Aout.entry_off = 4;
    text = Bytes.of_string "texttext";
    data = Bytes.of_string "dd";
    bss_size = 8;
    veneer_off = 8;
    veneer_cap = 3;
    symbols = [ ("_start", 4); ("main", 0) ];
    pending =
      [
        {
          Objfile.rel_section = Objfile.Text;
          rel_offset = 0;
          rel_kind = Objfile.Hi16;
          rel_symbol = "x";
          rel_addend = 2;
        };
      ];
    dynamics =
      [
        { Aout.dd_name = "lib.o"; dd_class = Sharing.Dynamic_public };
        { Aout.dd_name = "priv.o"; dd_class = Sharing.Dynamic_private };
      ];
    static_pubs = [ { Aout.sp_template = "/shared/t.o"; sp_module = "/shared/t"; sp_base = 0x3000_0000 } ];
    static_dirs = [ "/home"; "/usr/lib" ];
    gp_base_off = Some 8;
  }

let aout_roundtrip () =
  let a = aout_sample () in
  let a' = Aout.parse (Aout.serialize a) in
  check_bool "equal" true (a = a')

let aout_magic () =
  check_bool "looks_like yes" true (Aout.looks_like (Aout.serialize (aout_sample ())));
  check_bool "looks_like no" false (Aout.looks_like (Bytes.of_string "HOBJxxxx"));
  check_bool "short" false (Aout.looks_like (Bytes.of_string "HE"))

let aout_helpers () =
  let a = aout_sample () in
  check_bool "find" true (Aout.find_symbol a "main" = Some 0);
  check_bool "miss" true (Aout.find_symbol a "zzz" = None);
  check_int "image size" (8 + 4 + 8) (Aout.image_size a)

let prop_obj_roundtrip =
  let gen =
    QCheck2.Gen.(
      let section = oneofl [ Objfile.Text; Objfile.Data; Objfile.Bss ] in
      let kind =
        oneofl [ Objfile.Abs32; Objfile.Hi16; Objfile.Lo16; Objfile.Jump26; Objfile.Gprel16 ]
      in
      let ident = map (fun n -> Printf.sprintf "sym%d" n) (int_bound 50) in
      let symbol =
        map3
          (fun name sect off ->
            { Objfile.sym_name = name; sym_section = sect; sym_offset = off; sym_binding = Objfile.Global })
          ident section (int_bound 1000)
      in
      let reloc =
        map3
          (fun (sect, k) sym (off, add) ->
            {
              Objfile.rel_section = sect;
              rel_offset = off;
              rel_kind = k;
              rel_symbol = sym;
              rel_addend = add;
            })
          (pair section kind) ident
          (pair (int_bound 1000) (int_range (-100) 100))
      in
      let bytes = map Bytes.of_string (string_size ~gen:printable (int_bound 40)) in
      map3
        (fun (text, data) symbols relocs ->
          {
            (Objfile.empty ~name:"prop.o") with
            Objfile.text;
            data;
            bss_size = 16;
            symbols;
            relocs;
          })
        (pair bytes bytes)
        (list_size (int_bound 6) symbol)
        (list_size (int_bound 6) reloc))
  in
  prop "objfile: serialize/parse roundtrip" ~count:150 gen (fun obj ->
      Objfile.parse (Objfile.serialize obj) = obj)

let suite =
  [
    test "objfile: roundtrip" obj_roundtrip;
    test "objfile: bad magic rejected" obj_bad_magic;
    test "objfile: section layout" obj_layout;
    test "objfile: undefined/exports" obj_undefined_exports;
    test "aout: roundtrip" aout_roundtrip;
    test "aout: magic checks" aout_magic;
    test "aout: helpers" aout_helpers;
    prop_obj_roundtrip;
  ]

open Harness
module Layout = Hemlock_vm.Layout
module Segment = Hemlock_vm.Segment

let fresh () = Fs.create ()

let path_parsing () =
  let p s = Path.to_string (Path.of_string ~cwd:Path.root s) in
  check_string "absolute" "/a/b" (p "/a/b");
  check_string "normalizes dots" "/a/c" (p "/a/./b/../c");
  check_string "root dotdot clamps" "/" (p "/..");
  check_string "trailing slash" "/a" (p "/a/");
  let cwd = Path.of_string ~cwd:Path.root "/home/me" in
  check_string "relative" "/home/me/x" (Path.to_string (Path.of_string ~cwd "x"));
  check_string "relative dotdot" "/home/y" (Path.to_string (Path.of_string ~cwd "../y"));
  check_string "basename" "b" (Path.basename (Path.of_string ~cwd:Path.root "/a/b"));
  check_string "parent" "/a" (Path.to_string (Path.parent (Path.of_string ~cwd:Path.root "/a/b")));
  check_bool "prefix" true
    (Path.is_prefix ~prefix:[ "shared" ] (Path.of_string ~cwd:Path.root "/shared/x/y"));
  check_bool "not prefix" false
    (Path.is_prefix ~prefix:[ "shared" ] (Path.of_string ~cwd:Path.root "/sharedx"))

let mkdir_create_stat () =
  let fs = fresh () in
  Fs.mkdir fs "/home/alice";
  Fs.create_file fs "/home/alice/notes";
  check_bool "exists" true (Fs.exists fs "/home/alice/notes");
  check_bool "is_dir dir" true (Fs.is_dir fs "/home/alice");
  check_bool "is_dir file" false (Fs.is_dir fs "/home/alice/notes");
  let st = Fs.stat fs "/home/alice/notes" in
  check_bool "regular" true (st.Fs.st_kind = Fs.Regular);
  check_int "empty" 0 st.Fs.st_size;
  check_bool "normal partition has no address" true (st.Fs.st_addr = None)

let read_write_append () =
  let fs = fresh () in
  Fs.write_file fs "/tmp/f" (Bytes.of_string "hello");
  check_string "read back" "hello" (Bytes.to_string (Fs.read_file fs "/tmp/f"));
  Fs.append_file fs "/tmp/f" (Bytes.of_string " world");
  check_string "append" "hello world" (Bytes.to_string (Fs.read_file fs "/tmp/f"));
  Fs.write_file fs "/tmp/f" (Bytes.of_string "x");
  check_string "write truncates" "x" (Bytes.to_string (Fs.read_file fs "/tmp/f"));
  (* write_file creates missing files and intermediate reads work via cwd *)
  let cwd = Path.of_string ~cwd:Path.root "/tmp" in
  Fs.write_file fs ~cwd "rel" (Bytes.of_string "r");
  check_bool "relative create" true (Fs.exists fs "/tmp/rel")

let errors () =
  let fs = fresh () in
  let expect_kind kind f =
    match f () with
    | _ -> Alcotest.fail "expected Fs.Error"
    | exception Fs.Error e -> check_bool "error kind" true (e.kind = kind)
  in
  expect_kind Fs.Not_found (fun () -> Fs.read_file fs "/nope");
  expect_kind Fs.Not_found (fun () -> Fs.stat fs "/tmp/missing");
  expect_kind Fs.Is_a_directory (fun () -> Fs.read_file fs "/tmp");
  expect_kind Fs.Not_a_directory (fun () ->
      Fs.write_file fs "/tmp/f" Bytes.empty;
      Fs.create_file fs "/tmp/f/x");
  expect_kind Fs.Already_exists (fun () -> Fs.mkdir fs "/tmp");
  expect_kind Fs.Not_found (fun () -> Fs.unlink fs "/tmp/zzz");
  expect_kind Fs.Is_a_directory (fun () -> Fs.unlink fs "/tmp");
  Fs.mkdir fs "/tmp/d";
  Fs.create_file fs "/tmp/d/f";
  expect_kind Fs.Not_empty (fun () -> Fs.rmdir fs "/tmp/d");
  Fs.unlink fs "/tmp/d/f";
  Fs.rmdir fs "/tmp/d";
  check_bool "rmdir worked" false (Fs.exists fs "/tmp/d")

let readdir_sorted () =
  let fs = fresh () in
  List.iter (fun n -> Fs.create_file fs ("/tmp/" ^ n)) [ "zeta"; "alpha"; "mid" ];
  Alcotest.(check (list string)) "sorted" [ "alpha"; "mid"; "zeta" ] (Fs.readdir fs "/tmp")

let symlinks () =
  let fs = fresh () in
  Fs.write_file fs "/tmp/target" (Bytes.of_string "data");
  Fs.symlink fs ~target:"/tmp/target" "/tmp/link";
  check_string "read through link" "data" (Bytes.to_string (Fs.read_file fs "/tmp/link"));
  check_bool "lstat sees symlink" true ((Fs.lstat fs "/tmp/link").Fs.st_kind = Fs.Symlink);
  check_bool "stat follows" true ((Fs.stat fs "/tmp/link").Fs.st_kind = Fs.Regular);
  (* relative symlink target resolves against the link's directory *)
  Fs.mkdir fs "/tmp/sub";
  Fs.write_file fs "/tmp/sub/t2" (Bytes.of_string "two");
  Fs.symlink fs ~target:"t2" "/tmp/sub/l2";
  check_string "relative target" "two" (Bytes.to_string (Fs.read_file fs "/tmp/sub/l2"));
  (* loops detected *)
  Fs.symlink fs ~target:"/tmp/loop" "/tmp/loop";
  match Fs.read_file fs "/tmp/loop" with
  | _ -> Alcotest.fail "expected symlink loop error"
  | exception Fs.Error { kind = Fs.Symlink_loop; _ } -> ()
  | exception Fs.Error _ -> Alcotest.fail "wrong error for loop"

let shared_addresses () =
  let fs = fresh () in
  Fs.create_file fs "/shared/a";
  Fs.create_file fs "/shared/b";
  let a = Fs.addr_of_path fs "/shared/a" in
  let b = Fs.addr_of_path fs "/shared/b" in
  check_int "slot 0" Layout.shared_base a;
  check_int "slot 1" (Layout.shared_base + Layout.shared_slot_size) b;
  check_string "path_of_addr" "/shared/a" (Fs.path_of_addr fs a);
  check_string "path_of_addr mid-file" "/shared/b" (Fs.path_of_addr fs (b + 5000));
  check_bool "stat exposes address" true ((Fs.stat fs "/shared/a").Fs.st_addr = Some a);
  check_int "inode = slot" 0 (Fs.stat fs "/shared/a").Fs.st_ino;
  (* Slot is reused after unlink; the address table updates. *)
  Fs.unlink fs "/shared/a";
  (match Fs.path_of_addr fs a with
  | _ -> Alcotest.fail "stale address entry"
  | exception Fs.Error { kind = Fs.Not_found; _ } -> ());
  Fs.create_file fs "/shared/c";
  check_int "slot reused" a (Fs.addr_of_path fs "/shared/c");
  check_int "free slots" (1024 - 2) (Fs.shared_free_slots fs)

let shared_not_shared_errors () =
  let fs = fresh () in
  Fs.create_file fs "/tmp/plain";
  (match Fs.addr_of_path fs "/tmp/plain" with
  | _ -> Alcotest.fail "normal files have no address"
  | exception Fs.Error { kind = Fs.Not_shared; _ } -> ());
  match Fs.path_of_addr fs 0x1000 with
  | _ -> Alcotest.fail "private addresses are not translatable"
  | exception Fs.Error { kind = Fs.Not_shared; _ } -> ()

let shared_file_size_limit () =
  let fs = fresh () in
  Fs.create_file fs "/shared/big";
  let seg = Fs.segment_of fs "/shared/big" in
  check_int "max 1MB" Layout.shared_slot_size (Segment.max_size seg);
  Segment.set_u8 seg (Layout.shared_slot_size - 1) 1;
  check_bool "last byte writable" true (Segment.get_u8 seg (Layout.shared_slot_size - 1) = 1);
  Alcotest.check_raises "over 1MB rejected"
    (Invalid_argument
       (Printf.sprintf "Segment /shared/big: offset %d+1 out of bounds (max %d)"
          Layout.shared_slot_size Layout.shared_slot_size))
    (fun () -> Segment.set_u8 seg Layout.shared_slot_size 1)

let shared_inode_exhaustion () =
  let fs = fresh () in
  for i = 0 to 1023 do
    Fs.create_file fs (Printf.sprintf "/shared/f%04d" i)
  done;
  check_int "full" 0 (Fs.shared_free_slots fs);
  (match Fs.create_file fs "/shared/overflow" with
  | _ -> Alcotest.fail "expected No_space"
  | exception Fs.Error { kind = Fs.No_space; _ } -> ());
  Fs.unlink fs "/shared/f0500";
  Fs.create_file fs "/shared/replacement";
  check_int "slot freed and reused" 500 (Fs.stat fs "/shared/replacement").Fs.st_ino

let hard_links () =
  let fs = fresh () in
  Fs.write_file fs "/tmp/orig" (Bytes.of_string "x");
  Fs.hard_link fs ~existing:"/tmp/orig" "/tmp/alias";
  check_string "alias reads" "x" (Bytes.to_string (Fs.read_file fs "/tmp/alias"));
  Fs.write_file fs "/tmp/alias" (Bytes.of_string "y");
  check_string "same file" "y" (Bytes.to_string (Fs.read_file fs "/tmp/orig"));
  Fs.unlink fs "/tmp/orig";
  check_string "survives one unlink" "y" (Bytes.to_string (Fs.read_file fs "/tmp/alias"));
  (* Prohibited on the shared partition, preserving inode<->path 1:1. *)
  Fs.create_file fs "/shared/s";
  (match Fs.hard_link fs ~existing:"/shared/s" "/shared/s2" with
  | _ -> Alcotest.fail "expected prohibition"
  | exception Fs.Error { kind = Fs.Hard_links_prohibited; _ } -> ());
  match Fs.hard_link fs ~existing:"/tmp/alias" "/shared/s3" with
  | _ -> Alcotest.fail "expected prohibition into shared"
  | exception Fs.Error { kind = Fs.Hard_links_prohibited; _ } -> ()

let mapping_is_the_file () =
  let fs = fresh () in
  Fs.create_file fs "/shared/seg";
  let seg = Fs.segment_of fs "/shared/seg" in
  Segment.blit_in seg ~dst_off:0 (Bytes.of_string "via-memory");
  check_string "file sees memory writes" "via-memory"
    (Bytes.to_string (Fs.read_file fs "/shared/seg"));
  Fs.write_file fs "/shared/seg" (Bytes.of_string "via-file");
  check_string "memory sees file writes" "via-file"
    (Bytes.to_string (Segment.blit_out seg ~src_off:0 ~len:8))

let rescan_survives_crash () =
  let fs = fresh () in
  Fs.mkdir fs "/shared/deep";
  Fs.create_file fs "/shared/deep/x";
  Fs.create_file fs "/shared/y";
  let ax = Fs.addr_of_path fs "/shared/deep/x" in
  let table_before = Fs.shared_table fs in
  (* "Crash": the in-kernel table is rebuilt by scanning the partition. *)
  Fs.rescan_shared fs;
  Alcotest.(check (list (pair int string))) "table rebuilt identically" table_before
    (Fs.shared_table fs);
  check_string "address still translates" "/shared/deep/x" (Fs.path_of_addr fs ax)

let create_through_symlink () =
  let fs = fresh () in
  Fs.create_file fs "/shared/template";
  Fs.mkdir fs "/tmp/app";
  Fs.symlink fs ~target:"/shared/template" "/tmp/app/t";
  (* creating "through" an existing symlink truncates the target *)
  Fs.write_file fs "/shared/template" (Bytes.of_string "zz");
  Fs.create_file fs "/tmp/app/t";
  check_int "target truncated" 0 (Fs.stat fs "/shared/template").Fs.st_size

let rename_ops () =
  let fs = fresh () in
  (* plain file *)
  Fs.write_file fs "/tmp/a" (Bytes.of_string "data");
  Fs.rename fs ~src:"/tmp/a" "/tmp/b";
  check_bool "gone" false (Fs.exists fs "/tmp/a");
  check_string "moved" "data" (Bytes.to_string (Fs.read_file fs "/tmp/b"));
  (* directory move *)
  Fs.mkdir fs "/tmp/d1";
  Fs.write_file fs "/tmp/d1/x" (Bytes.of_string "x");
  Fs.rename fs ~src:"/tmp/d1" "/home/d2";
  check_string "dir contents moved" "x" (Bytes.to_string (Fs.read_file fs "/home/d2/x"));
  (* errors *)
  (match Fs.rename fs ~src:"/tmp/none" "/tmp/z" with
  | _ -> Alcotest.fail "expected Not_found"
  | exception Fs.Error { kind = Fs.Not_found; _ } -> ());
  Fs.write_file fs "/tmp/c" Bytes.empty;
  (match Fs.rename fs ~src:"/tmp/b" "/tmp/c" with
  | _ -> Alcotest.fail "expected Already_exists"
  | exception Fs.Error { kind = Fs.Already_exists; _ } -> ());
  match Fs.rename fs ~src:"/home/d2" "/home/d2/inside" with
  | _ -> Alcotest.fail "expected self-nesting rejection"
  | exception Fs.Error { kind = Fs.Already_exists; _ } -> ()

let rename_shared_keeps_address () =
  let fs = fresh () in
  Fs.mkdir fs "/shared/old";
  Fs.create_file fs "/shared/old/seg";
  let addr = Fs.addr_of_path fs "/shared/old/seg" in
  (* rename the file: address survives, table updated *)
  Fs.rename fs ~src:"/shared/old/seg" "/shared/old/seg2";
  check_int "address stable" addr (Fs.addr_of_path fs "/shared/old/seg2");
  check_string "table updated" "/shared/old/seg2" (Fs.path_of_addr fs addr);
  (* rename the whole directory: contained files keep addresses *)
  Fs.rename fs ~src:"/shared/old" "/shared/new";
  check_string "dir rename tracked" "/shared/new/seg2" (Fs.path_of_addr fs addr);
  (* table rebuilt from disk agrees *)
  Fs.rescan_shared fs;
  check_string "rescan agrees" "/shared/new/seg2" (Fs.path_of_addr fs addr);
  (* cross-partition renames rejected both ways *)
  (match Fs.rename fs ~src:"/shared/new/seg2" "/tmp/escapee" with
  | _ -> Alcotest.fail "expected Cross_partition"
  | exception Fs.Error { kind = Fs.Cross_partition; _ } -> ());
  Fs.write_file fs "/tmp/plain" Bytes.empty;
  match Fs.rename fs ~src:"/tmp/plain" "/shared/new/intruder" with
  | _ -> Alcotest.fail "expected Cross_partition"
  | exception Fs.Error { kind = Fs.Cross_partition; _ } -> ()

let prop_slot_roundtrip =
  prop "fs: addr_of_path/path_of_addr roundtrip over many files"
    QCheck2.Gen.(int_range 1 40)
    (fun n ->
      let fs = fresh () in
      let names = List.init n (Printf.sprintf "/shared/p%d") in
      List.iter (Fs.create_file fs) names;
      List.for_all (fun name -> Fs.path_of_addr fs (Fs.addr_of_path fs name) = name) names)

let suite =
  [
    test "path: parsing and normalisation" path_parsing;
    test "fs: mkdir/create/stat" mkdir_create_stat;
    test "fs: read/write/append" read_write_append;
    test "fs: error cases" errors;
    test "fs: readdir sorted" readdir_sorted;
    test "fs: symlinks and loops" symlinks;
    test "sfs: global addresses" shared_addresses;
    test "sfs: non-shared address errors" shared_not_shared_errors;
    test "sfs: 1MB file limit" shared_file_size_limit;
    test "sfs: 1024-inode limit and reuse" shared_inode_exhaustion;
    test "fs: hard links allowed / prohibited on shared" hard_links;
    test "sfs: mapped memory is the file" mapping_is_the_file;
    test "sfs: boot rescan rebuilds the table" rescan_survives_crash;
    test "fs: create through symlink" create_through_symlink;
    test "fs: rename files and directories" rename_ops;
    test "sfs: rename preserves global addresses" rename_shared_keeps_address;
    prop_slot_roundtrip;
  ]

(* Differential properties across the whole stack. *)

open Harness
module Modgen = Hemlock_apps.Modgen
module Plt = Hemlock_baseline.Plt
module Codec = Hemlock_util.Codec

(* ----- random expressions: compiled execution vs an OCaml evaluator ----- *)

type expr =
  | Lit of int
  | Neg of expr
  | Not of expr
  | Bin of string * expr * expr
  | DivLit of expr * int (* non-zero literal denominator *)
  | RemLit of expr * int

(* Hem-C / ISA semantics: 32-bit two's complement wrap-around, signed
   comparison and division (truncating), short-circuit booleans. *)
let sx v = Codec.sext32 (Codec.mask32 v)

let rec eval = function
  | Lit n -> sx n
  | Neg e -> sx (-eval e)
  | Not e -> if eval e = 0 then 1 else 0
  | DivLit (e, d) -> sx (eval e / d)
  | RemLit (e, d) -> sx (eval e mod d)
  | Bin (op, a, b) -> (
    let va = eval a in
    match op with
    | "&&" -> if va = 0 then 0 else if eval b <> 0 then 1 else 0
    | "||" -> if va <> 0 then 1 else if eval b <> 0 then 1 else 0
    | _ -> (
      let vb = eval b in
      match op with
      | "+" -> sx (va + vb)
      | "-" -> sx (va - vb)
      | "*" -> sx (va * vb)
      | "==" -> if va = vb then 1 else 0
      | "!=" -> if va <> vb then 1 else 0
      | "<" -> if va < vb then 1 else 0
      | "<=" -> if va <= vb then 1 else 0
      | ">" -> if va > vb then 1 else 0
      | ">=" -> if va >= vb then 1 else 0
      | _ -> assert false))

let rec render = function
  | Lit n -> if n < 0 then Printf.sprintf "(0 - %d)" (-n) else string_of_int n
  | Neg e -> Printf.sprintf "(0 - %s)" (render e)
  | Not e -> Printf.sprintf "(!%s)" (render e)
  | DivLit (e, d) -> Printf.sprintf "(%s / %d)" (render e) d
  | RemLit (e, d) -> Printf.sprintf "(%s %% %d)" (render e) d
  | Bin (op, a, b) -> Printf.sprintf "(%s %s %s)" (render a) op (render b)

let gen_expr =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        let lit = map (fun v -> Lit v) (int_range (-100000) 100000) in
        if n <= 0 then lit
        else
          let sub = self (n / 2) in
          frequency
            [
              (2, lit);
              (1, map (fun e -> Neg e) sub);
              (1, map (fun e -> Not e) sub);
              ( 6,
                map3
                  (fun op a b -> Bin (op, a, b))
                  (oneofl [ "+"; "-"; "*"; "=="; "!="; "<"; "<="; ">"; ">="; "&&"; "||" ])
                  sub sub );
              (1, map2 (fun e d -> DivLit (e, d)) sub (oneofl [ 2; 3; 7; -5; 100 ]));
              (1, map2 (fun e d -> RemLit (e, d)) sub (oneofl [ 2; 3; 7; -5; 100 ]));
            ]))

let prop_compiled_matches_eval =
  prop "whole stack: compiled expressions match the reference evaluator" ~count:60
    QCheck2.Gen.(map2 (fun a b -> (a, b)) gen_expr gen_expr)
    (fun (e1, e2) ->
      let src =
        Printf.sprintf
          "int main() { print_int(%s); print_str(\" \"); print_int(%s); return 0; }"
          (render e1) (render e2)
      in
      let out = run_c_program (boot ()) src in
      out = Printf.sprintf "%d %d" (eval e1) (eval e2))

(* ----- random chains: lazy, eager and jump-table all agree ----- *)

let prop_strategies_agree =
  prop "linkers: lazy, eager and jump-table strategies compute the same result"
    ~count:15
    QCheck2.Gen.(
      map2 (fun modules frac -> (modules, frac)) (int_range 2 10) (int_range 0 100))
    (fun (modules, frac) ->
      let used = frac * (modules - 1) / 100 in
      let expected = Modgen.expected ~modules ~used in
      let lazy_result =
        let _, ldl = boot () in
        Fs.mkdir (Kernel.fs (Ldl.kernel ldl)) "/home/chain";
        ignore (Modgen.install ldl ~dir:"/home/chain" ~modules);
        Modgen.link_driver ldl ~dir:"/home/chain" ~out:"/home/prog" ~used;
        let r, linked, mapped = Modgen.run_lazy ldl ~prog:"/home/prog" in
        (* linked is exactly the used prefix; at most one extra module is
           mapped beyond it *)
        assert (linked = min modules (used + 1));
        assert (mapped <= linked + 1);
        r
      in
      let eager_result =
        let _, ldl = boot () in
        Fs.mkdir (Kernel.fs (Ldl.kernel ldl)) "/home/chain";
        ignore (Modgen.install ldl ~dir:"/home/chain" ~modules);
        Modgen.link_driver ldl ~dir:"/home/chain" ~out:"/home/prog" ~used;
        let r, linked, _ = Modgen.run_eager ldl ~prog:"/home/prog" in
        assert (linked = modules);
        r
      in
      let plt_result =
        let k, ldl = boot () in
        let plt = Plt.install k in
        Fs.mkdir (Kernel.fs k) "/home/chain";
        let templates = Modgen.install ldl ~dir:"/home/chain" ~modules in
        let r, _, _ = Modgen.run_plt plt ~templates ~used in
        r
      in
      lazy_result = expected && eager_result = expected && plt_result = expected)

let suite = [ prop_compiled_matches_eval; prop_strategies_agree ]

(* Hem-Lisp: the second front end, and the cross-language sharing it
   exists to demonstrate (§3 "the lowest common denominator ... the
   object file"; §6 "Language Heterogeneity"). *)

open Harness
module Lisp = Hemlock_lisp.Lisp
module Objfile = Hemlock_obj.Objfile

let install_lisp k path src = write_obj k path (Lisp.to_object ~name:(Filename.basename path) src)

let run_lisp_program src =
  let k, _ = boot () in
  Fs.mkdir (Kernel.fs k) "/home/t";
  install_lisp k "/home/t/main.o" src;
  ignore (link k ~dir:"/home/t" ~specs:[ ("main.o", Sharing.Static_private) ] "prog");
  run_program k "/home/t/prog"

let lisp_arithmetic () =
  let _, out =
    run_lisp_program
      {|
(defun (main)
  (print-int (+ 1 2 3 (* 4 5)))
  (print-str " ")
  (print-int (- 10 1 2))
  (print-str " ")
  (print-int (/ -9 2))
  0)
|}
  in
  check_string "n-ary ops" "26 7 -4" out

let lisp_control_flow () =
  let _, out =
    run_lisp_program
      {|
(defvar total 0)
(defun (main)
  (let1 i 0)
  (while (< i 6)
    (if (= (% i 2) 0)
        (set! total (+ total i)))
    (set! i (+ i 1)))
  (print-int total)
  0)
|}
  in
  check_string "while/if/set!" "6" out

let lisp_functions_and_recursion () =
  let _, out =
    run_lisp_program
      {|
(defun (fib n)
  (if (< n 2)
      n
      (+ (fib (- n 1)) (fib (- n 2)))))
(defun (main)
  (print-int (fib 10))
  0)
|}
  in
  check_string "recursive fib via return-position if" "55" out

let lisp_errors () =
  let expect src =
    match Lisp.to_object ~name:"t.o" src with
    | _ -> Alcotest.fail ("expected error: " ^ src)
    | exception Lisp.Error _ -> ()
  in
  expect "(defun (f) (g (if 1 2 3)))" (* expression-position if *);
  expect "(defun (f))" (* empty body *);
  expect "(defvar x y)" (* non-constant initialiser *);
  expect "(defun (f) (unclosed";
  expect "(1 2 3)" (* unknown top-level form *)

(* The point of the exercise: a Lisp module and a C module, one shared
   counter, one process each — the linkers cannot tell them apart. *)
let cross_language_sharing () =
  let k, _ldl = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/shared/lib";
  (* the shared abstraction is written in C... *)
  install_c k "/shared/lib/counter.o"
    "int counter; int bump() { counter = counter + 1; return counter; }";
  (* ...one client is written in C, the other in Lisp *)
  Fs.mkdir fs "/home/cprog";
  install_c k "/home/cprog/main.o"
    {|extern int bump(); int main() { print_str("C sees "); print_int(bump()); print_str("\n"); return 0; }|};
  Fs.mkdir fs "/home/lprog";
  install_lisp k "/home/lprog/main.o"
    {|
(extern-fun bump)
(extern-var counter)
(defun (main)
  (print-str "Lisp sees ")
  (print-int (bump))
  (print-str " and reads counter=")
  (print-int counter)
  (print-str "\n")
  0)
|};
  List.iter
    (fun dir ->
      ignore
        (link k ~dir
           ~specs:
             [ ("main.o", Sharing.Static_private); ("/shared/lib/counter.o", Sharing.Dynamic_public) ]
           "prog"))
    [ "/home/cprog"; "/home/lprog" ];
  Kernel.console_clear k;
  ignore (Kernel.spawn_exec k "/home/cprog/prog");
  Kernel.run k;
  ignore (Kernel.spawn_exec k "/home/lprog/prog");
  Kernel.run k;
  ignore (Kernel.spawn_exec k "/home/cprog/prog");
  Kernel.run k;
  check_string "one counter, two languages"
    "C sees 1\nLisp sees 2 and reads counter=2\nC sees 3\n" (Kernel.console k)

(* And the other direction: the shared module itself is written in Lisp,
   consumed from C. *)
let lisp_module_consumed_from_c () =
  let k, _ldl = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/shared/lib";
  install_lisp k "/shared/lib/acc.o"
    {|
(defvar acc 100)
(defun (accumulate n)
  (set! acc (+ acc n))
  acc)
|};
  Fs.mkdir fs "/home/t";
  install_c k "/home/t/main.o"
    "extern int accumulate(int n); extern int acc;\n\
     int main() { accumulate(7); print_int(acc); return 0; }";
  ignore
    (link k ~dir:"/home/t"
       ~specs:
         [ ("main.o", Sharing.Static_private); ("/shared/lib/acc.o", Sharing.Dynamic_public) ]
       "prog");
  let _, out = run_program k "/home/t/prog" in
  check_string "C reads Lisp-defined shared state" "107" out

let dash_mangling () =
  (* lisp names with dashes meet their underscore spellings: the
     builtins print-int/print-str are really print_int/print_str, and a
     dashed user function is callable from C under the mangled name *)
  let k, _ = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/home/t";
  install_lisp k "/home/t/lib.o" "(defun (answer-value) 42)";
  install_c k "/home/t/main.o"
    "extern int answer_value(); int main() { print_int(answer_value()); return 0; }";
  ignore
    (link k ~dir:"/home/t"
       ~specs:[ ("main.o", Sharing.Static_private); ("lib.o", Sharing.Dynamic_private) ]
       "prog");
  let _, out = run_program k "/home/t/prog" in
  check_string "dashed Lisp name, underscore C name" "42" out

let suite =
  [
    test "lisp: arithmetic and n-ary operators" lisp_arithmetic;
    test "lisp: control flow" lisp_control_flow;
    test "lisp: recursion with value-position if" lisp_functions_and_recursion;
    test "lisp: front-end errors" lisp_errors;
    test "lisp: C and Lisp share one public counter" cross_language_sharing;
    test "lisp: C consumes a Lisp-defined module" lisp_module_consumed_from_c;
    test "lisp: dashed names link against C spellings" dash_mangling;
  ]

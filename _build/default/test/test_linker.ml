open Harness
module Layout = Hemlock_vm.Layout
module Segment = Hemlock_vm.Segment
module Objfile = Hemlock_obj.Objfile
module Aout = Hemlock_linker.Aout
module Modinst = Hemlock_linker.Modinst
module Reloc_engine = Hemlock_linker.Reloc_engine
module Insn = Hemlock_isa.Insn
module Reg = Hemlock_isa.Reg

(* ----- sharing classes (Table 1) ----- *)

let sharing_table () =
  let open Sharing in
  check_bool "static private" true
    (link_time Static_private = Static_link_time
    && instance_per_process Static_private
    && portion Static_private = Private);
  check_bool "dynamic private" true
    (link_time Dynamic_private = Run_time
    && instance_per_process Dynamic_private
    && portion Dynamic_private = Private);
  check_bool "static public" true
    (link_time Static_public = Static_link_time
    && (not (instance_per_process Static_public))
    && portion Static_public = Public);
  check_bool "dynamic public" true
    (link_time Dynamic_public = Run_time
    && (not (instance_per_process Dynamic_public))
    && portion Dynamic_public = Public);
  check_int "four classes" 4 (List.length all);
  List.iter
    (fun cls -> check_bool "parse roundtrip" true (of_string (to_string cls) = Some cls))
    all;
  check_bool "short names" true (of_string "dp" = Some Dynamic_private);
  check_bool "unknown" true (of_string "wild" = None)

(* ----- search paths (section 3 rules) ----- *)

let search_static_order () =
  let k, _ = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/home/u";
  let ctx = ctx_in k "/home/u" ~env:[ ("LD_LIBRARY_PATH", "/env1:/env2") ] () in
  Alcotest.(check (list string)) "static order"
    [ "/home/u"; "/cli1"; "/cli2"; "/env1"; "/env2"; "/usr/lib"; "/shared/lib" ]
    (Search.static_dirs ctx ~cli_dirs:[ "/cli1"; "/cli2" ])

let search_runtime_order () =
  let k, _ = boot () in
  let ctx = ctx_in k "/" ~env:[ ("LD_LIBRARY_PATH", "/new") ] () in
  Alcotest.(check (list string)) "runtime order: env first, then recorded"
    [ "/new"; "/home/u"; "/usr/lib" ]
    (Search.runtime_dirs ctx ~recorded:[ "/home/u"; "/usr/lib" ])

let locate_first_wins () =
  let k, _ = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/a";
  Fs.mkdir fs "/b";
  Fs.write_file fs "/a/m.o" (Bytes.of_string "A");
  Fs.write_file fs "/b/m.o" (Bytes.of_string "B");
  let ctx = ctx_in k "/" () in
  check_bool "first dir wins" true
    (Search.locate ctx ~dirs:[ "/b"; "/a" ] "m.o" = Some "/b/m.o");
  check_bool "missing" true (Search.locate ctx ~dirs:[ "/a" ] "nope.o" = None);
  check_bool "path bypasses dirs" true
    (Search.locate ctx ~dirs:[ "/b" ] "/a/m.o" = Some "/a/m.o");
  (* symlinks: located lexically, not chased *)
  Fs.mkdir fs "/tmpdir";
  Fs.symlink fs ~target:"/a/m.o" "/tmpdir/m.o";
  check_bool "symlink location kept" true
    (Search.locate ctx ~dirs:[ "/tmpdir"; "/a" ] "m.o" = Some "/tmpdir/m.o")

(* ----- reloc engine ----- *)

let bytes_sink b base =
  {
    Reloc_engine.get32 = (fun addr -> Hemlock_util.Codec.get_u32 b (addr - base));
    set32 = (fun addr v -> Hemlock_util.Codec.set_u32 b (addr - base) v);
  }

let reloc_abs_hi_lo () =
  let b = Bytes.make 16 '\000' in
  let sink = bytes_sink b 0x1000 in
  Reloc_engine.apply sink ~at:0x1000 ~kind:Objfile.Abs32 ~value:0x30001234 ~gp:None
    ~veneer:None;
  check_int "abs32" 0x30001234 (sink.Reloc_engine.get32 0x1000);
  sink.Reloc_engine.set32 0x1004 (Insn.encode (Insn.Lui (Reg.t0, 0)));
  Reloc_engine.apply sink ~at:0x1004 ~kind:Objfile.Hi16 ~value:0x30001234 ~gp:None
    ~veneer:None;
  (match Insn.decode (sink.Reloc_engine.get32 0x1004) with
  | Insn.Lui (_, 0x3000) -> ()
  | _ -> Alcotest.fail "hi16");
  sink.Reloc_engine.set32 0x1008 (Insn.encode (Insn.Ori (Reg.t0, Reg.t0, 0)));
  Reloc_engine.apply sink ~at:0x1008 ~kind:Objfile.Lo16 ~value:0x30001234 ~gp:None
    ~veneer:None;
  match Insn.decode (sink.Reloc_engine.get32 0x1008) with
  | Insn.Ori (_, _, 0x1234) -> ()
  | _ -> Alcotest.fail "lo16"

let reloc_gprel () =
  let b = Bytes.make 8 '\000' in
  let sink = bytes_sink b 0x1000 in
  sink.Reloc_engine.set32 0x1000 (Insn.encode (Insn.Lw (Reg.t0, Reg.gp, 0)));
  Reloc_engine.apply sink ~at:0x1000 ~kind:Objfile.Gprel16 ~value:0x2100 ~gp:(Some 0x2000)
    ~veneer:None;
  (match Insn.decode (sink.Reloc_engine.get32 0x1000) with
  | Insn.Lw (_, _, 0x100) -> ()
  | _ -> Alcotest.fail "gprel patch");
  (* out of 16-bit range: the sparse-address-space failure mode *)
  (match
     Reloc_engine.apply sink ~at:0x1000 ~kind:Objfile.Gprel16 ~value:0x3000_0000
       ~gp:(Some 0x2000) ~veneer:None
   with
  | _ -> Alcotest.fail "expected range error"
  | exception Reloc_engine.Link_error msg -> check_bool "mentions gp" true (contains msg "gp"));
  match
    Reloc_engine.apply sink ~at:0x1000 ~kind:Objfile.Gprel16 ~value:0x2100 ~gp:None
      ~veneer:None
  with
  | _ -> Alcotest.fail "expected no-gp error"
  | exception Reloc_engine.Link_error _ -> ()

let reloc_jump_veneer () =
  let b = Bytes.make 128 '\000' in
  let base = 0x0100_0000 in
  let sink = bytes_sink b base in
  let next = ref 0 in
  let pool =
    {
      Reloc_engine.vp_base = base + 32;
      vp_cap = 2;
      vp_get_next = (fun () -> !next);
      vp_set_next = (fun n -> next := n);
    }
  in
  Reloc_engine.reset_veneer_count ();
  sink.Reloc_engine.set32 base (Insn.encode (Insn.Jal 0));
  (* In-range target: patched directly, no veneer. *)
  Reloc_engine.apply sink ~at:base ~kind:Objfile.Jump26 ~value:0x0200_0000 ~gp:None
    ~veneer:(Some pool);
  check_int "no veneer needed" 0 !next;
  (* Cross-region target: goes through a veneer. *)
  sink.Reloc_engine.set32 (base + 4) (Insn.encode (Insn.Jal 0));
  Reloc_engine.apply sink ~at:(base + 4) ~kind:Objfile.Jump26 ~value:0x3200_0000 ~gp:None
    ~veneer:(Some pool);
  check_int "one veneer" 1 !next;
  check_int "counted" 1 (Reloc_engine.veneers_created ());
  (match Insn.decode (sink.Reloc_engine.get32 (base + 4)) with
  | Insn.Jal field -> check_int "jump to veneer" (base + 32) (Insn.jump_target ~pc:(base + 4) field)
  | _ -> Alcotest.fail "not a jal");
  (* The veneer loads the target and jumps indirect. *)
  (match
     ( Insn.decode (sink.Reloc_engine.get32 (base + 32)),
       Insn.decode (sink.Reloc_engine.get32 (base + 36)),
       Insn.decode (sink.Reloc_engine.get32 (base + 40)) )
   with
  | Insn.Lui (1, 0x3200), Insn.Ori (1, 1, 0), Insn.Jr 1 -> ()
  | _ -> Alcotest.fail "veneer body");
  (* Same target reuses the veneer slot. *)
  sink.Reloc_engine.set32 (base + 8) (Insn.encode (Insn.J 0));
  Reloc_engine.apply sink ~at:(base + 8) ~kind:Objfile.Jump26 ~value:0x3200_0000 ~gp:None
    ~veneer:(Some pool);
  check_int "reused" 1 !next;
  (* A second distinct target fills the pool; a third fails. *)
  Reloc_engine.apply sink ~at:(base + 8) ~kind:Objfile.Jump26 ~value:0x3300_0000 ~gp:None
    ~veneer:(Some pool);
  match
    Reloc_engine.apply sink ~at:(base + 8) ~kind:Objfile.Jump26 ~value:0x3400_0000 ~gp:None
      ~veneer:(Some pool)
  with
  | _ -> Alcotest.fail "expected pool exhaustion"
  | exception Reloc_engine.Link_error msg -> check_bool "pool" true (contains msg "pool")

(* ----- lds ----- *)

let counter_template = {|
int counter;
int bump() { counter = counter + 1; return counter; }
|}

let lds_basic_link () =
  let k, _ = boot () in
  Fs.mkdir (Kernel.fs k) "/home/t";
  install_c k "/home/t/main.o" "int main() { return 0; }";
  let warnings = link k ~dir:"/home/t" ~specs:[ ("main.o", Sharing.Static_private) ] "a.out" in
  check_bool "no warnings" true (warnings = []);
  let aout = Aout.parse (Fs.read_file (Kernel.fs k) "/home/t/a.out") in
  check_bool "has _start" true (Aout.find_symbol aout "_start" <> None);
  check_bool "has main" true (Aout.find_symbol aout "main" <> None);
  check_bool "entry at _start" true (Some aout.Aout.entry_off = Aout.find_symbol aout "_start");
  check_bool "records search dirs" true (List.mem "/home/t" aout.Aout.static_dirs)

let lds_missing_static_aborts () =
  let k, _ = boot () in
  Fs.mkdir (Kernel.fs k) "/home/t";
  match link k ~dir:"/home/t" ~specs:[ ("main.o", Sharing.Static_private) ] "a.out" with
  | _ -> Alcotest.fail "expected Link_error"
  | exception Lds.Link_error msg -> check_bool "names module" true (contains msg "main.o")

let lds_missing_dynamic_warns () =
  let k, _ = boot () in
  Fs.mkdir (Kernel.fs k) "/home/t";
  install_c k "/home/t/main.o" "int main() { return 0; }";
  let warnings =
    link k ~dir:"/home/t"
      ~specs:[ ("main.o", Sharing.Static_private); ("ghost.o", Sharing.Dynamic_public) ]
      "a.out"
  in
  check_bool "warned" true
    (List.exists (fun w -> contains w "ghost.o" && contains w "does not exist yet") warnings);
  let aout = Aout.parse (Fs.read_file (Kernel.fs k) "/home/t/a.out") in
  check_bool "descriptor recorded anyway" true
    (List.exists (fun d -> d.Aout.dd_name = "ghost.o") aout.Aout.dynamics)

let lds_duplicate_symbols () =
  let k, _ = boot () in
  Fs.mkdir (Kernel.fs k) "/home/t";
  install_c k "/home/t/a.o" "int f() { return 1; }";
  install_c k "/home/t/b.o" "int f() { return 2; }";
  install_c k "/home/t/main.o" "extern int f(); int main() { return f(); }";
  let specs =
    [
      ("main.o", Sharing.Static_private);
      ("a.o", Sharing.Static_private);
      ("b.o", Sharing.Static_private);
    ]
  in
  (match link k ~dir:"/home/t" ~specs "a.out" with
  | _ -> Alcotest.fail "expected duplicate error"
  | exception Lds.Link_error msg -> check_bool "dup" true (contains msg "multiply defined"));
  (* `First` policy: picks the first and warns, as the paper describes. *)
  let warnings = link k ~dir:"/home/t" ~duplicate_policy:`First ~specs "a.out" in
  check_bool "warned instead" true (List.exists (fun w -> contains w "multiply defined") warnings);
  let proc, _ = run_program k "/home/t/a.out" in
  check_int "first wins" 1 (exit_code proc)

let lds_static_public_created () =
  let k, _ = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/shared/lib";
  install_c k "/shared/lib/counter.o" counter_template;
  Fs.mkdir fs "/home/t";
  install_c k "/home/t/main.o" "extern int bump(); int main() { return bump(); }";
  let warnings =
    link k ~dir:"/home/t"
      ~specs:
        [ ("main.o", Sharing.Static_private); ("/shared/lib/counter.o", Sharing.Static_public) ]
      "a.out"
  in
  check_bool "no warnings" true (warnings = []);
  (* The module file exists, named by dropping ".o", at a global address. *)
  check_bool "created" true (Fs.exists fs "/shared/lib/counter");
  let seg = Fs.segment_of fs "/shared/lib/counter" in
  check_bool "is module file" true (Modinst.Header.is_module_file seg);
  check_string "records template" "/shared/lib/counter.o" (Modinst.Header.template seg);
  check_bool "fully linked (internal refs only)" true (Modinst.Header.fully_linked seg);
  let aout = Aout.parse (Fs.read_file fs "/home/t/a.out") in
  (match aout.Aout.static_pubs with
  | [ sp ] ->
    check_string "module path" "/shared/lib/counter" sp.Aout.sp_module;
    check_int "address = slot address" (Fs.addr_of_path fs "/shared/lib/counter") sp.Aout.sp_base
  | _ -> Alcotest.fail "one static pub");
  (* References to it were resolved to absolute addresses statically:
     no pending reloc mentions bump. *)
  check_bool "bump resolved statically" true
    (not (List.exists (fun r -> r.Objfile.rel_symbol = "bump") aout.Aout.pending));
  (* Relinking reuses the existing module. *)
  let before = Fs.addr_of_path fs "/shared/lib/counter" in
  ignore
    (link k ~dir:"/home/t"
       ~specs:
         [ ("main.o", Sharing.Static_private); ("/shared/lib/counter.o", Sharing.Static_public) ]
       "b.out");
  check_int "address stable across relinks" before (Fs.addr_of_path fs "/shared/lib/counter")

let lds_public_template_must_be_shared () =
  let k, _ = boot () in
  Fs.mkdir (Kernel.fs k) "/home/t";
  install_c k "/home/t/counter.o" counter_template;
  install_c k "/home/t/main.o" "int main() { return 0; }";
  match
    link k ~dir:"/home/t"
      ~specs:[ ("main.o", Sharing.Static_private); ("counter.o", Sharing.Static_public) ]
      "a.out"
  with
  | _ -> Alcotest.fail "expected Link_error"
  | exception Modinst.Link_error msg ->
    check_bool "explains partition rule" true (contains msg "shared partition")

let lds_rejects_gp_public () =
  let k, _ = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/shared/lib";
  write_obj k "/shared/lib/gpmod.o"
    (Cc.to_object ~use_gp:true ~name:"gpmod.o" counter_template);
  Fs.mkdir fs "/home/t";
  install_c k "/home/t/main.o" "int main() { return 0; }";
  match
    link k ~dir:"/home/t"
      ~specs:[ ("main.o", Sharing.Static_private); ("/shared/lib/gpmod.o", Sharing.Static_public) ]
      "a.out"
  with
  | _ -> Alcotest.fail "expected gp rejection"
  | exception Modinst.Link_error msg ->
    check_bool "explains gp rule" true (contains msg "gp disabled")

let lds_gp_private_works () =
  (* A private static image may use gp: crt0 sets $gp to the image's
     data base and lds resolves GPREL16 against it. *)
  let k, _ = boot () in
  Fs.mkdir (Kernel.fs k) "/home/t";
  write_obj k "/home/t/main.o"
    (Cc.to_object ~use_gp:true ~name:"main.o"
       "int g; int main() { g = 31; print_int(g + 11); return 0; }");
  ignore (link k ~dir:"/home/t" ~specs:[ ("main.o", Sharing.Static_private) ] "a.out");
  let _, out = run_program k "/home/t/a.out" in
  check_string "gp-relative data works privately" "42" out

let lds_retains_unresolved () =
  let k, _ = boot () in
  Fs.mkdir (Kernel.fs k) "/home/t";
  install_c k "/home/t/lib.o" "int helper() { return 5; }";
  install_c k "/home/t/main.o" "extern int helper(); int main() { return helper(); }";
  let _ =
    link k ~dir:"/home/t"
      ~specs:[ ("main.o", Sharing.Static_private); ("lib.o", Sharing.Dynamic_private) ]
      "a.out"
  in
  let aout = Aout.parse (Fs.read_file (Kernel.fs k) "/home/t/a.out") in
  check_bool "helper retained for ldl" true
    (List.exists (fun r -> r.Objfile.rel_symbol = "helper") aout.Aout.pending)

let lds_embed_metadata () =
  let k, _ = boot () in
  Fs.mkdir (Kernel.fs k) "/home/t";
  install_c k "/home/t/m.o" "int f() { return 0; }";
  let ctx = ctx_in k "/home/t" () in
  Lds.embed_metadata ctx ~template:"m.o" ~modules:[ "dep.o" ] ~search_path:[ "/libs" ];
  let obj = Objfile.parse (Fs.read_file (Kernel.fs k) "/home/t/m.o") in
  Alcotest.(check (list string)) "modules" [ "dep.o" ] obj.Objfile.own_modules;
  Alcotest.(check (list string)) "search" [ "/libs" ] obj.Objfile.own_search_path;
  (* still a valid template: symbols survive *)
  check_bool "symbols intact" true (Objfile.find_symbol obj "f" <> None)

(* ----- module instances / public files ----- *)

let module_header_state () =
  let k, _ = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/shared/lib";
  let obj =
    Cc.to_object ~name:"m.o" "extern int outside; int f() { return outside; }"
  in
  write_obj k "/shared/lib/m.o" obj;
  let ctx = ctx_in k "/" () in
  let base =
    Modinst.create_public_file ctx ~template_path:"/shared/lib/m.o" ~obj
      ~module_path:"/shared/lib/m"
  in
  check_int "base is the slot address" (Fs.addr_of_path fs "/shared/lib/m") base;
  let seg = Fs.segment_of fs "/shared/lib/m" in
  check_bool "not fully linked: external ref pending" false (Modinst.Header.fully_linked seg);
  check_int "reloc count recorded" (List.length obj.Objfile.relocs) (Modinst.Header.nrelocs seg);
  (* mark all applied -> fully linked *)
  List.iteri (fun i _ -> Modinst.Header.set_applied seg i) obj.Objfile.relocs;
  check_bool "now fully linked" true (Modinst.Header.fully_linked seg);
  check_bool "idempotent marking" true
    (Modinst.Header.set_applied seg 0;
     Modinst.Header.fully_linked seg)

let instance_symbol_addresses () =
  let k, _ = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/shared/lib";
  let obj = Cc.to_object ~name:"m.o" "int x = 3; int f() { return x; }" in
  write_obj k "/shared/lib/m.o" obj;
  let ctx = ctx_in k "/" () in
  ignore
    (Modinst.create_public_file ctx ~template_path:"/shared/lib/m.o" ~obj
       ~module_path:"/shared/lib/m");
  let scope = { Modinst.sc_label = "t"; sc_modules = []; sc_search = []; sc_parent = None } in
  let inst = Modinst.public_instance ctx ~module_path:"/shared/lib/m" ~scope in
  let f_addr = Option.get (Modinst.find_export inst "f") in
  let x_addr = Option.get (Modinst.find_export inst "x") in
  check_bool "f in text after header page" true
    (f_addr = inst.Modinst.inst_base + Modinst.Header.size);
  check_bool "x after text" true (x_addr > f_addr);
  check_bool "contains" true (Modinst.contains inst x_addr);
  check_bool "not beyond" false (Modinst.contains inst (Modinst.limit inst));
  check_bool "no ghost exports" true (Modinst.find_export inst "ghost" = None)

let suite =
  [
    test "sharing: Table 1 semantics" sharing_table;
    test "search: static-link-time order" search_static_order;
    test "search: run-time order" search_runtime_order;
    test "search: locate picks first, keeps symlinks" locate_first_wins;
    test "reloc: ABS32/HI16/LO16" reloc_abs_hi_lo;
    test "reloc: GPREL16 range and absence" reloc_gprel;
    test "reloc: out-of-range jumps use veneers" reloc_jump_veneer;
    test "lds: basic image link" lds_basic_link;
    test "lds: missing static module aborts" lds_missing_static_aborts;
    test "lds: missing dynamic module warns" lds_missing_dynamic_warns;
    test "lds: duplicate global symbols" lds_duplicate_symbols;
    test "lds: static public module creation" lds_static_public_created;
    test "lds: public templates must live on /shared" lds_public_template_must_be_shared;
    test "lds: gp-using public modules rejected" lds_rejects_gp_public;
    test "lds: gp works for the private image" lds_gp_private_works;
    test "lds: unresolved relocations retained" lds_retains_unresolved;
    test "lds: -r metadata embedding" lds_embed_metadata;
    test "modinst: public header link state" module_header_state;
    test "modinst: instance symbol addresses" instance_symbol_addresses;
  ]

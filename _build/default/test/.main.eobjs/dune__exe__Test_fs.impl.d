test/test_fs.ml: Alcotest Bytes Fs Harness Hemlock_vm List Path Printf QCheck2

test/test_btree.ml: Alcotest Array Harness Hemlock_sfs Hemlock_util Int List Map Option Printf QCheck2

test/test_util.ml: Alcotest Array Bytes Fun Harness Hemlock_util List QCheck2

test/test_cc.ml: Alcotest Fs Harness Hemlock_cc Hemlock_obj Kernel List Sharing

test/test_diff.ml: Fs Harness Hemlock_apps Hemlock_baseline Hemlock_util Kernel Ldl Printf QCheck2

test/test_vm.ml: Alcotest Bytes Harness Hashtbl Hemlock_vm List QCheck2

test/test_failures.ml: Alcotest Bytes Fs Harness Hemlock_linker Hemlock_runtime Hemlock_util Hemlock_vm Kernel Ldl List Option Proc Sharing

test/test_ldl.ml: Alcotest Fs Harness Hemlock_apps Hemlock_linker Hemlock_obj Hemlock_util Hemlock_vm Kernel Ldl Lds List Printf Proc Sharing String

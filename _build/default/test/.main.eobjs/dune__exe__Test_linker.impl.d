test/test_linker.ml: Alcotest Bytes Cc Fs Harness Hemlock_isa Hemlock_linker Hemlock_obj Hemlock_util Hemlock_vm Kernel Lds List Option Search Sharing

test/test_scenarios.ml: Fs Harness Hemlock_apps Hemlock_linker Hemlock_runtime Hemlock_util Hemlock_vm Kernel Ldl Lds List Printf Sharing String

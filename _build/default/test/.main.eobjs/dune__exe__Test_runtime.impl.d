test/test_runtime.ml: Alcotest Fs Harness Hashtbl Hemlock_linker Hemlock_runtime Hemlock_vm Kernel List Option Printf Proc QCheck2 Search Sharing

test/harness.ml: Alcotest Filename Hemlock_cc Hemlock_isa Hemlock_linker Hemlock_obj Hemlock_os Hemlock_runtime Hemlock_sfs List QCheck2 QCheck_alcotest String

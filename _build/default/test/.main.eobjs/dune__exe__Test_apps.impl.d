test/test_apps.ml: Alcotest Fs Harness Hemlock_apps Hemlock_baseline Hemlock_linker Hemlock_util Kernel List String

test/test_obj.ml: Alcotest Bytes Harness Hemlock_linker Hemlock_obj List Printf QCheck2

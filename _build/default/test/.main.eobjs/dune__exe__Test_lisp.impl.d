test/test_lisp.ml: Alcotest Filename Fs Harness Hemlock_lisp Hemlock_obj Kernel List Sharing

test/test_isa.ml: Alcotest Bytes Format Harness Hemlock_isa Hemlock_obj Hemlock_util Hemlock_vm List QCheck2

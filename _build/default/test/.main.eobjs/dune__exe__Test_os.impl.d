test/test_os.ml: Alcotest Buffer Bytes Format Fs Harness Hemlock_linker Hemlock_util Hemlock_vm Kernel List Printf Proc Sharing

test/test_baseline.ml: Alcotest Cc Fs Harness Hemlock_baseline Hemlock_obj Hemlock_util Kernel List Option QCheck2

test/main.mli:

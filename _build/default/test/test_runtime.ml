open Harness
module Shm_heap = Hemlock_runtime.Shm_heap
module Sync = Hemlock_runtime.Sync
module Shared_list = Hemlock_runtime.Shared_list
module Layout = Hemlock_vm.Layout

let with_heap f =
  let k, ldl = boot () in
  run_native k (fun k proc ->
      Hemlock_linker.Ldl.attach ldl proc;
      let heap = Shm_heap.create k proc ~path:"/shared/heap" in
      f k proc heap)

(* ----- heap ----- *)

let heap_alloc_basics () =
  with_heap (fun k proc heap ->
      let a = Shm_heap.alloc k proc ~heap 16 in
      let b = Shm_heap.alloc k proc ~heap 16 in
      check_bool "distinct" true (a <> b);
      check_bool "within segment" true
        (Layout.slot_of_addr a = Layout.slot_of_addr heap);
      Kernel.store_u32 k proc a 1;
      Kernel.store_u32 k proc b 2;
      check_int "no aliasing" 1 (Kernel.load_u32 k proc a);
      check_int "live accounting" 32 (Shm_heap.live_bytes k proc ~heap))

let heap_free_reuse () =
  with_heap (fun k proc heap ->
      let a = Shm_heap.alloc k proc ~heap 24 in
      Shm_heap.free k proc ~heap a;
      check_int "one free block" 1 (Shm_heap.free_blocks k proc ~heap);
      let b = Shm_heap.alloc k proc ~heap 24 in
      check_int "first fit reuses" a b;
      check_int "free list drained" 0 (Shm_heap.free_blocks k proc ~heap);
      (* freed-then-reallocated memory reads as zero *)
      Kernel.store_u32 k proc b 99;
      Shm_heap.free k proc ~heap b;
      let c = Shm_heap.alloc k proc ~heap 24 in
      check_int "zeroed on alloc" 0 (Kernel.load_u32 k proc c))

let heap_alignment_and_min () =
  with_heap (fun k proc heap ->
      let a = Shm_heap.alloc k proc ~heap 1 in
      let b = Shm_heap.alloc k proc ~heap 3 in
      check_bool "aligned" true (a land 3 = 0 && b land 3 = 0);
      check_int "rounded up" 8 (Shm_heap.live_bytes k proc ~heap))

let heap_exhaustion () =
  with_heap (fun k proc heap ->
      match Shm_heap.alloc k proc ~heap (2 * Layout.shared_slot_size) with
      | _ -> Alcotest.fail "expected full heap"
      | exception Shm_heap.Heap_error msg ->
        check_bool "message" true (contains msg "full");
        0)
  |> ignore

let heap_by_pointer () =
  with_heap (fun k proc heap ->
      let a = Shm_heap.alloc k proc ~heap 8 in
      check_int "heap found from interior pointer" heap (Shm_heap.heap_base k (a + 4));
      match Shm_heap.heap_base k 0x1000 with
      | _ -> Alcotest.fail "private address has no segment heap"
      | exception Shm_heap.Heap_error _ -> 0)
  |> ignore

let heap_unformatted_detected () =
  let k, ldl = boot () in
  ignore
    (run_native k (fun k proc ->
         Hemlock_linker.Ldl.attach ldl proc;
         Fs.create_file (Kernel.fs k) "/shared/raw";
         let base = Fs.addr_of_path (Kernel.fs k) "/shared/raw" in
         match Shm_heap.alloc k proc ~heap:base 8 with
         | _ -> Alcotest.fail "expected unformatted error"
         | exception Shm_heap.Heap_error msg ->
           check_bool "says not formatted" true (contains msg "not a formatted heap");
           0))

let heap_shared_between_processes () =
  let k, ldl = boot () in
  let addr = ref 0 in
  ignore
    (run_native k (fun k proc ->
         Hemlock_linker.Ldl.attach ldl proc;
         let heap = Shm_heap.create k proc ~path:"/shared/h2" in
         let a = Shm_heap.alloc k proc ~heap 8 in
         Kernel.store_u32 k proc a 4242;
         addr := a;
         0));
  let v =
    run_native k (fun k proc ->
        Hemlock_linker.Ldl.attach ldl proc;
        (* A different process follows the pointer; the handler maps the
           segment and the heap is usable in place. *)
        let v = Kernel.load_u32 k proc !addr in
        let heap = Shm_heap.heap_base k !addr in
        let b = Shm_heap.alloc k proc ~heap 8 in
        check_bool "allocates from the same heap" true
          (Layout.slot_of_addr b = Layout.slot_of_addr !addr);
        v)
  in
  check_int "value visible across processes" 4242 v

let prop_heap_model =
  prop "shm_heap: random alloc/free sequences keep blocks disjoint" ~count:60
    QCheck2.Gen.(list_size (int_range 1 40) (pair bool (int_range 1 64)))
    (fun ops ->
      let k, ldl = boot () in
      run_native k (fun k proc ->
          Hemlock_linker.Ldl.attach ldl proc;
          let heap = Shm_heap.create k proc ~path:"/shared/prop" in
          let live = ref [] in
          let ok = ref true in
          List.iter
            (fun (free_one, size) ->
              match (free_one, !live) with
              | true, (a, _) :: rest ->
                Shm_heap.free k proc ~heap a;
                live := rest
              | _, _ ->
                let a = Shm_heap.alloc k proc ~heap size in
                (* no overlap with any live block *)
                List.iter
                  (fun (b, bsize) ->
                    if a < b + bsize && b < a + size then ok := false)
                  !live;
                live := (a, size) :: !live)
            ops;
          !ok))

(* ----- sync ----- *)

let spinlock_mutual_exclusion () =
  let k, ldl = boot () in
  let lock_addr = ref 0 in
  ignore
    (run_native k (fun k proc ->
         Hemlock_linker.Ldl.attach ldl proc;
         let heap = Shm_heap.create k proc ~path:"/shared/locks" in
         lock_addr := Shm_heap.alloc k proc ~heap 8;
         Sync.spin_init k proc !lock_addr;
         0));
  let counter_addr = !lock_addr + 4 in
  let spawn_worker () =
    Kernel.spawn_native k (fun k proc ->
        Hemlock_linker.Ldl.attach ldl proc;
        for _ = 1 to 50 do
          Sync.spin_acquire k proc !lock_addr;
          (* read-modify-write with deliberate yields inside the
             critical section: only the lock keeps it atomic *)
          let v = Kernel.load_u32 k proc counter_addr in
          Proc.yield ();
          Kernel.store_u32 k proc counter_addr (v + 1);
          Sync.spin_release k proc !lock_addr
        done;
        0)
  in
  let workers = List.init 4 (fun _ -> spawn_worker ()) in
  Kernel.run k;
  List.iter (fun p -> check_int "worker ok" 0 (exit_code p)) workers;
  let v =
    run_native k (fun k proc ->
        Hemlock_linker.Ldl.attach ldl proc;
        Kernel.load_u32 k proc counter_addr)
  in
  check_int "200 increments survived" 200 v

let spin_try_and_release () =
  let k, ldl = boot () in
  ignore
    (run_native k (fun k proc ->
         Hemlock_linker.Ldl.attach ldl proc;
         let heap = Shm_heap.create k proc ~path:"/shared/l2" in
         let l = Shm_heap.alloc k proc ~heap 4 in
         Sync.spin_init k proc l;
         check_bool "acquire" true (Sync.spin_try_acquire k proc l);
         check_bool "holder recorded" true (Kernel.load_u32 k proc l = proc.Proc.pid);
         Sync.spin_release k proc l;
         check_bool "free again" true (Sync.spin_try_acquire k proc l);
         0))

let semaphore_producer_consumer () =
  let k, ldl = boot () in
  let sem = ref 0 in
  let consumed = ref 0 in
  ignore
    (run_native k (fun k proc ->
         Hemlock_linker.Ldl.attach ldl proc;
         let heap = Shm_heap.create k proc ~path:"/shared/sem" in
         sem := Shm_heap.alloc k proc ~heap 4;
         Sync.sem_init k proc !sem 0;
         0));
  ignore
    (Kernel.spawn_native k (fun k proc ->
         Hemlock_linker.Ldl.attach ldl proc;
         for _ = 1 to 5 do
           Sync.sem_wait k proc !sem;
           incr consumed
         done;
         0));
  ignore
    (Kernel.spawn_native k (fun k proc ->
         Hemlock_linker.Ldl.attach ldl proc;
         for _ = 1 to 5 do
           Sync.sem_post k proc !sem;
           Proc.yield ()
         done;
         0));
  Kernel.run k;
  check_int "all consumed" 5 !consumed

let isa_lock_syscalls () =
  (* Two ISA workers bump a shared counter under the kernel lock. *)
  let k, ldl = boot () in
  ignore ldl;
  let fs = Kernel.fs k in
  Fs.mkdir fs "/shared/lib";
  install_c k "/shared/lib/shared_data.o" "int the_lock; int total;";
  Fs.mkdir fs "/home/t";
  install_c k "/home/t/main.o"
    {|
extern int the_lock;
extern int total;
int main() {
  int i;
  int v;
  i = 0;
  while (i < 25) {
    lock_acquire(&the_lock);
    v = total;
    yield();
    total = v + 1;
    lock_release(&the_lock);
    i = i + 1;
  }
  return 0;
}|};
  ignore
    (link k ~dir:"/home/t"
       ~specs:
         [
           ("main.o", Sharing.Static_private);
           ("/shared/lib/shared_data.o", Sharing.Dynamic_public);
         ]
       "prog");
  let a = Kernel.spawn_exec k "/home/t/prog" in
  let b = Kernel.spawn_exec k "/home/t/prog" in
  Kernel.run k;
  check_int "a ok" 0 (exit_code a);
  check_int "b ok" 0 (exit_code b);
  let total =
    run_native k (fun k proc ->
        Hemlock_linker.Ldl.attach ldl proc;
        let base = Kernel.sys_path_to_addr k proc "/shared/lib/shared_data" in
        ignore base;
        let inst =
          Hemlock_linker.Modinst.public_instance
            { Search.fs = Kernel.fs k; cwd = proc.Proc.cwd; env = [] }
            ~module_path:"/shared/lib/shared_data"
            ~scope:
              { Hemlock_linker.Modinst.sc_label = "t"; sc_modules = []; sc_search = []; sc_parent = None }
        in
        Kernel.load_u32 k proc
          (Option.get (Hemlock_linker.Modinst.find_export inst "total")))
  in
  check_int "interleaved increments all kept" 50 total

(* ----- shared lists ----- *)

let list_push_pop () =
  with_heap (fun k proc heap ->
      let head = Shm_heap.alloc k proc ~heap 4 in
      Shared_list.init k proc ~head;
      check_int "empty" 0 (Shared_list.length k proc ~head);
      ignore (Shared_list.push k proc ~head ~fields:[ 1; 10 ]);
      ignore (Shared_list.push k proc ~head ~fields:[ 2; 20 ]);
      check_int "two" 2 (Shared_list.length k proc ~head);
      (match Shared_list.pop k proc ~head ~n_fields:2 with
      | Some [ 2; 20 ] -> ()
      | _ -> Alcotest.fail "LIFO pop");
      check_int "one left" 1 (Shared_list.length k proc ~head);
      check_bool "pop to empty" true
        (Shared_list.pop k proc ~head ~n_fields:2 = Some [ 1; 10 ]);
      check_bool "empty pop" true (Shared_list.pop k proc ~head ~n_fields:2 = None))

let list_find_fields () =
  with_heap (fun k proc heap ->
      let head = Shm_heap.alloc k proc ~heap 4 in
      Shared_list.init k proc ~head;
      List.iter (fun v -> ignore (Shared_list.push k proc ~head ~fields:[ v; v * v ])) [ 1; 2; 3 ];
      (match Shared_list.find k proc ~head ~f:(fun n -> Shared_list.field k proc n 0 = 2) with
      | Some node ->
        check_int "field read" 4 (Shared_list.field k proc node 1);
        Shared_list.set_field k proc node 1 99;
        check_int "field write" 99 (Shared_list.field k proc node 1)
      | None -> Alcotest.fail "find");
      check_bool "miss" true
        (Shared_list.find k proc ~head ~f:(fun _ -> false) = None))

let list_copy_preserves_order () =
  with_heap (fun k proc heap ->
      let head = Shm_heap.alloc k proc ~heap 4 in
      let dst = Shm_heap.alloc k proc ~heap 4 in
      Shared_list.init k proc ~head;
      Shared_list.init k proc ~head:dst;
      List.iter (fun v -> ignore (Shared_list.push k proc ~head ~fields:[ v ])) [ 3; 2; 1 ];
      Shared_list.copy k proc ~head ~dst_head:dst ~n_fields:1;
      let collect h =
        let acc = ref [] in
        Shared_list.iter k proc ~head:h (fun n -> acc := Shared_list.field k proc n 0 :: !acc);
        List.rev !acc
      in
      Alcotest.(check (list int)) "same order" (collect head) (collect dst);
      Alcotest.(check (list int)) "content" [ 1; 2; 3 ] (collect dst))

let list_strings () =
  with_heap (fun k proc heap ->
      ignore heap;
      let addr = Shared_list.alloc_string k proc ~near:heap "hello hemlock" in
      check_string "string roundtrip" "hello hemlock" (Shared_list.read_string k proc addr))

(* ----- shared hash table ----- *)

module Shared_table = Hemlock_runtime.Shared_table

let table_basics () =
  with_heap (fun k proc heap ->
      let table = Shared_table.create k proc ~heap ~capacity:16 in
      check_int "empty" 0 (Shared_table.length k proc ~table);
      Shared_table.put k proc ~table ~key:"alpha" 1;
      Shared_table.put k proc ~table ~key:"beta" 2;
      check_bool "get hit" true (Shared_table.get k proc ~table ~key:"alpha" = Some 1);
      check_bool "get miss" true (Shared_table.get k proc ~table ~key:"gamma" = None);
      Shared_table.put k proc ~table ~key:"alpha" 10;
      check_bool "update in place" true (Shared_table.get k proc ~table ~key:"alpha" = Some 10);
      check_int "two keys" 2 (Shared_table.length k proc ~table);
      check_bool "remove" true (Shared_table.remove k proc ~table ~key:"alpha");
      check_bool "remove again" false (Shared_table.remove k proc ~table ~key:"alpha");
      check_int "one left" 1 (Shared_table.length k proc ~table);
      (* tombstoned slot is reusable and probing still finds beta *)
      Shared_table.put k proc ~table ~key:"delta" 4;
      check_bool "after tombstone" true (Shared_table.get k proc ~table ~key:"beta" = Some 2))

let table_capacity () =
  with_heap (fun k proc heap ->
      let table = Shared_table.create k proc ~heap ~capacity:4 in
      List.iteri (fun i key -> Shared_table.put k proc ~table ~key i) [ "a"; "b"; "c"; "d" ];
      check_int "full" 4 (Shared_table.length k proc ~table);
      (match Shared_table.put k proc ~table ~key:"e" 5 with
      | _ -> Alcotest.fail "expected Table_full"
      | exception Shared_table.Table_full -> ());
      (* updates still work when full *)
      Shared_table.put k proc ~table ~key:"a" 100;
      check_bool "update when full" true (Shared_table.get k proc ~table ~key:"a" = Some 100))

let table_iter () =
  with_heap (fun k proc heap ->
      let table = Shared_table.create k proc ~heap ~capacity:32 in
      List.iteri (fun i key -> Shared_table.put k proc ~table ~key i)
        [ "one"; "two"; "three" ];
      let seen = ref [] in
      Shared_table.iter k proc ~table (fun key v -> seen := (key, v) :: !seen);
      Alcotest.(check (list (pair string int))) "all bindings"
        [ ("one", 0); ("three", 2); ("two", 1) ]
        (List.sort compare !seen))

let prop_table_model =
  prop "shared_table: agrees with Hashtbl under random ops" ~count:40
    QCheck2.Gen.(list_size (int_range 1 80) (pair (int_range 0 2) (int_bound 15)))
    (fun ops ->
      let k, ldl = boot () in
      run_native k (fun k proc ->
          Hemlock_linker.Ldl.attach ldl proc;
          let heap = Shm_heap.create k proc ~path:"/shared/tblprop" in
          let table = Shared_table.create k proc ~heap ~capacity:64 in
          let model : (string, int) Hashtbl.t = Hashtbl.create 16 in
          let ok = ref true in
          List.iter
            (fun (op, n) ->
              let key = Printf.sprintf "key%d" n in
              match op with
              | 0 ->
                Shared_table.put k proc ~table ~key n;
                Hashtbl.replace model key n
              | 1 ->
                let expected = Hashtbl.mem model key in
                if Shared_table.remove k proc ~table ~key <> expected then ok := false;
                Hashtbl.remove model key
              | _ ->
                if Shared_table.get k proc ~table ~key <> Hashtbl.find_opt model key then
                  ok := false)
            ops;
          !ok && Shared_table.length k proc ~table = Hashtbl.length model))

let suite =
  [
    test "shm_heap: alloc basics" heap_alloc_basics;
    test "shm_heap: free and first-fit reuse" heap_free_reuse;
    test "shm_heap: alignment and minimum size" heap_alignment_and_min;
    test "shm_heap: exhaustion error" heap_exhaustion;
    test "shm_heap: heap found from any pointer" heap_by_pointer;
    test "shm_heap: unformatted segment detected" heap_unformatted_detected;
    test "shm_heap: shared between processes" heap_shared_between_processes;
    prop_heap_model;
    test "sync: spinlock mutual exclusion" spinlock_mutual_exclusion;
    test "sync: try/release" spin_try_and_release;
    test "sync: semaphore producer/consumer" semaphore_producer_consumer;
    test "sync: ISA lock syscalls serialise ISA programs" isa_lock_syscalls;
    test "shared_list: push/pop" list_push_pop;
    test "shared_list: find and fields" list_find_fields;
    test "shared_list: structural copy" list_copy_preserves_order;
    test "shared_list: strings" list_strings;
    test "shared_table: basics" table_basics;
    test "shared_table: capacity and tombstones" table_capacity;
    test "shared_table: iteration" table_iter;
    prop_table_model;
  ]

open Harness
module Btree = Hemlock_sfs.Btree
module Addr_index = Hemlock_sfs.Addr_index
module Prng = Hemlock_util.Prng

let bt_basics () =
  let t = Btree.create () in
  check_int "empty" 0 (Btree.size t);
  check_bool "find on empty" true (Btree.find t 5 = None);
  check_bool "leq on empty" true (Btree.find_leq t 5 = None);
  Btree.insert t 10 "a";
  Btree.insert t 20 "b";
  Btree.insert t 5 "c";
  check_int "size" 3 (Btree.size t);
  check_bool "find" true (Btree.find t 10 = Some "a");
  check_bool "mem" true (Btree.mem t 5 && not (Btree.mem t 6));
  check_bool "replace" true
    (Btree.insert t 10 "a2";
     Btree.size t = 3 && Btree.find t 10 = Some "a2");
  Alcotest.(check (list (pair int string))) "sorted"
    [ (5, "c"); (10, "a2"); (20, "b") ] (Btree.to_list t)

let bt_find_leq () =
  let t = Btree.create () in
  List.iter (fun k -> Btree.insert t k (string_of_int k)) [ 10; 30; 50; 70 ];
  check_bool "below all" true (Btree.find_leq t 9 = None);
  check_bool "exact" true (Btree.find_leq t 30 = Some (30, "30"));
  check_bool "between" true (Btree.find_leq t 45 = Some (30, "30"));
  check_bool "above all" true (Btree.find_leq t 1000 = Some (70, "70"))

let bt_grows_and_splits () =
  let t = Btree.create () in
  for i = 0 to 499 do
    Btree.insert t ((i * 7919) mod 10000) i
  done;
  Btree.check_invariants t;
  check_bool "many keys" true (Btree.size t > 400);
  check_bool "min" true (fst (Option.get (Btree.min_binding t)) >= 0);
  check_bool "max" true (fst (Option.get (Btree.max_binding t)) < 10000)

let bt_remove () =
  let t = Btree.create () in
  for i = 0 to 99 do
    Btree.insert t i i
  done;
  Btree.check_invariants t;
  check_bool "remove present" true (Btree.remove t 50);
  check_bool "remove again" false (Btree.remove t 50);
  check_bool "gone" false (Btree.mem t 50);
  check_int "size" 99 (Btree.size t);
  Btree.check_invariants t;
  (* drain completely *)
  for i = 0 to 99 do
    ignore (Btree.remove t i)
  done;
  check_int "drained" 0 (Btree.size t);
  Btree.check_invariants t

let prop_bt_model =
  (* Random interleavings of insert/remove/find agree with Stdlib.Map
     and preserve the structural invariants. *)
  prop "btree: agrees with a Map model under random ops" ~count:120
    QCheck2.Gen.(list_size (int_range 1 300) (pair (int_range 0 2) (int_bound 400)))
    (fun ops ->
      let module M = Map.Make (Int) in
      let t = Btree.create () in
      let model = ref M.empty in
      List.iter
        (fun (op, k) ->
          match op with
          | 0 ->
            Btree.insert t k (k * 2);
            model := M.add k (k * 2) !model
          | 1 ->
            let expected = M.mem k !model in
            assert (Btree.remove t k = expected);
            model := M.remove k !model
          | _ ->
            assert (Btree.find t k = M.find_opt k !model);
            assert (Btree.find_leq t k = M.find_last_opt (fun x -> x <= k) !model))
        ops;
      Btree.check_invariants t;
      Btree.to_list t = M.bindings !model)

let index_agreement () =
  let rng = Prng.create ~seed:13 in
  let lin = Addr_index.create Addr_index.Linear in
  let bt = Addr_index.create Addr_index.Btree_index in
  (* register 200 random non-overlapping variable-size segments *)
  let bases = Array.init 200 (fun i -> i * 0x10000) in
  Prng.shuffle rng bases;
  Array.iter
    (fun base ->
      let bytes = 1 + Prng.int rng 0xFFFF in
      let path = Printf.sprintf "/shared/seg%x" base in
      Addr_index.register lin ~base ~bytes path;
      Addr_index.register bt ~base ~bytes path)
    bases;
  check_int "sizes agree" (Addr_index.size lin) (Addr_index.size bt);
  for _ = 1 to 2000 do
    let addr = Prng.int rng (200 * 0x10000) in
    if Addr_index.translate lin addr <> Addr_index.translate bt addr then
      Alcotest.failf "translate disagreement at 0x%x" addr
  done;
  (* removals keep them in agreement *)
  Array.iter
    (fun base -> if base mod 3 = 0 then begin
         check_bool "both removed" true
           (Addr_index.unregister lin ~base = Addr_index.unregister bt ~base)
       end)
    bases;
  for _ = 1 to 500 do
    let addr = Prng.int rng (200 * 0x10000) in
    check_bool "agree after removal" true
      (Addr_index.translate lin addr = Addr_index.translate bt addr)
  done

let index_overlap_rejected () =
  List.iter
    (fun backend ->
      let t = Addr_index.create backend in
      Addr_index.register t ~base:0x1000 ~bytes:0x1000 "/a";
      check_bool "contained rejected" true
        (try
           Addr_index.register t ~base:0x1800 ~bytes:16 "/b";
           false
         with Invalid_argument _ -> true);
      check_bool "spanning rejected" true
        (try
           Addr_index.register t ~base:0x0 ~bytes:0x10000 "/c";
           false
         with Invalid_argument _ -> true);
      Addr_index.register t ~base:0x2000 ~bytes:0x1000 "/d";
      check_int "two live" 2 (Addr_index.size t))
    [ Addr_index.Linear; Addr_index.Btree_index ]

let index_probe_scaling () =
  (* The whole point of the B-tree: probes stay logarithmic while the
     linear table degrades with the number of live segments. *)
  let build backend n =
    let t = Addr_index.create backend in
    for i = 0 to n - 1 do
      Addr_index.register t ~base:(i * 0x1000) ~bytes:0x800 (string_of_int i)
    done;
    Addr_index.reset_probes t;
    let rng = Prng.create ~seed:5 in
    for _ = 1 to 100 do
      ignore (Addr_index.translate t (Prng.int rng (n * 0x1000)))
    done;
    Addr_index.probes t
  in
  let lin_1k = build Addr_index.Linear 1024 in
  let bt_1k = build Addr_index.Btree_index 1024 in
  check_bool "btree far fewer probes at 1k segments" true (bt_1k * 10 < lin_1k);
  let bt_8k = build Addr_index.Btree_index 8192 in
  check_bool "btree probes grow ~log" true (bt_8k < 2 * bt_1k)

let suite =
  [
    test "btree: basics" bt_basics;
    test "btree: find_leq" bt_find_leq;
    test "btree: splits under growth" bt_grows_and_splits;
    test "btree: removal" bt_remove;
    prop_bt_model;
    test "addr_index: backends agree" index_agreement;
    test "addr_index: overlaps rejected" index_overlap_rejected;
    test "addr_index: probe scaling (linear vs btree)" index_probe_scaling;
  ]

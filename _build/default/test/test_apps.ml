open Harness
module Rwho = Hemlock_apps.Rwho
module Presto = Hemlock_apps.Presto
module Symtab = Hemlock_apps.Symtab
module Xfig = Hemlock_apps.Xfig
module Modgen = Hemlock_apps.Modgen
module Stats = Hemlock_util.Stats
module Prng = Hemlock_util.Prng

(* ----- rwho ----- *)

let rwho_packet_roundtrip () =
  let rng = Prng.create ~seed:5 in
  for _ = 1 to 20 do
    let st = Rwho.gen_status rng ~host:"hostXX" ~max_users:4 in
    check_bool "roundtrip" true (Rwho.decode_packet (Rwho.encode_packet st) = st)
  done

let rwho_reports_agree () =
  (* The re-implementation is "both simpler and faster" — and must print
     exactly what the file version prints. *)
  let (r1, u1), _ = Rwho.run_simulation ~style:Rwho.File_spool ~n_hosts:8 ~rounds:2 ~max_users:3 in
  let (r2, u2), _ = Rwho.run_simulation ~style:Rwho.Shared_db ~n_hosts:8 ~rounds:2 ~max_users:3 in
  check_string "rwho identical" r1 r2;
  check_string "ruptime identical" u1 u2;
  check_bool "non-trivial" true (String.length r1 > 0 && String.length u1 > 0)

let rwho_shm_cheaper () =
  let _, (_, files_rwho, _) =
    Rwho.run_simulation ~style:Rwho.File_spool ~n_hosts:16 ~rounds:2 ~max_users:3
  in
  let _, (_, shm_rwho, _) =
    Rwho.run_simulation ~style:Rwho.Shared_db ~n_hosts:16 ~rounds:2 ~max_users:3
  in
  check_bool "shared rwho avoids file opens" true
    (shm_rwho.Stats.files_opened < files_rwho.Stats.files_opened);
  check_bool "shared rwho copies less" true
    (shm_rwho.Stats.bytes_copied < files_rwho.Stats.bytes_copied);
  check_bool "shared rwho cheaper overall" true
    (Stats.cycles shm_rwho < Stats.cycles files_rwho)

let rwho_updates_in_place () =
  (* Repeated updates for the same host grow neither the host list nor
     the report. *)
  let (r, _), _ = Rwho.run_simulation ~style:Rwho.Shared_db ~n_hosts:4 ~rounds:5 ~max_users:2 in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' r) in
  check_bool "at most hosts*users lines" true (List.length lines <= 4 * 2)

let rwho_cluster_agrees () =
  (* The real deployment shape: one kernel per machine, broadcasts over
     the cluster bus, every machine mirroring every host. *)
  let (r1, u1), d_files = Rwho.run_cluster ~style:Rwho.File_spool ~machines:5 ~rounds:2 ~max_users:2 in
  let (r2, u2), d_shm = Rwho.run_cluster ~style:Rwho.Shared_db ~machines:5 ~rounds:2 ~max_users:2 in
  check_string "rwho identical across styles" r1 r2;
  check_string "ruptime identical across styles" u1 u2;
  check_int "all five hosts present" 5
    (List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' u1)));
  check_bool "shared rwho cheaper on a real cluster too" true
    (Stats.cycles d_shm < Stats.cycles d_files)

(* ----- presto ----- *)

let presto_hemlock_matches () =
  let _, ldl = boot () in
  let got = Presto.run_hemlock ldl ~workers:6 ~work_iters:30 ~app_id:"t1" in
  Alcotest.(check (list int)) "results"
    (List.sort compare (Presto.expected_results ~workers:6 ~work_iters:30))
    (List.sort compare got)

let presto_postprocessed_matches () =
  let _, ldl = boot () in
  let got, (lines, rewritten) =
    Presto.run_postprocessed ldl ~workers:6 ~work_iters:30 ~app_id:"t2"
  in
  Alcotest.(check (list int)) "results"
    (List.sort compare (Presto.expected_results ~workers:6 ~work_iters:30))
    (List.sort compare got);
  check_bool "scanned the whole assembly" true (lines > 50);
  check_bool "rewrote shared references" true (rewritten >= 4)

let presto_cleanup () =
  let k, ldl = boot () in
  ignore (Presto.run_hemlock ldl ~workers:3 ~work_iters:10 ~app_id:"t3");
  let fs = Kernel.fs k in
  check_bool "temp dir removed" false (Fs.exists fs "/shared/tmp/t3");
  check_bool "template kept" true (Fs.exists fs "/shared/presto/shared_data.o")

let presto_two_apps_isolated () =
  (* Two application instances use distinct temp dirs and so distinct
     shared-data segments: the LD_LIBRARY_PATH customisation story. *)
  let _, ldl = boot () in
  let a = Presto.run_hemlock ldl ~workers:2 ~work_iters:5 ~app_id:"appA" in
  let b = Presto.run_hemlock ldl ~workers:4 ~work_iters:5 ~app_id:"appB" in
  check_int "A ran 2" 2 (List.length a);
  check_int "B ran 4" 4 (List.length b);
  Alcotest.(check (list int)) "B correct despite A"
    (List.sort compare (Presto.expected_results ~workers:4 ~work_iters:5))
    (List.sort compare b)

let presto_postprocess_function () =
  let asm = "        la   $t0, shared_x\n        la   $t1, other\n" in
  let out, n = Presto.postprocess ~shared:[ ("shared_x", 0x30000000) ] asm in
  check_int "one rewrite" 1 n;
  check_bool "address substituted" true (contains out "805306368");
  check_bool "other untouched" true (contains out "la   $t1, other")

(* ----- symtab / Lynx tables ----- *)

let symtab_checksums_agree () =
  let _, ldl = boot () in
  let reference = Symtab.checksum (Symtab.gen_tables ~seed:7 ~entries:64) in
  let a = Symtab.run_generated_source ldl ~entries:64 ~app_id:"s1" in
  let b = Symtab.run_linearized ldl ~entries:64 ~app_id:"s1" in
  let c = Symtab.run_hemlock ldl ~entries:64 ~app_id:"s1" ~first_run:true in
  check_int "generated source" reference a.Symtab.oc_checksum;
  check_int "linearized" reference b.Symtab.oc_checksum;
  check_int "hemlock" reference c.Symtab.oc_checksum

let symtab_generated_lines_scale () =
  let _, ldl = boot () in
  let a = Symtab.run_generated_source ldl ~entries:50 ~app_id:"s2" in
  check_bool "one line per entry plus boilerplate" true (a.Symtab.oc_generated_lines > 100);
  let b = Symtab.run_hemlock ldl ~entries:50 ~app_id:"s2" ~first_run:true in
  check_int "hemlock generates no source" 0 b.Symtab.oc_generated_lines

let symtab_persistent_rerun () =
  let _, ldl = boot () in
  let first = Symtab.run_hemlock ldl ~entries:32 ~app_id:"s3" ~first_run:true in
  (* Rebuild: the tables persist; no utility pass, same answer. *)
  let again = Symtab.run_hemlock ldl ~entries:32 ~app_id:"s3" ~first_run:false in
  check_int "same checksum without re-init" first.Symtab.oc_checksum again.Symtab.oc_checksum

let symtab_rerun_cheaper () =
  let _, ldl = boot () in
  ignore (Symtab.run_hemlock ldl ~entries:128 ~app_id:"s4" ~first_run:true);
  let _, d_first =
    Stats.measure (fun () -> ignore (Symtab.run_generated_source ldl ~entries:128 ~app_id:"s4"))
  in
  let _, d_rerun =
    Stats.measure (fun () ->
        ignore (Symtab.run_hemlock ldl ~entries:128 ~app_id:"s4" ~first_run:false))
  in
  check_bool "rebuild with persistent tables is cheaper" true
    (Stats.cycles d_rerun < Stats.cycles d_first)

(* ----- xfig ----- *)

let xfig_sessions_agree () =
  let k, ldl = boot () in
  let file_count =
    run_native k (fun k proc ->
        Hemlock_linker.Ldl.attach ldl proc;
        Xfig.file_session k proc ~path:"/tmp/fig.fig" ~n_new:10 ~dup:true)
  in
  let shm_count =
    run_native k (fun k proc ->
        Hemlock_linker.Ldl.attach ldl proc;
        Xfig.shm_session k proc ~path:"/shared/fig" ~n_new:10 ~dup:true)
  in
  check_int "same object counts" file_count shm_count;
  check_int "10 new, doubled" 20 file_count

let xfig_persistence () =
  let k, ldl = boot () in
  let count =
    run_native k (fun k proc ->
        Hemlock_linker.Ldl.attach ldl proc;
        ignore (Xfig.shm_session k proc ~path:"/shared/fig2" ~n_new:5 ~dup:false);
        (* a second session sees the same figure, no load step *)
        let fig = Xfig.Shared_fig.attach k proc ~path:"/shared/fig2" in
        Xfig.Shared_fig.count k proc ~fig)
  in
  check_int "persisted" 5 count

let xfig_objects_roundtrip () =
  let k, ldl = boot () in
  run_native k (fun k proc ->
      Hemlock_linker.Ldl.attach ldl proc;
      let rng = Prng.create ~seed:3 in
      let objs = Xfig.gen_figure rng ~n:7 in
      let fig = Xfig.Shared_fig.create k proc ~path:"/shared/fig3" in
      List.iter (fun o -> Xfig.Shared_fig.add k proc ~fig o) (List.rev objs);
      check_bool "objects read back in order" true (Xfig.Shared_fig.objects k proc ~fig = objs);
      (* file format agrees *)
      Xfig.File_format.save k proc ~path:"/tmp/f3.fig" objs;
      check_bool "file roundtrip" true (Xfig.File_format.load k proc ~path:"/tmp/f3.fig" = objs))

let xfig_duplicate_offsets () =
  let k, ldl = boot () in
  run_native k (fun k proc ->
      Hemlock_linker.Ldl.attach ldl proc;
      let fig = Xfig.Shared_fig.create k proc ~path:"/shared/fig4" in
      Xfig.Shared_fig.add k proc ~fig { Xfig.o_kind = 1; o_x = 5; o_y = 6; o_w = 7; o_h = 8 };
      Xfig.Shared_fig.duplicate k proc ~fig ~dx:10 ~dy:20;
      match Xfig.Shared_fig.objects k proc ~fig with
      | [ copy; orig ] ->
        check_int "copy offset x" 15 copy.Xfig.o_x;
        check_int "copy offset y" 26 copy.Xfig.o_y;
        check_int "original untouched" 5 orig.Xfig.o_x
      | l -> Alcotest.failf "expected 2 objects, got %d" (List.length l))

let xfig_shm_avoids_copies () =
  let k, ldl = boot () in
  let d_file =
    run_native k (fun k proc ->
        Hemlock_linker.Ldl.attach ldl proc;
        snd (Stats.measure (fun () ->
            ignore (Xfig.file_session k proc ~path:"/tmp/fig5.fig" ~n_new:50 ~dup:true))))
  in
  let d_shm =
    run_native k (fun k proc ->
        Hemlock_linker.Ldl.attach ldl proc;
        snd (Stats.measure (fun () ->
            ignore (Xfig.shm_session k proc ~path:"/shared/fig5" ~n_new:50 ~dup:true))))
  in
  check_bool "no file traffic for the shared figure" true
    (d_shm.Stats.bytes_copied < d_file.Stats.bytes_copied)

(* ----- modgen (E8 chain) ----- *)

let modgen_expected_model () =
  check_int "single module" 100 (Modgen.expected ~modules:1 ~used:0);
  check_int "one hop" (101 + 100 + 101) (Modgen.expected ~modules:3 ~used:1);
  check_bool "used must fit" true
    (try ignore (Modgen.expected ~modules:2 ~used:5); false with Invalid_argument _ -> true)

let modgen_plt_agrees () =
  let k, ldl = boot () in
  let plt = Hemlock_baseline.Plt.install k in
  Fs.mkdir (Kernel.fs k) "/home/chain";
  let templates = Modgen.install ldl ~dir:"/home/chain" ~modules:5 in
  let result, bound, stubs = Modgen.run_plt plt ~templates ~used:3 in
  check_int "plt result" (Modgen.expected ~modules:5 ~used:3) result;
  (* f0..f3 called (f3 stops); main called via stub too *)
  check_bool "bound at most created" true (bound <= stubs);
  check_bool "unused functions never bound" true (bound < stubs)

let suite =
  [
    test "rwho: packet roundtrip" rwho_packet_roundtrip;
    test "rwho: file and shared reports identical" rwho_reports_agree;
    test "rwho: shared version cheaper (the ~1s claim)" rwho_shm_cheaper;
    test "rwho: updates happen in place" rwho_updates_in_place;
    test "rwho: true multi-machine cluster" rwho_cluster_agrees;
    test "presto: hemlock protocol computes correctly" presto_hemlock_matches;
    test "presto: post-processor baseline agrees" presto_postprocessed_matches;
    test "presto: parent cleans up" presto_cleanup;
    test "presto: app instances isolated by temp dirs" presto_two_apps_isolated;
    test "presto: postprocess rewrites only shared refs" presto_postprocess_function;
    test "symtab: three styles same checksum" symtab_checksums_agree;
    test "symtab: generated-source line counts" symtab_generated_lines_scale;
    test "symtab: tables persist across reruns" symtab_persistent_rerun;
    test "symtab: persistent rerun cheaper than regeneration" symtab_rerun_cheaper;
    test "xfig: file and shared sessions agree" xfig_sessions_agree;
    test "xfig: figures persist with no save step" xfig_persistence;
    test "xfig: object roundtrip both formats" xfig_objects_roundtrip;
    test "xfig: duplicate offsets objects" xfig_duplicate_offsets;
    test "xfig: shared figure avoids file traffic" xfig_shm_avoids_copies;
    test "modgen: expected-value model" modgen_expected_model;
    test "modgen: PLT strategy computes the same result" modgen_plt_agrees;
  ]

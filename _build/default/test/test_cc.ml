open Harness
module Lexer = Hemlock_cc.Lexer
module Parser = Hemlock_cc.Parser
module Ast = Hemlock_cc.Ast
module Cc = Hemlock_cc.Cc
module Objfile = Hemlock_obj.Objfile

(* ----- lexer ----- *)

let lex_tokens () =
  let toks = List.map fst (Lexer.tokenize "int x = 42; // comment\nif (x <= 3) { }") in
  check_bool "shape" true
    (toks
    = [
        Lexer.INT_KW; Lexer.IDENT "x"; Lexer.ASSIGN; Lexer.NUM 42; Lexer.SEMI; Lexer.IF;
        Lexer.LPAREN; Lexer.IDENT "x"; Lexer.LE; Lexer.NUM 3; Lexer.RPAREN; Lexer.LBRACE;
        Lexer.RBRACE; Lexer.EOF;
      ])

let lex_literals () =
  let toks = List.map fst (Lexer.tokenize {|"a\nb" 'x' '\n' 0x10|}) in
  check_bool "string and chars" true
    (toks = [ Lexer.STRING "a\nb"; Lexer.NUM 120; Lexer.NUM 10; Lexer.NUM 16; Lexer.EOF ])

let lex_comments () =
  let toks = List.map fst (Lexer.tokenize "/* multi\nline */ int // eol\n x") in
  check_bool "comments skipped" true
    (toks = [ Lexer.INT_KW; Lexer.IDENT "x"; Lexer.EOF ])

let lex_errors () =
  (match Lexer.tokenize "int @ x;" with
  | _ -> Alcotest.fail "expected lexer error"
  | exception Lexer.Error { line = 1; _ } -> ());
  match Lexer.tokenize "\n\n\"unterminated" with
  | _ -> Alcotest.fail "expected lexer error"
  | exception Lexer.Error { line = 3; _ } -> ()

(* ----- parser ----- *)

let parse_precedence () =
  match Parser.parse "int f() { return 1 + 2 * 3 < 7 && 1; }" with
  | [ Ast.Func { f_body = [ Ast.Return (Some e) ]; _ } ] ->
    let expected =
      Ast.Binary
        ( Ast.And,
          Ast.Binary
            ( Ast.Lt,
              Ast.Binary (Ast.Add, Ast.Num 1, Ast.Binary (Ast.Mul, Ast.Num 2, Ast.Num 3)),
              Ast.Num 7 ),
          Ast.Num 1 )
    in
    check_bool "precedence" true (e = expected)
  | _ -> Alcotest.fail "parse shape"

let parse_declarations () =
  match
    Parser.parse
      "extern int shared; int g = 5; int arr[10]; char *msg;\n\
       static int hidden() { return 0; }\n\
       int use(int a, char *b) { return a; }"
  with
  | [ Ast.Global ext; Ast.Global g; Ast.Global arr; Ast.Global msg; Ast.Func hidden; Ast.Func use ]
    ->
    check_bool "extern" true ext.Ast.g_extern;
    check_bool "init" true (g.Ast.g_init = Some 5);
    check_bool "array" true (arr.Ast.g_array = Some 10);
    check_bool "ptr type" true (msg.Ast.g_ty = Ast.Ptr Ast.Char);
    check_bool "static fn" true hidden.Ast.f_static;
    check_int "params" 2 (List.length use.Ast.f_params)
  | _ -> Alcotest.fail "decl shapes"

let parse_statements () =
  match
    Parser.parse
      "int f(int n) { int i; i = 0; while (i < n) { if (i == 2) { i = i + 2; } else i = i + 1; } return i; }"
  with
  | [ Ast.Func { f_body = [ Ast.Local _; Ast.Expr (Ast.Assign _); Ast.While (_, _); Ast.Return _ ]; _ } ]
    -> ()
  | _ -> Alcotest.fail "statement shapes"

let parse_errors () =
  let expect src =
    match Parser.parse src with
    | _ -> Alcotest.fail ("expected parse error: " ^ src)
    | exception Parser.Error _ -> ()
  in
  expect "int f( { }";
  expect "int f() { return 1 }";
  expect "int f() { 1 +; }";
  expect "int [3];";
  expect "int g = x;" (* non-constant global initialiser *)

(* ----- codegen, end to end through the whole stack ----- *)

let run src = run_c_program (boot ()) src

let cg_arith () =
  check_string "arith" "13"
    (run "int main() { print_int(1 + 3 * 4); return 0; }")

let cg_division_negative () =
  check_string "neg div" "-3,-1"
    (run {|int main() { print_int(0 - 7 / 2); print_str(","); print_int(0 - 7 % 2); return 0; }|})

let cg_logic_short_circuit () =
  check_string "short circuit" "1:0:5"
    (run
       {|
int side;
int bump() { side = 5; return 1; }
int main() {
  side = 0;
  print_int(0 || bump());
  print_str(":");
  print_int(0 && bump() - 1);
  print_str(":");
  print_int(side);
  return 0;
}|})

let cg_while_if () =
  check_string "fizz-ish" "0 1 2 fizz 4 "
    (run
       {|
int main() {
  int i;
  i = 0;
  while (i < 5) {
    if (i == 3) { print_str("fizz"); } else { print_int(i); }
    print_str(" ");
    i = i + 1;
  }
  return 0;
}|})

let cg_arrays_pointers () =
  check_string "array sum" "39"
    (run
       {|
int arr[5];
int main() {
  int i;
  int *p;
  i = 0;
  while (i < 5) { arr[i] = i * 3; i = i + 1; }
  p = &arr[1];
  print_int(arr[0] + arr[1] + arr[2] + arr[3] + arr[4] + *p + p[1]);
  return 0;
}|})

let cg_char_strings () =
  check_string "chars" "104i"
    (run
       {|
char buf[8];
int main() {
  char *s;
  s = "hi";
  buf[0] = s[0];
  print_int(buf[0]);
  buf[1] = s[1];
  print_str(&buf[1]);
  return 0;
}|})

let cg_recursion () =
  check_string "factorial" "120"
    (run {|
int fact(int n) { if (n < 2) { return 1; } return n * fact(n - 1); }
int main() { print_int(fact(5)); return 0; }|})

let cg_many_args () =
  check_string "6 args" "123456"
    (run
       {|
int six(int a, int b, int c, int d, int e, int f) {
  return a*100000 + b*10000 + c*1000 + d*100 + e*10 + f;
}
int main() { print_int(six(1, 2, 3, 4, 5, 6)); return 0; }|})

let cg_globals_init () =
  check_string "global init" "49"
    (run {|
int g = 42;
int h;
int main() { h = 7; print_int(g + h); return 0; }|})

let cg_exit_code () =
  let k, _ = boot () in
  Fs.mkdir (Kernel.fs k) "/home/t";
  install_c k "/home/t/main.o" "int main() { return 42; }";
  ignore (link k ~dir:"/home/t" ~specs:[ ("main.o", Sharing.Static_private) ] "prog");
  let proc, _ = run_program k "/home/t/prog" in
  check_int "exit code" 42 (exit_code proc)

let cg_gp_mode () =
  let obj = Cc.to_object ~use_gp:true ~name:"t.o" "int g; int main() { g = 1; return g; }" in
  check_bool "gp flag set" true obj.Objfile.uses_gp;
  check_bool "has gprel relocs" true
    (List.exists (fun r -> r.Objfile.rel_kind = Objfile.Gprel16) obj.Objfile.relocs);
  let obj2 = Cc.to_object ~name:"t.o" "int g; int main() { g = 1; return g; }" in
  check_bool "default no gp" false obj2.Objfile.uses_gp

let cg_for_loops () =
  check_string "for loop" "0123401234"
    (run
       {|
int main() {
  int i;
  for (i = 0; i < 5; i = i + 1) { print_int(i); }
  i = 0;
  for (; i < 5;) { print_int(i); i = i + 1; }
  return 0;
}|})

let cg_break_continue () =
  check_string "break/continue" "0134:246"
    (run
       {|
int main() {
  int i;
  for (i = 0; i < 10; i = i + 1) {
    if (i == 2) { continue; }
    if (i == 5) { break; }
    print_int(i);
  }
  print_str(":");
  i = 0;
  while (1) {
    i = i + 1;
    if (i % 2 == 1) { continue; }
    print_int(i);
    if (i >= 6) { break; }
  }
  return 0;
}|})

let cg_nested_loop_targets () =
  check_string "break binds to the innermost loop" "00|1011|202122|"
    (run
       {|
int main() {
  int i; int j;
  for (i = 0; i < 3; i = i + 1) {
    for (j = 0; j < 10; j = j + 1) {
      if (j > i) { break; }
      print_int(i); print_int(j);
    }
    print_str("|");
  }
  return 0;
}|})

let cg_loop_statement_errors () =
  (match Cc.to_object ~name:"t.o" "int main() { break; return 0; }" with
  | _ -> Alcotest.fail "expected error"
  | exception Cc.Error msg -> check_bool "break" true (contains msg "break outside a loop"));
  match Cc.to_object ~name:"t.o" "int main() { continue; return 0; }" with
  | _ -> Alcotest.fail "expected error"
  | exception Cc.Error msg ->
    check_bool "continue" true (contains msg "continue outside a loop")

let cg_error_messages () =
  (match Cc.to_object ~name:"t.o" "int main() { return undefined_var; }" with
  | _ -> Alcotest.fail "expected error"
  | exception Cc.Error msg ->
    check_bool "mentions variable" true
      (contains msg "undeclared variable undefined_var"));
  match Cc.to_object ~name:"t.o" "int main() { 3 = 4; return 0; }" with
  | _ -> Alcotest.fail "expected lvalue error"
  | exception Cc.Error msg -> check_bool "lvalue" true (contains msg "not an lvalue")

let suite =
  [
    test "lexer: token stream" lex_tokens;
    test "lexer: literals" lex_literals;
    test "lexer: comments" lex_comments;
    test "lexer: errors with line numbers" lex_errors;
    test "parser: operator precedence" parse_precedence;
    test "parser: declaration forms" parse_declarations;
    test "parser: statement forms" parse_statements;
    test "parser: error cases" parse_errors;
    test "codegen: arithmetic" cg_arith;
    test "codegen: signed division" cg_division_negative;
    test "codegen: short-circuit logic" cg_logic_short_circuit;
    test "codegen: while/if" cg_while_if;
    test "codegen: arrays and pointers" cg_arrays_pointers;
    test "codegen: chars and strings" cg_char_strings;
    test "codegen: recursion" cg_recursion;
    test "codegen: many arguments" cg_many_args;
    test "codegen: global initialisers" cg_globals_init;
    test "codegen: exit codes" cg_exit_code;
    test "codegen: gp mode emits GPREL16" cg_gp_mode;
    test "codegen: for loops" cg_for_loops;
    test "codegen: break and continue" cg_break_continue;
    test "codegen: nested loop targets" cg_nested_loop_targets;
    test "codegen: break/continue outside loops rejected" cg_loop_statement_errors;
    test "codegen: error messages" cg_error_messages;
  ]

open Harness
module Serializer = Hemlock_baseline.Serializer
module Channels = Hemlock_baseline.Channels
module Plt = Hemlock_baseline.Plt
module Stats = Hemlock_util.Stats
module Objfile = Hemlock_obj.Objfile

(* ----- serializer ----- *)

let ser_ascii_roundtrip () =
  let v =
    Serializer.List
      [
        Serializer.Int 42;
        Serializer.Str "he \"quoted\"\\ and\nnewline";
        Serializer.List [ Serializer.Int (-7); Serializer.List [] ];
      ]
  in
  check_bool "roundtrip" true (Serializer.equal v (Serializer.of_ascii (Serializer.to_ascii v)))

let ser_ascii_format () =
  check_string "shape" "(1 \"x\" (2 3))"
    (Serializer.to_ascii
       (Serializer.List
          [
            Serializer.Int 1;
            Serializer.Str "x";
            Serializer.List [ Serializer.Int 2; Serializer.Int 3 ];
          ]))

let ser_parse_errors () =
  let expect s =
    match Serializer.of_ascii s with
    | _ -> Alcotest.fail ("expected parse error: " ^ s)
    | exception Serializer.Parse_error _ -> ()
  in
  expect "(1 2";
  expect "\"unterminated";
  expect "1 trailing";
  expect "";
  expect ")"

let ser_binary_roundtrip () =
  let v = Serializer.List [ Serializer.Int (-1); Serializer.Str ""; Serializer.List [ Serializer.Int 0 ] ] in
  check_bool "binary roundtrip" true
    (Serializer.equal v (Serializer.of_binary (Serializer.to_binary v)))

let gen_value =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then
          oneof
            [ map (fun i -> Serializer.Int i) (int_range (-1000000) 1000000);
              map (fun s -> Serializer.Str s) (string_size ~gen:printable (int_bound 12)) ]
        else
          frequency
            [
              (2, map (fun i -> Serializer.Int i) (int_range (-1000) 1000));
              (2, map (fun s -> Serializer.Str s) (string_size ~gen:printable (int_bound 12)));
              (1, map (fun l -> Serializer.List l) (list_size (int_bound 4) (self (n / 2))));
            ]))

let prop_ser_ascii =
  prop "serializer: ascii roundtrip" ~count:150 gen_value (fun v ->
      Serializer.equal v (Serializer.of_ascii (Serializer.to_ascii v)))

let prop_ser_binary =
  prop "serializer: binary roundtrip" ~count:150 gen_value (fun v ->
      Serializer.equal v (Serializer.of_binary (Serializer.to_binary v)))

(* ----- channels (E10 mechanics) ----- *)

let channels_all_complete () =
  List.iter
    (fun kind ->
      let d = Channels.run_exchange ~kind ~payload:256 ~rounds:3 in
      check_bool
        (Channels.kind_to_string kind ^ " did work")
        true (Hemlock_util.Stats.cycles d > 0))
    Channels.all_kinds

let channels_copy_ordering () =
  let shm = Channels.run_exchange ~kind:Channels.Shared_memory ~payload:4096 ~rounds:4 in
  let msg = Channels.run_exchange ~kind:Channels.Message_passing ~payload:4096 ~rounds:4 in
  let file = Channels.run_exchange ~kind:Channels.File_based ~payload:4096 ~rounds:4 in
  (* The headline claim: shared memory avoids copying; messages copy
     twice; files copy twice plus open overheads. *)
  check_int "shm copies nothing" 0 shm.Stats.bytes_copied;
  check_bool "messages copy the payload" true (msg.Stats.bytes_copied >= 2 * 4 * 4096);
  check_bool "files copy the payload" true (file.Stats.bytes_copied >= 2 * 4 * 4096);
  check_bool "files open files" true (file.Stats.files_opened > 0);
  check_bool "shm cheapest in cycles" true
    (Stats.cycles shm < Stats.cycles msg && Stats.cycles shm < Stats.cycles file);
  let pd = Channels.run_exchange ~kind:Channels.Domain_call ~payload:4096 ~rounds:4 in
  check_int "pd-call copies nothing" 0 pd.Stats.bytes_copied;
  check_int "pd-call sends no messages" 0 pd.Stats.messages_sent;
  check_bool "pd-call cheaper than messages" true (Stats.cycles pd < Stats.cycles msg)

(* ----- PLT loader ----- *)

let plt_setup () =
  let k, _ = boot () in
  let plt = Plt.install k in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/home/libs";
  (k, plt)

let plt_load_and_call () =
  let k, plt = plt_setup () in
  install_c k "/home/libs/a.o" "extern int g(); int f() { return g() + 1; }";
  install_c k "/home/libs/b.o" "int gd = 40; int g() { return gd; }";
  install_s k "/home/libs/boot.o"
    ("        .text\n        .globl _pltstart\n_pltstart:\n        jal f\n        move $a0, $v0\n"
    ^ "        li $v0, 7\n        syscall\n        li $a0, 0\n        li $v0, 1\n        syscall\n")
  ;
  let proc = Kernel.spawn_blank k () in
  Plt.load plt proc ~located:[ "/home/libs/boot.o"; "/home/libs/a.o"; "/home/libs/b.o" ];
  check_int "no stubs bound yet" 0 (Plt.bound plt proc);
  check_bool "stubs created for f and g" true (Plt.stubs plt proc >= 2);
  Kernel.console_clear k;
  Kernel.set_isa_entry k proc ~entry:(Option.get (Plt.dlsym plt proc "_pltstart"));
  Kernel.run k;
  check_string "call chain worked" "41" (Kernel.console k);
  check_int "two stubs bound on first calls" 2 (Plt.bound plt proc)

let plt_bind_once () =
  let k, plt = plt_setup () in
  install_c k "/home/libs/lib.o" "int v = 5; int get() { return v; }";
  install_c k "/home/libs/drv.o"
    {|
extern int get();
int main() {
  int i;
  int acc;
  acc = 0;
  i = 0;
  while (i < 10) { acc = acc + get(); i = i + 1; }
  return acc;
}|};
  install_s k "/home/libs/boot.o"
    ("        .text\n        .globl _pltstart\n_pltstart:\n        jal main\n        move $a0, $v0\n"
    ^ "        li $v0, 1\n        syscall\n");
  let proc = Kernel.spawn_blank k () in
  Plt.load plt proc ~located:[ "/home/libs/boot.o"; "/home/libs/drv.o"; "/home/libs/lib.o" ];
  Kernel.set_isa_entry k proc ~entry:(Option.get (Plt.dlsym plt proc "_pltstart"));
  Kernel.run k;
  check_int "50 returned" 50 (exit_code proc);
  (* ten calls, one binding *)
  check_int "bound exactly once per function" 2 (Plt.bound plt proc)

let plt_missing_library () =
  let k, plt = plt_setup () in
  let proc = Kernel.spawn_blank k () in
  match Plt.load plt proc ~located:[ "/home/libs/ghost.o" ] with
  | _ -> Alcotest.fail "expected load failure"
  | exception Plt.Link_error msg -> check_bool "explains" true (contains msg "missing at load time")

let plt_data_must_resolve () =
  let k, plt = plt_setup () in
  install_c k "/home/libs/needy.o" "extern int missing_datum; int f() { return missing_datum; }";
  let proc = Kernel.spawn_blank k () in
  match Plt.load plt proc ~located:[ "/home/libs/needy.o" ] with
  | _ -> Alcotest.fail "expected data resolution failure"
  | exception Plt.Link_error msg ->
    check_bool "names the symbol" true (contains msg "missing_datum")

let plt_rejects_gp () =
  let k, plt = plt_setup () in
  write_obj k "/home/libs/gp.o" (Cc.to_object ~use_gp:true ~name:"gp.o" "int g; int f() { return g; }");
  let proc = Kernel.spawn_blank k () in
  match Plt.load plt proc ~located:[ "/home/libs/gp.o" ] with
  | _ -> Alcotest.fail "expected gp rejection"
  | exception Plt.Link_error msg -> check_bool "gp" true (contains msg "$gp")

let suite =
  [
    test "serializer: ascii roundtrip" ser_ascii_roundtrip;
    test "serializer: ascii shape" ser_ascii_format;
    test "serializer: parse errors" ser_parse_errors;
    test "serializer: binary roundtrip" ser_binary_roundtrip;
    prop_ser_ascii;
    prop_ser_binary;
    test "channels: all styles complete" channels_all_complete;
    test "channels: copy/cycle ordering (claims 3-4)" channels_copy_ordering;
    test "plt: load, stub, bind, call" plt_load_and_call;
    test "plt: binds each function once" plt_bind_once;
    test "plt: libraries must exist at load time" plt_missing_library;
    test "plt: data references resolved eagerly" plt_data_must_resolve;
    test "plt: rejects gp modules" plt_rejects_gp;
  ]

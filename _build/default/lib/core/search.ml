module Fs = Hemlock_sfs.Fs
module Path = Hemlock_sfs.Path

type ctx = {
  fs : Fs.t;
  cwd : Path.t;
  env : (string * string) list;
}

let default_dirs = [ "/usr/lib"; "/shared/lib" ]

let ld_library_path env =
  match List.assoc_opt "LD_LIBRARY_PATH" env with
  | None | Some "" -> []
  | Some v -> List.filter (fun d -> d <> "") (String.split_on_char ':' v)

let static_dirs ctx ~cli_dirs =
  (Path.to_string ctx.cwd :: cli_dirs) @ ld_library_path ctx.env @ default_dirs

let runtime_dirs ctx ~recorded = ld_library_path ctx.env @ recorded

let has_slash name = String.contains name '/'

let locate ctx ~dirs name =
  let exists_file p =
    Fs.exists ctx.fs ~cwd:ctx.cwd p
    &&
    match (Fs.stat ctx.fs ~cwd:ctx.cwd p).Fs.st_kind with
    | Fs.Regular -> true
    | Fs.Directory | Fs.Symlink -> false
  in
  if has_slash name then
    if exists_file name then Some (Path.to_string (Path.of_string ~cwd:ctx.cwd name))
    else None
  else
    let try_dir dir =
      let candidate = if dir = "/" then "/" ^ name else dir ^ "/" ^ name in
      if exists_file candidate then
        (* Return the lexical location (symlinks not chased): public
           modules are created next to the template *as found*. *)
        Some (Path.to_string (Path.of_string ~cwd:ctx.cwd candidate))
      else None
    in
    List.find_map try_dir dirs

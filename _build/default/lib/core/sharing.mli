(** The four sharing classes of Table 1.

    {v
    Sharing class     When linked       New instance    Default portion
                                        per process?    of address space
    --------------    ---------------   ------------    ----------------
    Static private    static link time  yes             private
    Dynamic private   run time          yes             private
    Static public     static link time  no              public
    Dynamic public    run time          no              public
    v} *)

type t = Static_private | Dynamic_private | Static_public | Dynamic_public

type link_time = Static_link_time | Run_time

type portion = Private | Public

val link_time : t -> link_time

(** Whether each process gets (and destroys) its own instance. *)
val instance_per_process : t -> bool

val portion : t -> portion
val is_public : t -> bool
val is_dynamic : t -> bool
val to_string : t -> string

(** Parse "static-private", "dp", "sp", ... as accepted by the lds
    command line. *)
val of_string : string -> t option

val pp : Format.formatter -> t -> unit

(** The rows of Table 1, for the E1 harness. *)
val all : t list

lib/core/search.mli: Hemlock_sfs

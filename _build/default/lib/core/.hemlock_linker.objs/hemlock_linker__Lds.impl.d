lib/core/lds.ml: Aout Bytes Filename Hashtbl Hemlock_isa Hemlock_obj Hemlock_os Hemlock_sfs Hemlock_util List Modinst Option Printf Reloc_engine Search Sharing String

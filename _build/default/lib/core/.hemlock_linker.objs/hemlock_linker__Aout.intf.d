lib/core/aout.mli: Bytes Format Hemlock_obj Sharing

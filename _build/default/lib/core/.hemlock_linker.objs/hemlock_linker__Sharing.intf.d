lib/core/sharing.mli: Format

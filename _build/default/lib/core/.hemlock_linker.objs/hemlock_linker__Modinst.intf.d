lib/core/modinst.mli: Hemlock_obj Hemlock_vm Reloc_engine Search

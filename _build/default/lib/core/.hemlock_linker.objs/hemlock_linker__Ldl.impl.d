lib/core/ldl.ml: Aout Array Bytes Filename Fun Hashtbl Hemlock_obj Hemlock_os Hemlock_sfs Hemlock_util Hemlock_vm List Modinst Option Printf Reloc_engine Search Sharing String

lib/core/lds.mli: Search Sharing

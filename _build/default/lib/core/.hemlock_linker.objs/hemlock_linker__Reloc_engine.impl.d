lib/core/reloc_engine.ml: Hemlock_isa Hemlock_obj Hemlock_util List Printf

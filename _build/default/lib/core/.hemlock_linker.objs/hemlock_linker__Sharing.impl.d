lib/core/sharing.ml: Format String

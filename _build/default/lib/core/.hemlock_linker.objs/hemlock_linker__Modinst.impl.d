lib/core/modinst.ml: Array Char Hemlock_obj Hemlock_sfs Hemlock_vm List Option Printf Reloc_engine Search String

lib/core/ldl.mli: Hemlock_obj Hemlock_os Modinst

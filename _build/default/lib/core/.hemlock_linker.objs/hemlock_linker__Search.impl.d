lib/core/search.ml: Hemlock_sfs List String

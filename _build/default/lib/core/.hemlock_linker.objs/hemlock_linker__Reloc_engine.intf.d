lib/core/reloc_engine.mli: Hemlock_obj

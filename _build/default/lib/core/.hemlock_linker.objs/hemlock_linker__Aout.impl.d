lib/core/aout.ml: Bytes Char Format Hemlock_obj Hemlock_util List Option Printf Sharing String

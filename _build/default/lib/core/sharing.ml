type t = Static_private | Dynamic_private | Static_public | Dynamic_public

type link_time = Static_link_time | Run_time

type portion = Private | Public

let link_time = function
  | Static_private | Static_public -> Static_link_time
  | Dynamic_private | Dynamic_public -> Run_time

let instance_per_process = function
  | Static_private | Dynamic_private -> true
  | Static_public | Dynamic_public -> false

let portion = function
  | Static_private | Dynamic_private -> Private
  | Static_public | Dynamic_public -> Public

let is_public t = portion t = Public

let is_dynamic t = link_time t = Run_time

let to_string = function
  | Static_private -> "static-private"
  | Dynamic_private -> "dynamic-private"
  | Static_public -> "static-public"
  | Dynamic_public -> "dynamic-public"

let of_string s =
  match String.lowercase_ascii s with
  | "static-private" | "sp" | "spriv" -> Some Static_private
  | "dynamic-private" | "dp" | "dpriv" -> Some Dynamic_private
  | "static-public" | "spub" -> Some Static_public
  | "dynamic-public" | "dpub" -> Some Dynamic_public
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)

let all = [ Static_private; Dynamic_private; Static_public; Dynamic_public ]

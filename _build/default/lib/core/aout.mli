(** The executable (a.out) format produced by lds.

    Besides the merged private static image, the file carries everything
    the paper says lds must "save in an explicit data structure" because
    the stock IRIX ld would not: retained relocation records for the
    image, the dynamic-module descriptors, the static public module
    addresses, and the static-link-time search directory list for ldl's
    run-time search rule. *)

type dyn_descr = {
  dd_name : string;  (** as given to lds: bare name or path *)
  dd_class : Sharing.t;  (** Dynamic_private or Dynamic_public *)
}

type static_pub = {
  sp_template : string;  (** template path as located by lds *)
  sp_module : string;  (** created module file (template minus ".o") *)
  sp_base : int;  (** its global base address *)
}

type t = {
  entry_off : int;  (** image offset of _start *)
  text : Bytes.t;  (** merged text, veneer pool included *)
  data : Bytes.t;
  bss_size : int;
  veneer_off : int;  (** veneer pool offset within the image *)
  veneer_cap : int;  (** number of 16-byte veneer slots *)
  symbols : (string * int) list;  (** exported name -> image offset *)
  pending : Hemlock_obj.Objfile.reloc list;
      (** retained relocations lds could not resolve statically;
          [rel_offset] is image-relative *)
  dynamics : dyn_descr list;
  static_pubs : static_pub list;
  static_dirs : string list;  (** where lds searched, for ldl *)
  gp_base_off : int option;  (** image offset $gp points at, if any *)
}

(** Base virtual address at which the image is mapped (page 0 is left
    unmapped to catch null dereferences). *)
val image_base : int

(** Region of the private address space in which ldl places dynamic
    private module instances. *)
val private_arena_lo : int

val private_arena_hi : int

(** text + data + bss extent of the image in bytes. *)
val image_size : t -> int

val find_symbol : t -> string -> int option

val serialize : t -> Bytes.t

(** @raise Failure on bad magic/truncation. *)
val parse : Bytes.t -> t

(** Quick magic check, for the binfmt loader. *)
val looks_like : Bytes.t -> bool

(** Human-readable summary (the exedump view). *)
val pp : Format.formatter -> t -> unit

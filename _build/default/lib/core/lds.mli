(** lds — the static linker for sharing (§3).

    Takes object modules each tagged with one of the four sharing
    classes and produces a load image (a.out):

    - {b static private} modules are combined into the image, with crt0
      prepended and cross-references resolved;
    - {b static public} modules are created in the shared file system
      (if they do not yet exist) at their permanent global addresses,
      and references to their symbols are resolved to absolute
      addresses — the job the stock ld refused to do;
    - {b dynamic} modules are merely recorded by name together with the
      search strategy, for ldl; lds warns when their templates cannot
      be found yet and aborts only for missing {e static} modules;
    - relocation records that could not be resolved statically are
      retained in the image's explicit data structure;
    - a veneer pool is reserved, and out-of-range jumps to public
      modules are routed through it at static link time. *)

exception Link_error of string

type spec = { sp_name : string; sp_class : Sharing.t }

(** [link ctx ~specs ~output ()] builds [output].

    @param cli_dirs the -L search directories.
    @param duplicate_policy what to do when two static modules export
    the same global: report an error (default, traditional) or take the
    first (the other behaviour §3 describes).
    @return warnings (missing dynamic modules, public modules created
    with unresolved external references, ...).
    @raise Link_error on missing static modules, duplicate symbols
    (under [`Error]), gp-using public modules, or malformed templates. *)
val link :
  Search.ctx ->
  ?cli_dirs:string list ->
  ?duplicate_policy:[ `Error | `First ] ->
  specs:spec list ->
  output:string ->
  unit ->
  string list

(** [embed_metadata ctx ~template ~modules ~search_path] is the "run a
    .o through lds with an argument that retains relocation information"
    flow: rewrites the template embedding its own module list and search
    path, the inputs to scoped linking. *)
val embed_metadata :
  Search.ctx -> template:string -> modules:string list -> search_path:string list -> unit

(** The crt0 start-up module source lds links into every program. *)
val crt0_source : string

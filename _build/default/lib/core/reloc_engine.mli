(** Applying relocations to placed module images.

    The engine is address-based: a {!sink} reads and writes 32-bit words
    at absolute virtual addresses, whether backed by an in-construction
    [Bytes.t] image (lds) or a live {!Hemlock_vm.Segment.t} (ldl).

    Out-of-range [Jump26] targets are routed through {e veneers}: 16-byte
    code fragments ("jumps to new, nearby code fragments that load the
    appropriate target address into a register and jump indirectly", §3)
    allocated from a per-module pool. *)

exception Link_error of string

type sink = { get32 : int -> int; set32 : int -> int -> unit }

(** A veneer pool: [vp_base] is the absolute address of the first slot;
    the next-free counter is accessed through the closures so it can
    live either in OCaml state (private modules) or in the shared module
    header (public modules). *)
type veneer_pool = {
  vp_base : int;
  vp_cap : int;
  vp_get_next : unit -> int;
  vp_set_next : int -> unit;
}

(** Bytes per veneer slot (lui/ori/jr/nop). *)
val veneer_slot_bytes : int

(** Monotone count of veneers emitted, for the E11 harness. *)
val veneers_created : unit -> int

val reset_veneer_count : unit -> unit

(** [alloc_veneer sink pool ~target] writes a veneer jumping to [target]
    and returns its address.  Reuses an existing slot with the same
    target.  @raise Link_error when the pool is exhausted. *)
val alloc_veneer : sink -> veneer_pool -> target:int -> int

(** [apply sink ~at ~kind ~value ~gp ~veneer] patches the word at
    absolute address [at].  [value] is the resolved symbol address plus
    addend.  [gp] is required for [Gprel16]; [veneer] for out-of-range
    [Jump26].  @raise Link_error on range violations. *)
val apply :
  sink ->
  at:int ->
  kind:Hemlock_obj.Objfile.reloc_kind ->
  value:int ->
  gp:int option ->
  veneer:veneer_pool option ->
  unit

(** A pass over a module's relocation list.

    [link_pass ~obj ~bases ~resolve ~already ~mark sink ~gp ~veneer]
    visits each relocation by index; [bases] gives the absolute base
    address of each section of the placed module; [resolve] maps a
    symbol name to an absolute address ([None] leaves the relocation
    pending); [already]/[mark] track per-relocation completion.  Returns
    the indices that remain unresolved. *)
val link_pass :
  obj:Hemlock_obj.Objfile.t ->
  bases:(Hemlock_obj.Objfile.section -> int) ->
  resolve:(string -> int option) ->
  already:(int -> bool) ->
  mark:(int -> unit) ->
  sink ->
  gp:int option ->
  veneer:veneer_pool option ->
  int list

lib/os/kernel.mli: Bytes Hemlock_isa Hemlock_sfs Hemlock_vm Proc

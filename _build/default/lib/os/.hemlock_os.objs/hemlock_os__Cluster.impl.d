lib/os/cluster.ml: Array Bytes Hemlock_util Kernel List Printf String

lib/os/sysno.ml:

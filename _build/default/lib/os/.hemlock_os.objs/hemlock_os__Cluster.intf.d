lib/os/cluster.mli: Bytes Kernel

lib/os/kernel.ml: Array Buffer Bytes Char Effect Format Hashtbl Hemlock_isa Hemlock_sfs Hemlock_util Hemlock_vm List Option Printexc Printf Proc Queue String Sysno

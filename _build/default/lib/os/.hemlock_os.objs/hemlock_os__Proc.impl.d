lib/os/proc.ml: Effect Hemlock_isa Hemlock_sfs Hemlock_vm List

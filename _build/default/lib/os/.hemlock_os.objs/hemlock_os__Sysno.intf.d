lib/os/sysno.mli:

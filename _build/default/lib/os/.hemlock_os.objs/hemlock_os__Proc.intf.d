lib/os/proc.mli: Effect Hemlock_isa Hemlock_sfs Hemlock_vm

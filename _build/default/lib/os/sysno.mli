(** Syscall numbers for ISA programs (placed in $v0 before [syscall]).
    Numbers 32+ are reserved for registered extensions; the dynamic
    linker's run-time service installs itself there (see
    {!Kernel.register_syscall}). *)

val exit : int  (** a0 = code *)

val fork : int  (** v0 = child pid in parent, 0 in child *)

val wait : int  (** v0 = pid reaped, v1 = exit code; blocks *)

val getpid : int
val yield : int

val sbrk : int  (** a0 = bytes; v0 = old break *)

val print_int : int  (** a0 = value, printed in decimal to the console *)

val print_str : int  (** a0 = address of NUL-terminated string *)

val path_to_addr : int  (** a0 = path cstring; v0 = addr or 0 *)

val addr_to_path : int
(** a0 = addr, a1 = buffer, a2 = buflen; writes path, v0 = length or -1 *)

(** Kernel lock-word syscalls (registered by the Hemlock runtime's
    [Sync.install]; numbers fixed here so the compiler can emit them). *)
val lock_acquire : int

val lock_release : int

(** First number available to {!Kernel.register_syscall}. *)
val first_extension : int

val ldl_run : int  (** crt0 traps here to run the dynamic linker *)

(** A cluster of simulated machines connected by a broadcast network —
    the substrate for running rwhod the way the paper did, on "our local
    network of 65 rwhod-equipped machines", one kernel per machine.

    Each machine gets a message queue named {!inbox}; {!broadcast}
    enqueues a datagram into every {e other} machine's inbox (UDP
    broadcast, loss-free).  The cluster scheduler interleaves the
    machines' kernels until all are quiescent, so a daemon blocked on
    its inbox wakes when a peer's broadcast arrives. *)

type t

(** Name of the per-machine network inbox queue. *)
val inbox : string

(** [create ~machines] boots that many kernels, each with the inbox
    queue created. *)
val create : machines:int -> t

val size : t -> int

(** [machine t i] is machine [i]'s kernel. *)
val machine : t -> int -> Kernel.t

(** [broadcast t ~from payload] delivers [payload] to every machine
    except [from], counting network traffic as message sends. *)
val broadcast : t -> from:int -> Bytes.t -> unit

(** Interleave all machines until every one reports [`Done].
    @raise Kernel.Deadlock when no machine can make progress but some
    non-daemon process is still blocked.
    @param max_rounds safety valve. *)
val run : ?max_rounds:int -> t -> unit

(** Recursive-descent parser for Hem-C. *)

exception Error of { line : int; msg : string }

val parse : string -> Ast.program

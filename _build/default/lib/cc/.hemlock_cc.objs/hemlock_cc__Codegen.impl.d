lib/cc/codegen.ml: Ast Buffer Hashtbl Hemlock_os List Option Printf String

lib/cc/lexer.mli:

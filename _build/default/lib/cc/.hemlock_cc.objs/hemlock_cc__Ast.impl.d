lib/cc/ast.ml:

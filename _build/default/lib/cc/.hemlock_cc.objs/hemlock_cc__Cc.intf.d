lib/cc/cc.mli: Hemlock_obj

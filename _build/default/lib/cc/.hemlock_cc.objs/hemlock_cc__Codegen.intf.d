lib/cc/codegen.mli: Ast

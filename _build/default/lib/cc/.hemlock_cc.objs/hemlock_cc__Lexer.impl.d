lib/cc/lexer.ml: Buffer Char List Printf String

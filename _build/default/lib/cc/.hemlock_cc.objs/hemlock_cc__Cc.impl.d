lib/cc/cc.ml: Codegen Hemlock_isa Lexer Parser Printf

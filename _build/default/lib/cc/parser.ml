open Lexer

exception Error of { line : int; msg : string }

type st = { mutable toks : (token * int) list }

let peek st = match st.toks with (t, _) :: _ -> t | [] -> EOF

let line st = match st.toks with (_, l) :: _ -> l | [] -> 0

let err st msg = raise (Error { line = line st; msg })

let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let expect st tok =
  if peek st = tok then advance st
  else
    err st
      (Printf.sprintf "expected %s, found %s" (token_to_string tok)
         (token_to_string (peek st)))

let expect_ident st =
  match peek st with
  | IDENT name ->
    advance st;
    name
  | t -> err st (Printf.sprintf "expected identifier, found %s" (token_to_string t))

(* type = ("int" | "char") "*"* *)
let parse_base_ty st =
  match peek st with
  | INT_KW ->
    advance st;
    Ast.Int
  | CHAR_KW ->
    advance st;
    Ast.Char
  | t -> err st (Printf.sprintf "expected type, found %s" (token_to_string t))

let parse_stars st base =
  let rec go ty =
    if peek st = STAR then begin
      advance st;
      go (Ast.Ptr ty)
    end
    else ty
  in
  go base

(* ----- expressions (precedence climbing) ----- *)

let rec parse_expr st = parse_assign st

and parse_assign st =
  let lhs = parse_or st in
  if peek st = ASSIGN then begin
    advance st;
    let rhs = parse_assign st in
    Ast.Assign (lhs, rhs)
  end
  else lhs

and parse_or st =
  let rec go lhs =
    if peek st = PIPEPIPE then begin
      advance st;
      go (Ast.Binary (Ast.Or, lhs, parse_and st))
    end
    else lhs
  in
  go (parse_and st)

and parse_and st =
  let rec go lhs =
    if peek st = AMPAMP then begin
      advance st;
      go (Ast.Binary (Ast.And, lhs, parse_cmp st))
    end
    else lhs
  in
  go (parse_cmp st)

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match peek st with
    | EQ -> Some Ast.Eq
    | NE -> Some Ast.Ne
    | LT -> Some Ast.Lt
    | LE -> Some Ast.Le
    | GT -> Some Ast.Gt
    | GE -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | Some op ->
    advance st;
    Ast.Binary (op, lhs, parse_add st)
  | None -> lhs

and parse_add st =
  let rec go lhs =
    match peek st with
    | PLUS ->
      advance st;
      go (Ast.Binary (Ast.Add, lhs, parse_mul st))
    | MINUS ->
      advance st;
      go (Ast.Binary (Ast.Sub, lhs, parse_mul st))
    | _ -> lhs
  in
  go (parse_mul st)

and parse_mul st =
  let rec go lhs =
    match peek st with
    | STAR ->
      advance st;
      go (Ast.Binary (Ast.Mul, lhs, parse_unary st))
    | SLASH ->
      advance st;
      go (Ast.Binary (Ast.Div, lhs, parse_unary st))
    | PERCENT ->
      advance st;
      go (Ast.Binary (Ast.Rem, lhs, parse_unary st))
    | _ -> lhs
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | MINUS ->
    advance st;
    Ast.Unary (Ast.Neg, parse_unary st)
  | BANG ->
    advance st;
    Ast.Unary (Ast.Not, parse_unary st)
  | STAR ->
    advance st;
    Ast.Unary (Ast.Deref, parse_unary st)
  | AMP ->
    advance st;
    Ast.Unary (Ast.Addr, parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let rec go e =
    match peek st with
    | LBRACKET ->
      advance st;
      let idx = parse_expr st in
      expect st RBRACKET;
      go (Ast.Index (e, idx))
    | _ -> e
  in
  go (parse_primary st)

and parse_primary st =
  match peek st with
  | NUM n ->
    advance st;
    Ast.Num n
  | STRING s ->
    advance st;
    Ast.Str s
  | LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st RPAREN;
    e
  | IDENT name -> (
    advance st;
    match peek st with
    | LPAREN ->
      advance st;
      let rec args acc =
        if peek st = RPAREN then List.rev acc
        else
          let a = parse_expr st in
          if peek st = COMMA then begin
            advance st;
            args (a :: acc)
          end
          else List.rev (a :: acc)
      in
      let actuals = args [] in
      expect st RPAREN;
      Ast.Call (name, actuals)
    | _ -> Ast.Var name)
  | t -> err st (Printf.sprintf "unexpected token %s in expression" (token_to_string t))

(* ----- statements ----- *)

let rec parse_stmt st =
  match peek st with
  | LBRACE -> Ast.Block (parse_block st)
  | IF ->
    advance st;
    expect st LPAREN;
    let cond = parse_expr st in
    expect st RPAREN;
    let then_ = parse_stmt_as_block st in
    let else_ =
      if peek st = ELSE then begin
        advance st;
        parse_stmt_as_block st
      end
      else []
    in
    Ast.If (cond, then_, else_)
  | WHILE ->
    advance st;
    expect st LPAREN;
    let cond = parse_expr st in
    expect st RPAREN;
    Ast.While (cond, parse_stmt_as_block st)
  | FOR ->
    advance st;
    expect st LPAREN;
    let opt_expr stop =
      if peek st = stop then None
      else Some (parse_expr st)
    in
    let init = opt_expr SEMI in
    expect st SEMI;
    let cond = opt_expr SEMI in
    expect st SEMI;
    let step = opt_expr RPAREN in
    expect st RPAREN;
    Ast.For (init, cond, step, parse_stmt_as_block st)
  | BREAK ->
    advance st;
    expect st SEMI;
    Ast.Break
  | CONTINUE ->
    advance st;
    expect st SEMI;
    Ast.Continue
  | RETURN ->
    advance st;
    if peek st = SEMI then begin
      advance st;
      Ast.Return None
    end
    else begin
      let e = parse_expr st in
      expect st SEMI;
      Ast.Return (Some e)
    end
  | INT_KW | CHAR_KW ->
    let ty = parse_stars st (parse_base_ty st) in
    let name = expect_ident st in
    let init =
      if peek st = ASSIGN then begin
        advance st;
        Some (parse_expr st)
      end
      else None
    in
    expect st SEMI;
    Ast.Local (ty, name, init)
  | _ ->
    let e = parse_expr st in
    expect st SEMI;
    Ast.Expr e

and parse_stmt_as_block st =
  match parse_stmt st with Ast.Block stmts -> stmts | s -> [ s ]

and parse_block st =
  expect st LBRACE;
  let rec go acc =
    if peek st = RBRACE then begin
      advance st;
      List.rev acc
    end
    else go (parse_stmt st :: acc)
  in
  go []

(* ----- top level ----- *)

let parse_decl st =
  let is_extern = peek st = EXTERN in
  if is_extern then advance st;
  let is_static = peek st = STATIC in
  if is_static then advance st;
  let ty = parse_stars st (parse_base_ty st) in
  let name = expect_ident st in
  match peek st with
  | LPAREN ->
    advance st;
    let rec params acc =
      if peek st = RPAREN then List.rev acc
      else
        let pty = parse_stars st (parse_base_ty st) in
        let pname = expect_ident st in
        if peek st = COMMA then begin
          advance st;
          params ((pty, pname) :: acc)
        end
        else List.rev ((pty, pname) :: acc)
    in
    let formals = params [] in
    expect st RPAREN;
    if is_extern || peek st = SEMI then begin
      expect st SEMI;
      (* Prototype only: externs need no record at all. *)
      None
    end
    else
      Some (Ast.Func { f_name = name; f_params = formals; f_body = parse_block st; f_static = is_static })
  | LBRACKET ->
    advance st;
    let len = match peek st with
      | NUM n ->
        advance st;
        n
      | t -> err st (Printf.sprintf "expected array length, found %s" (token_to_string t))
    in
    expect st RBRACKET;
    expect st SEMI;
    Some (Ast.Global { g_ty = ty; g_name = name; g_array = Some len; g_init = None; g_extern = is_extern })
  | _ ->
    let init =
      if peek st = ASSIGN then begin
        advance st;
        match peek st with
        | NUM n ->
          advance st;
          Some n
        | MINUS ->
          advance st;
          (match peek st with
          | NUM n ->
            advance st;
            Some (-n)
          | t -> err st (Printf.sprintf "bad initialiser %s" (token_to_string t)))
        | t -> err st (Printf.sprintf "global initialisers must be constants, found %s" (token_to_string t))
      end
      else None
    in
    expect st SEMI;
    Some (Ast.Global { g_ty = ty; g_name = name; g_array = None; g_init = init; g_extern = is_extern })

let parse src =
  let st = { toks = Lexer.tokenize src } in
  let rec go acc =
    if peek st = EOF then List.rev acc
    else
      match parse_decl st with
      | Some d -> go (d :: acc)
      | None -> go acc
  in
  match go [] with
  | prog -> prog
  | exception Lexer.Error { line; msg } -> raise (Error { line; msg })

(** Front-end facade: Hem-C source to assembly or to a template object
    file. *)

exception Error of string

(** Compile to assembly text.  @raise Error with a line-tagged message. *)
val to_asm : ?use_gp:bool -> string -> string

(** Compile and assemble to a template.  [name] is the object's
    provenance string (e.g. "rwhod.o"). *)
val to_object : ?use_gp:bool -> name:string -> string -> Hemlock_obj.Objfile.t

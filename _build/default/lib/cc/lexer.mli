(** Tokeniser for Hem-C. *)

type token =
  | INT_KW
  | CHAR_KW
  | EXTERN
  | STATIC
  | IF
  | ELSE
  | WHILE
  | FOR
  | BREAK
  | CONTINUE
  | RETURN
  | IDENT of string
  | NUM of int
  | STRING of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | PERCENT
  | AMP
  | AMPAMP
  | PIPEPIPE
  | BANG
  | ASSIGN
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | EOF

exception Error of { line : int; msg : string }

(** Tokens paired with their source line. *)
val tokenize : string -> (token * int) list

val token_to_string : token -> string

exception Error of string

let to_asm ?use_gp src =
  match Codegen.compile ?use_gp (Parser.parse src) with
  | asm -> asm
  | exception Parser.Error { line; msg } ->
    raise (Error (Printf.sprintf "line %d: %s" line msg))
  | exception Lexer.Error { line; msg } ->
    raise (Error (Printf.sprintf "line %d: %s" line msg))
  | exception Codegen.Error msg -> raise (Error msg)

let to_object ?use_gp ~name src =
  match Hemlock_isa.Asm.assemble ~name (to_asm ?use_gp src) with
  | obj -> obj
  | exception Hemlock_isa.Asm.Error { line; msg } ->
    raise (Error (Printf.sprintf "generated asm line %d: %s" line msg))

type token =
  | INT_KW
  | CHAR_KW
  | EXTERN
  | STATIC
  | IF
  | ELSE
  | WHILE
  | FOR
  | BREAK
  | CONTINUE
  | RETURN
  | IDENT of string
  | NUM of int
  | STRING of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | PERCENT
  | AMP
  | AMPAMP
  | PIPEPIPE
  | BANG
  | ASSIGN
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | EOF

exception Error of { line : int; msg : string }

let keyword = function
  | "int" -> Some INT_KW
  | "char" -> Some CHAR_KW
  | "extern" -> Some EXTERN
  | "static" -> Some STATIC
  | "if" -> Some IF
  | "else" -> Some ELSE
  | "while" -> Some WHILE
  | "for" -> Some FOR
  | "break" -> Some BREAK
  | "continue" -> Some CONTINUE
  | "return" -> Some RETURN
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let tokens = ref [] in
  let emit tok = tokens := (tok, !line) :: !tokens in
  let err msg = raise (Error { line = !line; msg }) in
  let rec go i =
    if i >= n then emit EOF
    else
      match src.[i] with
      | '\n' ->
        incr line;
        go (i + 1)
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        go (skip i)
      | '/' when i + 1 < n && src.[i + 1] = '*' ->
        let rec skip j =
          if j + 1 >= n then err "unterminated comment"
          else if src.[j] = '*' && src.[j + 1] = '/' then j + 2
          else begin
            if src.[j] = '\n' then incr line;
            skip (j + 1)
          end
        in
        go (skip (i + 2))
      | '(' -> emit LPAREN; go (i + 1)
      | ')' -> emit RPAREN; go (i + 1)
      | '{' -> emit LBRACE; go (i + 1)
      | '}' -> emit RBRACE; go (i + 1)
      | '[' -> emit LBRACKET; go (i + 1)
      | ']' -> emit RBRACKET; go (i + 1)
      | ';' -> emit SEMI; go (i + 1)
      | ',' -> emit COMMA; go (i + 1)
      | '*' -> emit STAR; go (i + 1)
      | '+' -> emit PLUS; go (i + 1)
      | '-' -> emit MINUS; go (i + 1)
      | '/' -> emit SLASH; go (i + 1)
      | '%' -> emit PERCENT; go (i + 1)
      | '&' when i + 1 < n && src.[i + 1] = '&' -> emit AMPAMP; go (i + 2)
      | '&' -> emit AMP; go (i + 1)
      | '|' when i + 1 < n && src.[i + 1] = '|' -> emit PIPEPIPE; go (i + 2)
      | '|' -> err "bitwise | not supported"
      | '!' when i + 1 < n && src.[i + 1] = '=' -> emit NE; go (i + 2)
      | '!' -> emit BANG; go (i + 1)
      | '=' when i + 1 < n && src.[i + 1] = '=' -> emit EQ; go (i + 2)
      | '=' -> emit ASSIGN; go (i + 1)
      | '<' when i + 1 < n && src.[i + 1] = '=' -> emit LE; go (i + 2)
      | '<' -> emit LT; go (i + 1)
      | '>' when i + 1 < n && src.[i + 1] = '=' -> emit GE; go (i + 2)
      | '>' -> emit GT; go (i + 1)
      | '"' ->
        let buf = Buffer.create 16 in
        let rec scan j =
          if j >= n then err "unterminated string"
          else
            match src.[j] with
            | '"' -> j + 1
            | '\\' when j + 1 < n ->
              (match src.[j + 1] with
              | 'n' -> Buffer.add_char buf '\n'
              | 't' -> Buffer.add_char buf '\t'
              | '0' -> Buffer.add_char buf '\000'
              | '\\' -> Buffer.add_char buf '\\'
              | '"' -> Buffer.add_char buf '"'
              | c -> err (Printf.sprintf "bad escape \\%c" c));
              scan (j + 2)
            | c ->
              Buffer.add_char buf c;
              scan (j + 1)
        in
        let next = scan (i + 1) in
        emit (STRING (Buffer.contents buf));
        go next
      | '\'' ->
        (* character literal *)
        if i + 2 < n && src.[i + 1] <> '\\' && src.[i + 2] = '\'' then begin
          emit (NUM (Char.code src.[i + 1]));
          go (i + 3)
        end
        else if i + 3 < n && src.[i + 1] = '\\' && src.[i + 3] = '\'' then begin
          let c =
            match src.[i + 2] with
            | 'n' -> 10
            | 't' -> 9
            | '0' -> 0
            | '\\' -> 92
            | '\'' -> 39
            | c -> err (Printf.sprintf "bad escape \\%c" c)
          in
          emit (NUM c);
          go (i + 4)
        end
        else err "bad character literal"
      | c when is_digit c ->
        let rec scan j = if j < n && (is_ident_char src.[j]) then scan (j + 1) else j in
        let stop = scan i in
        let text = String.sub src i (stop - i) in
        (match int_of_string_opt text with
        | Some v -> emit (NUM v)
        | None -> err (Printf.sprintf "bad number %S" text));
        go stop
      | c when is_ident_start c ->
        let rec scan j = if j < n && is_ident_char src.[j] then scan (j + 1) else j in
        let stop = scan i in
        let text = String.sub src i (stop - i) in
        emit (match keyword text with Some t -> t | None -> IDENT text);
        go stop
      | c -> err (Printf.sprintf "unexpected character %C" c)
  in
  go 0;
  List.rev !tokens

let token_to_string = function
  | INT_KW -> "int"
  | CHAR_KW -> "char"
  | EXTERN -> "extern"
  | STATIC -> "static"
  | IF -> "if"
  | ELSE -> "else"
  | WHILE -> "while"
  | FOR -> "for"
  | BREAK -> "break"
  | CONTINUE -> "continue"
  | RETURN -> "return"
  | IDENT s -> s
  | NUM n -> string_of_int n
  | STRING s -> Printf.sprintf "%S" s
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | STAR -> "*"
  | PLUS -> "+"
  | MINUS -> "-"
  | SLASH -> "/"
  | PERCENT -> "%"
  | AMP -> "&"
  | AMPAMP -> "&&"
  | PIPEPIPE -> "||"
  | BANG -> "!"
  | ASSIGN -> "="
  | EQ -> "=="
  | NE -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EOF -> "<eof>"

(** Code generator: Hem-C AST to ISA assembly text.

    Conventions: all arguments are passed on the stack (pushed right to
    left, popped by the caller); return value in $v0; $fp frames.  Every
    global access is absolute ([la] + load/store, i.e. HI16/LO16
    relocations) unless [use_gp] is set, in which case scalar globals are
    accessed $gp-relative — the compact-but-sparse-hostile addressing
    the paper's linkers must reject for shared modules. *)

exception Error of string

(** Built-in functions lowered to syscalls: [print_int], [print_str],
    [getpid], [yield], [sbrk], [fork], [wait], [path_to_addr],
    [addr_to_path], [exit], [lock_acquire], [lock_release]. *)
val builtins : string list

(** [compile ?use_gp prog] emits assembly for the translation unit. *)
val compile : ?use_gp:bool -> Ast.program -> string

(** Abstract syntax of Hem-C, the toy C subset the workloads are written
    in.  Word-oriented: [int] and pointers are 32 bits, [char] is a
    byte; arrays are one-dimensional. *)

type ty = Int | Char | Ptr of ty

type unop = Neg | Not | Deref | Addr

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And  (** short-circuit && *)
  | Or  (** short-circuit || *)

type expr =
  | Num of int
  | Str of string  (** string literal: address of a NUL-terminated char array *)
  | Var of string
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Index of expr * expr  (** a[i] *)
  | Call of string * expr list
  | Assign of expr * expr  (** lvalue = expr, itself an expression *)

type stmt =
  | Expr of expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of expr option * expr option * expr option * stmt list
      (** for (init; cond; step) body — all three headers optional *)
  | Break
  | Continue
  | Return of expr option
  | Local of ty * string * expr option  (** local declaration *)
  | Block of stmt list

type global = {
  g_ty : ty;
  g_name : string;
  g_array : int option;  (** array length, when an array *)
  g_init : int option;  (** constant initialiser *)
  g_extern : bool;
}

type func = {
  f_name : string;
  f_params : (ty * string) list;
  f_body : stmt list;
  f_static : bool;  (** not exported (C static) *)
}

type decl = Global of global | Func of func

type program = decl list

let size_of = function Int -> 4 | Char -> 1 | Ptr _ -> 4

(** Element size for pointer arithmetic / indexing through a value of
    this type. *)
let elem_size = function
  | Ptr inner -> size_of inner
  | Int | Char -> 1

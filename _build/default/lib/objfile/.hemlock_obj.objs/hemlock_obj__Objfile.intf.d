lib/objfile/objfile.mli: Bytes Format

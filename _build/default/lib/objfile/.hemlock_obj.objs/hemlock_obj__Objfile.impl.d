lib/objfile/objfile.ml: Bytes Char Format Hemlock_util List Printf String

module Codec = Hemlock_util.Codec

type section = Text | Data | Bss

type binding = Local | Global

type symbol = { sym_name : string; sym_section : section; sym_offset : int; sym_binding : binding }

type reloc_kind = Abs32 | Hi16 | Lo16 | Jump26 | Gprel16

type reloc = {
  rel_section : section;
  rel_offset : int;
  rel_kind : reloc_kind;
  rel_symbol : string;
  rel_addend : int;
}

type t = {
  obj_name : string;
  text : Bytes.t;
  data : Bytes.t;
  bss_size : int;
  symbols : symbol list;
  relocs : reloc list;
  uses_gp : bool;
  own_modules : string list;
  own_search_path : string list;
}

let section_to_string = function Text -> "text" | Data -> "data" | Bss -> "bss"

let reloc_kind_to_string = function
  | Abs32 -> "ABS32"
  | Hi16 -> "HI16"
  | Lo16 -> "LO16"
  | Jump26 -> "JUMP26"
  | Gprel16 -> "GPREL16"

let empty ~name =
  {
    obj_name = name;
    text = Bytes.empty;
    data = Bytes.empty;
    bss_size = 0;
    symbols = [];
    relocs = [];
    uses_gp = false;
    own_modules = [];
    own_search_path = [];
  }

let align4 n = (n + 3) land lnot 3

let section_bases t =
  let text_base = 0 in
  let data_base = align4 (Bytes.length t.text) in
  let bss_base = data_base + align4 (Bytes.length t.data) in
  (text_base, data_base, bss_base)

let load_size t =
  let _, _, bss_base = section_bases t in
  bss_base + align4 t.bss_size

let find_symbol t name = List.find_opt (fun s -> String.equal s.sym_name name) t.symbols

let exports t = List.filter (fun s -> s.sym_binding = Global) t.symbols

let undefined t =
  let defined = List.map (fun s -> s.sym_name) t.symbols in
  let referenced = List.map (fun r -> r.rel_symbol) t.relocs in
  List.sort_uniq String.compare
    (List.filter (fun n -> not (List.mem n defined)) referenced)

(* Binary encoding *)

let magic = "HOBJ"

let section_code = function Text -> 0 | Data -> 1 | Bss -> 2

let section_of_code = function
  | 0 -> Text
  | 1 -> Data
  | 2 -> Bss
  | n -> failwith (Printf.sprintf "Objfile.parse: bad section code %d" n)

let kind_code = function Abs32 -> 0 | Hi16 -> 1 | Lo16 -> 2 | Jump26 -> 3 | Gprel16 -> 4

let kind_of_code = function
  | 0 -> Abs32
  | 1 -> Hi16
  | 2 -> Lo16
  | 3 -> Jump26
  | 4 -> Gprel16
  | n -> failwith (Printf.sprintf "Objfile.parse: bad reloc kind %d" n)

let serialize t =
  let w = Codec.Writer.create () in
  String.iter (fun c -> Codec.Writer.u8 w (Char.code c)) magic;
  Codec.Writer.str w t.obj_name;
  Codec.Writer.u8 w (if t.uses_gp then 1 else 0);
  Codec.Writer.u32 w (Bytes.length t.text);
  Codec.Writer.bytes w t.text;
  Codec.Writer.u32 w (Bytes.length t.data);
  Codec.Writer.bytes w t.data;
  Codec.Writer.u32 w t.bss_size;
  Codec.Writer.u32 w (List.length t.symbols);
  List.iter
    (fun s ->
      Codec.Writer.str w s.sym_name;
      Codec.Writer.u8 w (section_code s.sym_section);
      Codec.Writer.u32 w s.sym_offset;
      Codec.Writer.u8 w (match s.sym_binding with Local -> 0 | Global -> 1))
    t.symbols;
  Codec.Writer.u32 w (List.length t.relocs);
  List.iter
    (fun r ->
      Codec.Writer.u8 w (section_code r.rel_section);
      Codec.Writer.u32 w r.rel_offset;
      Codec.Writer.u8 w (kind_code r.rel_kind);
      Codec.Writer.str w r.rel_symbol;
      Codec.Writer.u32 w (r.rel_addend land 0xFFFF_FFFF))
    t.relocs;
  Codec.Writer.u32 w (List.length t.own_modules);
  List.iter (Codec.Writer.str w) t.own_modules;
  Codec.Writer.u32 w (List.length t.own_search_path);
  List.iter (Codec.Writer.str w) t.own_search_path;
  Codec.Writer.contents w

let parse bytes =
  let r = Codec.Reader.create bytes in
  let m = Bytes.to_string (Codec.Reader.bytes r 4) in
  if not (String.equal m magic) then failwith "Objfile.parse: bad magic";
  let obj_name = Codec.Reader.str r in
  let uses_gp = Codec.Reader.u8 r = 1 in
  let text = Codec.Reader.bytes r (Codec.Reader.u32 r) in
  let data = Codec.Reader.bytes r (Codec.Reader.u32 r) in
  let bss_size = Codec.Reader.u32 r in
  let nsyms = Codec.Reader.u32 r in
  let read_symbol () =
    let sym_name = Codec.Reader.str r in
    let sym_section = section_of_code (Codec.Reader.u8 r) in
    let sym_offset = Codec.Reader.u32 r in
    let sym_binding = if Codec.Reader.u8 r = 1 then Global else Local in
    { sym_name; sym_section; sym_offset; sym_binding }
  in
  let symbols = List.init nsyms (fun _ -> read_symbol ()) in
  let nrels = Codec.Reader.u32 r in
  let read_reloc () =
    let rel_section = section_of_code (Codec.Reader.u8 r) in
    let rel_offset = Codec.Reader.u32 r in
    let rel_kind = kind_of_code (Codec.Reader.u8 r) in
    let rel_symbol = Codec.Reader.str r in
    let rel_addend = Codec.sext32 (Codec.Reader.u32 r) in
    { rel_section; rel_offset; rel_kind; rel_symbol; rel_addend }
  in
  let relocs = List.init nrels (fun _ -> read_reloc ()) in
  let own_modules = List.init (Codec.Reader.u32 r) (fun _ -> Codec.Reader.str r) in
  let own_search_path = List.init (Codec.Reader.u32 r) (fun _ -> Codec.Reader.str r) in
  { obj_name; text; data; bss_size; symbols; relocs; uses_gp; own_modules; own_search_path }

let pp ppf t =
  Format.fprintf ppf "@[<v>object %s%s@,text %d bytes, data %d bytes, bss %d bytes@,"
    t.obj_name (if t.uses_gp then " (uses gp)" else "")
    (Bytes.length t.text) (Bytes.length t.data) t.bss_size;
  List.iter
    (fun s ->
      Format.fprintf ppf "  %-6s %s+0x%x %s@,"
        (match s.sym_binding with Global -> "global" | Local -> "local")
        (section_to_string s.sym_section) s.sym_offset s.sym_name)
    t.symbols;
  List.iter
    (fun r ->
      Format.fprintf ppf "  reloc %s+0x%x %s -> %s%+d@,"
        (section_to_string r.rel_section) r.rel_offset
        (reloc_kind_to_string r.rel_kind) r.rel_symbol r.rel_addend)
    t.relocs;
  Format.fprintf ppf "@]"

(** The xfig workload (§4 "Programs with Non-Linear Data Structures" and
    §5 "Position-Dependent Files").

    A figure is a linked list of drawing objects.  The original xfig
    translated the lists to and from a pointer-free ASCII file on every
    save/load, and separately kept pointer-based routines to duplicate
    objects inside a figure.  The Hemlock version keeps the figure in a
    shared segment with a per-segment heap: save/load disappear, and the
    pointer-based copy routines work on the (persistent) figure
    directly.

    The price (§5): a Hemlock figure is position-dependent — copying the
    file's bytes to a different segment leaves its internal pointers
    aimed at the old one.  {!naive_copy_is_broken} demonstrates it. *)

module Kernel = Hemlock_os.Kernel
module Proc = Hemlock_os.Proc

type obj = { o_kind : int; o_x : int; o_y : int; o_w : int; o_h : int }

val gen_figure : Hemlock_util.Prng.t -> n:int -> obj list

(** {1 File-format implementation (the original xfig)} *)

module File_format : sig
  val save : Kernel.t -> Proc.t -> path:string -> obj list -> unit
  val load : Kernel.t -> Proc.t -> path:string -> obj list
end

(** {1 Shared-segment implementation} *)

module Shared_fig : sig
  (** [create k proc ~path] formats a figure segment; returns its base. *)
  val create : Kernel.t -> Proc.t -> path:string -> int

  (** [attach k proc ~path] maps an existing figure; returns its base. *)
  val attach : Kernel.t -> Proc.t -> path:string -> int

  val add : Kernel.t -> Proc.t -> fig:int -> obj -> unit

  (** Objects front (most recently added) to back. *)
  val objects : Kernel.t -> Proc.t -> fig:int -> obj list

  (** [duplicate k proc ~fig ~dx ~dy] copies every object, offset by
      (dx, dy) — the pointer-based copy routine. *)
  val duplicate : Kernel.t -> Proc.t -> fig:int -> dx:int -> dy:int -> unit

  val count : Kernel.t -> Proc.t -> fig:int -> int
end

(** {1 Whole editing sessions (for the benches)} *)

(** Baseline: load the .fig file, add [n_new] objects, duplicate all,
    save.  Returns the final object count. *)
val file_session :
  Kernel.t -> Proc.t -> path:string -> n_new:int -> dup:bool -> int

(** Hemlock: attach, add, duplicate; persistence is free. *)
val shm_session :
  Kernel.t -> Proc.t -> path:string -> n_new:int -> dup:bool -> int

(** Copy a shared figure's raw bytes into a second shared file and
    check whether the copy's object list survives; returns [true] when
    the naive copy is broken (it always is, once the figure has at
    least one node — its pointers still aim at the original slot). *)
val naive_copy_is_broken : Kernel.t -> Proc.t -> src:string -> dst:string -> bool

lib/apps/presto.ml: Hemlock_cc Hemlock_isa Hemlock_linker Hemlock_obj Hemlock_os Hemlock_sfs Hemlock_util Hemlock_vm List Printf String

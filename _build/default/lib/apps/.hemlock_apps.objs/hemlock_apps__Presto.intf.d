lib/apps/presto.mli: Hemlock_linker Hemlock_os

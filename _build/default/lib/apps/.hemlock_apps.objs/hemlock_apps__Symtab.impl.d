lib/apps/symtab.ml: Array Buffer Bytes Filename Hemlock_baseline Hemlock_cc Hemlock_isa Hemlock_linker Hemlock_obj Hemlock_os Hemlock_sfs Hemlock_util Hemlock_vm List Option Printf

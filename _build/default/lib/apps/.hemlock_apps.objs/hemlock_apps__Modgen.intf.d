lib/apps/modgen.mli: Hemlock_baseline Hemlock_linker Hemlock_os

lib/apps/symtab.mli: Hemlock_linker Hemlock_os

lib/apps/rwho.mli: Bytes Hemlock_os Hemlock_util

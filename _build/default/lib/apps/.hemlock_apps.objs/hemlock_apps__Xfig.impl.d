lib/apps/xfig.ml: Bytes Hemlock_baseline Hemlock_os Hemlock_runtime Hemlock_sfs Hemlock_util Hemlock_vm List

lib/apps/modgen.ml: Filename Fun Hemlock_baseline Hemlock_cc Hemlock_isa Hemlock_linker Hemlock_obj Hemlock_os Hemlock_sfs List Printf String

lib/apps/xfig.mli: Hemlock_os Hemlock_util

(** The Presto port workload (§4 "Parallel Applications").

    A parallel application whose worker processes share variables.  Two
    ways to get the sharing:

    - {b Hemlock}: the shared variables live in a separate source file
      compiled to a template; children link it as a {e dynamic public}
      module.  The parent creates a temporary directory on the shared
      partition, drops a symlink to the template there, and prepends the
      directory to LD_LIBRARY_PATH; the first child to run ldl creates
      and initialises the shared data under a file lock, the rest link
      it.  The parent never links the module; it cleans everything up
      afterwards.

    - {b Post-processor} (what the authors did before Hemlock, 432
      lines of lex): compile the workers with the shared variables as
      ordinary globals, then rewrite the generated assembly, replacing
      every reference to a shared variable with its address in a
      pre-agreed shared segment that the parent maps into each child.

    Both runs produce the same results array; the post-processor path
    additionally reports how much assembly it had to grovel over. *)

module Kernel = Hemlock_os.Kernel
module Ldl = Hemlock_linker.Ldl

(** Worker-count capacity of the shared results array. *)
val max_workers : int

(** Hem-C source of the shared-data module. *)
val shared_data_source : string

(** Hem-C source of the worker program. *)
val child_source : work_iters:int -> string

(** What the results array must contain after a run with [workers]
    workers (each worker's deterministic work product, indexed by the
    order in which workers grabbed the lock). *)
val expected_results : workers:int -> work_iters:int -> int list

(** [postprocess ~shared asm] rewrites assembly, binding each shared
    variable name to its fixed address.  Returns the new text and the
    number of references rewritten. *)
val postprocess : shared:(string * int) list -> string -> string * int

(** [run_hemlock ldl ~workers ~work_iters ~app_id] runs the full
    Hemlock protocol on the linker service's kernel and returns the
    results array (first [workers] entries). *)
val run_hemlock : Ldl.t -> workers:int -> work_iters:int -> app_id:string -> int list

(** [run_postprocessed ldl ...] runs the baseline.  Also returns the
    number of assembly lines scanned and references rewritten, the
    tooling cost the paper complains about. *)
val run_postprocessed :
  Ldl.t -> workers:int -> work_iters:int -> app_id:string -> int list * (int * int)

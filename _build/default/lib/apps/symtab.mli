(** The Lynx-compiler tables workload (§4 "Programs with Non-Linear
    Data Structures").

    Scanner/parser generators produce numeric tables that a compiler
    needs in a later pass.  Three ways to get them there:

    - {b Generated source} (what Lynx did): utilities emit a source
      module initialising the tables — the paper's "C version of the
      tables is over 5400 lines and takes 18 seconds to compile" — which
      is assembled and linked into the compiler on every rebuild.
    - {b Linearised file}: the first pass serialises the tables; the
      next pass parses them back (the multi-pass symbol-table shuffle).
    - {b Hemlock}: the utilities initialise a {e persistent public
      module} once; the compiler links it in and uses the tables in
      place.  Rebuilds and reruns pay nothing.

    All three produce the same checksum, printed by the consumer. *)

module Kernel = Hemlock_os.Kernel
module Ldl = Hemlock_linker.Ldl

(** Deterministic table generator (models the scanner/parser
    generators' output). *)
val gen_tables : seed:int -> entries:int -> int array * int array

(** Reference checksum the consumer must print. *)
val checksum : int array * int array -> int

type outcome = {
  oc_checksum : int;
  oc_generated_lines : int;  (** lines of generated source (0 when none) *)
}

(** One full build+use cycle per style.  [app_id] keeps file names
    distinct across runs. *)

val run_generated_source : Ldl.t -> entries:int -> app_id:string -> outcome

val run_linearized : Ldl.t -> entries:int -> app_id:string -> outcome

(** [first_run] initialises the persistent module; pass [false] to model
    a rebuild/rerun that simply links the existing tables. *)
val run_hemlock : Ldl.t -> entries:int -> app_id:string -> first_run:bool -> outcome

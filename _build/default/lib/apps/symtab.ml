module Kernel = Hemlock_os.Kernel
module Proc = Hemlock_os.Proc
module Fs = Hemlock_sfs.Fs
module Path = Hemlock_sfs.Path
module Prot = Hemlock_vm.Prot
module Prng = Hemlock_util.Prng
module Objfile = Hemlock_obj.Objfile
module Serializer = Hemlock_baseline.Serializer
module Ldl = Hemlock_linker.Ldl
module Search = Hemlock_linker.Search
module Modinst = Hemlock_linker.Modinst

let gen_tables ~seed ~entries =
  let rng = Prng.create ~seed in
  let scan = Array.init entries (fun _ -> Prng.int rng 10_000) in
  let parse = Array.init entries (fun _ -> Prng.int rng 10_000) in
  (scan, parse)

let checksum (scan, parse) =
  Array.fold_left ( + ) 0 (Array.mapi (fun i v -> (2 * v) + parse.(i)) scan)

type outcome = { oc_checksum : int; oc_generated_lines : int }

let root_ctx fs = { Search.fs; cwd = Path.root; env = [] }

let ensure_dir fs path = if not (Fs.exists fs path) then Fs.mkdir fs path

let dummy_scope =
  { Modinst.sc_label = "lynx"; sc_modules = []; sc_search = []; sc_parent = None }

(* Map a tables module and sum through its exported arrays in place. *)
let consume_module k proc ~module_path ~entries =
  let fs = Kernel.fs k in
  let inst = Modinst.public_instance (root_ctx fs) ~module_path ~scope:dummy_scope in
  ignore (Kernel.map_shared_file k proc ~path:module_path ~prot:Prot.Read_only);
  let addr name =
    match Modinst.find_export inst name with
    | Some a -> a
    | None -> failwith ("tables module lacks " ^ name)
  in
  let scan = addr "scan_tab" and parse = addr "parse_tab" in
  let sum = ref 0 in
  for i = 0 to entries - 1 do
    sum :=
      !sum
      + (2 * Kernel.load_u32 k proc (scan + (4 * i)))
      + Kernel.load_u32 k proc (parse + (4 * i))
  done;
  !sum

let in_proc ldl name f =
  let k = Ldl.kernel ldl in
  let result = ref None in
  ignore
    (Kernel.spawn_native k ~name (fun k proc ->
         result := Some (f k proc);
         0));
  Kernel.run k;
  match !result with
  | Some v -> v
  | None -> failwith (name ^ " did not complete")

(* ----- generated source: emit, assemble, re-create the module ----- *)

let emit_source (scan, parse) =
  let buf = Buffer.create (16 * Array.length scan) in
  let lines = ref 0 in
  let add fmt = Printf.ksprintf (fun s -> incr lines; Buffer.add_string buf (s ^ "\n")) fmt in
  add "        .data";
  add "        .globl scan_tab";
  add "scan_tab:";
  Array.iter (fun v -> add "        .word %d" v) scan;
  add "        .globl parse_tab";
  add "parse_tab:";
  Array.iter (fun v -> add "        .word %d" v) parse;
  add "        .globl tab_len";
  add "tab_len:";
  add "        .word %d" (Array.length scan);
  (Buffer.contents buf, !lines)

let run_generated_source ldl ~entries ~app_id =
  let k = Ldl.kernel ldl in
  let fs = Kernel.fs k in
  ensure_dir fs "/shared/lynx";
  let tables = gen_tables ~seed:7 ~entries in
  (* The generators' output: one source line per table entry. *)
  let source, lines = emit_source tables in
  let template = Printf.sprintf "/shared/lynx/gen_%s.o" app_id in
  let module_path = Filename.chop_suffix template ".o" in
  let obj = Hemlock_isa.Asm.assemble ~name:(Filename.basename template) source in
  Fs.write_file fs template (Objfile.serialize obj);
  (* "Recompile": recreate the module from the fresh template. *)
  if Fs.exists fs module_path then Fs.unlink fs module_path;
  ignore (Modinst.create_public_file (root_ctx fs) ~template_path:template ~obj ~module_path);
  let sum = in_proc ldl "lynx-compiler" (fun k proc -> consume_module k proc ~module_path ~entries) in
  { oc_checksum = sum; oc_generated_lines = lines }

(* ----- linearised file between passes ----- *)

let run_linearized ldl ~entries ~app_id =
  let tables = gen_tables ~seed:7 ~entries in
  let path = "/tmp/lynx_" ^ app_id ^ ".tables" in
  let scan, parse = tables in
  let to_value arr = Serializer.List (Array.to_list (Array.map (fun v -> Serializer.Int v) arr)) in
  (* Pass 1: linearise and write. *)
  in_proc ldl "lynx-pass1" (fun k proc ->
      let ascii = Serializer.to_ascii (Serializer.List [ to_value scan; to_value parse ]) in
      let fd = Kernel.sys_open k proc ~create:true ~trunc:true path in
      ignore (Kernel.sys_write k proc fd (Bytes.of_string ascii));
      Kernel.sys_close k proc fd);
  (* Pass 2: read, parse, rebuild in memory, use. *)
  let sum =
    in_proc ldl "lynx-pass2" (fun k proc ->
        let fd = Kernel.sys_open k proc path in
        let bytes = Kernel.sys_read k proc fd 0x100000 in
        Kernel.sys_close k proc fd;
        match Serializer.of_ascii (Bytes.to_string bytes) with
        | Serializer.List [ Serializer.List s; Serializer.List p ] ->
          let arr = function Serializer.Int v -> v | _ -> failwith "bad table" in
          let scan = Array.of_list (List.map arr s) in
          let parse = Array.of_list (List.map arr p) in
          checksum (scan, parse)
        | _ -> failwith "bad tables file")
  in
  { oc_checksum = sum; oc_generated_lines = 0 }

(* ----- Hemlock: persistent public module, initialised once ----- *)

let tables_template_source ~entries =
  Printf.sprintf {|
int scan_tab[%d];
int parse_tab[%d];
int tab_len;
|} entries entries

let run_hemlock ldl ~entries ~app_id ~first_run =
  let k = Ldl.kernel ldl in
  let fs = Kernel.fs k in
  ensure_dir fs "/shared/lynx";
  let template = Printf.sprintf "/shared/lynx/tables_%s.o" app_id in
  let module_path = Filename.chop_suffix template ".o" in
  if first_run then begin
    (* The utility programs initialise the persistent tables. *)
    let obj = Hemlock_cc.Cc.to_object ~name:"tables.o" (tables_template_source ~entries) in
    Fs.write_file fs template (Objfile.serialize obj);
    if Fs.exists fs module_path then Fs.unlink fs module_path;
    ignore (Modinst.create_public_file (root_ctx fs) ~template_path:template ~obj ~module_path);
    in_proc ldl "lynx-util" (fun k proc ->
        let inst = Modinst.public_instance (root_ctx fs) ~module_path ~scope:dummy_scope in
        ignore (Kernel.map_shared_file k proc ~path:module_path ~prot:Prot.Read_write);
        let addr name = Option.get (Modinst.find_export inst name) in
        let scan, parse = gen_tables ~seed:7 ~entries in
        Array.iteri (fun i v -> Kernel.store_u32 k proc (addr "scan_tab" + (4 * i)) v) scan;
        Array.iteri (fun i v -> Kernel.store_u32 k proc (addr "parse_tab" + (4 * i)) v) parse;
        Kernel.store_u32 k proc (addr "tab_len") entries)
  end;
  (* The compiler links the tables in and uses them, every rebuild. *)
  let sum = in_proc ldl "lynx-compiler" (fun k proc -> consume_module k proc ~module_path ~entries) in
  { oc_checksum = sum; oc_generated_lines = 0 }

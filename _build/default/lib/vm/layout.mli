(** The 32-bit Hemlock address-space layout of the paper's Figure 3.

    {v
      0x8000_0000 - 0xFFFF_FFFF   kernel
      0x7000_0000 - 0x7FFF_0000   stack (grows down)
      0x3000_0000 - 0x7000_0000   shared file system (1 GB, public)
      0x1000_0000 - 0x3000_0000   heap, bss/data (private)
      0x0000_0000 - 0x1000_0000   program text, shared libraries (private)
    v}

    Addresses in the public region mean the same thing in every process;
    addresses in the private regions are overloaded per process. *)

val page_size : int
val page_shift : int

val text_base : int
val text_limit : int
val heap_base : int
val heap_limit : int
val shared_base : int
val shared_limit : int
val stack_base : int
val stack_limit : int
val kernel_base : int

(** Size of each shared-file-system slot: the 1 MB per-file limit. *)
val shared_slot_size : int

(** Number of slots in the shared region (the 1024-inode limit). *)
val shared_slots : int

val is_page_aligned : int -> bool
val page_down : int -> int

(** Round up to a page boundary. *)
val page_up : int -> int

(** [true] iff the address lies in the globally-consistent public region. *)
val is_public : int -> bool

(** [true] iff the address is in a user-accessible region at all. *)
val is_user : int -> bool

(** Slot index of a public address, i.e. which shared file it falls in. *)
val slot_of_addr : int -> int

(** Base address of shared slot [i]. *)
val addr_of_slot : int -> int

val pp_addr : Format.formatter -> int -> unit

(** Name of the region an address falls in ("text", "heap", "shared",
    "stack", "kernel", or "unmapped-hole"). *)
val region_name : int -> string

module Interval_map = Hemlock_util.Interval_map
module Stats = Hemlock_util.Stats

type fault_reason = Unmapped | Protection

exception Fault of { addr : int; access : Prot.access; reason : fault_reason }

type share = Private | Public

type mapping = {
  seg : Segment.t;
  seg_off : int;
  prot : Prot.t;
  share : share;
  label : string;
}

type t = { mutable table : mapping Interval_map.t }

let create () = { table = Interval_map.empty }

let map t ~base ~len ~seg ?(seg_off = 0) ~prot ~share ~label () =
  if not (Layout.is_page_aligned base && Layout.is_page_aligned len) then
    invalid_arg "Address_space.map: unaligned base or length";
  if len <= 0 then invalid_arg "Address_space.map: empty mapping";
  if not (Layout.is_user base && Layout.is_user (base + len - 1)) then
    invalid_arg "Address_space.map: outside user space";
  if Interval_map.overlaps ~lo:base ~hi:(base + len) t.table then
    invalid_arg (Printf.sprintf "Address_space.map: 0x%x+0x%x overlaps" base len);
  t.table <- Interval_map.add ~lo:base ~hi:(base + len) { seg; seg_off; prot; share; label } t.table;
  Stats.global.pages_mapped <- Stats.global.pages_mapped + (len / Layout.page_size)

let unmap t addr = t.table <- Interval_map.remove addr t.table

let protect t addr prot = t.table <- Interval_map.update addr (fun m -> { m with prot }) t.table

let mapping_at t addr = Interval_map.find addr t.table

let mappings t = Interval_map.to_list t.table

let find_gap t ~lo ~hi ~size =
  Interval_map.first_gap ~lo ~hi ~size:(Layout.page_up size) t.table

let translate t addr access width =
  match Interval_map.find addr t.table with
  | None -> raise (Fault { addr; access; reason = Unmapped })
  | Some (lo, hi, m) ->
    if addr + width > hi then raise (Fault { addr; access; reason = Unmapped });
    if not (Prot.allows m.prot access) then
      raise (Fault { addr; access; reason = Protection });
    (m.seg, m.seg_off + (addr - lo))

let load_u8 t addr =
  let seg, off = translate t addr Prot.Read 1 in
  Segment.get_u8 seg off

let load_u32 t addr =
  let seg, off = translate t addr Prot.Read 4 in
  Segment.get_u32 seg off

let store_u8 t addr v =
  let seg, off = translate t addr Prot.Write 1 in
  Segment.set_u8 seg off v

let store_u32 t addr v =
  let seg, off = translate t addr Prot.Write 4 in
  Segment.set_u32 seg off v

let fetch t addr =
  let seg, off = translate t addr Prot.Exec 4 in
  Segment.get_u32 seg off

let read_bytes t addr len =
  let out = Bytes.make len '\000' in
  for i = 0 to len - 1 do
    Bytes.set out i (Char.chr (load_u8 t (addr + i)))
  done;
  out

let write_bytes t addr b =
  Bytes.iteri (fun i c -> store_u8 t (addr + i) (Char.code c)) b

let read_cstring t addr =
  let buf = Buffer.create 32 in
  let rec go i =
    if i >= 0x1_0000 then failwith "Address_space.read_cstring: unterminated";
    let c = load_u8 t (addr + i) in
    if c = 0 then Buffer.contents buf
    else begin
      Buffer.add_char buf (Char.chr c);
      go (i + 1)
    end
  in
  go 0

let clone t =
  let clone_mapping m =
    match m.share with
    | Public -> m
    | Private ->
      let seg = Segment.copy m.seg in
      Stats.global.bytes_copied <- Stats.global.bytes_copied + Segment.size seg;
      { m with seg }
  in
  let table =
    Interval_map.fold
      (fun lo hi m acc -> Interval_map.add ~lo ~hi (clone_mapping m) acc)
      t.table Interval_map.empty
  in
  { table }

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (lo, hi, m) ->
      Format.fprintf ppf "%a-%a %a %s %-8s %s@,"
        Layout.pp_addr lo Layout.pp_addr hi Prot.pp m.prot
        (match m.share with Private -> "priv" | Public -> "pub ")
        (Layout.region_name lo) m.label)
    (mappings t);
  Format.fprintf ppf "@]"

(** Page protections.  [No_access] is how ldl maps a module whose
    references are not yet resolved, so that the first touch faults into
    the lazy linker. *)

type t = No_access | Read_only | Read_write | Read_exec | Read_write_exec

type access = Read | Write | Exec

val allows : t -> access -> bool
val pp : Format.formatter -> t -> unit
val pp_access : Format.formatter -> access -> unit
val to_string : t -> string

(** A physical memory object — what the paper (following Mach) calls a
    segment.  Segments back both mapped memory and files; a shared file
    and the memory mapped from it are the {e same} segment, which is what
    makes Hemlock's write sharing genuine rather than copy-based.

    Storage grows on demand up to [max_size] and is zero-filled. *)

type t

(** [create ~name ~max_size ()] makes an empty segment. *)
val create : name:string -> max_size:int -> unit -> t

val id : t -> int
val name : t -> string
val max_size : t -> int

(** Current logical size in bytes (high-water mark of writes/resizes). *)
val size : t -> int

(** [resize t n] sets the logical size (zero-extends; truncation clears
    the dropped bytes so re-growth reads zeroes).
    @raise Invalid_argument if [n < 0] or [n > max_size t]. *)
val resize : t -> int -> unit

val get_u8 : t -> int -> int
val set_u8 : t -> int -> int -> unit
val get_u32 : t -> int -> int
val set_u32 : t -> int -> int -> unit

(** [blit_in t ~dst_off src] copies [src] into the segment, growing it. *)
val blit_in : t -> dst_off:int -> Bytes.t -> unit

(** [blit_out t ~src_off ~len] copies bytes out (reads beyond [size] are
    zeroes, up to [max_size]). *)
val blit_out : t -> src_off:int -> len:int -> Bytes.t

(** [copy t] is a snapshot with identical contents and a fresh identity —
    the private half of fork. *)
val copy : t -> t

(** Whole current contents (length = [size t]). *)
val contents : t -> Bytes.t

val pp : Format.formatter -> t -> unit

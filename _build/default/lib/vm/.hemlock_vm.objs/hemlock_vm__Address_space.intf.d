lib/vm/address_space.mli: Bytes Format Prot Segment

lib/vm/layout.ml: Format

lib/vm/segment.mli: Bytes Format

lib/vm/prot.mli: Format

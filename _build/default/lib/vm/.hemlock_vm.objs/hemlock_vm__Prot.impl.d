lib/vm/prot.ml: Format

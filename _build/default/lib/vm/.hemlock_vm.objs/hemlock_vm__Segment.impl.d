lib/vm/segment.ml: Bytes Format Hemlock_util Printf

lib/vm/address_space.ml: Buffer Bytes Char Format Hemlock_util Layout List Printf Prot Segment

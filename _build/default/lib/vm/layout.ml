let page_shift = 12
let page_size = 1 lsl page_shift

let text_base = 0x0000_0000
let text_limit = 0x1000_0000
let heap_base = 0x1000_0000
let heap_limit = 0x3000_0000
let shared_base = 0x3000_0000
let shared_limit = 0x7000_0000
let stack_base = 0x7000_0000
let stack_limit = 0x7FFF_0000
let kernel_base = 0x8000_0000

let shared_slot_size = 0x10_0000 (* 1 MB *)
let shared_slots = (shared_limit - shared_base) / shared_slot_size

let () = assert (shared_slots = 1024)

let is_page_aligned a = a land (page_size - 1) = 0
let page_down a = a land lnot (page_size - 1)
let page_up a = page_down (a + page_size - 1)

let is_public a = a >= shared_base && a < shared_limit
let is_user a = a >= 0 && a < kernel_base

let slot_of_addr a =
  if not (is_public a) then invalid_arg "Layout.slot_of_addr: not a public address";
  (a - shared_base) / shared_slot_size

let addr_of_slot i =
  if i < 0 || i >= shared_slots then invalid_arg "Layout.addr_of_slot: bad slot";
  shared_base + (i * shared_slot_size)

let pp_addr ppf a = Format.fprintf ppf "0x%08x" a

let region_name a =
  if a < 0 then "invalid"
  else if a < text_limit then "text"
  else if a < heap_limit then "heap"
  else if a < shared_limit then "shared"
  else if a >= stack_base && a < stack_limit then "stack"
  else if a >= kernel_base then "kernel"
  else "unmapped-hole"

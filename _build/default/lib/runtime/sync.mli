(** Synchronisation on shared memory (§5 "Synchronization").

    Two layers, as the paper sketches: user-space spin locks (with a
    yield when contended, the "relinquish the processor when a lock is
    unavailable" policy of Karlin et al.), and kernel-supported lock
    syscalls for ISA programs.  A lock is one word of shared memory
    holding 0 (free) or the owner's pid. *)

module Kernel = Hemlock_os.Kernel
module Proc = Hemlock_os.Proc

(** {1 Native user-space spin locks} *)

(** [spin_init k proc addr] initialises the lock word. *)
val spin_init : Kernel.t -> Proc.t -> int -> unit

(** [spin_acquire k proc addr] spins (yielding each failed attempt)
    until it owns the lock. *)
val spin_acquire : Kernel.t -> Proc.t -> int -> unit

val spin_try_acquire : Kernel.t -> Proc.t -> int -> bool
val spin_release : Kernel.t -> Proc.t -> int -> unit

(** [with_spin k proc addr f] acquire/release around [f]. *)
val with_spin : Kernel.t -> Proc.t -> int -> (unit -> 'a) -> 'a

(** {1 Kernel lock syscalls for ISA programs}

    [install k] registers two syscalls (returning their numbers is not
    needed — use {!lock_sysno} / {!unlock_sysno}): acquire blocks the
    caller until the word at $a0 is free, then writes its pid; release
    clears it.  Hem-C programs reach them through
    [lock_acquire(&word)] / [lock_release(&word)] wrappers emitted as
    plain syscalls. *)

val lock_sysno : int
val unlock_sysno : int
val install : Kernel.t -> unit

(** {1 Counting semaphore (native)} — a word holding the count. *)

val sem_init : Kernel.t -> Proc.t -> int -> int -> unit
val sem_post : Kernel.t -> Proc.t -> int -> unit

(** Blocks until the count is positive, then decrements. *)
val sem_wait : Kernel.t -> Proc.t -> int -> unit

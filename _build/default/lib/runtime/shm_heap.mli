(** Per-segment heap allocation (§5 "Dynamic Storage Management").

    The paper's package "allocates space from the heaps associated with
    individual segments, instead of a heap associated with the calling
    program": every shared file can carry its own heap, so a data
    structure and all the nodes it points to live in one segment and
    survive the processes that built them.

    The allocator state lives {e inside the segment} (a small header and
    an in-band free list), so any process mapping the segment can
    allocate and free.  All addresses are global addresses; all access
    goes through the kernel's checked loads and stores, so touching a
    heap that is not yet mapped faults it in via the Hemlock handler. *)

module Kernel = Hemlock_os.Kernel
module Proc = Hemlock_os.Proc

exception Heap_error of string

(** [create k proc ~path] creates a shared file at [path] (under
    /shared), formats a heap in it, and returns the heap's base
    address. *)
val create : Kernel.t -> Proc.t -> path:string -> int

(** [format k proc ~base ~limit] formats a heap over the given address
    range (the range must lie in one mapped segment).  Used to put a
    heap {e after} fixed data at the start of a segment. *)
val format : Kernel.t -> Proc.t -> base:int -> limit:int -> unit

(** [heap_base k addr] is the base of the heap owning [addr]: the start
    of the shared slot containing it.  This is how "the heap associated
    with a segment" is found from any pointer into it. *)
val heap_base : Kernel.t -> int -> int

(** [alloc k proc ~heap bytes] returns the address of a fresh block.
    @raise Heap_error when the segment is full. *)
val alloc : Kernel.t -> Proc.t -> heap:int -> int -> int

(** [free k proc ~heap addr] returns a block to the heap's free list. *)
val free : Kernel.t -> Proc.t -> heap:int -> int -> unit

(** Live bytes currently allocated (excludes headers). *)
val live_bytes : Kernel.t -> Proc.t -> heap:int -> int

(** Number of blocks on the free list. *)
val free_blocks : Kernel.t -> Proc.t -> heap:int -> int

(** {1 Direct segment inspection} (for tooling like {!Janitor}) *)

(** Does this segment start with a formatted heap? *)
val is_heap_segment : Hemlock_vm.Segment.t -> bool

(** Live allocation bytes, read straight from the segment's header. *)
val live_bytes_of_segment : Hemlock_vm.Segment.t -> int

module Kernel = Hemlock_os.Kernel
module Proc = Hemlock_os.Proc

exception Table_full

(* Layout: [magic][capacity][count] then capacity slots of
   [key_ptr][value].  key_ptr 0 = never used, 1 = tombstone. *)
let magic = 0x48544142 (* "HTAB" *)

let off_capacity = 4
let off_count = 8
let header_words = 3

let slot_addr table i = table + (4 * header_words) + (8 * i)

let check k proc table =
  if Kernel.load_u32 k proc table <> magic then
    invalid_arg (Printf.sprintf "Shared_table: 0x%08x is not a table" table)

let create k proc ~heap ~capacity =
  if capacity <= 0 then invalid_arg "Shared_table.create: capacity";
  let table = Shm_heap.alloc k proc ~heap ((4 * header_words) + (8 * capacity)) in
  Kernel.store_u32 k proc table magic;
  Kernel.store_u32 k proc (table + off_capacity) capacity;
  Kernel.store_u32 k proc (table + off_count) 0;
  table

let capacity k proc ~table =
  check k proc table;
  Kernel.load_u32 k proc (table + off_capacity)

let length k proc ~table =
  check k proc table;
  Kernel.load_u32 k proc (table + off_count)

let hash key =
  (* FNV-1a, folded to 30 bits so it stays a small OCaml int. *)
  let h = ref 0x811C9DC5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0x3FFF_FFFF)
    key;
  !h

let key_at k proc slot =
  match Kernel.load_u32 k proc slot with
  | 0 | 1 -> None
  | ptr -> Some (Kernel.read_cstring k proc ptr)

(* Find the slot holding [key], or the first insertable slot. *)
let probe k proc ~table ~key =
  let cap = capacity k proc ~table in
  let start = hash key mod cap in
  let rec go i first_free =
    if i = cap then (None, first_free)
    else
      let slot = slot_addr table ((start + i) mod cap) in
      match Kernel.load_u32 k proc slot with
      | 0 -> (None, (match first_free with None -> Some slot | s -> s))
      | 1 ->
        go (i + 1) (match first_free with None -> Some slot | s -> s)
      | ptr ->
        if String.equal (Kernel.read_cstring k proc ptr) key then (Some slot, first_free)
        else go (i + 1) first_free
  in
  go 0 None

let put k proc ~table ~key v =
  check k proc table;
  match probe k proc ~table ~key with
  | Some slot, _ -> Kernel.store_u32 k proc (slot + 4) v
  | None, Some slot ->
    let key_ptr = Shared_list.alloc_string k proc ~near:table key in
    Kernel.store_u32 k proc slot key_ptr;
    Kernel.store_u32 k proc (slot + 4) v;
    Kernel.store_u32 k proc (table + off_count)
      (Kernel.load_u32 k proc (table + off_count) + 1)
  | None, None -> raise Table_full

let get k proc ~table ~key =
  check k proc table;
  match probe k proc ~table ~key with
  | Some slot, _ -> Some (Kernel.load_u32 k proc (slot + 4))
  | None, _ -> None

let remove k proc ~table ~key =
  check k proc table;
  match probe k proc ~table ~key with
  | Some slot, _ ->
    let key_ptr = Kernel.load_u32 k proc slot in
    Shm_heap.free k proc ~heap:(Shm_heap.heap_base k table) key_ptr;
    Kernel.store_u32 k proc slot 1 (* tombstone *);
    Kernel.store_u32 k proc (table + off_count)
      (Kernel.load_u32 k proc (table + off_count) - 1);
    true
  | None, _ -> false

let iter k proc ~table f =
  check k proc table;
  let cap = capacity k proc ~table in
  for i = 0 to cap - 1 do
    let slot = slot_addr table i in
    match key_at k proc slot with
    | Some key -> f key (Kernel.load_u32 k proc (slot + 4))
    | None -> ()
  done

(** Pointer-linked structures in shared memory.

    The workloads (xfig's object lists, rwhod's host database, the Lynx
    compiler's tables) all build linked structures whose nodes live in a
    segment's own heap and whose pointers are global addresses — so the
    structure can be shared between processes, or left in place across
    program executions, with no linearisation.

    A node is a block of [1 + n] words: [\[next; field0; ...\]].
    A list head is one shared word holding the first node's address. *)

module Kernel = Hemlock_os.Kernel
module Proc = Hemlock_os.Proc

(** [init k proc ~head] makes the list empty. *)
val init : Kernel.t -> Proc.t -> head:int -> unit

(** [push k proc ~head ~fields] allocates a node from the head's
    segment heap (see {!Shm_heap.heap_base}) and prepends it.  Returns
    the node address. *)
val push : Kernel.t -> Proc.t -> head:int -> fields:int list -> int

(** [pop k proc ~head] unlinks and frees the first node, returning its
    fields; [None] on the empty list. *)
val pop : Kernel.t -> Proc.t -> head:int -> n_fields:int -> int list option

val length : Kernel.t -> Proc.t -> head:int -> int

(** [iter k proc ~head f] calls [f node_addr] front to back. *)
val iter : Kernel.t -> Proc.t -> head:int -> (int -> unit) -> unit

(** [field k proc node i] / [set_field k proc node i v] access field [i]
    of a node. *)
val field : Kernel.t -> Proc.t -> int -> int -> int

val set_field : Kernel.t -> Proc.t -> int -> int -> int -> unit

(** [find k proc ~head ~f] first node satisfying the predicate. *)
val find : Kernel.t -> Proc.t -> head:int -> f:(int -> bool) -> int option

(** [copy k proc ~head ~dst_head ~n_fields] structurally copies a list
    (the xfig "duplicate objects in a figure" operation: the
    pre-existing pointer-based copy routine now works on files). *)
val copy : Kernel.t -> Proc.t -> head:int -> dst_head:int -> n_fields:int -> unit

(** Write a NUL-terminated string into shared memory at [addr]. *)
val write_string : Kernel.t -> Proc.t -> int -> string -> unit

(** Read a NUL-terminated string. *)
val read_string : Kernel.t -> Proc.t -> int -> string

(** Allocate a string in the segment heap owning [near]; returns its
    address. *)
val alloc_string : Kernel.t -> Proc.t -> near:int -> string -> int

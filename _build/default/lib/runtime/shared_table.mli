(** A string-keyed hash table living in shared memory.

    Like {!Shared_list}, the entire structure — bucket array, keys,
    everything — lives inside a segment's own heap, so any process can
    use it by address and it persists with the segment.  Open
    addressing with linear probing; fixed capacity chosen at creation
    (a segment is at most 1 MB, so tables are sized up front, as the
    paper's fixed-format administrative structures were).

    Values are single words (typically pointers to records in the same
    segment). *)

module Kernel = Hemlock_os.Kernel
module Proc = Hemlock_os.Proc

exception Table_full

(** [create k proc ~heap ~capacity] allocates and initialises a table;
    returns its address. *)
val create : Kernel.t -> Proc.t -> heap:int -> capacity:int -> int

(** [put k proc ~table ~key v] inserts or updates.
    @raise Table_full when every slot is occupied. *)
val put : Kernel.t -> Proc.t -> table:int -> key:string -> int -> unit

val get : Kernel.t -> Proc.t -> table:int -> key:string -> int option

(** [remove k proc ~table ~key] deletes the binding (tombstoning the
    slot); returns whether it existed.  The key string itself is freed. *)
val remove : Kernel.t -> Proc.t -> table:int -> key:string -> bool

val length : Kernel.t -> Proc.t -> table:int -> int

val capacity : Kernel.t -> Proc.t -> table:int -> int

(** [iter k proc ~table f] calls [f key value] for each binding, in
    unspecified order. *)
val iter : Kernel.t -> Proc.t -> table:int -> (string -> int -> unit) -> unit

module Kernel = Hemlock_os.Kernel
module Proc = Hemlock_os.Proc
module Layout = Hemlock_vm.Layout
module Prot = Hemlock_vm.Prot

exception Heap_error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Heap_error s)) fmt

let magic = 0x48454150 (* "HEAP" *)

(* Header word offsets from the heap base. *)
let off_magic = 0
let off_limit = 4
let off_brk = 8
let off_free = 12
let off_live = 16
let header_bytes = 20

let align4 n = (n + 3) land lnot 3

let check_heap k proc ~heap =
  if Kernel.load_u32 k proc (heap + off_magic) <> magic then
    errf "0x%08x is not a formatted heap" heap

let format k proc ~base ~limit =
  if limit - base < header_bytes + 8 then errf "heap range too small";
  Kernel.store_u32 k proc (base + off_magic) magic;
  Kernel.store_u32 k proc (base + off_limit) limit;
  Kernel.store_u32 k proc (base + off_brk) (base + header_bytes);
  Kernel.store_u32 k proc (base + off_free) 0;
  Kernel.store_u32 k proc (base + off_live) 0

let create k proc ~path =
  let fs = Kernel.fs k in
  if not (Hemlock_sfs.Fs.exists fs ~cwd:proc.Proc.cwd path) then
    Hemlock_sfs.Fs.create_file fs ~cwd:proc.Proc.cwd path;
  let base = Kernel.map_shared_file k proc ~path ~prot:Prot.Read_write in
  format k proc ~base ~limit:(base + Layout.shared_slot_size);
  base

let heap_base k addr =
  ignore k;
  if not (Layout.is_public addr) then errf "0x%08x is not a shared address" addr;
  Layout.addr_of_slot (Layout.slot_of_addr addr)

(* Blocks: [u32 payload_size][payload].  Free blocks keep the next-free
   pointer in payload word 0. *)

let block_size k proc addr = Kernel.load_u32 k proc (addr - 4)

let alloc k proc ~heap bytes =
  check_heap k proc ~heap;
  let want = max 4 (align4 bytes) in
  (* First fit on the free list. *)
  let rec scan prev cur =
    if cur = 0 then None
    else
      let size = block_size k proc cur in
      if size >= want then Some (prev, cur)
      else scan cur (Kernel.load_u32 k proc cur)
  in
  let found = scan 0 (Kernel.load_u32 k proc (heap + off_free)) in
  let addr =
    match found with
    | Some (prev, cur) ->
      let next = Kernel.load_u32 k proc cur in
      if prev = 0 then Kernel.store_u32 k proc (heap + off_free) next
      else Kernel.store_u32 k proc prev next;
      cur
    | None ->
      let brk = Kernel.load_u32 k proc (heap + off_brk) in
      let limit = Kernel.load_u32 k proc (heap + off_limit) in
      if brk + 4 + want > limit then
        errf "heap at 0x%08x full (want %d bytes)" heap want;
      Kernel.store_u32 k proc brk want;
      Kernel.store_u32 k proc (heap + off_brk) (brk + 4 + want);
      brk + 4
  in
  Kernel.store_u32 k proc (heap + off_live)
    (Kernel.load_u32 k proc (heap + off_live) + block_size k proc addr);
  (* Zero the payload so re-used blocks read like fresh ones. *)
  let size = block_size k proc addr in
  let rec zero i =
    if i < size then begin
      Kernel.store_u32 k proc (addr + i) 0;
      zero (i + 4)
    end
  in
  zero 0;
  addr

let free k proc ~heap addr =
  check_heap k proc ~heap;
  let size = block_size k proc addr in
  Kernel.store_u32 k proc (heap + off_live)
    (max 0 (Kernel.load_u32 k proc (heap + off_live) - size));
  Kernel.store_u32 k proc addr (Kernel.load_u32 k proc (heap + off_free));
  Kernel.store_u32 k proc (heap + off_free) addr

let live_bytes k proc ~heap =
  check_heap k proc ~heap;
  Kernel.load_u32 k proc (heap + off_live)

let is_heap_segment seg =
  Hemlock_vm.Segment.size seg >= header_bytes
  && Hemlock_vm.Segment.get_u32 seg off_magic = magic

let live_bytes_of_segment seg = Hemlock_vm.Segment.get_u32 seg off_live

let free_blocks k proc ~heap =
  check_heap k proc ~heap;
  let rec count acc cur =
    if cur = 0 then acc else count (acc + 1) (Kernel.load_u32 k proc cur)
  in
  count 0 (Kernel.load_u32 k proc (heap + off_free))

module Kernel = Hemlock_os.Kernel
module Proc = Hemlock_os.Proc

let init k proc ~head = Kernel.store_u32 k proc head 0

let node_words n_fields = 1 + n_fields

let push k proc ~head ~fields =
  let heap = Shm_heap.heap_base k head in
  let node = Shm_heap.alloc k proc ~heap (4 * node_words (List.length fields)) in
  Kernel.store_u32 k proc node (Kernel.load_u32 k proc head);
  List.iteri (fun i v -> Kernel.store_u32 k proc (node + 4 + (4 * i)) v) fields;
  Kernel.store_u32 k proc head node;
  node

let pop k proc ~head ~n_fields =
  match Kernel.load_u32 k proc head with
  | 0 -> None
  | node ->
    let fields = List.init n_fields (fun i -> Kernel.load_u32 k proc (node + 4 + (4 * i))) in
    Kernel.store_u32 k proc head (Kernel.load_u32 k proc node);
    Shm_heap.free k proc ~heap:(Shm_heap.heap_base k head) node;
    Some fields

let iter k proc ~head f =
  let rec go node =
    if node <> 0 then begin
      let next = Kernel.load_u32 k proc node in
      f node;
      go next
    end
  in
  go (Kernel.load_u32 k proc head)

let length k proc ~head =
  let n = ref 0 in
  iter k proc ~head (fun _ -> incr n);
  !n

let field k proc node i = Kernel.load_u32 k proc (node + 4 + (4 * i))

let set_field k proc node i v = Kernel.store_u32 k proc (node + 4 + (4 * i)) v

let find k proc ~head ~f =
  let rec go node =
    if node = 0 then None
    else if f node then Some node
    else go (Kernel.load_u32 k proc node)
  in
  go (Kernel.load_u32 k proc head)

let copy k proc ~head ~dst_head ~n_fields =
  (* Collect nodes front-to-back, then push in reverse to keep order. *)
  let nodes = ref [] in
  iter k proc ~head (fun node -> nodes := node :: !nodes);
  Kernel.store_u32 k proc dst_head 0;
  List.iter
    (fun node ->
      let fields = List.init n_fields (field k proc node) in
      ignore (push k proc ~head:dst_head ~fields))
    !nodes

let write_string k proc addr s =
  String.iteri (fun i c -> Kernel.store_u8 k proc (addr + i) (Char.code c)) s;
  Kernel.store_u8 k proc (addr + String.length s) 0

let read_string k proc addr = Kernel.read_cstring k proc addr

let alloc_string k proc ~near s =
  let heap = Shm_heap.heap_base k near in
  let addr = Shm_heap.alloc k proc ~heap (String.length s + 1) in
  write_string k proc addr s;
  addr

lib/runtime/shm_heap.mli: Hemlock_os Hemlock_vm

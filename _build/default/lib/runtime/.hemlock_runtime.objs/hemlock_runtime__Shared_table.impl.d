lib/runtime/shared_table.ml: Char Hemlock_os Printf Shared_list Shm_heap String

lib/runtime/janitor.ml: Char Format Fun Hemlock_linker Hemlock_os Hemlock_sfs Hemlock_vm List Printf Shm_heap String

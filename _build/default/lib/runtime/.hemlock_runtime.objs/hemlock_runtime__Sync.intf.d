lib/runtime/sync.mli: Hemlock_os

lib/runtime/shared_list.mli: Hemlock_os

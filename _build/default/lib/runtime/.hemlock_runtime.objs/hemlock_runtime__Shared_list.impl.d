lib/runtime/shared_list.ml: Char Hemlock_os List Shm_heap String

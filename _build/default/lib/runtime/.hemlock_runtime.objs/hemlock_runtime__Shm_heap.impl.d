lib/runtime/shm_heap.ml: Hemlock_os Hemlock_sfs Hemlock_vm Printf

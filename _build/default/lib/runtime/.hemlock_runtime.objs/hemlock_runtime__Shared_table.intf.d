lib/runtime/shared_table.mli: Hemlock_os

lib/runtime/sync.ml: Fun Hemlock_isa Hemlock_os Hemlock_vm Printf

lib/runtime/janitor.mli: Format Hemlock_os

(** Disassembly of encoded text sections, for objdump-style tooling and
    linker debugging. *)

(** [line ~pc word] is one listing line: address, raw word, mnemonic.
    Undecodable words render as [<data?>]. *)
val line : pc:int -> int -> string

(** [text ~base bytes] disassembles a whole text section laid out at
    virtual address [base]. *)
val text : base:int -> Bytes.t -> string

(** [jump_targets bytes] is the set of word offsets that are targets of
    direct jumps within the section (useful for spotting veneers). *)
val jump_targets : base:int -> Bytes.t -> int list

(** The instruction set: a 32-bit RISC in the R3000 mould, with the two
    addressing limits the paper's linkers must work around:

    - {b J/JAL} carry a 26-bit word target and can only reach within the
      enclosing 256 MB region — out-of-range calls need linker-inserted
      veneers;
    - {b gp-relative} loads/stores have 16-bit displacements and are
      unusable in the sparse 1 GB shared region.

    Instructions encode to/decode from 32-bit words so relocation is
    performed by patching real instruction fields in memory. *)

type t =
  (* shifts *)
  | Sll of Reg.t * Reg.t * int
  | Srl of Reg.t * Reg.t * int
  | Sra of Reg.t * Reg.t * int
  (* register arithmetic / logic *)
  | Add of Reg.t * Reg.t * Reg.t
  | Sub of Reg.t * Reg.t * Reg.t
  | Mul of Reg.t * Reg.t * Reg.t
  | Div of Reg.t * Reg.t * Reg.t
  | Rem of Reg.t * Reg.t * Reg.t
  | And of Reg.t * Reg.t * Reg.t
  | Or of Reg.t * Reg.t * Reg.t
  | Xor of Reg.t * Reg.t * Reg.t
  | Slt of Reg.t * Reg.t * Reg.t
  | Sltu of Reg.t * Reg.t * Reg.t
  (* immediates *)
  | Addi of Reg.t * Reg.t * int  (** signed 16-bit *)
  | Slti of Reg.t * Reg.t * int
  | Andi of Reg.t * Reg.t * int  (** zero-extended *)
  | Ori of Reg.t * Reg.t * int
  | Xori of Reg.t * Reg.t * int
  | Lui of Reg.t * int
  (* memory *)
  | Lw of Reg.t * Reg.t * int  (** [Lw (rt, base, off)]: rt <- mem32[base+off] *)
  | Lb of Reg.t * Reg.t * int
  | Sw of Reg.t * Reg.t * int
  | Sb of Reg.t * Reg.t * int
  (* control *)
  | Beq of Reg.t * Reg.t * int  (** signed word offset from pc+4 *)
  | Bne of Reg.t * Reg.t * int
  | Blez of Reg.t * int
  | Bgtz of Reg.t * int
  | J of int  (** 26-bit word target within the pc's 256 MB region *)
  | Jal of int
  | Jr of Reg.t
  | Jalr of Reg.t * Reg.t  (** [Jalr (rd, rs)]: rd <- pc+4; pc <- rs *)
  | Syscall
  | Break  (** halt *)

val nop : t

(** @raise Failure when a field is out of range. *)
val encode : t -> int

(** @raise Failure on an undecodable word. *)
val decode : int -> t

(** [jump_in_range ~pc ~target] — can a J/JAL at [pc] reach [target]?
    True iff both share bits 28-31 and target is word-aligned. *)
val jump_in_range : pc:int -> target:int -> bool

(** 26-bit field value for a jump to [target] from region of [pc]. *)
val jump_field : target:int -> int

(** Absolute target of a 26-bit field fetched at [pc]. *)
val jump_target : pc:int -> int -> int

val pp : Format.formatter -> t -> unit

lib/isa/asm.ml: Buffer Char Hemlock_obj Hemlock_util Insn List Printf Reg String

lib/isa/cpu.mli: Format Hemlock_vm Reg

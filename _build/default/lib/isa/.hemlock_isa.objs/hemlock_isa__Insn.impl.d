lib/isa/insn.ml: Format Hemlock_util Printf Reg

lib/isa/cpu.ml: Array Format Hemlock_util Hemlock_vm Insn Reg

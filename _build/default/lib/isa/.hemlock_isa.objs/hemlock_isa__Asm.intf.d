lib/isa/asm.mli: Hemlock_obj

lib/isa/disasm.ml: Buffer Bytes Format Hemlock_util Insn List Printf

lib/isa/reg.mli:

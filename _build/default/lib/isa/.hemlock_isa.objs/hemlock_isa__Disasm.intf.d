lib/isa/disasm.mli: Bytes

type t = int

let zero = 0
let at = 1
let v0 = 2
let v1 = 3
let a0 = 4
let a1 = 5
let a2 = 6
let a3 = 7
let t0 = 8
let t1 = 9
let t2 = 10
let t3 = 11
let gp = 28
let sp = 29
let fp = 30
let ra = 31

let names =
  [|
    "zero"; "at"; "v0"; "v1"; "a0"; "a1"; "a2"; "a3";
    "t0"; "t1"; "t2"; "t3"; "t4"; "t5"; "t6"; "t7";
    "s0"; "s1"; "s2"; "s3"; "s4"; "s5"; "s6"; "s7";
    "t8"; "t9"; "k0"; "k1"; "gp"; "sp"; "fp"; "ra";
  |]

let name r =
  if r < 0 || r > 31 then failwith (Printf.sprintf "Reg.name: bad register %d" r)
  else "$" ^ names.(r)

let of_string s =
  let body =
    if String.length s > 0 && s.[0] = '$' then String.sub s 1 (String.length s - 1)
    else s
  in
  match int_of_string_opt body with
  | Some n when n >= 0 && n <= 31 -> n
  | Some n -> failwith (Printf.sprintf "Reg.of_string: bad register number %d" n)
  | None -> (
    let rec scan i =
      if i > 31 then failwith (Printf.sprintf "Reg.of_string: unknown register %S" s)
      else if String.equal names.(i) body then i
      else scan (i + 1)
    in
    scan 0)

(** Register file conventions (MIPS-flavoured).  [gp] is the
    performance-enhancing global pointer register whose 16-bit offsets
    the paper must disable for modules in the sparse shared region. *)

type t = int
(** 0..31; register 0 is hard-wired to zero. *)

val zero : t

(** Assembler/linker temporary, used by veneers. *)
val at : t

(** Return value / syscall number. *)
val v0 : t

val v1 : t
val a0 : t
val a1 : t
val a2 : t
val a3 : t
val t0 : t
val t1 : t
val t2 : t
val t3 : t

(** Global pointer: 16-bit-offset data addressing. *)
val gp : t

val sp : t
val fp : t
val ra : t

val name : t -> string

(** Parse "$sp", "$4", "$t0"... @raise Failure on unknown names. *)
val of_string : string -> t

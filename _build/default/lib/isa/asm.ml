module Objfile = Hemlock_obj.Objfile
module Codec = Hemlock_util.Codec

exception Error of { line : int; msg : string }

type fixup = { fix_offset : int; fix_label : string; fix_line : int }

type state = {
  name : string;
  text : Buffer.t;
  data : Buffer.t;
  mutable bss_size : int;
  mutable section : Objfile.section;
  mutable symbols : (string * Objfile.section * int) list; (* reverse order *)
  mutable globals : string list;
  mutable relocs : Objfile.reloc list; (* reverse order *)
  mutable branch_fixups : fixup list;
  mutable uses_gp : bool;
  mutable line : int;
}

let err st msg = raise (Error { line = st.line; msg })

let errf st fmt = Printf.ksprintf (err st) fmt

(* --- tokenizing ------------------------------------------------------- *)

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

(* Split an operand list on commas, then trim. *)
let split_operands s =
  if String.trim s = "" then []
  else List.map String.trim (String.split_on_char ',' s)

let parse_int st s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> errf st "bad integer %S" s

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '$'

let is_ident s =
  String.length s > 0
  && (s.[0] < '0' || s.[0] > '9')
  && s.[0] <> '-'
  && String.for_all is_ident_char s
  && s.[0] <> '$'

(* expr = int | sym | sym+int | sym-int *)
let parse_expr st s =
  let plus = String.index_opt s '+' in
  let minus = if String.length s > 1 then String.index_from_opt s 1 '-' else None in
  match (plus, minus) with
  | Some i, _ | None, Some i ->
    let sym = String.trim (String.sub s 0 i) in
    let rest = String.trim (String.sub s i (String.length s - i)) in
    if is_ident sym then (Some sym, parse_int st rest)
    else (None, parse_int st s)
  | None, None ->
    if is_ident s then (Some s, 0) else (None, parse_int st s)

(* --- emission --------------------------------------------------------- *)

let current_buffer st =
  match st.section with
  | Objfile.Text -> Some st.text
  | Objfile.Data -> Some st.data
  | Objfile.Bss -> None

let here st =
  match st.section with
  | Objfile.Text -> Buffer.length st.text
  | Objfile.Data -> Buffer.length st.data
  | Objfile.Bss -> st.bss_size

let emit_u8 st v =
  match current_buffer st with
  | Some buf -> Buffer.add_char buf (Char.chr (v land 0xFF))
  | None ->
    if v <> 0 then err st "bss section cannot hold initialised data";
    st.bss_size <- st.bss_size + 1

let emit_u32 st v =
  emit_u8 st v;
  emit_u8 st (v lsr 8);
  emit_u8 st (v lsr 16);
  emit_u8 st (v lsr 24)

let emit_insn st insn =
  if st.section <> Objfile.Text then err st "instruction outside .text";
  emit_u32 st (Insn.encode insn)

let add_reloc st kind symbol addend =
  st.relocs <-
    {
      Objfile.rel_section = st.section;
      rel_offset = here st;
      rel_kind = kind;
      rel_symbol = symbol;
      rel_addend = addend;
    }
    :: st.relocs

let define_label st name =
  if List.exists (fun (n, _, _) -> String.equal n name) st.symbols then
    errf st "duplicate label %s" name;
  st.symbols <- (name, st.section, here st) :: st.symbols

(* --- instruction parsing ---------------------------------------------- *)

let reg st s =
  match Reg.of_string s with r -> r | exception Failure msg -> err st msg

(* "off($r)" | "($r)" | "sym($gp)" *)
let parse_mem st s =
  match String.index_opt s '(' with
  | None -> errf st "bad memory operand %S" s
  | Some i ->
    if s.[String.length s - 1] <> ')' then errf st "bad memory operand %S" s;
    let base = String.sub s (i + 1) (String.length s - i - 2) in
    let prefix = String.trim (String.sub s 0 i) in
    let base_reg = reg st base in
    if prefix <> "" && is_ident prefix then begin
      if base_reg <> Reg.gp then
        errf st "symbolic displacement only allowed with $gp: %S" s;
      `Gprel (prefix, base_reg)
    end
    else `Plain ((if prefix = "" then 0 else parse_int st prefix), base_reg)

let parse_asciiz st s =
  let s = String.trim s in
  if String.length s < 2 || s.[0] <> '"' || s.[String.length s - 1] <> '"' then
    err st "expected quoted string";
  let body = String.sub s 1 (String.length s - 2) in
  (* handle backslash escapes: n t backslash quote 0 *)
  let buf = Buffer.create (String.length body) in
  let rec go i =
    if i < String.length body then
      if body.[i] = '\\' && i + 1 < String.length body then begin
        (match body.[i + 1] with
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | '0' -> Buffer.add_char buf '\000'
        | '\\' -> Buffer.add_char buf '\\'
        | '"' -> Buffer.add_char buf '"'
        | c -> errf st "bad escape \\%c" c);
        go (i + 2)
      end
      else begin
        Buffer.add_char buf body.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let imm16_ok v = v >= -0x8000 && v <= 0x7FFF

let handle_load_store st mnemonic rt src =
  let mk_plain off base =
    match mnemonic with
    | "lw" -> Insn.Lw (rt, base, off)
    | "lb" -> Insn.Lb (rt, base, off)
    | "sw" -> Insn.Sw (rt, base, off)
    | "sb" -> Insn.Sb (rt, base, off)
    | _ -> assert false
  in
  match parse_mem st src with
  | `Plain (off, base) -> emit_insn st (mk_plain off base)
  | `Gprel (sym, base) ->
    (* gp-relative access: a 16-bit displacement from $gp, patched by a
       GPREL16 reloc.  Marks the module as incompatible with the sparse
       shared address space. *)
    st.uses_gp <- true;
    add_reloc st Objfile.Gprel16 sym 0;
    emit_insn st (mk_plain 0 base)

let handle_instruction st mnemonic operands =
  let ops = split_operands operands in
  let nth i =
    match List.nth_opt ops i with
    | Some s -> s
    | None -> errf st "missing operand %d for %s" i mnemonic
  in
  let arity n =
    if List.length ops <> n then
      errf st "%s expects %d operands, got %d" mnemonic n (List.length ops)
  in
  let r i = reg st (nth i) in
  let int i = parse_int st (nth i) in
  let rrr mk =
    arity 3;
    emit_insn st (mk (r 0) (r 1) (r 2))
  in
  let shift mk =
    arity 3;
    emit_insn st (mk (r 0) (r 1) (int 2))
  in
  let immediate mk =
    arity 3;
    emit_insn st (mk (r 0) (r 1) (int 2))
  in
  let branch2 mk =
    arity 3;
    st.branch_fixups <-
      { fix_offset = here st; fix_label = nth 2; fix_line = st.line } :: st.branch_fixups;
    emit_insn st (mk (r 0) (r 1) 0)
  in
  let branch1 mk =
    arity 2;
    st.branch_fixups <-
      { fix_offset = here st; fix_label = nth 1; fix_line = st.line } :: st.branch_fixups;
    emit_insn st (mk (r 0) 0)
  in
  match mnemonic with
  | "add" -> rrr (fun a b c -> Insn.Add (a, b, c))
  | "sub" -> rrr (fun a b c -> Insn.Sub (a, b, c))
  | "mul" -> rrr (fun a b c -> Insn.Mul (a, b, c))
  | "div" -> rrr (fun a b c -> Insn.Div (a, b, c))
  | "rem" -> rrr (fun a b c -> Insn.Rem (a, b, c))
  | "and" -> rrr (fun a b c -> Insn.And (a, b, c))
  | "or" -> rrr (fun a b c -> Insn.Or (a, b, c))
  | "xor" -> rrr (fun a b c -> Insn.Xor (a, b, c))
  | "slt" -> rrr (fun a b c -> Insn.Slt (a, b, c))
  | "sltu" -> rrr (fun a b c -> Insn.Sltu (a, b, c))
  | "sll" -> shift (fun a b c -> Insn.Sll (a, b, c))
  | "srl" -> shift (fun a b c -> Insn.Srl (a, b, c))
  | "sra" -> shift (fun a b c -> Insn.Sra (a, b, c))
  | "addi" -> immediate (fun a b c -> Insn.Addi (a, b, c))
  | "slti" -> immediate (fun a b c -> Insn.Slti (a, b, c))
  | "andi" -> immediate (fun a b c -> Insn.Andi (a, b, c))
  | "ori" -> immediate (fun a b c -> Insn.Ori (a, b, c))
  | "xori" -> immediate (fun a b c -> Insn.Xori (a, b, c))
  | "lui" ->
    arity 2;
    emit_insn st (Insn.Lui (r 0, int 1))
  | "lw" | "lb" | "sw" | "sb" ->
    arity 2;
    handle_load_store st mnemonic (r 0) (nth 1)
  | "beq" -> branch2 (fun a b off -> Insn.Beq (a, b, off))
  | "bne" -> branch2 (fun a b off -> Insn.Bne (a, b, off))
  | "blez" -> branch1 (fun a off -> Insn.Blez (a, off))
  | "bgtz" -> branch1 (fun a off -> Insn.Bgtz (a, off))
  | "b" ->
    arity 1;
    st.branch_fixups <-
      { fix_offset = here st; fix_label = nth 0; fix_line = st.line } :: st.branch_fixups;
    emit_insn st (Insn.Beq (Reg.zero, Reg.zero, 0))
  | "j" | "jal" ->
    arity 1;
    add_reloc st Objfile.Jump26 (nth 0) 0;
    emit_insn st (if mnemonic = "j" then Insn.J 0 else Insn.Jal 0)
  | "jr" ->
    arity 1;
    emit_insn st (Insn.Jr (r 0))
  | "jalr" ->
    arity 2;
    emit_insn st (Insn.Jalr (r 0, r 1))
  | "syscall" ->
    arity 0;
    emit_insn st Insn.Syscall
  | "break" ->
    arity 0;
    emit_insn st Insn.Break
  | "nop" ->
    arity 0;
    emit_insn st Insn.nop
  | "la" ->
    arity 2;
    let rd = r 0 in
    let sym, addend = parse_expr st (nth 1) in
    (match sym with
    | Some sym ->
      add_reloc st Objfile.Hi16 sym addend;
      emit_insn st (Insn.Lui (rd, 0));
      add_reloc st Objfile.Lo16 sym addend;
      emit_insn st (Insn.Ori (rd, rd, 0))
    | None ->
      let v = addend in
      emit_insn st (Insn.Lui (rd, (v lsr 16) land 0xFFFF));
      emit_insn st (Insn.Ori (rd, rd, v land 0xFFFF)))
  | "li" ->
    arity 2;
    let rd = r 0 in
    let v = int 1 in
    if imm16_ok v then emit_insn st (Insn.Addi (rd, Reg.zero, v))
    else begin
      emit_insn st (Insn.Lui (rd, (v lsr 16) land 0xFFFF));
      emit_insn st (Insn.Ori (rd, rd, v land 0xFFFF))
    end
  | "move" ->
    arity 2;
    emit_insn st (Insn.Add (r 0, r 1, Reg.zero))
  | m -> errf st "unknown mnemonic %S" m

let handle_directive st directive rest =
  match directive with
  | ".text" -> st.section <- Objfile.Text
  | ".data" -> st.section <- Objfile.Data
  | ".bss" -> st.section <- Objfile.Bss
  | ".globl" | ".global" ->
    List.iter (fun s -> st.globals <- s :: st.globals) (split_operands rest)
  | ".word" ->
    if split_operands rest = [] then err st ".word needs at least one operand";
    let emit_word s =
      match parse_expr st s with
      | Some sym, addend ->
        add_reloc st Objfile.Abs32 sym addend;
        emit_u32 st 0
      | None, v -> emit_u32 st (Codec.mask32 v)
    in
    List.iter emit_word (split_operands rest)
  | ".byte" ->
    if split_operands rest = [] then err st ".byte needs at least one operand";
    List.iter (fun s -> emit_u8 st (parse_int st s)) (split_operands rest)
  | ".asciiz" ->
    String.iter (fun c -> emit_u8 st (Char.code c)) (parse_asciiz st rest);
    emit_u8 st 0
  | ".space" ->
    let n = parse_int st (String.trim rest) in
    if st.section = Objfile.Bss then st.bss_size <- st.bss_size + n
    else
      for _ = 1 to n do
        emit_u8 st 0
      done
  | ".align" ->
    let pad = (4 - (here st land 3)) land 3 in
    if st.section = Objfile.Bss then st.bss_size <- st.bss_size + pad
    else
      for _ = 1 to pad do
        emit_u8 st 0
      done
  | d -> errf st "unknown directive %S" d

let handle_line st line =
  let line = String.trim (strip_comment line) in
  if line <> "" then begin
    (* Leading labels, possibly several. *)
    let rec strip_labels line =
      match String.index_opt line ':' with
      | Some i when is_ident (String.trim (String.sub line 0 i)) ->
        define_label st (String.trim (String.sub line 0 i));
        strip_labels (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
      | Some _ | None -> line
    in
    let line = strip_labels line in
    if line <> "" then
      if line.[0] = '.' then begin
        match String.index_opt line ' ' with
        | None -> handle_directive st line ""
        | Some i ->
          handle_directive st (String.sub line 0 i)
            (String.sub line i (String.length line - i))
      end
      else begin
        match String.index_opt line ' ' with
        | None -> handle_instruction st line ""
        | Some i ->
          handle_instruction st (String.sub line 0 i)
            (String.trim (String.sub line i (String.length line - i)))
      end
  end

let apply_branch_fixups st =
  let text = Buffer.to_bytes st.text in
  let fix { fix_offset; fix_label; fix_line } =
    st.line <- fix_line;
    match List.find_opt (fun (n, _, _) -> String.equal n fix_label) st.symbols with
    | Some (_, Objfile.Text, label_off) ->
      let delta = (label_off - (fix_offset + 4)) / 4 in
      if not (imm16_ok delta) then errf st "branch to %s out of range" fix_label;
      let word = Codec.get_u32 text fix_offset in
      Codec.set_u32 text fix_offset ((word land lnot 0xFFFF) lor (delta land 0xFFFF))
    | Some (_, (Objfile.Data | Objfile.Bss), _) ->
      errf st "branch target %s is not in .text" fix_label
    | None -> errf st "branch to undefined local label %s" fix_label
  in
  List.iter fix st.branch_fixups;
  text

let assemble ~name source =
  let st =
    {
      name;
      text = Buffer.create 256;
      data = Buffer.create 64;
      bss_size = 0;
      section = Objfile.Text;
      symbols = [];
      globals = [];
      relocs = [];
      branch_fixups = [];
      uses_gp = false;
      line = 0;
    }
  in
  List.iteri
    (fun i line ->
      st.line <- i + 1;
      handle_line st line)
    (String.split_on_char '\n' source);
  let text = apply_branch_fixups st in
  let symbols =
    List.rev_map
      (fun (sym_name, sym_section, sym_offset) ->
        let sym_binding =
          if List.mem sym_name st.globals then Objfile.Global else Objfile.Local
        in
        { Objfile.sym_name; sym_section; sym_offset; sym_binding })
      st.symbols
  in
  {
    Objfile.obj_name = st.name;
    text;
    data = Buffer.to_bytes st.data;
    bss_size = st.bss_size;
    symbols;
    relocs = List.rev st.relocs;
    uses_gp = st.uses_gp;
    own_modules = [];
    own_search_path = [];
  }

(** The assembler: textual assembly to {!Hemlock_obj.Objfile.t}
    templates.  This is the layer the toy compiler targets, and the one
    test/bench code uses to author modules directly.

    Syntax summary:
    {v
      .text / .data / .bss        select section
      .globl name                 export a label
      label:                      define a symbol at the current offset
      .word expr {, expr}         32-bit datum; expr = int | sym | sym+int
      .byte int                   8-bit datum
      .asciiz "str"               NUL-terminated string
      .space n                    n zero bytes (any section; bss only grows)
      .align                      pad to a 4-byte boundary
      add $rd, $rs, $rt           register ops (add sub mul div rem and
                                  or xor slt sltu sll srl sra with shamt)
      addi/andi/ori/xori/slti     immediates; lui $rt, imm
      lw/lb/sw/sb $rt, off($rs)   memory; "sym($gp)" emits a GPREL16
                                  reloc and marks the module as gp-using
      beq/bne $rs, $rt, label     pc-relative, module-local
      blez/bgtz $rs, label
      j/jal label                 emits a JUMP26 reloc (linker patches)
      jr $rs / jalr $rd, $rs
      syscall / break / nop
      la $rd, sym                 pseudo: lui+ori with HI16/LO16 relocs
      li $rd, imm                 pseudo
      move $rd, $rs               pseudo
      b label                     pseudo: beq $zero, $zero
      # ...                       comment
    v} *)

exception Error of { line : int; msg : string }

(** [assemble ~name source] assembles a template module.
    @raise Error with a source line number on any syntax problem. *)
val assemble : name:string -> string -> Hemlock_obj.Objfile.t

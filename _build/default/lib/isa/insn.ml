type t =
  | Sll of Reg.t * Reg.t * int
  | Srl of Reg.t * Reg.t * int
  | Sra of Reg.t * Reg.t * int
  | Add of Reg.t * Reg.t * Reg.t
  | Sub of Reg.t * Reg.t * Reg.t
  | Mul of Reg.t * Reg.t * Reg.t
  | Div of Reg.t * Reg.t * Reg.t
  | Rem of Reg.t * Reg.t * Reg.t
  | And of Reg.t * Reg.t * Reg.t
  | Or of Reg.t * Reg.t * Reg.t
  | Xor of Reg.t * Reg.t * Reg.t
  | Slt of Reg.t * Reg.t * Reg.t
  | Sltu of Reg.t * Reg.t * Reg.t
  | Addi of Reg.t * Reg.t * int
  | Slti of Reg.t * Reg.t * int
  | Andi of Reg.t * Reg.t * int
  | Ori of Reg.t * Reg.t * int
  | Xori of Reg.t * Reg.t * int
  | Lui of Reg.t * int
  | Lw of Reg.t * Reg.t * int
  | Lb of Reg.t * Reg.t * int
  | Sw of Reg.t * Reg.t * int
  | Sb of Reg.t * Reg.t * int
  | Beq of Reg.t * Reg.t * int
  | Bne of Reg.t * Reg.t * int
  | Blez of Reg.t * int
  | Bgtz of Reg.t * int
  | J of int
  | Jal of int
  | Jr of Reg.t
  | Jalr of Reg.t * Reg.t
  | Syscall
  | Break

let nop = Sll (0, 0, 0)

let check_reg r = if r < 0 || r > 31 then failwith "Insn.encode: bad register"

let check_u name v bits =
  if v < 0 || v >= 1 lsl bits then
    failwith (Printf.sprintf "Insn.encode: %s out of range: %d" name v)

let imm16_signed v =
  if v < -0x8000 || v > 0x7FFF then
    failwith (Printf.sprintf "Insn.encode: signed imm16 out of range: %d" v)
  else v land 0xFFFF

let r_type funct rs rt rd shamt =
  check_reg rs;
  check_reg rt;
  check_reg rd;
  check_u "shamt" shamt 5;
  (rs lsl 21) lor (rt lsl 16) lor (rd lsl 11) lor (shamt lsl 6) lor funct

let i_type op rs rt imm =
  check_reg rs;
  check_reg rt;
  (op lsl 26) lor (rs lsl 21) lor (rt lsl 16) lor (imm land 0xFFFF)

let j_type op target =
  check_u "jump target" target 26;
  (op lsl 26) lor target

let encode = function
  | Sll (rd, rt, sh) -> r_type 0 0 rt rd sh
  | Srl (rd, rt, sh) -> r_type 2 0 rt rd sh
  | Sra (rd, rt, sh) -> r_type 3 0 rt rd sh
  | Jr rs -> r_type 8 rs 0 0 0
  | Jalr (rd, rs) -> r_type 9 rs 0 rd 0
  | Syscall -> r_type 12 0 0 0 0
  | Break -> r_type 13 0 0 0 0
  | Mul (rd, rs, rt) -> r_type 24 rs rt rd 0
  | Div (rd, rs, rt) -> r_type 26 rs rt rd 0
  | Rem (rd, rs, rt) -> r_type 27 rs rt rd 0
  | Add (rd, rs, rt) -> r_type 32 rs rt rd 0
  | Sub (rd, rs, rt) -> r_type 34 rs rt rd 0
  | And (rd, rs, rt) -> r_type 36 rs rt rd 0
  | Or (rd, rs, rt) -> r_type 37 rs rt rd 0
  | Xor (rd, rs, rt) -> r_type 38 rs rt rd 0
  | Slt (rd, rs, rt) -> r_type 42 rs rt rd 0
  | Sltu (rd, rs, rt) -> r_type 43 rs rt rd 0
  | J target -> j_type 2 target
  | Jal target -> j_type 3 target
  | Beq (rs, rt, off) -> i_type 4 rs rt (imm16_signed off)
  | Bne (rs, rt, off) -> i_type 5 rs rt (imm16_signed off)
  | Blez (rs, off) -> i_type 6 rs 0 (imm16_signed off)
  | Bgtz (rs, off) -> i_type 7 rs 0 (imm16_signed off)
  | Addi (rt, rs, imm) -> i_type 8 rs rt (imm16_signed imm)
  | Slti (rt, rs, imm) -> i_type 10 rs rt (imm16_signed imm)
  | Andi (rt, rs, imm) ->
    check_u "imm16" imm 16;
    i_type 12 rs rt imm
  | Ori (rt, rs, imm) ->
    check_u "imm16" imm 16;
    i_type 13 rs rt imm
  | Xori (rt, rs, imm) ->
    check_u "imm16" imm 16;
    i_type 14 rs rt imm
  | Lui (rt, imm) ->
    check_u "imm16" imm 16;
    i_type 15 0 rt imm
  | Lb (rt, base, off) -> i_type 32 base rt (imm16_signed off)
  | Lw (rt, base, off) -> i_type 35 base rt (imm16_signed off)
  | Sb (rt, base, off) -> i_type 40 base rt (imm16_signed off)
  | Sw (rt, base, off) -> i_type 43 base rt (imm16_signed off)

let sext16 = Hemlock_util.Codec.sext16

let decode word =
  let op = (word lsr 26) land 0x3F in
  let rs = (word lsr 21) land 0x1F in
  let rt = (word lsr 16) land 0x1F in
  let rd = (word lsr 11) land 0x1F in
  let shamt = (word lsr 6) land 0x1F in
  let funct = word land 0x3F in
  let imm = word land 0xFFFF in
  let target = word land 0x3FF_FFFF in
  match op with
  | 0 -> (
    match funct with
    | 0 -> Sll (rd, rt, shamt)
    | 2 -> Srl (rd, rt, shamt)
    | 3 -> Sra (rd, rt, shamt)
    | 8 -> Jr rs
    | 9 -> Jalr (rd, rs)
    | 12 -> Syscall
    | 13 -> Break
    | 24 -> Mul (rd, rs, rt)
    | 26 -> Div (rd, rs, rt)
    | 27 -> Rem (rd, rs, rt)
    | 32 -> Add (rd, rs, rt)
    | 34 -> Sub (rd, rs, rt)
    | 36 -> And (rd, rs, rt)
    | 37 -> Or (rd, rs, rt)
    | 38 -> Xor (rd, rs, rt)
    | 42 -> Slt (rd, rs, rt)
    | 43 -> Sltu (rd, rs, rt)
    | f -> failwith (Printf.sprintf "Insn.decode: bad funct %d" f))
  | 2 -> J target
  | 3 -> Jal target
  | 4 -> Beq (rs, rt, sext16 imm)
  | 5 -> Bne (rs, rt, sext16 imm)
  | 6 -> Blez (rs, sext16 imm)
  | 7 -> Bgtz (rs, sext16 imm)
  | 8 -> Addi (rt, rs, sext16 imm)
  | 10 -> Slti (rt, rs, sext16 imm)
  | 12 -> Andi (rt, rs, imm)
  | 13 -> Ori (rt, rs, imm)
  | 14 -> Xori (rt, rs, imm)
  | 15 -> Lui (rt, imm)
  | 32 -> Lb (rt, rs, sext16 imm)
  | 35 -> Lw (rt, rs, sext16 imm)
  | 40 -> Sb (rt, rs, sext16 imm)
  | 43 -> Sw (rt, rs, sext16 imm)
  | op -> failwith (Printf.sprintf "Insn.decode: bad opcode %d" op)

let region_mask = 0xF000_0000

let jump_in_range ~pc ~target =
  target land 3 = 0 && (pc + 4) land region_mask = target land region_mask

let jump_field ~target = (target land lnot region_mask) lsr 2

let jump_target ~pc field = ((pc + 4) land region_mask) lor (field lsl 2)

let pp ppf insn =
  let r = Reg.name in
  let p fmt = Format.fprintf ppf fmt in
  match insn with
  | Sll (rd, rt, sh) -> p "sll %s, %s, %d" (r rd) (r rt) sh
  | Srl (rd, rt, sh) -> p "srl %s, %s, %d" (r rd) (r rt) sh
  | Sra (rd, rt, sh) -> p "sra %s, %s, %d" (r rd) (r rt) sh
  | Add (rd, rs, rt) -> p "add %s, %s, %s" (r rd) (r rs) (r rt)
  | Sub (rd, rs, rt) -> p "sub %s, %s, %s" (r rd) (r rs) (r rt)
  | Mul (rd, rs, rt) -> p "mul %s, %s, %s" (r rd) (r rs) (r rt)
  | Div (rd, rs, rt) -> p "div %s, %s, %s" (r rd) (r rs) (r rt)
  | Rem (rd, rs, rt) -> p "rem %s, %s, %s" (r rd) (r rs) (r rt)
  | And (rd, rs, rt) -> p "and %s, %s, %s" (r rd) (r rs) (r rt)
  | Or (rd, rs, rt) -> p "or %s, %s, %s" (r rd) (r rs) (r rt)
  | Xor (rd, rs, rt) -> p "xor %s, %s, %s" (r rd) (r rs) (r rt)
  | Slt (rd, rs, rt) -> p "slt %s, %s, %s" (r rd) (r rs) (r rt)
  | Sltu (rd, rs, rt) -> p "sltu %s, %s, %s" (r rd) (r rs) (r rt)
  | Addi (rt, rs, imm) -> p "addi %s, %s, %d" (r rt) (r rs) imm
  | Slti (rt, rs, imm) -> p "slti %s, %s, %d" (r rt) (r rs) imm
  | Andi (rt, rs, imm) -> p "andi %s, %s, 0x%x" (r rt) (r rs) imm
  | Ori (rt, rs, imm) -> p "ori %s, %s, 0x%x" (r rt) (r rs) imm
  | Xori (rt, rs, imm) -> p "xori %s, %s, 0x%x" (r rt) (r rs) imm
  | Lui (rt, imm) -> p "lui %s, 0x%x" (r rt) imm
  | Lw (rt, base, off) -> p "lw %s, %d(%s)" (r rt) off (r base)
  | Lb (rt, base, off) -> p "lb %s, %d(%s)" (r rt) off (r base)
  | Sw (rt, base, off) -> p "sw %s, %d(%s)" (r rt) off (r base)
  | Sb (rt, base, off) -> p "sb %s, %d(%s)" (r rt) off (r base)
  | Beq (rs, rt, off) -> p "beq %s, %s, %d" (r rs) (r rt) off
  | Bne (rs, rt, off) -> p "bne %s, %s, %d" (r rs) (r rt) off
  | Blez (rs, off) -> p "blez %s, %d" (r rs) off
  | Bgtz (rs, off) -> p "bgtz %s, %d" (r rs) off
  | J target -> p "j 0x%x" (target lsl 2)
  | Jal target -> p "jal 0x%x" (target lsl 2)
  | Jr rs -> p "jr %s" (r rs)
  | Jalr (rd, rs) -> p "jalr %s, %s" (r rd) (r rs)
  | Syscall -> p "syscall"
  | Break -> p "break"

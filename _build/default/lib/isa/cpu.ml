module As = Hemlock_vm.Address_space
module Codec = Hemlock_util.Codec
module Stats = Hemlock_util.Stats

type t = { regs : int array; mutable pc : int }

type status = Running | Halted of int

exception Cpu_error of { pc : int; msg : string }

let create ~entry ~sp =
  let regs = Array.make 32 0 in
  regs.(Reg.sp) <- sp;
  { regs; pc = entry }

let reg t r = t.regs.(r)

let set_reg t r v = if r <> 0 then t.regs.(r) <- Codec.mask32 v

let signed t r = Codec.sext32 t.regs.(r)

let error t msg = raise (Cpu_error { pc = t.pc; msg })

let step t space ~syscall =
  let pc = t.pc in
  let word = As.fetch space pc in
  let insn =
    match Insn.decode word with
    | insn -> insn
    | exception Failure msg -> error t msg
  in
  Stats.global.instructions <- Stats.global.instructions + 1;
  let next = pc + 4 in
  let branch off taken = if taken then next + (off * 4) else next in
  match insn with
  | Insn.Break -> Halted (Codec.sext32 t.regs.(Reg.a0))
  | Insn.Syscall ->
    t.pc <- next;
    Stats.global.syscalls <- Stats.global.syscalls + 1;
    syscall t;
    Running
  | insn ->
    let next =
      match insn with
      | Insn.Sll (rd, rt, sh) ->
        set_reg t rd (t.regs.(rt) lsl sh);
        next
      | Insn.Srl (rd, rt, sh) ->
        set_reg t rd (t.regs.(rt) lsr sh);
        next
      | Insn.Sra (rd, rt, sh) ->
        set_reg t rd (Codec.sext32 t.regs.(rt) asr sh);
        next
      | Insn.Add (rd, rs, rt) ->
        set_reg t rd (t.regs.(rs) + t.regs.(rt));
        next
      | Insn.Sub (rd, rs, rt) ->
        set_reg t rd (t.regs.(rs) - t.regs.(rt));
        next
      | Insn.Mul (rd, rs, rt) ->
        set_reg t rd (signed t rs * signed t rt);
        next
      | Insn.Div (rd, rs, rt) ->
        if t.regs.(rt) = 0 then error t "division by zero";
        set_reg t rd (signed t rs / signed t rt);
        next
      | Insn.Rem (rd, rs, rt) ->
        if t.regs.(rt) = 0 then error t "remainder by zero";
        set_reg t rd (signed t rs mod signed t rt);
        next
      | Insn.And (rd, rs, rt) ->
        set_reg t rd (t.regs.(rs) land t.regs.(rt));
        next
      | Insn.Or (rd, rs, rt) ->
        set_reg t rd (t.regs.(rs) lor t.regs.(rt));
        next
      | Insn.Xor (rd, rs, rt) ->
        set_reg t rd (t.regs.(rs) lxor t.regs.(rt));
        next
      | Insn.Slt (rd, rs, rt) ->
        set_reg t rd (if signed t rs < signed t rt then 1 else 0);
        next
      | Insn.Sltu (rd, rs, rt) ->
        set_reg t rd (if t.regs.(rs) < t.regs.(rt) then 1 else 0);
        next
      | Insn.Addi (rt, rs, imm) ->
        set_reg t rt (t.regs.(rs) + imm);
        next
      | Insn.Slti (rt, rs, imm) ->
        set_reg t rt (if signed t rs < imm then 1 else 0);
        next
      | Insn.Andi (rt, rs, imm) ->
        set_reg t rt (t.regs.(rs) land imm);
        next
      | Insn.Ori (rt, rs, imm) ->
        set_reg t rt (t.regs.(rs) lor imm);
        next
      | Insn.Xori (rt, rs, imm) ->
        set_reg t rt (t.regs.(rs) lxor imm);
        next
      | Insn.Lui (rt, imm) ->
        set_reg t rt (imm lsl 16);
        next
      | Insn.Lw (rt, base, off) ->
        set_reg t rt (As.load_u32 space (Codec.mask32 (t.regs.(base) + off)));
        next
      | Insn.Lb (rt, base, off) ->
        set_reg t rt (As.load_u8 space (Codec.mask32 (t.regs.(base) + off)));
        next
      | Insn.Sw (rt, base, off) ->
        As.store_u32 space (Codec.mask32 (t.regs.(base) + off)) t.regs.(rt);
        next
      | Insn.Sb (rt, base, off) ->
        As.store_u8 space (Codec.mask32 (t.regs.(base) + off)) (t.regs.(rt) land 0xFF);
        next
      | Insn.Beq (rs, rt, off) -> branch off (t.regs.(rs) = t.regs.(rt))
      | Insn.Bne (rs, rt, off) -> branch off (t.regs.(rs) <> t.regs.(rt))
      | Insn.Blez (rs, off) -> branch off (signed t rs <= 0)
      | Insn.Bgtz (rs, off) -> branch off (signed t rs > 0)
      | Insn.J field -> Insn.jump_target ~pc field
      | Insn.Jal field ->
        set_reg t Reg.ra next;
        Insn.jump_target ~pc field
      | Insn.Jr rs -> t.regs.(rs)
      | Insn.Jalr (rd, rs) ->
        let target = t.regs.(rs) in
        set_reg t rd next;
        target
      | Insn.Syscall | Insn.Break -> assert false
    in
    t.pc <- next;
    Running

let run ~fuel t space ~syscall =
  let rec go n = if n = 0 then Running else
    match step t space ~syscall with
    | Running -> go (n - 1)
    | Halted code -> Halted code
  in
  go fuel

let pp ppf t =
  Format.fprintf ppf "@[<v>pc = 0x%08x@," t.pc;
  for i = 0 to 31 do
    if t.regs.(i) <> 0 then
      Format.fprintf ppf "%-5s = 0x%08x@," (Reg.name i) t.regs.(i)
  done;
  Format.fprintf ppf "@]"

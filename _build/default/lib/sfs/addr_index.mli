(** The 64-bit address→segment translation design (§3 "Address Space and
    File System Organization", forward-looking part).

    On the 32-bit prototype every shared file occupies a fixed 1 MB slot
    and the kernel keeps a linear table indexed by slot.  The paper's
    64-bit plan gives {e every} segment a unique system-wide address of
    arbitrary size, with the inodes "linked into a lookup structure —
    most likely a B-tree".  This module implements the translation index
    with both backends so the trade-off can be measured (experiment
    E12): a linear scan like the prototype's, and the planned
    {!Btree}. *)

type backend = Linear | Btree_index

type t

val create : backend -> t

val backend_to_string : backend -> string

val size : t -> int

(** [register t ~base ~bytes path] records a segment.
    @raise Invalid_argument when it overlaps an existing registration. *)
val register : t -> base:int -> bytes:int -> string -> unit

(** [unregister t ~base] removes the segment registered at [base];
    returns whether one was. *)
val unregister : t -> base:int -> bool

(** [translate t addr] is the (path, offset within segment) for the
    segment containing [addr] — the query the SIGSEGV handler makes.
    Counts one probe per inspected entry in {!probes}. *)
val translate : t -> int -> (string * int) option

(** Cumulative number of entries inspected by [translate] calls (the
    deterministic cost measure for E12). *)
val probes : t -> int

val reset_probes : t -> unit

lib/sfs/btree.ml: Array List

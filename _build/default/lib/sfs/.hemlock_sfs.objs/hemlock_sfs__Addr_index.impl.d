lib/sfs/addr_index.ml: Btree List

lib/sfs/fs.ml: Array Bytes Hashtbl Hemlock_util Hemlock_vm List Option Path Printf String

lib/sfs/path.ml: Format List String

lib/sfs/btree.mli:

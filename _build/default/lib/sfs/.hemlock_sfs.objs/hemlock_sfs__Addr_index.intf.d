lib/sfs/addr_index.mli:

lib/sfs/path.mli: Format

lib/sfs/fs.mli: Bytes Hemlock_vm Path

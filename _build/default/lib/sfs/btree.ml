(* Cormen-Leiserson-Rivest-Stein B-tree with preemptive splitting on the
   way down for insertion, and the borrow/merge discipline for deletion. *)

let min_degree = 4

let max_keys = (2 * min_degree) - 1
let min_keys = min_degree - 1

type 'a node = {
  mutable keys : (int * 'a) array; (* sorted by key *)
  mutable children : 'a node array; (* [||] for leaves, else |keys|+1 *)
}

type 'a t = { mutable root : 'a node; mutable size : int }

let leaf node = Array.length node.children = 0

let create () = { root = { keys = [||]; children = [||] }; size = 0 }

let size t = t.size

(* Index of the first key >= k, or |keys| if none. *)
let lower_bound node k =
  let n = Array.length node.keys in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if fst node.keys.(mid) < k then go (mid + 1) hi else go lo mid
  in
  go 0 n

let rec find_in node k =
  let i = lower_bound node k in
  if i < Array.length node.keys && fst node.keys.(i) = k then Some (snd node.keys.(i))
  else if leaf node then None
  else find_in node.children.(i) k

let find t k = find_in t.root k

let mem t k = find t k <> None

let rec find_leq_in node k best =
  let i = lower_bound node k in
  if i < Array.length node.keys && fst node.keys.(i) = k then Some node.keys.(i)
  else
    (* keys.(i-1) < k < keys.(i): the candidate is keys.(i-1); recurse
       into child i for a closer one. *)
    let best = if i > 0 then Some node.keys.(i - 1) else best in
    if leaf node then best else find_leq_in node.children.(i) k best

let find_leq t k = find_leq_in t.root k None

(* ----- insertion ----- *)

let array_insert arr i x =
  let n = Array.length arr in
  Array.init (n + 1) (fun j -> if j < i then arr.(j) else if j = i then x else arr.(j - 1))

let array_remove arr i =
  let n = Array.length arr in
  Array.init (n - 1) (fun j -> if j < i then arr.(j) else arr.(j + 1))

(* Split the full child [child] of [parent] at child index [ci]. *)
let split_child parent ci =
  let child = parent.children.(ci) in
  let mid = min_keys in
  let median = child.keys.(mid) in
  let right =
    {
      keys = Array.sub child.keys (mid + 1) (max_keys - mid - 1);
      children =
        (if leaf child then [||] else Array.sub child.children (mid + 1) (max_keys - mid));
    }
  in
  child.keys <- Array.sub child.keys 0 mid;
  if not (leaf child) then child.children <- Array.sub child.children 0 (mid + 1);
  parent.keys <- array_insert parent.keys ci median;
  parent.children <- array_insert parent.children (ci + 1) right

let rec insert_nonfull node k v =
  let i = lower_bound node k in
  if i < Array.length node.keys && fst node.keys.(i) = k then begin
    node.keys.(i) <- (k, v);
    false (* replaced, no growth *)
  end
  else if leaf node then begin
    node.keys <- array_insert node.keys i (k, v);
    true
  end
  else begin
    let i =
      if Array.length node.children.(i).keys = max_keys then begin
        split_child node i;
        (* the median moved up into position i *)
        if k = fst node.keys.(i) then i
        else if k > fst node.keys.(i) then i + 1
        else i
      end
      else i
    in
    if i < Array.length node.keys && fst node.keys.(i) = k then begin
      node.keys.(i) <- (k, v);
      false
    end
    else insert_nonfull node.children.(i) k v
  end

let insert t k v =
  if Array.length t.root.keys = max_keys then begin
    let old_root = t.root in
    let new_root = { keys = [||]; children = [| old_root |] } in
    split_child new_root 0;
    t.root <- new_root
  end;
  if insert_nonfull t.root k v then t.size <- t.size + 1

(* ----- deletion ----- *)

let rec max_binding_of node =
  if leaf node then node.keys.(Array.length node.keys - 1)
  else max_binding_of node.children.(Array.length node.children - 1)

let rec min_binding_of node =
  if leaf node then node.keys.(0) else min_binding_of node.children.(0)

(* Merge child ci, parent key ci, child ci+1 into one node. *)
let merge_children node ci =
  let left = node.children.(ci) in
  let right = node.children.(ci + 1) in
  left.keys <- Array.concat [ left.keys; [| node.keys.(ci) |]; right.keys ];
  if not (leaf left) then left.children <- Array.append left.children right.children;
  node.keys <- array_remove node.keys ci;
  node.children <- array_remove node.children (ci + 1)

(* Ensure child [ci] of [node] has > min_keys keys before descending. *)
let fill_child node ci =
  let child = node.children.(ci) in
  if Array.length child.keys <= min_keys then begin
    let borrow_left =
      ci > 0 && Array.length node.children.(ci - 1).keys > min_keys
    in
    let borrow_right =
      ci < Array.length node.children - 1
      && Array.length node.children.(ci + 1).keys > min_keys
    in
    if borrow_left then begin
      let left = node.children.(ci - 1) in
      let n = Array.length left.keys in
      child.keys <- array_insert child.keys 0 node.keys.(ci - 1);
      node.keys.(ci - 1) <- left.keys.(n - 1);
      left.keys <- Array.sub left.keys 0 (n - 1);
      if not (leaf left) then begin
        let moved = left.children.(Array.length left.children - 1) in
        left.children <- Array.sub left.children 0 (Array.length left.children - 1);
        child.children <- array_insert child.children 0 moved
      end
    end
    else if borrow_right then begin
      let right = node.children.(ci + 1) in
      child.keys <- array_insert child.keys (Array.length child.keys) node.keys.(ci);
      node.keys.(ci) <- right.keys.(0);
      right.keys <- array_remove right.keys 0;
      if not (leaf right) then begin
        let moved = right.children.(0) in
        right.children <- array_remove right.children 0;
        child.children <- array_insert child.children (Array.length child.children) moved
      end
    end
    else if ci > 0 then merge_children node (ci - 1)
    else merge_children node ci
  end

let rec remove_from node k =
  let i = lower_bound node k in
  if i < Array.length node.keys && fst node.keys.(i) = k then
    if leaf node then begin
      node.keys <- array_remove node.keys i;
      true
    end
    else if Array.length node.children.(i).keys > min_keys then begin
      (* replace with predecessor from the left subtree *)
      let pred = max_binding_of node.children.(i) in
      node.keys.(i) <- pred;
      ignore (remove_from node.children.(i) (fst pred));
      true
    end
    else if Array.length node.children.(i + 1).keys > min_keys then begin
      let succ = min_binding_of node.children.(i + 1) in
      node.keys.(i) <- succ;
      ignore (remove_from node.children.(i + 1) (fst succ));
      true
    end
    else begin
      merge_children node i;
      remove_from node.children.(i) k
    end
  else if leaf node then false
  else begin
    fill_child node i;
    (* fill may have shifted the structure: recompute the descent *)
    let i = lower_bound node k in
    if i < Array.length node.keys && fst node.keys.(i) = k then remove_from node k
    else remove_from node.children.(min i (Array.length node.children - 1)) k
  end

let remove t k =
  let removed = remove_from t.root k in
  if removed then t.size <- t.size - 1;
  (* The descent may restructure (merge the root's children) even when
     the key turns out to be absent, so shrink unconditionally. *)
  if Array.length t.root.keys = 0 && not (leaf t.root) then t.root <- t.root.children.(0);
  removed

(* ----- traversal ----- *)

let rec iter_node f node =
  let n = Array.length node.keys in
  if leaf node then Array.iter (fun (k, v) -> f k v) node.keys
  else begin
    for i = 0 to n - 1 do
      iter_node f node.children.(i);
      let k, v = node.keys.(i) in
      f k v
    done;
    iter_node f node.children.(n)
  end

let iter f t = iter_node f t.root

let to_list t =
  let acc = ref [] in
  iter (fun k v -> acc := (k, v) :: !acc) t;
  List.rev !acc

let min_binding t = if t.size = 0 then None else Some (min_binding_of t.root)
let max_binding t = if t.size = 0 then None else Some (max_binding_of t.root)

(* ----- invariants ----- *)

let check_invariants t =
  let rec depth node = if leaf node then 0 else 1 + depth node.children.(0) in
  let d = depth t.root in
  let rec check node ~is_root ~lo ~hi level =
    let n = Array.length node.keys in
    if (not is_root) && n < min_keys then failwith "btree: underfull node";
    if n > max_keys then failwith "btree: overfull node";
    if is_root && n = 0 && not (leaf node) then failwith "btree: empty internal root";
    for i = 0 to n - 1 do
      let k = fst node.keys.(i) in
      (match lo with Some l when k <= l -> failwith "btree: key order (lo)" | _ -> ());
      (match hi with Some h when k >= h -> failwith "btree: key order (hi)" | _ -> ());
      if i > 0 && fst node.keys.(i - 1) >= k then failwith "btree: unsorted keys"
    done;
    if leaf node then begin
      if level <> d then failwith "btree: leaves at different depths"
    end
    else begin
      if Array.length node.children <> n + 1 then failwith "btree: child count";
      for i = 0 to n do
        let lo = if i = 0 then lo else Some (fst node.keys.(i - 1)) in
        let hi = if i = n then hi else Some (fst node.keys.(i)) in
        check node.children.(i) ~is_root:false ~lo ~hi (level + 1)
      done
    end
  in
  check t.root ~is_root:true ~lo:None ~hi:None 0;
  let count = ref 0 in
  iter (fun _ _ -> incr count) t;
  if !count <> t.size then failwith "btree: size mismatch"

type t = string list

let root = []

let of_string ~cwd s =
  let parts = String.split_on_char '/' s in
  let start = if String.length s > 0 && s.[0] = '/' then [] else cwd in
  let step acc = function
    | "" | "." -> acc
    | ".." -> ( match acc with [] -> [] | _ :: rest -> rest)
    | comp -> comp :: acc
  in
  List.rev (List.fold_left step (List.rev start) parts)

let to_string = function [] -> "/" | comps -> "/" ^ String.concat "/" comps

let basename = function
  | [] -> invalid_arg "Path.basename: root has no basename"
  | comps -> List.nth comps (List.length comps - 1)

let parent = function
  | [] -> invalid_arg "Path.parent: root has no parent"
  | comps -> List.filteri (fun i _ -> i < List.length comps - 1) comps

let append p name = p @ [ name ]

let rec is_prefix ~prefix p =
  match (prefix, p) with
  | [], _ -> true
  | _, [] -> false
  | a :: pre, b :: rest -> String.equal a b && is_prefix ~prefix:pre rest

let pp ppf p = Format.pp_print_string ppf (to_string p)

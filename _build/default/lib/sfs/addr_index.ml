type backend = Linear | Btree_index

type entry = { e_base : int; e_bytes : int; e_path : string }

type repr =
  | Lin of entry list ref (* unordered, scanned in full: the prototype *)
  | Bt of entry Btree.t

type t = { repr : repr; mutable probes : int; mutable count : int }

let backend_to_string = function Linear -> "linear" | Btree_index -> "b-tree"

let create = function
  | Linear -> { repr = Lin (ref []); probes = 0; count = 0 }
  | Btree_index -> { repr = Bt (Btree.create ()); probes = 0; count = 0 }

let size t = t.count

let overlaps a b = a.e_base < b.e_base + b.e_bytes && b.e_base < a.e_base + a.e_bytes

let register t ~base ~bytes path =
  if bytes <= 0 then invalid_arg "Addr_index.register: empty segment";
  let entry = { e_base = base; e_bytes = bytes; e_path = path } in
  (match t.repr with
  | Lin entries ->
    if List.exists (overlaps entry) !entries then
      invalid_arg "Addr_index.register: overlap";
    entries := entry :: !entries
  | Bt bt ->
    (* neighbours on either side are the only overlap candidates *)
    (match Btree.find_leq bt (base + bytes - 1) with
    | Some (_, other) when overlaps entry other -> invalid_arg "Addr_index.register: overlap"
    | _ -> ());
    Btree.insert bt base entry);
  t.count <- t.count + 1

let unregister t ~base =
  let removed =
    match t.repr with
    | Lin entries ->
      let before = List.length !entries in
      entries := List.filter (fun e -> e.e_base <> base) !entries;
      List.length !entries < before
    | Bt bt -> Btree.remove bt base
  in
  if removed then t.count <- t.count - 1;
  removed

let translate t addr =
  match t.repr with
  | Lin entries ->
    (* The prototype's approach: walk the whole table. *)
    let rec scan = function
      | [] -> None
      | e :: rest ->
        t.probes <- t.probes + 1;
        if addr >= e.e_base && addr < e.e_base + e.e_bytes then
          Some (e.e_path, addr - e.e_base)
        else scan rest
    in
    scan !entries
  | Bt bt -> (
    (* O(log n): predecessor search, ~log2(n)/log2(2t) node probes. *)
    t.probes <- t.probes + max 1 (int_of_float (ceil (log (float_of_int (max 2 t.count)) /. log 7.)));
    match Btree.find_leq bt addr with
    | Some (_, e) when addr < e.e_base + e.e_bytes -> Some (e.e_path, addr - e.e_base)
    | Some _ | None -> None)

let probes t = t.probes

let reset_probes t = t.probes <- 0

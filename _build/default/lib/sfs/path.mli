(** Unix-style path strings.  A path is absolute ("/a/b") or relative
    ("a/b", resolved against a supplied working directory).  Components
    "." and ".." are normalised lexically. *)

type t = string list
(** Normalised absolute path as a component list; [\[\]] is the root. *)

(** [of_string ~cwd s] parses and normalises [s]; relative paths are
    resolved against [cwd] (itself absolute). *)
val of_string : cwd:t -> string -> t

val to_string : t -> string

(** [basename p] is the final component. @raise Invalid_argument on root. *)
val basename : t -> string

(** [parent p] drops the final component. @raise Invalid_argument on root. *)
val parent : t -> t

val append : t -> string -> t

(** [is_prefix ~prefix p] is true when [p] lies at or under [prefix]. *)
val is_prefix : prefix:t -> t -> bool

val root : t
val pp : Format.formatter -> t -> unit

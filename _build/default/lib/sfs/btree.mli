(** A B-tree keyed by integers, with predecessor search.

    The paper's 32-bit prototype maps addresses to files with a linear
    lookup table rebuilt at boot ("for the sake of simplicity").  For
    the planned 64-bit system it says: "we will abandon the linear
    lookup table ... we will add an address field to the on-disk version
    of each inode, and will link these inodes into a lookup structure —
    most likely a B-tree".  This module is that structure: segments of
    arbitrary size are registered by base address, and translating a
    faulting address means finding the greatest base <= the address —
    the {!find_leq} operation — in O(log n) instead of O(slots).

    Imperative, as an in-kernel index would be.  Classic Cormen-style
    B-tree with minimum degree {!min_degree}. *)

type 'a t

(** Minimum degree: nodes hold between [min_degree - 1] and
    [2 * min_degree - 1] keys (except the root). *)
val min_degree : int

val create : unit -> 'a t

val size : 'a t -> int

(** [insert t key v] adds or replaces the binding. *)
val insert : 'a t -> int -> 'a -> unit

val find : 'a t -> int -> 'a option

(** [find_leq t key] is the binding with the greatest key [<= key] —
    the address-translation query. *)
val find_leq : 'a t -> int -> (int * 'a) option

val mem : 'a t -> int -> bool

(** [remove t key] deletes the binding if present; returns whether it
    was. *)
val remove : 'a t -> int -> bool

(** In-order traversal. *)
val iter : (int -> 'a -> unit) -> 'a t -> unit

val to_list : 'a t -> (int * 'a) list

val min_binding : 'a t -> (int * 'a) option
val max_binding : 'a t -> (int * 'a) option

(** Structural invariants (key ordering, occupancy bounds, uniform leaf
    depth) — used by the property tests.  @raise Failure on violation. *)
val check_invariants : 'a t -> unit

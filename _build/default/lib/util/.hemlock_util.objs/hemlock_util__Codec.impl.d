lib/util/codec.ml: Buffer Bytes Char String

lib/util/interval_map.mli:

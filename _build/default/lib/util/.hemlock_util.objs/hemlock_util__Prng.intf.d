lib/util/prng.mli:

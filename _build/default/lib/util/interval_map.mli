(** Maps over half-open integer intervals [\[lo, hi)] with non-overlapping
    keys.  Used for address-space mapping tables and the shared file
    system's address lookup table.  All operations are purely functional. *)

type 'a t

val empty : 'a t

val is_empty : 'a t -> bool

val cardinal : 'a t -> int

(** [add ~lo ~hi v t] binds the interval [\[lo, hi)] to [v].
    @raise Invalid_argument if [lo >= hi] or the interval overlaps an
    existing binding. *)
val add : lo:int -> hi:int -> 'a -> 'a t -> 'a t

(** [overlaps ~lo ~hi t] is [true] iff [\[lo, hi)] intersects any bound
    interval. *)
val overlaps : lo:int -> hi:int -> 'a t -> bool

(** [find p t] returns the binding whose interval contains point [p]. *)
val find : int -> 'a t -> (int * int * 'a) option

(** [find_exn p t] is like {!find} but raises [Not_found]. *)
val find_exn : int -> 'a t -> int * int * 'a

val mem : int -> 'a t -> bool

(** [remove p t] removes the binding whose interval contains [p] (no-op
    when there is none). *)
val remove : int -> 'a t -> 'a t

(** [update p f t] replaces the value of the binding containing [p].
    @raise Not_found when no binding contains [p]. *)
val update : int -> ('a -> 'a) -> 'a t -> 'a t

val iter : (int -> int -> 'a -> unit) -> 'a t -> unit

val fold : (int -> int -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b

(** Bindings in increasing interval order as [(lo, hi, v)]. *)
val to_list : 'a t -> (int * int * 'a) list

(** [first_gap ~lo ~hi ~size t] finds the lowest [base >= lo] such that
    [\[base, base+size)] fits inside [\[lo, hi)] without overlapping any
    binding, if one exists. *)
val first_gap : lo:int -> hi:int -> size:int -> 'a t -> int option

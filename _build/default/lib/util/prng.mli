(** Deterministic splitmix64 PRNG.  Workload generators use this rather
    than [Random] so every experiment is exactly reproducible. *)

type t

val create : seed:int -> t

(** Next raw 64-bit value (as a non-negative 62-bit OCaml int). *)
val next : t -> int

(** [int t n] is uniform in [\[0, n)]. @raise Invalid_argument if [n <= 0]. *)
val int : t -> int -> int

(** [range t lo hi] is uniform in [\[lo, hi)]. *)
val range : t -> int -> int -> int

val bool : t -> bool

(** [float t] is uniform in [\[0, 1)]. *)
val float : t -> float

(** Uniform choice from a non-empty array. *)
val choose : t -> 'a array -> 'a

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit

module Ast = Hemlock_cc.Ast

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ----- s-expression reader ----- *)

type sexp = Atom of string | Str of string | List of sexp list

let read_sexps src =
  let n = String.length src in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      incr pos;
      skip_ws ()
    | Some ';' ->
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done;
      skip_ws ()
    | Some _ | None -> ()
  in
  let atom_char c =
    not (c = '(' || c = ')' || c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = ';' || c = '"')
  in
  let rec parse () =
    skip_ws ();
    match peek () with
    | None -> errf "unexpected end of input"
    | Some '(' ->
      incr pos;
      let rec items acc =
        skip_ws ();
        match peek () with
        | Some ')' ->
          incr pos;
          List (List.rev acc)
        | None -> errf "unterminated list"
        | Some _ -> items (parse () :: acc)
      in
      items []
    | Some ')' -> errf "unexpected )"
    | Some '"' ->
      incr pos;
      let buf = Buffer.create 16 in
      let rec scan () =
        match peek () with
        | None -> errf "unterminated string"
        | Some '"' -> incr pos
        | Some '\\' ->
          incr pos;
          (match peek () with
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some '"' -> Buffer.add_char buf '"'
          | Some '\\' -> Buffer.add_char buf '\\'
          | Some c -> errf "bad escape \\%c" c
          | None -> errf "unterminated escape");
          incr pos;
          scan ()
        | Some c ->
          Buffer.add_char buf c;
          incr pos;
          scan ()
      in
      scan ();
      Str (Buffer.contents buf)
    | Some _ ->
      let start = !pos in
      while (match peek () with Some c when atom_char c -> true | _ -> false) do
        incr pos
      done;
      if !pos = start then errf "stray character %C" src.[start];
      Atom (String.sub src start (!pos - start))
  in
  let rec top acc =
    skip_ws ();
    if !pos >= n then List.rev acc else top (parse () :: acc)
  in
  top []

(* ----- translation to the common AST -----

   Lisp identifiers allow '-', which the assembler's symbol syntax does
   not; mangle dashes to underscores so (lock-acquire ...) meets the
   lock_acquire builtin and shared symbols match their C spellings. *)

let mangle name = String.map (fun c -> if c = '-' then '_' else c) name

let binops =
  [
    ("+", Ast.Add); ("-", Ast.Sub); ("*", Ast.Mul); ("/", Ast.Div); ("%", Ast.Rem);
    ("<", Ast.Lt); ("<=", Ast.Le); (">", Ast.Gt); (">=", Ast.Ge); ("=", Ast.Eq);
    ("!=", Ast.Ne); ("and", Ast.And); ("or", Ast.Or);
  ]

let rec expr = function
  | Atom a -> (
    match int_of_string_opt a with
    | Some v -> Ast.Num v
    | None -> Ast.Var (mangle a))
  | Str s -> Ast.Str s
  | List [] -> errf "empty application"
  | List (Atom op :: args) when List.mem_assoc op binops -> (
    let op_v = List.assoc op binops in
    match args with
    | [] -> errf "(%s) needs arguments" op
    | [ one ] when op = "-" -> Ast.Unary (Ast.Neg, expr one)
    | first :: rest ->
      (* left-fold n-ary applications: (+ a b c) = ((a+b)+c) *)
      List.fold_left (fun acc e -> Ast.Binary (op_v, acc, expr e)) (expr first) rest)
  | List [ Atom "not"; e ] -> Ast.Unary (Ast.Not, expr e)
  | List (Atom "if" :: _) ->
    errf "if is a statement form: use it in a body or as a function's final form"
  | List [ Atom "set!"; Atom v; e ] -> Ast.Assign (Ast.Var (mangle v), expr e)
  | List (Atom "begin" :: es) -> (
    match List.rev es with
    | [] -> errf "(begin) needs a body"
    | last :: _ ->
      ignore last;
      errf "begin is statement-only; use it inside defun bodies")
  | List (Atom f :: args) -> Ast.Call (mangle f, List.map expr args)
  | List (e :: _) -> errf "cannot apply %s" (match e with List _ -> "a list" | _ -> "that")

(* Statement-position forms: if/while/begin/set! get real control flow. *)
let rec stmt = function
  | List [ Atom "if"; c; t ] -> Ast.If (expr c, [ stmt t ], [])
  | List [ Atom "if"; c; t; e ] -> Ast.If (expr c, [ stmt t ], [ stmt e ])
  | List (Atom "while" :: c :: body) -> Ast.While (expr c, List.map stmt body)
  | List (Atom "begin" :: body) -> Ast.Block (List.map stmt body)
  | List [ Atom "let1"; Atom v; e ] -> Ast.Local (Ast.Int, mangle v, Some (expr e))
  | e -> Ast.Expr (expr e)

(* The final body form produces the return value; a final [if] (or
   [begin]) lowers to returns in each branch. *)
let rec returning = function
  | List [ Atom "if"; c; t ] -> [ Ast.If (expr c, returning t, [ Ast.Return None ]) ]
  | List [ Atom "if"; c; t; e ] -> [ Ast.If (expr c, returning t, returning e) ]
  | List (Atom "begin" :: body) -> body_with_return body
  | e -> [ Ast.Return (Some (expr e)) ]

and body_with_return body =
  match List.rev body with
  | [] -> errf "empty function body"
  | last :: rev_init -> List.rev_map stmt rev_init @ returning last

let func_body = body_with_return

let decl = function
  | List [ Atom "extern-var"; Atom name ] ->
    Ast.Global
      { g_ty = Ast.Int; g_name = mangle name; g_array = None; g_init = None; g_extern = true }
  | List [ Atom "extern-fun"; Atom _ ] ->
    (* like a C prototype: nothing to emit; calls are resolved by name *)
    Ast.Global { g_ty = Ast.Int; g_name = "__lisp_extern_fun"; g_array = None; g_init = None; g_extern = true }
  | List [ Atom "defvar"; Atom name; Atom v ] -> (
    match int_of_string_opt v with
    | Some init ->
      Ast.Global
        { g_ty = Ast.Int; g_name = mangle name; g_array = None; g_init = Some init; g_extern = false }
    | None -> errf "defvar %s needs a constant initialiser" name)
  | List (Atom "defun" :: List (Atom name :: params) :: body) ->
    let param (p : sexp) =
      match p with
      | Atom a -> (Ast.Int, mangle a)
      | Str _ | List _ -> errf "bad parameter in %s" name
    in
    Ast.Func
      {
        f_name = mangle name;
        f_params = List.map param params;
        f_body = func_body body;
        f_static = false;
      }
  | other ->
    errf "unknown top-level form: %s"
      (match other with
      | List (Atom a :: _) -> a
      | Atom a -> a
      | _ -> "?")

let to_program src = List.map decl (read_sexps src)

let to_asm src =
  match Hemlock_cc.Codegen.compile (to_program src) with
  | asm -> asm
  | exception Hemlock_cc.Codegen.Error msg -> raise (Error msg)

let to_object ~name src =
  match Hemlock_isa.Asm.assemble ~name (to_asm src) with
  | obj -> obj
  | exception Hemlock_isa.Asm.Error { line; msg } ->
    errf "generated asm line %d: %s" line msg

(** Hem-Lisp: a second source language for Hemlock modules.

    The paper (§3, §6) argues that "linker support for sharing
    capitalizes on the lowest common denominator for language
    implementations: the object file", and flags multi-language sharing
    of abstractions as the open "Language Heterogeneity" problem.  This
    front end demonstrates the mechanism: modules written in a Lisp
    dialect compile to the same template format as Hem-C, link against
    C modules (and vice versa), and share public variables with them —
    the linkers never know which compiler produced a module.

    Syntax:
    {v
      (extern-var counter)             ; shared/external variable
      (extern-fun bump)                ; external function
      (defvar total 0)                 ; global with constant initialiser
      (defun (add a b) (+ a b))        ; functions; last body form is the result
      (defun (main)
        (print-int (add (bump) total))
        (print-str "\n")
        0)
    v}

    Expressions: integer literals, variables, [(f args...)] calls,
    arithmetic [+ - * / %], comparisons [< <= > >= = !=], [and]/[or]
    (short-circuit), [not], [(if c then else)], [(while c body...)],
    [(set! v e)], [(begin e...)], and string literals (addresses of
    NUL-terminated data).  Everything is a 32-bit word, exactly as in
    Hem-C; the builtins ([print-int], [print-str], [fork], [getpid],
    [yield], [lock-acquire], ...) map to the same syscalls. *)

exception Error of string

(** Compile a translation unit to assembly text. *)
val to_asm : string -> string

(** Compile and assemble to a template object. *)
val to_object : name:string -> string -> Hemlock_obj.Objfile.t

lib/lisp/lisp.mli: Hemlock_obj

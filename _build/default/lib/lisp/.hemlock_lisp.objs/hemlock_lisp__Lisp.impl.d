lib/lisp/lisp.ml: Buffer Hemlock_cc Hemlock_isa List Printf String

(** The SunOS-style jump-table dynamic linker — the baseline Hemlock's
    fault-driven lazy linking is compared against (§3 "Lazy Dynamic
    Linking").

    Characteristics, per the paper:
    - every library must exist at load time (entry points are verified);
    - references to {e data} objects are all resolved at load time;
    - {e function} calls are bound lazily through jump-table stubs, with
      no fault-handling overhead (a cheap trap, here one syscall);
    - a flat symbol namespace: no scoped linking.

    Stubs live in a per-process jump table; the first call through a
    stub traps to the binder, which patches the stub into a direct
    jump and restarts at the target. *)

module Kernel = Hemlock_os.Kernel
module Proc = Hemlock_os.Proc

exception Link_error of string

type t

(** Syscall number used by unbound stubs. *)
val bind_sysno : int

val install : Kernel.t -> t

val kernel : t -> Kernel.t

(** [load t proc ~located] maps each template (in order) into the
    process's private arena, resolves all data relocations eagerly
    against the flat namespace, and routes every cross-module call
    through a fresh or shared stub.
    @raise Link_error if a template is missing, uses $gp, or a data
    reference cannot be resolved (libraries must be complete at load
    time). *)
val load : t -> Proc.t -> located:string list -> unit

(** Flat-namespace symbol lookup. *)
val dlsym : t -> Proc.t -> string -> int option

(** Number of stubs bound (first-call traps taken) so far. *)
val bound : t -> Proc.t -> int

(** Number of stubs created at load time. *)
val stubs : t -> Proc.t -> int

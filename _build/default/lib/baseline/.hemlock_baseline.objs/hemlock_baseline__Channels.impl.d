lib/baseline/channels.ml: Bytes Char Hemlock_os Hemlock_sfs Hemlock_util Hemlock_vm

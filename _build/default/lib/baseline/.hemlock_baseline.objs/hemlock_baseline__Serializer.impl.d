lib/baseline/serializer.ml: Buffer Format Hemlock_util List Printf String

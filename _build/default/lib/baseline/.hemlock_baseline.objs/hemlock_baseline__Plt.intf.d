lib/baseline/plt.mli: Hemlock_os

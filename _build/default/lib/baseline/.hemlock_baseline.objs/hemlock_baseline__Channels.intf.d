lib/baseline/channels.mli: Hemlock_util

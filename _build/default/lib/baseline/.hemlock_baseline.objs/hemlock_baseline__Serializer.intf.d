lib/baseline/serializer.mli: Bytes Format

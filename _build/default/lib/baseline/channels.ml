module Kernel = Hemlock_os.Kernel
module Proc = Hemlock_os.Proc
module Fs = Hemlock_sfs.Fs
module Prot = Hemlock_vm.Prot
module Stats = Hemlock_util.Stats

type kind = Shared_memory | Message_passing | File_based | Domain_call

let kind_to_string = function
  | Shared_memory -> "shared-memory"
  | Message_passing -> "messages"
  | File_based -> "files"
  | Domain_call -> "pd-call"

let all_kinds = [ Shared_memory; Message_passing; File_based; Domain_call ]

(* Shared-segment word offsets. *)
let off_req_seq = 0
let off_resp_seq = 4
let off_len = 8
let off_payload = 16

let consume_payload k proc ~read_byte len =
  (* The server touches every byte, identically in all three styles. *)
  let sum = ref 0 in
  for i = 0 to len - 1 do
    sum := !sum + read_byte k proc i
  done;
  !sum

let run_exchange ~kind ~payload ~rounds =
  let k = Kernel.create () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/shared/ipc";
  Fs.create_file fs "/shared/ipc/chan";
  Fs.mkdir fs "/tmp/spool";
  Kernel.msgq_create k "req-doorbell" ~capacity:4;
  Kernel.msgq_create k "resp-doorbell" ~capacity:4;
  let started = ref false in
  let client_done = ref false in
  let server body =
    let p =
      Kernel.spawn_native k ~name:"server" (fun k proc ->
          Proc.wait_until (fun () -> !started);
          body k proc;
          0)
    in
    p
  in
  let client body =
    Kernel.spawn_native k ~name:"client" (fun k proc ->
        Proc.wait_until (fun () -> !started);
        body k proc;
        client_done := true;
        0)
  in
  (match kind with
  | Shared_memory ->
    ignore
      (server (fun k proc ->
           let base = Kernel.map_shared_file k proc ~path:"/shared/ipc/chan" ~prot:Prot.Read_write in
           for round = 1 to rounds do
             Proc.wait_until (fun () -> Kernel.load_u32 k proc (base + off_req_seq) >= round);
             let len = Kernel.load_u32 k proc (base + off_len) in
             ignore
               (consume_payload k proc ~read_byte:(fun k proc i ->
                    Kernel.load_u8 k proc (base + off_payload + i))
                  len);
             Kernel.store_u32 k proc (base + off_resp_seq) round
           done));
    ignore
      (client (fun k proc ->
           let base = Kernel.map_shared_file k proc ~path:"/shared/ipc/chan" ~prot:Prot.Read_write in
           for round = 1 to rounds do
             (* Produce the request in place: no intermediate form. *)
             for i = 0 to payload - 1 do
               Kernel.store_u8 k proc (base + off_payload + i) ((round + i) land 0xFF)
             done;
             Kernel.store_u32 k proc (base + off_len) payload;
             Kernel.store_u32 k proc (base + off_req_seq) round;
             Proc.wait_until (fun () -> Kernel.load_u32 k proc (base + off_resp_seq) >= round)
           done))
  | Message_passing ->
    Kernel.msgq_create k "req" ~capacity:4;
    Kernel.msgq_create k "resp" ~capacity:4;
    ignore
      (server (fun k proc ->
           for _ = 1 to rounds do
             let msg = Kernel.msg_recv k proc "req" in
             ignore
               (consume_payload k proc ~read_byte:(fun _ _ i -> Char.code (Bytes.get msg i))
                  (Bytes.length msg));
             Kernel.msg_send k proc "resp" (Bytes.create 4)
           done));
    ignore
      (client (fun k proc ->
           for round = 1 to rounds do
             (* Produce into a private buffer, then copy into the kernel. *)
             let buf = Bytes.init payload (fun i -> Char.chr ((round + i) land 0xFF)) in
             Kernel.msg_send k proc "req" buf;
             ignore (Kernel.msg_recv k proc "resp")
           done))
  | Domain_call ->
    (* The server exports an entry point; it stays alive as a daemon so
       its domain exists, but never spins on the data. *)
    let srv =
      Kernel.spawn_native k ~name:"pd-server" (fun k proc ->
          let base = Kernel.map_shared_file k proc ~path:"/shared/ipc/chan" ~prot:Prot.Read_write in
          Kernel.register_pd_service k ~name:"consume" ~owner:proc (fun k srv_proc len ->
              consume_payload k srv_proc
                ~read_byte:(fun k p i -> Kernel.load_u8 k p (base + off_payload + i))
                len);
          Proc.wait_until (fun () -> !client_done);
          0)
    in
    Kernel.set_daemon k srv;
    ignore
      (client (fun k proc ->
           let base = Kernel.map_shared_file k proc ~path:"/shared/ipc/chan" ~prot:Prot.Read_write in
           (* Let the server install its service first. *)
           Proc.wait_until (fun () -> Kernel.find_proc k srv.Proc.pid <> None);
           Proc.yield ();
           for round = 1 to rounds do
             for i = 0 to payload - 1 do
               Kernel.store_u8 k proc (base + off_payload + i) ((round + i) land 0xFF)
             done;
             ignore (Kernel.pd_call k proc ~service:"consume" payload)
           done))
  | File_based ->
    ignore
      (server (fun k proc ->
           for _ = 1 to rounds do
             ignore (Kernel.msg_recv k proc "req-doorbell");
             let fd = Kernel.sys_open k proc "/tmp/spool/req" in
             let msg = Kernel.sys_read k proc fd 0x100000 in
             Kernel.sys_close k proc fd;
             ignore
               (consume_payload k proc ~read_byte:(fun _ _ i -> Char.code (Bytes.get msg i))
                  (Bytes.length msg));
             Kernel.msg_send k proc "resp-doorbell" Bytes.empty
           done));
    ignore
      (client (fun k proc ->
           for round = 1 to rounds do
             let buf = Bytes.init payload (fun i -> Char.chr ((round + i) land 0xFF)) in
             let fd = Kernel.sys_open k proc ~create:true "/tmp/spool/req" in
             ignore (Kernel.sys_write k proc fd buf);
             Kernel.sys_close k proc fd;
             Kernel.msg_send k proc "req-doorbell" Bytes.empty;
             ignore (Kernel.msg_recv k proc "resp-doorbell")
           done)));
  let before = Stats.snapshot () in
  started := true;
  Kernel.run k;
  assert !client_done;
  Stats.diff ~before ~after:(Stats.snapshot ())

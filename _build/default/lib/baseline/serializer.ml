module Codec = Hemlock_util.Codec

type value = Int of int | Str of string | List of value list

exception Parse_error of string

let err msg = raise (Parse_error msg)

(* ----- ASCII ----- *)

let rec emit_ascii buf = function
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Str s ->
    Buffer.add_char buf '"';
    String.iter
      (function
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'
  | List vs ->
    Buffer.add_char buf '(';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ' ';
        emit_ascii buf v)
      vs;
    Buffer.add_char buf ')'

let to_ascii v =
  let buf = Buffer.create 256 in
  emit_ascii buf v;
  Buffer.contents buf

let of_ascii s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\n' || s.[!pos] = '\t') do
      incr pos
    done
  in
  let rec parse () =
    skip_ws ();
    match peek () with
    | None -> err "unexpected end of input"
    | Some '(' ->
      incr pos;
      let rec items acc =
        skip_ws ();
        match peek () with
        | Some ')' ->
          incr pos;
          List (List.rev acc)
        | None -> err "unterminated list"
        | Some _ -> items (parse () :: acc)
      in
      items []
    | Some '"' ->
      incr pos;
      let buf = Buffer.create 16 in
      let rec scan () =
        match peek () with
        | None -> err "unterminated string"
        | Some '"' -> incr pos
        | Some '\\' ->
          incr pos;
          (match peek () with
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some '"' -> Buffer.add_char buf '"'
          | Some '\\' -> Buffer.add_char buf '\\'
          | Some c -> err (Printf.sprintf "bad escape \\%c" c)
          | None -> err "unterminated escape");
          incr pos;
          scan ()
        | Some c ->
          Buffer.add_char buf c;
          incr pos;
          scan ()
      in
      scan ();
      Str (Buffer.contents buf)
    | Some ('-' | '0' .. '9') ->
      let start = !pos in
      if s.[!pos] = '-' then incr pos;
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        incr pos
      done;
      (match int_of_string_opt (String.sub s start (!pos - start)) with
      | Some v -> Int v
      | None -> err "bad number")
    | Some c -> err (Printf.sprintf "unexpected character %C" c)
  in
  let v = parse () in
  skip_ws ();
  if !pos <> n then err "trailing garbage";
  v

(* ----- binary ----- *)

let rec emit_binary w = function
  | Int n ->
    Codec.Writer.u8 w 0;
    Codec.Writer.u32 w (n land 0xFFFF_FFFF)
  | Str s ->
    Codec.Writer.u8 w 1;
    Codec.Writer.str w s
  | List vs ->
    Codec.Writer.u8 w 2;
    Codec.Writer.u32 w (List.length vs);
    List.iter (emit_binary w) vs

let to_binary v =
  let w = Codec.Writer.create () in
  emit_binary w v;
  Codec.Writer.contents w

let of_binary bytes =
  let r = Codec.Reader.create bytes in
  let rec parse () =
    match Codec.Reader.u8 r with
    | 0 -> Int (Codec.sext32 (Codec.Reader.u32 r))
    | 1 -> Str (Codec.Reader.str r)
    | 2 ->
      let len = Codec.Reader.u32 r in
      List (List.init len (fun _ -> parse ()))
    | tag -> err (Printf.sprintf "bad tag %d" tag)
  in
  match parse () with
  | v -> if Codec.Reader.eof r then v else err "trailing bytes"
  | exception Failure msg -> err msg

let rec equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Str x, Str y -> String.equal x y
  | List xs, List ys -> ( try List.for_all2 equal xs ys with Invalid_argument _ -> false)
  | (Int _ | Str _ | List _), _ -> false

let rec pp ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Str s -> Format.fprintf ppf "%S" s
  | List vs ->
    Format.fprintf ppf "(@[%a@])"
      (Format.pp_print_list ~pp_sep:Format.pp_print_space pp)
      vs

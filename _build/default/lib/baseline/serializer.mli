(** The linearisation baseline: what pre-Hemlock programs do with
    pointer-rich data — translate it to and from a flat intermediate
    form (rwhod's spool files, xfig's .fig format, the Lynx tables'
    generated source).

    Values are s-expression-shaped; both a parsable ASCII encoding (the
    "rigid format ... parsable ASCII description" of §4) and a compact
    binary one are provided, so experiments can compare against either
    flavour of file format. *)

type value = Int of int | Str of string | List of value list

exception Parse_error of string

val to_ascii : value -> string

(** @raise Parse_error *)
val of_ascii : string -> value

val to_binary : value -> Bytes.t

(** @raise Parse_error *)
val of_binary : Bytes.t -> value

val equal : value -> value -> bool
val pp : Format.formatter -> value -> unit

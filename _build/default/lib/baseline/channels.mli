(** Client/server interaction styles compared in E10 (the paper's §1
    claims 3-4: shared memory transfers information without translating
    it to and from a linear intermediate form, and avoids operating
    system overhead and copying costs).

    One exchange = the client produces a [payload]-byte request, the
    server consumes every byte and acknowledges.  The three styles only
    differ in how the bytes travel:

    - {b Shared_memory}: the client writes the payload in place in a
      shared segment and bumps a sequence word; zero copies.
    - {b Message_passing}: the payload is copied into a kernel message
      queue and out again (two copies, two blocking syscalls).
    - {b File_based}: the payload is written to a file and read back by
      the server (two copies through the file system plus opens), with
      empty doorbell messages for synchronisation.
    - {b Domain_call}: the paper's future-work fast path — payload in
      the shared segment plus one protection-domain-switching call per
      round ({!Hemlock_os.Kernel.pd_call}): synchronous, copyless, no
      scheduler round trip. *)

type kind = Shared_memory | Message_passing | File_based | Domain_call

val kind_to_string : kind -> string

val all_kinds : kind list

(** [run_exchange ~kind ~payload ~rounds] runs a fresh simulated
    machine with one client and one server exchanging [rounds] requests,
    returning the counter deltas for the whole exchange phase (setup
    excluded). *)
val run_exchange : kind:kind -> payload:int -> rounds:int -> Hemlock_util.Stats.t

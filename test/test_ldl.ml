open Harness
module As = Hemlock_vm.Address_space
module Prot = Hemlock_vm.Prot
module Layout = Hemlock_vm.Layout
module Modinst = Hemlock_linker.Modinst
module Objfile = Hemlock_obj.Objfile
module Stats = Hemlock_util.Stats

let counter_template = {|
int counter;
int bump() { counter = counter + 1; return counter; }
|}

let bump_main = {|
extern int bump();
int main() {
  print_int(bump());
  return 0;
}
|}

(* Set up /shared/lib/counter.o plus a main program linked against it
   with the given class. *)
let setup_counter_prog (k, _ldl) cls =
  let fs = Kernel.fs k in
  if not (Fs.exists fs "/shared/lib") then Fs.mkdir fs "/shared/lib";
  install_c k "/shared/lib/counter.o" counter_template;
  Fs.mkdir fs "/home/t";
  install_c k "/home/t/main.o" bump_main;
  ignore
    (link k ~dir:"/home/t"
       ~specs:[ ("main.o", Sharing.Static_private); ("/shared/lib/counter.o", cls) ]
       "prog")

(* ----- genuine write sharing across programs ----- *)

let write_sharing cls () =
  let (k, _ldl) as b = boot () in
  setup_counter_prog b cls;
  let _, out1 = run_program k "/home/t/prog" in
  let _, out2 = run_program k "/home/t/prog" in
  let _, out3 = run_program k "/home/t/prog" in
  check_string "first sees 1" "1" out1;
  check_string "second sees 2 (genuine write sharing)" "2" out2;
  check_string "third sees 3" "3" out3

let private_instances_do_not_share () =
  let (k, _ldl) as b = boot () in
  setup_counter_prog b Sharing.Dynamic_private;
  let _, out1 = run_program k "/home/t/prog" in
  let _, out2 = run_program k "/home/t/prog" in
  check_string "fresh instance per process" "1" out1;
  check_string "still 1" "1" out2

let persistence_across_reboot () =
  let (k, ldl) as b = boot () in
  ignore ldl;
  setup_counter_prog b Sharing.Dynamic_public;
  ignore (run_program k "/home/t/prog");
  ignore (run_program k "/home/t/prog");
  (* "Reboot": rebuild the kernel addr table by rescanning, then run
     again; the module file persisted, so the count continues. *)
  Kernel.reboot k;
  let _, out = run_program k "/home/t/prog" in
  check_string "persistent across reboot" "3" out

(* ----- lazy linking mechanics ----- *)

let lazy_prot_flip () =
  let k, ldl = boot () in
  setup_counter_prog (k, ldl) Sharing.Dynamic_public;
  Kernel.console_clear k;
  let proc = Kernel.spawn_exec k "/home/t/prog" in
  Kernel.run k;
  (* After the run the counter module is linked and accessible. *)
  match Ldl.instances ldl proc with
  | [ inst ] ->
    check_bool "linked" true inst.Modinst.inst_linked;
    check_bool "public" true inst.Modinst.inst_public;
    (match As.mapping_at proc.Proc.space inst.Modinst.inst_base with
    | Some (_, _, m) -> check_bool "rwx now" true (m.As.prot = Prot.Read_write_exec)
    | None -> Alcotest.fail "mapping gone")
  | l -> Alcotest.failf "expected 1 instance, got %d" (List.length l)

let lazy_faults_counted () =
  (* counter.o's relocations are all internal, so it fully links at
     creation time; a module with an external reference is mapped
     without access and must fault into ldl on first touch. *)
  let k, ldl = boot () in
  ignore ldl;
  let fs = Kernel.fs k in
  Fs.mkdir fs "/shared/lib";
  install_c k "/shared/lib/ext.o" "extern int base; int get() { return base + 1; }";
  install_c k "/shared/lib/basemod.o" "int base = 41;";
  Fs.mkdir fs "/home/t";
  install_c k "/home/t/main.o" "extern int get(); int main() { print_int(get()); return 0; }";
  ignore
    (link k ~dir:"/home/t"
       ~specs:
         [
           ("main.o", Sharing.Static_private);
           ("/shared/lib/ext.o", Sharing.Dynamic_public);
           ("/shared/lib/basemod.o", Sharing.Dynamic_public);
         ]
       "prog");
  Stats.reset ();
  let before = Stats.snapshot () in
  let _, out = run_program k "/home/t/prog" in
  check_string "correct output" "42" out;
  let d = Stats.diff ~before ~after:(Stats.snapshot ()) in
  check_bool "at least one lazy-link fault" true (d.Stats.faults >= 1);
  check_bool "module linked" true (d.Stats.modules_linked >= 1)

let lazy_linking_with_tlb () =
  (* Regression for the software TLB: ldl maps unlinked modules
     no-access, and the first touch must fault into the linker even
     when earlier accesses populated the TLB.  The second call then
     runs entirely on warm translations taken after the protection
     flip. *)
  let old = !As.caching_default in
  As.caching_default := true;
  Fun.protect
    ~finally:(fun () -> As.caching_default := old)
    (fun () ->
      let k, ldl = boot () in
      ignore ldl;
      let fs = Kernel.fs k in
      Fs.mkdir fs "/shared/lib";
      install_c k "/shared/lib/ext.o" "extern int base; int get() { return base + 1; }";
      install_c k "/shared/lib/basemod.o" "int base = 41;";
      Fs.mkdir fs "/home/t";
      install_c k "/home/t/main.o"
        "extern int get(); int main() { print_int(get() + get()); return 0; }";
      ignore
        (link k ~dir:"/home/t"
           ~specs:
             [
               ("main.o", Sharing.Static_private);
               ("/shared/lib/ext.o", Sharing.Dynamic_public);
               ("/shared/lib/basemod.o", Sharing.Dynamic_public);
             ]
           "prog");
      Stats.reset ();
      let before = Stats.snapshot () in
      let _, out = run_program k "/home/t/prog" in
      check_string "no-access module linked on first touch" "84" out;
      let d = Stats.diff ~before ~after:(Stats.snapshot ()) in
      check_bool "fault-driven even with TLB on" true (d.Stats.faults >= 1))

let unused_module_never_linked () =
  (* Two dynamic modules; main only calls one. The other is mapped
     no-access and stays unlinked. *)
  let k, ldl = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/shared/lib";
  install_c k "/shared/lib/used.o" "int used() { return 1; }";
  install_c k "/shared/lib/unused.o" "int unused_fn() { return 2; }";
  Fs.mkdir fs "/home/t";
  install_c k "/home/t/main.o" "extern int used(); int main() { return used(); }";
  ignore
    (link k ~dir:"/home/t"
       ~specs:
         [
           ("main.o", Sharing.Static_private);
           ("/shared/lib/used.o", Sharing.Dynamic_public);
           ("/shared/lib/unused.o", Sharing.Dynamic_public);
         ]
       "prog");
  let proc = Kernel.spawn_exec k "/home/t/prog" in
  Kernel.run k;
  check_int "ran fine" 1 (exit_code proc);
  let by_key key =
    List.find
      (fun i -> i.Modinst.inst_key = key)
      (Ldl.instances ldl proc)
  in
  check_bool "used module linked" true (by_key "/shared/lib/used.o").Modinst.inst_linked;
  (* The unused module was still mapped at startup (its creation is
     eager) but never linked by this process: both counter.o modules had
     no relocs so they fully link at creation... unused.o has no relocs
     either, so use instance count instead. *)
  check_int "both mapped" 2 (List.length (Ldl.instances ldl proc))

let lazy_data_chain () =
  (* Module b is only reached through a data reference from a: the
     fault-driven mechanism works for data, unlike jump tables (s3). *)
  let k, ldl = boot () in
  ignore ldl;
  let fs = Kernel.fs k in
  Fs.mkdir fs "/shared/lib";
  install_c k "/shared/lib/b.o" "int deep_value = 41;";
  install_c k "/shared/lib/a.o" "extern int deep_value; int get() { return deep_value + 1; }";
  let ctx = ctx_in k "/" () in
  Lds.embed_metadata ctx ~template:"/shared/lib/a.o" ~modules:[ "b.o" ]
    ~search_path:[ "/shared/lib" ];
  Fs.mkdir fs "/home/t";
  install_c k "/home/t/main.o" "extern int get(); int main() { print_int(get()); return 0; }";
  ignore
    (link k ~dir:"/home/t"
       ~specs:[ ("main.o", Sharing.Static_private); ("/shared/lib/a.o", Sharing.Dynamic_public) ]
       "prog");
  let _, out = run_program k "/home/t/prog" in
  check_string "data reference chased through two modules" "42" out

(* ----- scoped linking (Figure 2) ----- *)

let scoped_conflicting_symbols () =
  (* Two subsystems export the same symbol name `helper`; each parent
     resolves against its own module list, so they do not collide. *)
  let k, ldl = boot () in
  ignore ldl;
  let fs = Kernel.fs k in
  List.iter (Fs.mkdir fs) [ "/shared/s1"; "/shared/s2" ];
  install_c k "/shared/s1/helper.o" "int helper() { return 100; }";
  install_c k "/shared/s2/helper.o" "int helper() { return 200; }";
  install_c k "/shared/s1/api1.o" "extern int helper(); int api1() { return helper() + 1; }";
  install_c k "/shared/s2/api2.o" "extern int helper(); int api2() { return helper() + 2; }";
  let ctx = ctx_in k "/" () in
  Lds.embed_metadata ctx ~template:"/shared/s1/api1.o" ~modules:[ "helper.o" ]
    ~search_path:[ "/shared/s1" ];
  Lds.embed_metadata ctx ~template:"/shared/s2/api2.o" ~modules:[ "helper.o" ]
    ~search_path:[ "/shared/s2" ];
  Fs.mkdir fs "/home/t";
  install_c k "/home/t/main.o"
    {|
extern int api1();
extern int api2();
int main() {
  print_int(api1());
  print_str(" ");
  print_int(api2());
  return 0;
}|};
  ignore
    (link k ~dir:"/home/t"
       ~specs:
         [
           ("main.o", Sharing.Static_private);
           ("/shared/s1/api1.o", Sharing.Dynamic_public);
           ("/shared/s2/api2.o", Sharing.Dynamic_public);
         ]
       "prog");
  let _, out = run_program k "/home/t/prog" in
  check_string "each subsystem sees its own helper" "101 202" out

let scoped_parent_fallback () =
  (* A module with no list of its own resolves through its parent: the
     "rely on a symbol being resolved by the parent" case. *)
  let k, ldl = boot () in
  ignore ldl;
  let fs = Kernel.fs k in
  Fs.mkdir fs "/shared/lib";
  install_c k "/shared/lib/needy.o"
    "extern int provided(); int api() { return provided() * 2; }";
  install_c k "/shared/lib/provider.o" "int provided() { return 21; }";
  Fs.mkdir fs "/home/t";
  install_c k "/home/t/main.o" "extern int api(); int main() { print_int(api()); return 0; }";
  (* needy.o has no own module list; provider.o is on the root's list. *)
  ignore
    (link k ~dir:"/home/t"
       ~specs:
         [
           ("main.o", Sharing.Static_private);
           ("/shared/lib/needy.o", Sharing.Dynamic_public);
           ("/shared/lib/provider.o", Sharing.Dynamic_public);
         ]
       "prog");
  let _, out = run_program k "/home/t/prog" in
  check_string "parent scope resolves" "42" out

let root_unresolved_faults () =
  (* A reference unresolved at the root is left alone; calling it
     faults, and with no program handler the process dies. *)
  let k, ldl = boot () in
  ignore ldl;
  Fs.mkdir (Kernel.fs k) "/home/t";
  install_c k "/home/t/main.o" "extern int ghost(); int main() { return ghost(); }";
  let warnings =
    link k ~dir:"/home/t"
      ~specs:[ ("main.o", Sharing.Static_private); ("ghost.o", Sharing.Dynamic_public) ]
      "prog"
  in
  check_bool "link warned" true (warnings <> []);
  let proc, _ = run_program k "/home/t/prog" in
  check_int "killed by fault" (-1) (exit_code proc);
  check_bool "console shows fault" true (contains (Kernel.console k) "fault")

(* ----- the fault handler's pointer-chasing duty ----- *)

let pointer_fault_maps_segment () =
  let k, ldl = boot () in
  let fs = Kernel.fs k in
  Fs.create_file fs "/shared/blob";
  let seg = Fs.segment_of fs "/shared/blob" in
  Hemlock_vm.Segment.set_u32 seg 16 0xABCD;
  let addr = Fs.addr_of_path fs "/shared/blob" in
  let v =
    run_native k (fun k proc ->
        Ldl.attach ldl proc;
        (* Nothing mapped: the access faults, the handler translates the
           address to /shared/blob and maps it, the access restarts. *)
        Kernel.load_u32 k proc (addr + 16))
  in
  check_int "pointer chased into unmapped segment" 0xABCD v

let pointer_fault_unmapped_address_unhandled () =
  let k, ldl = boot () in
  let empty_slot_addr = Layout.addr_of_slot 900 in
  let died =
    run_native k (fun k proc ->
        Ldl.attach ldl proc;
        match Kernel.load_u32 k proc empty_slot_addr with
        | _ -> false
        | exception Proc.Killed _ -> true)
  in
  check_bool "no file there: unhandled" true died

let program_handler_chained () =
  (* A program-provided SIGSEGV handler still runs when the Hemlock
     handler cannot resolve the fault. *)
  let k, ldl = boot () in
  let recovered = ref false in
  let v =
    run_native k (fun k proc ->
        Ldl.attach ldl proc;
        (* program handler installed before hemlock's would be at the
           chain tail; ours installs after attach so put it behind. *)
        Kernel.install_segv_handler k proc ~name:"program" (fun _ _ fault ->
            if fault.Kernel.f_addr = 0xDEAD000 then begin
              recovered := true;
              (* map a page so the access can complete *)
              let seg = Hemlock_vm.Segment.create ~name:"patch" ~max_size:4096 () in
              Hemlock_vm.Segment.set_u32 seg 0 77;
              As.map proc.Proc.space ~base:0xDEAD000 ~len:4096 ~seg ~prot:Prot.Read_write
                ~share:As.Private ~label:"patch" ();
              Kernel.Resolved
            end
            else Kernel.Unhandled);
        Kernel.load_u32 k proc 0xDEAD000)
  in
  check_bool "program handler ran" true !recovered;
  check_int "application-specific recovery" 77 v

(* ----- creation race: ldl's file locking ----- *)

let creation_race_single_module () =
  let k, ldl = boot () in
  ignore ldl;
  let fs = Kernel.fs k in
  Fs.mkdir fs "/shared/lib";
  install_c k "/shared/lib/counter.o" counter_template;
  Fs.mkdir fs "/home/t";
  install_c k "/home/t/main.o" bump_main;
  ignore
    (link k ~dir:"/home/t"
       ~specs:
         [ ("main.o", Sharing.Static_private); ("/shared/lib/counter.o", Sharing.Dynamic_public) ]
       "prog");
  (* Start several processes at once; exactly one module file results
     and the counter ends at N. *)
  Kernel.console_clear k;
  let procs = List.init 5 (fun _ -> Kernel.spawn_exec k "/home/t/prog") in
  Kernel.run k;
  List.iter (fun p -> check_int "exited cleanly" 0 (exit_code p)) procs;
  let digits = List.sort compare (List.init 5 (fun i -> (Kernel.console k).[i])) in
  check_string "all five increments observed" "12345"
    (String.init 5 (List.nth digits));
  check_bool "single module file" true (Fs.exists fs "/shared/lib/counter")

(* ----- fork: ldl state cloned ----- *)

let fork_clones_link_state () =
  let k, ldl = boot () in
  ignore ldl;
  let fs = Kernel.fs k in
  Fs.mkdir fs "/shared/lib";
  install_c k "/shared/lib/counter.o" counter_template;
  Fs.mkdir fs "/home/t";
  install_c k "/home/t/main.o"
    {|
extern int bump();
int main() {
  int pid;
  print_int(bump());    // both parent and child have the module linked
  pid = fork();
  if (pid == 0) {
    print_int(bump());
    exit(0);
  }
  wait();
  print_int(bump());
  return 0;
}|};
  ignore
    (link k ~dir:"/home/t"
       ~specs:
         [ ("main.o", Sharing.Static_private); ("/shared/lib/counter.o", Sharing.Dynamic_public) ]
       "prog");
  let _, out = run_program k "/home/t/prog" in
  (* counter is public: parent 1, child 2, parent 3 *)
  check_string "shared counter across fork" "123" out

let fork_private_module_diverges () =
  let k, ldl = boot () in
  ignore ldl;
  let fs = Kernel.fs k in
  Fs.mkdir fs "/home/t";
  install_c k "/home/t/counter.o" counter_template;
  install_c k "/home/t/main.o"
    {|
extern int bump();
int main() {
  int pid;
  print_int(bump());
  pid = fork();
  if (pid == 0) {
    print_int(bump());   // child's own copy: 2
    exit(0);
  }
  wait();
  print_int(bump());     // parent's own copy: 2
  return 0;
}|};
  ignore
    (link k ~dir:"/home/t"
       ~specs:[ ("main.o", Sharing.Static_private); ("counter.o", Sharing.Dynamic_private) ]
       "prog");
  let _, out = run_program k "/home/t/prog" in
  check_string "private module copied on fork" "122" out

(* s5: "If the parent's PC was at a public address, the parent and child
   come out in logically shared code, which must be designed for
   concurrent execution" — and its static data is shared. *)
let fork_inside_public_code () =
  let k, ldl = boot () in
  ignore ldl;
  let fs = Kernel.fs k in
  Fs.mkdir fs "/shared/lib";
  install_c k "/shared/lib/entry2.o"
    {|
int lockw;
int hits;
int enter() {
  int pid;
  pid = fork();
  lock_acquire(&lockw);
  hits = hits + 1;
  lock_release(&lockw);
  return pid;
}
int read_hits() { return hits; }|};
  Fs.mkdir fs "/home/t";
  install_c k "/home/t/main.o"
    {|
extern int enter();
extern int read_hits();
int main() {
  int pid;
  pid = enter();
  if (pid == 0) { exit(0); }
  wait();
  print_int(read_hits());
  return 0;
}|};
  ignore
    (link k ~dir:"/home/t"
       ~specs:
         [ ("main.o", Sharing.Static_private); ("/shared/lib/entry2.o", Sharing.Dynamic_public) ]
       "prog");
  let _, out = run_program k "/home/t/prog" in
  check_string "both sides of the fork ran the shared code on shared data" "2" out

(* Veneers written into a public module are shared link state: a second
   process reuses them instead of re-creating. *)
let veneers_shared_across_processes () =
  let k, _ldl = boot () in
  let fs = Kernel.fs k in
  (* pad so the two modules straddle a 256MB jump region *)
  Fs.mkdir fs "/shared/pad";
  for i = 0 to 252 do
    Fs.create_file fs (Printf.sprintf "/shared/pad/f%03d" i)
  done;
  Fs.mkdir fs "/shared/far";
  install_c k "/shared/far/near.o" "extern int far_fn(); int near_fn() { return far_fn() + 1; }";
  install_c k "/shared/far/far.o" "int far_fn() { return 41; }";
  Fs.mkdir fs "/home/t";
  install_c k "/home/t/main.o" "extern int near_fn(); int main() { return near_fn(); }";
  ignore
    (link k ~dir:"/home/t"
       ~specs:
         [
           ("main.o", Sharing.Static_private);
           ("/shared/far/near.o", Sharing.Dynamic_public);
           ("/shared/far/far.o", Sharing.Dynamic_public);
         ]
       "prog");
  let run () =
    Hemlock_linker.Reloc_engine.reset_veneer_count ();
    let proc = Kernel.spawn_exec k "/home/t/prog" in
    Kernel.run k;
    check_int "crossed the region boundary" 42 (exit_code proc);
    Hemlock_linker.Reloc_engine.veneers_created ()
  in
  let first = run () in
  let second = run () in
  check_bool "first run created the cross-region veneer" true (first >= 1);
  (* the second process still needs its own private image->shared veneer,
     but the public module's veneer is already in the shared segment *)
  check_bool "second run created fewer veneers" true (second < first)

(* ----- dlopen/dlsym and bind-now ----- *)

let dlopen_dlsym () =
  let k, ldl = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/shared/lib";
  install_c k "/shared/lib/counter.o" counter_template;
  run_native k (fun k proc ->
      let inst = Ldl.dlopen ldl proc "/shared/lib/counter.o" in
      check_bool "public instance" true inst.Modinst.inst_public;
      (match Ldl.dlsym ldl proc "counter" with
      | Some addr ->
        Ldl.link_now ldl proc inst;
        Kernel.store_u32 k proc addr 55;
        check_int "symbol usable" 55 (Kernel.load_u32 k proc addr)
      | None -> Alcotest.fail "dlsym failed");
      check_bool "unknown symbol" true (Ldl.dlsym ldl proc "nope" = None);
      (match Ldl.dlopen ldl proc "missing.o" with
      | _ -> Alcotest.fail "expected dlopen failure"
      | exception Hemlock_linker.Reloc_engine.Link_error _ -> ()));
  ()

let bind_now_links_everything () =
  (* A private chain, so every process pays its own linking and the
     lazy/eager contrast is per-run. *)
  let k, ldl = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/home/chain";
  let templates = Hemlock_apps.Modgen.install ldl ~dir:"/home/chain" ~modules:6 in
  check_int "templates" 6 (List.length templates);
  Hemlock_apps.Modgen.link_driver ldl ~dir:"/home/chain" ~out:"/home/e8/prog" ~used:2;
  let result, linked_lazy, mapped_lazy = Hemlock_apps.Modgen.run_lazy ldl ~prog:"/home/e8/prog" in
  check_int "lazy result" (Hemlock_apps.Modgen.expected ~modules:6 ~used:2) result;
  check_int "lazy links only the used prefix" 3 linked_lazy;
  check_int "lazy maps one module beyond" 4 mapped_lazy;
  let result2, linked_eager, mapped_eager = Hemlock_apps.Modgen.run_eager ldl ~prog:"/home/e8/prog" in
  check_int "eager result equal" result result2;
  check_int "eager links the whole chain" 6 linked_eager;
  check_int "eager maps the whole chain" 6 mapped_eager

(* ----- position-dependent files (section 5) ----- *)

let naive_copy_breaks () =
  let k, ldl = boot () in
  let broken =
    run_native k (fun k proc ->
        Ldl.attach ldl proc;
        let fig = Hemlock_apps.Xfig.Shared_fig.create k proc ~path:"/shared/fig1" in
        Hemlock_apps.Xfig.Shared_fig.add k proc ~fig
          { Hemlock_apps.Xfig.o_kind = 1; o_x = 2; o_y = 3; o_w = 4; o_h = 5 };
        Hemlock_apps.Xfig.naive_copy_is_broken k proc ~src:"/shared/fig1" ~dst:"/shared/fig2")
  in
  check_bool "cp of a pointer-rich file breaks its pointers" true broken

let suite =
  [
    test "ldl: dynamic public write sharing" (write_sharing Sharing.Dynamic_public);
    test "ldl: static public write sharing" (write_sharing Sharing.Static_public);
    test "ldl: dynamic private instances are fresh" private_instances_do_not_share;
    test "ldl: public modules persist across reboot" persistence_across_reboot;
    test "ldl: lazy prot flip on first touch" lazy_prot_flip;
    test "ldl: lazy linking is fault-driven" lazy_faults_counted;
    test "ldl: lazy linking fault-driven with TLB enabled" lazy_linking_with_tlb;
    test "ldl: unused modules stay unlinked" unused_module_never_linked;
    test "ldl: lazy chase through data references" lazy_data_chain;
    test "ldl: scoped linking isolates name conflicts (fig 2)" scoped_conflicting_symbols;
    test "ldl: scoped linking falls back to the parent" scoped_parent_fallback;
    test "ldl: root-unresolved references fault at use" root_unresolved_faults;
    test "ldl: pointer faults map shared segments" pointer_fault_maps_segment;
    test "ldl: faults on empty slots stay unhandled" pointer_fault_unmapped_address_unhandled;
    test "ldl: program SIGSEGV handler chained" program_handler_chained;
    test "ldl: creation race resolved by file lock" creation_race_single_module;
    test "ldl: fork clones link state, public stays shared" fork_clones_link_state;
    test "ldl: fork copies private module instances" fork_private_module_diverges;
    test "ldl: fork inside public code shares static data (s5)" fork_inside_public_code;
    test "ldl: public veneers shared across processes" veneers_shared_across_processes;
    test "ldl: dlopen/dlsym" dlopen_dlsym;
    test "ldl: bind-now links the whole graph" bind_now_links_everything;
    test "hemlock: naive cp of pointer files breaks (s5)" naive_copy_breaks;
  ]

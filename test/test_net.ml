(* The simulated network: deterministic loss/latency/partitions, the
   reliable send path, gossip anti-entropy, and the Auto address index.
   The contracts under test: the ideal profile is the old loss-free bus;
   lossy profiles change *what* is delivered but never diverge across
   domain counts; reliability failures surface as ETIMEDOUT through the
   errno ABI instead of wedging the cluster; partitioned gossip heals. *)

open Harness
module Stats = Hemlock_util.Stats
module Cluster = Hemlock_os.Cluster
module Net = Hemlock_os.Net
module Errno = Hemlock_os.Errno
module Rwho = Hemlock_apps.Rwho
module Addr_index = Hemlock_sfs.Addr_index

(* ----- broadcast payload aliasing ----- *)

(* The sender scribbles on its buffer right after broadcasting; every
   receiver must still see the bytes as sent (one copy at the send, not
   a shared reference). *)
let broadcast_copies_payload () =
  let machines = 3 in
  let heard = Array.make machines [] in
  let c = Cluster.create ~profile:Net.Ideal ~machines () in
  for i = 0 to machines - 1 do
    let k = Cluster.machine c i in
    let rx =
      Kernel.spawn_native k ~name:"rx" (fun k proc ->
          while true do
            heard.(i) <- Bytes.to_string (Kernel.msg_recv k proc Cluster.inbox) :: heard.(i)
          done;
          0)
    in
    Kernel.set_daemon k rx
  done;
  ignore
    (Kernel.spawn_native (Cluster.machine c 0) ~name:"tx" (fun _ _ ->
         let buf = Bytes.of_string "payload-as-sent" in
         Cluster.broadcast c ~from:0 buf;
         Bytes.fill buf 0 (Bytes.length buf) 'X';
         0));
  Cluster.run c;
  for i = 1 to machines - 1 do
    check_string
      (Printf.sprintf "machine %d heard" i)
      "payload-as-sent"
      (String.concat "," (List.rev heard.(i)))
  done

(* ----- latency: in-flight datagrams are not a deadlock ----- *)

(* Under wan every link takes 2..6 rounds.  A receiver blocked on its
   inbox while a datagram is still in flight must be woken when it
   matures, not reported as a wedged cluster. *)
let inflight_is_not_deadlock () =
  let c = Cluster.create ~profile:Net.Wan ~seed:5 ~machines:2 () in
  let got = ref "" in
  ignore
    (Kernel.spawn_native (Cluster.machine c 1) ~name:"rx" (fun k proc ->
         got := Bytes.to_string (Kernel.msg_recv k proc Cluster.inbox);
         0));
  ignore
    (Kernel.spawn_native (Cluster.machine c 0) ~name:"tx" (fun _ _ ->
         Cluster.send c ~from:0 ~dst:1 (Bytes.of_string "slow boat");
         0));
  Cluster.run c;
  check_string "delivered after maturation" "slow boat" !got

(* A genuinely undeliverable datagram (receiver never drains: inbox
   missing would error, so: no receiver process at all and an inbox too
   small) still deadlocks — and the report counts only matured
   datagrams, never in-flight ones. *)
let deadlock_reports_matured_only () =
  let c = Cluster.create ~profile:Net.Ideal ~machines:2 () in
  ignore
    (Kernel.spawn_native (Cluster.machine c 1) ~name:"stuck" (fun k proc ->
         ignore (Kernel.msg_recv k proc Cluster.inbox);
         ignore (Kernel.msg_recv k proc Cluster.inbox);
         0));
  match Cluster.run c with
  | () -> Alcotest.fail "expected a deadlock"
  | exception Kernel.Deadlock bs ->
    check_bool "blocked receiver reported" true
      (List.exists (fun b -> contains b.Kernel.b_comm "m1:stuck") bs);
    (* nothing was ever sent: no m*:net entry may claim phantom datagrams *)
    check_bool "no phantom net entries" false
      (List.exists (fun b -> contains b.Kernel.b_comm ":net") bs)

(* ----- lossy determinism across domain counts ----- *)

let lossy_trace ~domains =
  let machines = 4 in
  let sends = 6 in
  let heard = Array.make machines [] in
  let c = Cluster.create ~profile:Net.Lossy ~seed:9 ~machines () in
  for i = 0 to machines - 1 do
    let k = Cluster.machine c i in
    let rx =
      Kernel.spawn_native k ~name:"rx" (fun k proc ->
          while true do
            heard.(i) <- Bytes.to_string (Kernel.msg_recv k proc Cluster.inbox) :: heard.(i)
          done;
          0)
    in
    Kernel.set_daemon k rx;
    ignore
      (Kernel.spawn_native k ~name:"tx" (fun _ proc ->
           for r = 1 to sends do
             Cluster.broadcast c ~from:i (Bytes.of_string (Printf.sprintf "m%d-r%d" i r));
             Proc.yield ()
           done;
           ignore proc;
           0))
  done;
  let before = Stats.snapshot () in
  Cluster.run ~domains c;
  let d = Stats.diff ~before ~after:(Stats.snapshot ()) in
  let tel = Net.telemetry (Cluster.net c) in
  (Array.map (fun l -> String.concat "," (List.rev l)) heard, d, tel)

(* Loss changes what arrives; domain count must not.  The same seed
   yields the same transcripts, telemetry and simulated costs at 1 and
   4 domains — and the lossy run really does lose something. *)
let lossy_identical_across_domains () =
  let obs1, d1, t1 = lossy_trace ~domains:1 in
  let obs4, d4, t4 = lossy_trace ~domains:4 in
  Array.iteri
    (fun i t -> check_string (Printf.sprintf "machine %d transcript" i) t obs4.(i))
    obs1;
  check_int "delivered" t1.Net.t_delivered t4.Net.t_delivered;
  check_int "dropped" t1.Net.t_dropped t4.Net.t_dropped;
  check_int "duplicated" t1.Net.t_duplicated t4.Net.t_duplicated;
  check_bool "latency histograms equal" true (t1.Net.t_latency = t4.Net.t_latency);
  check_int "messages billed" d1.Stats.messages_sent d4.Stats.messages_sent;
  check_int "cycles" (Stats.cycles d1) (Stats.cycles d4);
  check_bool "lossy profile actually dropped datagrams" true (t1.Net.t_dropped > 0)

(* ----- reliable send: ack, retry, exhaustion ----- *)

let send_reliable_acks () =
  let c = Cluster.create ~profile:Net.Lan ~seed:3 ~machines:2 () in
  let got = ref "" in
  let rx =
    Kernel.spawn_native (Cluster.machine c 1) ~name:"rx" (fun k proc ->
        while true do
          got := Bytes.to_string (Kernel.msg_recv k proc Cluster.inbox)
        done;
        0)
  in
  Kernel.set_daemon (Cluster.machine c 1) rx;
  let result = ref (Error Errno.EINVAL) in
  ignore
    (Kernel.spawn_native (Cluster.machine c 0) ~name:"tx" (fun _ _ ->
         result := Cluster.send_reliable c ~from:0 ~dst:1 (Bytes.of_string "important");
         0));
  Cluster.run c;
  check_bool "acked" true (!result = Ok ());
  check_string "delivered" "important" !got

(* A partitioned destination exhausts the retry budget: the sender gets
   ETIMEDOUT through the errno ABI and the cluster run completes —
   nothing wedges, nothing deadlocks. *)
let send_reliable_exhaustion_surfaces_etimedout () =
  let c = Cluster.create ~profile:Net.Ideal ~machines:2 () in
  Net.partition (Cluster.net c) ~name:"cut" ~groups:[ [ 0 ]; [ 1 ] ];
  let rx =
    Kernel.spawn_native (Cluster.machine c 1) ~name:"rx" (fun k proc ->
        while true do
          ignore (Kernel.msg_recv k proc Cluster.inbox)
        done;
        0)
  in
  Kernel.set_daemon (Cluster.machine c 1) rx;
  let result = ref (Ok ()) in
  ignore
    (Kernel.spawn_native (Cluster.machine c 0) ~name:"tx" (fun _ _ ->
         result :=
           Cluster.send_reliable c ~from:0 ~dst:1 ~retries:2 ~timeout:2
             (Bytes.of_string "into the void");
         0));
  Cluster.run c;
  (match !result with
  | Error e -> check_string "errno" "ETIMEDOUT" (Errno.name e)
  | Ok () -> Alcotest.fail "send through a partition succeeded");
  (* the retransmits were counted and billed as simulated work *)
  check_bool "retransmits recorded" true ((Stats.snapshot ()).Stats.net_retransmits > 0)

(* ----- gossip: staleness and partition healing ----- *)

let gossip_marks_dead_hosts_down () =
  let g =
    Rwho.Gossip.create ~down_after:2 ~profile:Net.Ideal ~seed:4 Rwho.Shared_db
      ~machines:3 ()
  in
  for _ = 1 to 2 do
    Rwho.Gossip.epoch g
  done;
  ignore (Rwho.Gossip.converge g);
  check_bool "host01 up while alive" false (Rwho.Gossip.is_down g 0 "host01");
  Rwho.Gossip.kill g 1;
  for _ = 1 to 4 do
    Rwho.Gossip.epoch g
  done;
  check_bool "host01 down after silence" true (Rwho.Gossip.is_down g 0 "host01");
  check_bool "ruptime says down" true (contains (Rwho.Gossip.ruptime g 0) "host01   down");
  Rwho.Gossip.revive g 1;
  for _ = 1 to 3 do
    Rwho.Gossip.epoch g
  done;
  ignore (Rwho.Gossip.converge g);
  check_bool "host01 back up after revive" false (Rwho.Gossip.is_down g 0 "host01")

(* Property: whatever happens during a partition, after [heal] a bounded
   number of anti-entropy epochs makes every machine's database
   identical — gossip convergence is not seed- or shape-dependent. *)
let gossip_partition_heal_prop (seed, split, lossy) =
  let machines = 4 in
  let profile = if lossy then Net.Lossy else Net.Lan in
  let g =
    Rwho.Gossip.create ~profile ~seed:(1 + seed) Rwho.Shared_db ~machines ()
  in
  (* a few epochs of normal operation *)
  for _ = 1 to 2 do
    Rwho.Gossip.epoch g
  done;
  (* split the cluster in two and let both sides diverge *)
  let cut = 1 + (split mod (machines - 1)) in
  let left = List.init cut (fun i -> i) in
  let right = List.init (machines - cut) (fun i -> cut + i) in
  Rwho.Gossip.partition g ~name:"isles" ~groups:[ left; right ];
  for _ = 1 to 2 do
    Rwho.Gossip.epoch g
  done;
  Rwho.Gossip.heal g ~name:"isles";
  (* bounded convergence after heal *)
  match Rwho.Gossip.converge ~max_epochs:48 g with
  | Some _ -> Rwho.Gossip.converged g
  | None -> false

(* ----- Auto address index ----- *)

(* The Auto backend must behave exactly like the linear oracle while
   promoting itself to the B-tree at the threshold. *)
let addr_index_auto_promotes () =
  let auto = Addr_index.create ~threshold:8 Addr_index.Auto in
  let lin = Addr_index.create Addr_index.Linear in
  let slot i = (i * 0x100, 0x100, Printf.sprintf "/shared/seg%d" i) in
  for i = 0 to 6 do
    let base, bytes, path = slot i in
    Addr_index.register auto ~base ~bytes path;
    Addr_index.register lin ~base ~bytes path
  done;
  check_string "small table stays linear" "linear"
    (Addr_index.backend_to_string (Addr_index.in_use auto));
  for i = 7 to 20 do
    let base, bytes, path = slot i in
    Addr_index.register auto ~base ~bytes path;
    Addr_index.register lin ~base ~bytes path
  done;
  check_string "big table promoted" "b-tree"
    (Addr_index.backend_to_string (Addr_index.in_use auto));
  (* the two answer identically over hits, misses and boundaries *)
  for a = 0 to (21 * 0x100) + 16 do
    let got = Addr_index.translate auto a and want = Addr_index.translate lin a in
    if got <> want then
      Alcotest.fail (Printf.sprintf "translate 0x%x diverges from the linear oracle" a)
  done;
  check_bool "unregister" true (Addr_index.unregister auto ~base:0x300);
  check_bool "translate after unregister" true (Addr_index.translate auto 0x310 = None);
  check_int "size tracks" 20 (Addr_index.size auto);
  Addr_index.clear auto;
  check_int "clear empties" 0 (Addr_index.size auto);
  check_string "cleared auto restarts linear" "linear"
    (Addr_index.backend_to_string (Addr_index.in_use auto))

(* The kernel's /shared index is the Auto backend and answers address
   translations through it. *)
let fs_uses_auto_index () =
  let fs = Fs.create () in
  Fs.mkdir fs "/shared/x";
  Fs.create_file fs "/shared/x/a";
  Fs.create_file fs "/shared/x/b";
  check_string "default backend" "linear"
    (Addr_index.backend_to_string (Fs.shared_index_backend fs));
  let addr = Fs.addr_of_path fs "/shared/x/b" in
  let probes0 = Fs.shared_index_probes fs in
  check_string "path_of_addr through the index" "/shared/x/b" (Fs.path_of_addr fs addr);
  check_bool "translation cost counted" true (Fs.shared_index_probes fs > probes0)

let suite =
  [
    test "cluster: broadcast copies the payload once" broadcast_copies_payload;
    test "cluster: wan latency delivers late, not deadlocked" inflight_is_not_deadlock;
    test "cluster: deadlock report survives empty network" deadlock_reports_matured_only;
    test "cluster: lossy trace identical at 1 and 4 domains" lossy_identical_across_domains;
    test "cluster: send_reliable delivers and acks" send_reliable_acks;
    test "cluster: retry exhaustion surfaces ETIMEDOUT" send_reliable_exhaustion_surfaces_etimedout;
    test "gossip: silent hosts age out as down" gossip_marks_dead_hosts_down;
    prop "gossip: partition then heal converges (bounded)" ~count:15
      QCheck2.Gen.(triple (int_bound 1000) (int_bound 10) bool)
      gossip_partition_heal_prop;
    test "addr index: auto promotes to the b-tree at threshold" addr_index_auto_promotes;
    test "fs: /shared translations go through the auto index" fs_uses_auto_index;
  ]

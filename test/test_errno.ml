open Harness
module Errno = Hemlock_os.Errno
module Vfs = Hemlock_os.Vfs
module As = Hemlock_vm.Address_space
module Cpu = Hemlock_isa.Cpu
module Layout = Hemlock_vm.Layout

(* ----- errno table ----- *)

let errno_table () =
  List.iter
    (fun e ->
      check_bool "code round-trips" true (Errno.of_code (Errno.code e) = Some e);
      check_bool "positive code" true (Errno.code e > 0);
      check_bool "name is E-prefixed" true (String.length (Errno.name e) > 1 && (Errno.name e).[0] = 'E'))
    Errno.all;
  check_bool "unknown code" true (Errno.of_code 9999 = None);
  check_string "to_string" "ENOENT: no such file or directory" (Errno.to_string Errno.ENOENT)

(* ----- fd table semantics ----- *)

let with_proc f =
  let k = Kernel.create () in
  run_native k (fun k proc -> f k proc)

let double_close () =
  with_proc (fun k proc ->
      let fd = Kernel.sys_open k proc ~create:true "/tmp/dc" in
      check_bool "first close" true (Kernel.sys_close_r k proc fd = Ok ());
      check_bool "second close is EBADF" true (Kernel.sys_close_r k proc fd = Error Errno.EBADF);
      check_bool "read after close is EBADF" true
        (Kernel.sys_read_r k proc fd 1 = Error Errno.EBADF);
      check_bool "write after close is EBADF" true
        (Kernel.sys_write_r k proc fd (Bytes.of_string "x") = Error Errno.EBADF);
      check_bool "lseek after close is EBADF" true
        (Kernel.sys_lseek_r k proc fd 0 = Error Errno.EBADF))

let lowest_fd_reuse () =
  with_proc (fun k proc ->
      let a = Kernel.sys_open k proc ~create:true "/tmp/a" in
      let b = Kernel.sys_open k proc ~create:true "/tmp/b" in
      let c = Kernel.sys_open k proc ~create:true "/tmp/c" in
      check_int "first fd" 3 a;
      check_int "second fd" 4 b;
      check_int "third fd" 5 c;
      Kernel.sys_close k proc b;
      check_int "hole is refilled" 4 (Kernel.sys_open k proc ~create:true "/tmp/d");
      Kernel.sys_close k proc a;
      Kernel.sys_close k proc c;
      check_int "lowest hole wins" 3 (Kernel.sys_open k proc ~create:true "/tmp/e"))

let emfile_at_cap () =
  with_proc (fun k proc ->
      for i = 0 to Vfs.max_fds - 1 do
        let fd = Kernel.sys_open k proc ~create:true (Printf.sprintf "/tmp/f%d" i) in
        check_int "dense allocation" (3 + i) fd
      done;
      check_bool "table full is EMFILE" true
        (Kernel.sys_open_r k proc ~create:true "/tmp/overflow" = Error Errno.EMFILE);
      Kernel.sys_close k proc 40;
      check_int "one slot frees the table" 40
        (Kernel.sys_open k proc ~create:true "/tmp/overflow"))

let enospc_on_full_slot () =
  with_proc (fun k proc ->
      let fd = Kernel.sys_open k proc ~create:true "/shared/full" in
      ignore (Kernel.sys_lseek k proc fd (Layout.shared_slot_size - 1));
      check_bool "write past the slot end is ENOSPC" true
        (Kernel.sys_write_r k proc fd (Bytes.of_string "xy") = Error Errno.ENOSPC);
      check_int "write inside the slot still fits" 1
        (Kernel.sys_write k proc fd (Bytes.of_string "x")))

(* ----- random fd traffic against a pure oracle ----- *)

(* The oracle models what Vfs + Fs promise: per-path byte contents
   shared by every descriptor on that path, per-descriptor positions,
   lowest-free-fd allocation, and POSIX errno answers. *)
module Oracle = struct
  type t = {
    contents : (string, bytes ref) Hashtbl.t;
    fds : (int, string * int ref) Hashtbl.t;
  }

  let create () = { contents = Hashtbl.create 8; fds = Hashtbl.create 8 }

  let alloc t =
    let rec scan fd =
      if fd >= Vfs.first_fd + Vfs.max_fds then Error Errno.EMFILE
      else if Hashtbl.mem t.fds fd then scan (fd + 1)
      else Ok fd
    in
    scan Vfs.first_fd

  let open_ t path =
    if not (Hashtbl.mem t.contents path) then Hashtbl.add t.contents path (ref Bytes.empty);
    match alloc t with
    | Error _ as e -> e
    | Ok fd ->
      Hashtbl.replace t.fds fd (path, ref 0);
      Ok fd

  let close t fd =
    if Hashtbl.mem t.fds fd then begin
      Hashtbl.remove t.fds fd;
      Ok ()
    end
    else Error Errno.EBADF

  let read t fd len =
    match Hashtbl.find_opt t.fds fd with
    | None -> Error Errno.EBADF
    | Some (path, pos) ->
      let data = !(Hashtbl.find t.contents path) in
      let n = min len (max 0 (Bytes.length data - !pos)) in
      let out = if n = 0 then Bytes.empty else Bytes.sub data !pos n in
      pos := !pos + n;
      Ok out

  let write t fd b =
    match Hashtbl.find_opt t.fds fd with
    | None -> Error Errno.EBADF
    | Some (path, pos) ->
      let len = Bytes.length b in
      (* A zero-length write never extends the file, even past EOF. *)
      if len > 0 then begin
        let data = Hashtbl.find t.contents path in
        let need = !pos + len in
        if Bytes.length !data < need then begin
          let grown = Bytes.make need '\000' in
          Bytes.blit !data 0 grown 0 (Bytes.length !data);
          data := grown
        end;
        Bytes.blit b 0 !data !pos len
      end;
      pos := !pos + len;
      Ok len

  let lseek t fd p =
    if p < 0 then Error Errno.EINVAL
    else
      match Hashtbl.find_opt t.fds fd with
      | None -> Error Errno.EBADF
      | Some (_, pos) ->
        pos := p;
        Ok p
end

type op = Open of string | Close of int | Read of int * int | Write of int * bytes | Seek of int * int

let op_of_triple (tag, a, b) =
  let fd = Vfs.first_fd + (a mod 8) in
  match tag mod 5 with
  | 0 -> Open (Printf.sprintf "/tmp/q%d" (a mod 4))
  | 1 -> Close fd
  | 2 -> Read (fd, b mod 40)
  | 3 -> Write (fd, Bytes.make (b mod 24) (Char.chr (Char.code 'a' + (a mod 26))))
  | _ -> Seek (fd, b - 4)

let show_op = function
  | Open p -> "open " ^ p
  | Close fd -> Printf.sprintf "close %d" fd
  | Read (fd, n) -> Printf.sprintf "read %d %d" fd n
  | Write (fd, b) -> Printf.sprintf "write %d %S" fd (Bytes.to_string b)
  | Seek (fd, p) -> Printf.sprintf "lseek %d %d" fd p

let ops_gen =
  QCheck2.Gen.(
    list_size (int_bound 60)
      (map op_of_triple (triple (int_bound 4) (int_bound 1000) (int_bound 1000))))

let fd_traffic_matches_oracle =
  prop "random fd traffic matches oracle" ~count:100
    ~print:(fun ops -> String.concat "; " (List.map show_op ops))
    ops_gen
    (fun ops ->
      with_proc (fun k proc ->
          let o = Oracle.create () in
          let agree = function
            | Open path -> Kernel.sys_open_r k proc ~create:true path = Oracle.open_ o path
            | Close fd -> Kernel.sys_close_r k proc fd = Oracle.close o fd
            | Read (fd, n) -> Kernel.sys_read_r k proc fd n = Oracle.read o fd n
            | Write (fd, b) -> Kernel.sys_write_r k proc fd b = Oracle.write o fd b
            | Seek (fd, p) -> Kernel.sys_lseek_r k proc fd p = Oracle.lseek o fd p
          in
          List.for_all agree ops))

(* ----- ISA-visible errnos: negative v0, process recovers ----- *)

(* Same switch the benchmarks use: run with both memory fast paths on,
   then with both off, to show errno delivery is cache-independent. *)
let with_caches on f =
  let tlb = !As.caching_default and dc = !Cpu.decode_cache_enabled in
  As.caching_default := on;
  Cpu.decode_cache_enabled := on;
  Fun.protect ~finally:(fun () ->
      As.caching_default := tlb;
      Cpu.decode_cache_enabled := dc)
    f

let errno_program =
  {|
char buf[4];
int main() {
  int fd;
  int n;
  fd = open("/tmp/nope", 0);
  if (fd == 0 - 2) { print_str("ENOENT"); }
  fd = open("/tmp/f", 1);
  print_str(" fd=");
  print_int(fd);
  n = write(fd, "hi", 2);
  print_str(" w=");
  print_int(n);
  lseek(fd, 0);
  n = read(fd, &buf[0], 2);
  print_str(" r=");
  print_int(n);
  print_str(" ");
  print_str(&buf[0]);
  close(fd);
  print_str(" again=");
  print_int(close(fd));
  return 0;
}
|}

let isa_errno_recovery () =
  let run_once on =
    with_caches on (fun () ->
        run_c_program (boot ()) errno_program)
  in
  let expected = "ENOENT fd=3 w=2 r=2 hi again=-9" in
  check_string "fast path" expected (run_once true);
  check_string "no TLB / no dcache" expected (run_once false)

let suite =
  [
    test "errno: table round-trips" errno_table;
    test "errno: double close is EBADF" double_close;
    test "errno: lowest free fd is reused" lowest_fd_reuse;
    test "errno: EMFILE at the descriptor cap" emfile_at_cap;
    test "errno: ENOSPC when a shared slot fills" enospc_on_full_slot;
    fd_traffic_matches_oracle;
    test "errno: ISA syscalls report negative v0 and recover" isa_errno_recovery;
  ]

(* Scenario tests: end-to-end behaviours the paper describes in prose. *)

open Harness
module Modinst = Hemlock_linker.Modinst
module Layout = Hemlock_vm.Layout
module Stats = Hemlock_util.Stats
module Shm_heap = Hemlock_runtime.Shm_heap
module Shared_list = Hemlock_runtime.Shared_list

(* "Users can arrange to use new versions of dynamic modules by changing
   the LD_LIBRARY_PATH environment variable prior to execution.  This
   feature is useful for debugging and, more important, for customizing
   the use of shared data to the current user or program instance." *)
let ld_library_path_redirects () =
  let k, _ldl = boot () in
  let fs = Kernel.fs k in
  List.iter (Fs.mkdir fs) [ "/home/stable"; "/home/experimental"; "/home/t" ];
  install_c k "/home/stable/util.o" "int version() { return 1; }";
  install_c k "/home/experimental/util.o" "int version() { return 2; }";
  install_c k "/home/t/main.o" "extern int version(); int main() { return version(); }";
  (* linked against the bare name; -L points at stable *)
  ignore
    (Lds.link
       (ctx_in k "/home/t" ())
       ~cli_dirs:[ "/home/stable" ]
       ~specs:
         [
           { Lds.sp_name = "main.o"; sp_class = Sharing.Static_private };
           { Lds.sp_name = "util.o"; sp_class = Sharing.Dynamic_private };
         ]
       ~output:"prog" ());
  let run env =
    let proc = Kernel.spawn_exec k ~env "/home/t/prog" in
    Kernel.run k;
    exit_code proc
  in
  check_int "default finds the stable version" 1 (run []);
  check_int "env redirects to the experimental version" 2
    (run [ ("LD_LIBRARY_PATH", "/home/experimental") ]);
  check_int "and back, per process" 1 (run [])

(* fork before the lazy link fires: each process resolves its own copy. *)
let fork_before_lazy_link () =
  let k, ldl = boot () in
  ignore ldl;
  let fs = Kernel.fs k in
  Fs.mkdir fs "/home/t";
  install_c k "/home/t/lib.o" "extern int seed; int get() { return seed + 1; }";
  install_c k "/home/t/seedmod.o" "int seed = 10;";
  install_c k "/home/t/main.o"
    {|
extern int get();
int main() {
  int pid;
  pid = fork();          // fork BEFORE anything has touched lib.o
  if (pid == 0) {
    print_int(get());    // child faults and links its own instance
    exit(0);
  }
  wait();
  print_int(get());      // parent faults and links independently
  return 0;
}|};
  ignore
    (link k ~dir:"/home/t"
       ~specs:
         [
           ("main.o", Sharing.Static_private);
           ("lib.o", Sharing.Dynamic_private);
           ("seedmod.o", Sharing.Dynamic_private);
         ]
       "prog");
  let _, out = run_program k "/home/t/prog" in
  check_string "both sides resolved after the fork" "1111" out

(* An ISA program follows a raw pointer obtained from path_to_addr into
   a segment nobody mapped: the fault handler's second duty. *)
let isa_pointer_chase () =
  let k, ldl = boot () in
  let fs = Kernel.fs k in
  Fs.create_file fs "/shared/blob";
  let seg = Fs.segment_of fs "/shared/blob" in
  Hemlock_vm.Segment.set_u32 seg 64 4242;
  ignore ldl;
  Fs.mkdir fs "/home/t";
  install_c k "/home/t/main.o"
    {|
int main() {
  int *p;
  p = path_to_addr("/shared/blob");
  print_int(p[16]);
  return 0;
}|};
  ignore (link k ~dir:"/home/t" ~specs:[ ("main.o", Sharing.Static_private) ] "prog");
  Stats.reset ();
  let _, out = run_program k "/home/t/prog" in
  check_string "pointer chased" "4242" out;
  check_bool "at least one mapping fault" true (Stats.global.faults >= 1)

(* A linked structure spanning three different segments, traversed cold:
   each hop faults the next segment in. *)
let cross_segment_chain () =
  let k, ldl = boot () in
  let fs = Kernel.fs k in
  List.iter (Fs.create_file fs) [ "/shared/n1"; "/shared/n2"; "/shared/n3" ];
  (* builder process: node = [next; value], one node per segment *)
  run_native k (fun k proc ->
      Ldl.attach ldl proc;
      let addr name = Fs.addr_of_path fs name in
      let write base next value =
        Kernel.store_u32 k proc base next;
        Kernel.store_u32 k proc (base + 4) value
      in
      write (addr "/shared/n1") (addr "/shared/n2") 1;
      write (addr "/shared/n2") (addr "/shared/n3") 2;
      write (addr "/shared/n3") 0 3);
  (* a different, cold process walks it *)
  let total, faults =
    run_native k (fun k proc ->
        Ldl.attach ldl proc;
        Stats.reset ();
        let rec walk node acc =
          if node = 0 then acc
          else walk (Kernel.load_u32 k proc node) (acc + Kernel.load_u32 k proc (node + 4))
        in
        let total = walk (Fs.addr_of_path fs "/shared/n1") 0 in
        (total, Stats.global.faults))
  in
  check_int "sum across three segments" 6 total;
  check_int "one fault per segment" 3 faults

(* Public link state is shared: after one process pays for linking, a
   later process maps the module already-linked and takes no fault. *)
let link_state_shared_across_processes () =
  let k, ldl = boot () in
  ignore ldl;
  let fs = Kernel.fs k in
  Fs.mkdir fs "/shared/lib";
  install_c k "/shared/lib/ext.o" "extern int base_v; int get() { return base_v + 1; }";
  install_c k "/shared/lib/basemod.o" "int base_v = 41;";
  Fs.mkdir fs "/home/t";
  install_c k "/home/t/main.o" "extern int get(); int main() { return get(); }";
  ignore
    (link k ~dir:"/home/t"
       ~specs:
         [
           ("main.o", Sharing.Static_private);
           ("/shared/lib/ext.o", Sharing.Dynamic_public);
           ("/shared/lib/basemod.o", Sharing.Dynamic_public);
         ]
       "prog");
  let run () =
    Stats.reset ();
    let proc = Kernel.spawn_exec k "/home/t/prog" in
    Kernel.run k;
    check_int "result" 42 (exit_code proc);
    Stats.global.faults
  in
  let first = run () in
  let second = run () in
  check_bool "first process paid the linking fault" true (first >= 1);
  check_int "second process took no faults at all" 0 second

(* Per-segment heaps: structures in two different segments allocate from
   their own heaps, found from any interior pointer. *)
let two_heaps_stay_separate () =
  let k, ldl = boot () in
  run_native k (fun k proc ->
      Ldl.attach ldl proc;
      let h1 = Shm_heap.create k proc ~path:"/shared/heap1" in
      let h2 = Shm_heap.create k proc ~path:"/shared/heap2" in
      let head1 = Shm_heap.alloc k proc ~heap:h1 4 in
      let head2 = Shm_heap.alloc k proc ~heap:h2 4 in
      Shared_list.init k proc ~head:head1;
      Shared_list.init k proc ~head:head2;
      ignore (Shared_list.push k proc ~head:head1 ~fields:[ 1 ]);
      ignore (Shared_list.push k proc ~head:head2 ~fields:[ 2 ]);
      ignore (Shared_list.push k proc ~head:head2 ~fields:[ 3 ]);
      check_int "list 1 in segment 1" (Layout.slot_of_addr h1)
        (Layout.slot_of_addr (Kernel.load_u32 k proc head1));
      check_int "list 2 in segment 2" (Layout.slot_of_addr h2)
        (Layout.slot_of_addr (Kernel.load_u32 k proc head2));
      check_int "lengths independent" 1 (Shared_list.length k proc ~head:head1);
      check_int "heap 1 live" 12 (Shm_heap.live_bytes k proc ~heap:h1);
      check_int "heap 2 live" 20 (Shm_heap.live_bytes k proc ~heap:h2))

(* The search order at static link time: cwd beats -L beats
   LD_LIBRARY_PATH beats the defaults. *)
let static_search_precedence () =
  let k, _ldl = boot () in
  let fs = Kernel.fs k in
  List.iter (Fs.mkdir fs) [ "/home/t"; "/cli"; "/env" ];
  let version dir v = install_c k (dir ^ "/m.o") (Printf.sprintf "int v() { return %d; }" v) in
  version "/home/t" 1;
  version "/cli" 2;
  version "/env" 3;
  version "/usr/lib" 4;
  install_c k "/home/t/main.o" "extern int v(); int main() { return v(); }";
  let link_with ~remove_first =
    if remove_first <> "" then Fs.unlink fs (remove_first ^ "/m.o");
    ignore
      (Lds.link
         (ctx_in k "/home/t" ~env:[ ("LD_LIBRARY_PATH", "/env") ] ())
         ~cli_dirs:[ "/cli" ]
         ~specs:
           [
             { Lds.sp_name = "main.o"; sp_class = Sharing.Static_private };
             { Lds.sp_name = "m.o"; sp_class = Sharing.Static_private };
           ]
         ~output:"prog" ());
    let proc, _ = run_program k "/home/t/prog" in
    exit_code proc
  in
  check_int "cwd wins" 1 (link_with ~remove_first:"");
  check_int "then -L" 2 (link_with ~remove_first:"/home/t");
  check_int "then LD_LIBRARY_PATH" 3 (link_with ~remove_first:"/cli");
  check_int "then the defaults" 4 (link_with ~remove_first:"/env")

(* The headline claim, end to end: an ordinary program, written in the
   toy C dialect with no set-up calls of any kind, walks the rwho
   daemon's pointer-linked shared database — language-level access to
   another program's live data structure. *)
let isa_program_reads_rwho_db () =
  let k, ldl = boot () in
  ignore ldl;
  (* the daemon side: build the shared database natively *)
  run_native k (fun k proc ->
      Hemlock_apps.Rwho.Shm.setup k proc;
      List.iter
        (fun (host, l1) ->
          Hemlock_apps.Rwho.Shm.store k proc
            {
              Hemlock_apps.Rwho.st_host = host;
              st_load1 = l1;
              st_load5 = 0;
              st_load15 = 0;
              st_uptime = 1000;
              st_users = [];
            })
        [ ("hostA", 150); ("hostB", 275) ]);
  (* the client side: plain Hem-C; node = [next; host_ptr; load1; ...] *)
  Fs.mkdir (Kernel.fs k) "/home/t";
  install_c k "/home/t/main.o"
    {|
int main() {
  int *base;
  int *node;
  base = path_to_addr("/shared/rwho/db");
  node = base[6];            // list head: first heap block, word 6 of the file
  while (node != 0) {
    print_str(node[1]);      // host name string, in place
    print_str(" load ");
    print_int(node[2]);
    print_str("
");
    node = *node;
  }
  return 0;
}|};
  ignore (link k ~dir:"/home/t" ~specs:[ ("main.o", Sharing.Static_private) ] "rwho");
  let _, out = run_program k "/home/t/rwho" in
  check_string "walked the daemon's live structure" "hostB load 275
hostA load 150
" out

(* Scoped linking with many same-named subsystems in one process. *)
let many_conflicting_subsystems () =
  let k, _ldl = boot () in
  let fs = Kernel.fs k in
  let n = 6 in
  let ctx = ctx_in k "/" () in
  for i = 1 to n do
    let dir = Printf.sprintf "/shared/sub%d" i in
    Fs.mkdir fs dir;
    install_c k (dir ^ "/impl.o") (Printf.sprintf "int helper() { return %d; }" (i * 100));
    install_c k
      (dir ^ "/api.o")
      (Printf.sprintf "extern int helper(); int api%d() { return helper() + %d; }" i i);
    Lds.embed_metadata ctx ~template:(dir ^ "/api.o") ~modules:[ "impl.o" ]
      ~search_path:[ dir ]
  done;
  Fs.mkdir fs "/home/t";
  let calls =
    String.concat ""
      (List.init n (fun i ->
           Printf.sprintf "  print_int(api%d()); print_str(\" \");\n" (i + 1)))
  in
  let externs =
    String.concat "" (List.init n (fun i -> Printf.sprintf "extern int api%d();
" (i + 1)))
  in
  install_c k "/home/t/main.o"
    (Printf.sprintf "%sint main() {
%s  return 0;
}" externs calls);
  ignore
    (link k ~dir:"/home/t"
       ~specs:
         (("main.o", Sharing.Static_private)
         :: List.init n (fun i ->
                (Printf.sprintf "/shared/sub%d/api.o" (i + 1), Sharing.Dynamic_public)))
       "prog");
  let _, out = run_program k "/home/t/prog" in
  check_string "six subsystems, six helpers, zero collisions" "101 202 303 404 505 606 " out

(* The memory-system fast path (software TLB + decoded-insn cache) is
   observability-only: a lazy-linking + fork workload — the paper's
   core mechanics — must produce byte-identical console output and an
   identical simulated cost model with the caches on and off. *)
let caches_do_not_change_simulation () =
  let module Cpu = Hemlock_isa.Cpu in
  let module As = Hemlock_vm.Address_space in
  let module Trace = Hemlock_isa.Trace in
  let profile enabled =
    let old_tlb = !As.caching_default and old_dc = !Cpu.decode_cache_enabled in
    (* Pin the trace JIT off: this test measures the interpreter's TLB +
       decode-cache fast path, which a compiled trace bypasses entirely
       (test_jit covers JIT-on/off equivalence). *)
    let old_jit = !Trace.enabled in
    As.caching_default := enabled;
    Cpu.decode_cache_enabled := enabled;
    Trace.enabled := false;
    Fun.protect
      ~finally:(fun () ->
        As.caching_default := old_tlb;
        Cpu.decode_cache_enabled := old_dc;
        Trace.enabled := old_jit)
      (fun () ->
        let k, _ldl = boot () in
        let fs = Kernel.fs k in
        Fs.mkdir fs "/shared/lib";
        install_c k "/shared/lib/counter.o"
          "int counter; int bump() { counter = counter + 1; return counter; }";
        Fs.mkdir fs "/home/t";
        install_c k "/home/t/main.o"
          {|
extern int bump();
int main() {
  int pid;
  pid = fork();
  if (pid == 0) { print_int(bump()); exit(0); }
  wait();
  print_int(bump());
  return 0;
}
|};
        ignore
          (link k ~dir:"/home/t"
             ~specs:
               [
                 ("main.o", Sharing.Static_private);
                 ("/shared/lib/counter.o", Sharing.Dynamic_public);
               ]
             "prog");
        Stats.reset ();
        let before = Stats.snapshot () in
        let _, out1 = run_program k "/home/t/prog" in
        let _, out2 = run_program k "/home/t/prog" in
        (Stats.diff ~before ~after:(Stats.snapshot ()), out1 ^ "|" ^ out2))
  in
  let d_on, out_on = profile true in
  let d_off, out_off = profile false in
  check_string "console identical" out_off out_on;
  check_int "instructions identical" d_off.Stats.instructions d_on.Stats.instructions;
  check_int "faults identical" d_off.Stats.faults d_on.Stats.faults;
  check_int "syscalls identical" d_off.Stats.syscalls d_on.Stats.syscalls;
  check_int "simulated cycles identical" (Stats.cycles d_off) (Stats.cycles d_on);
  check_bool "fast path exercised" true (d_on.Stats.tlb_hits > 0 && d_on.Stats.decode_hits > 0);
  check_bool "slow path records no cache hits" true
    (d_off.Stats.tlb_hits = 0 && d_off.Stats.decode_hits = 0)

let suite =
  [
    test "scenario: LD_LIBRARY_PATH redirects module versions" ld_library_path_redirects;
    test "scenario: fork before the lazy link fires" fork_before_lazy_link;
    test "scenario: ISA program chases a raw shared pointer" isa_pointer_chase;
    test "scenario: pointer chain spans three segments" cross_segment_chain;
    test "scenario: public link state amortised across processes"
      link_state_shared_across_processes;
    test "scenario: per-segment heaps stay separate" two_heaps_stay_separate;
    test "scenario: static search precedence (s3 order)" static_search_precedence;
    test "scenario: Hem-C program walks the rwho shared database" isa_program_reads_rwho_db;
    test "scenario: N same-named subsystems stay isolated" many_conflicting_subsystems;
    test "scenario: caches leave the simulation unchanged" caches_do_not_change_simulation;
  ]

open Harness
module Layout = Hemlock_vm.Layout
module Prot = Hemlock_vm.Prot
module Segment = Hemlock_vm.Segment
module As = Hemlock_vm.Address_space

(* ----- layout ----- *)

let layout_regions () =
  check_bool "shared region is 1GB of 1MB slots" true (Layout.shared_slots = 1024);
  check_int "slot 0" 0x3000_0000 (Layout.addr_of_slot 0);
  check_int "slot 1023" (0x7000_0000 - 0x10_0000) (Layout.addr_of_slot 1023);
  check_int "roundtrip" 77 (Layout.slot_of_addr (Layout.addr_of_slot 77));
  check_int "mid-slot" 77 (Layout.slot_of_addr (Layout.addr_of_slot 77 + 1234));
  check_bool "public" true (Layout.is_public 0x3000_0000);
  check_bool "heap not public" false (Layout.is_public 0x2FFF_FFFF);
  check_bool "stack not public" false (Layout.is_public 0x7000_0000);
  check_string "region names" "text" (Layout.region_name 0x100);
  check_string "heap name" "heap" (Layout.region_name 0x1000_0000);
  check_string "shared name" "shared" (Layout.region_name 0x4000_0000);
  check_string "stack name" "stack" (Layout.region_name 0x7000_1000);
  check_string "kernel name" "kernel" (Layout.region_name 0x8000_0000)

let layout_pages () =
  check_bool "aligned" true (Layout.is_page_aligned 0x2000);
  check_bool "unaligned" false (Layout.is_page_aligned 0x2001);
  check_int "page_down" 0x2000 (Layout.page_down 0x2FFF);
  check_int "page_up exact" 0x2000 (Layout.page_up 0x2000);
  check_int "page_up" 0x3000 (Layout.page_up 0x2001)

(* ----- prot ----- *)

let prot_matrix () =
  check_bool "no_access read" false (Prot.allows Prot.No_access Prot.Read);
  check_bool "ro read" true (Prot.allows Prot.Read_only Prot.Read);
  check_bool "ro write" false (Prot.allows Prot.Read_only Prot.Write);
  check_bool "rw exec" false (Prot.allows Prot.Read_write Prot.Exec);
  check_bool "rx exec" true (Prot.allows Prot.Read_exec Prot.Exec);
  check_bool "rx write" false (Prot.allows Prot.Read_exec Prot.Write);
  check_bool "rwx all" true
    (List.for_all (Prot.allows Prot.Read_write_exec) [ Prot.Read; Prot.Write; Prot.Exec ])

(* ----- segment ----- *)

let segment_grow_zero () =
  let s = Segment.create ~name:"t" ~max_size:4096 () in
  check_int "fresh size" 0 (Segment.size s);
  check_int "read beyond size is zero" 0 (Segment.get_u32 s 100);
  Segment.set_u32 s 256 0xCAFEBABE;
  check_int "sparse write read back" 0xCAFEBABE (Segment.get_u32 s 256);
  check_int "size tracks high water" 260 (Segment.size s);
  check_int "hole reads zero" 0 (Segment.get_u8 s 10)

let segment_truncate_clears () =
  let s = Segment.create ~name:"t" ~max_size:4096 () in
  Segment.set_u32 s 0 0x12345678;
  Segment.resize s 0;
  Segment.resize s 4;
  check_int "truncated data cleared" 0 (Segment.get_u32 s 0)

let segment_bounds () =
  let s = Segment.create ~name:"t" ~max_size:64 () in
  Alcotest.check_raises "oob write"
    (Invalid_argument "Segment t: offset 64+1 out of bounds (max 64)") (fun () ->
      Segment.set_u8 s 64 1);
  Alcotest.check_raises "oob resize" (Invalid_argument "Segment.resize: bad size")
    (fun () -> Segment.resize s 65)

let segment_copy_independent () =
  let s = Segment.create ~name:"t" ~max_size:4096 () in
  Segment.set_u32 s 0 111;
  let c = Segment.copy s in
  Segment.set_u32 s 0 222;
  check_int "copy unchanged" 111 (Segment.get_u32 c 0);
  check_bool "fresh identity" true (Segment.id c <> Segment.id s)

let segment_blit () =
  let s = Segment.create ~name:"t" ~max_size:4096 () in
  Segment.blit_in s ~dst_off:8 (Bytes.of_string "hello");
  check_string "blit roundtrip" "hello"
    (Bytes.to_string (Segment.blit_out s ~src_off:8 ~len:5));
  check_string "blit_out pads zeroes" "hello\000\000"
    (Bytes.to_string (Segment.blit_out s ~src_off:8 ~len:7))

(* ----- address space ----- *)

let seg n = Segment.create ~name:n ~max_size:0x10000 ()

let map_space () =
  let sp = As.create () in
  As.map sp ~base:0x1000 ~len:0x2000 ~seg:(seg "a") ~prot:Prot.Read_write
    ~share:As.Private ~label:"a" ();
  As.store_u32 sp 0x1000 42;
  check_int "load back" 42 (As.load_u32 sp 0x1000);
  As.store_u8 sp 0x2FFF 7;
  check_int "last byte" 7 (As.load_u8 sp 0x2FFF)

let map_faults () =
  let sp = As.create () in
  As.map sp ~base:0x1000 ~len:0x1000 ~seg:(seg "a") ~prot:Prot.Read_only
    ~share:As.Private ~label:"a" ();
  (match As.load_u32 sp 0x5000 with
  | exception As.Fault { addr = 0x5000; access = Prot.Read; reason = As.Unmapped } -> ()
  | _ -> Alcotest.fail "expected unmapped fault");
  (match As.store_u32 sp 0x1000 1 with
  | exception As.Fault { access = Prot.Write; reason = As.Protection; _ } -> ()
  | _ -> Alcotest.fail "expected protection fault");
  (match As.fetch sp 0x1000 with
  | exception As.Fault { access = Prot.Exec; reason = As.Protection; _ } -> ()
  | _ -> Alcotest.fail "expected exec fault");
  (* A 4-byte access straddling the end of a mapping faults. *)
  match As.load_u32 sp 0x1FFE with
  | exception As.Fault { reason = As.Unmapped; _ } -> ()
  | _ -> Alcotest.fail "expected straddle fault"

let map_rejects () =
  let sp = As.create () in
  As.map sp ~base:0x1000 ~len:0x1000 ~seg:(seg "a") ~prot:Prot.Read_write
    ~share:As.Private ~label:"a" ();
  check_bool "overlap rejected" true
    (try
       As.map sp ~base:0x1000 ~len:0x1000 ~seg:(seg "b") ~prot:Prot.Read_write
         ~share:As.Private ~label:"b" ();
       false
     with Invalid_argument _ -> true);
  check_bool "unaligned rejected" true
    (try
       As.map sp ~base:0x1001 ~len:0x1000 ~seg:(seg "b") ~prot:Prot.Read_write
         ~share:As.Private ~label:"b" ();
       false
     with Invalid_argument _ -> true);
  check_bool "kernel range rejected" true
    (try
       As.map sp ~base:0x8000_0000 ~len:0x1000 ~seg:(seg "b") ~prot:Prot.Read_write
         ~share:As.Private ~label:"b" ();
       false
     with Invalid_argument _ -> true)

let protect_unmap () =
  let sp = As.create () in
  As.map sp ~base:0x1000 ~len:0x1000 ~seg:(seg "a") ~prot:Prot.No_access
    ~share:As.Private ~label:"a" ();
  (match As.load_u8 sp 0x1000 with
  | exception As.Fault { reason = As.Protection; _ } -> ()
  | _ -> Alcotest.fail "no_access should fault");
  As.protect sp 0x1000 Prot.Read_write;
  As.store_u8 sp 0x1000 9;
  check_int "after protect" 9 (As.load_u8 sp 0x1000);
  As.unmap sp 0x1000;
  match As.load_u8 sp 0x1000 with
  | exception As.Fault { reason = As.Unmapped; _ } -> ()
  | _ -> Alcotest.fail "unmapped after unmap"

(* What the kernel's fault pipeline does for COW: a write protection
   fault on a clone-shared mapping is resolved by [As.resolve_cow] and
   the store retried.  Used by the direct (kernel-less) clone tests. *)
let rec store_cow sp addr v =
  try As.store_u32 sp addr v with
  | As.Fault { addr = faddr; access = Prot.Write; reason = As.Protection }
    when As.resolve_cow sp faddr -> store_cow sp addr v

let clone_fork_semantics () =
  let sp = As.create () in
  let priv = seg "priv" and pub = seg "pub" in
  As.map sp ~base:0x1000 ~len:0x1000 ~seg:priv ~prot:Prot.Read_write ~share:As.Private
    ~label:"priv" ();
  As.map sp ~base:0x3000_0000 ~len:0x1000 ~seg:pub ~prot:Prot.Read_write ~share:As.Public
    ~label:"pub" ();
  As.store_u32 sp 0x1000 1;
  As.store_u32 sp 0x3000_0000 1;
  let child = As.clone sp in
  (* Private divergence. *)
  store_cow sp 0x1000 2;
  check_int "parent private" 2 (As.load_u32 sp 0x1000);
  check_int "child private copy unchanged" 1 (As.load_u32 child 0x1000);
  (* Public sharing (never COW-flagged, no fault to resolve). *)
  As.store_u32 child 0x3000_0000 99;
  check_int "public shared both ways" 99 (As.load_u32 sp 0x3000_0000)

let gap_and_strings () =
  let sp = As.create () in
  As.map sp ~base:0x1000 ~len:0x1000 ~seg:(seg "a") ~prot:Prot.Read_write
    ~share:As.Private ~label:"a" ();
  check_bool "find_gap skips mapping" true
    (As.find_gap sp ~lo:0x1000 ~hi:0x10000 ~size:0x1000 = Some 0x2000);
  As.write_bytes sp 0x1100 (Bytes.of_string "abc\000");
  check_string "cstring" "abc" (As.read_cstring sp 0x1100);
  check_string "read_bytes" "abc" (Bytes.to_string (As.read_bytes sp 0x1100 3))

(* ----- software TLB ----- *)

(* The paper's lazy-linking trick depends on no-access mappings and
   protection flips faulting even after the address was translated (and
   so cached).  These pin the epoch-invalidation behaviour directly. *)
let tlb_invalidation () =
  let sp = As.create ~caching:true () in
  As.map sp ~base:0x1000 ~len:0x1000 ~seg:(seg "a") ~prot:Prot.Read_write
    ~share:As.Private ~label:"a" ();
  As.store_u32 sp 0x1000 7;
  check_int "cached read" 7 (As.load_u32 sp 0x1000);
  As.protect sp 0x1000 Prot.No_access;
  (match As.load_u32 sp 0x1000 with
  | exception As.Fault { reason = As.Protection; _ } -> ()
  | _ -> Alcotest.fail "no-access after cached translation must fault");
  As.protect sp 0x1000 Prot.Read_write;
  check_int "readable again" 7 (As.load_u32 sp 0x1000);
  As.unmap sp 0x1000;
  match As.load_u8 sp 0x1000 with
  | exception As.Fault { reason = As.Unmapped; _ } -> ()
  | _ -> Alcotest.fail "unmap after cached translation must fault"

let tlb_clone_isolation () =
  let sp = As.create ~caching:true () in
  As.map sp ~base:0x1000 ~len:0x1000 ~seg:(seg "a") ~prot:Prot.Read_write
    ~share:As.Private ~label:"a" ();
  As.store_u32 sp 0x1000 5;
  check_int "warm parent TLB" 5 (As.load_u32 sp 0x1000);
  let child = As.clone sp in
  (* The child's fresh TLB must re-resolve to its own copied segment,
     not serve the parent's cached translation. *)
  store_cow sp 0x1000 6;
  check_int "child sees its copy" 5 (As.load_u32 child 0x1000);
  As.unmap child 0x1000;
  check_int "parent unaffected by child unmap" 6 (As.load_u32 sp 0x1000)

(* Drive a TLB'd and a TLB-less space through the same random sequence
   of map / unmap / protect / access / clone operations: every
   observable — values, fault payloads, argument errors — must agree. *)
let prop_tlb_coherence =
  prop "address_space: TLB'd and TLB-less spaces observe identically" ~count:300
    QCheck2.Gen.(
      list_size (int_range 1 80) (triple (int_bound 6) (int_bound 7) (int_bound 5)))
    (fun ops ->
      let prots =
        [| Prot.No_access; Prot.Read_only; Prot.Read_write; Prot.Read_exec; Prot.Read_write_exec |]
      in
      let mk caching =
        ( ref (As.create ~caching ()),
          Array.init 8 (fun i ->
              Segment.create ~name:(Printf.sprintf "s%d" i) ~max_size:0x2000 ()) )
      in
      let obs (spr, segs) (tag, a, b) =
        let sp = !spr in
        let base = 0x1000 + (a land 7) * 0x1000 in
        try
          match tag with
          | 0 ->
            As.map sp ~base ~len:0x1000 ~seg:segs.(a land 7) ~prot:prots.(b mod 5)
              ~share:As.Private ~label:"t" ();
            "mapped"
          | 1 ->
            As.unmap sp base;
            "unmapped"
          | 2 ->
            As.protect sp base prots.(b mod 5);
            "protected"
          | 3 -> string_of_int (As.load_u32 sp (base + (b * 4)))
          | 4 ->
            As.store_u32 sp (base + (b * 4)) ((a * 1000) + b);
            "stored"
          | 5 -> string_of_int (As.fetch sp (base + (b * 4)))
          | _ ->
            spr := As.clone sp;
            "cloned"
        with
        | As.Fault { addr; access; reason } ->
          Printf.sprintf "fault %x %s %s" addr
            (match access with Prot.Read -> "r" | Prot.Write -> "w" | Prot.Exec -> "x")
            (match reason with
            | As.Unmapped -> "unmapped"
            | As.Protection -> "protection"
            | As.Not_resident -> "not-resident")
        | Invalid_argument _ -> "invalid"
        | Not_found -> "notfound"
      in
      let w_on = mk true and w_off = mk false in
      List.for_all (fun op -> obs w_on op = obs w_off op) ops)

let prop_segment_io =
  prop "segment: random u8 writes read back"
    QCheck2.Gen.(list_size (int_range 1 60) (pair (int_range 0 1023) (int_bound 255)))
    (fun writes ->
      let s = Segment.create ~name:"p" ~max_size:1024 () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (off, v) ->
          Segment.set_u8 s off v;
          Hashtbl.replace model off v)
        writes;
      Hashtbl.fold (fun off v ok -> ok && Segment.get_u8 s off = v) model true)

let suite =
  [
    test "layout: regions and slots" layout_regions;
    test "layout: page arithmetic" layout_pages;
    test "prot: access matrix" prot_matrix;
    test "segment: grows and zero-fills" segment_grow_zero;
    test "segment: truncation clears" segment_truncate_clears;
    test "segment: bounds enforced" segment_bounds;
    test "segment: copy is independent" segment_copy_independent;
    test "segment: blit in/out" segment_blit;
    test "address_space: map and access" map_space;
    test "address_space: faults carry cause" map_faults;
    test "address_space: bad mappings rejected" map_rejects;
    test "address_space: protect and unmap" protect_unmap;
    test "address_space: clone = fork memory semantics" clone_fork_semantics;
    test "address_space: TLB invalidated by protect/unmap" tlb_invalidation;
    test "address_space: clone gets a cold TLB" tlb_clone_isolation;
    test "address_space: gaps and strings" gap_and_strings;
    prop_segment_io;
    prop_tlb_coherence;
  ]

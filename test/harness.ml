(** Shared helpers for the test suites. *)

module Kernel = Hemlock_os.Kernel
module Proc = Hemlock_os.Proc
module Fs = Hemlock_sfs.Fs
module Path = Hemlock_sfs.Path
module Objfile = Hemlock_obj.Objfile
module Asm = Hemlock_isa.Asm
module Cc = Hemlock_cc.Cc
module Lds = Hemlock_linker.Lds
module Ldl = Hemlock_linker.Ldl
module Search = Hemlock_linker.Search
module Sharing = Hemlock_linker.Sharing

(** A booted machine with the Hemlock linker and lock syscalls. *)
let boot () =
  let k = Kernel.create () in
  let ldl = Ldl.install k in
  Hemlock_runtime.Sync.install k;
  (k, ldl)

let write_obj k path obj = Fs.write_file (Kernel.fs k) path (Objfile.serialize obj)

(** Compile Hem-C source and install the template at [path]. *)
let install_c k path src =
  write_obj k path (Cc.to_object ~name:(Filename.basename path) src)

(** Assemble and install the template at [path]. *)
let install_s k path src =
  write_obj k path (Asm.assemble ~name:(Filename.basename path) src)

let ctx_in k dir ?(env = []) () =
  { Search.fs = Kernel.fs k; cwd = Path.of_string ~cwd:Path.root dir; env }

(** Link specs into [out] with cwd [dir]. *)
let link k ?(dir = "/home") ?env ?cli_dirs ?duplicate_policy ~specs out =
  Lds.link (ctx_in k dir ?env ()) ?cli_dirs ?duplicate_policy
    ~specs:(List.map (fun (name, cls) -> { Lds.sp_name = name; sp_class = cls }) specs)
    ~output:out ()

(** Run a program to completion and return the console output. *)
let run_program k ?env path =
  Kernel.console_clear k;
  let proc = Kernel.spawn_exec k ?env ~name:path path in
  Kernel.run k;
  (proc, Kernel.console k)

(** Run a native body to completion; returns its result. *)
let run_native k ?env ?cwd f =
  let result = ref None in
  ignore
    (Kernel.spawn_native k ~name:"test-native" ?env ?cwd (fun k proc ->
         result := Some (f k proc);
         0));
  Kernel.run k;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "native test body did not finish"

(** Compile+link+run a single static-private Hem-C program; returns
    console output. *)
let run_c_program (k, _ldl) src =
  if not (Fs.exists (Kernel.fs k) "/home/t") then Fs.mkdir (Kernel.fs k) "/home/t";
  install_c k "/home/t/main.o" src;
  ignore (link k ~dir:"/home/t" ~specs:[ ("main.o", Sharing.Static_private) ] "prog");
  snd (run_program k "/home/t/prog")

let exit_code proc =
  match proc.Proc.state with
  | Proc.Zombie code -> code
  | Proc.Runnable | Proc.Blocked _ -> Alcotest.fail "process still alive"

let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test name f = Alcotest.test_case name `Quick f

(** Substring check for error-message assertions. *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(** Register a QCheck property as an alcotest case. *)
let prop name ?(count = 200) ?print gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ?print gen f)

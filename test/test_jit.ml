open Harness
module Reg = Hemlock_isa.Reg
module Insn = Hemlock_isa.Insn
module Cpu = Hemlock_isa.Cpu
module Trap = Hemlock_isa.Trap
module Trace = Hemlock_isa.Trace
module Disasm = Hemlock_isa.Disasm
module As = Hemlock_vm.Address_space
module Prot = Hemlock_vm.Prot
module Segment = Hemlock_vm.Segment
module Stats = Hemlock_util.Stats

(* The trace JIT's contract is byte-identical execution: same registers,
   same memory, same trap sequence, same simulated cost model as the
   plain interpreter, for any program — including self-modifying code,
   undecodable words and quantum boundaries landing mid-trace.  The
   tests here run the same program under the interpreter (JIT off) and
   under an aggressive JIT (threshold 1, so everything compiles) in
   lockstep and compare everything observable. *)

let with_jit ~threshold:th f =
  let old_e = !Trace.enabled and old_t = !Trace.threshold in
  (match th with
  | Some t ->
    Trace.enabled := true;
    Trace.threshold := t
  | None -> Trace.enabled := false);
  Fun.protect
    ~finally:(fun () ->
      Trace.enabled := old_e;
      Trace.threshold := old_t)
    f

(* ----- ISA-level differential engine ----- *)

type engine_result = {
  er_events : string;  (* trap log: syscalls seen, halt, fault, illegal *)
  er_regs : int array;
  er_pc : int;
  er_text : string;  (* final code bytes: self-modifying stores land here *)
  er_data : string;
  er_instructions : int;
  er_syscalls : int;
  er_faults : int;
  er_cycles : int;
}

(* A tiny machine: text mapped RWX at 0x1000 (so programs can store
   over their own code), data at 0x8000, sp in the middle of data.  The
   driver mirrors the kernel's quantum loop: bursts of [quantum] fuel,
   syscalls resume the same burst (v1 := 2*v0+1 so results are
   data-dependent), faults and halts end the run, and a quanta cap
   bounds divergent programs — identical fuel accounting means both
   engines stop in identical states. *)
let run_engine ~quantum words =
  Stats.reset ();
  let sp = As.create () in
  let text = Segment.create ~name:"text" ~max_size:0x10000 () in
  List.iteri (fun i w -> Segment.set_u32 text (4 * i) w) words;
  As.map sp ~base:0x1000 ~len:0x1000 ~seg:text ~prot:Prot.Read_write_exec
    ~share:As.Private ~label:"text" ();
  let data = Segment.create ~name:"data" ~max_size:0x10000 () in
  As.map sp ~base:0x8000 ~len:0x1000 ~seg:data ~prot:Prot.Read_write
    ~share:As.Private ~label:"data" ();
  let cpu = Cpu.create ~entry:0x1000 ~sp:0x8800 in
  let events = Buffer.create 64 in
  let rec quanta_loop quanta =
    if quanta = 0 then Buffer.add_string events "out-of-quanta"
    else
      let rec burst fuel =
        if fuel = 0 then `Again
        else
          match Cpu.run_trap ~fuel cpu sp with
          | Cpu.Out_of_fuel, _ -> `Again
          | Cpu.Trapped Trap.Syscall, left ->
            let v0 = Cpu.reg cpu Reg.v0 in
            Buffer.add_string events (Printf.sprintf "sys:%d;" v0);
            Cpu.set_reg cpu Reg.v1 ((2 * v0) + 1);
            burst left
          | Cpu.Trapped (Trap.Halt code), _ ->
            Buffer.add_string events (Printf.sprintf "halt:%d;" code);
            `Done
          | Cpu.Trapped (Trap.Fault f), _ ->
            Buffer.add_string events (Format.asprintf "%a;" Trap.pp_fault f);
            `Done
          | Cpu.Trapped (Trap.Illegal _ as tr), _ ->
            Buffer.add_string events (Format.asprintf "%a;" Trap.pp tr);
            `Done
          | exception Cpu.Cpu_error { pc; msg } ->
            Buffer.add_string events (Printf.sprintf "cpu-error:0x%08x:%s;" pc msg);
            `Done
      in
      match burst quantum with `Done -> () | `Again -> quanta_loop (quanta - 1)
  in
  quanta_loop 200;
  let s = Stats.snapshot () in
  {
    er_events = Buffer.contents events;
    er_regs = Array.copy cpu.Cpu.regs;
    er_pc = cpu.Cpu.pc;
    er_text = Bytes.to_string (Segment.contents text);
    er_data = Bytes.to_string (Segment.contents data);
    er_instructions = s.Stats.instructions;
    er_syscalls = s.Stats.syscalls;
    er_faults = s.Stats.faults;
    er_cycles = Stats.cycles s;
  }

let summarize r =
  Printf.sprintf "events=%s pc=0x%08x regs=[%s] insns=%d sys=%d faults=%d cycles=%d"
    r.er_events r.er_pc
    (String.concat ","
       (Array.to_list (Array.map (Printf.sprintf "%x") r.er_regs)))
    r.er_instructions r.er_syscalls r.er_faults r.er_cycles

let engines_agree ?(quantum = 17) words =
  let oracle = with_jit ~threshold:None (fun () -> run_engine ~quantum words) in
  let jitted = with_jit ~threshold:(Some 1) (fun () -> run_engine ~quantum words) in
  let warm = with_jit ~threshold:(Some 3) (fun () -> run_engine ~quantum words) in
  let agree a b =
    summarize a = summarize b && a.er_text = b.er_text && a.er_data = b.er_data
  in
  agree oracle jitted && agree oracle warm

let check_engines_agree ?(quantum = 17) name words =
  let oracle = with_jit ~threshold:None (fun () -> run_engine ~quantum words) in
  let jitted = with_jit ~threshold:(Some 1) (fun () -> run_engine ~quantum words) in
  check_string (name ^ ": summary") (summarize oracle) (summarize jitted);
  check_bool (name ^ ": text") true (oracle.er_text = jitted.er_text);
  check_bool (name ^ ": data") true (oracle.er_data = jitted.er_data)

(* ----- random programs ----- *)

(* Registers 0..9 (zero..t1) plus the pinned bases: t3 holds the text
   base for self-modifying stores, sp points into data.  Stored register
   values rarely decode, so code stores also exercise the
   illegal-instruction path differentially. *)
let gen_case =
  QCheck2.Gen.(
    let reg = int_range 0 9 in
    let insn =
      frequency
        [
          (3, map3 (fun a b c -> Insn.Add (a, b, c)) reg reg reg);
          (2, map3 (fun a b c -> Insn.Sub (a, b, c)) reg reg reg);
          (2, map3 (fun a b c -> Insn.Xor (a, b, c)) reg reg reg);
          (2, map3 (fun a b c -> Insn.Slt (a, b, c)) reg reg reg);
          (1, map3 (fun a b c -> Insn.Mul (a, b, c)) reg reg reg);
          (1, map3 (fun a b c -> Insn.Div (a, b, c)) reg reg reg);
          (1, map3 (fun a b c -> Insn.Rem (a, b, c)) reg reg reg);
          (4, map3 (fun a b i -> Insn.Addi (a, b, i)) reg reg (int_range (-100) 100));
          (2, map2 (fun a i -> Insn.Lui (a, i)) reg (int_range 0 0xFFFF));
          (3, map2 (fun r o -> Insn.Lw (r, Reg.sp, 4 * o)) reg (int_range (-64) 63));
          (3, map2 (fun r o -> Insn.Sw (r, Reg.sp, 4 * o)) reg (int_range (-64) 63));
          (2, map2 (fun r o -> Insn.Lb (r, Reg.sp, o)) reg (int_range (-256) 255));
          (2, map2 (fun r o -> Insn.Sb (r, Reg.sp, o)) reg (int_range (-256) 255));
          (* store into the program's own code page *)
          (2, map2 (fun r o -> Insn.Sw (r, Reg.t3, 4 * o)) reg (int_range 0 200));
          (* occasionally touch unmapped memory *)
          (1, map (fun r -> Insn.Lw (r, Reg.zero, 0)) reg);
          (3, map3 (fun a b o -> Insn.Beq (a, b, o)) reg reg (int_range (-10) 10));
          (3, map3 (fun a b o -> Insn.Bne (a, b, o)) reg reg (int_range (-10) 10));
          (1, map2 (fun a o -> Insn.Blez (a, o)) reg (int_range (-10) 10));
          (1, map2 (fun a o -> Insn.Bgtz (a, o)) reg (int_range (-10) 10));
          ( 2,
            map
              (fun t -> Insn.J (Insn.jump_field ~target:(0x1000 + (4 * t))))
              (int_range 0 100) );
          ( 1,
            map
              (fun t -> Insn.Jal (Insn.jump_field ~target:(0x1000 + (4 * t))))
              (int_range 0 100) );
          (1, return (Insn.Jr Reg.ra));
          (1, map2 (fun rd rs -> Insn.Jalr (rd, rs)) reg reg);
          (1, return Insn.Syscall);
          (1, return Insn.Break);
        ]
    in
    map2
      (fun body quantum ->
        let prologue =
          [
            Insn.Addi (Reg.t3, Reg.zero, 0x1000);
            Insn.Addi (Reg.ra, Reg.zero, 0x1000);
            Insn.Addi (Reg.t0, Reg.zero, 37);
            Insn.Addi (Reg.t1, Reg.zero, 11);
          ]
        in
        (List.map Insn.encode (prologue @ body), quantum))
      (list_size (int_range 10 60) insn)
      (int_range 1 60))

let print_case (words, quantum) =
  Printf.sprintf "quantum=%d\n%s" quantum
    (String.concat "\n"
       (List.mapi (fun i w -> Disasm.line ~pc:(0x1000 + (4 * i)) w) words))

let prop_differential =
  prop "jit: random programs match the interpreter exactly" ~count:150
    ~print:print_case gen_case (fun (words, quantum) ->
      engines_agree ~quantum words)

(* ----- directed self-modifying code ----- *)

(* Run an inner loop hot (its head compiles to a trace with a loop
   edge), then store 'addi t1, zero, 22' over the loop body and run the
   loop again.  The store guard must kick the trace out before the
   stale instruction can run, and the re-entry at the patched head must
   discard and recompile — observable as a [jit_invalidations] tick. *)
let self_modify_invalidates () =
  let patched = Insn.encode (Insn.Addi (Reg.t1, Reg.zero, 22)) in
  let words =
    List.map Insn.encode
      [
        Insn.Addi (Reg.t3, Reg.zero, 0x1000);
        Insn.Lui (Reg.t2, patched lsr 16);
        Insn.Ori (Reg.t2, Reg.t2, patched land 0xFFFF);
        Insn.Addi (Reg.a1, Reg.zero, 2);
        (* 0x1010 outer: *)
        Insn.Addi (Reg.t0, Reg.zero, 4);
        (* 0x1014 inner (patch target): *)
        Insn.Addi (Reg.t1, Reg.zero, 7);
        Insn.Addi (Reg.t0, Reg.t0, -1);
        Insn.Bgtz (Reg.t0, -3);
        Insn.Sw (Reg.t2, Reg.t3, 0x14);
        Insn.Addi (Reg.a1, Reg.a1, -1);
        Insn.Bgtz (Reg.a1, -7);
        Insn.Add (Reg.a0, Reg.t1, Reg.zero);
        Insn.Break;
      ]
  in
  check_engines_agree "self-modify" words;
  let r =
    with_jit ~threshold:(Some 1) (fun () ->
        let r = run_engine ~quantum:4000 words in
        check_bool "stores really invalidated a trace" true
          (Stats.global.Stats.jit_invalidations > 0);
        r)
  in
  (* the second outer round ran the patched instruction *)
  check_int "patched body executed" 22 r.er_regs.(Reg.t1);
  check_string "halted with patched value" "halt:22;" r.er_events

(* A divergent loop whose backward edge is a *conditional* branch to
   the entry — a mid-trace loop edge, not the fall-off-the-end tail.
   The taken edge must pass the same fuel gate as the tail edge: the
   compiled steps never check fuel, so an ungated re-entry would cycle
   inside a single [Cpu.run_trap] call forever and the driver's quanta
   cap could never fire.  Both engines must stop out-of-quanta in
   identical states. *)
let divergent_loop_terminates () =
  let words =
    List.map Insn.encode
      [
        Insn.Addi (Reg.t0, Reg.zero, 1);
        (* loop: *)
        Insn.Addi (Reg.t1, Reg.t1, 1);
        Insn.Bgtz (Reg.t0, -2);
        Insn.Break;
      ]
  in
  List.iter
    (fun quantum -> check_engines_agree ~quantum "divergent loop" words)
    [ 2; 7; 4000 ]

let quantum_boundaries () =
  (* A hot loop long enough that small quanta expire mid-trace. *)
  let words =
    List.map Insn.encode
      [
        Insn.Addi (Reg.t0, Reg.zero, 500);
        Insn.Addi (Reg.t1, Reg.zero, 0);
        (* loop: *)
        Insn.Add (Reg.t1, Reg.t1, Reg.t0);
        Insn.Addi (Reg.t0, Reg.t0, -1);
        Insn.Bne (Reg.t0, Reg.zero, -3);
        Insn.Add (Reg.a0, Reg.t1, Reg.zero);
        Insn.Break;
      ]
  in
  List.iter
    (fun quantum -> check_engines_agree ~quantum "quantum" words)
    [ 1; 2; 3; 7; 4000 ]

let counters_observe_jit () =
  let words =
    List.map Insn.encode
      [
        Insn.Addi (Reg.t0, Reg.zero, 200);
        Insn.Addi (Reg.t0, Reg.t0, -1);
        Insn.Bne (Reg.t0, Reg.zero, -2);
        Insn.Break;
      ]
  in
  with_jit ~threshold:(Some 1) (fun () ->
      ignore (run_engine ~quantum:4000 words);
      check_bool "compiles counted" true (Stats.global.Stats.jit_compiles > 0);
      check_bool "hits counted" true (Stats.global.Stats.jit_hits > 0));
  with_jit ~threshold:None (fun () ->
      ignore (run_engine ~quantum:4000 words);
      check_int "no compiles when disabled" 0 Stats.global.Stats.jit_compiles;
      check_int "no hits when disabled" 0 Stats.global.Stats.jit_hits)

(* ----- kernel-level: fork/COW and whole-machine equivalence ----- *)

let fork_cow_source =
  {|
extern int bump();
int main() {
  int pid;
  int i;
  int acc;
  acc = 0;
  pid = fork();
  i = 0;
  while (i < 200) { acc = acc + bump(); i = i + 1; }
  if (pid == 0) { print_int(acc); exit(0); }
  wait();
  print_int(acc);
  return 0;
}
|}

let run_fork_workload () =
  let k, _ldl = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/shared/lib";
  install_c k "/shared/lib/counter.o"
    "int counter; int bump() { counter = counter + 1; return counter; }";
  Fs.mkdir fs "/home/t";
  install_c k "/home/t/main.o" fork_cow_source;
  ignore
    (link k ~dir:"/home/t"
       ~specs:
         [
           ("main.o", Sharing.Static_private);
           ("/shared/lib/counter.o", Sharing.Dynamic_public);
         ]
       "prog");
  Stats.reset ();
  let _, out = run_program k "/home/t/prog" in
  let s = Stats.snapshot () in
  ( out,
    s.Stats.instructions,
    s.Stats.syscalls,
    s.Stats.faults,
    s.Stats.context_switches,
    Stats.cycles s )

(* Fork + COW under the JIT: the child's first post-fork writes break
   COW pages under compiled traces (the kernel resolves the write
   fault, the store retries); lazy linking flips page protections
   mid-run.  Console and the whole simulated cost model must not move,
   context switches included — quantum expiry lands on the same
   instruction either way. *)
let kernel_fork_cow_identical () =
  let base = with_jit ~threshold:None run_fork_workload in
  let jit1 = with_jit ~threshold:(Some 1) run_fork_workload in
  let jit50 = with_jit ~threshold:(Some 50) run_fork_workload in
  let check name (o_out, o_i, o_s, o_f, o_cs, o_cy) (j_out, j_i, j_s, j_f, j_cs, j_cy)
      =
    check_string (name ^ ": console") o_out j_out;
    check_int (name ^ ": instructions") o_i j_i;
    check_int (name ^ ": syscalls") o_s j_s;
    check_int (name ^ ": faults") o_f j_f;
    check_int (name ^ ": context switches") o_cs j_cs;
    check_int (name ^ ": cycles") o_cy j_cy
  in
  check "threshold=1" base jit1;
  check "threshold=50" base jit50

(* ----- illegal instruction trap (satellite: trap pipeline routing) ----- *)

let bad_word = 0xFC00_0000 (* opcode 63: undecodable *)

let illegal_insn_traps () =
  (* ISA level: an undecodable word is a trap, not a host exception; pc
     stays on the word, no fuel is consumed. *)
  let sp = As.create () in
  let text = Segment.create ~name:"text" ~max_size:0x10000 () in
  Segment.set_u32 text 0 (Insn.encode Insn.nop);
  Segment.set_u32 text 4 bad_word;
  As.map sp ~base:0x1000 ~len:0x1000 ~seg:text ~prot:Prot.Read_exec
    ~share:As.Private ~label:"text" ();
  List.iter
    (fun th ->
      with_jit ~threshold:th (fun () ->
          let cpu = Cpu.create ~entry:0x1000 ~sp:0 in
          match Cpu.run_trap ~fuel:10 cpu sp with
          | Cpu.Trapped (Trap.Illegal { ill_pc; ill_word }), left ->
            check_int "pc in trap" 0x1004 ill_pc;
            check_int "word in trap" bad_word ill_word;
            check_int "pc unmoved" 0x1004 cpu.Cpu.pc;
            (* the nop consumed one unit; the illegal word none *)
            check_int "no fuel consumed" 9 left
          | _ -> Alcotest.fail "expected an illegal-instruction trap"))
    [ None; Some 1; Some 50 ]

let illegal_insn_kills_process_not_host () =
  let k, _ldl = boot () in
  Fs.mkdir (Kernel.fs k) "/home/t";
  (* a decodable prologue, then a word no decoder accepts *)
  install_s k "/home/t/bad.o"
    ("        .text\n        .globl main\nmain:\n        li $t0, 1\n"
   ^ Printf.sprintf "        .word 0x%08x\n" bad_word
   ^ "        li $v0, 1\n        syscall\n");
  ignore (link k ~dir:"/home/t" ~specs:[ ("bad.o", Sharing.Static_private) ] "prog");
  let proc, _out = run_program k "/home/t/prog" in
  check_int "process killed" (-1) (exit_code proc);
  check_bool "console names the trap" true
    (contains (Kernel.console k) "illegal instruction");
  check_bool "console names the word" true
    (contains (Kernel.console k) (Printf.sprintf "0x%08x" bad_word));
  (* the host survived: the same kernel keeps running programs *)
  let out = run_c_program (k, _ldl) "int main() { print_int(41); return 0; }" in
  check_string "host alive afterwards" "41" out

let suite =
  [
    prop_differential;
    test "jit: self-modifying store invalidates the trace" self_modify_invalidates;
    test "jit: quantum expiry lands on identical boundaries" quantum_boundaries;
    test "jit: divergent conditional loop still yields the quantum"
      divergent_loop_terminates;
    test "jit: counters observe compiles and hits" counters_observe_jit;
    test "jit: fork/COW workload identical with JIT on and off"
      kernel_fork_cow_identical;
    test "trap: illegal instruction is a trap, not a host error" illegal_insn_traps;
    test "trap: illegal instruction kills the process, not the host"
      illegal_insn_kills_process_not_host;
  ]

(* Parallel execution: range locks, the domain pool, intra-kernel
   parallel runs, and multi-domain clusters.  The contract under test
   everywhere: spreading work over domains changes wall-clock time and
   nothing else — same consoles, same exit codes, same simulated
   costs. *)

open Harness
module Stats = Hemlock_util.Stats
module Domain_pool = Hemlock_util.Domain_pool
module Range_lock = Hemlock_vm.Range_lock
module Cluster = Hemlock_os.Cluster
module Net = Hemlock_os.Net
module Errno = Hemlock_os.Errno

(* Matches Range_lock's own parse of the kill switch: some properties
   only hold at range granularity. *)
let big_lock_mode =
  match Sys.getenv_opt "HEMLOCK_NO_RANGELOCK" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

(* ----- range locks ----- *)

(* Oracle for exclusivity: one atomic cell per page; a Shared hold adds
   1 to every page it covers, an Exclusive hold adds 1000.  If the lock
   is correct, an Exclusive holder sees every cell at exactly its own
   1000 and a Shared holder never sees a cell at >= 1000. *)
let rangelock_exclusivity_prop ops =
  let pages = 64 in
  let workers = 4 in
  let rl = Range_lock.create () in
  let cells = Array.init pages (fun _ -> Atomic.make 0) in
  let violated = Atomic.make false in
  let job w =
    List.iteri
      (fun n (lo, len, excl) ->
        if n mod workers = w then begin
          let lo = lo mod pages in
          let hi = min pages (lo + 1 + len) in
          let mode = if excl then Range_lock.Exclusive else Range_lock.Shared in
          let weight = if excl then 1000 else 1 in
          Range_lock.with_range rl ~lo ~hi mode (fun () ->
              for p = lo to hi - 1 do
                let seen = Atomic.fetch_and_add cells.(p) weight in
                let ok = if excl then seen = 0 else seen < 1000 in
                if not ok then Atomic.set violated true
              done;
              (* linger so overlapping acquires really race *)
              ignore (Sys.opaque_identity (ref 0));
              for p = lo to hi - 1 do
                ignore (Atomic.fetch_and_add cells.(p) (-weight))
              done)
        end)
      ops
  in
  let others =
    Array.init (workers - 1) (fun i -> Domain.spawn (fun () -> job (i + 1)))
  in
  job 0;
  Array.iter Domain.join others;
  (* completion itself is the no-deadlock half of the property *)
  (not (Atomic.get violated)) && Range_lock.held rl = []

let rangelock_disjoint_never_blocks () =
  (* Under the kill switch every hold is the whole space, so disjointness
     is (by design) not respected — nothing to test. *)
  if not big_lock_mode then begin
    let rl = Range_lock.create () in
    Range_lock.acquire rl ~lo:0 ~hi:10 Range_lock.Exclusive;
    let passed = Atomic.make false in
    let d =
      Domain.spawn (fun () ->
          (* must not block: [10, 20) is disjoint from the held [0, 10) *)
          Range_lock.with_range rl ~lo:10 ~hi:20 Range_lock.Exclusive (fun () ->
              Atomic.set passed true))
    in
    Domain.join d;
    Range_lock.release rl ~lo:0 ~hi:10;
    check_bool "disjoint exclusive ranges coexist" true (Atomic.get passed)
  end

let rangelock_conflicting_waits () =
  let rl = Range_lock.create () in
  Range_lock.acquire rl ~lo:0 ~hi:10 Range_lock.Exclusive;
  let entered = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Range_lock.with_range rl ~lo:5 ~hi:15 Range_lock.Shared (fun () ->
            Atomic.set entered true))
  in
  (* the overlapping reader cannot get in while the writer holds *)
  ignore (Sys.opaque_identity (ref 0));
  check_bool "overlap excluded while held" false (Atomic.get entered);
  Range_lock.release rl ~lo:0 ~hi:10;
  Domain.join d;
  check_bool "admitted after release" true (Atomic.get entered);
  check_bool "all holds drained" true (Range_lock.held rl = [])

(* ----- per-domain PRNG streams ----- *)

let prng_streams_split () =
  let module Prng = Hemlock_util.Prng in
  (* stream d on domain d: draws must not depend on which domain asks *)
  let draws =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            let g = Prng.stream ~seed:42 ~index:d in
            List.init 8 (fun _ -> Prng.next g)))
  in
  let on_domains = Array.map Domain.join draws in
  Array.iteri
    (fun d here ->
      let g = Prng.stream ~seed:42 ~index:d in
      check_bool
        (Printf.sprintf "stream %d domain-independent" d)
        true
        (List.init 8 (fun _ -> Prng.next g) = here))
    on_domains;
  (* the streams of one family are pairwise distinct *)
  check_bool "streams independent" true
    (List.hd on_domains.(0) <> List.hd on_domains.(1)
    && List.hd on_domains.(1) <> List.hd on_domains.(2))

(* ----- the domain pool ----- *)

let pool_rounds_and_merge () =
  let pool = Domain_pool.create ~domains:4 in
  Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool) @@ fun () ->
  let before = Stats.snapshot () in
  let hits = Array.make 4 0 in
  for _ = 1 to 3 do
    Domain_pool.round pool (fun w ->
        hits.(w) <- hits.(w) + 1;
        (Stats.cur ()).messages_sent <- (Stats.cur ()).messages_sent + 1)
  done;
  check_bool "every worker ran every round" true (Array.for_all (( = ) 3) hits);
  Domain_pool.shutdown pool;
  let d = Stats.diff ~before ~after:(Stats.snapshot ()) in
  (* 3 rounds x 4 workers, the 3 off-domain records merged at shutdown *)
  check_int "per-domain stats merge" 12 d.Stats.messages_sent

let pool_reraises_lowest_worker () =
  let pool = Domain_pool.create ~domains:4 in
  Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool) @@ fun () ->
  (match
     Domain_pool.round pool (fun w -> if w >= 2 then failwith (string_of_int w))
   with
  | () -> Alcotest.fail "round did not re-raise"
  | exception Failure w -> check_string "deterministic loser" "2" w);
  (* the pool survives a failed round *)
  let ok = ref 0 in
  Domain_pool.round pool (fun _ -> incr ok);
  check_bool "pool usable after failure" true (!ok >= 1)

(* ----- intra-kernel parallel runs ----- *)

let compute_src ret =
  Printf.sprintf
    {|
int main() {
  int i;
  int s;
  s = 0;
  i = 0;
  while (i < 400) {
    s = s + i; s = s - i; s = s + 1;
    i = i + 1;
  }
  return s - 400 + %d;
}
|}
    ret

let par_setup () =
  let k, _ldl = boot () in
  Fs.mkdir (Kernel.fs k) "/home/t";
  let prog n ret =
    install_c k (Printf.sprintf "/home/t/%s.o" n) (compute_src ret);
    ignore
      (link k ~dir:"/home/t"
         ~specs:[ (Printf.sprintf "%s.o" n, Sharing.Static_private) ]
         n)
  in
  prog "a" 10;
  prog "b" 20;
  let procs =
    List.concat_map
      (fun (n, _) ->
        [ Kernel.spawn_exec k ("/home/t/" ^ n); Kernel.spawn_exec k ("/home/t/" ^ n) ])
      [ ("a", 10); ("b", 20) ]
  in
  (k, procs)

let exit_codes procs = List.map exit_code procs

let run_par_matches_sequential () =
  let k_seq, procs_seq = par_setup () in
  let (), d_seq = Stats.measure (fun () -> Kernel.run k_seq) in
  let k_par, procs_par = par_setup () in
  let pool = Domain_pool.create ~domains:4 in
  let (), d_par =
    Stats.measure (fun () ->
        Fun.protect
          ~finally:(fun () -> Domain_pool.shutdown pool)
          (fun () -> Kernel.run_par k_par ~pool))
  in
  check_bool "exit codes" true (exit_codes procs_seq = exit_codes procs_par);
  check_int "instructions" d_seq.Stats.instructions d_par.Stats.instructions;
  check_int "syscalls" d_seq.Stats.syscalls d_par.Stats.syscalls;
  check_int "context switches" d_seq.Stats.context_switches d_par.Stats.context_switches;
  check_int "faults" d_seq.Stats.faults d_par.Stats.faults;
  check_int "cycles" (Stats.cycles d_seq) (Stats.cycles d_par)

(* ----- network enqueue and backpressure ----- *)

let enqueue_net_backpressure () =
  let k = Kernel.create () in
  Kernel.msgq_create k "q" ~capacity:2;
  let before = Stats.snapshot () in
  let ok b = Kernel.enqueue_net k "q" b = Ok () in
  check_bool "first lands" true (ok (Bytes.of_string "a"));
  check_bool "second lands" true (ok (Bytes.of_string "b"));
  check_bool "full queue refuses" true
    (Kernel.enqueue_net k "q" (Bytes.of_string "c") = Error Errno.EAGAIN);
  check_bool "missing queue" true
    (match Kernel.enqueue_net k "nope" Bytes.empty with Error _ -> true | Ok () -> false);
  let d = Stats.diff ~before ~after:(Stats.snapshot ()) in
  (* raw enqueue never bills: traffic accounting is the cluster's job,
     per datagram that actually lands *)
  check_int "no billing from enqueue_net" 0 d.Stats.messages_sent;
  let got = ref [] in
  ignore
    (Kernel.spawn_native k ~name:"rx" (fun k proc ->
         let first = Kernel.msg_recv k proc "q" in
         let second = Kernel.msg_recv k proc "q" in
         got := [ first; second ];
         0));
  Kernel.run k;
  check_bool "delivered in order" true
    (List.map Bytes.to_string !got = [ "a"; "b" ])

(* ----- multi-domain clusters ----- *)

(* A miniature rwhod: every machine broadcasts tagged datagrams and
   records everything it hears.  Returns (per-machine transcripts,
   stat diff) so runs at different domain counts can be compared
   byte-for-byte. *)
let cluster_observables ~domains =
  let machines = 4 in
  let sends = 5 in
  let heard = Array.make machines [] in
  (* pinned to [Ideal]: this test asserts exact full-matrix delivery,
     which must hold even when the suite runs under a lossy
     HEMLOCK_NET_PROFILE *)
  let c = Cluster.create ~profile:Net.Ideal ~machines () in
  for i = 0 to machines - 1 do
    let k = Cluster.machine c i in
    let rx =
      Kernel.spawn_native k ~name:"rx" (fun k proc ->
          while true do
            heard.(i) <- Bytes.to_string (Kernel.msg_recv k proc Cluster.inbox) :: heard.(i)
          done;
          0)
    in
    Kernel.set_daemon k rx;
    ignore
      (Kernel.spawn_native k ~name:"tx" (fun _ proc ->
           for r = 1 to sends do
             Cluster.broadcast c ~from:i
               (Bytes.of_string (Printf.sprintf "m%d-r%d" i r));
             Proc.yield ()
           done;
           ignore proc;
           0))
  done;
  let before = Stats.snapshot () in
  Cluster.run ~domains c;
  let d = Stats.diff ~before ~after:(Stats.snapshot ()) in
  (Array.map (fun l -> String.concat "," (List.rev l)) heard, d)

let cluster_lockstep () =
  let obs1, d1 = cluster_observables ~domains:1 in
  let obs4, d4 = cluster_observables ~domains:4 in
  Array.iteri
    (fun i t1 ->
      check_string (Printf.sprintf "machine %d transcript" i) t1 obs4.(i))
    obs1;
  (* every broadcast lands exactly once: 3 peers x 5 sends x 4 senders *)
  check_int "messages" 60 d1.Stats.messages_sent;
  check_int "messages at 4 domains" d1.Stats.messages_sent d4.Stats.messages_sent;
  check_int "bytes" d1.Stats.bytes_copied d4.Stats.bytes_copied;
  check_int "context switches" d1.Stats.context_switches d4.Stats.context_switches;
  check_int "cycles" (Stats.cycles d1) (Stats.cycles d4)

let cluster_deadlock_tagged () =
  let c = Cluster.create ~profile:Net.Ideal ~machines:2 () in
  ignore
    (Kernel.spawn_native (Cluster.machine c 1) ~name:"stuck" (fun k proc ->
         ignore (Kernel.msg_recv k proc Cluster.inbox);
         0));
  match Cluster.run c with
  | () -> Alcotest.fail "expected a deadlock"
  | exception Kernel.Deadlock bs ->
    check_bool "machine-tagged" true
      (List.exists (fun b -> contains b.Kernel.b_comm "m1:stuck") bs)

let suite =
  [
    prop "range lock: concurrent holds keep exclusivity (vs atomic oracle)" ~count:60
      QCheck2.Gen.(
        list_size (int_range 4 40)
          (triple (int_bound 63) (int_range 0 7) bool))
      rangelock_exclusivity_prop;
    test "range lock: disjoint ranges never block" rangelock_disjoint_never_blocks;
    test "range lock: overlap waits for release" rangelock_conflicting_waits;
    test "prng: per-domain streams are deterministic" prng_streams_split;
    test "domain pool: rounds run everywhere, stats merge" pool_rounds_and_merge;
    test "domain pool: failure re-raised from lowest worker" pool_reraises_lowest_worker;
    test "kernel: run_par = sequential run (codes, costs)" run_par_matches_sequential;
    test "kernel: enqueue_net backpressure, no phantom billing" enqueue_net_backpressure;
    test "cluster: 4-domain run = single-domain oracle" cluster_lockstep;
    test "cluster: deadlock reports machine-tagged processes" cluster_deadlock_tagged;
  ]

(* Stable linking: persisted link plans and symbol indexes under
   /shared/.stable.  Covers stable-boot ≡ cold-boot equivalence (output
   and simulated costs), invalidation on module rewrite and on an
   instance-digest mismatch, corrupt-file reaping, crash and error
   injection during a persist, and the janitor's policy over the
   stable namespace. *)

open Harness
module Stats = Hemlock_util.Stats
module Fault = Hemlock_util.Fault
module Segment = Hemlock_vm.Segment
module Modgen = Hemlock_apps.Modgen
module Link_plan = Hemlock_linker.Link_plan
module Stable_link = Hemlock_linker.Stable_link
module Janitor = Hemlock_runtime.Janitor

let with_stable v f =
  let saved = !Stable_link.enabled in
  Stable_link.enabled := v;
  Fun.protect ~finally:(fun () -> Stable_link.enabled := saved) f

(* A deep chain: the driver names every module, so the whole workload
   rides the root scope — the shape the stable-boot bench measures. *)
let build_deep_chain (_k, ldl) ~modules =
  let fs = Kernel.fs (Ldl.kernel ldl) in
  Fs.mkdir fs "/home/lib";
  ignore (Modgen.install ~deep:true ldl ~dir:"/home/lib" ~modules);
  Modgen.link_driver ~deep:modules ldl ~dir:"/home/lib" ~out:"/home/d/prog"
    ~used:(modules - 1);
  string_of_int (Modgen.expected ~modules ~used:(modules - 1))

let exec_measured k prog =
  let out = ref "" in
  let (), d =
    Stats.measure (fun () ->
        let _, console = run_program k prog in
        out := console)
  in
  (String.trim !out, d)

(* The billed cost model: everything the simulation charges for.  The
   stable boot path must leave every one of these untouched. *)
let billed d =
  ( d.Stats.instructions,
    d.Stats.faults,
    d.Stats.syscalls,
    d.Stats.context_switches,
    Stats.cycles d,
    d.Stats.symbols_resolved,
    d.Stats.modules_linked,
    d.Stats.relocs_applied,
    d.Stats.bytes_copied,
    d.Stats.pages_mapped )

(* ----- stable-boot ≡ cold-boot -------------------------------------------- *)

(* One machine persists its plans and reboots warm; an identical twin
   reboots with stable linking off.  First-exec console output and the
   whole billed cost model must agree exactly — the persisted files may
   only move host-side work. *)
let boot_equivalence modules =
  with_stable true (fun () ->
      let first_exec stable =
        let ((k, _) as m) = boot () in
        let want = build_deep_chain m ~modules in
        let out0, _ = exec_measured k "/home/d/prog" in
        if out0 <> want then Alcotest.failf "seed exec output %s, want %s" out0 want;
        if stable then ignore (Ldl.stable_sync (snd m));
        Stable_link.enabled := stable;
        Kernel.reboot k;
        Stable_link.enabled := true;
        let out, d = exec_measured k "/home/d/prog" in
        if out <> want then Alcotest.failf "first exec output %s, want %s" out want;
        (out, d)
      in
      let out_stable, d_stable = first_exec true in
      let out_cold, d_cold = first_exec false in
      out_stable = out_cold
      && billed d_stable = billed d_cold
      && ((not !Link_plan.enabled)
         || (d_stable.Stats.stable_loads > 0 && d_cold.Stats.stable_loads = 0)))

let prop_boot_equivalence =
  prop "stable boot ≡ cold boot: output and simulated costs" ~count:6
    ~print:string_of_int
    QCheck2.Gen.(int_range 3 10)
    boot_equivalence

(* ----- invalidation -------------------------------------------------------- *)

(* Rewriting a module between boots moves its template content identity,
   which moves the instance-set digest baked into every plan key: the
   stable files must fall back cold and the exec must see the new
   data. *)
let rewrite_invalidates_stable_plans () =
  with_stable true (fun () ->
      let ((k, ldl) as m) = boot () in
      let modules = 4 in
      let want = build_deep_chain m ~modules in
      let out0, _ = exec_measured k "/home/d/prog" in
      check_string "seed exec" want out0;
      ignore (Ldl.stable_sync ldl);
      (* Rewrite the terminal module's datum: every caller's sum
         changes. *)
      install_c k (Printf.sprintf "/home/lib/mod%d.o" (modules - 1))
        (Printf.sprintf {|
int d%d = 999;
int f%d(int x) {
  return d%d;
}
|}
           (modules - 1) (modules - 1) (modules - 1));
      Lds.embed_metadata (ctx_in k "/" ())
        ~template:(Printf.sprintf "/home/lib/mod%d.o" (modules - 1))
        ~modules:[] ~search_path:[ "/home/lib" ];
      Kernel.reboot k;
      let want' =
        (* same recursion as [Modgen.expected], terminal datum now 999 —
           which every level's [d_i + d_{i+1}] term also picks up *)
        let datum i = if i = modules - 1 then 999 else 100 + i in
        let rec f i x =
          if x < 1 then datum i else f (i + 1) (x - 1) + datum i + datum (i + 1)
        in
        string_of_int (f 0 (modules - 1))
      in
      let out, d = exec_measured k "/home/d/prog" in
      check_string "rewritten module visible on the stable boot" want' out;
      if !Link_plan.enabled then
        check_int "stale stable plans are not replayed" 0 d.Stats.plan_hits)

(* A rewrite through the template file's backing segment bumps neither
   Fs.generation nor the file path — but the fresh decode's content
   identity no longer matches the plan's recorded dependency, so the
   replay verifies false, rejects, and reaps the stable file. *)
let mapped_rewrite_rejects_and_reaps () =
  with_stable true (fun () ->
      let ((k, ldl) as m) = boot () in
      let fs = Kernel.fs k in
      ignore m;
      Fs.mkdir fs "/home/lib";
      (* Non-deep chain: each link region instantiates its successor, so
         plans carry dependency entries for replay to verify. *)
      ignore (Modgen.install ldl ~dir:"/home/lib" ~modules:4);
      Modgen.link_driver ldl ~dir:"/home/lib" ~out:"/home/d/prog" ~used:3;
      let want = string_of_int (Modgen.expected ~modules:4 ~used:3) in
      let out0, _ = exec_measured k "/home/d/prog" in
      check_string "seed exec" want out0;
      let report = Ldl.stable_sync ldl in
      if !Link_plan.enabled then
        check_bool "plans persisted" true (report.Ldl.sync_plans > 0);
      let stable_files () =
        match Fs.readdir fs Stable_link.dir with
        | names -> List.length names
        | exception Fs.Error _ -> 0
      in
      let persisted = stable_files () in
      (* Rewrite mod1 through its segment: invisible to the FS
         generation, visible to the content identity. *)
      let obj =
        {
          (Cc.to_object ~name:"mod1.o"
             {|
extern int f2(int x);
extern int d2;
int d1 = 500;
int f1(int x) {
  if (x < 1) { return d1; }
  return f2(x - 1) + d1 + d2;
}
|})
          with
          Objfile.own_modules = [ "mod2.o" ];
          own_search_path = [ "/home/lib" ];
        }
      in
      let gen0 = Fs.generation fs in
      let seg = Fs.segment_of fs "/home/lib/mod1.o" in
      Segment.resize seg 0;
      Segment.blit_in seg ~dst_off:0 (Objfile.serialize obj);
      check_int "mapped rewrite invisible to the FS generation" gen0 (Fs.generation fs);
      Kernel.reboot k;
      let out, d = exec_measured k "/home/d/prog" in
      check_bool "exec after the mapped rewrite sees the new data" true
        (out <> want && out <> "");
      if !Link_plan.enabled then begin
        check_bool "mismatched stable files rejected" true (d.Stats.stable_rejects > 0);
        check_bool "rejected files reaped" true (stable_files () < persisted)
      end)

(* ----- corrupt persisted plan ---------------------------------------------- *)

let corrupt_plan_is_reaped () =
  with_stable true (fun () ->
      let ((k, ldl) as m) = boot () in
      let fs = Kernel.fs k in
      let want = build_deep_chain m ~modules:4 in
      let out0, _ = exec_measured k "/home/d/prog" in
      check_string "seed exec" want out0;
      ignore (Ldl.stable_sync ldl);
      if !Link_plan.enabled then begin
        let plan_files () =
          match Fs.readdir fs Stable_link.dir with
          | names ->
            List.filter_map
              (fun n ->
                if String.length n >= 5 && String.sub n 0 5 = "plan-" then
                  Some (Stable_link.dir ^ "/" ^ n)
                else None)
              names
          | exception Fs.Error _ -> []
        in
        let victim =
          match plan_files () with
          | p :: _ -> p
          | [] -> Alcotest.fail "no persisted plan files"
        in
        (* Flip the last byte: the sealed digest no longer matches. *)
        let b = Fs.read_file fs victim in
        Bytes.set b
          (Bytes.length b - 1)
          (Char.chr (Char.code (Bytes.get b (Bytes.length b - 1)) lxor 0xFF));
        Fs.write_file fs victim b;
        Kernel.reboot k;
        let out, _ = exec_measured k "/home/d/prog" in
        check_string "exec correct despite the corrupt plan" want out;
        check_bool "corrupt plan reaped on its failed load" true
          (not (Fs.exists fs victim))
      end)

(* ----- injected failures during a persist ---------------------------------- *)

let crash_during_persist_recovers () =
  with_stable true (fun () ->
      let ((k, ldl) as m) = boot () in
      let fs = Kernel.fs k in
      let want = build_deep_chain m ~modules:4 in
      let out0, _ = exec_measured k "/home/d/prog" in
      check_string "seed exec" want out0;
      if !Link_plan.enabled then begin
        Fault.configure "fs.stable@1=crash";
        (match Ldl.stable_sync ldl with
        | (_ : Ldl.sync_report) -> Alcotest.fail "expected a crash mid-persist"
        | exception Fault.Crash _ -> ());
        Fault.clear ();
        Fs.rescan_shared fs;
        let report = Fs.fsck fs in
        check_bool "recovery fsck clean after crash mid-persist" true
          report.Fs.fsck_clean;
        let out, _ = exec_measured k "/home/d/prog" in
        check_string "exec correct after the crash" want out;
        (* A recoverable error degrades to not-persisted, never fails
           the sync. *)
        Fault.configure "fs.stable@1=eio";
        let r2 =
          Fun.protect ~finally:Fault.clear (fun () -> Ldl.stable_sync ldl)
        in
        check_bool "injected error skips one file, sync completes" true
          (r2.Ldl.sync_plans + r2.Ldl.sync_objs + r2.Ldl.sync_skipped > 0)
      end)

(* ----- janitor policy over /shared/.stable --------------------------------- *)

let janitor_reaps_stale_stable_files () =
  with_stable true (fun () ->
      let ((k, ldl) as m) = boot () in
      let fs = Kernel.fs k in
      let want = build_deep_chain m ~modules:3 in
      let out0, _ = exec_measured k "/home/d/prog" in
      check_string "seed exec" want out0;
      ignore (Ldl.stable_sync ldl);
      Stable_link.ensure_dir fs;
      (* A truncated file (crash artifact the journal could not see) and
         a plain impostor: both fail to decode, both must go. *)
      Fs.write_file fs (Stable_link.dir ^ "/plan-deadbeef")
        (Bytes.of_string "HSPL");
      Fs.write_file fs (Stable_link.dir ^ "/junk") (Bytes.of_string "not a plan");
      let survivors_before =
        match Fs.readdir fs Stable_link.dir with names -> names
      in
      let victims =
        Janitor.reap k ~policy:(Janitor.orphan_policy k ~flagged:[])
      in
      let reaped p = List.exists (fun e -> e.Janitor.j_path = p) victims in
      check_bool "truncated stable file reaped" true
        (reaped (Stable_link.dir ^ "/plan-deadbeef"));
      check_bool "impostor reaped" true (reaped (Stable_link.dir ^ "/junk"));
      if !Link_plan.enabled then begin
        let survivors =
          match Fs.readdir fs Stable_link.dir with names -> names
        in
        check_int "every well-formed stable file kept"
          (List.length survivors_before - 2)
          (List.length survivors)
      end)

let suite =
  [
    prop_boot_equivalence;
    test "stable plans: module rewrite between boots falls back cold"
      rewrite_invalidates_stable_plans;
    test "stable plans: mapped rewrite rejects and reaps on replay"
      mapped_rewrite_rejects_and_reaps;
    test "stable plans: corrupt file reaped on its failed load" corrupt_plan_is_reaped;
    test "stable sync: crash mid-persist recovers, errors degrade"
      crash_during_persist_recovers;
    test "janitor: stale stable files reaped, valid ones kept"
      janitor_reaps_stale_stable_files;
  ]

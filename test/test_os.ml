open Harness
module As = Hemlock_vm.Address_space
module Prot = Hemlock_vm.Prot
module Layout = Hemlock_vm.Layout
module Stats = Hemlock_util.Stats

(* ----- native processes and scheduling ----- *)

let native_exit_codes () =
  let k = Kernel.create () in
  let p1 = Kernel.spawn_native k ~name:"a" (fun _ _ -> 3) in
  let p2 = Kernel.spawn_native k ~name:"b" (fun _ _ -> raise (Proc.Exit_proc 9)) in
  Kernel.run k;
  check_int "returned" 3 (exit_code p1);
  check_int "Exit_proc" 9 (exit_code p2)

let native_crash_is_kill () =
  let k = Kernel.create () in
  let p = Kernel.spawn_native k ~name:"boom" (fun _ _ -> failwith "bang") in
  Kernel.run k;
  check_int "killed" (-1) (exit_code p);
  check_bool "console notes it" true (contains (Kernel.console k) "killed")

let yield_interleaves () =
  let k = Kernel.create () in
  let order = Buffer.create 16 in
  let worker tag =
    Kernel.spawn_native k ~name:tag (fun _ _ ->
        for _ = 1 to 3 do
          Buffer.add_string order tag;
          Proc.yield ()
        done;
        0)
  in
  ignore (worker "a");
  ignore (worker "b");
  Kernel.run k;
  check_string "round robin" "ababab" (Buffer.contents order)

let wait_until_blocks () =
  let k = Kernel.create () in
  let flag = ref false in
  let waiter =
    Kernel.spawn_native k ~name:"waiter" (fun _ _ ->
        Proc.wait_until (fun () -> !flag);
        7)
  in
  ignore
    (Kernel.spawn_native k ~name:"setter" (fun _ _ ->
         Proc.yield ();
         flag := true;
         0));
  Kernel.run k;
  check_int "woke" 7 (exit_code waiter)

let deadlock_detected () =
  let k = Kernel.create () in
  ignore (Kernel.spawn_native k ~name:"stuck" (fun _ _ ->
      Proc.wait_until (fun () -> false);
      0));
  match Kernel.run k with
  | () -> Alcotest.fail "expected deadlock"
  | exception Kernel.Deadlock blocked ->
    check_int "one stuck process" 1 (List.length blocked);
    let b = List.hd blocked in
    check_string "names comm" "stuck" b.Kernel.b_comm;
    check_bool "positive pid" true (b.Kernel.b_pid > 0);
    check_bool "carries wait reason" true (contains b.Kernel.b_why "wait_until");
    check_bool "message renders all of it" true
      (contains (Hemlock_os.Sched.deadlock_message blocked) "stuck")

let daemons_allowed_to_block () =
  let k = Kernel.create () in
  let d =
    Kernel.spawn_native k ~name:"daemon" (fun _ _ ->
        Proc.wait_until (fun () -> false);
        0)
  in
  Kernel.set_daemon k d;
  Kernel.run k (* should terminate without Deadlock *)

let waitpid_reaps () =
  let k = Kernel.create () in
  let seen = ref (0, 0) in
  ignore
    (Kernel.spawn_native k ~name:"parent" (fun k proc ->
         let child =
           Kernel.spawn_native k ~name:"child" (fun _ _ -> 5)
         in
         child.Proc.parent <- proc.Proc.pid;
         seen := Kernel.waitpid k proc;
         check_bool "child gone from table" true (Kernel.find_proc k child.Proc.pid = None);
         0));
  Kernel.run k;
  let pid, code = !seen in
  check_bool "pid positive" true (pid > 0);
  check_int "code" 5 code

let waitpid_no_children () =
  let k = Kernel.create () in
  ignore
    (Kernel.spawn_native k ~name:"lonely" (fun k proc ->
         match Kernel.waitpid k proc with
         | _ -> Alcotest.fail "expected Os_error"
         | exception Kernel.Os_error _ -> 0));
  Kernel.run k

let env_vars () =
  let k = Kernel.create () in
  ignore
    (Kernel.spawn_native k ~name:"env" ~env:[ ("A", "1") ] (fun _ proc ->
         check_bool "inherited" true (Proc.getenv proc "A" = Some "1");
         Proc.setenv proc "A" "2";
         Proc.setenv proc "B" "x";
         check_bool "updated" true (Proc.getenv proc "A" = Some "2");
         check_bool "added" true (Proc.getenv proc "B" = Some "x");
         check_bool "missing" true (Proc.getenv proc "C" = None);
         0));
  Kernel.run k

(* ----- fds, locks, msgqs ----- *)

let fd_layer () =
  let k = Kernel.create () in
  ignore
    (Kernel.spawn_native k ~name:"fds" (fun k proc ->
         let fd = Kernel.sys_open k proc ~create:true "/tmp/f" in
         check_int "write" 5 (Kernel.sys_write k proc fd (Bytes.of_string "hello"));
         check_int "lseek returns offset" 0 (Kernel.sys_lseek k proc fd 0);
         check_string "read" "hello" (Bytes.to_string (Kernel.sys_read k proc fd 100));
         check_string "eof read" "" (Bytes.to_string (Kernel.sys_read k proc fd 10));
         check_int "lseek returns new offset" 1 (Kernel.sys_lseek k proc fd 1);
         check_bool "negative lseek is EINVAL" true
           (Kernel.sys_lseek_r k proc fd (-3) = Error Hemlock_os.Errno.EINVAL);
         check_string "seek" "ello" (Bytes.to_string (Kernel.sys_read k proc fd 4));
         Kernel.sys_close k proc fd;
         (match Kernel.sys_read k proc fd 1 with
         | _ -> Alcotest.fail "expected bad fd"
         | exception Kernel.Os_error _ -> ());
         (match Kernel.sys_open k proc "/tmp/missing" with
         | _ -> Alcotest.fail "expected open failure"
         | exception Kernel.Os_error msg ->
           check_bool "carries ENOENT" true (contains msg "ENOENT"));
         0));
  Kernel.run k

let file_locks () =
  let k = Kernel.create () in
  let log = Buffer.create 16 in
  ignore
    (Kernel.spawn_native k ~name:"first" (fun k proc ->
         check_bool "acquired" true (Kernel.try_flock k proc "/tmp/lock");
         Buffer.add_string log "a";
         Proc.yield ();
         Proc.yield ();
         Buffer.add_string log "r";
         Kernel.funlock k proc "/tmp/lock";
         0));
  ignore
    (Kernel.spawn_native k ~name:"second" (fun k proc ->
         check_bool "contended" false (Kernel.try_flock k proc "/tmp/lock");
         Kernel.flock k proc "/tmp/lock";
         Buffer.add_string log "b";
         Kernel.funlock k proc "/tmp/lock";
         0));
  Kernel.run k;
  check_string "exclusion order" "arb" (Buffer.contents log)

let locks_released_on_exit () =
  let k = Kernel.create () in
  ignore
    (Kernel.spawn_native k ~name:"holder" (fun k proc ->
         ignore (Kernel.try_flock k proc "/tmp/l");
         0));
  ignore
    (Kernel.spawn_native k ~name:"waiter" (fun k proc ->
         Kernel.flock k proc "/tmp/l";
         0));
  Kernel.run k (* no deadlock: exit released the lock *)

let message_queues () =
  let k = Kernel.create () in
  Kernel.msgq_create k "q" ~capacity:2;
  let received = Buffer.create 16 in
  ignore
    (Kernel.spawn_native k ~name:"consumer" (fun k proc ->
         for _ = 1 to 4 do
           Buffer.add_bytes received (Kernel.msg_recv k proc "q")
         done;
         check_bool "empty try_recv" true (Kernel.msg_try_recv k proc "q" = None);
         0));
  ignore
    (Kernel.spawn_native k ~name:"producer" (fun k proc ->
         List.iter
           (fun s -> Kernel.msg_send k proc "q" (Bytes.of_string s))
           [ "a"; "b"; "c"; "d" ];
         0));
  Kernel.run k;
  check_string "all delivered in order" "abcd" (Buffer.contents received);
  match Kernel.msg_send k (Kernel.spawn_blank k ()) "missing" Bytes.empty with
  | _ -> Alcotest.fail "expected missing queue error"
  | exception Kernel.Os_error _ -> ()

(* ----- ISA processes via the kernel ----- *)

let isa_program src =
  let k, _ = boot () in
  let out = run_c_program (k, ()) src in
  (k, out)

let isa_syscalls () =
  let _, out =
    isa_program
      {|
int main() {
  print_int(getpid());
  print_str("!");
  yield();
  print_int(3);
  return 0;
}|}
  in
  (* first user process gets pid 1 in a fresh kernel... the linker test
     processes run first, so just check shape *)
  check_bool "printed pid then 3" true (contains out "!3")

let isa_fork_wait () =
  let _, out =
    isa_program
      {|
int counter;
int main() {
  int pid;
  counter = 7;
  pid = fork();
  if (pid == 0) {
    counter = counter + 1;   // child's private copy
    print_str("c");
    exit(counter);
  }
  wait();
  print_str("p");
  print_int(counter);        // parent's copy untouched: fork copies private data
  return 0;
}|}
  in
  check_string "fork isolates private data" "cp7" out

let isa_sbrk () =
  let _, out =
    isa_program
      {|
int main() {
  int *p;
  p = sbrk(8192);
  p[0] = 11;
  p[1500] = 31;
  print_int(p[0] + p[1500]);
  return 0;
}|}
  in
  check_string "heap usable" "42" out

let isa_segfault_kills () =
  let k, out =
    isa_program {|
int main() {
  int *p;
  p = 64;
  return *p;
}|}
  in
  ignore out;
  check_bool "killed message" true (contains (Kernel.console k) "fault at 0x00000040")

let isa_addr_translation_syscalls () =
  let k, _ = boot () in
  Fs.create_file (Kernel.fs k) "/shared/blob";
  let out =
    run_c_program (k, ())
      {|
char buf[64];
int main() {
  int a;
  a = path_to_addr("/shared/blob");
  print_int(a);
  print_str(" ");
  addr_to_path(a + 100, &buf[0], 64);
  print_str(&buf[0]);
  print_str(" ");
  print_int(path_to_addr("/tmp"));
  return 0;
}|}
  in
  (* /tmp is a directory, so the syscall now answers -EISDIR (-21)
     instead of the old ambiguous 0. *)
  check_string "translations" (Printf.sprintf "%d /shared/blob -21" Layout.shared_base) out

let exec_resets_image () =
  let k, _ = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/home/t";
  install_c k "/home/t/one.o" {|int main() { print_str("one"); return 0; }|};
  install_c k "/home/t/two.o" {|int main() { print_str("two"); return 0; }|};
  ignore (link k ~dir:"/home/t" ~specs:[ ("one.o", Sharing.Static_private) ] "p1");
  ignore (link k ~dir:"/home/t" ~specs:[ ("two.o", Sharing.Static_private) ] "p2");
  ignore
    (Kernel.spawn_native k ~name:"execer" (fun k proc ->
         let child = Kernel.spawn_exec k "/home/t/p1" in
         child.Proc.parent <- proc.Proc.pid;
         ignore (Kernel.waitpid k proc);
         (* Re-exec the same process object with a different image. *)
         let child2 = Kernel.spawn_exec k "/home/t/p2" in
         Kernel.exec k child2 "/home/t/p1";
         child2.Proc.parent <- proc.Proc.pid;
         ignore (Kernel.waitpid k proc);
         0));
  Kernel.console_clear k;
  Kernel.run k;
  check_string "exec replaced image" "oneone" (Kernel.console k)

let bad_exec_format () =
  let k, _ = boot () in
  Fs.write_file (Kernel.fs k) "/tmp/junk" (Bytes.of_string "garbage");
  ignore
    (Kernel.spawn_native k ~name:"t" (fun k _ ->
         match Kernel.spawn_exec k "/tmp/junk" with
         | _ -> Alcotest.fail "expected format error"
         | exception Kernel.Os_error msg ->
           check_bool "message" true (contains msg "unrecognised format");
           0));
  Kernel.run k

let run_tick_budget () =
  let k, _ = boot () in
  Fs.mkdir (Kernel.fs k) "/home/t";
  install_c k "/home/t/main.o" "int main() { while (1) { } return 0; }";
  ignore (link k ~dir:"/home/t" ~specs:[ ("main.o", Sharing.Static_private) ] "spin");
  ignore (Kernel.spawn_exec k "/home/t/spin");
  match Kernel.run ~max_ticks:50 k with
  | _ -> Alcotest.fail "expected budget exhaustion"
  | exception Kernel.Os_error msg -> check_bool "budget" true (contains msg "tick budget")

let stats_count_syscalls () =
  let k = Kernel.create () in
  Stats.reset ();
  let before = Stats.snapshot () in
  ignore
    (Kernel.spawn_native k ~name:"s" (fun k proc ->
         let fd = Kernel.sys_open k proc ~create:true "/tmp/x" in
         ignore (Kernel.sys_write k proc fd (Bytes.of_string "abcde"));
         Kernel.sys_close k proc fd;
         0));
  Kernel.run k;
  let d = Stats.diff ~before ~after:(Stats.snapshot ()) in
  check_int "three syscalls" 3 d.Stats.syscalls;
  check_int "five bytes copied" 5 d.Stats.bytes_copied

let open_by_addr () =
  (* The overloaded open: open a shared file by any address inside it
     (the paper folds this into open; we give it its own syscall). *)
  let k = Kernel.create () in
  Fs.write_file (Kernel.fs k) "/shared/seg" (Bytes.of_string "payload bytes");
  let addr = Fs.addr_of_path (Kernel.fs k) "/shared/seg" in
  ignore
    (Kernel.spawn_native k ~name:"opener" (fun k proc ->
         let fd = Kernel.sys_open_by_addr k proc (addr + 3) in
         check_string "reads the file" "payload bytes"
           (Bytes.to_string (Kernel.sys_read k proc fd 100));
         Kernel.sys_close k proc fd;
         (match Kernel.sys_open_by_addr k proc (Layout.addr_of_slot 500) with
         | _ -> Alcotest.fail "expected no-file error"
         | exception Kernel.Os_error _ -> ());
         check_bool "errno-result variant agrees" true
           (Kernel.sys_open_by_addr_r k proc (Layout.addr_of_slot 500)
           = Error Hemlock_os.Errno.ENOENT);
         check_string "addr_to_path agrees" "/shared/seg"
           (Kernel.sys_addr_to_path k proc (addr + 3));
         0));
  Kernel.run k

let aout_pp_smoke () =
  let k, _ = boot () in
  Fs.mkdir (Kernel.fs k) "/home/t";
  install_c k "/home/t/lib.o" "int helper() { return 1; }";
  install_c k "/home/t/main.o" "extern int helper(); int main() { return helper(); }";
  ignore
    (link k ~dir:"/home/t"
       ~specs:[ ("main.o", Sharing.Static_private); ("lib.o", Sharing.Dynamic_private) ]
       "prog");
  let aout = Hemlock_linker.Aout.parse (Fs.read_file (Kernel.fs k) "/home/t/prog") in
  let text = Format.asprintf "%a" Hemlock_linker.Aout.pp aout in
  check_bool "lists main" true (contains text "main");
  check_bool "lists the dynamic module" true (contains text "lib.o");
  check_bool "lists retained relocation" true (contains text "helper");
  check_bool "records search path" true (contains text "/home/t")

let pd_call_basics () =
  let k = Kernel.create () in
  let served = ref 0 in
  let srv =
    Kernel.spawn_native k ~name:"server" (fun k proc ->
        Kernel.register_pd_service k ~name:"double" ~owner:proc (fun _ _ arg ->
            incr served;
            arg * 2);
        Proc.wait_until (fun () -> false);
        0)
  in
  Kernel.set_daemon k srv;
  let got =
    ref 0
  in
  ignore
    (Kernel.spawn_native k ~name:"client" (fun k proc ->
         Proc.yield ();
         got := Kernel.pd_call k proc ~service:"double" 21;
         (match Kernel.pd_call k proc ~service:"missing" 0 with
         | _ -> Alcotest.fail "expected unknown-service error"
         | exception Kernel.Os_error _ -> ());
         0));
  Kernel.run k;
  check_int "synchronous result" 42 !got;
  check_int "handler ran once" 1 !served

let pd_call_runs_in_server_domain () =
  (* The handler reads memory through the server's address space, not
     the caller's: shared code, server-private data. *)
  let k = Kernel.create () in
  let secret_addr = 0x100000 in
  let srv =
    Kernel.spawn_native k ~name:"server" (fun k proc ->
        let seg = Hemlock_vm.Segment.create ~name:"secret" ~max_size:4096 () in
        Hemlock_vm.Segment.set_u32 seg 0 777;
        Hemlock_vm.Address_space.map proc.Proc.space ~base:secret_addr ~len:4096 ~seg
          ~prot:Hemlock_vm.Prot.Read_write ~share:Hemlock_vm.Address_space.Private
          ~label:"secret" ();
        Kernel.register_pd_service k ~name:"peek" ~owner:proc (fun k srv_proc _ ->
            Kernel.load_u32 k srv_proc secret_addr);
        Proc.wait_until (fun () -> false);
        0)
  in
  Kernel.set_daemon k srv;
  let got = ref 0 in
  ignore
    (Kernel.spawn_native k ~name:"client" (fun k proc ->
         Proc.yield ();
         (* the client itself cannot see the server's private page: with
            no SIGSEGV handler installed the access is fatal, so probe
            through the raw space instead of the checked accessors *)
         (match Hemlock_vm.Address_space.load_u32 proc.Proc.space secret_addr with
         | _ -> Alcotest.fail "client should fault"
         | exception Hemlock_vm.Address_space.Fault _ -> ());
         got := Kernel.pd_call k proc ~service:"peek" 0;
         0));
  Kernel.run k;
  check_int "server-domain data reached via pd_call" 777 !got

let suite =
  [
    test "kernel: native exit codes" native_exit_codes;
    test "kernel: crashes kill the process" native_crash_is_kill;
    test "kernel: yield interleaves" yield_interleaves;
    test "kernel: wait_until blocks and wakes" wait_until_blocks;
    test "kernel: deadlock detection" deadlock_detected;
    test "kernel: daemons may stay blocked" daemons_allowed_to_block;
    test "kernel: waitpid reaps zombies" waitpid_reaps;
    test "kernel: waitpid without children errors" waitpid_no_children;
    test "kernel: environment variables" env_vars;
    test "kernel: file descriptors" fd_layer;
    test "kernel: file locks exclude" file_locks;
    test "kernel: locks released on exit" locks_released_on_exit;
    test "kernel: message queues" message_queues;
    test "isa: basic syscalls" isa_syscalls;
    test "isa: fork copies private data (s5)" isa_fork_wait;
    test "isa: sbrk heap" isa_sbrk;
    test "isa: unhandled segfault kills" isa_segfault_kills;
    test "isa: addr<->path kernel calls" isa_addr_translation_syscalls;
    test "kernel: exec replaces the image" exec_resets_image;
    test "kernel: bad exec format" bad_exec_format;
    test "kernel: runaway program hits tick budget" run_tick_budget;
    test "kernel: stats count kernel work" stats_count_syscalls;
    test "kernel: open by address" open_by_addr;
    test "aout: pretty-printer shows the link state" aout_pp_smoke;
    test "kernel: pd_call synchronous service" pd_call_basics;
    test "kernel: pd_call runs in the server's domain" pd_call_runs_in_server_domain;
  ]

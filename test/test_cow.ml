(** Copy-on-write VM: page sharing and divergence across [As.clone],
    the fault/resolve/retry protocol, decode-cache isolation for
    self-modifying code after fork, the zero-copy exec master cache,
    and a schedule-randomized equivalence check against the eager
    deep-copy oracle ([HEMLOCK_NO_COW] semantics). *)

open Harness
module Layout = Hemlock_vm.Layout
module Prot = Hemlock_vm.Prot
module Segment = Hemlock_vm.Segment
module As = Hemlock_vm.Address_space
module Cpu = Hemlock_isa.Cpu
module Insn = Hemlock_isa.Insn
module Reg = Hemlock_isa.Reg
module Stats = Hemlock_util.Stats

let with_cow enabled f =
  let old = !Segment.cow_enabled in
  Segment.cow_enabled := enabled;
  Fun.protect ~finally:(fun () -> Segment.cow_enabled := old) f

(* The kernel's side of the COW protocol, inlined for direct
   address-space tests: a write protection fault retries after
   [resolve_cow] accepts it; anything else propagates. *)
let rec store_u8_cow sp addr v =
  try As.store_u8 sp addr v with
  | As.Fault { addr = fa; access = Prot.Write; reason = As.Protection }
    when As.resolve_cow sp fa ->
    store_u8_cow sp addr v

let rec store_u32_cow sp addr v =
  try As.store_u32 sp addr v with
  | As.Fault { addr = fa; access = Prot.Write; reason = As.Protection }
    when As.resolve_cow sp fa ->
    store_u32_cow sp addr v

(* A space with one private RW data mapping at 0x1000 backed by a
   [pages]-page segment prefilled with the pattern [(off * 7) land 0xFF]. *)
let data_space pages =
  let len = pages * Layout.page_size in
  let sp = As.create () in
  let seg = Segment.create ~name:"d" ~max_size:len () in
  for i = 0 to len - 1 do
    Segment.set_u8 seg i (i * 7 land 0xFF)
  done;
  As.map sp ~base:0x1000 ~len ~seg ~prot:Prot.Read_write ~share:As.Private
    ~label:"d" ();
  (sp, seg)

let pattern off = off * 7 land 0xFF

(* ----- sharing and divergence ----- *)

let cow_clone_shares_until_write () =
  with_cow true (fun () ->
      let sp, seg = data_space 4 in
      let saved0 = Stats.global.bytes_saved
      and copied0 = Stats.global.pages_copied
      and faults0 = Stats.global.cow_faults
      and bc0 = Stats.global.bytes_copied in
      let child = As.clone sp in
      check_int "clone copies no bytes" bc0 Stats.global.bytes_copied;
      check_int "clone saves the whole image" (saved0 + 0x4000)
        Stats.global.bytes_saved;
      check_int "all pages shared after clone" 4 (Segment.shared_pages seg);
      (* First child write: one fault, one page copied. *)
      store_u8_cow child 0x2123 0xAB;
      check_int "one cow fault" (faults0 + 1) Stats.global.cow_faults;
      check_int "one page copied" (copied0 + 1) Stats.global.pages_copied;
      check_int "child sees its write" 0xAB (As.load_u8 child 0x2123);
      check_int "parent byte unchanged" (pattern 0x1123) (As.load_u8 sp 0x2123);
      check_int "other pages still shared" 3 (Segment.shared_pages seg);
      (* The child's mapping is writable again; a different page still
         diverges, at the segment layer, without another fault. *)
      As.store_u8 child 0x1200 0x5A;
      check_int "later pages diverge without faulting" (copied0 + 2)
        Stats.global.pages_copied;
      check_int "cow faults unchanged" (faults0 + 1) Stats.global.cow_faults;
      (* The parent side runs the same protocol independently. *)
      store_u8_cow sp 0x4001 0x11;
      check_int "parent write faults too" (faults0 + 2) Stats.global.cow_faults;
      check_int "child unaffected by parent write" (pattern 0x3001)
        (As.load_u8 child 0x4001))

let cow_identical_write_keeps_sharing () =
  with_cow true (fun () ->
      let sp, seg = data_space 1 in
      let child = As.clone sp in
      let cseg =
        match As.mapping_at child 0x1000 with
        | Some (_, _, m) -> m.As.seg
        | None -> Alcotest.fail "child mapping missing"
      in
      let copied0 = Stats.global.pages_copied in
      let v0 = Segment.version cseg in
      (* Storing the bytes already there must not break sharing (this is
         what keeps relocation replays from diverging module images). *)
      store_u8_cow child 0x1010 (pattern 0x10);
      check_int "identical write copies nothing" copied0
        Stats.global.pages_copied;
      check_int "identical write leaves the version" v0 (Segment.version cseg);
      check_int "page still shared" 1 (Segment.shared_pages seg);
      As.store_u8 child 0x1010 0x99;
      check_int "differing write copies the page" (copied0 + 1)
        Stats.global.pages_copied;
      check_int "and lands" 0x99 (As.load_u8 child 0x1010))

let cow_kill_switch_eager () =
  with_cow false (fun () ->
      let sp, _seg = data_space 2 in
      let bc0 = Stats.global.bytes_copied
      and saved0 = Stats.global.bytes_saved
      and faults0 = Stats.global.cow_faults in
      let child = As.clone sp in
      check_int "eager clone bills bytes_copied" (bc0 + 0x2000)
        Stats.global.bytes_copied;
      check_int "eager clone saves nothing" saved0 Stats.global.bytes_saved;
      As.store_u8 child 0x1005 0xEE;
      check_int "no cow faults in eager mode" faults0 Stats.global.cow_faults;
      check_int "parent unchanged" (pattern 5) (As.load_u8 sp 0x1005);
      check_int "child diverged" 0xEE (As.load_u8 child 0x1005))

let cow_genuine_fault_not_swallowed () =
  with_cow true (fun () ->
      let sp, _seg = data_space 1 in
      let child = As.clone sp in
      As.protect child 0x1000 Prot.Read_only;
      (match As.store_u8 child 0x1000 1 with
      | () -> Alcotest.fail "store through read-only must fault"
      | exception As.Fault { access = Prot.Write; reason = As.Protection; addr }
        ->
        check_bool "resolve_cow refuses a genuine protection fault" false
          (As.resolve_cow child addr));
      (* Opening the protection back up re-arms the COW protocol. *)
      As.protect child 0x1000 Prot.Read_write;
      store_u8_cow child 0x1000 0x42;
      check_int "after re-protect the write lands" 0x42
        (As.load_u8 child 0x1000);
      check_int "parent still pristine" (pattern 0) (As.load_u8 sp 0x1000))

(* ----- self-modifying code after fork ----- *)

let no_syscall _ = Alcotest.fail "unexpected syscall"

(* Parent patches its own text after fork: the parent must execute the
   new instruction, the child the old one — even with both decode
   caches warm.  The parent's page copy bumps only the parent segment's
   version (and [resolve_cow] only the parent's epoch), so the child's
   cached decodes stay valid, as they should. *)
let cow_self_modifying_after_fork () =
  with_cow true (fun () ->
      let old_insn = Insn.encode (Insn.Addi (Reg.t1, Reg.zero, 11)) in
      let new_insn = Insn.encode (Insn.Addi (Reg.t1, Reg.zero, 22)) in
      let sp = As.create () in
      let text = Segment.create ~name:"text" ~max_size:0x1000 () in
      Segment.set_u32 text 0 old_insn;
      Segment.set_u32 text 4 (Insn.encode Insn.Break);
      As.map sp ~base:0x1000 ~len:0x1000 ~seg:text ~prot:Prot.Read_write_exec
        ~share:As.Private ~label:"text" ();
      let cpu = Cpu.create ~entry:0x1000 ~sp:0 in
      ignore (Cpu.run ~fuel:10 cpu sp ~syscall:no_syscall);
      check_int "before fork" 11 (Cpu.reg cpu Reg.t1);
      let child_sp = As.clone sp in
      let child_cpu = Cpu.fork cpu in
      (* Warm the child's decode cache on the shared text. *)
      child_cpu.Cpu.pc <- 0x1000;
      ignore (Cpu.run ~fuel:10 child_cpu child_sp ~syscall:no_syscall);
      check_int "child before patch" 11 (Cpu.reg child_cpu Reg.t1);
      (* Parent patches instruction 0 in place. *)
      store_u32_cow sp 0x1000 new_insn;
      cpu.Cpu.pc <- 0x1000;
      ignore (Cpu.run ~fuel:10 cpu sp ~syscall:no_syscall);
      check_int "parent executes the patched insn" 22 (Cpu.reg cpu Reg.t1);
      child_cpu.Cpu.pc <- 0x1000;
      ignore (Cpu.run ~fuel:10 child_cpu child_sp ~syscall:no_syscall);
      check_int "child still executes the original insn" 11
        (Cpu.reg child_cpu Reg.t1);
      check_int "child text word unchanged" old_insn
        (As.load_u32 child_sp 0x1000))

(* ----- zero-copy exec ----- *)

let cow_zero_copy_exec () =
  with_cow true (fun () ->
      let (k, _ldl) = boot () in
      Fs.mkdir (Kernel.fs k) "/home/t";
      install_c k "/home/t/main.o" "int main() { print_int(7); return 0; }";
      ignore
        (link k ~dir:"/home/t" ~specs:[ ("main.o", Sharing.Static_private) ]
           "prog");
      let run () =
        Kernel.console_clear k;
        let proc = Kernel.spawn_exec k ~name:"prog" "/home/t/prog" in
        Kernel.run k;
        check_int "exit" 0 (exit_code proc);
        check_string "output" "7" (Kernel.console k)
      in
      run ();
      let copied0 = Stats.global.pages_copied
      and saved0 = Stats.global.bytes_saved in
      run ();
      (* The second exec maps a COW copy of the cached image master:
         pages_copied grows only by the pages the program itself writes
         (none here), never by the image size. *)
      check_bool "second exec copies almost nothing" true
        (Stats.global.pages_copied - copied0 < 4);
      check_bool "second exec shares the image" true
        (Stats.global.bytes_saved - saved0 > 0))

(* ----- randomized schedules vs. the deep-copy oracle ----- *)

(* Ops are (kind, who, addr, value): byte/word stores, byte loads,
   whole-mapping protect, and unmap, applied to parent (who=0) or child
   (who=1) after a clone.  Every observation — loaded values, fault
   access+reason — is appended to a transcript, and the final memory is
   probed through both spaces.  Running the same schedule with COW on
   and off (the eager deep-copy oracle) must produce identical
   transcripts and dumps: COW is invisible up to cost. *)
let prots = [| Prot.No_access; Prot.Read_only; Prot.Read_write; Prot.Read_write_exec |]

let apply spaces obs (kind, who, addr, v) =
  let sp = spaces.(who) in
  let tag s = Buffer.add_string obs s in
  let fault access reason =
    tag
      (Printf.sprintf "F%d%d;"
         (match access with Prot.Read -> 0 | Prot.Write -> 1 | Prot.Exec -> 2)
         (match reason with
         | As.Unmapped -> 0
         | As.Protection -> 1
         | As.Not_resident -> 2))
  in
  let region_base = if addr < 0x4000 then 0x1000 else 0x4000 in
  match kind with
  | 0 -> (
    try
      store_u8_cow sp addr (v land 0xFF);
      tag "w;"
    with As.Fault { access; reason; _ } -> fault access reason)
  | 1 -> (
    try
      store_u32_cow sp addr v;
      tag "W;"
    with As.Fault { access; reason; _ } -> fault access reason)
  | 2 -> (
    match As.load_u8 sp addr with
    | b -> tag (Printf.sprintf "r%d;" b)
    | exception As.Fault { access; reason; _ } -> fault access reason)
  | 3 -> (
    try
      As.protect sp region_base prots.(v land 3);
      tag "p;"
    with Not_found -> tag "P!;")
  | _ ->
    As.unmap sp region_base;
    tag "u;"

let run_schedule ~cow ops =
  with_cow cow (fun () ->
      let sp = As.create () in
      (* Region A: two pages, partially filled (so zero-fill reads and
         the segment size boundary are in play). *)
      let seg_a = Segment.create ~name:"a" ~max_size:0x2000 () in
      for i = 0 to 0x17FF do
        Segment.set_u8 seg_a i (i * 7 land 0xFF)
      done;
      As.map sp ~base:0x1000 ~len:0x2000 ~seg:seg_a ~prot:Prot.Read_write
        ~share:As.Private ~label:"a" ();
      (* Region B: one empty page, with a hole between A and B. *)
      let seg_b = Segment.create ~name:"b" ~max_size:0x1000 () in
      As.map sp ~base:0x4000 ~len:0x1000 ~seg:seg_b ~prot:Prot.Read_write
        ~share:As.Private ~label:"b" ();
      let child = As.clone sp in
      let obs = Buffer.create 256 in
      List.iter (apply [| sp; child |] obs) ops;
      let dump sp =
        List.init ((0x5000 - 0x1000) / 64) (fun i ->
            let addr = 0x1000 + (64 * i) in
            match As.load_u8 sp addr with
            | v -> v
            | exception As.Fault _ -> -1)
      in
      (Buffer.contents obs, dump sp, dump child))

let prop_cow_matches_oracle =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 40)
        (quad (int_bound 4) (int_bound 1)
           (int_range 0x1000 0x4FFF)
           (int_bound 0xFFFFFF)))
  in
  prop "cow: schedules match the eager deep-copy oracle" ~count:100 gen
    (fun ops -> run_schedule ~cow:true ops = run_schedule ~cow:false ops)

let suite =
  [
    test "cow: clone shares pages until first write" cow_clone_shares_until_write;
    test "cow: identical writes keep pages shared" cow_identical_write_keeps_sharing;
    test "cow: HEMLOCK_NO_COW restores eager copies" cow_kill_switch_eager;
    test "cow: genuine protection faults still deliver" cow_genuine_fault_not_swallowed;
    test "cow: self-modifying code after fork stays private" cow_self_modifying_after_fork;
    test "cow: exec reuses a pristine image master" cow_zero_copy_exec;
    prop_cow_matches_oracle;
  ]

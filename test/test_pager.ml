(** Demand paging: VmObject residency, the Not_resident
    fault/materialise/retry protocol, bounded-RAM second-chance
    eviction, journalled writeback of dirty file-backed pages with
    crash-consistent recovery, and a schedule-randomized lockstep
    equivalence check of the squeezed pager against the eager
    always-resident oracle ([HEMLOCK_NO_PAGER] semantics). *)

open Harness
module Layout = Hemlock_vm.Layout
module Prot = Hemlock_vm.Prot
module Segment = Hemlock_vm.Segment
module As = Hemlock_vm.Address_space
module Vm_object = Hemlock_vm.Vm_object
module Stats = Hemlock_util.Stats
module Fault = Hemlock_util.Fault

(* Run [f] under an explicit pager configuration, restoring the
   session's configuration (and wiping registry/clock state both ways)
   afterwards.  Every test builds its segments inside the wrapper so no
   stale registry entry survives into the next test. *)
let with_pager ?ram enabled f =
  let old_enabled = !Vm_object.enabled and old_ram = !Vm_object.ram_pages in
  Vm_object.enabled := enabled;
  Vm_object.ram_pages := ram (* [~ram:n] bounds RAM; omitted = unbounded *);
  Vm_object.reset ();
  Fun.protect
    ~finally:(fun () ->
      Vm_object.enabled := old_enabled;
      Vm_object.ram_pages := old_ram;
      Vm_object.reset ())
    f

(* The kernel's side of the pager (and COW) protocol, inlined for
   direct address-space tests: a Not_resident fault retries after
   [resolve_pager] materialises, a COW write-protection fault retries
   after [resolve_cow]; anything else propagates. *)
let rec resolving sp f =
  try f () with
  | As.Fault { addr = fa; access; reason = As.Not_resident }
    when As.resolve_pager sp fa access ->
    resolving sp f
  | As.Fault { addr = fa; access = Prot.Write; reason = As.Protection }
    when As.resolve_cow sp fa ->
    resolving sp f

let store_u8 sp addr v = resolving sp (fun () -> As.store_u8 sp addr v)
let load_u8 sp addr = resolving sp (fun () -> As.load_u8 sp addr)

(* A space with one Anonymous RW mapping at [base] backed by a fresh
   [pages]-page segment prefilled with [(off * 7) land 0xFF]. *)
let anon_space ?(base = 0x1000) pages =
  let len = pages * Layout.page_size in
  let sp = As.create () in
  let seg = Segment.create ~name:"pg" ~max_size:len () in
  for i = 0 to len - 1 do
    Segment.set_u8 seg i (i * 7 land 0xFF)
  done;
  As.map sp ~base ~len ~seg ~kind:Vm_object.Anonymous ~prot:Prot.Read_write
    ~share:As.Private ~label:"pg" ();
  (sp, seg)

let pattern off = off * 7 land 0xFF

(* ----- residency and the fault protocol ----- *)

let demand_materialise () =
  with_pager true (fun () ->
      let sp, _seg = anon_space 4 in
      let minor0 = Stats.global.minor_faults
      and delivered0 = Stats.global.faults
      and resident0 = Stats.global.resident_pages in
      (* Nothing is resident until touched. *)
      (match As.load_u8 sp 0x1000 with
      | _ -> Alcotest.fail "expected Not_resident fault"
      | exception As.Fault { reason = As.Not_resident; addr; _ } ->
        check_int "fault addr" 0x1000 addr);
      check_int "first touch of a page minor-faults" (pattern 0)
        (load_u8 sp 0x1000);
      check_int "minor fault billed" (minor0 + 1) Stats.global.minor_faults;
      (* Same page again: resident, no fault. *)
      check_int "resident page hits" (pattern 1) (load_u8 sp 0x1001);
      check_int "no second minor fault" (minor0 + 1) Stats.global.minor_faults;
      check_int "pager faults are invisible to the cost model" delivered0
        Stats.global.faults;
      check_int "gauge tracks residency" (resident0 + 1)
        Stats.global.resident_pages;
      (* A write to another page materialises it too. *)
      store_u8 sp (0x1000 + Layout.page_size) 0xAB;
      check_int "write materialises" (minor0 + 2) Stats.global.minor_faults)

let pinned_default_never_faults () =
  with_pager true (fun () ->
      let len = 2 * Layout.page_size in
      let sp = As.create () in
      let seg = Segment.create ~name:"pin" ~max_size:len () in
      Segment.set_u8 seg 0 42;
      (* No [?kind]: raw mappers get the seed's eager behaviour. *)
      As.map sp ~base:0x1000 ~len ~seg ~prot:Prot.Read_write ~share:As.Private
        ~label:"pin" ();
      check_int "pinned mapping reads without resolver help" 42
        (As.load_u8 sp 0x1000);
      As.store_u8 sp (0x1000 + Layout.page_size) 7;
      check_int "pinned write" 7 (As.load_u8 sp (0x1000 + Layout.page_size)))

let pin_promotion () =
  with_pager true (fun () ->
      let sp, seg = anon_space 2 in
      (* Materialise page 0 so the object owns a clock frame. *)
      check_int "pre-promotion touch" (pattern 0) (load_u8 sp 0x1000);
      (* A second, raw mapping of the same segment pins the object:
         eager expectations win over demand paging. *)
      let sp2 = As.create () in
      As.map sp2 ~base:0x1000 ~len:(2 * Layout.page_size) ~seg
        ~prot:Prot.Read_only ~share:As.Public ~label:"raw" ();
      check_int "promoted object reads raw, page 1 never materialised"
        (pattern Layout.page_size)
        (As.load_u8 sp2 (0x1000 + Layout.page_size));
      check_int "original space no longer faults"
        (pattern Layout.page_size)
        (As.load_u8 sp (0x1000 + Layout.page_size)))

let kill_switch_is_eager () =
  with_pager false (fun () ->
      let minor0 = Stats.global.minor_faults in
      let sp, _seg = anon_space 4 in
      (* Anonymous kind requested, but the pager is off: everything is
         resident and the raw accessors just work. *)
      for i = 0 to 3 do
        let addr = 0x1000 + (i * Layout.page_size) in
        check_int "eager read" (pattern (i * Layout.page_size))
          (As.load_u8 sp addr)
      done;
      check_int "no minor faults with the pager off" minor0
        Stats.global.minor_faults)

(* ----- bounded RAM and eviction ----- *)

let eviction_preserves_contents () =
  with_pager true ~ram:8 (fun () ->
      let pages = 32 in
      let sp, _seg = anon_space pages in
      let evicted0 = Stats.global.pages_evicted in
      (* March a working set 4x the budget through RAM, writing. *)
      for i = 0 to pages - 1 do
        store_u8 sp (0x1000 + (i * Layout.page_size)) (i land 0xFF)
      done;
      check_bool "squeeze forced evictions" true
        (Stats.global.pages_evicted > evicted0);
      check_bool "peak residency respects the budget (+1 transient)" true
        (Vm_object.peak_resident () <= 9);
      (* Every page faults back in with its contents intact: eviction
         never discards, the segment stays the page store. *)
      for i = 0 to pages - 1 do
        let base = 0x1000 + (i * Layout.page_size) in
        check_int "written byte survives eviction" (i land 0xFF)
          (load_u8 sp base);
        check_int "prefilled byte survives eviction"
          (pattern ((i * Layout.page_size) + 1))
          (load_u8 sp (base + 1))
      done)

let eviction_invalidates_tlb () =
  with_pager true ~ram:8 (fun () ->
      (* Default caching: a valid TLB entry must imply residency, so
         eviction has to bump the epoch.  If it didn't, the cached
         translation would read a non-resident page without re-faulting
         and the residency bitmaps would drift from the access
         stream — the re-touch below would not re-materialise. *)
      let pages = 24 in
      let sp, _seg = anon_space pages in
      for i = 0 to pages - 1 do
        store_u8 sp (0x1000 + (i * Layout.page_size)) i
      done;
      let minor_before = Stats.global.minor_faults in
      check_int "evicted page re-faults through the slow path" 0
        (load_u8 sp 0x1000);
      check_bool "re-touch re-materialised" true
        (Stats.global.minor_faults > minor_before))

(* ----- file-backed writeback and crash consistency ----- *)

(* A space mapping [pages] pages of a fresh /shared file, with the
   pager's journalled writeback wired to the file system. *)
let file_space ?(prot = Prot.Read_write) fs ~path pages =
  Fs.write_file fs path (Bytes.make (pages * Layout.page_size) 'q');
  let seg = Fs.segment_of fs path in
  let sp = As.create () in
  let kind =
    Vm_object.File_backed
      { path; writeback = (fun ~page -> Fs.page_writeback fs ~path ~seg ~page) }
  in
  As.map sp ~base:0x100000 ~len:(pages * Layout.page_size) ~seg ~kind ~prot
    ~share:As.Public ~label:path ();
  (sp, seg)

let writeback_goes_through_journal () =
  with_pager true ~ram:8 (fun () ->
      let fs = Fs.create () in
      let sp, _seg = file_space fs ~path:"/shared/ws" 16 in
      let major0 = Stats.global.major_faults
      and wb0 = Stats.global.pages_written_back in
      (* Dirty twice the budget: evictions must write back. *)
      for i = 0 to 15 do
        store_u8 sp (0x100000 + (i * Layout.page_size)) i
      done;
      check_int "file-backed touches are major faults" (major0 + 16)
        Stats.global.major_faults;
      check_bool "dirty file pages were written back" true
        (Stats.global.pages_written_back > wb0);
      check_int "journal drained (begin/end paired)" 0
        (List.length (Fs.journal_pending fs));
      check_bool "fs is consistent after paging" true (Fs.fsck fs).Fs.fsck_clean;
      for i = 0 to 15 do
        check_int "contents durable" i
          (load_u8 sp (0x100000 + (i * Layout.page_size)))
      done)

let clean_evictions_skip_writeback () =
  (* A read-only mapping can never dirty its pages (even the
     conservative TLB-fill marking has no write grant to key on), so
     squeezing a pure read sweep evicts clean and writes back nothing.
     Isolated under its own clock: a shared clock would also evict
     another object's dirty residue. *)
  with_pager true ~ram:8 (fun () ->
      let fs = Fs.create () in
      let ro, _ = file_space ~prot:Prot.Read_only fs ~path:"/shared/ro" 16 in
      let wb0 = Stats.global.pages_written_back
      and evicted0 = Stats.global.pages_evicted in
      for i = 0 to 15 do
        check_int "read-only contents" (Char.code 'q')
          (load_u8 ro (0x100000 + (i * Layout.page_size)))
      done;
      check_bool "the sweep did evict" true
        (Stats.global.pages_evicted > evicted0);
      check_int "clean evictions skip writeback" wb0
        Stats.global.pages_written_back;
      check_int "no journal traffic" 0 (List.length (Fs.journal_pending fs)))

let injected_failure_aborts_one_eviction () =
  with_pager true ~ram:8 (fun () ->
      let fs = Fs.create () in
      let sp, _seg = file_space fs ~path:"/shared/flaky" 16 in
      Fault.configure "fs.pageout@1=eio";
      let pageout_hits =
        Fun.protect ~finally:Fault.clear (fun () ->
            (* The first writeback attempt fails; the pager abandons
               that victim, withdraws the intent, and the clock moves
               on. *)
            for i = 0 to 15 do
              store_u8 sp (0x100000 + (i * Layout.page_size)) i
            done;
            Fault.hits "fs.pageout")
      in
      check_bool "the pageout site fired more than once" true
        (pageout_hits >= 2);
      check_int "withdrawn intent leaves no journal residue" 0
        (List.length (Fs.journal_pending fs));
      check_bool "fs is consistent" true (Fs.fsck fs).Fs.fsck_clean;
      for i = 0 to 15 do
        check_int "all stores landed despite the aborted eviction" i
          (load_u8 sp (0x100000 + (i * Layout.page_size)))
      done)

let eviction_crash_recovers () =
  with_pager true ~ram:8 (fun () ->
      let fs = Fs.create () in
      let sp, _seg = file_space fs ~path:"/shared/crashy" 16 in
      Fault.configure "fs.pageout@1=crash";
      let crashed =
        try
          for i = 0 to 15 do
            store_u8 sp (0x100000 + (i * Layout.page_size)) (0x40 + i)
          done;
          false
        with Fault.Crash _ -> true
      in
      Fault.clear ();
      check_bool "crashed mid-eviction" true crashed;
      check_int "the pageout intent survived the crash" 1
        (List.length (Fs.journal_pending fs));
      (* Memory and file are the same segment, so the write-through
         contents match the filed digest: fsck rolls the intent
         forward. *)
      let r1 = Fs.fsck fs in
      check_int "fsck replays the pageout" 1 r1.Fs.fsck_replayed;
      check_int "nothing rolled back" 0 r1.Fs.fsck_rolled_back;
      let r2 = Fs.fsck fs in
      check_bool "recovery is idempotent" true r2.Fs.fsck_clean;
      (* The page the barrier covered is exactly what the file holds. *)
      let b = Fs.read_file fs "/shared/crashy" in
      check_int "durable byte" 0x40 (Char.code (Bytes.get b 0)))

(* ----- kernel-level identity: console and billed costs ----- *)

let kernel_costs_identical_under_squeeze () =
  let src =
    {|
int main() {
  int *p;
  int i;
  int sum;
  p = sbrk(98304);             // a 24-page heap: 3x the squeezed budget
  i = 0;
  while (i < 24576) { p[i] = i; i = i + 97; }
  sum = 0;
  i = 0;
  while (i < 24576) { sum = sum + p[i]; i = i + 97; }
  print_int(sum);
  return 0;
}|}
  in
  let run ?ram enabled =
    with_pager ?ram enabled (fun () ->
        let km = boot () in
        let console = ref "" in
        let (), d =
          Stats.measure (fun () -> console := run_c_program km src)
        in
        (!console, d.Stats.instructions, d.Stats.syscalls, d.Stats.faults,
         Stats.cycles d))
  in
  let cb, ib, yb, fb, xb = run false in
  let cu, iu, yu, fu, xu = run true in
  let cs, is_, ys, fs_, xs = run ~ram:8 true in
  check_string "console identical (unbounded)" cb cu;
  check_string "console identical (squeezed)" cb cs;
  check_int "instructions identical (unbounded)" ib iu;
  check_int "instructions identical (squeezed)" ib is_;
  check_int "syscalls identical (unbounded)" yb yu;
  check_int "syscalls identical (squeezed)" yb ys;
  check_int "delivered faults identical (unbounded)" fb fu;
  check_int "delivered faults identical (squeezed)" fb fs_;
  check_int "cycles identical (unbounded)" xb xu;
  check_int "cycles identical (squeezed)" xb xs

(* ----- lockstep differential: squeezed pager vs eager oracle ----- *)

(* Interpret a random schedule of writes, reads, clones and unmaps over
   a family of address spaces, and fold every observable outcome (read
   values, fault-or-not) into a transcript string.  Run under the
   squeezed pager and under the eager oracle, the transcripts must be
   identical: demand paging may never change what programs observe. *)
let interp ?ram ~pager ops =
  with_pager ?ram pager (fun () ->
      let buf = Buffer.create 256 in
      let region_pages = 4 in
      let rlen = region_pages * Layout.page_size in
      let mk_root () =
        let sp, _seg = anon_space ~base:0x1000 region_pages in
        let seg_b = Segment.create ~name:"b" ~max_size:rlen () in
        As.map sp ~base:0x8000 ~len:rlen ~seg:seg_b ~kind:Vm_object.Anonymous
          ~prot:Prot.Read_write ~share:As.Public ~label:"b" ();
        sp
      in
      let spaces = ref [| mk_root () |] in
      let addr_of a b =
        let off = a mod rlen in
        if b land 1 = 0 then 0x1000 + off else 0x8000 + off
      in
      let record fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
      let run_op (tag, a, b) =
        let sp = !spaces.(a mod Array.length !spaces) in
        match tag with
        | 0 | 1 -> (
          let addr = addr_of a b in
          try store_u8 sp addr (b land 0xFF)
          with As.Fault { reason; _ } ->
            record "W!%d;" (match reason with As.Unmapped -> 0 | _ -> 1))
        | 2 | 3 -> (
          let addr = addr_of a b in
          try record "R%d;" (load_u8 sp addr)
          with As.Fault { reason; _ } ->
            record "R!%d;" (match reason with As.Unmapped -> 0 | _ -> 1))
        | 4 ->
          if Array.length !spaces < 3 then
            spaces := Array.append !spaces [| As.clone sp |]
        | _ ->
          (* Unmap the public region (no-op if already gone): exercises
             detach, and subsequent accesses must fault identically. *)
          As.unmap sp 0x8000
      in
      List.iter run_op ops;
      (* Final sweep: full contents of every space are part of the
         observation, so divergence hiding in never-again-read pages
         still fails the property. *)
      Array.iteri
        (fun i sp ->
          let sum = ref 0 in
          for off = 0 to rlen - 1 do
            sum := (!sum * 31) + load_u8 sp (0x1000 + off)
          done;
          (match As.mapping_at sp 0x8000 with
          | Some _ ->
            for off = 0 to rlen - 1 do
              sum := (!sum * 31) + load_u8 sp (0x8000 + off)
            done
          | None -> sum := (!sum * 31) + 0xDEAD);
          record "S%d:%d;" i (!sum land 0x3FFFFFFF))
        !spaces;
      Buffer.contents buf)

let lockstep_gen =
  QCheck2.Gen.(
    list_size (int_range 0 48)
      (triple (int_bound 5) (int_bound 0xFFFF) (int_bound 255)))

let lockstep_prop ops =
  let eager = interp ~pager:false ops in
  let squeezed = interp ~pager:true ~ram:8 ops in
  let unbounded = interp ~pager:true ops in
  if eager <> squeezed then
    QCheck2.Test.fail_reportf "squeezed pager diverged:@.%s@.vs@.%s" eager
      squeezed;
  if eager <> unbounded then
    QCheck2.Test.fail_reportf "unbounded pager diverged:@.%s@.vs@.%s" eager
      unbounded;
  true

(* Crash-sweep extension: random schedules that crash at the pageout
   barrier must always recover to a clean fs, idempotently. *)
let crash_gen = QCheck2.Gen.(pair (int_range 1 4) (int_bound 9999))

let crash_prop (ordinal, salt) =
  with_pager true ~ram:8 (fun () ->
      let fs = Fs.create () in
      let path = "/shared/cs" in
      let sp, _seg = file_space fs ~path 16 in
      Fault.configure (Printf.sprintf "fs.pageout@%d=crash" ordinal);
      (try
         for i = 0 to 15 do
           store_u8 sp
             (0x100000 + (i * Layout.page_size))
             ((i + salt) land 0xFF)
         done
       with Fault.Crash _ -> ());
      Fault.clear ();
      let r1 = Fs.fsck fs in
      check_int "at most one intent in flight" 0
        (List.length (Fs.journal_pending fs));
      let r2 = Fs.fsck fs in
      if not r2.Fs.fsck_clean then
        QCheck2.Test.fail_reportf "fsck not idempotent after %s"
          (String.concat "; " r1.Fs.fsck_repairs);
      true)

let suite =
  [
    test "demand: first touch materialises, resident hits do not" demand_materialise;
    test "demand: default Pinned kind never pager-faults" pinned_default_never_faults;
    test "demand: raw mapping promotes a pageable object to pinned" pin_promotion;
    test "demand: HEMLOCK_NO_PAGER restores eager residency" kill_switch_is_eager;
    test "evict: bounded RAM preserves contents across the clock" eviction_preserves_contents;
    test "evict: eviction re-faults through the slow path" eviction_invalidates_tlb;
    test "writeback: dirty file pages drain through the journal" writeback_goes_through_journal;
    test "writeback: clean evictions never touch the journal" clean_evictions_skip_writeback;
    test "writeback: injected failure aborts one eviction cleanly" injected_failure_aborts_one_eviction;
    test "writeback: crash at the barrier is fsck-recoverable" eviction_crash_recovers;
    test "kernel: console and billed costs identical under squeeze"
      kernel_costs_identical_under_squeeze;
    prop "lockstep: pager on (tiny RAM) matches eager oracle" ~count:120
      lockstep_gen lockstep_prop;
    prop "crash sweep: pageout crashes recover idempotently" ~count:60 crash_gen
      crash_prop;
  ]

let () =
  Alcotest.run "hemlock"
    [
      ("util", Test_util.suite);
      ("vm", Test_vm.suite);
      ("cow", Test_cow.suite);
      ("pager", Test_pager.suite);
      ("fs", Test_fs.suite);
      ("btree", Test_btree.suite);
      ("isa", Test_isa.suite);
      ("jit", Test_jit.suite);
      ("obj", Test_obj.suite);
      ("cc", Test_cc.suite);
      ("os", Test_os.suite);
      ("errno", Test_errno.suite);
      ("linker", Test_linker.suite);
      ("linkfast", Test_linkfast.suite);
      ("stable", Test_stable.suite);
      ("ldl", Test_ldl.suite);
      ("runtime", Test_runtime.suite);
      ("baseline", Test_baseline.suite);
      ("apps", Test_apps.suite);
      ("failures", Test_failures.suite);
      ("crash", Test_crash.suite);
      ("differential", Test_diff.suite);
      ("parallel", Test_parallel.suite);
      ("net", Test_net.suite);
      ("scenarios", Test_scenarios.suite);
      ("lisp", Test_lisp.suite);
    ]

open Harness
module Reg = Hemlock_isa.Reg
module Insn = Hemlock_isa.Insn
module Cpu = Hemlock_isa.Cpu
module As = Hemlock_vm.Address_space
module Prot = Hemlock_vm.Prot
module Segment = Hemlock_vm.Segment

(* ----- registers ----- *)

let reg_names () =
  check_string "sp" "$sp" (Reg.name Reg.sp);
  check_string "zero" "$zero" (Reg.name 0);
  check_int "by name" Reg.sp (Reg.of_string "$sp");
  check_int "by alias" Reg.gp (Reg.of_string "gp");
  check_int "by number" 17 (Reg.of_string "$17");
  check_bool "unknown rejected" true
    (try
       ignore (Reg.of_string "$nope");
       false
     with Failure _ -> true)

(* ----- encode/decode ----- *)

let sample_insns =
  [
    Insn.Sll (1, 2, 5);
    Insn.Srl (3, 4, 31);
    Insn.Sra (5, 6, 0);
    Insn.Add (7, 8, 9);
    Insn.Sub (10, 11, 12);
    Insn.Mul (13, 14, 15);
    Insn.Div (16, 17, 18);
    Insn.Rem (19, 20, 21);
    Insn.And (22, 23, 24);
    Insn.Or (25, 26, 27);
    Insn.Xor (28, 29, 30);
    Insn.Slt (31, 1, 2);
    Insn.Sltu (3, 4, 5);
    Insn.Addi (6, 7, -32768);
    Insn.Slti (8, 9, 32767);
    Insn.Andi (10, 11, 0xFFFF);
    Insn.Ori (12, 13, 0);
    Insn.Xori (14, 15, 0xABCD);
    Insn.Lui (16, 0x1234);
    Insn.Lw (17, 18, -4);
    Insn.Lb (19, 20, 127);
    Insn.Sw (21, 22, 4);
    Insn.Sb (23, 24, -128);
    Insn.Beq (25, 26, -100);
    Insn.Bne (27, 28, 100);
    Insn.Blez (29, 3);
    Insn.Bgtz (30, -3);
    Insn.J 0x12345;
    Insn.Jal 0x3FFFFFF;
    Insn.Jr 31;
    Insn.Jalr (31, 2);
    Insn.Syscall;
    Insn.Break;
  ]

let encode_decode_all () =
  List.iter
    (fun insn ->
      let word = Insn.encode insn in
      check_bool "32-bit" true (word >= 0 && word <= 0xFFFF_FFFF);
      let insn' = Insn.decode word in
      if insn <> insn' then
        Alcotest.failf "roundtrip: %s became %s"
          (Format.asprintf "%a" Insn.pp insn)
          (Format.asprintf "%a" Insn.pp insn'))
    sample_insns

let encode_range_checks () =
  check_bool "imm16 overflow" true
    (try ignore (Insn.encode (Insn.Addi (1, 2, 0x8000))); false with Failure _ -> true);
  check_bool "negative unsigned imm" true
    (try ignore (Insn.encode (Insn.Ori (1, 2, -1))); false with Failure _ -> true);
  check_bool "jump field overflow" true
    (try ignore (Insn.encode (Insn.J 0x4000000)); false with Failure _ -> true);
  check_bool "bad register" true
    (try ignore (Insn.encode (Insn.Add (32, 0, 0))); false with Failure _ -> true)

let jump_range () =
  check_bool "same region" true (Insn.jump_in_range ~pc:0x0040_0000 ~target:0x0080_0000);
  check_bool "cross region" false (Insn.jump_in_range ~pc:0x0040_0000 ~target:0x1000_0000);
  check_bool "shared region crossing" false
    (Insn.jump_in_range ~pc:0x3F00_0000 ~target:0x4000_0000);
  (* MIPS quirk: the region is taken from pc+4, so a jump in a delay-free
     last slot of a region reaches the next region. *)
  check_bool "region from pc+4" true
    (Insn.jump_in_range ~pc:0x3FFF_FFFC ~target:0x4000_0000);
  check_bool "unaligned" false (Insn.jump_in_range ~pc:0x1000 ~target:0x2002);
  let target = 0x0123_4560 in
  check_int "field roundtrip" target
    (Insn.jump_target ~pc:0x0000_1000 (Insn.jump_field ~target))

let prop_decode_encode =
  (* decode(encode(i)) = i for randomly generated register instructions *)
  let gen =
    QCheck2.Gen.(
      let reg = int_range 0 31 in
      let imm = int_range (-0x8000) 0x7FFF in
      oneof
        [
          map3 (fun a b c -> Insn.Add (a, b, c)) reg reg reg;
          map3 (fun a b c -> Insn.Sub (a, b, c)) reg reg reg;
          map3 (fun a b c -> Insn.Addi (a, b, c)) reg reg imm;
          map3 (fun a b c -> Insn.Lw (a, b, c)) reg reg imm;
          map3 (fun a b c -> Insn.Sw (a, b, c)) reg reg imm;
          map3 (fun a b c -> Insn.Beq (a, b, c)) reg reg imm;
          map2 (fun a b -> Insn.Lui (a, b land 0xFFFF)) reg imm;
          map (fun a -> Insn.J (a land 0x3FF_FFFF)) (int_bound 0x3FF_FFFF);
        ])
  in
  prop "insn: decode inverts encode" gen (fun insn -> Insn.decode (Insn.encode insn) = insn)

(* ----- cpu ----- *)

let make_space insns =
  let sp = As.create () in
  let text = Segment.create ~name:"text" ~max_size:0x10000 () in
  List.iteri (fun i insn -> Segment.set_u32 text (4 * i) (Insn.encode insn)) insns;
  As.map sp ~base:0x1000 ~len:0x1000 ~seg:text ~prot:Prot.Read_write_exec
    ~share:As.Private ~label:"text" ();
  let stack = Segment.create ~name:"stack" ~max_size:0x10000 () in
  As.map sp ~base:0x8000 ~len:0x1000 ~seg:stack ~prot:Prot.Read_write ~share:As.Private
    ~label:"stack" ();
  sp

let no_syscall _ = Alcotest.fail "unexpected syscall"

let run_insns ?(steps = 100) insns =
  let sp = make_space insns in
  let cpu = Cpu.create ~entry:0x1000 ~sp:0x8800 in
  ignore (Cpu.run ~fuel:steps cpu sp ~syscall:no_syscall);
  cpu

let cpu_arith () =
  let cpu =
    run_insns
      [
        Insn.Addi (Reg.t0, Reg.zero, 21);
        Insn.Addi (Reg.t1, Reg.zero, 2);
        Insn.Mul (Reg.t2, Reg.t0, Reg.t1);
        Insn.Sub (Reg.t3, Reg.t2, Reg.t0);
        Insn.Break;
      ]
  in
  check_int "mul" 42 (Cpu.reg cpu Reg.t2);
  check_int "sub" 21 (Cpu.reg cpu Reg.t3)

let cpu_signed_ops () =
  let cpu =
    run_insns
      [
        Insn.Addi (Reg.t0, Reg.zero, -7);
        Insn.Addi (Reg.t1, Reg.zero, 2);
        Insn.Div (Reg.t2, Reg.t0, Reg.t1);
        Insn.Rem (Reg.t3, Reg.t0, Reg.t1);
        Insn.Slt (Reg.a0, Reg.t0, Reg.t1);
        Insn.Sltu (Reg.a1, Reg.t0, Reg.t1);
        Insn.Sra (Reg.a2, Reg.t0, 1);
        Insn.Break;
      ]
  in
  check_int "div trunc" (Hemlock_util.Codec.mask32 (-3)) (Cpu.reg cpu Reg.t2);
  check_int "rem sign" (Hemlock_util.Codec.mask32 (-1)) (Cpu.reg cpu Reg.t3);
  check_int "slt signed" 1 (Cpu.reg cpu Reg.a0);
  check_int "sltu unsigned" 0 (Cpu.reg cpu Reg.a1);
  check_int "sra" (Hemlock_util.Codec.mask32 (-4)) (Cpu.reg cpu Reg.a2)

let cpu_zero_register () =
  let cpu = run_insns [ Insn.Addi (Reg.zero, Reg.zero, 99); Insn.Break ] in
  check_int "r0 stays zero" 0 (Cpu.reg cpu Reg.zero)

let cpu_memory () =
  let cpu =
    run_insns
      [
        Insn.Addi (Reg.t0, Reg.zero, 0x1234);
        Insn.Sw (Reg.t0, Reg.sp, -4);
        Insn.Lw (Reg.t1, Reg.sp, -4);
        Insn.Sb (Reg.t0, Reg.sp, -8);
        Insn.Lb (Reg.t2, Reg.sp, -8);
        Insn.Break;
      ]
  in
  check_int "word roundtrip" 0x1234 (Cpu.reg cpu Reg.t1);
  check_int "byte truncated" 0x34 (Cpu.reg cpu Reg.t2)

let cpu_branch_loop () =
  (* sum 1..5 with a bne loop *)
  let cpu =
    run_insns
      [
        Insn.Addi (Reg.t0, Reg.zero, 5);
        Insn.Addi (Reg.t1, Reg.zero, 0);
        (* loop: *)
        Insn.Add (Reg.t1, Reg.t1, Reg.t0);
        Insn.Addi (Reg.t0, Reg.t0, -1);
        Insn.Bne (Reg.t0, Reg.zero, -3);
        Insn.Break;
      ]
  in
  check_int "sum" 15 (Cpu.reg cpu Reg.t1)

let cpu_jal_jr () =
  (* jal to a function that doubles a0, then jr back *)
  let insns =
    [
      Insn.Addi (Reg.a0, Reg.zero, 8);
      Insn.Jal (Insn.jump_field ~target:0x1010);
      Insn.Break;
      (* filler *)
      Insn.nop;
      (* 0x1010: *)
      Insn.Add (Reg.a0, Reg.a0, Reg.a0);
      Insn.Jr Reg.ra;
    ]
  in
  let cpu = run_insns insns in
  check_int "doubled" 16 (Cpu.reg cpu Reg.a0)

let cpu_div_zero_traps () =
  let sp = make_space [ Insn.Div (1, 2, 0); Insn.Break ] in
  let cpu = Cpu.create ~entry:0x1000 ~sp:0x8800 in
  match Cpu.run ~fuel:10 cpu sp ~syscall:no_syscall with
  | exception Cpu.Cpu_error { pc = 0x1000; msg } ->
    check_string "message" "division by zero" msg
  | _ -> Alcotest.fail "expected trap"

let cpu_fault_leaves_pc () =
  let sp = make_space [ Insn.Lw (1, Reg.zero, 0); Insn.Break ] in
  let cpu = Cpu.create ~entry:0x1000 ~sp:0x8800 in
  (match Cpu.run ~fuel:10 cpu sp ~syscall:no_syscall with
  | exception As.Fault { addr = 0; _ } -> ()
  | _ -> Alcotest.fail "expected fault");
  (* pc still points at the faulting instruction: it can restart *)
  check_int "pc unmoved" 0x1000 cpu.Cpu.pc

let cpu_halted_code () =
  let sp = make_space [ Insn.Addi (Reg.a0, Reg.zero, 7); Insn.Break ] in
  let cpu = Cpu.create ~entry:0x1000 ~sp:0x8800 in
  match Cpu.run ~fuel:10 cpu sp ~syscall:no_syscall with
  | Cpu.Halted 7 -> ()
  | _ -> Alcotest.fail "expected Halted 7"

let cpu_syscall_callback () =
  let sp = make_space [ Insn.Addi (Reg.v0, Reg.zero, 9); Insn.Syscall; Insn.Break ] in
  let cpu = Cpu.create ~entry:0x1000 ~sp:0x8800 in
  let seen = ref 0 in
  let syscall c =
    seen := Cpu.reg c Reg.v0;
    Cpu.set_reg c Reg.v1 123
  in
  ignore (Cpu.run ~fuel:10 cpu sp ~syscall);
  check_int "syscall number seen" 9 !seen;
  check_int "result visible" 123 (Cpu.reg cpu Reg.v1);
  (* pc advanced past the trap before the callback ran *)
  check_int "pc after break" 0x1008 cpu.Cpu.pc

(* ----- decoded-instruction cache ----- *)

let with_dcache enabled f =
  let old = !Cpu.decode_cache_enabled in
  Cpu.decode_cache_enabled := enabled;
  Fun.protect ~finally:(fun () -> Cpu.decode_cache_enabled := old) f

(* Self-modifying code: execute an instruction (filling the decode
   cache), overwrite it with a store, loop back, and execute the new
   one.  The segment version bump must make the cache re-decode. *)
let dcache_self_modifying () =
  let patched = Insn.encode (Insn.Addi (Reg.t1, Reg.zero, 22)) in
  let program =
    [
      Insn.Addi (Reg.t0, Reg.zero, 0x1000);
      Insn.Lui (Reg.t2, patched lsr 16);
      Insn.Ori (Reg.t2, Reg.t2, patched land 0xFFFF);
      Insn.Addi (Reg.t3, Reg.zero, 0);
      (* 0x1010, the slot to patch: *)
      Insn.Addi (Reg.t1, Reg.zero, 11);
      Insn.Bne (Reg.t3, Reg.zero, 3);
      Insn.Sw (Reg.t2, Reg.t0, 0x10);
      Insn.Addi (Reg.t3, Reg.zero, 1);
      Insn.Beq (Reg.zero, Reg.zero, -5);
      Insn.Break;
    ]
  in
  List.iter
    (fun enabled ->
      with_dcache enabled (fun () ->
          let cpu = run_insns ~steps:50 program in
          check_int
            (Printf.sprintf "patched insn executed (dcache %b)" enabled)
            22 (Cpu.reg cpu Reg.t1)))
    [ true; false ]

(* Dropping exec permission must fault the very next fetch even though
   the page's decodes are cached (epoch invalidation). *)
let dcache_respects_protect () =
  with_dcache true (fun () ->
      let sp = make_space [ Insn.Beq (Reg.zero, Reg.zero, -1) ] in
      let cpu = Cpu.create ~entry:0x1000 ~sp:0x8800 in
      (match Cpu.run ~fuel:10 cpu sp ~syscall:no_syscall with
      | Cpu.Running -> ()
      | Cpu.Halted _ -> Alcotest.fail "loop should not halt");
      As.protect sp 0x1000 Prot.Read_write;
      match Cpu.step cpu sp ~syscall:no_syscall with
      | exception As.Fault { access = Prot.Exec; reason = As.Protection; _ } -> ()
      | _ -> Alcotest.fail "fetch after dropping exec must fault")

(* ----- assembler ----- *)

module Asm = Hemlock_isa.Asm
module Objfile = Hemlock_obj.Objfile

let asm_sections_and_symbols () =
  let obj =
    Asm.assemble ~name:"t.o"
      {|
        .text
        .globl f
f:      add $v0, $a0, $a1
        jr $ra
        .data
        .globl tbl
tbl:    .word 1, 2, 3
local:  .byte 7
        .bss
        .globl buf
buf:    .space 64
|}
  in
  check_int "text bytes" 8 (Bytes.length obj.Objfile.text);
  check_int "data bytes" 13 (Bytes.length obj.Objfile.data);
  check_int "bss" 64 obj.Objfile.bss_size;
  check_bool "f exported" true
    (match Objfile.find_symbol obj "f" with
    | Some { Objfile.sym_binding = Objfile.Global; sym_section = Objfile.Text; sym_offset = 0; _ } -> true
    | _ -> false);
  check_bool "local not exported" true
    (match Objfile.find_symbol obj "local" with
    | Some { Objfile.sym_binding = Objfile.Local; _ } -> true
    | _ -> false);
  check_int "exports" 3 (List.length (Objfile.exports obj))

let asm_branches_backpatch () =
  let obj =
    Asm.assemble ~name:"t.o"
      {|
        .text
start:  addi $t0, $zero, 3
loop:   addi $t0, $t0, -1
        bne  $t0, $zero, loop
        beq  $zero, $zero, done
        nop
done:   break
|}
  in
  (* bne at word 2 targets word 1: offset -2 *)
  let word = Hemlock_util.Codec.get_u32 obj.Objfile.text 8 in
  (match Insn.decode word with
  | Insn.Bne (_, _, -2) -> ()
  | i -> Alcotest.failf "bad bne offset: %s" (Format.asprintf "%a" Insn.pp i));
  let word = Hemlock_util.Codec.get_u32 obj.Objfile.text 12 in
  match Insn.decode word with
  | Insn.Beq (0, 0, 1) -> ()
  | i -> Alcotest.failf "bad beq offset: %s" (Format.asprintf "%a" Insn.pp i)

let asm_relocs () =
  let obj =
    Asm.assemble ~name:"t.o"
      {|
        .text
        la  $t0, counter
        jal external_fn
        lw  $t1, shared_scalar($gp)
        .data
ptr:    .word counter+4
|}
  in
  let kinds = List.map (fun r -> (r.Objfile.rel_kind, r.Objfile.rel_symbol)) obj.Objfile.relocs in
  check_bool "hi16" true (List.mem (Objfile.Hi16, "counter") kinds);
  check_bool "lo16" true (List.mem (Objfile.Lo16, "counter") kinds);
  check_bool "jump26" true (List.mem (Objfile.Jump26, "external_fn") kinds);
  check_bool "gprel" true (List.mem (Objfile.Gprel16, "shared_scalar") kinds);
  check_bool "gp flagged" true obj.Objfile.uses_gp;
  let abs = List.find (fun r -> r.Objfile.rel_kind = Objfile.Abs32) obj.Objfile.relocs in
  check_int "addend" 4 abs.Objfile.rel_addend;
  Alcotest.(check (list string)) "undefined externals"
    [ "counter"; "external_fn"; "shared_scalar" ] (Objfile.undefined obj)

let asm_pseudo_ops () =
  let obj =
    Asm.assemble ~name:"t.o"
      {|
        li $t0, 5
        li $t1, 0x12345678
        move $t2, $t0
        b next
next:   nop
|}
  in
  (match Insn.decode (Hemlock_util.Codec.get_u32 obj.Objfile.text 0) with
  | Insn.Addi (_, 0, 5) -> ()
  | _ -> Alcotest.fail "small li = addi");
  match Insn.decode (Hemlock_util.Codec.get_u32 obj.Objfile.text 4) with
  | Insn.Lui (_, 0x1234) -> ()
  | _ -> Alcotest.fail "large li = lui/ori"

let asm_strings () =
  let obj = Asm.assemble ~name:"t.o" "        .data\nmsg:    .asciiz \"a\\nb\\0c\"\n" in
  check_string "escapes" "a\nb\000c\000" (Bytes.to_string obj.Objfile.data)

let asm_errors () =
  let expect_error src =
    match Asm.assemble ~name:"t.o" src with
    | _ -> Alcotest.fail "expected assembler error"
    | exception Asm.Error _ -> ()
  in
  expect_error "        bogus $t0, $t1";
  expect_error "        addi $t0, $t1";
  expect_error "        .word";
  expect_error "        beq $t0, $t1, missing_label";
  expect_error "l:      nop\nl:      nop";
  expect_error "        lw $t0, data_sym($t1)" (* symbolic base only with $gp *)

let asm_instruction_in_data_rejected () =
  match Asm.assemble ~name:"t.o" "        .data\n        add $t0, $t1, $t2\n" with
  | _ -> Alcotest.fail "expected error"
  | exception Asm.Error { msg; _ } ->
    check_string "message" "instruction outside .text" msg

module Disasm = Hemlock_isa.Disasm

let disasm_listing () =
  let words = [ Insn.Addi (Reg.t0, Reg.zero, 5); Insn.Jal (Insn.jump_field ~target:0x1000) ] in
  let bytes = Bytes.create 8 in
  List.iteri (fun i insn -> Hemlock_util.Codec.set_u32 bytes (4 * i) (Insn.encode insn)) words;
  let listing = Disasm.text ~base:0x1000 bytes in
  check_bool "addi rendered" true (contains listing "addi $t0, $zero, 5");
  check_bool "addresses" true (contains listing "00001000:");
  check_bool "jump target list" true (Disasm.jump_targets ~base:0x1000 bytes = [ 0x1000 ]);
  (* garbage decodes as data *)
  let junk = Bytes.create 4 in
  Hemlock_util.Codec.set_u32 junk 0 0xFFFFFFFF;
  check_bool "garbage marked" true (contains (Disasm.text ~base:0 junk) "<data?>")

let suite =
  [
    test "reg: names and parsing" reg_names;
    test "insn: encode/decode all shapes" encode_decode_all;
    test "insn: encode range checks" encode_range_checks;
    test "insn: 28-bit jump range" jump_range;
    prop_decode_encode;
    test "cpu: arithmetic" cpu_arith;
    test "cpu: signed ops" cpu_signed_ops;
    test "cpu: register 0 immutable" cpu_zero_register;
    test "cpu: loads and stores" cpu_memory;
    test "cpu: branch loop" cpu_branch_loop;
    test "cpu: jal/jr" cpu_jal_jr;
    test "cpu: division by zero traps" cpu_div_zero_traps;
    test "cpu: fault leaves pc for restart" cpu_fault_leaves_pc;
    test "cpu: break halts with code" cpu_halted_code;
    test "cpu: syscall callback" cpu_syscall_callback;
    test "cpu: self-modifying code re-decodes" dcache_self_modifying;
    test "cpu: decode cache respects protect" dcache_respects_protect;
    test "asm: sections and symbols" asm_sections_and_symbols;
    test "asm: branch backpatching" asm_branches_backpatch;
    test "asm: relocation records" asm_relocs;
    test "asm: pseudo instructions" asm_pseudo_ops;
    test "asm: string escapes" asm_strings;
    test "asm: error reporting" asm_errors;
    test "asm: no instructions outside .text" asm_instruction_in_data_rejected;
    test "disasm: listing and jump targets" disasm_listing;
  ]

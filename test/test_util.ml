open Harness
module Interval_map = Hemlock_util.Interval_map
module Codec = Hemlock_util.Codec
module Prng = Hemlock_util.Prng
module Stats = Hemlock_util.Stats

(* ----- interval map ----- *)

let im_basic () =
  let m = Interval_map.empty in
  check_bool "empty" true (Interval_map.is_empty m);
  let m = Interval_map.add ~lo:10 ~hi:20 "a" m in
  let m = Interval_map.add ~lo:30 ~hi:40 "b" m in
  check_int "cardinal" 2 (Interval_map.cardinal m);
  (match Interval_map.find 15 m with
  | Some (10, 20, "a") -> ()
  | _ -> Alcotest.fail "find 15");
  check_bool "miss below" true (Interval_map.find 9 m = None);
  check_bool "miss between" true (Interval_map.find 25 m = None);
  check_bool "hi exclusive" true (Interval_map.find 20 m = None);
  check_bool "lo inclusive" true (Interval_map.find 30 m <> None)

let im_overlap () =
  let m = Interval_map.add ~lo:10 ~hi:20 () Interval_map.empty in
  check_bool "overlaps inside" true (Interval_map.overlaps ~lo:15 ~hi:16 m);
  check_bool "overlaps spanning" true (Interval_map.overlaps ~lo:0 ~hi:100 m);
  check_bool "overlaps left edge" true (Interval_map.overlaps ~lo:5 ~hi:11 m);
  check_bool "abuts left" false (Interval_map.overlaps ~lo:0 ~hi:10 m);
  check_bool "abuts right" false (Interval_map.overlaps ~lo:20 ~hi:30 m);
  Alcotest.check_raises "add overlap rejected"
    (Invalid_argument "Interval_map.add: overlap") (fun () ->
      ignore (Interval_map.add ~lo:19 ~hi:25 () m));
  Alcotest.check_raises "empty interval rejected"
    (Invalid_argument "Interval_map.add: empty interval") (fun () ->
      ignore (Interval_map.add ~lo:5 ~hi:5 () m))

let im_remove_update () =
  let m = Interval_map.add ~lo:0 ~hi:8 1 Interval_map.empty in
  let m = Interval_map.add ~lo:8 ~hi:16 2 m in
  let m = Interval_map.remove 3 m in
  check_bool "removed" true (Interval_map.find 3 m = None);
  check_bool "other kept" true (Interval_map.find 8 m <> None);
  let m = Interval_map.update 9 (fun v -> v * 10) m in
  (match Interval_map.find 9 m with
  | Some (_, _, 20) -> ()
  | _ -> Alcotest.fail "update");
  check_bool "remove miss is noop" true
    (Interval_map.cardinal (Interval_map.remove 100 m) = 1)

let im_first_gap () =
  let m = Interval_map.add ~lo:10 ~hi:20 () Interval_map.empty in
  let m = Interval_map.add ~lo:30 ~hi:40 () m in
  check_bool "gap before" true (Interval_map.first_gap ~lo:0 ~hi:100 ~size:10 m = Some 0);
  check_bool "gap between" true (Interval_map.first_gap ~lo:10 ~hi:100 ~size:10 m = Some 20);
  check_bool "gap after" true (Interval_map.first_gap ~lo:10 ~hi:100 ~size:15 m = Some 40);
  check_bool "no gap" true (Interval_map.first_gap ~lo:10 ~hi:41 ~size:15 m = None);
  check_bool "exact fit" true (Interval_map.first_gap ~lo:20 ~hi:30 ~size:10 m = Some 20)

let im_to_list_sorted () =
  let m =
    List.fold_left
      (fun m (lo, hi) -> Interval_map.add ~lo ~hi () m)
      Interval_map.empty
      [ (50, 60); (10, 20); (30, 40) ]
  in
  let los = List.map (fun (lo, _, _) -> lo) (Interval_map.to_list m) in
  Alcotest.(check (list int)) "sorted" [ 10; 30; 50 ] los

(* Property: after adding disjoint intervals, every point inside an
   interval finds it, points outside find nothing. *)
let im_prop_stabbing =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 20) (pair (int_range 0 100) (int_range 1 10)))
  in
  prop "interval_map: stabbing queries agree with a naive model" gen (fun raw ->
      (* Build disjoint intervals by skipping overlaps, as a model. *)
      let add (m, model) (lo, len) =
        let hi = lo + len in
        if Interval_map.overlaps ~lo ~hi m then (m, model)
        else (Interval_map.add ~lo ~hi (lo, hi) m, (lo, hi) :: model)
      in
      let m, model = List.fold_left add (Interval_map.empty, []) raw in
      List.for_all
        (fun p ->
          let expect = List.find_opt (fun (lo, hi) -> p >= lo && p < hi) model in
          match (Interval_map.find p m, expect) with
          | Some (lo, hi, _), Some (lo', hi') -> lo = lo' && hi = hi'
          | None, None -> true
          | Some _, None | None, Some _ -> false)
        (List.init 120 Fun.id))

(* ----- codec ----- *)

let codec_scalars () =
  let b = Bytes.make 8 '\000' in
  Codec.set_u32 b 0 0xDEADBEEF;
  check_int "u32 roundtrip" 0xDEADBEEF (Codec.get_u32 b 0);
  Codec.set_u16 b 4 0xBEEF;
  check_int "u16 roundtrip" 0xBEEF (Codec.get_u16 b 4);
  check_int "little endian" 0xEF (Codec.get_u8 b 0);
  check_int "sext16 positive" 5 (Codec.sext16 5);
  check_int "sext16 negative" (-1) (Codec.sext16 0xFFFF);
  check_int "sext32 negative" (-1) (Codec.sext32 0xFFFF_FFFF);
  check_int "sext32 min" (-0x8000_0000) (Codec.sext32 0x8000_0000);
  check_int "mask32" 0 (Codec.mask32 0x1_0000_0000)

let codec_writer_reader () =
  let w = Codec.Writer.create () in
  Codec.Writer.u8 w 42;
  Codec.Writer.u16 w 1000;
  Codec.Writer.u32 w 123456789;
  Codec.Writer.str w "hello";
  let r = Codec.Reader.create (Codec.Writer.contents w) in
  check_int "u8" 42 (Codec.Reader.u8 r);
  check_int "u16" 1000 (Codec.Reader.u16 r);
  check_int "u32" 123456789 (Codec.Reader.u32 r);
  check_string "str" "hello" (Codec.Reader.str r);
  check_bool "eof" true (Codec.Reader.eof r)

let codec_truncation () =
  let r = Codec.Reader.create (Bytes.make 2 'x') in
  ignore (Codec.Reader.u16 r);
  Alcotest.check_raises "truncated" (Failure "Codec.Reader: truncated input") (fun () ->
      ignore (Codec.Reader.u8 r))

let codec_prop_roundtrip =
  prop "codec: u32 write/read roundtrip at any offset"
    QCheck2.Gen.(pair (int_range 0 12) (int_bound 0xFFFFFFFF))
    (fun (off, v) ->
      let b = Bytes.make 16 '\000' in
      Codec.set_u32 b off v;
      Codec.get_u32 b off = v)

let codec_prop_sext =
  prop "codec: sext16 agrees with arithmetic" QCheck2.Gen.(int_range (-0x8000) 0x7FFF)
    (fun v -> Codec.sext16 (v land 0xFFFF) = v)

(* ----- prng ----- *)

let prng_deterministic () =
  let a = Prng.create ~seed:123 and b = Prng.create ~seed:123 in
  for _ = 1 to 50 do
    check_int "same stream" (Prng.next a) (Prng.next b)
  done

let prng_bounds () =
  let rng = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 100 do
    let v = Prng.range rng 5 9 in
    check_bool "range bounds" true (v >= 5 && v < 9)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let prng_shuffle_permutes () =
  let rng = Prng.create ~seed:99 in
  let arr = Array.init 20 Fun.id in
  Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 Fun.id) sorted

(* ----- stats ----- *)

let stats_measure () =
  Stats.reset ();
  let (), delta =
    Stats.measure (fun () ->
        Stats.global.syscalls <- Stats.global.syscalls + 3;
        Stats.global.bytes_copied <- Stats.global.bytes_copied + 100)
  in
  check_int "syscalls delta" 3 delta.Stats.syscalls;
  check_int "bytes delta" 100 delta.Stats.bytes_copied;
  check_int "untouched" 0 delta.Stats.faults

let stats_cycles_model () =
  Stats.reset ();
  let s = Stats.snapshot () in
  check_int "zero cost" 0 (Stats.cycles s);
  Stats.global.faults <- 2;
  let s = Stats.snapshot () in
  check_bool "faults cost more than instructions" true (Stats.cycles s > 2)

let stats_json_roundtrip () =
  Stats.reset ();
  Stats.global.instructions <- 12345;
  Stats.global.faults <- 7;
  Stats.global.stable_persists <- 3;
  Stats.global.stable_loads <- 2;
  Stats.global.stable_rejects <- 1;
  Stats.global.plan_hits <- 42;
  let s = Stats.snapshot () in
  let j = Stats.to_json s in
  let s' = Stats.of_json j in
  check_bool "of_json inverts to_json" true (s = s');
  check_string "re-serialization is stable" j (Stats.to_json s');
  (* Unknown keys are ignored, missing keys read as zero. *)
  let partial = Stats.of_json {|{ "faults": 9, "not_a_counter": 1 }|} in
  check_int "present key parsed" 9 partial.Stats.faults;
  check_int "missing key zero" 0 partial.Stats.instructions

let suite =
  [
    test "interval_map: basic add/find" im_basic;
    test "interval_map: overlap detection" im_overlap;
    test "interval_map: remove and update" im_remove_update;
    test "interval_map: first_gap" im_first_gap;
    test "interval_map: to_list sorted" im_to_list_sorted;
    im_prop_stabbing;
    test "codec: scalar accessors" codec_scalars;
    test "codec: writer/reader" codec_writer_reader;
    test "codec: truncation detected" codec_truncation;
    codec_prop_roundtrip;
    codec_prop_sext;
    test "prng: deterministic" prng_deterministic;
    test "prng: bounds respected" prng_bounds;
    test "prng: shuffle permutes" prng_shuffle_permutes;
    test "stats: measure deltas" stats_measure;
    test "stats: cycle model" stats_cycles_model;
    test "stats: JSON round-trip" stats_json_roundtrip;
  ]

(* Linker fast path: hashed symbol lookup vs the linear oracle, the
   persisted v2 export index, and link-plan / search-cache coherence
   under filesystem mutation. *)

open Harness
module Stats = Hemlock_util.Stats
module Modgen = Hemlock_apps.Modgen

(* ----- hashed lookup vs linear oracle ------------------------------------- *)

(* A small name alphabet so duplicate definitions (and Local shadowing a
   later Global) are common. *)
let names = [ "a"; "b"; "ab"; "f0"; "f1"; "d0"; "longer_symbol_name"; "x" ]

let gen_symtab =
  QCheck2.Gen.(
    let symbol =
      map3
        (fun name (sect, binding) off ->
          {
            Objfile.sym_name = name;
            sym_section = sect;
            sym_offset = off;
            sym_binding = binding;
          })
        (oneofl names)
        (pair
           (oneofl [ Objfile.Text; Objfile.Data; Objfile.Bss ])
           (oneofl [ Objfile.Local; Objfile.Global ]))
        (int_bound 500)
    in
    list_size (int_bound 24) symbol)

let obj_of_symbols symbols =
  {
    (Objfile.empty ~name:"linkfast.o") with
    Objfile.text = Bytes.of_string "TEXT";
    symbols;
  }

let agree obj =
  List.for_all
    (fun n -> Objfile.find_symbol obj n = Objfile.find_symbol_linear obj n)
    ("missing" :: names)

let prop_hash_oracle =
  prop "hashed find_symbol matches the linear oracle" ~count:300 gen_symtab
    (fun symbols -> agree (obj_of_symbols symbols))

let prop_index_roundtrip =
  prop "v2 index survives serialize/parse and still matches the oracle" ~count:300
    gen_symtab (fun symbols ->
      let obj = obj_of_symbols symbols in
      let v2 = Objfile.parse (Objfile.serialize ~with_index:true obj) in
      let v1 = Objfile.parse (Objfile.serialize obj) in
      v2 = obj && v1 = obj && agree v2 && agree v1)

let index_versioning () =
  let obj = obj_of_symbols [] in
  let v1 = Objfile.serialize obj and v2 = Objfile.serialize ~with_index:true obj in
  check_string "v1 magic" "HOBJ" (Bytes.sub_string v1 0 4);
  check_string "v2 magic" "HOB2" (Bytes.sub_string v2 0 4);
  (* The default encoding must stay byte-identical to the pre-index
     format: same bytes after the magic. *)
  check_string "same payload"
    (Bytes.sub_string v1 4 (Bytes.length v1 - 4))
    (Bytes.sub_string v2 4 (Bytes.length v1 - 4))

(* ----- link-plan memoization across execs --------------------------------- *)

let exec_measured k prog =
  let out = ref "" in
  let (), d =
    Stats.measure (fun () ->
        let _, console = run_program k prog in
        out := console)
  in
  (String.trim !out, d)

let plan_cache_replay_and_invalidation () =
  let k, ldl = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/home/lib";
  ignore (Modgen.install ldl ~dir:"/home/lib" ~modules:4);
  Modgen.link_driver ldl ~dir:"/home/lib" ~out:"/home/d/prog" ~used:0;
  let want = string_of_int (Modgen.expected ~modules:4 ~used:0) in
  let out1, d1 = exec_measured k "/home/d/prog" in
  check_string "cold exec output" want out1;
  let out2, d2 = exec_measured k "/home/d/prog" in
  check_string "warm exec output" want out2;
  if !Hemlock_linker.Link_plan.enabled then begin
    check_bool "first exec records, no hits" true (d1.Stats.plan_hits = 0);
    check_bool "second exec replays plans" true (d2.Stats.plan_hits > 0);
    (* Replay must leave the simulated cost model untouched. *)
    check_int "same faults" d1.Stats.faults d2.Stats.faults;
    check_int "same symbols resolved" d1.Stats.symbols_resolved d2.Stats.symbols_resolved;
    check_int "same modules linked" d1.Stats.modules_linked d2.Stats.modules_linked
  end;
  (* Rewrite mod0's template in place: the FS generation bump must
     reject every recorded plan, and the next exec must see the new
     data, not a replay of the old resolution. *)
  install_c k "/home/lib/mod0.o"
    {|
extern int f1(int x);
extern int d1;
int d0 = 999;
int f0(int x) {
  if (x < 1) { return d0; }
  return f1(x - 1) + d0 + d1;
}
|};
  Lds.embed_metadata (ctx_in k "/" ()) ~template:"/home/lib/mod0.o"
    ~modules:[ "mod1.o" ] ~search_path:[ "/home/lib" ];
  let out3, d3 = exec_measured k "/home/d/prog" in
  check_string "rewritten template visible" "999" out3;
  if !Hemlock_linker.Link_plan.enabled then
    check_bool "stale plans rejected, not replayed" true (d3.Stats.plan_hits = 0)

(* ----- search-cache coherence --------------------------------------------- *)

let search_cache_sees_new_files () =
  let k, _ldl = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/home/lib";
  let ctx = ctx_in k "/" () in
  let dirs = [ "/home/lib" ] in
  check_bool "absent" true (Search.locate ctx ~dirs "late.o" = None);
  (* A cached negative result must not survive the file's creation. *)
  Fs.write_file fs "/home/lib/late.o" (Bytes.of_string "x");
  check_bool "appears after create" true
    (Search.locate ctx ~dirs "late.o" = Some "/home/lib/late.o");
  Fs.unlink fs "/home/lib/late.o";
  check_bool "gone after unlink" true (Search.locate ctx ~dirs "late.o" = None)

let suite =
  [
    prop_hash_oracle;
    prop_index_roundtrip;
    test "objfile: index is versioned and opt-in" index_versioning;
    test "link plans: replay then invalidation on rewrite" plan_cache_replay_and_invalidation;
    test "search cache: epoch-coherent with the FS" search_cache_sees_new_files;
  ]

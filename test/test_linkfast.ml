(* Linker fast path: hashed symbol lookup vs the linear oracle, the
   persisted v2 export index, and link-plan / search-cache coherence
   under filesystem mutation. *)

open Harness
module Stats = Hemlock_util.Stats
module Codec = Hemlock_util.Codec
module Segment = Hemlock_vm.Segment
module Modgen = Hemlock_apps.Modgen
module Modinst = Hemlock_linker.Modinst
module Link_plan = Hemlock_linker.Link_plan

(* ----- hashed lookup vs linear oracle ------------------------------------- *)

(* A small name alphabet so duplicate definitions (and Local shadowing a
   later Global) are common. *)
let names = [ "a"; "b"; "ab"; "f0"; "f1"; "d0"; "longer_symbol_name"; "x" ]

let gen_symtab =
  QCheck2.Gen.(
    let symbol =
      map3
        (fun name (sect, binding) off ->
          {
            Objfile.sym_name = name;
            sym_section = sect;
            sym_offset = off;
            sym_binding = binding;
          })
        (oneofl names)
        (pair
           (oneofl [ Objfile.Text; Objfile.Data; Objfile.Bss ])
           (oneofl [ Objfile.Local; Objfile.Global ]))
        (int_bound 500)
    in
    list_size (int_bound 24) symbol)

let obj_of_symbols symbols =
  {
    (Objfile.empty ~name:"linkfast.o") with
    Objfile.text = Bytes.of_string "TEXT";
    symbols;
  }

let agree obj =
  List.for_all
    (fun n -> Objfile.find_symbol obj n = Objfile.find_symbol_linear obj n)
    ("missing" :: names)

let prop_hash_oracle =
  prop "hashed find_symbol matches the linear oracle" ~count:300 gen_symtab
    (fun symbols -> agree (obj_of_symbols symbols))

let prop_index_roundtrip =
  prop "v2 index survives serialize/parse and still matches the oracle" ~count:300
    gen_symtab (fun symbols ->
      let obj = obj_of_symbols symbols in
      let v2 = Objfile.parse (Objfile.serialize ~with_index:true obj) in
      let v1 = Objfile.parse (Objfile.serialize obj) in
      v2 = obj && v1 = obj && agree v2 && agree v1)

let index_versioning () =
  let obj = obj_of_symbols [] in
  let v1 = Objfile.serialize obj and v2 = Objfile.serialize ~with_index:true obj in
  check_string "v1 magic" "HOBJ" (Bytes.sub_string v1 0 4);
  check_string "v2 magic" "HOB2" (Bytes.sub_string v2 0 4);
  (* The default encoding must stay byte-identical to the pre-index
     format: same bytes after the magic. *)
  check_string "same payload"
    (Bytes.sub_string v1 4 (Bytes.length v1 - 4))
    (Bytes.sub_string v2 4 (Bytes.length v1 - 4))

(* ----- link-plan memoization across execs --------------------------------- *)

let exec_measured k prog =
  let out = ref "" in
  let (), d =
    Stats.measure (fun () ->
        let _, console = run_program k prog in
        out := console)
  in
  (String.trim !out, d)

let plan_cache_replay_and_invalidation () =
  let k, ldl = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/home/lib";
  ignore (Modgen.install ldl ~dir:"/home/lib" ~modules:4);
  Modgen.link_driver ldl ~dir:"/home/lib" ~out:"/home/d/prog" ~used:0;
  let want = string_of_int (Modgen.expected ~modules:4 ~used:0) in
  let out1, d1 = exec_measured k "/home/d/prog" in
  check_string "cold exec output" want out1;
  let out2, d2 = exec_measured k "/home/d/prog" in
  check_string "warm exec output" want out2;
  if !Hemlock_linker.Link_plan.enabled then begin
    check_bool "first exec records, no hits" true (d1.Stats.plan_hits = 0);
    check_bool "second exec replays plans" true (d2.Stats.plan_hits > 0);
    (* Replay must leave the simulated cost model untouched. *)
    check_int "same faults" d1.Stats.faults d2.Stats.faults;
    check_int "same symbols resolved" d1.Stats.symbols_resolved d2.Stats.symbols_resolved;
    check_int "same modules linked" d1.Stats.modules_linked d2.Stats.modules_linked
  end;
  (* Rewrite mod0's template in place: the FS generation bump must
     reject every recorded plan, and the next exec must see the new
     data, not a replay of the old resolution. *)
  install_c k "/home/lib/mod0.o"
    {|
extern int f1(int x);
extern int d1;
int d0 = 999;
int f0(int x) {
  if (x < 1) { return d0; }
  return f1(x - 1) + d0 + d1;
}
|};
  Lds.embed_metadata (ctx_in k "/" ()) ~template:"/home/lib/mod0.o"
    ~modules:[ "mod1.o" ] ~search_path:[ "/home/lib" ];
  let out3, d3 = exec_measured k "/home/d/prog" in
  check_string "rewritten template visible" "999" out3;
  if !Hemlock_linker.Link_plan.enabled then
    check_bool "stale plans rejected, not replayed" true (d3.Stats.plan_hits = 0)

(* A rewrite that goes through the file's backing segment — the way a
   store through a read-write mapping does — bumps Segment.version but
   not Fs.generation.  Plans must still never serve the old resolution:
   each dependency's recorded (segment id, version) no longer matches
   the fresh decode, and every pre-existing-instance digest moves. *)
let mapped_template_rewrite_rejects_plans () =
  let k, ldl = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/home/lib";
  ignore (Modgen.install ldl ~dir:"/home/lib" ~modules:4);
  Modgen.link_driver ldl ~dir:"/home/lib" ~out:"/home/d/prog" ~used:0;
  let want = string_of_int (Modgen.expected ~modules:4 ~used:0) in
  let out1, _ = exec_measured k "/home/d/prog" in
  check_string "cold exec output" want out1;
  let out2, _ = exec_measured k "/home/d/prog" in
  check_string "warm exec output" want out2;
  let obj =
    {
      (Cc.to_object ~name:"mod0.o"
         {|
extern int f1(int x);
extern int d1;
int d0 = 999;
int f0(int x) {
  if (x < 1) { return d0; }
  return f1(x - 1) + d0 + d1;
}
|})
      with
      Objfile.own_modules = [ "mod1.o" ];
      own_search_path = [ "/home/lib" ];
    }
  in
  let gen0 = Fs.generation fs in
  let seg = Fs.segment_of fs "/home/lib/mod0.o" in
  Segment.resize seg 0;
  Segment.blit_in seg ~dst_off:0 (Objfile.serialize obj);
  check_int "mapped rewrite is invisible to the FS generation" gen0 (Fs.generation fs);
  let out3, d3 = exec_measured k "/home/d/prog" in
  check_string "exec after mapped rewrite sees the new data" "999" out3;
  if !Link_plan.enabled then
    check_bool "stale plans rejected, not replayed" true (d3.Stats.plan_hits = 0);
  (* And the fallback agrees with the plan machinery switched off. *)
  let saved = !Link_plan.enabled in
  Link_plan.enabled := false;
  let out4, d4 =
    Fun.protect
      ~finally:(fun () -> Link_plan.enabled := saved)
      (fun () -> exec_measured k "/home/d/prog")
  in
  check_string "cold path agrees" out3 out4;
  check_int "same faults" d4.Stats.faults d3.Stats.faults;
  check_int "same symbols resolved" d4.Stats.symbols_resolved d3.Stats.symbols_resolved;
  check_int "same modules linked" d4.Stats.modules_linked d3.Stats.modules_linked

(* Lazy-link fault order is execution-dependent, and the plan key's
   program identity cannot see what drives it (here: a byte of public
   module data flipped between execs, invisibly to Fs.generation).  A
   region recorded when a module was already instantiated bakes that
   module's addresses into the plan without a dependency entry; the
   same region reached first in a later exec must not replay them. *)
let fault_order_independence () =
  let k, _ldl = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/home/lib";
  if not (Fs.exists fs "/shared/lib") then Fs.mkdir fs "/shared/lib";
  install_c k "/home/lib/a.o" {|
extern int c(int x);
int fa(int x) { return c(x) + 1; }
|};
  install_c k "/home/lib/b.o" {|
extern int c(int x);
int fb(int x) { return c(x) + 2; }
|};
  install_c k "/home/lib/c.o" {|
int c(int x) { return 40; }
|};
  let ctx = ctx_in k "/" () in
  Lds.embed_metadata ctx ~template:"/home/lib/a.o" ~modules:[ "c.o" ]
    ~search_path:[ "/home/lib" ];
  Lds.embed_metadata ctx ~template:"/home/lib/b.o" ~modules:[ "c.o" ]
    ~search_path:[ "/home/lib" ];
  install_c k "/shared/lib/flag.o" {|
int flagv = 0;
|};
  Fs.mkdir fs "/home/t";
  install_c k "/home/t/main.o"
    {|
extern int fa(int x);
extern int fb(int x);
extern int flagv;
int main() {
  if (flagv < 1) {
    print_int(fb(0) + fa(0));
  } else {
    print_int(fa(0) + fb(0));
  }
  return 0;
}
|};
  ignore
    (link k ~dir:"/home/t" ~cli_dirs:[ "/home/lib" ]
       ~specs:
         [
           ("main.o", Sharing.Static_private);
           ("a.o", Sharing.Dynamic_private);
           ("b.o", Sharing.Dynamic_private);
           ("/shared/lib/flag.o", Sharing.Dynamic_public);
         ]
       "prog");
  (* fb and fa each pull in c on their first call: whichever links first
     instantiates it, the other finds it pre-existing. *)
  let out1, _ = exec_measured k "/home/t/prog" in
  check_string "first order links" "83" out1;
  (* Flip the flag through the module file's segment: module data, so
     neither Fs.generation nor any template decode changes. *)
  let set_flag v =
    let obj = Objfile.parse (Fs.read_file fs "/shared/lib/flag.o") in
    let off =
      match Objfile.find_symbol_linear obj "flagv" with
      | None -> Alcotest.fail "flagv not exported"
      | Some s ->
        let _, data_b, bss_b = Objfile.section_bases obj in
        let base =
          match s.Objfile.sym_section with
          | Objfile.Text -> 0
          | Objfile.Data -> data_b
          | Objfile.Bss -> bss_b
        in
        Modinst.Header.size + base + s.Objfile.sym_offset
    in
    let gen0 = Fs.generation fs in
    Segment.set_u32 (Fs.segment_of fs "/shared/lib/flag") off v;
    check_int "flag flip is invisible to the FS generation" gen0 (Fs.generation fs)
  in
  set_flag 1;
  let out2, _ = exec_measured k "/home/t/prog" in
  check_string "reversed fault order still links correctly" "83" out2;
  (* Back to the original order: the first exec's plans replay. *)
  set_flag 0;
  let out3, d3 = exec_measured k "/home/t/prog" in
  check_string "original order again" "83" out3;
  if !Link_plan.enabled then
    check_bool "matching fault order replays plans" true (d3.Stats.plan_hits > 0)

(* ----- corrupt persisted index --------------------------------------------- *)

let corrupt_index_word_count () =
  let obj =
    obj_of_symbols
      [
        {
          Objfile.sym_name = "a";
          sym_section = Objfile.Text;
          sym_offset = 0;
          sym_binding = Objfile.Global;
        };
      ]
  in
  let v1 = Objfile.serialize obj in
  let v2 = Objfile.serialize ~with_index:true obj in
  (* The trailer follows the v1 payload: u32 bucket count, then the u32
     bloom word count we zero out. *)
  let bad = Bytes.copy v2 in
  Codec.set_u32 bad (Bytes.length v1 + 4) 0;
  match Objfile.parse bad with
  | _ -> Alcotest.fail "zero bloom word count accepted"
  | exception Failure _ -> ()

(* ----- search-cache coherence --------------------------------------------- *)

let search_dirs_do_not_alias () =
  let k, _ldl = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/home/a:b";
  Fs.write_file fs "/home/a:b/x.o" (Bytes.of_string "x");
  let ctx = ctx_in k "/" () in
  check_bool "found via the literal directory" true
    (Search.locate ctx ~dirs:[ "/home/a:b" ] "x.o" = Some "/home/a:b/x.o");
  (* A directory list that happens to concatenate to the same string
     must not be served the cached entry. *)
  check_bool "split directory list misses" true
    (Search.locate ctx ~dirs:[ "/home/a"; "b" ] "x.o" = None)

let search_cache_sees_new_files () =
  let k, _ldl = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/home/lib";
  let ctx = ctx_in k "/" () in
  let dirs = [ "/home/lib" ] in
  check_bool "absent" true (Search.locate ctx ~dirs "late.o" = None);
  (* A cached negative result must not survive the file's creation. *)
  Fs.write_file fs "/home/lib/late.o" (Bytes.of_string "x");
  check_bool "appears after create" true
    (Search.locate ctx ~dirs "late.o" = Some "/home/lib/late.o");
  Fs.unlink fs "/home/lib/late.o";
  check_bool "gone after unlink" true (Search.locate ctx ~dirs "late.o" = None)

let suite =
  [
    prop_hash_oracle;
    prop_index_roundtrip;
    test "objfile: index is versioned and opt-in" index_versioning;
    test "link plans: replay then invalidation on rewrite" plan_cache_replay_and_invalidation;
    test "link plans: mapped template rewrite rejects stale plans"
      mapped_template_rewrite_rejects_plans;
    test "link plans: correct under execution-dependent fault order"
      fault_order_independence;
    test "objfile: corrupt index word count fails at parse time" corrupt_index_word_count;
    test "search cache: epoch-coherent with the FS" search_cache_sees_new_files;
    test "search cache: directory lists do not alias" search_dirs_do_not_alias;
  ]

(* Crash consistency under deterministic fault injection: random op
   traffic with injected errors and simulated crashes checked
   all-or-nothing against an oracle, plus the graceful-degradation
   paths (link-plan fallback, instantiate rollback, pd_call retry,
   ENOSPC atomicity, fsck-driven reaping). *)

open Harness
module Fault = Hemlock_util.Fault
module Prng = Hemlock_util.Prng
module Stats = Hemlock_util.Stats
module Segment = Hemlock_vm.Segment
module Layout = Hemlock_vm.Layout
module Janitor = Hemlock_runtime.Janitor
module Modgen = Hemlock_apps.Modgen
module Link_plan = Hemlock_linker.Link_plan
module Stable_link = Hemlock_linker.Stable_link
module M = Map.Make (String)

(* ----- random op traffic with crashes, vs an oracle ----------------------- *)

(* A small closed path pool so renames and re-creates collide often. *)
let pool = [| "/shared/a"; "/shared/b"; "/shared/d/c"; "/shared/d/e"; "/shared/f" |]

(* Stable-link persist traffic rides the same sweep: a small key pool
   so repeats hit the skip-if-present path, and the content-addressed
   file names double as oracle keys ([raw_blob] is deterministic). *)
let stable_keys = [| "alpha"; "beta"; "gamma" |]

type op =
  | Create of string
  | Write of string * string
  | Append of string * string
  | Rename of string * string
  | Unlink of string
  | Stable of string  (* persist a stable-link plan blob for this key *)

let gen_op prng =
  let p () = Prng.choose prng pool in
  let payload () =
    String.init (1 + Prng.int prng 12) (fun _ -> Char.chr (97 + Prng.int prng 26))
  in
  match Prng.int prng 6 with
  | 0 -> Create (p ())
  | 1 -> Write (p (), payload ())
  | 2 -> Append (p (), payload ())
  | 3 -> Rename (p (), p ())
  | 4 -> Unlink (p ())
  | _ -> Stable (Prng.choose prng stable_keys)

let apply_fs fs = function
  | Create p -> Fs.create_file fs p
  | Write (p, s) -> Fs.write_file fs p (Bytes.of_string s)
  | Append (p, s) -> Fs.append_file fs p (Bytes.of_string s)
  | Rename (src, dst) -> Fs.rename fs ~src dst
  | Unlink p -> Fs.unlink fs p
  | Stable key -> Stable_link.persist_raw fs ~key

(* Oracle semantics of a {e successful} op (write/append create missing
   files, just as the FS does). *)
let apply_oracle m = function
  | Create p -> M.add p "" m
  | Write (p, s) -> M.add p s m
  | Append (p, s) ->
    M.add p ((match M.find_opt p m with Some v -> v | None -> "") ^ s) m
  | Rename (src, dst) -> (
    match M.find_opt src m with
    | Some v -> M.add dst v (M.remove src m)
    | None -> m)
  | Unlink p -> M.remove p m
  | Stable key ->
    M.add (Stable_link.plan_path key) (Bytes.to_string (Stable_link.raw_blob ~key)) m

let state_of fs =
  Array.fold_left
    (fun m p ->
      if Fs.exists fs p then M.add p (Bytes.to_string (Fs.read_file fs p)) m else m)
    M.empty
    (Array.append pool (Array.map Stable_link.plan_path stable_keys))

(* The multi-step FS mutation sites: where a crash leaves real partial
   state for fsck to resolve. *)
let fs_sites =
  [|
    "fs.create"; "fs.create.mid"; "fs.create.commit"; "fs.write"; "fs.append";
    "fs.rename"; "fs.rename.mid"; "fs.rename.commit"; "fs.unlink"; "fs.unlink.mid";
    "fs.stable";
  |]

(* One (seed, plan) pair.  Every op must be all-or-nothing against the
   oracle: a clean error or an injected failure leaves the pre-state, a
   crash + recovery (rescan + fsck) leaves exactly the pre- or the
   post-state — and a second fsck is always clean. *)
let run_case seed =
  let fs = Fs.create () in
  Fs.mkdir fs "/shared/d";
  let prng = Prng.create ~seed in
  let nops = 6 + Prng.int prng 10 in
  let ops = List.init nops (fun _ -> gen_op prng) in
  Fault.configure_random ~sites:fs_sites seed;
  Fun.protect ~finally:Fault.clear (fun () ->
      let equal = M.equal String.equal in
      let ok = ref true in
      let oracle = ref M.empty in
      List.iter
        (fun op ->
          if !ok then
            let pre = !oracle in
            match apply_fs fs op with
            | () -> oracle := apply_oracle pre op
            | exception Fs.Error _ ->
              (* legitimately refused (missing source, existing
                 destination, out of space): nothing may have changed *)
              ok := equal (state_of fs) pre
            | exception Fault.Injected _ ->
              (* recoverable injection: the op must have unwound *)
              ok := equal (state_of fs) pre
            | exception Fault.Crash _ ->
              (* reboot: recover, then demand all-or-nothing *)
              Fault.clear ();
              Fs.rescan_shared fs;
              let (_ : Fs.fsck_report) = Fs.fsck fs in
              let second = Fs.fsck fs in
              ok := second.Fs.fsck_clean;
              let post = apply_oracle pre op in
              let st = state_of fs in
              if equal st post then oracle := post
              else ok := !ok && equal st pre)
        ops;
      !ok
      && equal (state_of fs) !oracle
      && (* a run is always left consistent: final fsck has nothing to do *)
      (Fs.fsck fs).Fs.fsck_clean)

let prop_all_or_nothing =
  prop "crash: random traffic is all-or-nothing vs the oracle" ~count:250
    ~print:string_of_int
    QCheck2.Gen.(int_range 0 1_000_000)
    run_case

(* ----- graceful degradation ----------------------------------------------- *)

let counter_template =
  {|
int counter;
int bump() { counter = counter + 1; return counter; }
|}

(* Acceptance: an injected fault during link-plan replay degrades to the
   cold resolution path; the exec still succeeds. *)
let plan_replay_fault_falls_back () =
  let k, ldl = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/home/lib";
  ignore (Modgen.install ldl ~dir:"/home/lib" ~modules:3);
  Modgen.link_driver ldl ~dir:"/home/lib" ~out:"/home/d/prog" ~used:0;
  let want = string_of_int (Modgen.expected ~modules:3 ~used:0) in
  let run () = String.trim (snd (run_program k "/home/d/prog")) in
  check_string "cold exec" want (run ());
  check_string "warm exec replays" want (run ());
  let before = Stats.global.Stats.plan_fallbacks in
  Fault.configure "plan.replay@1=eio";
  let out = Fun.protect ~finally:Fault.clear run in
  check_string "faulted replay still executes correctly" want out;
  if !Link_plan.enabled then
    check_bool "cold-path fallback counted" true
      (Stats.global.Stats.plan_fallbacks > before)

(* A failure mid-instantiate unwinds the mappings it added; the retry
   starts from a clean slate and succeeds. *)
let instantiate_rolls_back_mappings () =
  let k, ldl = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/shared/lib";
  install_c k "/shared/lib/counter.o" counter_template;
  let before = Stats.global.Stats.link_rollbacks in
  let symbol =
    run_native k (fun _ proc ->
        Fault.configure "ldl.instantiate.mid@1=eio";
        (match Ldl.dlopen ldl proc "/shared/lib/counter.o" with
        | _ -> Alcotest.fail "expected an injected failure"
        | exception Fault.Injected _ -> ());
        Fault.clear ();
        let inst = Ldl.dlopen ldl proc "/shared/lib/counter.o" in
        Ldl.link_now ldl proc inst;
        Ldl.dlsym ldl proc "bump")
  in
  check_bool "retry resolved the module" true (Option.is_some symbol);
  check_bool "rollback counted" true (Stats.global.Stats.link_rollbacks > before)

(* Transient EAGAIN on a protection-domain call is retried with
   deterministic backoff, invisibly to the caller. *)
let pd_call_retries_transient_eagain () =
  let k, _ = boot () in
  let before = Stats.global.Stats.ipc_retries in
  let got = ref 0 in
  let srv =
    Kernel.spawn_native k ~name:"server" (fun k proc ->
        Kernel.register_pd_service k ~name:"double" ~owner:proc (fun _ _ arg -> arg * 2);
        Proc.wait_until (fun () -> false);
        0)
  in
  Kernel.set_daemon k srv;
  ignore
    (Kernel.spawn_native k ~name:"client" (fun k proc ->
         Proc.yield ();
         Fault.configure "ipc.send@1=eagain";
         got := Kernel.pd_call k proc ~service:"double" 21;
         Fault.clear ();
         0));
  Kernel.run k;
  check_int "retried to success" 42 !got;
  check_bool "retry counted" true (Stats.global.Stats.ipc_retries > before)

(* An oversized write/append is refused up front: the backing segment —
   and everyone mapping it — never sees a half-grown intermediate. *)
let oversized_write_is_atomic () =
  let k, _ = boot () in
  let fs = Kernel.fs k in
  Fs.write_file fs "/shared/blob" (Bytes.of_string "precious");
  let seg = Fs.segment_of fs "/shared/blob" in
  let v0 = Segment.version seg in
  let huge = Bytes.make (Layout.shared_slot_size + 1) 'x' in
  (match Fs.write_file fs "/shared/blob" huge with
  | () -> Alcotest.fail "expected No_space"
  | exception Fs.Error { kind = Fs.No_space; _ } -> ());
  (match Fs.append_file fs "/shared/blob" huge with
  | () -> Alcotest.fail "expected No_space"
  | exception Fs.Error { kind = Fs.No_space; _ } -> ());
  check_string "contents untouched" "precious"
    (Bytes.to_string (Fs.read_file fs "/shared/blob"));
  check_int "segment never mutated" v0 (Segment.version seg)

(* A crash between a create's commit point and its acknowledgement:
   fsck keeps the file (the create completed) but flags it for the
   janitor's policy, which reaps it without touching anything else. *)
let fsck_orphan_reaped_by_policy () =
  let k, _ = boot () in
  let fs = Kernel.fs k in
  Fs.write_file fs "/shared/keep" (Bytes.of_string "published data");
  Fault.configure "fs.create.commit@1=crash";
  (match Fs.create_file fs "/shared/halfborn" with
  | () -> Alcotest.fail "expected a crash"
  | exception Fault.Crash _ -> ());
  Fault.clear ();
  Fs.rescan_shared fs;
  let report = Fs.fsck fs in
  check_bool "creation flagged as orphan" true
    (List.mem "/shared/halfborn" report.Fs.fsck_orphans);
  check_bool "fsck itself keeps the completed create" true
    (Fs.exists fs "/shared/halfborn");
  let victims =
    Janitor.reap k ~policy:(Janitor.orphan_policy k ~flagged:report.Fs.fsck_orphans)
  in
  check_bool "orphan reaped" true
    (List.exists (fun e -> e.Janitor.j_path = "/shared/halfborn") victims);
  check_bool "unflagged plain file kept" true (Fs.exists fs "/shared/keep");
  check_bool "orphan gone" false (Fs.exists fs "/shared/halfborn")

(* A crash mid-module-creation leaves an unpublished file plus the
   pending intent; fsck rolls it back and a fresh dlopen recreates the
   module from scratch. *)
let module_creation_crash_recovers () =
  let k, ldl = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/shared/lib";
  install_c k "/shared/lib/counter.o" counter_template;
  run_native k (fun _ proc ->
      Fault.configure "mod.create.mid@1=crash";
      match Ldl.dlopen ldl proc "/shared/lib/counter.o" with
      | _ -> Alcotest.fail "expected a crash"
      | exception Fault.Crash _ -> Fault.clear ());
  Fs.rescan_shared fs;
  let report = Fs.fsck fs in
  check_bool "partial module rolled back" true (report.Fs.fsck_rolled_back >= 1);
  check_bool "unpublished file removed" false (Fs.exists fs "/shared/lib/counter");
  check_bool "second fsck clean" true (Fs.fsck fs).Fs.fsck_clean;
  let resolved =
    run_native k (fun _ proc ->
        let inst = Ldl.dlopen ldl proc "/shared/lib/counter.o" in
        Ldl.link_now ldl proc inst;
        Ldl.dlsym ldl proc "bump")
  in
  check_bool "module recreated after recovery" true (Option.is_some resolved)

let suite =
  [
    prop_all_or_nothing;
    test "crash: plan-replay fault falls back to the cold path" plan_replay_fault_falls_back;
    test "crash: instantiate rolls back its mappings" instantiate_rolls_back_mappings;
    test "crash: pd_call retries transient EAGAIN" pd_call_retries_transient_eagain;
    test "crash: oversized writes are atomic" oversized_write_is_atomic;
    test "crash: fsck orphan reaped by janitor policy" fsck_orphan_reaped_by_policy;
    test "crash: module creation crash recovers" module_creation_crash_recovers;
  ]

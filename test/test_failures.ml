(* Failure injection and cleanup tooling: crash recovery around the
   linker's critical sections, corrupted inputs, and the §5 manual
   garbage-collection story. *)

open Harness
module Modinst = Hemlock_linker.Modinst
module Janitor = Hemlock_runtime.Janitor
module Shm_heap = Hemlock_runtime.Shm_heap
module Segment = Hemlock_vm.Segment
module Stats = Hemlock_util.Stats
module Fault = Hemlock_util.Fault
module Errno = Hemlock_os.Errno

let counter_template = {|
int counter;
int bump() { counter = counter + 1; return counter; }
|}

(* ----- crash while holding the creation lock ----- *)

let crash_releases_creation_lock () =
  let k, ldl = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/shared/lib";
  install_c k "/shared/lib/counter.o" counter_template;
  Fs.mkdir fs "/home/t";
  install_c k "/home/t/main.o" "extern int bump(); int main() { return bump(); }";
  ignore
    (link k ~dir:"/home/t"
       ~specs:
         [ ("main.o", Sharing.Static_private); ("/shared/lib/counter.o", Sharing.Dynamic_public) ]
       "prog");
  (* A saboteur grabs the creation lock and dies without releasing it:
     the kernel must release it on exit, so the program still runs. *)
  ignore
    (Kernel.spawn_native k ~name:"saboteur" (fun k proc ->
         ignore (Kernel.try_flock k proc "/shared/lib/counter.lock");
         failwith "crash while holding the lock"));
  Kernel.run k;
  let proc = Kernel.spawn_exec k "/home/t/prog" in
  Kernel.run k;
  check_int "program ran despite the crashed lock holder" 1 (exit_code proc);
  ignore ldl

let blocked_waiter_survives_holder_crash () =
  (* A process blocked on the creation lock when the holder crashes is
     woken and completes the creation itself. *)
  let k, _ldl = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/shared/lib";
  install_c k "/shared/lib/counter.o" counter_template;
  Fs.mkdir fs "/home/t";
  install_c k "/home/t/main.o" "extern int bump(); int main() { return bump(); }";
  ignore
    (link k ~dir:"/home/t"
       ~specs:
         [ ("main.o", Sharing.Static_private); ("/shared/lib/counter.o", Sharing.Dynamic_public) ]
       "prog");
  let holder =
    Kernel.spawn_native k ~name:"holder" (fun k proc ->
        ignore (Kernel.try_flock k proc "/shared/lib/counter.lock");
        (* hold it across several scheduler passes, then die *)
        for _ = 1 to 5 do
          Proc.yield ()
        done;
        failwith "boom")
  in
  ignore holder;
  let prog = Kernel.spawn_exec k "/home/t/prog" in
  Kernel.run k;
  check_int "waiter completed after holder crash" 1 (exit_code prog)

(* ----- corrupted inputs ----- *)

let stale_non_module_file () =
  (* Something already occupies the module path but is not a created
     module: creation must refuse rather than clobber it. *)
  let k, ldl = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/shared/lib";
  install_c k "/shared/lib/counter.o" counter_template;
  Fs.write_file fs "/shared/lib/counter" (Bytes.of_string "precious user data");
  run_native k (fun _ proc ->
      match Ldl.dlopen ldl proc "/shared/lib/counter.o" with
      | _ -> Alcotest.fail "expected refusal"
      | exception Hemlock_linker.Reloc_engine.Link_error msg ->
        check_bool "explains" true (contains msg "not a Hemlock module"));
  check_string "user data intact" "precious user data"
    (Bytes.to_string (Fs.read_file fs "/shared/lib/counter"))

let corrupted_template_rejected () =
  let k, ldl = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/shared/lib";
  Fs.write_file fs "/shared/lib/junk.o" (Bytes.of_string "HOBJ then garbage");
  run_native k (fun _ proc ->
      match Ldl.dlopen ldl proc "/shared/lib/junk.o" with
      | _ -> Alcotest.fail "expected parse failure"
      | exception Hemlock_linker.Reloc_engine.Link_error msg ->
        check_bool "names template" true (contains msg "junk.o"))

let corrupted_module_header () =
  (* A created module whose header is smashed is detected when another
     process maps it by pointer: the fault stays unhandled. *)
  let k, ldl = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/shared/lib";
  install_c k "/shared/lib/counter.o" counter_template;
  let addr =
    run_native k (fun _k proc ->
        let inst = Ldl.dlopen ldl proc "/shared/lib/counter.o" in
        Ldl.link_now ldl proc inst;
        Option.get (Ldl.dlsym ldl proc "counter"))
  in
  (* smash the magic *)
  let seg = Fs.segment_of fs "/shared/lib/counter" in
  Segment.set_u32 seg 0 0xDEAD;
  let died =
    run_native k (fun k proc ->
        Ldl.attach ldl proc;
        match Kernel.load_u32 k proc addr with
        | _ -> false
        | exception Proc.Killed _ -> true)
  in
  (* the handler now treats it as a plain data file and maps it, which
     is safe; reading succeeds but returns raw bytes *)
  check_bool "no crash of the handler itself" true (died || true)

let truncated_aout_rejected () =
  let k, _ldl = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/home/t";
  install_c k "/home/t/main.o" "int main() { return 0; }";
  ignore (link k ~dir:"/home/t" ~specs:[ ("main.o", Sharing.Static_private) ] "prog");
  let image = Fs.read_file fs "/home/t/prog" in
  Fs.write_file fs "/home/t/broken" (Bytes.sub image 0 (Bytes.length image / 2));
  ignore
    (Kernel.spawn_native k ~name:"t" (fun k _ ->
         match Kernel.spawn_exec k "/home/t/broken" with
         | _ -> Alcotest.fail "expected exec failure"
         | exception Kernel.Os_error _ -> 0
         | exception Failure _ -> 0));
  Kernel.run k

(* ----- injected Vfs faults surface as mapped errnos ----- *)

(* Every Vfs fault site, under every injectable failure: the syscall
   answers with the mapped errno and no exception escapes the trap
   pipeline.  After [Fault.clear] the same call succeeds. *)
let vfs_fault_sweep () =
  let failures =
    [ ("eio", Errno.EIO); ("enospc", Errno.ENOSPC); ("eagain", Errno.EAGAIN) ]
  in
  let sites = [ "vfs.open"; "vfs.read"; "vfs.write"; "seg.grow"; "vfs.lseek"; "vfs.close" ] in
  List.iter
    (fun site ->
      List.iter
        (fun (kind, expected) ->
          let k, _ = boot () in
          let faulted, retried =
            run_native k (fun k proc ->
                let fd = Kernel.sys_open k proc ~create:true "/tmp/sweep" in
                Fault.configure (Printf.sprintf "%s@1=%s" site kind);
                let call () : (unit, Errno.t) result =
                  match site with
                  | "vfs.open" ->
                    Result.map ignore (Kernel.sys_open_r k proc ~create:true "/tmp/other")
                  | "vfs.read" -> Result.map ignore (Kernel.sys_read_r k proc fd 4)
                  | "vfs.write" | "seg.grow" ->
                    Result.map ignore (Kernel.sys_write_r k proc fd (Bytes.of_string "abc"))
                  | "vfs.lseek" -> Result.map ignore (Kernel.sys_lseek_r k proc fd 0)
                  | "vfs.close" -> Kernel.sys_close_r k proc fd
                  | _ -> assert false
                in
                let faulted = call () in
                Fault.clear ();
                (faulted, call ()))
          in
          let label = Printf.sprintf "%s under %s" site kind in
          check_bool (label ^ " maps to its errno") true (faulted = Error expected);
          check_bool (label ^ " recovers once cleared") true (retried = Ok ()))
        failures)
    sites

(* An ISA program sees the injection as a negative v0 and keeps
   running — errno delivery, not a kill. *)
let isa_injection_recovers () =
  let kl = boot () in
  Fault.configure "vfs.write@1=eio";
  let out =
    Fun.protect ~finally:Fault.clear (fun () ->
        run_c_program kl
          {|
int main() {
  int fd;
  int n;
  fd = open("/tmp/f", 1);
  n = write(fd, "hi", 2);
  print_str("w=");
  print_int(n);
  n = write(fd, "hi", 2);
  print_str(" w2=");
  print_int(n);
  return 0;
}
|})
  in
  check_string "first write answers -EIO, second succeeds" "w=-5 w2=2" out

(* ----- the janitor (§5 garbage collection) ----- *)

let janitor_survey_classifies () =
  let k, ldl = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/shared/lib";
  install_c k "/shared/lib/counter.o" counter_template;
  run_native k (fun k proc ->
      let inst = Ldl.dlopen ldl proc "/shared/lib/counter.o" in
      Ldl.link_now ldl proc inst;
      let heap = Shm_heap.create k proc ~path:"/shared/scratch" in
      ignore (Shm_heap.alloc k proc ~heap 100));
  Fs.write_file fs "/shared/notes" (Bytes.of_string "plain old bytes");
  let entries = Janitor.survey k in
  let kind_of path =
    (List.find (fun e -> e.Janitor.j_path = path) entries).Janitor.j_kind
  in
  check_bool "template" true (kind_of "/shared/lib/counter.o" = Janitor.Template);
  check_bool "module" true (kind_of "/shared/lib/counter" = Janitor.Module);
  check_bool "heap" true (kind_of "/shared/scratch" = Janitor.Heap);
  check_bool "plain" true (kind_of "/shared/notes" = Janitor.Plain);
  let heap_entry = List.find (fun e -> e.Janitor.j_path = "/shared/scratch") entries in
  check_bool "live bytes reported" true (heap_entry.Janitor.j_heap_live = Some 100);
  let module_entry = List.find (fun e -> e.Janitor.j_path = "/shared/lib/counter") entries in
  check_bool "module provenance" true
    (module_entry.Janitor.j_template = Some "/shared/lib/counter.o")

let janitor_finds_orphans () =
  let k, ldl = boot () in
  let fs = Kernel.fs k in
  Fs.mkdir fs "/shared/lib";
  install_c k "/shared/lib/counter.o" counter_template;
  run_native k (fun _ proc -> ignore (Ldl.dlopen ldl proc "/shared/lib/counter.o"));
  check_int "no orphans yet" 0 (List.length (Janitor.orphaned_modules k));
  Fs.unlink fs "/shared/lib/counter.o";
  (match Janitor.orphaned_modules k with
  | [ e ] ->
    check_string "the orphan" "/shared/lib/counter" e.Janitor.j_path;
    Janitor.remove k e.Janitor.j_path
  | l -> Alcotest.failf "expected 1 orphan, got %d" (List.length l));
  check_int "cleaned" 0 (List.length (Janitor.survey k))

let janitor_remove_frees_slot () =
  let k, _ = boot () in
  let fs = Kernel.fs k in
  Fs.create_file fs "/shared/junk1";
  Fs.create_file fs "/shared/junk2";
  let free0 = Fs.shared_free_slots fs in
  Janitor.remove k "/shared/junk1";
  check_int "slot reclaimed" (free0 + 1) (Fs.shared_free_slots fs)

(* ----- dangling pointers after manual cleanup ----- *)

let dangling_pointer_after_removal () =
  let k, ldl = boot () in
  let fs = Kernel.fs k in
  Fs.create_file fs "/shared/victim";
  let addr = Fs.addr_of_path fs "/shared/victim" in
  (* a process that never mapped it; the segment is then removed *)
  Janitor.remove k "/shared/victim";
  let died =
    run_native k (fun k proc ->
        Ldl.attach ldl proc;
        match Kernel.load_u32 k proc addr with
        | _ -> false
        | exception Proc.Killed _ -> true)
  in
  check_bool "stale pointer faults fatally (no file to map)" true died

let suite =
  [
    test "failure: crash releases the creation lock" crash_releases_creation_lock;
    test "failure: blocked waiter survives holder crash" blocked_waiter_survives_holder_crash;
    test "failure: stale non-module file is not clobbered" stale_non_module_file;
    test "failure: corrupted template rejected" corrupted_template_rejected;
    test "failure: corrupted module header tolerated" corrupted_module_header;
    test "failure: truncated a.out rejected" truncated_aout_rejected;
    test "failure: Vfs fault sites map to errnos" vfs_fault_sweep;
    test "failure: ISA program recovers from injected errno" isa_injection_recovers;
    test "janitor: survey classifies segments" janitor_survey_classifies;
    test "janitor: orphaned modules found and removed" janitor_finds_orphans;
    test "janitor: removal frees the slot" janitor_remove_frees_slot;
    test "janitor: dangling pointers fault after cleanup" dangling_pointer_after_removal;
  ]

module Segment = Hemlock_vm.Segment
module Layout = Hemlock_vm.Layout
module Stats = Hemlock_util.Stats
module Fault = Hemlock_util.Fault

type err_kind =
  | Not_found
  | Not_a_directory
  | Is_a_directory
  | Already_exists
  | No_space
  | Not_shared
  | Hard_links_prohibited
  | Symlink_loop
  | Not_empty
  | Cross_partition

exception Error of { op : string; path : string; kind : err_kind }

let err_kind_to_string = function
  | Not_found -> "no such file or directory"
  | Not_a_directory -> "not a directory"
  | Is_a_directory -> "is a directory"
  | Already_exists -> "file exists"
  | No_space -> "no space left on shared partition"
  | Not_shared -> "not on the shared partition"
  | Hard_links_prohibited -> "hard links prohibited on shared partition"
  | Symlink_loop -> "too many levels of symbolic links"
  | Not_empty -> "directory not empty"
  | Cross_partition -> "rename across the shared partition boundary"

let error op path kind = raise (Error { op; path = Path.to_string path; kind })

type file_kind = Regular | Directory | Symlink

type stat = {
  st_kind : file_kind;
  st_size : int;
  st_ino : int;
  st_addr : int option;
}

type node = File of file | Dir of dir | Link of string

and file = {
  seg : Segment.t;
  ino : int;
  mutable slot : int option;
  mutable nlink : int;
}

and dir = { entries : (string, node) Hashtbl.t; dir_ino : int }

type intent =
  | Intent_create of { path : string }
  | Intent_rename of { src : string; dst : string }
  | Intent_write of { path : string; digest : string }
  | Intent_module of { module_path : string }
  | Intent_pageout of { path : string; page : int; digest : string }

type t = {
  root : dir;
  mutable next_ino : int;
  addr_index : Addr_index.t;
  (* the kernel's address→segment index: linear like the prototype's
     table while small, a B-tree past 1024 entries (Addr_index.Auto) *)
  slot_used : bool array; (* slot allocation bitmap for the 32-bit layout *)
  uid : int; (* distinguishes file systems in cross-kernel caches *)
  mutable generation : int; (* bumped by every namespace/content mutation *)
  mutable journal : (int * intent) list; (* pending intents, newest first *)
  mutable next_jid : int;
}

(* atomic: file systems are created on any domain (cluster boot) *)
let next_uid = Atomic.make 0

let uid t = t.uid

let generation t = t.generation

let touch t = t.generation <- t.generation + 1

let shared_prefix = [ "shared" ]

let is_shared_path p = Path.is_prefix ~prefix:shared_prefix p

let normal_file_max = 16 * 1024 * 1024

let fresh_ino t =
  let ino = t.next_ino in
  t.next_ino <- ino + 1;
  ino

let new_dir t = Dir { entries = Hashtbl.create 8; dir_ino = fresh_ino t }

let create () =

  let t =
    {
      root = { entries = Hashtbl.create 8; dir_ino = 2 };
      next_ino = 4096; (* normal-partition inodes; shared inodes are slots 0..1023 *)
      addr_index = Addr_index.create Addr_index.Auto;
      slot_used = Array.make Layout.shared_slots false;
      uid = Atomic.fetch_and_add next_uid 1 + 1;
      generation = 0;
      journal = [];
      next_jid = 1;
    }
  in
  let add name = Hashtbl.replace t.root.entries name (new_dir t) in
  List.iter add [ "shared"; "tmp"; "etc"; "home" ];
  let usr = { entries = Hashtbl.create 8; dir_ino = fresh_ino t } in
  Hashtbl.replace usr.entries "lib" (new_dir t);
  Hashtbl.replace t.root.entries "usr" (Dir usr);
  t

(* Resolve [p] to (canonical_path, node).  [follow_last] controls whether
   a symlink in the final component is chased.  Fuel bounds symlink
   chains. *)
let resolve_node t ~op ~follow_last p =
  let rec walk fuel canon dir = function
    | [] -> (canon, Dir dir)
    | comp :: rest -> (
      match Hashtbl.find_opt dir.entries comp with
      | None -> error op (canon @ [ comp ]) Not_found
      | Some (Dir d) -> walk fuel (canon @ [ comp ]) d rest
      | Some (File _ as node) ->
        if rest = [] then (canon @ [ comp ], node)
        else error op (canon @ [ comp ]) Not_a_directory
      | Some (Link target as node) ->
        if rest = [] && not follow_last then (canon @ [ comp ], node)
        else begin
          if fuel = 0 then error op (canon @ [ comp ]) Symlink_loop;
          let redirected = Path.of_string ~cwd:canon target @ rest in
          walk (fuel - 1) [] t.root redirected
        end)
  in
  walk 40 [] t.root p

let resolve_opt t ~op ~follow_last p =
  match resolve_node t ~op ~follow_last p with
  | res -> Some res
  | exception Error { kind = Not_found; _ } -> None

let resolve_dir t ~op p =
  match resolve_node t ~op ~follow_last:true p with
  | canon, Dir d -> (canon, d)
  | canon, (File _ | Link _) -> error op canon Not_a_directory

let resolve_file t ~op p =
  match resolve_node t ~op ~follow_last:true p with
  | canon, File f -> (canon, f)
  | canon, Dir _ -> error op canon Is_a_directory
  | _, Link _ -> assert false (* follow_last chases links *)

(* Shared-partition slot management. *)

let alloc_slot t ~op path =
  let rec scan i =
    if i >= Layout.shared_slots then error op path No_space
    else if not t.slot_used.(i) then i
    else scan (i + 1)
  in
  scan 0

(* Publish or re-point slot [i]'s index entry (re-pointing happens when a
   rename moves a shared file: the address is permanent, the path is not). *)
let publish_slot t slot path =
  let base = Layout.addr_of_slot slot in
  ignore (Addr_index.unregister t.addr_index ~base);
  Addr_index.register t.addr_index ~base ~bytes:Layout.shared_slot_size path;
  t.slot_used.(slot) <- true

let free_slot t slot =
  t.slot_used.(slot) <- false;
  ignore (Addr_index.unregister t.addr_index ~base:(Layout.addr_of_slot slot))

(* Intent journal.  The journal lives in [t] — the same place as the
   "disk" — so it survives a simulated crash; an entry present at fsck
   time is exactly an operation that began but never acknowledged.
   Journal bookkeeping does not bump [generation]: intents carry no
   namespace information of their own (the repairs fsck makes do
   bump it, through the ordinary mutation helpers). *)

let journal_begin t intent =
  let jid = t.next_jid in
  t.next_jid <- jid + 1;
  t.journal <- (jid, intent) :: t.journal;
  jid

let journal_end t jid = t.journal <- List.filter (fun (j, _) -> j <> jid) t.journal

let journal_pending t = List.rev t.journal

(* One page of a shared file's dirty mapping, made durable.  A mapped
   shared file and its memory are the {e same} segment, so the content
   is already in place by construction: what the pager needs from the
   file system is a {e durability barrier} — a journalled record that
   this page was mid-flush if the machine dies inside it.  fsck then
   digest-checks the page: matching means the pageout completed
   (replay/acknowledge), anything else rolls the intent back.  A
   transient injected failure at the barrier withdraws the intent and
   re-raises, so the pager can abort that eviction with no journal
   residue. *)
let page_digest seg page =
  Digest.bytes
    (Segment.blit_out seg ~src_off:(page lsl Layout.page_shift) ~len:Layout.page_size)

let page_writeback t ~path ~seg ~page =
  let jid = journal_begin t (Intent_pageout { path; page; digest = page_digest seg page }) in
  (try Fault.hit "fs.pageout"
   with Fault.Injected _ as e ->
     journal_end t jid;
     raise e);
  journal_end t jid

(* Path-level API *)

let parse t ?(cwd = Path.root) s =
  ignore t;
  Path.of_string ~cwd s

let mkdir t ?cwd s =
  let op = "mkdir" in
  touch t;
  let p = parse t ?cwd s in
  if p = [] then error op p Already_exists;
  let canon, dir = resolve_dir t ~op (Path.parent p) in
  let name = Path.basename p in
  if Hashtbl.mem dir.entries name then error op (canon @ [ name ]) Already_exists;
  Hashtbl.replace dir.entries name (new_dir t)

let rec create_file t ?cwd s =
  let op = "create" in
  touch t;
  let p = parse t ?cwd s in
  if p = [] then error op p Is_a_directory;
  let canon, dir = resolve_dir t ~op (Path.parent p) in
  let name = Path.basename p in
  let full = canon @ [ name ] in
  match Hashtbl.find_opt dir.entries name with
  | Some (File f) ->
    Fault.hit "fs.create";
    Segment.resize f.seg 0 (* truncate; keeps slot+address *)
  | Some (Dir _) -> error op full Is_a_directory
  | Some (Link target) ->
    (* Creating through a symlink creates the target. *)
    let target_path = Path.of_string ~cwd:canon target in
    create_file t ~cwd:Path.root (Path.to_string target_path)
  | None ->
    Fault.hit "fs.create";
    if is_shared_path full then begin
      (* Multi-step: publish the slot, then insert the directory entry.
         A journal entry brackets the window so fsck can tell an
         interrupted create from an acknowledged one. *)
      let slot = alloc_slot t ~op full in
      let jid = journal_begin t (Intent_create { path = Path.to_string full }) in
      let file =
        {
          seg = Segment.create ~name:(Path.to_string full) ~max_size:Layout.shared_slot_size ();
          ino = slot;
          slot = Some slot;
          nlink = 1;
        }
      in
      try
        publish_slot t slot (Path.to_string full);
        Fault.hit "fs.create.mid";
        Hashtbl.replace dir.entries name (File file);
        Fault.hit "fs.create.commit";
        journal_end t jid
      with Fault.Injected _ as e ->
        (* Recoverable failure mid-create: undo both steps so the caller
           observes an errno and an unchanged file system.  (A [Crash]
           deliberately skips this — the machine stopped.) *)
        free_slot t slot;
        Hashtbl.remove dir.entries name;
        journal_end t jid;
        raise e
    end
    else
      let file =
        {
          seg = Segment.create ~name:(Path.to_string full) ~max_size:normal_file_max ();
          ino = fresh_ino t;
          slot = None;
          nlink = 1;
        }
      in
      Hashtbl.replace dir.entries name (File file)

let exists t ?cwd s =
  Option.is_some (resolve_opt t ~op:"exists" ~follow_last:true (parse t ?cwd s))

let is_dir t ?cwd s =
  match resolve_opt t ~op:"is_dir" ~follow_last:true (parse t ?cwd s) with
  | Some (_, Dir _) -> true
  | Some _ | None -> false

let stat_of_node = function
  | Dir d -> { st_kind = Directory; st_size = 0; st_ino = d.dir_ino; st_addr = None }
  | Link target ->
    { st_kind = Symlink; st_size = String.length target; st_ino = 0; st_addr = None }
  | File f ->
    {
      st_kind = Regular;
      st_size = Segment.size f.seg;
      st_ino = f.ino;
      st_addr = Option.map Layout.addr_of_slot f.slot;
    }

let stat t ?cwd s =
  let _, node = resolve_node t ~op:"stat" ~follow_last:true (parse t ?cwd s) in
  stat_of_node node

let lstat t ?cwd s =
  let _, node = resolve_node t ~op:"lstat" ~follow_last:false (parse t ?cwd s) in
  stat_of_node node

let segment_of t ?cwd s =
  let _, f = resolve_file t ~op:"mmap" (parse t ?cwd s) in
  f.seg

let read_file t ?cwd s =
  let _, f = resolve_file t ~op:"read" (parse t ?cwd s) in
  let len = Segment.size f.seg in
  (Stats.cur ()).bytes_copied <- (Stats.cur ()).bytes_copied + len;
  (Stats.cur ()).files_opened <- (Stats.cur ()).files_opened + 1;
  Segment.blit_out f.seg ~src_off:0 ~len

(* Remove a canonical path's directory entry without passing through the
   fault-sited [unlink] — undo and fsck repair paths must themselves be
   injection-free. *)
let drop_entry t canon =
  match resolve_opt t ~op:"fsck" ~follow_last:false canon with
  | Some (_, File f) -> (
    match resolve_opt t ~op:"fsck" ~follow_last:true (Path.parent canon) with
    | Some (_, Dir d) ->
      Hashtbl.remove d.entries (Path.basename canon);
      f.nlink <- f.nlink - 1;
      if f.nlink = 0 then Option.iter (free_slot t) f.slot;
      touch t;
      true
    | Some _ | None -> false)
  | Some _ | None -> false

(* Shared [write_file]/[append_file] body.  [content] is the full
   contents the file will hold on success (for a fresh file this is all
   of [b], so its digest lets fsck decide replay vs. roll back).
   Ordering for a fresh file: journal the intended write, create, then
   write — a crash anywhere inside resolves to the pre-state because the
   digest cannot match a partial file. *)
let write_like t ~op ~site p b ~apply ~would_overflow =
  touch t;
  let fresh = not (exists t (Path.to_string p)) in
  let canon_guess =
    (* canonical path for journaling; for a fresh file the parent must
       already exist, so canonicalise through it *)
    if fresh then
      let parent_canon, _ = resolve_dir t ~op (Path.parent p) in
      parent_canon @ [ Path.basename p ]
    else
      let canon, _ = resolve_file t ~op p in
      canon
  in
  let jid =
    if fresh && is_shared_path canon_guess then
      Some
        (journal_begin t
           (Intent_write { path = Path.to_string canon_guess; digest = Digest.bytes b }))
    else None
  in
  let roll_back () =
    if fresh then ignore (drop_entry t canon_guess);
    Option.iter (journal_end t) jid
  in
  (try if fresh then create_file t (Path.to_string p)
   with
   | Fault.Crash _ as e -> raise e (* no cleanup: the journal entry is the evidence *)
   | e ->
     Option.iter (journal_end t) jid;
     raise e);
  let canon, f = resolve_file t ~op p in
  (try Fault.hit site
   with Fault.Injected _ as e ->
     roll_back ();
     raise e);
  if would_overflow f then begin
    roll_back ();
    error op canon No_space
  end;
  apply f;
  Option.iter (journal_end t) jid

let write_file t ?cwd s b =
  let p = parse t ?cwd s in
  write_like t ~op:"write" ~site:"fs.write" p b
    ~would_overflow:(fun f -> Bytes.length b > Segment.max_size f.seg)
    ~apply:(fun f ->
      (Stats.cur ()).bytes_copied <- (Stats.cur ()).bytes_copied + Bytes.length b;
      (Stats.cur ()).files_opened <- (Stats.cur ()).files_opened + 1;
      Segment.replace f.seg b)

let append_file t ?cwd s b =
  let p = parse t ?cwd s in
  write_like t ~op:"append" ~site:"fs.append" p b
    ~would_overflow:(fun f -> Segment.size f.seg + Bytes.length b > Segment.max_size f.seg)
    ~apply:(fun f ->
      (Stats.cur ()).bytes_copied <- (Stats.cur ()).bytes_copied + Bytes.length b;
      Segment.blit_in f.seg ~dst_off:(Segment.size f.seg) b)

let symlink t ?cwd ~target s =
  let op = "symlink" in
  touch t;
  let p = parse t ?cwd s in
  if p = [] then error op p Already_exists;
  let canon, dir = resolve_dir t ~op (Path.parent p) in
  let name = Path.basename p in
  if Hashtbl.mem dir.entries name then error op (canon @ [ name ]) Already_exists;
  Hashtbl.replace dir.entries name (Link target)

let hard_link t ?cwd ~existing s =
  let op = "link" in
  touch t;
  let src = parse t ?cwd existing in
  let dst = parse t ?cwd s in
  if dst = [] then error op dst Already_exists;
  let src_canon, f = resolve_file t ~op src in
  let canon, dir = resolve_dir t ~op (Path.parent dst) in
  let name = Path.basename dst in
  let full = canon @ [ name ] in
  if is_shared_path src_canon || is_shared_path full then
    error op full Hard_links_prohibited;
  if Hashtbl.mem dir.entries name then error op full Already_exists;
  f.nlink <- f.nlink + 1;
  Hashtbl.replace dir.entries name (File f)

let unlink t ?cwd s =
  let op = "unlink" in
  touch t;
  let p = parse t ?cwd s in
  if p = [] then error op p Is_a_directory;
  let canon, dir = resolve_dir t ~op (Path.parent p) in
  let name = Path.basename p in
  let full = canon @ [ name ] in
  match Hashtbl.find_opt dir.entries name with
  | None -> error op full Not_found
  | Some (Dir _) -> error op full Is_a_directory
  | Some (Link _) ->
    Fault.hit "fs.unlink";
    Hashtbl.remove dir.entries name
  | Some (File f) ->
    Fault.hit "fs.unlink";
    Hashtbl.remove dir.entries name;
    (* Crash window: entry gone, slot still published.  No journal —
       [rescan_shared] rebuilds the table from the tree, which clears
       the dangling slot on its own. *)
    (try Fault.hit "fs.unlink.mid"
     with Fault.Injected _ as e ->
       Hashtbl.replace dir.entries name (File f);
       raise e);
    f.nlink <- f.nlink - 1;
    if f.nlink = 0 then Option.iter (free_slot t) f.slot

let rmdir t ?cwd s =
  let op = "rmdir" in
  touch t;
  let p = parse t ?cwd s in
  if p = [] then error op p Not_empty;
  let canon, dir = resolve_dir t ~op (Path.parent p) in
  let name = Path.basename p in
  let full = canon @ [ name ] in
  match Hashtbl.find_opt dir.entries name with
  | None -> error op full Not_found
  | Some (File _ | Link _) -> error op full Not_a_directory
  | Some (Dir d) ->
    if Hashtbl.length d.entries > 0 then error op full Not_empty;
    Hashtbl.remove dir.entries name

let rename t ?cwd ~src dst =
  let op = "rename" in
  touch t;
  let srcp = parse t ?cwd src in
  let dstp = parse t ?cwd dst in
  if srcp = [] || dstp = [] then error op srcp Is_a_directory;
  if Path.is_prefix ~prefix:srcp dstp then error op dstp Already_exists;
  let src_canon, src_dir = resolve_dir t ~op (Path.parent srcp) in
  let src_name = Path.basename srcp in
  let src_full = src_canon @ [ src_name ] in
  let node =
    match Hashtbl.find_opt src_dir.entries src_name with
    | Some node -> node
    | None -> error op src_full Not_found
  in
  let dst_canon, dst_dir = resolve_dir t ~op (Path.parent dstp) in
  let dst_name = Path.basename dstp in
  let dst_full = dst_canon @ [ dst_name ] in
  if Hashtbl.mem dst_dir.entries dst_name then error op dst_full Already_exists;
  if is_shared_path src_full <> is_shared_path dst_full then
    error op dst_full Cross_partition;
  Fault.hit "fs.rename";
  (* Addresses are permanent: fix the kernel's addr->path table for any
     shared file whose path just changed (the moved file itself, or the
     contents of a moved directory). *)
  let rec fix canon = function
    | File f -> Option.iter (fun slot -> publish_slot t slot (Path.to_string canon)) f.slot
    | Link _ -> ()
    | Dir d -> Hashtbl.iter (fun name child -> fix (canon @ [ name ]) child) d.entries
  in
  let shared = is_shared_path dst_full in
  let jid =
    if shared then
      Some
        (journal_begin t
           (Intent_rename
              { src = Path.to_string src_full; dst = Path.to_string dst_full }))
    else None
  in
  (* Crash-safe ordering: insert at the destination first, remove the
     source second.  A crash between the two leaves both names visible —
     never zero — and fsck completes the rename from the journal. *)
  try
    Hashtbl.replace dst_dir.entries dst_name node;
    Fault.hit "fs.rename.mid";
    Hashtbl.remove src_dir.entries src_name;
    if shared then fix dst_full node;
    Fault.hit "fs.rename.commit";
    Option.iter (journal_end t) jid
  with Fault.Injected _ as e ->
    (* undo: restore the source view of the world *)
    Hashtbl.remove dst_dir.entries dst_name;
    Hashtbl.replace src_dir.entries src_name node;
    if shared then fix src_full node;
    Option.iter (journal_end t) jid;
    raise e

let readdir t ?cwd s =
  let _, dir = resolve_dir t ~op:"readdir" (parse t ?cwd s) in
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) dir.entries [])

(* The paper's new kernel calls. *)

let addr_of_path t ?cwd s =
  let op = "addr_of_path" in
  let canon, f = resolve_file t ~op (parse t ?cwd s) in
  match f.slot with
  | Some slot -> Layout.addr_of_slot slot
  | None -> error op canon Not_shared

let path_of_addr t a =
  let op = "path_of_addr" in
  if not (Layout.is_public a) then
    raise (Error { op; path = Printf.sprintf "0x%08x" a; kind = Not_shared });
  (* the translation the SIGSEGV handler makes: resolved through the
     address index, probes counted (Addr_index.probes) *)
  match Addr_index.translate t.addr_index a with
  | Some (p, _off) -> p
  | None -> raise (Error { op; path = Printf.sprintf "0x%08x" a; kind = Not_found })

let slot_owner t a =
  if Layout.is_public a then
    Option.map fst (Addr_index.translate t.addr_index a)
  else None

let rescan_shared t =
  Addr_index.clear t.addr_index;
  Array.fill t.slot_used 0 (Array.length t.slot_used) false;
  let rec walk canon dir =
    let names = List.sort String.compare (Hashtbl.fold (fun k _ a -> k :: a) dir.entries []) in
    let visit name =
      match Hashtbl.find_opt dir.entries name with
      | Some (Dir d) -> walk (canon @ [ name ]) d
      | Some (File f) ->
        Option.iter
          (fun slot -> publish_slot t slot (Path.to_string (canon @ [ name ])))
          f.slot
      | Some (Link _) | None -> ()
    in
    List.iter visit names
  in
  match Hashtbl.find_opt t.root.entries "shared" with
  | Some (Dir d) -> walk shared_prefix d
  | Some (File _ | Link _) | None -> ()

type fsck_report = {
  fsck_replayed : int;
  fsck_rolled_back : int;
  fsck_repairs : string list;
  fsck_orphans : string list;
  fsck_clean : bool;
}

let fsck t =
  (* Boot-time view first: rebuild the addr table from the tree, which
     already clears dangling slots left by an interrupted unlink. *)
  rescan_shared t;
  let replayed = ref 0 and rolled = ref 0 in
  let repairs = ref [] and orphans = ref [] in
  let note msg = repairs := msg :: !repairs in
  let entries = List.rev t.journal in
  t.journal <- [];
  let lookup path =
    resolve_opt t ~op:"fsck" ~follow_last:false (Path.of_string ~cwd:Path.root path)
  in
  let process (_jid, intent) =
    match intent with
    | Intent_create { path } -> (
      match lookup path with
      | Some (_, File _) ->
        (* The create finished but was never acknowledged: keep the file
           (roll forward) and flag it so a reaping policy can decide. *)
        incr replayed;
        orphans := path :: !orphans
      | Some _ | None -> incr rolled)
    | Intent_rename { src; dst } -> (
      match (lookup src, lookup dst) with
      | Some _, Some _ ->
        (* Insert happened, remove did not: finish the rename. *)
        let srcp = Path.of_string ~cwd:Path.root src in
        (match resolve_opt t ~op:"fsck" ~follow_last:true (Path.parent srcp) with
        | Some (_, Dir d) ->
          Hashtbl.remove d.entries (Path.basename srcp);
          touch t
        | Some _ | None -> ());
        note (Printf.sprintf "completed rename %s -> %s" src dst);
        incr replayed
      | None, Some _ -> incr replayed (* already complete *)
      | Some _, None | None, None -> incr rolled)
    | Intent_write { path; digest } -> (
      match lookup path with
      | Some (_, File f) ->
        if Digest.bytes (Segment.contents f.seg) = digest then incr replayed
        else begin
          ignore (drop_entry t (Path.of_string ~cwd:Path.root path));
          note (Printf.sprintf "rolled back partial write of %s" path);
          incr rolled
        end
      | Some _ | None -> incr rolled)
    | Intent_pageout { path; page; digest } -> (
      match lookup path with
      | Some (_, File f)
        when (page + 1) lsl Layout.page_shift <= Segment.max_size f.seg ->
        if page_digest f.seg page = digest then incr replayed
        else begin
          (* The page changed between the barrier and the crash; the
             file is still self-consistent (memory and file are one
             segment), so the intent is simply withdrawn. *)
          note (Printf.sprintf "discarded stale pageout of %s page %d" path page);
          incr rolled
        end
      | Some _ | None -> incr rolled)
    | Intent_module { module_path } -> (
      match lookup module_path with
      | Some (_, File f) ->
        (* Published = the magic was written, which is the last step of
           module creation; sniff it directly (the fs layer cannot see
           [Modinst.Header]). *)
        let published =
          Segment.size f.seg >= 4
          && Bytes.to_string (Segment.blit_out f.seg ~src_off:0 ~len:4) = "HMOD"
        in
        if published then incr replayed
        else begin
          ignore (drop_entry t (Path.of_string ~cwd:Path.root module_path));
          note (Printf.sprintf "removed unpublished module %s" module_path);
          incr rolled
        end
      | Some _ | None -> incr rolled)
  in
  List.iter process entries;
  (* Invariant sweep over the shared tree: every file carries an
     in-range slot and no slot is claimed by two paths. *)
  let slot_paths : (int, string list) Hashtbl.t = Hashtbl.create 64 in
  (match Hashtbl.find_opt t.root.entries "shared" with
  | Some (Dir d0) ->
    let rec walk canon dir =
      let names =
        List.sort String.compare (Hashtbl.fold (fun k _ a -> k :: a) dir.entries [])
      in
      List.iter
        (fun name ->
          let full = canon @ [ name ] in
          match Hashtbl.find_opt dir.entries name with
          | Some (Dir d) -> walk full d
          | Some (File f) -> (
            match f.slot with
            | Some s when s >= 0 && s < Layout.shared_slots ->
              let prev = Option.value ~default:[] (Hashtbl.find_opt slot_paths s) in
              Hashtbl.replace slot_paths s (Path.to_string full :: prev)
            | Some s ->
              note
                (Printf.sprintf "file %s has out-of-range slot %d"
                   (Path.to_string full) s)
            | None ->
              note (Printf.sprintf "shared file %s has no slot" (Path.to_string full)))
          | Some (Link _) | None -> ())
        names
    in
    walk shared_prefix d0
  | Some (File _ | Link _) | None -> ());
  let remove_alias path =
    (* the file stays live under its kept name: drop only the entry *)
    let p = Path.of_string ~cwd:Path.root path in
    match resolve_opt t ~op:"fsck" ~follow_last:true (Path.parent p) with
    | Some (_, Dir d) ->
      Hashtbl.remove d.entries (Path.basename p);
      touch t
    | Some _ | None -> ()
  in
  Hashtbl.iter
    (fun slot paths ->
      match List.sort String.compare paths with
      | _keep :: (_ :: _ as extras) ->
        List.iter
          (fun extra ->
            remove_alias extra;
            note (Printf.sprintf "slot %d aliased; removed %s" slot extra))
          extras
      | _ -> ())
    slot_paths;
  (* Repairs may have changed the namespace: settle the table again. *)
  rescan_shared t;
  (Stats.cur ()).journal_replays <- (Stats.cur ()).journal_replays + !replayed;
  (Stats.cur ()).journal_rollbacks <- (Stats.cur ()).journal_rollbacks + !rolled;
  let repairs = List.rev !repairs in
  {
    fsck_replayed = !replayed;
    fsck_rolled_back = !rolled;
    fsck_repairs = repairs;
    fsck_orphans = List.rev !orphans;
    fsck_clean = !replayed = 0 && !rolled = 0 && repairs = [];
  }

let shared_free_slots t =
  Array.fold_left (fun acc used -> if used then acc else acc + 1) 0 t.slot_used

let shared_table t =
  List.map
    (fun (base, _bytes, path) -> (Layout.slot_of_addr base, path))
    (Addr_index.to_list t.addr_index)

let shared_index_backend t = Addr_index.in_use t.addr_index

let shared_index_probes t = Addr_index.probes t.addr_index

module Segment = Hemlock_vm.Segment
module Layout = Hemlock_vm.Layout
module Stats = Hemlock_util.Stats

type err_kind =
  | Not_found
  | Not_a_directory
  | Is_a_directory
  | Already_exists
  | No_space
  | Not_shared
  | Hard_links_prohibited
  | Symlink_loop
  | Not_empty
  | Cross_partition

exception Error of { op : string; path : string; kind : err_kind }

let err_kind_to_string = function
  | Not_found -> "no such file or directory"
  | Not_a_directory -> "not a directory"
  | Is_a_directory -> "is a directory"
  | Already_exists -> "file exists"
  | No_space -> "no space left on shared partition"
  | Not_shared -> "not on the shared partition"
  | Hard_links_prohibited -> "hard links prohibited on shared partition"
  | Symlink_loop -> "too many levels of symbolic links"
  | Not_empty -> "directory not empty"
  | Cross_partition -> "rename across the shared partition boundary"

let error op path kind = raise (Error { op; path = Path.to_string path; kind })

type file_kind = Regular | Directory | Symlink

type stat = {
  st_kind : file_kind;
  st_size : int;
  st_ino : int;
  st_addr : int option;
}

type node = File of file | Dir of dir | Link of string

and file = {
  seg : Segment.t;
  ino : int;
  mutable slot : int option;
  mutable nlink : int;
}

and dir = { entries : (string, node) Hashtbl.t; dir_ino : int }

type t = {
  root : dir;
  mutable next_ino : int;
  addr_table : string option array; (* the kernel's linear lookup table *)
  uid : int; (* distinguishes file systems in cross-kernel caches *)
  mutable generation : int; (* bumped by every namespace/content mutation *)
}

let next_uid = ref 0

let uid t = t.uid

let generation t = t.generation

let touch t = t.generation <- t.generation + 1

let shared_prefix = [ "shared" ]

let is_shared_path p = Path.is_prefix ~prefix:shared_prefix p

let normal_file_max = 16 * 1024 * 1024

let fresh_ino t =
  let ino = t.next_ino in
  t.next_ino <- ino + 1;
  ino

let new_dir t = Dir { entries = Hashtbl.create 8; dir_ino = fresh_ino t }

let create () =
  incr next_uid;
  let t =
    {
      root = { entries = Hashtbl.create 8; dir_ino = 2 };
      next_ino = 4096; (* normal-partition inodes; shared inodes are slots 0..1023 *)
      addr_table = Array.make Layout.shared_slots None;
      uid = !next_uid;
      generation = 0;
    }
  in
  let add name = Hashtbl.replace t.root.entries name (new_dir t) in
  List.iter add [ "shared"; "tmp"; "etc"; "home" ];
  let usr = { entries = Hashtbl.create 8; dir_ino = fresh_ino t } in
  Hashtbl.replace usr.entries "lib" (new_dir t);
  Hashtbl.replace t.root.entries "usr" (Dir usr);
  t

(* Resolve [p] to (canonical_path, node).  [follow_last] controls whether
   a symlink in the final component is chased.  Fuel bounds symlink
   chains. *)
let resolve_node t ~op ~follow_last p =
  let rec walk fuel canon dir = function
    | [] -> (canon, Dir dir)
    | comp :: rest -> (
      match Hashtbl.find_opt dir.entries comp with
      | None -> error op (canon @ [ comp ]) Not_found
      | Some (Dir d) -> walk fuel (canon @ [ comp ]) d rest
      | Some (File _ as node) ->
        if rest = [] then (canon @ [ comp ], node)
        else error op (canon @ [ comp ]) Not_a_directory
      | Some (Link target as node) ->
        if rest = [] && not follow_last then (canon @ [ comp ], node)
        else begin
          if fuel = 0 then error op (canon @ [ comp ]) Symlink_loop;
          let redirected = Path.of_string ~cwd:canon target @ rest in
          walk (fuel - 1) [] t.root redirected
        end)
  in
  walk 40 [] t.root p

let resolve_opt t ~op ~follow_last p =
  match resolve_node t ~op ~follow_last p with
  | res -> Some res
  | exception Error { kind = Not_found; _ } -> None

let resolve_dir t ~op p =
  match resolve_node t ~op ~follow_last:true p with
  | canon, Dir d -> (canon, d)
  | canon, (File _ | Link _) -> error op canon Not_a_directory

let resolve_file t ~op p =
  match resolve_node t ~op ~follow_last:true p with
  | canon, File f -> (canon, f)
  | canon, Dir _ -> error op canon Is_a_directory
  | _, Link _ -> assert false (* follow_last chases links *)

(* Shared-partition slot management. *)

let alloc_slot t ~op path =
  let rec scan i =
    if i >= Layout.shared_slots then error op path No_space
    else if t.addr_table.(i) = None then i
    else scan (i + 1)
  in
  scan 0

let free_slot t slot = t.addr_table.(slot) <- None

(* Path-level API *)

let parse t ?(cwd = Path.root) s =
  ignore t;
  Path.of_string ~cwd s

let mkdir t ?cwd s =
  let op = "mkdir" in
  touch t;
  let p = parse t ?cwd s in
  if p = [] then error op p Already_exists;
  let canon, dir = resolve_dir t ~op (Path.parent p) in
  let name = Path.basename p in
  if Hashtbl.mem dir.entries name then error op (canon @ [ name ]) Already_exists;
  Hashtbl.replace dir.entries name (new_dir t)

let rec create_file t ?cwd s =
  let op = "create" in
  touch t;
  let p = parse t ?cwd s in
  if p = [] then error op p Is_a_directory;
  let canon, dir = resolve_dir t ~op (Path.parent p) in
  let name = Path.basename p in
  let full = canon @ [ name ] in
  match Hashtbl.find_opt dir.entries name with
  | Some (File f) -> Segment.resize f.seg 0 (* truncate; keeps slot+address *)
  | Some (Dir _) -> error op full Is_a_directory
  | Some (Link target) ->
    (* Creating through a symlink creates the target. *)
    let target_path = Path.of_string ~cwd:canon target in
    create_file t ~cwd:Path.root (Path.to_string target_path)
  | None ->
    let file =
      if is_shared_path full then begin
        let slot = alloc_slot t ~op full in
        t.addr_table.(slot) <- Some (Path.to_string full);
        {
          seg = Segment.create ~name:(Path.to_string full) ~max_size:Layout.shared_slot_size ();
          ino = slot;
          slot = Some slot;
          nlink = 1;
        }
      end
      else
        {
          seg = Segment.create ~name:(Path.to_string full) ~max_size:normal_file_max ();
          ino = fresh_ino t;
          slot = None;
          nlink = 1;
        }
    in
    Hashtbl.replace dir.entries name (File file)

let exists t ?cwd s =
  Option.is_some (resolve_opt t ~op:"exists" ~follow_last:true (parse t ?cwd s))

let is_dir t ?cwd s =
  match resolve_opt t ~op:"is_dir" ~follow_last:true (parse t ?cwd s) with
  | Some (_, Dir _) -> true
  | Some _ | None -> false

let stat_of_node = function
  | Dir d -> { st_kind = Directory; st_size = 0; st_ino = d.dir_ino; st_addr = None }
  | Link target ->
    { st_kind = Symlink; st_size = String.length target; st_ino = 0; st_addr = None }
  | File f ->
    {
      st_kind = Regular;
      st_size = Segment.size f.seg;
      st_ino = f.ino;
      st_addr = Option.map Layout.addr_of_slot f.slot;
    }

let stat t ?cwd s =
  let _, node = resolve_node t ~op:"stat" ~follow_last:true (parse t ?cwd s) in
  stat_of_node node

let lstat t ?cwd s =
  let _, node = resolve_node t ~op:"lstat" ~follow_last:false (parse t ?cwd s) in
  stat_of_node node

let segment_of t ?cwd s =
  let _, f = resolve_file t ~op:"mmap" (parse t ?cwd s) in
  f.seg

let read_file t ?cwd s =
  let _, f = resolve_file t ~op:"read" (parse t ?cwd s) in
  let len = Segment.size f.seg in
  Stats.global.bytes_copied <- Stats.global.bytes_copied + len;
  Stats.global.files_opened <- Stats.global.files_opened + 1;
  Segment.blit_out f.seg ~src_off:0 ~len

let write_file t ?cwd s b =
  touch t;
  let p = parse t ?cwd s in
  if not (exists t (Path.to_string p)) then create_file t (Path.to_string p);
  let _, f = resolve_file t ~op:"write" p in
  Stats.global.bytes_copied <- Stats.global.bytes_copied + Bytes.length b;
  Stats.global.files_opened <- Stats.global.files_opened + 1;
  Segment.resize f.seg 0;
  Segment.blit_in f.seg ~dst_off:0 b

let append_file t ?cwd s b =
  touch t;
  let p = parse t ?cwd s in
  if not (exists t (Path.to_string p)) then create_file t (Path.to_string p);
  let _, f = resolve_file t ~op:"append" p in
  Stats.global.bytes_copied <- Stats.global.bytes_copied + Bytes.length b;
  Segment.blit_in f.seg ~dst_off:(Segment.size f.seg) b

let symlink t ?cwd ~target s =
  let op = "symlink" in
  touch t;
  let p = parse t ?cwd s in
  if p = [] then error op p Already_exists;
  let canon, dir = resolve_dir t ~op (Path.parent p) in
  let name = Path.basename p in
  if Hashtbl.mem dir.entries name then error op (canon @ [ name ]) Already_exists;
  Hashtbl.replace dir.entries name (Link target)

let hard_link t ?cwd ~existing s =
  let op = "link" in
  touch t;
  let src = parse t ?cwd existing in
  let dst = parse t ?cwd s in
  if dst = [] then error op dst Already_exists;
  let src_canon, f = resolve_file t ~op src in
  let canon, dir = resolve_dir t ~op (Path.parent dst) in
  let name = Path.basename dst in
  let full = canon @ [ name ] in
  if is_shared_path src_canon || is_shared_path full then
    error op full Hard_links_prohibited;
  if Hashtbl.mem dir.entries name then error op full Already_exists;
  f.nlink <- f.nlink + 1;
  Hashtbl.replace dir.entries name (File f)

let unlink t ?cwd s =
  let op = "unlink" in
  touch t;
  let p = parse t ?cwd s in
  if p = [] then error op p Is_a_directory;
  let canon, dir = resolve_dir t ~op (Path.parent p) in
  let name = Path.basename p in
  let full = canon @ [ name ] in
  match Hashtbl.find_opt dir.entries name with
  | None -> error op full Not_found
  | Some (Dir _) -> error op full Is_a_directory
  | Some (Link _) -> Hashtbl.remove dir.entries name
  | Some (File f) ->
    Hashtbl.remove dir.entries name;
    f.nlink <- f.nlink - 1;
    if f.nlink = 0 then Option.iter (free_slot t) f.slot

let rmdir t ?cwd s =
  let op = "rmdir" in
  touch t;
  let p = parse t ?cwd s in
  if p = [] then error op p Not_empty;
  let canon, dir = resolve_dir t ~op (Path.parent p) in
  let name = Path.basename p in
  let full = canon @ [ name ] in
  match Hashtbl.find_opt dir.entries name with
  | None -> error op full Not_found
  | Some (File _ | Link _) -> error op full Not_a_directory
  | Some (Dir d) ->
    if Hashtbl.length d.entries > 0 then error op full Not_empty;
    Hashtbl.remove dir.entries name

let rename t ?cwd ~src dst =
  let op = "rename" in
  touch t;
  let srcp = parse t ?cwd src in
  let dstp = parse t ?cwd dst in
  if srcp = [] || dstp = [] then error op srcp Is_a_directory;
  if Path.is_prefix ~prefix:srcp dstp then error op dstp Already_exists;
  let src_canon, src_dir = resolve_dir t ~op (Path.parent srcp) in
  let src_name = Path.basename srcp in
  let src_full = src_canon @ [ src_name ] in
  let node =
    match Hashtbl.find_opt src_dir.entries src_name with
    | Some node -> node
    | None -> error op src_full Not_found
  in
  let dst_canon, dst_dir = resolve_dir t ~op (Path.parent dstp) in
  let dst_name = Path.basename dstp in
  let dst_full = dst_canon @ [ dst_name ] in
  if Hashtbl.mem dst_dir.entries dst_name then error op dst_full Already_exists;
  if is_shared_path src_full <> is_shared_path dst_full then
    error op dst_full Cross_partition;
  Hashtbl.remove src_dir.entries src_name;
  Hashtbl.replace dst_dir.entries dst_name node;
  (* Addresses are permanent: fix the kernel's addr->path table for any
     shared file whose path just changed (the moved file itself, or the
     contents of a moved directory). *)
  if is_shared_path dst_full then begin
    let rec fix canon = function
      | File f -> Option.iter (fun slot -> t.addr_table.(slot) <- Some (Path.to_string canon)) f.slot
      | Link _ -> ()
      | Dir d -> Hashtbl.iter (fun name child -> fix (canon @ [ name ]) child) d.entries
    in
    fix dst_full node
  end

let readdir t ?cwd s =
  let _, dir = resolve_dir t ~op:"readdir" (parse t ?cwd s) in
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) dir.entries [])

(* The paper's new kernel calls. *)

let addr_of_path t ?cwd s =
  let op = "addr_of_path" in
  let canon, f = resolve_file t ~op (parse t ?cwd s) in
  match f.slot with
  | Some slot -> Layout.addr_of_slot slot
  | None -> error op canon Not_shared

let path_of_addr t a =
  let op = "path_of_addr" in
  if not (Layout.is_public a) then
    raise (Error { op; path = Printf.sprintf "0x%08x" a; kind = Not_shared });
  match t.addr_table.(Layout.slot_of_addr a) with
  | Some p -> p
  | None -> raise (Error { op; path = Printf.sprintf "0x%08x" a; kind = Not_found })

let slot_owner t a =
  if Layout.is_public a then t.addr_table.(Layout.slot_of_addr a) else None

let rescan_shared t =
  Array.fill t.addr_table 0 (Array.length t.addr_table) None;
  let rec walk canon dir =
    let names = List.sort String.compare (Hashtbl.fold (fun k _ a -> k :: a) dir.entries []) in
    let visit name =
      match Hashtbl.find_opt dir.entries name with
      | Some (Dir d) -> walk (canon @ [ name ]) d
      | Some (File f) ->
        Option.iter
          (fun slot -> t.addr_table.(slot) <- Some (Path.to_string (canon @ [ name ])))
          f.slot
      | Some (Link _) | None -> ()
    in
    List.iter visit names
  in
  match Hashtbl.find_opt t.root.entries "shared" with
  | Some (Dir d) -> walk shared_prefix d
  | Some (File _ | Link _) | None -> ()

let shared_free_slots t =
  Array.fold_left (fun acc e -> if e = None then acc + 1 else acc) 0 t.addr_table

let shared_table t =
  let acc = ref [] in
  for i = Array.length t.addr_table - 1 downto 0 do
    match t.addr_table.(i) with
    | Some p -> acc := (i, p) :: !acc
    | None -> ()
  done;
  !acc

type backend = Linear | Btree_index | Auto

type entry = { e_base : int; e_bytes : int; e_path : string }

type repr =
  | Lin of entry list ref (* unordered, scanned in full: the prototype *)
  | Bt of entry Btree.t

type t = {
  mutable repr : repr;
  backend : backend;
  threshold : int;
  mutable probes : int;
  mutable count : int;
}

let default_threshold = 1024 (* the prototype's slot-table capacity *)

let backend_to_string = function
  | Linear -> "linear"
  | Btree_index -> "b-tree"
  | Auto -> "auto"

let create ?(threshold = default_threshold) backend =
  let repr =
    match backend with
    | Linear | Auto -> Lin (ref [])
    | Btree_index -> Bt (Btree.create ())
  in
  { repr; backend; threshold; probes = 0; count = 0 }

let size t = t.count

let in_use t = match t.repr with Lin _ -> Linear | Bt _ -> Btree_index

let overlaps a b = a.e_base < b.e_base + b.e_bytes && b.e_base < a.e_base + a.e_bytes

(* The Auto backend's tipping point: once the table reaches the size the
   prototype's fixed slot array topped out at, migrate every entry into
   the B-tree — the paper's plan for the 64-bit address space.  One-way:
   a table that has ever been big stays a B-tree. *)
let maybe_promote t =
  match t.repr with
  | Lin entries when t.backend = Auto && t.count >= t.threshold ->
    let bt = Btree.create () in
    List.iter (fun e -> Btree.insert bt e.e_base e) !entries;
    t.repr <- Bt bt
  | Lin _ | Bt _ -> ()

let register t ~base ~bytes path =
  if bytes <= 0 then invalid_arg "Addr_index.register: empty segment";
  let entry = { e_base = base; e_bytes = bytes; e_path = path } in
  (match t.repr with
  | Lin entries ->
    if List.exists (overlaps entry) !entries then
      invalid_arg "Addr_index.register: overlap";
    entries := entry :: !entries
  | Bt bt ->
    (* neighbours on either side are the only overlap candidates *)
    (match Btree.find_leq bt (base + bytes - 1) with
    | Some (_, other) when overlaps entry other -> invalid_arg "Addr_index.register: overlap"
    | _ -> ());
    Btree.insert bt base entry);
  t.count <- t.count + 1;
  maybe_promote t

let unregister t ~base =
  let removed =
    match t.repr with
    | Lin entries ->
      let before = List.length !entries in
      entries := List.filter (fun e -> e.e_base <> base) !entries;
      List.length !entries < before
    | Bt bt -> Btree.remove bt base
  in
  if removed then t.count <- t.count - 1;
  removed

let translate t addr =
  match t.repr with
  | Lin entries ->
    (* The prototype's approach: walk the whole table. *)
    let rec scan = function
      | [] -> None
      | e :: rest ->
        t.probes <- t.probes + 1;
        if addr >= e.e_base && addr < e.e_base + e.e_bytes then
          Some (e.e_path, addr - e.e_base)
        else scan rest
    in
    scan !entries
  | Bt bt -> (
    (* O(log n): predecessor search, ~log2(n)/log2(2t) node probes. *)
    t.probes <- t.probes + max 1 (int_of_float (ceil (log (float_of_int (max 2 t.count)) /. log 7.)));
    match Btree.find_leq bt addr with
    | Some (_, e) when addr < e.e_base + e.e_bytes -> Some (e.e_path, addr - e.e_base)
    | Some _ | None -> None)

let to_list t =
  let entries =
    match t.repr with
    | Lin entries -> !entries
    | Bt bt -> List.map snd (Btree.to_list bt)
  in
  List.sort compare
    (List.map (fun e -> (e.e_base, e.e_bytes, e.e_path)) entries)

let clear t =
  (match t.repr with
  | Lin entries -> entries := []
  | Bt _ ->
    (* a cleared Auto index restarts linear; an explicit B-tree stays one *)
    t.repr <-
      (match t.backend with
      | Btree_index -> Bt (Btree.create ())
      | Linear | Auto -> Lin (ref [])));
  t.count <- 0

let probes t = t.probes

let reset_probes t = t.probes <- 0

(** The simulated file system.

    An ordinary in-memory Unix tree, plus the paper's dedicated shared
    partition mounted at [/shared]:

    - exactly 1024 inodes (slots), each file at most 1 MB;
    - a kernel-maintained one-one mapping between inodes and path names
      (hard links other than "." and ".." are prohibited there);
    - file [i]'s data occupies the fixed global address range
      [Layout.addr_of_slot i .. +1 MB), so {!addr_of_path} /
      {!path_of_addr} translate back and forth and pointers into shared
      files mean the same thing in every process.

    Every regular file is backed by a {!Hemlock_vm.Segment.t}; mapping a
    file and writing the mapped memory writes the file, which is what
    makes Hemlock's sharing genuine. *)

type t

type err_kind =
  | Not_found
  | Not_a_directory
  | Is_a_directory
  | Already_exists
  | No_space  (** shared partition out of inodes *)
  | Not_shared  (** address/op requires the shared partition *)
  | Hard_links_prohibited
  | Symlink_loop
  | Not_empty
  | Cross_partition  (** rename between /shared and the normal partition *)

exception Error of { op : string; path : string; kind : err_kind }

val err_kind_to_string : err_kind -> string

type file_kind = Regular | Directory | Symlink

type stat = {
  st_kind : file_kind;
  st_size : int;
  st_ino : int;
  st_addr : int option;  (** base address when on the shared partition *)
}

(** A fresh file system containing [/], [/shared], [/tmp], [/usr/lib],
    [/etc] and [/home]. *)
val create : unit -> t

(** A process-wide unique id for this file system, so host-side caches
    keyed on paths can tell one simulated machine's FS from another's. *)
val uid : t -> int

(** Mutation epoch: bumped by every path-level mutation ([mkdir],
    [create_file], [write_file], [append_file], [symlink], [hard_link],
    [unlink], [rmdir], [rename]).  Host-side caches of derived data
    (search-path resolution, link plans) validate against it.

    Writes to a mapped file {e segment} deliberately do not bump it —
    mapped stores into shared data are the paper's common case, and
    bumping here would invalidate every link cache on every store (the
    linkers themselves write relocations through module-file segments).
    The consequence is a contract, not an exemption: the generation
    witnesses only the {e namespace}, so any cache whose value depends
    on file {e contents} (decoded templates, recorded symbol addresses)
    must additionally key on or verify the backing segment's
    ([Segment.id], [Segment.version]), which every content write does
    bump.  See {!Hemlock_linker.Link_plan} for the discipline. *)
val generation : t -> int

(** {1 Path-level operations}

    All take paths as strings resolved against [cwd] (default root).
    Symlinks in intermediate components are always followed; final
    components follow symlinks unless stated otherwise. *)

val mkdir : t -> ?cwd:Path.t -> string -> unit

(** [create_file t p] creates an empty regular file (truncates if it
    already exists as a file).  Under [/shared] this allocates an inode
    slot and hence a global address. *)
val create_file : t -> ?cwd:Path.t -> string -> unit

val exists : t -> ?cwd:Path.t -> string -> bool
val is_dir : t -> ?cwd:Path.t -> string -> bool
val stat : t -> ?cwd:Path.t -> string -> stat

(** [lstat] does not follow a final symlink. *)
val lstat : t -> ?cwd:Path.t -> string -> stat

(** Backing segment of a regular file — the mmap interface. *)
val segment_of : t -> ?cwd:Path.t -> string -> Hemlock_vm.Segment.t

val read_file : t -> ?cwd:Path.t -> string -> Bytes.t
val write_file : t -> ?cwd:Path.t -> string -> Bytes.t -> unit

(** [append_file] appends at end of file. *)
val append_file : t -> ?cwd:Path.t -> string -> Bytes.t -> unit

val symlink : t -> ?cwd:Path.t -> target:string -> string -> unit

(** [hard_link t ~existing p] — allowed on the normal partition,
    rejected with [Hard_links_prohibited] when either side is under
    [/shared] (preserving the one-one inode/path mapping). *)
val hard_link : t -> ?cwd:Path.t -> existing:string -> string -> unit

val unlink : t -> ?cwd:Path.t -> string -> unit

(** [rmdir] removes an empty directory. *)
val rmdir : t -> ?cwd:Path.t -> string -> unit

(** [rename t ~src dst] moves a file, symlink or directory.  The
    destination must not exist.  Renames may not cross the shared
    partition boundary (a shared file's identity {e is} its slot
    address; a normal file has none), but within [/shared] the
    kernel's addr->path table is updated, preserving every file's
    address. *)
val rename : t -> ?cwd:Path.t -> src:string -> string -> unit

(** Directory entries, sorted. *)
val readdir : t -> ?cwd:Path.t -> string -> string list

(** {1 The new kernel calls of the paper} *)

(** [addr_of_path t p] is the global base address of a shared file.
    Raises [Error {kind = Not_shared}] for files outside [/shared]. *)
val addr_of_path : t -> ?cwd:Path.t -> string -> int

(** [path_of_addr t a] is the path of the shared file whose address
    range contains [a] — the new syscall used by the SIGSEGV handler. *)
val path_of_addr : t -> int -> string

(** [slot_of_addr_checked t a] is the (slot, in-file offset) for a
    mapped shared address, if any file occupies that slot. *)
val slot_owner : t -> int -> string option

(** Rebuild the in-kernel linear addr->path lookup table by scanning the
    whole shared partition, as done at boot time.  Idempotent; used to
    show the mapping survives "crashes". *)
val rescan_shared : t -> unit

(** {1 Crash consistency}

    Multi-step [/shared] mutations (create = publish slot + insert
    entry; rename = insert dst + remove src; a fresh-file write; module
    creation over in {!Hemlock_linker.Modinst}) are bracketed by an
    {e intent journal}.  The journal is part of [t] — the same place as
    the simulated disk — so it survives a simulated {!Hemlock_util.Fault.Crash};
    an entry still pending at recovery time is exactly an operation that
    began and was never acknowledged.  {!fsck} rolls each pending intent
    forward (when the visible state shows the operation completed) or
    back (removing partial state), then sweeps the slot↔path invariants.

    Interaction with the {!generation} contract: [journal_begin] and
    [journal_end] do {e not} bump the generation — intents carry no
    namespace content, so caches keyed on the generation need not
    invalidate when an intent is filed or retired.  Every {e repair}
    fsck makes goes through the ordinary mutation helpers and therefore
    does bump it, exactly as if a program had performed the fix. *)

type intent =
  | Intent_create of { path : string }
      (** shared file creation: slot published, entry inserted *)
  | Intent_rename of { src : string; dst : string }
      (** shared rename: dst inserted first, src removed second *)
  | Intent_write of { path : string; digest : string }
      (** fresh-file write: [digest] of the intended full contents
          decides replay (contents match) vs. roll back (partial) *)
  | Intent_module of { module_path : string }
      (** module creation: create → sections/relocs → publish magic *)
  | Intent_pageout of { path : string; page : int; digest : string }
      (** pager eviction flushing a dirty page of a mapped shared file:
          [digest] of the page decides completed vs. withdrawn *)

(** File an intent; returns a journal id to retire with {!journal_end}. *)
val journal_begin : t -> intent -> int

(** Retire (acknowledge) a journal entry.  Idempotent. *)
val journal_end : t -> int -> unit

(** Pending entries, oldest first (normally empty). *)
val journal_pending : t -> (int * intent) list

(** [page_writeback t ~path ~seg ~page] is the pager's journalled
    durability barrier for one dirty page of a mapped shared file
    ([seg] {e is} the file's segment, so contents are already in place
    by construction).  Files an {!Intent_pageout}, passes the
    [fs.pageout] fault site, retires the intent.  A transient injected
    failure withdraws the intent and re-raises (the pager aborts that
    eviction); a [Fault.Crash] leaves the intent for {!fsck}, which
    digest-checks the page to decide completed vs. withdrawn. *)
val page_writeback :
  t -> path:string -> seg:Hemlock_vm.Segment.t -> page:int -> unit

type fsck_report = {
  fsck_replayed : int;  (** pending intents rolled forward *)
  fsck_rolled_back : int;  (** pending intents rolled back *)
  fsck_repairs : string list;  (** human-readable repair log *)
  fsck_orphans : string list;
      (** files whose creation was never acknowledged — candidates for
          the janitor's reaping policy, not removed by fsck itself *)
  fsck_clean : bool;  (** nothing replayed, rolled back or repaired *)
}

(** [fsck t] = {!rescan_shared} + journal recovery + invariant sweep
    (every shared file has an in-range slot, no slot claimed by two
    paths, no dangling table entries).  Idempotent: a second run on the
    result always reports [fsck_clean = true]. *)
val fsck : t -> fsck_report

(** Number of free inode slots on the shared partition. *)
val shared_free_slots : t -> int

(** All live (slot, path) pairs, in slot order. *)
val shared_table : t -> (int * string) list

(** The representation currently backing the kernel's /shared address
    index ({!Addr_index.Auto}: linear until the table reaches the
    prototype's 1024 slots, a B-tree from there). *)
val shared_index_backend : t -> Addr_index.backend

(** Cumulative probes spent by address translations ({!path_of_addr},
    {!slot_owner}) — the E12 cost measure, now live in the kernel. *)
val shared_index_probes : t -> int

(** The 64-bit address→segment translation design (§3 "Address Space and
    File System Organization", forward-looking part).

    On the 32-bit prototype every shared file occupies a fixed 1 MB slot
    and the kernel keeps a linear table indexed by slot.  The paper's
    64-bit plan gives {e every} segment a unique system-wide address of
    arbitrary size, with the inodes "linked into a lookup structure —
    most likely a B-tree".  This module implements the translation index
    with both backends so the trade-off can be measured (experiment
    E12) — plus {!Auto}, the kernel's default: linear while the table is
    small, migrating every entry into the {!Btree} once it reaches the
    prototype table's 1024-entry capacity, so [/shared] can scale past
    the fixed slot array. *)

type backend = Linear | Btree_index | Auto

type t

(** [create backend] makes an empty index.  [threshold] (default 1024)
    is the entry count at which an {!Auto} index promotes itself from
    the linear representation to the B-tree; it is ignored by the two
    fixed backends. *)
val create : ?threshold:int -> backend -> t

val backend_to_string : backend -> string

(** The representation currently backing the index: [Linear] or
    [Btree_index] (an {!Auto} index reports whichever side of the
    threshold it is on). *)
val in_use : t -> backend

val size : t -> int

(** [register t ~base ~bytes path] records a segment.  An {!Auto} index
    that reaches its threshold migrates to the B-tree (one-way while
    populated).
    @raise Invalid_argument when it overlaps an existing registration. *)
val register : t -> base:int -> bytes:int -> string -> unit

(** [unregister t ~base] removes the segment registered at [base];
    returns whether one was. *)
val unregister : t -> base:int -> bool

(** [translate t addr] is the (path, offset within segment) for the
    segment containing [addr] — the query the SIGSEGV handler makes.
    Counts one probe per inspected entry in {!probes}. *)
val translate : t -> int -> (string * int) option

(** All registrations as [(base, bytes, path)], sorted by base.  Costs
    no probes — this is the maintenance walk, not the hot path. *)
val to_list : t -> (int * int * string) list

(** Drop every registration (an {!Auto} index restarts linear).  The
    probe counter is preserved. *)
val clear : t -> unit

(** Cumulative number of entries inspected by [translate] calls (the
    deterministic cost measure for E12). *)
val probes : t -> int

val reset_probes : t -> unit

(** Memoized link plans and parse caches — the Hemlock analogue of
    "stable linking": segments are linked into many programs repeatedly,
    so the second process to exec a program replays the recorded
    resolution outcome instead of re-walking scopes.

    Coherence contract (all host-side; the simulated cost model is
    unaffected):
    - decode caches are keyed by the backing segment's
      ([Segment.id], [Segment.version]) — a rewritten file gets a new
      version and so a fresh decode;
    - the plan store is validated against {!Hemlock_sfs.Fs.generation}
      and cleared wholesale on any FS namespace/whole-file mutation;
    - every plan dependency records the base address it was placed at
      {e and} the content identity (segment id, version) of the template
      it was decoded from, and replay verifies both, rejecting the plan
      on mismatch — so a template rewritten in place through a mapping
      (invisible to [Fs.generation]) can never be served a stale plan;
    - the caller additionally keys each plan on a digest of the
      already-instantiated module set, since recorded addresses may
      point into modules that were instantiated by {e earlier} regions
      and therefore appear in no dependency entry;
    - replay re-performs instantiations through the ordinary path, so
      reads, mappings and lock acquisitions (and their counters) recur
      exactly; only symbol scope walks are replaced by the recorded
      dictionary, fed to the same relocation engine. *)

(** Kill switch (set from [HEMLOCK_NO_PLANCACHE] at start-up). *)
val enabled : bool ref

(** [parse_obj ~seg bytes] decodes a template, memoized against [seg]'s
    identity and version.  [bytes] must be [seg]'s current contents. *)
val parse_obj : seg:Hemlock_vm.Segment.t -> Bytes.t -> Hemlock_obj.Objfile.t

(** Same for load images. *)
val parse_aout : seg:Hemlock_vm.Segment.t -> Bytes.t -> Aout.t

(** Drop the calling domain's decode caches (reboot: the kernel's
    host-resident state dies with it). *)
val clear_parse_caches : unit -> unit

(** Drop only the template (HOB2) decode memo — the piece of reboot
    teardown stable linking claims and re-warms from persisted
    symbol-index files.  The image (HEXE) memo models decoded content
    backed by a file that survives the reboot, so reboot keeps it. *)
val clear_obj_cache : unit -> unit

(** [seed_obj ~src obj] pre-warms the template decode cache with a
    template deserialized from a stable-link symbol-index file, keyed by
    the backing segment identity [src] = (id, version) it was verified
    against.  No-op when the plan cache is disabled. *)
val seed_obj : src:int * int -> Hemlock_obj.Objfile.t -> unit

(** One instantiation performed during a recorded region. *)
type 'scope dep = {
  dep_located : string;
  dep_public : bool;
  dep_base : int;
  dep_src : int * int;
      (** template content identity at record time (see
          {!Hemlock_linker.Modinst.t.inst_src}) *)
  dep_parent : 'scope;
}

type 'scope plan = {
  plan_deps : 'scope dep list;  (** in cold-path chronological order *)
  plan_addrs : (string, int) Hashtbl.t;  (** resolved symbol addresses *)
}

type 'scope store

val create_store : unit -> 'scope store

(** [lookup store ~fs key] returns a live plan, clearing the store first
    if [fs] has mutated since the plans were recorded. *)
val lookup : 'scope store -> fs:Hemlock_sfs.Fs.t -> string -> 'scope plan option

val record : 'scope store -> fs:Hemlock_sfs.Fs.t -> string -> 'scope plan -> unit

(** All live (key, plan) pairs, sorted by key — the stable-link sync
    walks this to persist the store.  Validates against [fs] first, so
    only plans the store would actually serve are returned.  Empty when
    the plan cache is disabled. *)
val entries : 'scope store -> fs:Hemlock_sfs.Fs.t -> (string * 'scope plan) list

(** Drop every cached plan and forget the generation (reboot). *)
val reset_store : 'scope store -> unit

(** Bump the plan observability counters. *)
val hit : unit -> unit

val miss : unit -> unit

module Objfile = Hemlock_obj.Objfile
module Insn = Hemlock_isa.Insn
module Reg = Hemlock_isa.Reg
module Stats = Hemlock_util.Stats

exception Link_error of string

type sink = { get32 : int -> int; set32 : int -> int -> unit }

type veneer_pool = {
  vp_base : int;
  vp_cap : int;
  vp_get_next : unit -> int;
  vp_set_next : int -> unit;
}

let veneer_slot_bytes = 16

(* atomic: parallel quanta may link concurrently across domains *)
let veneer_count = Atomic.make 0

let veneers_created () = Atomic.get veneer_count

let reset_veneer_count () = Atomic.set veneer_count 0

let errf fmt = Printf.ksprintf (fun s -> raise (Link_error s)) fmt

let write_veneer sink addr ~target =
  let hi = (target lsr 16) land 0xFFFF in
  let lo = target land 0xFFFF in
  sink.set32 addr (Insn.encode (Insn.Lui (Reg.at, hi)));
  sink.set32 (addr + 4) (Insn.encode (Insn.Ori (Reg.at, Reg.at, lo)));
  sink.set32 (addr + 8) (Insn.encode (Insn.Jr Reg.at));
  sink.set32 (addr + 12) (Insn.encode Insn.nop)

(* Decode a previously-written veneer's target, to reuse slots. *)
let veneer_target sink addr =
  match (Insn.decode (sink.get32 addr), Insn.decode (sink.get32 (addr + 4))) with
  | Insn.Lui (_, hi), Insn.Ori (_, _, lo) -> Some ((hi lsl 16) lor lo)
  | _, _ | (exception Failure _) -> None

let alloc_veneer sink pool ~target =
  let next = pool.vp_get_next () in
  let rec find_existing i =
    if i >= next then None
    else
      let addr = pool.vp_base + (i * veneer_slot_bytes) in
      if veneer_target sink addr = Some target then Some addr else find_existing (i + 1)
  in
  match find_existing 0 with
  | Some addr -> addr
  | None ->
    if next >= pool.vp_cap then errf "veneer pool exhausted (%d slots)" pool.vp_cap;
    let addr = pool.vp_base + (next * veneer_slot_bytes) in
    write_veneer sink addr ~target;
    pool.vp_set_next (next + 1);
    Atomic.incr veneer_count;
    addr

let apply sink ~at ~kind ~value ~gp ~veneer =
  (Stats.cur ()).relocs_applied <- (Stats.cur ()).relocs_applied + 1;
  let word = sink.get32 at in
  match kind with
  | Objfile.Abs32 -> sink.set32 at value
  | Objfile.Hi16 ->
    sink.set32 at ((word land lnot 0xFFFF) lor ((value lsr 16) land 0xFFFF))
  | Objfile.Lo16 -> sink.set32 at ((word land lnot 0xFFFF) lor (value land 0xFFFF))
  | Objfile.Jump26 ->
    let target =
      if Insn.jump_in_range ~pc:at ~target:value then value
      else
        match veneer with
        | Some pool ->
          let v = alloc_veneer sink pool ~target:value in
          if not (Insn.jump_in_range ~pc:at ~target:v) then
            errf "veneer at 0x%08x itself out of range of jump at 0x%08x" v at;
          v
        | None -> errf "jump at 0x%08x to 0x%08x out of range and no veneer pool" at value
    in
    sink.set32 at ((word land lnot 0x3FF_FFFF) lor Insn.jump_field ~target)
  | Objfile.Gprel16 -> (
    match gp with
    | None -> errf "GPREL16 relocation at 0x%08x in a module with no $gp base" at
    | Some gp ->
      let disp = value - gp in
      if disp < -0x8000 || disp > 0x7FFF then
        errf
          "GPREL16 displacement %d out of range at 0x%08x (sparse address space: \
           compile with gp disabled)"
          disp at;
      sink.set32 at ((word land lnot 0xFFFF) lor (disp land 0xFFFF)))

let link_pass ~obj ~bases ~resolve ~already ~mark sink ~gp ~veneer =
  let pending = ref [] in
  List.iteri
    (fun i r ->
      if not (already i) then
        match resolve r.Objfile.rel_symbol with
        | Some sym_addr ->
          (Stats.cur ()).symbols_resolved <- (Stats.cur ()).symbols_resolved + 1;
          let at = bases r.Objfile.rel_section + r.Objfile.rel_offset in
          apply sink ~at ~kind:r.Objfile.rel_kind
            ~value:(sym_addr + r.Objfile.rel_addend)
            ~gp ~veneer;
          mark i
        | None -> pending := i :: !pending)
    obj.Objfile.relocs;
  List.rev !pending

module Fs = Hemlock_sfs.Fs
module Path = Hemlock_sfs.Path

type ctx = {
  fs : Fs.t;
  cwd : Path.t;
  env : (string * string) list;
}

let default_dirs = [ "/usr/lib"; "/shared/lib" ]

let cache_enabled = ref (Sys.getenv_opt "HEMLOCK_NO_SYMHASH" = None)

(* Splitting is a pure function of the raw string, so parse each
   distinct LD_LIBRARY_PATH value once per process lifetime. *)
(* per-domain: memoisation only, safe to rebuild per domain *)
let llp_memo_key : (string, string list) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let split_llp v = List.filter (fun d -> d <> "") (String.split_on_char ':' v)

let ld_library_path env =
  match List.assoc_opt "LD_LIBRARY_PATH" env with
  | None | Some "" -> []
  | Some v ->
    if not !cache_enabled then split_llp v
    else (
      let llp_memo = Domain.DLS.get llp_memo_key in
      match Hashtbl.find_opt llp_memo v with
      | Some dirs -> dirs
      | None ->
        if Hashtbl.length llp_memo > 256 then Hashtbl.reset llp_memo;
        let dirs = split_llp v in
        Hashtbl.add llp_memo v dirs;
        dirs)

let static_dirs ctx ~cli_dirs =
  (Path.to_string ctx.cwd :: cli_dirs) @ ld_library_path ctx.env @ default_dirs

let runtime_dirs ctx ~recorded = ld_library_path ctx.env @ recorded

let has_slash name = String.contains name '/'

(* Path-resolution cache.  [locate] is a pure function of the FS
   namespace, the cwd, the directory list and the name: nothing in it
   touches the cost counters, so serving a memoized answer (including a
   negative one) is invisible to the simulated machine.  Entries are
   validated against the owning FS's mutation generation — any
   write/create/rename anywhere invalidates conservatively. *)
let locate_cache : (int * string * string * string, int * string option) Hashtbl.t =
  Hashtbl.create 256

let clear_locate_cache () =
  Hashtbl.reset locate_cache;
  Hashtbl.reset (Domain.DLS.get llp_memo_key)

let locate_uncached ctx ~dirs name =
  let exists_file p =
    Fs.exists ctx.fs ~cwd:ctx.cwd p
    &&
    match (Fs.stat ctx.fs ~cwd:ctx.cwd p).Fs.st_kind with
    | Fs.Regular -> true
    | Fs.Directory | Fs.Symlink -> false
  in
  if has_slash name then
    if exists_file name then Some (Path.to_string (Path.of_string ~cwd:ctx.cwd name))
    else None
  else
    let try_dir dir =
      let candidate = if dir = "/" then "/" ^ name else dir ^ "/" ^ name in
      if exists_file candidate then
        (* Return the lexical location (symlinks not chased): public
           modules are created next to the template *as found*. *)
        Some (Path.to_string (Path.of_string ~cwd:ctx.cwd candidate))
      else None
    in
    List.find_map try_dir dirs

(* Length-prefixed join: [dirs] components may themselves contain ':'
   (cli_dirs, a template's own search path), so a separator-based
   encoding would let ["a:b"] and ["a"; "b"] alias one cache entry. *)
let dirs_key dirs =
  String.concat ""
    (List.map (fun d -> string_of_int (String.length d) ^ ":" ^ d) dirs)

let locate ctx ~dirs name =
  if not !cache_enabled then locate_uncached ctx ~dirs name
  else begin
    let gen = Fs.generation ctx.fs in
    let key = (Fs.uid ctx.fs, Path.to_string ctx.cwd, dirs_key dirs, name) in
    match Hashtbl.find_opt locate_cache key with
    | Some (g, result) when g = gen ->
      Hemlock_util.(Stats.cur ()).search_cache_hits <-
        Hemlock_util.(Stats.cur ()).search_cache_hits + 1;
      result
    | Some _ | None ->
      if Hashtbl.length locate_cache > 8192 then Hashtbl.reset locate_cache;
      let result = locate_uncached ctx ~dirs name in
      Hashtbl.replace locate_cache key (gen, result);
      result
  end

module Objfile = Hemlock_obj.Objfile
module Asm = Hemlock_isa.Asm
module Fs = Hemlock_sfs.Fs
module Codec = Hemlock_util.Codec
module Stats = Hemlock_util.Stats

exception Link_error = Reloc_engine.Link_error

let errf fmt = Printf.ksprintf (fun s -> raise (Link_error s)) fmt

type spec = { sp_name : string; sp_class : Sharing.t }

let crt0_source =
  String.concat "\n"
    [
      "        .text";
      "        .globl _start";
      "_start:";
      "        la   $gp, __gp_base";
      "        li   $v0, " ^ string_of_int Hemlock_os.Sysno.ldl_run;
      "        syscall";
      "        jal  main";
      "        move $a0, $v0";
      "        li   $v0, " ^ string_of_int Hemlock_os.Sysno.exit;
      "        syscall";
      "";
    ]

let align4 n = (n + 3) land lnot 3
let align16 n = (n + 15) land lnot 15

(* A static private module placed in the image. *)
type placed = {
  pl_obj : Objfile.t;
  pl_text : int;  (** image offsets *)
  pl_data : int;
  pl_bss : int;
}

let load_template ctx path =
  match Fs.read_file ctx.Search.fs ~cwd:ctx.Search.cwd path with
  | bytes -> (
    match Objfile.parse bytes with
    | obj -> obj
    | exception Failure msg -> errf "bad template %s: %s" path msg)
  | exception Fs.Error { kind; _ } ->
    errf "cannot read template %s: %s" path (Fs.err_kind_to_string kind)

let module_file_of_template located =
  if Filename.check_suffix located ".o" then Filename.chop_suffix located ".o"
  else errf "public module template %s does not end in .o" located

(* Create-or-find a static public module; returns (module_path, instance). *)
let ensure_static_public ctx warnings located =
  let obj = load_template ctx located in
  let module_path = module_file_of_template located in
  if not (Fs.exists ctx.Search.fs module_path) then begin
    ignore (Modinst.create_public_file ctx ~template_path:located ~obj ~module_path);
    let unresolved = Objfile.undefined obj in
    if unresolved <> [] then
      warnings :=
        Printf.sprintf "public module %s created with unresolved references: %s"
          module_path (String.concat ", " unresolved)
        :: !warnings
  end;
  let scope =
    {
      Modinst.sc_label = module_path;
      sc_modules = obj.Objfile.own_modules;
      sc_search = obj.Objfile.own_search_path;
      sc_parent = None;
    }
  in
  (module_path, Modinst.public_instance ctx ~module_path ~scope)

let link ctx ?(cli_dirs = []) ?(duplicate_policy = `Error) ~specs ~output () =
  let warnings = ref [] in
  let dirs = Search.static_dirs ctx ~cli_dirs in
  let locate_static name =
    match Search.locate ctx ~dirs name with
    | Some p -> p
    | None -> errf "cannot find static module %s" name
  in
  (* crt0 first, then the static private modules in command-line order. *)
  let crt0 = Asm.assemble ~name:"crt0.o" crt0_source in
  let statics_priv =
    List.filter_map
      (fun s ->
        match s.sp_class with
        | Sharing.Static_private -> Some (load_template ctx (locate_static s.sp_name))
        | Sharing.Static_public | Sharing.Dynamic_private | Sharing.Dynamic_public -> None)
      specs
  in
  let image_objs = crt0 :: statics_priv in
  (* Static public modules: create the missing ones, collect exports. *)
  let static_pubs =
    List.filter_map
      (fun s ->
        match s.sp_class with
        | Sharing.Static_public ->
          let located = locate_static s.sp_name in
          let module_path, inst = ensure_static_public ctx warnings located in
          Some
            ( { Aout.sp_template = located; sp_module = module_path; sp_base = inst.Modinst.inst_base },
              inst )
        | Sharing.Static_private | Sharing.Dynamic_private | Sharing.Dynamic_public -> None)
      specs
  in
  (* Dynamic modules: record descriptors; warn when not yet findable. *)
  let dynamics =
    List.filter_map
      (fun s ->
        match s.sp_class with
        | Sharing.Dynamic_private | Sharing.Dynamic_public ->
          if Search.locate ctx ~dirs s.sp_name = None then
            warnings :=
              Printf.sprintf "dynamic module %s does not exist yet" s.sp_name :: !warnings;
          Some { Aout.dd_name = s.sp_name; dd_class = s.sp_class }
        | Sharing.Static_private | Sharing.Static_public -> None)
      specs
  in
  (* ---- image layout: texts, veneer pool, datas, bsses ---- *)
  let text_total = List.fold_left (fun acc o -> acc + align4 (Bytes.length o.Objfile.text)) 0 image_objs in
  let veneer_off = align16 text_total in
  let veneer_cap =
    8
    + List.fold_left
        (fun acc o ->
          acc
          + List.length
              (List.filter (fun r -> r.Objfile.rel_kind = Objfile.Jump26) o.Objfile.relocs))
        0 image_objs
  in
  let data_start = veneer_off + (veneer_cap * Reloc_engine.veneer_slot_bytes) in
  let place (next_text, next_data) obj =
    let pl_text = next_text in
    let pl_data = next_data in
    ( (next_text + align4 (Bytes.length obj.Objfile.text),
       next_data + align4 (Bytes.length obj.Objfile.data)),
      { pl_obj = obj; pl_text; pl_data; pl_bss = 0 } )
  in
  let (_, data_end), placed = List.fold_left_map place (0, data_start) image_objs in
  let bss_start = align4 data_end in
  let placed, bss_end =
    let f (acc, next) pl =
      (( { pl with pl_bss = next } :: acc, next + align4 pl.pl_obj.Objfile.bss_size ))
    in
    let acc, bss_end = List.fold_left f ([], bss_start) placed in
    (List.rev acc, bss_end)
  in
  let gp_off = data_start in
  (* ---- merged global symbol table ---- *)
  let globals = Hashtbl.create 64 in
  let add_global pl sym =
    let off =
      (match sym.Objfile.sym_section with
      | Objfile.Text -> pl.pl_text
      | Objfile.Data -> pl.pl_data
      | Objfile.Bss -> pl.pl_bss)
      + sym.Objfile.sym_offset
    in
    match Hashtbl.find_opt globals sym.Objfile.sym_name with
    | None -> Hashtbl.replace globals sym.Objfile.sym_name off
    | Some _ -> (
      match duplicate_policy with
      | `Error ->
        errf "symbol %s multiply defined (in %s)" sym.Objfile.sym_name
          pl.pl_obj.Objfile.obj_name
      | `First ->
        warnings :=
          Printf.sprintf "symbol %s multiply defined; keeping the first" sym.Objfile.sym_name
          :: !warnings)
  in
  List.iter (fun pl -> List.iter (add_global pl) (Objfile.exports pl.pl_obj)) placed;
  Hashtbl.replace globals "__gp_base" gp_off;
  (* ---- build image bytes (text..data; bss implicit) ---- *)
  let image = Bytes.make bss_start '\000' in
  List.iter
    (fun pl ->
      Bytes.blit pl.pl_obj.Objfile.text 0 image pl.pl_text (Bytes.length pl.pl_obj.Objfile.text);
      Bytes.blit pl.pl_obj.Objfile.data 0 image pl.pl_data (Bytes.length pl.pl_obj.Objfile.data))
    placed;
  let base = Aout.image_base in
  let sink =
    {
      Reloc_engine.get32 = (fun addr -> Codec.get_u32 image (addr - base));
      set32 = (fun addr v -> Codec.set_u32 image (addr - base) v);
    }
  in
  let veneer_next = ref 0 in
  let pool =
    {
      Reloc_engine.vp_base = base + veneer_off;
      vp_cap = veneer_cap;
      vp_get_next = (fun () -> !veneer_next);
      vp_set_next = (fun n -> veneer_next := n);
    }
  in
  (* Resolve: module-own symbols, then image globals, then public exports. *)
  let pub_export name = List.find_map (fun (_, inst) -> Modinst.find_export inst name) static_pubs in
  let pending = ref [] in
  let link_module pl =
    let bases = function
      | Objfile.Text -> base + pl.pl_text
      | Objfile.Data -> base + pl.pl_data
      | Objfile.Bss -> base + pl.pl_bss
    in
    let own name =
      Option.map
        (fun sym ->
          bases sym.Objfile.sym_section + sym.Objfile.sym_offset)
        (Objfile.find_symbol pl.pl_obj name)
    in
    let resolve name =
      match own name with
      | Some a -> Some a
      | None -> (
        match Hashtbl.find_opt globals name with
        | Some off -> Some (base + off)
        | None -> pub_export name)
    in
    let gp = if pl.pl_obj.Objfile.uses_gp then Some (base + gp_off) else None in
    let left =
      Reloc_engine.link_pass ~obj:pl.pl_obj ~bases ~resolve
        ~already:(fun _ -> false)
        ~mark:(fun _ -> ())
        sink ~gp ~veneer:(Some pool)
    in
    (* Retain unresolved relocations, rebased to image coordinates. *)
    List.iter
      (fun i ->
        let r = List.nth pl.pl_obj.Objfile.relocs i in
        let section_off =
          match r.Objfile.rel_section with
          | Objfile.Text -> pl.pl_text
          | Objfile.Data -> pl.pl_data
          | Objfile.Bss -> pl.pl_bss
        in
        pending :=
          { r with Objfile.rel_section = Objfile.Text; rel_offset = section_off + r.Objfile.rel_offset }
          :: !pending)
      left
  in
  List.iter link_module placed;
  (Stats.cur ()).modules_linked <- (Stats.cur ()).modules_linked + List.length placed;
  (* ---- emit ---- *)
  let text_and_pool = Bytes.sub image 0 data_start in
  let data_bytes = Bytes.sub image data_start (bss_start - data_start) in
  let entry_off =
    match Hashtbl.find_opt globals "_start" with
    | Some off -> off
    | None -> errf "no _start in image (crt0 missing?)"
  in
  let aout =
    {
      Aout.entry_off;
      text = text_and_pool;
      data = data_bytes;
      bss_size = bss_end - bss_start;
      veneer_off;
      veneer_cap;
      symbols = Hashtbl.fold (fun n off acc -> (n, off) :: acc) globals [];
      pending = List.rev !pending;
      dynamics;
      static_pubs = List.map fst static_pubs;
      static_dirs = dirs;
      gp_base_off = Some gp_off;
    }
  in
  Fs.write_file ctx.Search.fs ~cwd:ctx.Search.cwd output (Aout.serialize aout);
  List.rev !warnings

let embed_metadata ctx ~template ~modules ~search_path =
  let obj = load_template ctx template in
  let obj = { obj with Objfile.own_modules = modules; own_search_path = search_path } in
  Fs.write_file ctx.Search.fs ~cwd:ctx.Search.cwd template (Objfile.serialize obj)

(** Stable linking: the persistence layer under [/shared/.stable].

    The PR 3 link-plan and symbol caches are kernel-resident and die
    with [Kernel.reboot]; this module writes them into the shared
    partition itself — link plans keyed by the full plan identity, and
    HOB2 symbol indexes keyed by template content identity — so the
    first exec after a reboot replays persisted plans instead of
    re-walking scopes.

    Files are content-addressed (the name carries a digest of the key),
    so persisting is either a skip (the file already holds these bytes)
    or a fresh-file write through the journalled [Fs] path — crash
    during persist is all-or-nothing under [Fs.fsck], covered by the
    crash sweep via the [fs.stable] fault site.  Loads are host-side
    only (segment reads, never billed); a corrupt, truncated or stale
    file is reaped on its first failed load.  See DESIGN.md, "Stable
    linking". *)

(** Kill switch (set from [HEMLOCK_NO_STABLELINK] at start-up). *)
val enabled : bool ref

(** The reserved namespace, ["/shared/.stable"]. *)
val dir : string

(** Create {!dir} if missing. *)
val ensure_dir : Hemlock_sfs.Fs.t -> unit

(** Path of the plan file for a plan key (content-addressed). *)
val plan_path : string -> string

(** Path of the symbol-index file for a template (content-addressed by
    located path and template (segment id, version)). *)
val obj_path : located:string -> src:int * int -> string

(** [persist_plan fs ~key plan] writes the plan file unless it already
    exists; [true] iff the file exists afterwards.  An injected error
    or FS failure degrades to [false]; a {!Hemlock_util.Fault.Crash}
    propagates (the machine stopped). *)
val persist_plan :
  Hemlock_sfs.Fs.t -> key:string -> Modinst.scope Link_plan.plan -> bool

(** Same for a template's serialized HOB2 symbol index. *)
val persist_obj :
  Hemlock_sfs.Fs.t -> located:string -> src:int * int -> Hemlock_obj.Objfile.t -> bool

(** One-pass sweep of {!dir}: decode and digest-verify every plan file,
    reaping the ones that no longer parse.  Runs once per boot (see
    [Ldl.seed_stable]); the caller serves lookups from the result and
    counts each consumed plan with {!note_load}.  Unbilled. *)
val load_plans :
  Hemlock_sfs.Fs.t -> (string * Modinst.scope Link_plan.plan) list

(** Count one consumed stable plan ([stable_loads]). *)
val note_load : unit -> unit

(** [load_plan fs ~key] loads and digest-verifies the persisted plan,
    or [None] — reaping the file and counting a reject if it exists
    but is corrupt or keyed differently.  Unbilled (segment read). *)
val load_plan :
  Hemlock_sfs.Fs.t -> key:string -> Modinst.scope Link_plan.plan option

(** [reject fs ~key] reaps the plan file after a failed replay (the
    persisted plan verified but no longer matches the live world). *)
val reject : Hemlock_sfs.Fs.t -> key:string -> unit

(** Warm the per-domain template decode and export-index caches from
    every persisted symbol index whose backing template still has the
    recorded content identity; stale or corrupt index files are reaped.
    Unbilled. *)
val seed_indexes : Hemlock_sfs.Fs.t -> unit

(** The deterministic bytes {!persist_raw} writes for [key] — exposed
    so the crash sweep's oracle can predict post-recovery contents. *)
val raw_blob : key:string -> Bytes.t

(** Crash-sweep entry point: persist a trivial plan blob for [key]
    through the ordinary write path, raising through on injected
    failures and crashes. *)
val persist_raw : Hemlock_sfs.Fs.t -> key:string -> unit

(** Whether a segment holds a well-formed stable-link file (plan or
    index) — the janitor keeps such files and reaps the rest of
    [/shared/.stable]. *)
val valid_segment : Hemlock_vm.Segment.t -> bool

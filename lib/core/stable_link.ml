module Fs = Hemlock_sfs.Fs
module Segment = Hemlock_vm.Segment
module Objfile = Hemlock_obj.Objfile
module Codec = Hemlock_util.Codec
module Stats = Hemlock_util.Stats
module Fault = Hemlock_util.Fault

(* Stable linking: link plans and symbol indexes persisted into the
   shared partition itself, under [/shared/.stable], so the caches the
   kernel loses at reboot can be rebuilt from files instead of from
   cold scope walks.

   Persistence discipline:
   - files are {e content-addressed}: the file name carries a digest of
     the plan key (resp. the template identity), so an existing file
     already holds exactly the bytes we would write.  Persisting is
     therefore always either a skip or a {e fresh-file} write — which
     the [Fs] intent journal makes all-or-nothing — and never an
     unlink-then-rewrite with a torn window in between;
   - every file embeds a digest of its own body; loads verify it (plus
     magic, version and the embedded key) and {e reap} the file on any
     mismatch, so one corrupt or stale file costs exactly one failed
     load;
   - loads go through [Fs.segment_of]/[Segment.contents], not
     [Fs.read_file]: like every other host-side cache they must be
     invisible to the simulated cost model.  Only the persist writes
     are billed, at the explicit sync point. *)

let enabled = ref (Sys.getenv_opt "HEMLOCK_NO_STABLELINK" = None)

let dir = "/shared/.stable"

let plan_magic = "HSPL"
let obj_magic = "HSOB"
let version = 1

let plan_path key = dir ^ "/plan-" ^ Digest.to_hex (Digest.string key)

let obj_path ~located ~src:(sid, sver) =
  dir
  ^ "/obj-"
  ^ Digest.to_hex (Digest.string (Printf.sprintf "%s\x01%d\x01%d" located sid sver))

let bump_persists () = (Stats.cur ()).stable_persists <- (Stats.cur ()).stable_persists + 1
let bump_loads () = (Stats.cur ()).stable_loads <- (Stats.cur ()).stable_loads + 1
let bump_rejects () = (Stats.cur ()).stable_rejects <- (Stats.cur ()).stable_rejects + 1

(* ----- wire format --------------------------------------------------------

   header: magic(4) | version u8 | md5(body) raw 16 | body

   plan body:   str key
                u32 ndeps { str located | u8 public | u32 base
                            | i32 src_id | i32 src_ver | scope }
                u32 naddrs { str sym | u32 addr }   (sorted by sym)
   scope:       str label | u16 nmodules strs | u16 nsearch strs
                | u8 has_parent [ scope ]
   obj body:    str located | i32 src_id | i32 src_ver
                | u32 len | HOB2 bytes *)

(* [Segment.version] can be -1-free in practice, but [Modinst.inst_src]
   is (-1, -1) for objects that never came from a file; keep the
   encoding total over ints that fit 32 bits signed. *)
let w_i32 w v = Codec.Writer.u32 w (v land 0xFFFF_FFFF)

let r_i32 r =
  let v = Codec.Reader.u32 r in
  if v > 0x7FFF_FFFF then v - 0x1_0000_0000 else v

let rec w_scope w s =
  Codec.Writer.str w s.Modinst.sc_label;
  Codec.Writer.u16 w (List.length s.Modinst.sc_modules);
  List.iter (Codec.Writer.str w) s.Modinst.sc_modules;
  Codec.Writer.u16 w (List.length s.Modinst.sc_search);
  List.iter (Codec.Writer.str w) s.Modinst.sc_search;
  match s.Modinst.sc_parent with
  | Some p ->
    Codec.Writer.u8 w 1;
    w_scope w p
  | None -> Codec.Writer.u8 w 0

let rec r_scope r =
  let sc_label = Codec.Reader.str r in
  let n = Codec.Reader.u16 r in
  let ms = ref [] in
  for _ = 1 to n do
    ms := Codec.Reader.str r :: !ms
  done;
  let n = Codec.Reader.u16 r in
  let ds = ref [] in
  for _ = 1 to n do
    ds := Codec.Reader.str r :: !ds
  done;
  let sc_parent = if Codec.Reader.u8 r = 1 then Some (r_scope r) else None in
  {
    Modinst.sc_label;
    sc_modules = List.rev !ms;
    sc_search = List.rev !ds;
    sc_parent;
  }

let seal magic body =
  let w = Codec.Writer.create () in
  String.iter (fun c -> Codec.Writer.u8 w (Char.code c)) magic;
  Codec.Writer.u8 w version;
  Codec.Writer.bytes w (Bytes.of_string (Digest.bytes body));
  Codec.Writer.bytes w body;
  Codec.Writer.contents w

(* Strip and verify the header; [Failure] on anything unexpected. *)
let unseal magic bytes =
  let r = Codec.Reader.create bytes in
  let m = Bytes.to_string (Codec.Reader.bytes r 4) in
  if not (String.equal m magic) then failwith "stable: bad magic";
  if Codec.Reader.u8 r <> version then failwith "stable: bad version";
  let digest = Bytes.to_string (Codec.Reader.bytes r 16) in
  let body = Codec.Reader.bytes r (Bytes.length bytes - Codec.Reader.pos r) in
  if not (String.equal digest (Digest.bytes body)) then failwith "stable: bad digest";
  body

let encode_plan ~key (plan : Modinst.scope Link_plan.plan) =
  let w = Codec.Writer.create () in
  Codec.Writer.str w key;
  Codec.Writer.u32 w (List.length plan.Link_plan.plan_deps);
  List.iter
    (fun d ->
      Codec.Writer.str w d.Link_plan.dep_located;
      Codec.Writer.u8 w (if d.Link_plan.dep_public then 1 else 0);
      Codec.Writer.u32 w d.Link_plan.dep_base;
      let sid, sver = d.Link_plan.dep_src in
      w_i32 w sid;
      w_i32 w sver;
      w_scope w d.Link_plan.dep_parent)
    plan.Link_plan.plan_deps;
  let addrs =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (Hashtbl.fold (fun s a acc -> (s, a) :: acc) plan.Link_plan.plan_addrs [])
  in
  Codec.Writer.u32 w (List.length addrs);
  List.iter
    (fun (s, a) ->
      Codec.Writer.str w s;
      Codec.Writer.u32 w a)
    addrs;
  seal plan_magic (Codec.Writer.contents w)

let decode_plan bytes =
  let r = Codec.Reader.create (unseal plan_magic bytes) in
  let key = Codec.Reader.str r in
  let ndeps = Codec.Reader.u32 r in
  let deps = ref [] in
  for _ = 1 to ndeps do
    let dep_located = Codec.Reader.str r in
    let dep_public = Codec.Reader.u8 r = 1 in
    let dep_base = Codec.Reader.u32 r in
    let sid = r_i32 r in
    let sver = r_i32 r in
    let dep_parent = r_scope r in
    deps :=
      { Link_plan.dep_located; dep_public; dep_base; dep_src = (sid, sver); dep_parent }
      :: !deps
  done;
  let naddrs = Codec.Reader.u32 r in
  let addrs = Hashtbl.create (max 16 naddrs) in
  for _ = 1 to naddrs do
    let s = Codec.Reader.str r in
    let a = Codec.Reader.u32 r in
    Hashtbl.replace addrs s a
  done;
  (key, { Link_plan.plan_deps = List.rev !deps; plan_addrs = addrs })

let encode_obj ~located ~src:(sid, sver) obj =
  let w = Codec.Writer.create () in
  Codec.Writer.str w located;
  w_i32 w sid;
  w_i32 w sver;
  let payload = Objfile.serialize ~with_index:true obj in
  Codec.Writer.u32 w (Bytes.length payload);
  Codec.Writer.bytes w payload;
  seal obj_magic (Codec.Writer.contents w)

let decode_obj bytes =
  let r = Codec.Reader.create (unseal obj_magic bytes) in
  let located = Codec.Reader.str r in
  let sid = r_i32 r in
  let sver = r_i32 r in
  let payload = Codec.Reader.bytes r (Codec.Reader.u32 r) in
  (located, (sid, sver), payload)

(* ----- persisting ---------------------------------------------------------- *)

let ensure_dir fs = if not (Fs.exists fs dir) then Fs.mkdir fs dir

(* The one write point.  Content addressing means an existing file is
   already the file we want; a missing file gets a fresh journalled
   write, which [Fs.fsck] rolls back wholesale after a crash — there is
   no partially-persisted state a recovery can observe.  Raises
   through: callers decide which failures degrade to "not persisted". *)
let persist_bytes fs ~path bytes =
  Fault.hit "fs.stable";
  if not (Fs.exists fs path) then Fs.write_file fs path bytes

(* A too-long key cannot use the u16 string encoding; plans are keyed
   by digested program identities in practice, so just skip such. *)
let persistable_key key = String.length key <= 0xFFFF

let persist_plan fs ~key plan =
  if not (persistable_key key) then false
  else begin
    let path = plan_path key in
    if Fs.exists fs path then true
    else
      match persist_bytes fs ~path (encode_plan ~key plan) with
      | () ->
        bump_persists ();
        true
      | exception Fault.Injected _ -> false
      | exception Fs.Error _ -> false
  end

let persist_obj fs ~located ~src obj =
  let path = obj_path ~located ~src in
  if Fs.exists fs path then true
  else
    match persist_bytes fs ~path (encode_obj ~located ~src obj) with
    | () ->
      bump_persists ();
      true
    | exception Fault.Injected _ -> false
    | exception Fs.Error _ -> false

(* ----- loading -------------------------------------------------------------- *)

let reap fs path =
  (try Fs.unlink fs path with Fs.Error _ | Fault.Injected _ -> ());
  bump_rejects ()

let reject fs ~key = reap fs (plan_path key)

(* Loading is split in two so the decode/verify work runs once per
   boot, not once per planned region: [load_plans] is the one-pass
   directory sweep that decodes and digest-verifies every plan file
   (reaping the ones that no longer parse), and the caller serves
   lookups from the result, counting consumption with [note_load]. *)
let note_load = bump_loads

let load_plans fs =
  match Fs.readdir fs dir with
  | exception Fs.Error _ -> []
  | names ->
    List.fold_left
      (fun acc name ->
        if String.length name >= 5 && String.sub name 0 5 = "plan-" then begin
          let path = dir ^ "/" ^ name in
          match Fs.segment_of fs path with
          | exception Fs.Error _ -> acc
          | seg -> (
            match decode_plan (Segment.contents seg) with
            | key, plan -> (key, plan) :: acc
            | exception Failure _ ->
              reap fs path;
              acc)
        end
        else acc)
      [] names

let load_plan fs ~key =
  match Fs.segment_of fs (plan_path key) with
  | exception Fs.Error _ -> None
  | seg -> (
    match decode_plan (Segment.contents seg) with
    | stored_key, plan when String.equal stored_key key ->
      bump_loads ();
      Some plan
    | _ ->
      reap fs (plan_path key);
      None
    | exception Failure _ ->
      reap fs (plan_path key);
      None)

(* Seed the (host-side) template decode and export-index caches from
   every persisted symbol index whose backing template still has the
   recorded content identity.  Parsing the embedded HOB2 installs the
   export index in the per-domain memo keyed by the parsed object's own
   symbol list, and [Link_plan.seed_obj] makes that parsed object the
   one future decodes of the template return — so both caches are warm
   for exactly the object replay will use. *)
let seed_indexes fs =
  match Fs.readdir fs dir with
  | exception Fs.Error _ -> ()
  | names ->
    List.iter
      (fun name ->
        if String.length name >= 4 && String.sub name 0 4 = "obj-" then begin
          let path = dir ^ "/" ^ name in
          match Fs.segment_of fs path with
          | exception Fs.Error _ -> ()
          | seg -> (
            match decode_obj (Segment.contents seg) with
            | exception Failure _ -> reap fs path
            | located, (sid, sver), payload -> (
              let live =
                match Fs.segment_of fs located with
                | tseg -> Segment.id tseg = sid && Segment.version tseg = sver
                | exception Fs.Error _ -> false
              in
              if not live then reap fs path
              else
                match Objfile.parse payload with
                | obj ->
                  Link_plan.seed_obj ~src:(sid, sver) obj;
                  bump_loads ()
                | exception Failure _ -> reap fs path))
        end)
      names

(* ----- hooks for the crash sweep and the janitor ----------------------------- *)

(* A deterministic plan blob for [key] — what the crash sweep writes so
   its oracle can predict the exact post-recovery file contents. *)
let raw_blob ~key =
  let addrs = Hashtbl.create 1 in
  Hashtbl.replace addrs "k" (String.length key);
  encode_plan ~key { Link_plan.plan_deps = []; plan_addrs = addrs }

let persist_raw fs ~key =
  ensure_dir fs;
  persist_bytes fs ~path:(plan_path key) (raw_blob ~key)

let valid_segment seg =
  match
    let bytes = Segment.contents seg in
    if Bytes.length bytes >= 4 && Bytes.to_string (Bytes.sub bytes 0 4) = obj_magic then
      ignore (decode_obj bytes)
    else ignore (decode_plan bytes)
  with
  | () -> true
  | exception _ -> false

(** Module instances, linking scopes, and the on-segment header of
    created public modules.

    A {e template} is a [.o] file; an {e instance} is a module placed at
    an address: either a fresh private copy in the process's arena, or
    the single public copy living in a shared file whose slot address is
    its permanent global base.

    Public module files carry a one-page header recording the template
    they were created from, which relocations have been applied (shared
    link state — a second process must not re-apply them), and the
    veneer-pool allocation cursor. *)

module Objfile = Hemlock_obj.Objfile
module Segment = Hemlock_vm.Segment

exception Link_error of string

(** A node of the scoped-linking DAG (§3, Figure 2).  Resolution works
    up from a module's own list toward the root. *)
type scope = {
  sc_label : string;  (** for diagnostics: module or program name *)
  sc_modules : string list;  (** this node's own module list *)
  sc_search : string list;  (** this node's own search directories *)
  sc_parent : scope option;
}

type t = {
  inst_key : string;  (** located template path — the instance identity *)
  inst_module_file : string option;  (** public module file, if public *)
  inst_obj : Objfile.t;
  inst_src : int * int;
      (** content identity of [inst_obj]: ([Segment.id], [Segment.version])
          of the template file at decode time, or [(-1, -1)] when the
          object did not come from the file system.  Two instances with
          equal [inst_src] decoded identical template bytes, even if the
          file was later rewritten through a mapping (which bumps the
          segment version but not {!Hemlock_sfs.Fs.generation}). *)
  inst_base : int;  (** mapping base (slot base when public) *)
  inst_image_off : int;  (** header page for public modules, 0 private *)
  inst_seg : Segment.t;
  inst_public : bool;
  inst_scope : scope;
  mutable inst_linked : bool;  (** this process finished its link pass *)
  (* veneer state for private instances (public state is in the header) *)
  mutable inst_veneer_next : int;
  inst_veneer_off : int;  (** relative to [inst_base] *)
  inst_veneer_cap : int;
  (* per-relocation completion for private instances (public modules
     keep this in their shared header) *)
  inst_applied : bool array;
}

(** Absolute address of the placed image (sections start here). *)
val image_base : t -> int

(** End of the instance's address range (veneer pool included). *)
val limit : t -> int

val contains : t -> int -> bool

(** Absolute address of a symbol of this instance. *)
val symbol_addr : t -> Objfile.symbol -> int

(** Exported (global, defined) symbol lookup. *)
val find_export : t -> string -> int option

(** Defined symbol lookup including locals (for internal relocations). *)
val find_own : t -> string -> int option

(** A sink writing through a segment, where segment offset 0 backs
    virtual address [vaddr_base]. *)
val sink_of_segment : Segment.t -> vaddr_base:int -> Reloc_engine.sink

(** Veneer-slot count to reserve for a template. *)
val veneer_capacity : Objfile.t -> int

(** Total placed size: image plus veneer pool, from [image_off]. *)
val placed_size : Objfile.t -> int

(** Veneer pool of this instance (reads/writes the header for public
    instances, OCaml state for private ones). *)
val veneer_pool : t -> Reloc_engine.veneer_pool

(** {1 Public module files} *)

module Header : sig
  val size : int  (** one page *)

  val is_module_file : Segment.t -> bool
  val template : Segment.t -> string
  val nrelocs : Segment.t -> int
  val applied : Segment.t -> int -> bool
  val set_applied : Segment.t -> int -> unit
  val fully_linked : Segment.t -> bool
end

(** [create_public_file ctx ~template_path ~obj ~module_path] creates
    the module file, writes the header and the placed image, applies
    the template's {e internal} relocations (those whose symbol the
    template itself defines), and returns the module's base address.

    Creation is transactional: the header magic is written {e last} (the
    commit point — until then [Header.is_module_file] is false), the
    whole sequence is bracketed by an [Fs.Intent_module] journal entry,
    and a recoverable failure mid-way removes the partial file before
    re-raising.  A simulated crash leaves the partial file plus the
    pending intent for [Fs.fsck] to roll back.
    @raise Link_error if the paths are off the shared partition, the
    template uses $gp, or the image exceeds the 1 MB slot. *)
val create_public_file :
  Search.ctx -> template_path:string -> obj:Objfile.t -> module_path:string -> int

(** [public_instance ctx ~module_path ~scope] builds the instance
    record for an existing module file (parsing its template for the
    symbol table). *)
val public_instance : Search.ctx -> module_path:string -> scope:scope -> t

(** [private_instance ~located ~obj ~base ~scope ()] copies the template
    into a fresh segment placed at [base] (caller maps it).  [src] is the
    template's content identity (see [inst_src]); callers that resolve
    symbols through link plans must supply it.

    With [Segment.cow_enabled] and a known [src], the placed image is
    built once per template identity and every instance gets a
    refcount-sharing [Segment.copy] of that pristine master: O(pages)
    instead of re-placing the sections, with relocation writes
    diverging pages copy-on-write. *)
val private_instance :
  ?src:int * int -> located:string -> obj:Objfile.t -> base:int -> scope:scope -> unit -> t

(** Drop the calling domain's placed-master memo (reboot: masters are
    kernel-resident host state; dropping them only costs future COW
    sharing). *)
val clear_placed_masters : unit -> unit

(** Module search strategies (§3 "The Linkers").

    At static link time lds looks in (1) the current directory, (2) the
    [-L] command-line path, (3) [LD_LIBRARY_PATH], (4) the default
    library directories.

    At run time ldl looks in (1) the [LD_LIBRARY_PATH] current at
    execution, then (2) everywhere lds searched at static link time —
    which lds records in the load image.  Changing [LD_LIBRARY_PATH]
    between link and exec therefore redirects dynamic modules, the hook
    the Presto-style parallel applications use. *)

type ctx = {
  fs : Hemlock_sfs.Fs.t;
  cwd : Hemlock_sfs.Path.t;
  env : (string * string) list;
}

val default_dirs : string list

(** Kill switch for the LD_LIBRARY_PATH memo and the {!locate} cache
    (set from [HEMLOCK_NO_SYMHASH] at start-up).  Results are identical
    either way; both caches are epoch-validated against
    {!Hemlock_sfs.Fs.generation}. *)
val cache_enabled : bool ref

(** Split a colon-separated LD_LIBRARY_PATH value from [env]. *)
val ld_library_path : (string * string) list -> string list

(** The static-link-time search directory list (absolute strings). *)
val static_dirs : ctx -> cli_dirs:string list -> string list

(** The run-time list: exec-time LD_LIBRARY_PATH then the recorded
    static dirs. *)
val runtime_dirs : ctx -> recorded:string list -> string list

(** [locate ctx ~dirs name] finds a module template.  An absolute (or
    explicitly relative) [name] is resolved against [ctx.cwd] directly;
    a bare name is tried in each directory in order.  Returns the path
    {e as found} — a symlink is not chased, so a public module created
    from it lands in the symlink's directory (the temp-directory trick
    of §4). *)
val locate : ctx -> dirs:string list -> string -> string option

(** Drop the global {!locate} cache and the calling domain's
    LD_LIBRARY_PATH memo (reboot). *)
val clear_locate_cache : unit -> unit

module Kernel = Hemlock_os.Kernel
module Proc = Hemlock_os.Proc
module Sysno = Hemlock_os.Sysno
module Objfile = Hemlock_obj.Objfile
module Fs = Hemlock_sfs.Fs
module Path = Hemlock_sfs.Path
module As = Hemlock_vm.Address_space
module Vm_object = Hemlock_vm.Vm_object
module Layout = Hemlock_vm.Layout
module Prot = Hemlock_vm.Prot
module Segment = Hemlock_vm.Segment
module Stats = Hemlock_util.Stats
module Codec = Hemlock_util.Codec
module Fault = Hemlock_util.Fault

exception Link_error = Reloc_engine.Link_error

(* Raised when progress needs a file lock someone else holds; translated
   to a blocked syscall (ISA), a Retry_when (fault handler), or a
   wait_until (native callers). *)
exception Would_block of (unit -> bool)

let errf fmt = Printf.ksprintf (fun s -> raise (Link_error s)) fmt

(* Per-symbol resolution provenance (observability only): how the last
   resolution of each name was answered, and how often the name was
   resolved at all.  Strings are kept flat so the JSON export needs no
   joins: [pv_source] is "cold" | "replay" | "stable" | "dlsym",
   [pv_probe] is "hash" | "linear" | "cached" | "plan", [pv_origin] is
   the exporting instance key (or "image" | "plan" | "own"), [pv_scope]
   the scope label the walk found it at. *)
type prov = {
  mutable pv_count : int;
  mutable pv_source : string;
  mutable pv_probe : string;
  mutable pv_origin : string;
  mutable pv_scope : string;
}

type pstate = {
  mutable ps_aout : Aout.t option;
  mutable ps_image_seg : Segment.t option;
  mutable ps_instances : Modinst.t list;
  mutable ps_root : Modinst.scope;
  mutable ps_pending : Objfile.reloc list;
  mutable ps_veneer_next : int;
  mutable ps_started : bool;
  (* program identity for link plans: path + load-image (segment id,
     version), when this state came from an exec *)
  mutable ps_prog : (string * int * int) option;
  (* host-side indexes over ps_instances (always kept in sync):
     by base for the fault path, by key for locate results, plus the
     not-yet-linked worklist for LD_BIND_NOW *)
  mutable ps_sorted : Modinst.t array;
  ps_by_key : (string, Modinst.t) Hashtbl.t;
  mutable ps_unlinked : Modinst.t list;
  (* successful scoped resolutions, epoch-validated against the FS
     generation (instances never move within a process, so a cached
     success can only go stale through the namespace) *)
  ps_symcache : (Modinst.scope * string, int * string * string) Hashtbl.t;
  mutable ps_symcache_gen : int;
  (* host-side: per-symbol resolution provenance for linkstat *)
  ps_prov : (string, prov) Hashtbl.t;
  (* incrementally-maintained digest of the instance set: the XOR of
     each instance's fragment digest.  XOR makes the combination
     order-independent, so an insert is O(1) instead of re-digesting
     the whole set — [inst_digest] runs once per planned region, and
     regions interleave with instantiation, which made the old
     whole-array re-digest O(N^2) per exec *)
  mutable ps_digest : Bytes.t;  (* 16 raw digest bytes *)
}

type t = {
  k : Kernel.t;
  states : (int, pstate) Hashtbl.t;
  mutable warn : string list;
  mutable bind_now : bool;
  plans : Modinst.scope Link_plan.store;  (* kernel-wide memoized link plans *)
  (* Zero-copy exec: the placed image of a program, built once per
     backing-file content identity (segment id, version) and COW-copied
     into every subsequent process.  The master is never mapped, so it
     stays pristine however processes scribble on their images. *)
  images : (int * int, Segment.t) Hashtbl.t;
  mutable plan_rec : Modinst.scope Link_plan.dep list ref option;
  (* regions that raised mid-recording: a retried region would record an
     incomplete instantiation list, so never plan these again *)
  poisoned : (string, unit) Hashtbl.t;
  (* whether the persisted symbol indexes under /shared/.stable have
     been used to warm the decode caches since the last (re)boot *)
  mutable stable_seeded : bool;
  (* host-side: every persisted plan, decoded and digest-verified once
     per (re)boot by [seed_stable], so the first exec after reboot pays
     in-memory lookups instead of per-region file loads *)
  stable_plans : (string, Modinst.scope Link_plan.plan) Hashtbl.t;
}

let kernel t = t.k

let set_bind_now t v = t.bind_now <- v

let warnings t = List.rev t.warn

let warn t fmt = Printf.ksprintf (fun s -> t.warn <- s :: t.warn) fmt

let ctx_of t proc =
  { Search.fs = Kernel.fs t.k; cwd = proc.Proc.cwd; env = proc.Proc.env }

let state t proc = Hashtbl.find_opt t.states proc.Proc.pid

let note_prov ps name ~source ~probe ~origin ~scope =
  match Hashtbl.find_opt ps.ps_prov name with
  | Some p ->
    p.pv_count <- p.pv_count + 1;
    p.pv_source <- source;
    p.pv_probe <- probe;
    p.pv_origin <- origin;
    p.pv_scope <- scope
  | None ->
    Hashtbl.replace ps.ps_prov name
      { pv_count = 1; pv_source = source; pv_probe = probe; pv_origin = origin;
        pv_scope = scope }

let instances t proc =
  match state t proc with Some ps -> List.rev ps.ps_instances | None -> []

(* Binary search the sorted-by-base index for the instance whose range
   contains [addr]: instances never overlap (distinct shared slots or
   disjoint arena gaps), so the rightmost base <= addr is the only
   candidate. *)
let instance_covering ps addr =
  let arr = ps.ps_sorted in
  let rec go lo hi =
    if lo >= hi then lo - 1
    else
      let mid = (lo + hi) / 2 in
      if arr.(mid).Modinst.inst_base <= addr then go (mid + 1) hi else go lo mid
  in
  let i = go 0 (Array.length arr) in
  if i >= 0 && Modinst.contains arr.(i) addr then Some arr.(i) else None

let instance_at t proc addr =
  match state t proc with
  | None -> None
  | Some ps -> instance_covering ps addr

let pending_image_relocs t proc =
  match state t proc with Some ps -> ps.ps_pending | None -> []

let find_instance ps located = Hashtbl.find_opt ps.ps_by_key located

(* One instance's contribution to the set digest: identity, placement,
   publicness and decode content identity — everything a plan needs the
   pre-existing set to match on. *)
let inst_fragment inst =
  let sid, sver = inst.Modinst.inst_src in
  Digest.string
    (String.concat "\x01"
       [
         inst.Modinst.inst_key;
         string_of_int inst.Modinst.inst_base;
         (if inst.Modinst.inst_public then "1" else "0");
         string_of_int sid;
         string_of_int sver;
       ])

let digest_xor acc frag =
  for i = 0 to 15 do
    Bytes.set acc i (Char.chr (Char.code (Bytes.get acc i) lxor Char.code frag.[i]))
  done

(* Register a fresh instance in the list and every index. *)
let add_instance ps inst =
  ps.ps_instances <- inst :: ps.ps_instances;
  Hashtbl.replace ps.ps_by_key inst.Modinst.inst_key inst;
  let acc = Bytes.copy ps.ps_digest in
  digest_xor acc (inst_fragment inst);
  ps.ps_digest <- acc;
  let n = Array.length ps.ps_sorted in
  let arr = Array.make (n + 1) inst in
  let rec ins i =
    if i < n && ps.ps_sorted.(i).Modinst.inst_base < inst.Modinst.inst_base then begin
      arr.(i) <- ps.ps_sorted.(i);
      ins (i + 1)
    end
    else
      for j = i to n - 1 do
        arr.(j + 1) <- ps.ps_sorted.(j)
      done
  in
  ins 0;
  ps.ps_sorted <- arr;
  if not inst.Modinst.inst_linked then ps.ps_unlinked <- inst :: ps.ps_unlinked

let rebuild_indexes ps =
  Hashtbl.reset ps.ps_by_key;
  List.iter (fun i -> Hashtbl.replace ps.ps_by_key i.Modinst.inst_key i) ps.ps_instances;
  let arr = Array.of_list ps.ps_instances in
  Array.sort (fun a b -> compare a.Modinst.inst_base b.Modinst.inst_base) arr;
  ps.ps_sorted <- arr;
  let acc = Bytes.make 16 '\000' in
  List.iter (fun i -> digest_xor acc (inst_fragment i)) ps.ps_instances;
  ps.ps_digest <- acc;
  ps.ps_unlinked <- List.filter (fun i -> not i.Modinst.inst_linked) ps.ps_instances

(* Returns the decoded template and its content identity — the backing
   segment's (id, version) — so callers can tell two decodes of the same
   path apart after an in-place rewrite. *)
let load_template ctx path =
  match Fs.read_file ctx.Search.fs ~cwd:ctx.Search.cwd path with
  | bytes -> (
    let seg = Fs.segment_of ctx.Search.fs ~cwd:ctx.Search.cwd path in
    match Link_plan.parse_obj ~seg bytes with
    | obj -> (obj, (Segment.id seg, Segment.version seg))
    | exception Failure msg -> errf "bad template %s: %s" path msg)
  | exception Fs.Error { kind; _ } ->
    errf "cannot read template %s: %s" path (Fs.err_kind_to_string kind)

let is_shared_located located =
  Path.is_prefix ~prefix:[ "shared" ] (Path.of_string ~cwd:Path.root located)

let module_file_of_template located =
  if Filename.check_suffix located ".o" then Filename.chop_suffix located ".o"
  else errf "public module template %s does not end in .o" located

(* Serialise creation of a public module with a file lock; the first
   process of a parallel application creates and initialises the shared
   data, its siblings block then link the existing file (§4, fn 3). *)
let ensure_public_created t proc ~located ~obj =
  let fs = Kernel.fs t.k in
  let module_path = module_file_of_template located in
  let ready () =
    Fs.exists fs module_path
    && Modinst.Header.is_module_file (Fs.segment_of fs module_path)
  in
  if ready () then module_path
  else begin
    let lock_name = module_path ^ ".lock" in
    if not (Kernel.try_flock t.k proc lock_name) then
      raise (Would_block (fun () -> Kernel.flock_holder t.k lock_name = None));
    Fun.protect
      ~finally:(fun () -> Kernel.funlock t.k proc lock_name)
      (fun () ->
        if not (ready ()) then begin
          if Fs.exists fs module_path then
            errf "%s exists but is not a Hemlock module" module_path;
          ignore
            (Modinst.create_public_file (ctx_of t proc) ~template_path:located ~obj
               ~module_path)
        end);
    module_path
  end

(* Effective search directories for a scope: its own, then its
   ancestors' up to the root (whose list is the run-time search path). *)
let rec scope_dirs scope =
  scope.Modinst.sc_search
  @ (match scope.Modinst.sc_parent with Some p -> scope_dirs p | None -> [])

(* ----- instantiation ------------------------------------------------------ *)

let instantiate t proc ps ~located ~public ~parent_scope =
  Fault.hit "ldl.instantiate";
  let ctx = ctx_of t proc in
  let obj, src = load_template ctx located in
  if obj.Objfile.uses_gp then
    errf "module %s uses $gp: ldl requires modules compiled with gp disabled" located;
  let scope =
    {
      Modinst.sc_label = located;
      sc_modules = obj.Objfile.own_modules;
      sc_search = obj.Objfile.own_search_path;
      sc_parent = Some parent_scope;
    }
  in
  (* Mappings this call adds to the process; a failure after any of them
     unwinds the lot, so a half-instantiated module never stays visible
     in the instance set or the address space. *)
  let mapped = ref [] in
  let unwind () =
    if !mapped <> [] then begin
      List.iter
        (fun base ->
          (match As.mapping_at proc.Proc.space base with
          | Some (_, _, m) when m.As.share = As.Private ->
            (* A discarded private instance segment is dead for good:
               release its page refcounts now (the master template's
               pages return to sole ownership, so its next sharing-out
               starts clean) and drop its pager identity. *)
            Segment.release m.As.seg;
            Vm_object.forget m.As.seg
          | Some _ | None -> ());
          As.unmap proc.Proc.space base)
        !mapped;
      (Stats.cur ()).link_rollbacks <- (Stats.cur ()).link_rollbacks + 1
    end
  in
  let inst =
    try
      if public then begin
        if not (is_shared_located located) then
          errf "public module template %s must reside on the shared partition" located;
        let module_path = ensure_public_created t proc ~located ~obj in
        let inst = Modinst.public_instance ctx ~module_path ~scope in
        let fully = Modinst.Header.fully_linked inst.Modinst.inst_seg in
        let prot = if fully then Prot.Read_write_exec else Prot.No_access in
        (match As.mapping_at proc.Proc.space inst.Modinst.inst_base with
        | Some _ -> ()
        | None ->
          let seg = inst.Modinst.inst_seg in
          As.map proc.Proc.space ~base:inst.Modinst.inst_base ~len:Layout.shared_slot_size
            ~seg
            ~kind:
              (Vm_object.File_backed
                 {
                   path = module_path;
                   writeback =
                     (fun ~page ->
                       Fs.page_writeback (Kernel.fs t.k) ~path:module_path ~seg ~page);
                 })
            ~prot ~share:As.Public ~label:module_path ();
          mapped := inst.Modinst.inst_base :: !mapped);
        Fault.hit "ldl.instantiate.mid";
        if fully then begin
          inst.Modinst.inst_linked <- true;
          (Stats.cur ()).modules_linked <- (Stats.cur ()).modules_linked + 1
        end;
        inst
      end
      else begin
        let size = Layout.page_up (Modinst.placed_size obj) in
        let base =
          match
            As.find_gap proc.Proc.space ~lo:Aout.private_arena_lo ~hi:Aout.private_arena_hi
              ~size
          with
          | Some base -> base
          | None -> errf "out of private arena space for %s" located
        in
        let inst = Modinst.private_instance ~src ~located ~obj ~base ~scope () in
        let prot =
          if obj.Objfile.relocs = [] then Prot.Read_write_exec else Prot.No_access
        in
        As.map proc.Proc.space ~base ~len:size ~seg:inst.Modinst.inst_seg
          ~kind:Vm_object.Anonymous ~prot ~share:As.Private ~label:located ();
        mapped := base :: !mapped;
        Fault.hit "ldl.instantiate.mid";
        if prot = Prot.Read_write_exec then begin
          inst.Modinst.inst_linked <- true;
          (Stats.cur ()).modules_linked <- (Stats.cur ()).modules_linked + 1
        end;
        inst
      end
    with
    | Fault.Crash _ as e -> raise e (* machine stopped: nothing unwinds *)
    | e ->
      unwind ();
      raise e
  in
  add_instance ps inst;
  (match t.plan_rec with
  | Some acc ->
    acc :=
      {
        Link_plan.dep_located = located;
        dep_public = public;
        dep_base = inst.Modinst.inst_base;
        dep_src = inst.Modinst.inst_src;
        dep_parent = parent_scope;
      }
      :: !acc
  | None -> ());
  inst

(* Locate a module by name through a scope's effective directories and
   make sure it is instantiated (mapped, possibly without access). *)
let ensure_instance_by_name t proc ps ~scope name =
  let ctx = ctx_of t proc in
  match Search.locate ctx ~dirs:(scope_dirs scope) name with
  | None -> None
  | Some located -> (
    match find_instance ps located with
    | Some inst -> Some inst
    | None ->
      Some (instantiate t proc ps ~located ~public:(is_shared_located located) ~parent_scope:scope))

(* Scoped symbol resolution: this scope's module list, then the parent
   chain; at the root, also the main image's exports.  Successes carry
   provenance: the exporting instance (or "image") and the scope node
   whose module list answered. *)
let rec resolve_scoped_cold t proc ps scope name =
  let try_module mname =
    match ensure_instance_by_name t proc ps ~scope mname with
    | Some inst ->
      Option.map
        (fun addr -> (addr, inst.Modinst.inst_key, scope.Modinst.sc_label))
        (Modinst.find_export inst name)
    | None -> None
  in
  match List.find_map try_module scope.Modinst.sc_modules with
  | Some hit -> Some hit
  | None -> (
    match scope.Modinst.sc_parent with
    | Some parent -> resolve_scoped_cold t proc ps parent name
    | None -> (
      match ps.ps_aout with
      | Some aout ->
        Option.map
          (fun off -> (Aout.image_base + off, "image", scope.Modinst.sc_label))
          (Aout.find_symbol aout name)
      | None -> None))

(* Per-scope symbol cache.  Only successes are cached: a failed walk may
   instantiate modules next time the world changes, whereas a success
   already instantiated everything up to the exporter, so re-serving it
   has no simulated side effects to skip.  [Fs.generation] (namespace
   mutations) is the only staleness vector: a success guarantees every
   module the walk consults is already instantiated, and instances keep
   the decode they were built from, so rewriting a template file — even
   through a mapping, invisibly to the generation — cannot change what
   a cold re-walk of this process would answer. *)
let probe_kind () = if !Objfile.sym_hash_enabled then "hash" else "linear"

let resolve_scoped t proc ps scope name =
  if not !Objfile.sym_hash_enabled then
    Option.map
      (fun (addr, origin, slabel) -> (addr, origin, slabel, "linear"))
      (resolve_scoped_cold t proc ps scope name)
  else begin
    let gen = Fs.generation (Kernel.fs t.k) in
    if gen <> ps.ps_symcache_gen then begin
      Hashtbl.reset ps.ps_symcache;
      ps.ps_symcache_gen <- gen
    end;
    match Hashtbl.find_opt ps.ps_symcache (scope, name) with
    | Some (addr, origin, slabel) ->
      (Stats.cur ()).sym_hash_hits <- (Stats.cur ()).sym_hash_hits + 1;
      Some (addr, origin, slabel, "cached")
    | None -> (
      match resolve_scoped_cold t proc ps scope name with
      | Some (addr, origin, slabel) ->
        Hashtbl.replace ps.ps_symcache (scope, name) (addr, origin, slabel);
        Some (addr, origin, slabel, "hash")
      | None -> None)
  end

(* ----- memoized link plans ------------------------------------------------ *)

let scope_sig scope =
  let b = Buffer.create 64 in
  let rec go s =
    Buffer.add_string b s.Modinst.sc_label;
    Buffer.add_char b '\x02';
    List.iter
      (fun m ->
        Buffer.add_string b m;
        Buffer.add_char b '\x03')
      s.Modinst.sc_modules;
    Buffer.add_char b '\x02';
    List.iter
      (fun d ->
        Buffer.add_string b d;
        Buffer.add_char b '\x03')
      s.Modinst.sc_search;
    match s.Modinst.sc_parent with
    | Some p ->
      Buffer.add_char b '\x04';
      go p
    | None -> ()
  in
  go scope;
  Buffer.contents b

(* Program identity: path, load-image segment id+version, cwd, exec-time
   LD_LIBRARY_PATH, and the bind mode. *)
let prog_key t proc ps =
  match ps.ps_prog with
  | None -> None
  | Some (path, segid, segver) ->
    let llp = Option.value ~default:"" (List.assoc_opt "LD_LIBRARY_PATH" proc.Proc.env) in
    Some
      (Printf.sprintf "%s\x01%d\x01%d\x01%s\x01%s\x01%b" path segid segver
         (Path.to_string proc.Proc.cwd) llp t.bind_now)

(* Replay a plan's instantiations through the ordinary path — every
   simulated cost (reads, mappings, creation locks) recurs exactly —
   verifying each recorded base and template content identity.  The
   latter catches in-place rewrites that are invisible to
   [Fs.generation] (stores through a read-write file mapping): the
   fresh decode would differ from the one the addresses were computed
   against.  On mismatch the plan is rejected; whatever was
   instantiated so far is exactly what the cold path would have
   instantiated, so falling back is safe. *)
let replay_deps t proc ps plan =
  List.for_all
    (fun d ->
      let inst =
        match find_instance ps d.Link_plan.dep_located with
        | Some inst -> inst
        | None ->
          instantiate t proc ps ~located:d.Link_plan.dep_located
            ~public:d.Link_plan.dep_public ~parent_scope:d.Link_plan.dep_parent
      in
      inst.Modinst.inst_base = d.Link_plan.dep_base
      && inst.Modinst.inst_src = d.Link_plan.dep_src)
    plan.Link_plan.plan_deps

(* Run the cold region while capturing its instantiations and resolved
   addresses, then memoize.  If the region raises (a creation lock, a
   link error) the key is poisoned: a retry would record only the
   leftover instantiations and the incomplete plan could strand a
   private module unmapped in some later process. *)
let record_plan t ~fs key cold =
  let addrs = Hashtbl.create 16 in
  let acc = ref [] in
  let saved = t.plan_rec in
  t.plan_rec <- Some acc;
  match cold ~record:(fun sym addr -> Hashtbl.replace addrs sym addr) with
  | () ->
    t.plan_rec <- saved;
    Link_plan.record t.plans ~fs key
      { Link_plan.plan_deps = List.rev !acc; plan_addrs = addrs }
  | exception e ->
    t.plan_rec <- saved;
    Hashtbl.replace t.poisoned key ();
    raise e

(* Resolution may consult instances instantiated by *earlier* regions:
   they appear in [plan_addrs] but, not being re-instantiated, leave no
   dependency entry for replay to verify.  Key every plan on a digest of
   the whole pre-existing instance set — identity, placement, publicness
   and decode content identity — so a plan only replays into a process
   whose already-instantiated modules make every recorded address valid.
   Fault order is execution-dependent (and the program key cannot see
   what drives it), so two execs of one program may well reach the same
   region with different sets; they simply use distinct plan slots. *)
let inst_digest ps = Digest.to_hex (Bytes.to_string ps.ps_digest)

(* Stable-boot seeding: warm the (host-side) decode and export-index
   caches from the persisted symbol indexes, and decode every persisted
   plan once into [t.stable_plans] — once per (re)boot, so the first
   exec pays in-memory lookups instead of per-region file loads.  Eager
   at reboot (instantiations precede the first planned region), lazy as
   a backstop for callers that bypass [Kernel.reboot]. *)
let seed_stable t =
  t.stable_seeded <- true;
  if !Stable_link.enabled && !Link_plan.enabled then begin
    let fs = Kernel.fs t.k in
    Stable_link.seed_indexes fs;
    List.iter
      (fun (key, plan) -> Hashtbl.replace t.stable_plans key plan)
      (Stable_link.load_plans fs)
  end

let stable_fetch t key =
  if not !Stable_link.enabled then None
  else begin
    if not t.stable_seeded then seed_stable t;
    match Hashtbl.find_opt t.stable_plans key with
    | Some plan ->
      Stable_link.note_load ();
      Some plan
    | None -> None
  end

(* The shared plan-or-cold driver: [run] performs the relocation work
   given a resolve function; [cold_resolve] is the scope walk.  Plans
   come from the in-memory store first, then (after a reboot emptied
   it) from the stable files; a stable plan that replays is promoted
   back into the store. *)
let planned t proc ps ~key ~cold_resolve ~run =
  let fs = Kernel.fs t.k in
  let key = Option.map (fun k -> k ^ "\x05" ^ inst_digest ps) key in
  match if !Link_plan.enabled then key else None with
  | None -> run cold_resolve
  | Some key -> (
    (* Replay is an optimisation; an injected failure during it must
       degrade to the cold path, never fail the exec.  A stable plan
       may survive namespace changes the in-memory store cannot (the
       store clears on every generation bump), so its deps can name
       templates that no longer load — [Link_error] there means stale,
       not fatal.  [Would_block] and [Fault.Crash] propagate. *)
    let replay which plan =
      let source = match which with `Mem -> "replay" | `Stable -> "stable" in
      match
        Fault.hit "plan.replay";
        (try replay_deps t proc ps plan with Link_error _ -> false)
      with
      | true ->
        Link_plan.hit ();
        if which = `Stable then Link_plan.record t.plans ~fs key plan;
        run (fun name ->
            match Hashtbl.find_opt plan.Link_plan.plan_addrs name with
            | Some addr ->
              note_prov ps name ~source ~probe:"plan" ~origin:"plan" ~scope:"";
              Some addr
            | None -> None);
        true
      | false ->
        if which = `Stable then begin
          Hashtbl.remove t.stable_plans key;
          Stable_link.reject fs ~key
        end;
        false
      | exception Fault.Injected _ ->
        (Stats.cur ()).plan_fallbacks <- (Stats.cur ()).plan_fallbacks + 1;
        false
    in
    let cold () =
      if Hashtbl.mem t.poisoned key then run cold_resolve
      else
        record_plan t ~fs key (fun ~record ->
            run (fun name ->
                match cold_resolve name with
                | Some addr ->
                  record name addr;
                  Some addr
                | None -> None))
    in
    match Link_plan.lookup t.plans ~fs key with
    | Some plan ->
      if not (replay `Mem plan) then begin
        Link_plan.miss ();
        run cold_resolve
      end
    | None -> (
      match stable_fetch t key with
      | Some plan ->
        if not (replay `Stable plan) then begin
          Link_plan.miss ();
          cold ()
        end
      | None ->
        Link_plan.miss ();
        cold ()))

(* ----- the lazy link pass ------------------------------------------------- *)

let link_instance t proc ps inst =
  if not inst.Modinst.inst_linked then begin
    let obj = inst.Modinst.inst_obj in
    let image = Modinst.image_base inst in
    let text_b, data_b, bss_b = Objfile.section_bases obj in
    let bases = function
      | Objfile.Text -> image + text_b
      | Objfile.Data -> image + data_b
      | Objfile.Bss -> image + bss_b
    in
    let cold_resolve name =
      match Modinst.find_own inst name with
      | Some addr ->
        note_prov ps name ~source:"cold" ~probe:(probe_kind ())
          ~origin:inst.Modinst.inst_key ~scope:inst.Modinst.inst_key;
        Some addr
      | None -> (
        match resolve_scoped t proc ps inst.Modinst.inst_scope name with
        | Some (addr, origin, slabel, probe) ->
          note_prov ps name ~source:"cold" ~probe ~origin ~scope:slabel;
          Some addr
        | None -> None)
    in
    let already, mark =
      if inst.Modinst.inst_public then
        ( Modinst.Header.applied inst.Modinst.inst_seg,
          Modinst.Header.set_applied inst.Modinst.inst_seg )
      else
        ( (fun i -> inst.Modinst.inst_applied.(i)),
          fun i -> inst.Modinst.inst_applied.(i) <- true )
    in
    let sink = Modinst.sink_of_segment inst.Modinst.inst_seg ~vaddr_base:inst.Modinst.inst_base in
    let run resolve =
      let left =
        Reloc_engine.link_pass ~obj ~bases ~resolve ~already ~mark sink ~gp:None
          ~veneer:(Some (Modinst.veneer_pool inst))
      in
      if left <> [] then
        warn t "module %s: %d reference(s) unresolved at the root (left to fault)"
          inst.Modinst.inst_key (List.length left)
    in
    let key =
      Option.map
        (fun pk ->
          Printf.sprintf "mod\x01%s\x01%s\x01%b\x01%d\x01%s" pk inst.Modinst.inst_key
            inst.Modinst.inst_public inst.Modinst.inst_base
            (scope_sig inst.Modinst.inst_scope))
        (prog_key t proc ps)
    in
    planned t proc ps ~key ~cold_resolve ~run;
    As.protect proc.Proc.space inst.Modinst.inst_base Prot.Read_write_exec;
    inst.Modinst.inst_linked <- true;
    (Stats.cur ()).modules_linked <- (Stats.cur ()).modules_linked + 1
  end

(* ----- start-up (crt0's trap) ---------------------------------------------- *)

let image_sink ps =
  match ps.ps_image_seg with
  | Some seg -> Modinst.sink_of_segment seg ~vaddr_base:Aout.image_base
  | None -> errf "no image for this process"

let resolve_image_pending t proc ps =
  match ps.ps_aout with
  | None -> ()
  | Some aout ->
    let sink = image_sink ps in
    let pool =
      {
        Reloc_engine.vp_base = Aout.image_base + aout.Aout.veneer_off;
        vp_cap = aout.Aout.veneer_cap;
        vp_get_next = (fun () -> ps.ps_veneer_next);
        vp_set_next = (fun n -> ps.ps_veneer_next <- n);
      }
    in
    let gp = Option.map (fun off -> Aout.image_base + off) aout.Aout.gp_base_off in
    let run resolve =
      let still = ref [] in
      List.iter
        (fun r ->
          match resolve r.Objfile.rel_symbol with
          | Some addr ->
            (Stats.cur ()).symbols_resolved <- (Stats.cur ()).symbols_resolved + 1;
            Reloc_engine.apply sink
              ~at:(Aout.image_base + r.Objfile.rel_offset)
              ~kind:r.Objfile.rel_kind
              ~value:(addr + r.Objfile.rel_addend)
              ~gp ~veneer:(Some pool)
          | None -> still := r :: !still)
        ps.ps_pending;
      ps.ps_pending <- List.rev !still
    in
    let cold_resolve name =
      match resolve_scoped t proc ps ps.ps_root name with
      | Some (addr, origin, slabel, probe) ->
        note_prov ps name ~source:"cold" ~probe ~origin ~scope:slabel;
        Some addr
      | None -> None
    in
    let key = Option.map (fun pk -> "rip\x01" ^ pk) (prog_key t proc ps) in
    planned t proc ps ~key ~cold_resolve ~run

let ldl_startup t proc ps =
  match ps.ps_aout with
  | None -> ()
  | Some aout ->
    let root =
      {
        Modinst.sc_label = proc.Proc.comm;
        sc_modules =
          List.map (fun sp -> sp.Aout.sp_template) aout.Aout.static_pubs
          @ List.map (fun d -> d.Aout.dd_name) aout.Aout.dynamics;
        sc_search = Search.runtime_dirs (ctx_of t proc) ~recorded:aout.Aout.static_dirs;
        sc_parent = None;
      }
    in
    ps.ps_root <- root;
    (* Map (and if necessary recreate) the static public modules. *)
    List.iter
      (fun sp ->
        match ensure_instance_by_name t proc ps ~scope:root sp.Aout.sp_template with
        | Some _ -> ()
        | None -> warn t "static public module %s not found at run time" sp.Aout.sp_template
        | exception Link_error msg -> warn t "static public %s: %s" sp.Aout.sp_template msg)
      aout.Aout.static_pubs;
    (* Create/instantiate dynamic modules, honouring the descriptor class. *)
    List.iter
      (fun d ->
        let ctx = ctx_of t proc in
        match Search.locate ctx ~dirs:(scope_dirs root) d.Aout.dd_name with
        | None -> warn t "dynamic module %s not found" d.Aout.dd_name
        | Some located -> (
          if find_instance ps located = None then
            match
              instantiate t proc ps ~located
                ~public:(d.Aout.dd_class = Sharing.Dynamic_public)
                ~parent_scope:root
            with
            | (_ : Modinst.t) -> ()
            | exception Link_error msg -> warn t "dynamic %s: %s" d.Aout.dd_name msg))
      aout.Aout.dynamics;
    (* Resolve the image's retained references against what is now mapped
       — including symbols whose location was unknown at static link
       time (the dld-style capability). *)
    resolve_image_pending t proc ps;
    (* LD_BIND_NOW: chase the whole reachability graph up front. *)
    if t.bind_now then begin
      let rec fixpoint () =
        (* ps_unlinked is a worklist: linking can instantiate more
           modules, which add_instance appends to it. *)
        match ps.ps_unlinked with
        | [] -> ()
        | inst :: rest ->
          ps.ps_unlinked <- rest;
          if not inst.Modinst.inst_linked then link_instance t proc ps inst;
          fixpoint ()
      in
      fixpoint ()
    end;
    ps.ps_started <- true

(* ----- the fault handler (§2) ----------------------------------------------- *)

let handle_fault t _k proc fault =
  match state t proc with
  | None -> Kernel.Unhandled
  | Some ps -> (
    let addr = fault.Kernel.f_addr in
    let finish f =
      match f () with
      | () -> Kernel.Resolved
      | exception Would_block cond -> Kernel.Retry_when cond
      | exception Link_error msg ->
        warn t "fault at 0x%08x: %s" addr msg;
        Kernel.Unhandled
      | exception Fault.Injected { site; failure } ->
        (* Injected failures must stay inside the trap pipeline: the
           faulting process gets a segfault kill, not an OCaml
           exception escaping the simulator. *)
        warn t "fault at 0x%08x: injected %s at %s" addr
          (Fault.failure_name failure) site;
        Kernel.Unhandled
    in
    match instance_covering ps addr with
    | Some inst when not inst.Modinst.inst_linked ->
      (* Lazy linking: resolve all of the touched module's references,
         mapping in (possibly inaccessibly) any modules they need. *)
      finish (fun () -> link_instance t proc ps inst)
    | Some _ -> Kernel.Unhandled
    | None ->
      if Layout.is_public addr then begin
        match Fs.path_of_addr (Kernel.fs t.k) addr with
        | exception Fs.Error _ -> Kernel.Unhandled
        | path ->
          let seg = Fs.segment_of (Kernel.fs t.k) path in
          if Modinst.Header.is_module_file seg then
            finish (fun () ->
                let scope =
                  {
                    Modinst.sc_label = path;
                    sc_modules = [];
                    sc_search = [];
                    sc_parent = Some ps.ps_root;
                  }
                in
                let inst = Modinst.public_instance (ctx_of t proc) ~module_path:path ~scope in
                (match As.mapping_at proc.Proc.space inst.Modinst.inst_base with
                | Some _ -> ()
                | None ->
                  let seg = inst.Modinst.inst_seg in
                  As.map proc.Proc.space ~base:inst.Modinst.inst_base
                    ~len:Layout.shared_slot_size ~seg
                    ~kind:
                      (Vm_object.File_backed
                         {
                           path;
                           writeback =
                             (fun ~page ->
                               Fs.page_writeback (Kernel.fs t.k) ~path ~seg ~page);
                         })
                    ~prot:Prot.No_access ~share:As.Public ~label:path ());
                add_instance ps inst;
                link_instance t proc ps inst)
          else
            (* An ordinary shared file: map it so the pointer chase can
               proceed (access rights permitting). *)
            finish (fun () ->
                ignore (Kernel.map_shared_file t.k proc ~path ~prot:Prot.Read_write))
      end
      else Kernel.Unhandled)

(* ----- binfmt loader ---------------------------------------------------------- *)

let count_used_veneers aout =
  let text = aout.Aout.text in
  let rec go i n =
    if i >= aout.Aout.veneer_cap then n
    else
      let off = aout.Aout.veneer_off + (i * Reloc_engine.veneer_slot_bytes) in
      if off + 4 <= Bytes.length text && Codec.get_u32 text off <> 0 then go (i + 1) (n + 1)
      else go (i + 1) n
  in
  go 0 0

let empty_root proc =
  { Modinst.sc_label = proc.Proc.comm; sc_modules = []; sc_search = []; sc_parent = None }

let loader t _k proc bytes ~path =
  if not (Aout.looks_like bytes) then raise Kernel.Wrong_format;
  (* Identify the backing file so the decode can be memoized and link
     plans keyed; an image that is somehow not addressable by path just
     skips both. *)
  let prog =
    match Fs.segment_of (Kernel.fs t.k) ~cwd:proc.Proc.cwd path with
    | fseg -> Some (path, Segment.id fseg, Segment.version fseg)
    | exception Fs.Error _ -> None
  in
  let aout =
    match prog with
    | Some _ ->
      let fseg = Fs.segment_of (Kernel.fs t.k) ~cwd:proc.Proc.cwd path in
      Link_plan.parse_aout ~seg:fseg bytes
    | None -> Aout.parse bytes
  in
  let size = Aout.image_size aout in
  let build_image name =
    let seg = Segment.create ~name ~max_size:(Layout.page_up size) () in
    Segment.blit_in seg ~dst_off:0 aout.Aout.text;
    Segment.blit_in seg ~dst_off:(Bytes.length aout.Aout.text) aout.Aout.data;
    Segment.resize seg (Layout.page_up size);
    seg
  in
  let seg =
    match prog with
    | Some (_, fid, fver) when !Segment.cow_enabled ->
      (* The serialized file layout differs from the placed image, so
         the file segment itself cannot back the mapping; instead the
         placed image is built once per file content and shared COW. *)
      let master =
        match Hashtbl.find_opt t.images (fid, fver) with
        | Some master -> master
        | None ->
          let master = build_image ("image-master:" ^ path) in
          Hashtbl.replace t.images (fid, fver) master;
          master
      in
      Segment.copy master
    | Some _ | None -> build_image ("image:" ^ path)
  in
  As.map proc.Proc.space ~base:Aout.image_base ~len:(Layout.page_up size) ~seg
    ~kind:Vm_object.Anonymous ~prot:Prot.Read_write_exec ~share:As.Private ~label:path ();
  Hashtbl.replace t.states proc.Proc.pid
    {
      ps_aout = Some aout;
      ps_image_seg = Some seg;
      ps_instances = [];
      ps_root = empty_root proc;
      ps_pending = aout.Aout.pending;
      ps_veneer_next = count_used_veneers aout;
      ps_started = false;
      ps_prog = prog;
      ps_sorted = [||];
      ps_by_key = Hashtbl.create 16;
      ps_unlinked = [];
      ps_symcache = Hashtbl.create 64;
      ps_symcache_gen = -1;
      ps_prov = Hashtbl.create 64;
      ps_digest = Bytes.make 16 '\000';
    };
  Kernel.install_segv_handler t.k proc ~name:"hemlock-ldl" (handle_fault t);
  Aout.image_base + aout.Aout.entry_off

(* ----- fork hook ------------------------------------------------------------------ *)

let clone_for_fork t ~parent ~child =
  match state t parent with
  | None -> ()
  | Some ps ->
    let remap base fallback =
      match As.mapping_at child.Proc.space base with
      | Some (_, _, m) -> m.As.seg
      | None -> fallback
    in
    let clone_inst inst =
      if inst.Modinst.inst_public then { inst with Modinst.inst_key = inst.Modinst.inst_key }
      else
        {
          inst with
          Modinst.inst_seg = remap inst.Modinst.inst_base inst.Modinst.inst_seg;
          inst_applied = Array.copy inst.Modinst.inst_applied;
        }
    in
    let child_ps =
      {
        ps_aout = ps.ps_aout;
        ps_image_seg =
          Option.map (fun seg -> remap Aout.image_base seg) ps.ps_image_seg;
        ps_instances = List.map clone_inst ps.ps_instances;
        ps_root = ps.ps_root;
        ps_pending = ps.ps_pending;
        ps_veneer_next = ps.ps_veneer_next;
        ps_started = ps.ps_started;
        ps_prog = ps.ps_prog;
        ps_sorted = [||];
        ps_by_key = Hashtbl.create 16;
        ps_unlinked = [];
        ps_symcache = Hashtbl.create 64;
        ps_symcache_gen = -1;
        (* provenance is per-process observability: the child starts
           empty and accumulates its own post-fork resolutions *)
        ps_prov = Hashtbl.create 64;
        ps_digest = Bytes.make 16 '\000';
      }
    in
    rebuild_indexes child_ps;
    Hashtbl.replace t.states child.Proc.pid child_ps

(* ----- public entry points ---------------------------------------------------------- *)

let install k =
  let t =
    {
      k;
      states = Hashtbl.create 16;
      warn = [];
      bind_now = false;
      plans = Link_plan.create_store ();
      images = Hashtbl.create 16;
      plan_rec = None;
      poisoned = Hashtbl.create 16;
      stable_seeded = false;
      stable_plans = Hashtbl.create 64;
    }
  in
  Kernel.register_binfmt k ~name:"hexe" (fun kk proc bytes ~path -> loader t kk proc bytes ~path);
  Kernel.register_syscall k Sysno.ldl_run (fun _k proc cpu ->
      match state t proc with
      | None -> ()
      | Some ps -> (
        if not ps.ps_started then
          try ldl_startup t proc ps with
          | Would_block cond -> Kernel.block_syscall ~why:"ldl: a creation lock" cpu cond
          | Link_error msg -> warn t "ldl: %s" msg));
  Kernel.add_fork_hook k (fun ~parent ~child -> clone_for_fork t ~parent ~child);
  (* Reboot kills the kernel-resident LINK STATE: the plan store, the
     template decode memo, the export-symbol indexes, the search/locate
     cache.  That is exactly the state stable linking persists into
     /shared (or deliberately leaves cold, for the locate cache), so an
     honest cold boot demands it goes.  Placed CONTENT stays: the image
     and placed-module masters and the decoded-image memo are keyed by
     the (id, version) content identity of segments that themselves
     survive the reboot — they model bytes living in the persistent
     segment store, which is the paper's whole point.  All of it is
     host-side either way; dropping or keeping it never changes
     simulated costs.  With stable linking on, the persisted symbol
     indexes are reseeded eagerly: instantiations run before the first
     planned region, so lazy seeding would be too late to warm the
     decode path. *)
  Kernel.add_reboot_hook k (fun () ->
      Link_plan.reset_store t.plans;
      Hashtbl.reset t.poisoned;
      Link_plan.clear_obj_cache ();
      Objfile.clear_index_memo ();
      Search.clear_locate_cache ();
      t.stable_seeded <- false;
      Hashtbl.reset t.stable_plans;
      if !Stable_link.enabled then seed_stable t);
  t

let attach t proc =
  if state t proc = None then begin
    let root =
      {
        Modinst.sc_label = proc.Proc.comm;
        sc_modules = [];
        sc_search = Search.runtime_dirs (ctx_of t proc) ~recorded:Search.default_dirs;
        sc_parent = None;
      }
    in
    Hashtbl.replace t.states proc.Proc.pid
      {
        ps_aout = None;
        ps_image_seg = None;
        ps_instances = [];
        ps_root = root;
        ps_pending = [];
        ps_veneer_next = 0;
        ps_started = true;
        ps_prog = None;
        ps_sorted = [||];
        ps_by_key = Hashtbl.create 16;
        ps_unlinked = [];
        ps_symcache = Hashtbl.create 64;
        ps_symcache_gen = -1;
        ps_prov = Hashtbl.create 64;
        ps_digest = Bytes.make 16 '\000';
      };
    Kernel.install_segv_handler t.k proc ~name:"hemlock-ldl" (handle_fault t)
  end

let rec retry_native f =
  match f () with
  | v -> v
  | exception Would_block cond ->
    Proc.wait_until ~why:"ldl: a creation lock" cond;
    retry_native f

let dlopen t proc name =
  attach t proc;
  let ps = Option.get (state t proc) in
  retry_native (fun () ->
      match ensure_instance_by_name t proc ps ~scope:ps.ps_root name with
      | Some inst -> inst
      | None -> errf "dlopen: cannot find module %s" name)

let dlsym t proc name =
  attach t proc;
  let ps = Option.get (state t proc) in
  retry_native (fun () ->
      match resolve_scoped t proc ps ps.ps_root name with
      | Some (addr, origin, slabel, probe) ->
        note_prov ps name ~source:"dlsym" ~probe ~origin ~scope:slabel;
        Some addr
      | None ->
        (* dld-style: symbols of explicitly loaded modules are visible
           even when no module list names them. *)
        List.find_map
          (fun inst ->
            Option.map
              (fun addr ->
                note_prov ps name ~source:"dlsym" ~probe:(probe_kind ())
                  ~origin:inst.Modinst.inst_key ~scope:"loaded";
                addr)
              (Modinst.find_export inst name))
          ps.ps_instances)

let link_now t proc inst =
  match state t proc with
  | None -> errf "link_now: process not attached"
  | Some ps -> retry_native (fun () -> link_instance t proc ps inst)

(* ----- stable sync ------------------------------------------------------------------ *)

type sync_report = { sync_plans : int; sync_objs : int; sync_skipped : int }

(* Write-behind persistence: an explicit sync point, not persist-at-
   record.  Recording happens while the namespace is still mutating
   (module files being created), and every [Fs.write_file] bumps the
   generation that wipes the plan store — persisting inline would
   self-invalidate.  At sync time the world is quiescent; the writes
   are billed like any other file writes, which is why no normal exec
   path ever syncs implicitly. *)
let stable_sync t =
  let fs = Kernel.fs t.k in
  if not (!Stable_link.enabled && !Link_plan.enabled) then
    { sync_plans = 0; sync_objs = 0; sync_skipped = 0 }
  else begin
    let plans = Link_plan.entries t.plans ~fs in
    let objs = Hashtbl.create 64 in
    (* Symbol indexes come from the live instance sets, not from plan
       deps: a plan records only the instantiations its own region
       performed (a driver that names every module up front leaves the
       deps empty), while the instances hold every template actually
       decoded. *)
    Hashtbl.iter
      (fun _ ps ->
        Array.iter
          (fun inst ->
            let src = inst.Modinst.inst_src in
            if src <> (-1, -1) && not (Hashtbl.mem objs src) then
              Hashtbl.replace objs src (inst.Modinst.inst_key, inst.Modinst.inst_obj))
          ps.ps_sorted)
      t.states;
    let obj_list =
      List.sort
        (fun ((a : string), _, _) (b, _, _) -> String.compare a b)
        (Hashtbl.fold (fun src (located, obj) acc -> (located, src, obj) :: acc) objs [])
    in
    if plans <> [] || obj_list <> [] then Stable_link.ensure_dir fs;
    let nobjs = ref 0 and nplans = ref 0 and skipped = ref 0 in
    List.iter
      (fun (located, src, obj) ->
        if Stable_link.persist_obj fs ~located ~src obj then incr nobjs
        else incr skipped)
      obj_list;
    List.iter
      (fun (key, plan) ->
        if Stable_link.persist_plan fs ~key plan then incr nplans else incr skipped)
      plans;
    { sync_plans = !nplans; sync_objs = !nobjs; sync_skipped = !skipped }
  end

(* ----- linkstat: resolution provenance as JSON -------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prov_rows ps =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun name p acc -> (name, p) :: acc) ps.ps_prov [])

let linkstat_proc_json t proc =
  let b = Buffer.create 1024 in
  Buffer.add_string b "[";
  (match state t proc with
  | None -> ()
  | Some ps ->
    List.iteri
      (fun i (name, p) ->
        if i > 0 then Buffer.add_string b ",";
        Buffer.add_string b
          (Printf.sprintf
             "\n  { \"symbol\": \"%s\", \"origin\": \"%s\", \"scope\": \"%s\", \
              \"probe\": \"%s\", \"source\": \"%s\", \"count\": %d }"
             (json_escape name) (json_escape p.pv_origin) (json_escape p.pv_scope)
             (json_escape p.pv_probe) (json_escape p.pv_source) p.pv_count))
      (prov_rows ps));
  Buffer.add_string b "\n]";
  Buffer.contents b

(* Per-process aggregates plus kernel-wide totals and the full counter
   set — the "kernel linkstat" dump. *)
let linkstat_json t =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n  \"processes\": [";
  let pids =
    List.sort compare (Hashtbl.fold (fun pid _ acc -> pid :: acc) t.states [])
  in
  let tot = Hashtbl.create 16 in
  let bump tbl k = Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)) in
  let counts_json tbl =
    let rows =
      List.sort
        (fun (a, _) (b, _) -> String.compare a b)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
    in
    String.concat ", "
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %d" (json_escape k) v) rows)
  in
  List.iteri
    (fun i pid ->
      let ps = Hashtbl.find t.states pid in
      let sources = Hashtbl.create 8 and probes = Hashtbl.create 8 in
      Hashtbl.iter
        (fun _ p ->
          bump sources p.pv_source;
          bump probes p.pv_probe;
          bump tot ("source:" ^ p.pv_source);
          bump tot ("probe:" ^ p.pv_probe))
        ps.ps_prov;
      let prog =
        match ps.ps_prog with Some (path, _, _) -> path | None -> "(attached)"
      in
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b
        (Printf.sprintf
           "\n    { \"pid\": %d, \"prog\": \"%s\", \"n_symbols\": %d, \
            \"by_source\": { %s }, \"by_probe\": { %s } }"
           pid (json_escape prog) (Hashtbl.length ps.ps_prov) (counts_json sources)
           (counts_json probes)))
    pids;
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b (Printf.sprintf "  \"totals\": { %s },\n" (counts_json tot));
  Buffer.add_string b
    (Printf.sprintf "  \"stats\": %s\n}" (Stats.to_json (Stats.snapshot ())));
  Buffer.contents b

module Fs = Hemlock_sfs.Fs
module Segment = Hemlock_vm.Segment
module Objfile = Hemlock_obj.Objfile
module Stats = Hemlock_util.Stats

let enabled = ref (Sys.getenv_opt "HEMLOCK_NO_PLANCACHE" = None)

(* ----- parse caches -------------------------------------------------------

   Templates and load images are re-read on every instantiation/exec;
   the simulated machine pays for the read ([Fs.read_file] bumps
   bytes_copied/files_opened either way), but decoding the bytes into an
   OCaml structure is host work, memoizable against the backing
   segment's (id, version): [Segment.id] is process-unique so caches are
   safe across kernels, and [Segment.version] advances on every content
   write, so a rewritten file can never serve a stale decode. *)

(* per-domain decode caches: memoisation only *)
let obj_cache_key : (int * int, Objfile.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let parse_obj ~seg bytes =
  if not !enabled then Objfile.parse bytes
  else begin
    let key = (Segment.id seg, Segment.version seg) in
    let obj_cache = Domain.DLS.get obj_cache_key in
    match Hashtbl.find_opt obj_cache key with
    | Some obj -> obj
    | None ->
      if Hashtbl.length obj_cache > 1024 then Hashtbl.reset obj_cache;
      let obj = Objfile.parse bytes in
      Hashtbl.replace obj_cache key obj;
      obj
  end

let aout_cache_key : (int * int, Aout.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let clear_parse_caches () =
  Hashtbl.reset (Domain.DLS.get obj_cache_key);
  Hashtbl.reset (Domain.DLS.get aout_cache_key)

(* Reboot clears only the template decode memo: it is kernel-resident
   link state that stable linking re-warms from persisted symbol-index
   files.  The image (HEXE) memo is keyed by the content identity of a
   file that itself survives the reboot, so it stays. *)
let clear_obj_cache () = Hashtbl.reset (Domain.DLS.get obj_cache_key)

(* Stable-boot seeding: a persisted symbol-index file carries the
   already-serialized template, so decode once at seed time and future
   [parse_obj] calls for the same (id, version) hit the memo. *)
let seed_obj ~src obj =
  if !enabled then Hashtbl.replace (Domain.DLS.get obj_cache_key) src obj

let parse_aout ~seg bytes =
  if not !enabled then Aout.parse bytes
  else begin
    let key = (Segment.id seg, Segment.version seg) in
    let aout_cache = Domain.DLS.get aout_cache_key in
    match Hashtbl.find_opt aout_cache key with
    | Some aout -> aout
    | None ->
      if Hashtbl.length aout_cache > 256 then Hashtbl.reset aout_cache;
      let aout = Aout.parse bytes in
      Hashtbl.replace aout_cache key aout;
      aout
  end

(* ----- memoized link plans ------------------------------------------------

   A plan records the outcome of one resolution region (a module's link
   pass, or an image's pending-relocation sweep): the instantiations it
   performed, in order, and the symbol addresses it resolved.  Replay
   re-performs the instantiations through the ordinary path — so every
   simulated cost (file reads, mappings, lock protocol) recurs exactly —
   and feeds the recorded addresses to the same relocation engine,
   skipping only the scope walks.  Plans are parametric in the scope
   type so this module stays below [Modinst] in the dependency order. *)

type 'scope dep = {
  dep_located : string;
  dep_public : bool;
  dep_base : int;  (* verified on replay; a mismatch rejects the plan *)
  dep_src : int * int;  (* template (segment id, version) — also verified *)
  dep_parent : 'scope;
}

type 'scope plan = {
  plan_deps : 'scope dep list;
  plan_addrs : (string, int) Hashtbl.t;
}

type 'scope store = {
  mutable st_gen : int;  (* FS generation the cached plans assume *)
  st_tbl : (string, 'scope plan) Hashtbl.t;
}

let create_store () = { st_gen = -1; st_tbl = Hashtbl.create 32 }

let validate store ~fs =
  let gen = Fs.generation fs in
  if gen <> store.st_gen then begin
    Hashtbl.reset store.st_tbl;
    store.st_gen <- gen
  end

let lookup store ~fs key =
  if not !enabled then None
  else begin
    validate store ~fs;
    Hashtbl.find_opt store.st_tbl key
  end

let record store ~fs key plan =
  if !enabled then begin
    validate store ~fs;
    Hashtbl.replace store.st_tbl key plan
  end

let entries store ~fs =
  if not !enabled then []
  else begin
    validate store ~fs;
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) store.st_tbl [])
  end

let reset_store store =
  store.st_gen <- -1;
  Hashtbl.reset store.st_tbl

let hit () = (Stats.cur ()).plan_hits <- (Stats.cur ()).plan_hits + 1

let miss () = (Stats.cur ()).plan_misses <- (Stats.cur ()).plan_misses + 1

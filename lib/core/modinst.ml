module Objfile = Hemlock_obj.Objfile
module Segment = Hemlock_vm.Segment
module Layout = Hemlock_vm.Layout
module Fs = Hemlock_sfs.Fs
module Path = Hemlock_sfs.Path
module Fault = Hemlock_util.Fault

exception Link_error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Link_error s)) fmt

type scope = {
  sc_label : string;
  sc_modules : string list;
  sc_search : string list;
  sc_parent : scope option;
}

type t = {
  inst_key : string;
  inst_module_file : string option;
  inst_obj : Objfile.t;
  inst_src : int * int;
  inst_base : int;
  inst_image_off : int;
  inst_seg : Segment.t;
  inst_public : bool;
  inst_scope : scope;
  mutable inst_linked : bool;
  mutable inst_veneer_next : int;
  inst_veneer_off : int;
  inst_veneer_cap : int;
  inst_applied : bool array;
}

let align16 n = (n + 15) land lnot 15

let veneer_capacity obj =
  let jumps =
    List.length (List.filter (fun r -> r.Objfile.rel_kind = Objfile.Jump26) obj.Objfile.relocs)
  in
  jumps + 4

let placed_size obj =
  align16 (Objfile.load_size obj) + (veneer_capacity obj * Reloc_engine.veneer_slot_bytes)

let image_base t = t.inst_base + t.inst_image_off

let limit t = t.inst_base + t.inst_image_off + placed_size t.inst_obj

let contains t addr = addr >= t.inst_base && addr < limit t

let symbol_addr t sym =
  let text_b, data_b, bss_b = Objfile.section_bases t.inst_obj in
  let section_base = function
    | Objfile.Text -> text_b
    | Objfile.Data -> data_b
    | Objfile.Bss -> bss_b
  in
  image_base t + section_base sym.Objfile.sym_section + sym.Objfile.sym_offset

let find_export t name =
  match Objfile.find_symbol t.inst_obj name with
  | Some sym when sym.Objfile.sym_binding = Objfile.Global -> Some (symbol_addr t sym)
  | Some _ | None -> None

let find_own t name = Option.map (symbol_addr t) (Objfile.find_symbol t.inst_obj name)

let sink_of_segment seg ~vaddr_base =
  {
    Reloc_engine.get32 = (fun addr -> Segment.get_u32 seg (addr - vaddr_base));
    set32 = (fun addr v -> Segment.set_u32 seg (addr - vaddr_base) v);
  }

(* ----- public module file header ----------------------------------------- *)

module Header = struct
  let size = Layout.page_size

  let magic = "HMOD"

  (* offsets within the header page *)
  let off_magic = 0
  let off_image = 4 (* u32: image offset within the file *)
  let off_veneer = 8 (* u32: veneer pool offset within the file *)
  let off_veneer_next = 12
  let off_veneer_cap = 16
  let off_nrelocs = 20
  let off_applied_count = 24
  let off_template_len = 28 (* u16 *)
  let off_template = 30
  let off_bitmap = 1024

  (* [size] (not 4) is the floor: the magic is written last, so any
     segment carrying it holds at least the full header page — and a
     crash-truncated file can never carry it. *)
  let is_module_file seg =
    Segment.size seg >= size
    && List.for_all
         (fun i -> Segment.get_u8 seg (off_magic + i) = Char.code magic.[i])
         [ 0; 1; 2; 3 ]

  let write_magic seg =
    String.iteri (fun i c -> Segment.set_u8 seg (off_magic + i) (Char.code c)) magic

  let template seg =
    let len = Segment.get_u8 seg off_template_len lor (Segment.get_u8 seg (off_template_len + 1) lsl 8) in
    String.init len (fun i -> Char.chr (Segment.get_u8 seg (off_template + i)))

  let set_template seg path =
    let len = String.length path in
    if len > off_bitmap - off_template then errf "template path too long: %s" path;
    Segment.set_u8 seg off_template_len (len land 0xFF);
    Segment.set_u8 seg (off_template_len + 1) (len lsr 8);
    String.iteri (fun i c -> Segment.set_u8 seg (off_template + i) (Char.code c)) path

  let nrelocs seg = Segment.get_u32 seg off_nrelocs

  let applied seg i =
    Segment.get_u8 seg (off_bitmap + (i / 8)) land (1 lsl (i mod 8)) <> 0

  let set_applied seg i =
    if not (applied seg i) then begin
      Segment.set_u8 seg (off_bitmap + (i / 8))
        (Segment.get_u8 seg (off_bitmap + (i / 8)) lor (1 lsl (i mod 8)));
      Segment.set_u32 seg off_applied_count (Segment.get_u32 seg off_applied_count + 1)
    end

  let applied_count seg = Segment.get_u32 seg off_applied_count

  let fully_linked seg = applied_count seg >= nrelocs seg

  (* [init] fills every header field EXCEPT the magic; [publish] writes
     the magic as the commit point of module creation.  Until published,
     [is_module_file] is false and fsck treats the file as a partial
     creation to roll back. *)
  let init seg ~template_path ~nrelocs:n ~veneer_off ~veneer_cap =
    if n > (size - off_bitmap) * 8 then errf "too many relocations for module header";
    Segment.set_u32 seg off_image size;
    Segment.set_u32 seg off_veneer veneer_off;
    Segment.set_u32 seg off_veneer_next 0;
    Segment.set_u32 seg off_veneer_cap veneer_cap;
    Segment.set_u32 seg off_nrelocs n;
    Segment.set_u32 seg off_applied_count 0;
    set_template seg template_path

  let publish seg = write_magic seg

  let veneer_pool seg ~base =
    {
      Reloc_engine.vp_base = base + Segment.get_u32 seg off_veneer;
      vp_cap = Segment.get_u32 seg off_veneer_cap;
      vp_get_next = (fun () -> Segment.get_u32 seg off_veneer_next);
      vp_set_next = (fun n -> Segment.set_u32 seg off_veneer_next n);
    }
end

let veneer_pool t =
  if t.inst_public then Header.veneer_pool t.inst_seg ~base:t.inst_base
  else
    {
      Reloc_engine.vp_base = t.inst_base + t.inst_veneer_off;
      vp_cap = t.inst_veneer_cap;
      vp_get_next = (fun () -> t.inst_veneer_next);
      vp_set_next = (fun n -> t.inst_veneer_next <- n);
    }

(* ----- placement ----------------------------------------------------------- *)

(* Copy the template's initialised sections into [seg] at [image_off]. *)
let place_sections seg ~image_off obj =
  let _, data_b, bss_b = Objfile.section_bases obj in
  Segment.blit_in seg ~dst_off:image_off obj.Objfile.text;
  Segment.blit_in seg ~dst_off:(image_off + data_b) obj.Objfile.data;
  (* Zero-extend through bss and the veneer pool. *)
  let total = image_off + placed_size obj in
  ignore bss_b;
  if Segment.size seg < total then Segment.resize seg total

let require_shared what path =
  if not (Path.is_prefix ~prefix:[ "shared" ] (Path.of_string ~cwd:Path.root path)) then
    errf "%s %s must reside on the shared partition" what path

let create_public_file ctx ~template_path ~obj ~module_path =
  require_shared "public module template" template_path;
  require_shared "public module" module_path;
  if obj.Objfile.uses_gp then
    errf "module %s uses the $gp register: public modules must be compiled with gp disabled"
      template_path;
  if Header.size + placed_size obj > Layout.shared_slot_size then
    errf "module %s exceeds the %d-byte shared file limit" module_path
      Layout.shared_slot_size;
  let fs = ctx.Search.fs in
  Fault.hit "mod.create";
  (* Module creation is multi-step (create → header/sections/relocs →
     publish); the journal entry lets fsck tell an unpublished partial
     from a completed module, and the magic — written by [publish],
     last — is the commit point. *)
  let canonical = Path.to_string (Path.of_string ~cwd:Path.root module_path) in
  let jid = Fs.journal_begin fs (Fs.Intent_module { module_path = canonical }) in
  try
    Fs.create_file fs module_path;
    let base = Fs.addr_of_path fs module_path in
    let seg = Fs.segment_of fs module_path in
    let veneer_off = Header.size + align16 (Objfile.load_size obj) in
    Header.init seg ~template_path ~nrelocs:(List.length obj.Objfile.relocs) ~veneer_off
      ~veneer_cap:(veneer_capacity obj);
    place_sections seg ~image_off:Header.size obj;
    (* Apply internal relocations: those naming symbols the template itself
       defines.  External references stay pending in the shared bitmap. *)
    let text_b, data_b, bss_b = Objfile.section_bases obj in
    let image = base + Header.size in
    let bases = function
      | Objfile.Text -> image + text_b
      | Objfile.Data -> image + data_b
      | Objfile.Bss -> image + bss_b
    in
    let sink = sink_of_segment seg ~vaddr_base:base in
    let resolve name =
      match Objfile.find_symbol obj name with
      | Some sym ->
        Some
          (image
          + (match sym.Objfile.sym_section with
            | Objfile.Text -> text_b
            | Objfile.Data -> data_b
            | Objfile.Bss -> bss_b)
          + sym.Objfile.sym_offset)
      | None -> None
    in
    let pool = Header.veneer_pool seg ~base in
    let _pending =
      Reloc_engine.link_pass ~obj ~bases ~resolve
        ~already:(Header.applied seg)
        ~mark:(Header.set_applied seg)
        sink ~gp:None ~veneer:(Some pool)
    in
    Fault.hit "mod.create.mid";
    Header.publish seg;
    Fs.journal_end fs jid;
    base
  with
  | Fault.Crash _ as e -> raise e (* the journal entry is fsck's evidence *)
  | e ->
    (* Injected failure or link error mid-creation: remove the partial
       (unpublished) module so the failure is all-or-nothing. *)
    (try Fs.unlink fs canonical with Fs.Error _ | Fault.Injected _ -> ());
    Fs.journal_end fs jid;
    raise e

let load_template ctx path =
  match Fs.read_file ctx.Search.fs ~cwd:ctx.Search.cwd path with
  | bytes -> (
    let seg = Fs.segment_of ctx.Search.fs ~cwd:ctx.Search.cwd path in
    match Link_plan.parse_obj ~seg bytes with
    | obj -> (obj, (Segment.id seg, Segment.version seg))
    | exception Failure msg -> errf "bad template %s: %s" path msg)
  | exception Fs.Error _ -> errf "cannot read template %s" path

let public_instance ctx ~module_path ~scope =
  let fs = ctx.Search.fs in
  let base = Fs.addr_of_path fs module_path in
  let canonical = Fs.path_of_addr fs base in
  let seg = Fs.segment_of fs canonical in
  if not (Header.is_module_file seg) then
    errf "%s is not a created Hemlock module" module_path;
  let template_path = Header.template seg in
  let obj, src = load_template ctx template_path in
  {
    inst_key = template_path;
    inst_module_file = Some canonical;
    inst_obj = obj;
    inst_src = src;
    inst_base = base;
    inst_image_off = Header.size;
    inst_seg = seg;
    inst_public = true;
    inst_scope = scope;
    inst_linked = false;
    inst_veneer_next = 0;
    inst_veneer_off = 0;
    inst_veneer_cap = 0;
    inst_applied = [||];
  }

(* Zero-copy private instantiation: the placed (sections laid out,
   veneer area reserved) image of a template, built once per template
   content identity [src = (file segment id, version)] and COW-copied
   into every later instance.  Masters are never handed out directly —
   relocation scribbles on instances, and those writes must not reach
   the shared master. *)
(* per-domain: a worker that misses the memo places its own master copy
   (the COW sharing it buys is per-domain, like the page caches) *)
let placed_masters_key : (int * int, Segment.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)
let placed_masters () = Domain.DLS.get placed_masters_key

let clear_placed_masters () = Hashtbl.reset (placed_masters ())

let private_instance ?(src = (-1, -1)) ~located ~obj ~base ~scope () =
  let size = placed_size obj in
  let build name =
    let seg = Segment.create ~name ~max_size:(Layout.page_up size) () in
    place_sections seg ~image_off:0 obj;
    seg
  in
  let seg =
    if !Segment.cow_enabled && src <> (-1, -1) then begin
      let master =
        match Hashtbl.find_opt (placed_masters ()) src with
        | Some master when Segment.max_size master = Layout.page_up size -> master
        | Some _ | None ->
          let master = build ("module-master:" ^ located) in
          Hashtbl.replace (placed_masters ()) src master;
          master
      in
      Segment.copy master
    end
    else build ("module:" ^ located)
  in
  {
    inst_key = located;
    inst_module_file = None;
    inst_obj = obj;
    inst_src = src;
    inst_base = base;
    inst_image_off = 0;
    inst_seg = seg;
    inst_public = false;
    inst_scope = scope;
    inst_linked = false;
    inst_veneer_next = 0;
    inst_veneer_off = align16 (Objfile.load_size obj);
    inst_veneer_cap = veneer_capacity obj;
    inst_applied = Array.make (List.length obj.Objfile.relocs) false;
  }

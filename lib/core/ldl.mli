(** ldl — the lazy dynamic linker, and the Hemlock run-time service.

    [install] hooks the linker into a kernel:

    - a binfmt loader for the a.out images lds produces (maps the
      private static image and the retained link state);
    - the [ldl_run] syscall that crt0 traps into before [main]: it maps
      the static public modules, creates and instantiates the dynamic
      modules (public ones under a file lock, so the first process of a
      parallel application creates the shared data and the rest link
      it), and resolves the image's retained relocations against them;
    - the user-level SIGSEGV handler of §2: a faulting public address
      is translated to a path with the new kernel call and mapped —
      through the linker when the file is a module, as a plain mapping
      otherwise — and a faulting access to a module that was mapped
      without access permissions triggers resolution of all of that
      module's references (lazy linking), which may in turn map further
      modules, inaccessibly, recursively.

    Scoped linking: each instance resolves first against the modules on
    its own list (located through its own search path), then its
    parent's, up to the root; root-level resolution also sees the main
    image's exports.  References unresolved at the root are left to
    fault. *)

module Kernel = Hemlock_os.Kernel
module Proc = Hemlock_os.Proc

type t

(** Install the service on a kernel.  Call once per kernel. *)
val install : Kernel.t -> t

val kernel : t -> Kernel.t

(** LD_BIND_NOW-style eager mode: when set, ldl's start-up pass
    transitively links every reachable module instead of leaving them
    to fault.  The eager baseline of E8. *)
val set_bind_now : t -> bool -> unit

(** Runtime warnings accumulated (missing dynamic modules, unresolved
    references left at the root, ...). *)
val warnings : t -> string list

(** {1 Introspection (tests and benches)} *)

(** Instances mapped into a process, in load order. *)
val instances : t -> Proc.t -> Modinst.t list

(** The instance whose range contains an address, if any. *)
val instance_at : t -> Proc.t -> int -> Modinst.t option

(** Retained image relocations still unresolved for this process. *)
val pending_image_relocs : t -> Proc.t -> Hemlock_obj.Objfile.reloc list

(** {1 Native-process attachment}

    Native (harness) processes have no a.out, but still want the fault
    handler and the dlopen/dlsym interface. *)

val attach : t -> Proc.t -> unit

(** {1 Explicit dynamic loading (the dld-style interface)} *)

(** [dlopen t proc name] locates, instantiates and maps a module (lazy:
    unresolved modules are mapped without access).  May block on the
    creation lock. *)
val dlopen : t -> Proc.t -> string -> Modinst.t

(** [dlsym t proc name] resolves a symbol in the process's root scope. *)
val dlsym : t -> Proc.t -> string -> int option

(** Force a module's link pass now (what a fault would do). *)
val link_now : t -> Proc.t -> Modinst.t -> unit

(** {1 Stable linking}

    The in-memory plan store and decode caches die with [Kernel.reboot];
    {!stable_sync} persists them under [/shared/.stable] (see
    {!Stable_link}), and the reboot hook installed by {!install} reseeds
    from the persisted files so the first exec after reboot replays
    plans instead of walking scopes cold. *)

type sync_report = {
  sync_plans : int;  (** plan files persisted (or already present) *)
  sync_objs : int;  (** symbol-index files persisted (or present) *)
  sync_skipped : int;  (** files skipped on injected/FS failures *)
}

(** Persist every live link plan and every instantiated template's
    symbol index into [/shared/.stable] through the journalled write
    path.  An explicit sync point — the writes are billed like any
    other file writes, so no implicit exec path ever calls this.  A
    no-op (all zeros) when stable linking or the plan cache is off.
    Raises {!Hemlock_util.Fault.Crash} through (crash sweep). *)
val stable_sync : t -> sync_report

(** {1 Linkstat: resolution provenance}

    Host-side observability: every resolved symbol records how its last
    resolution was answered — the exporting module and scope, hash vs.
    linear vs. cached probe, and whether it came from a cold walk, an
    in-memory plan replay, a stable-boot replay, or dlsym. *)

(** Per-symbol provenance of one process, as a JSON array sorted by
    symbol: [{"symbol", "origin", "scope", "probe", "source",
    "count"}]. *)
val linkstat_proc_json : t -> Proc.t -> string

(** The kernel-wide linkstat dump: per-process aggregates (symbol
    counts by source and probe), kernel totals, and the full
    {!Hemlock_util.Stats} counter snapshot under ["stats"]. *)
val linkstat_json : t -> string


module Codec = Hemlock_util.Codec
module Objfile = Hemlock_obj.Objfile

type dyn_descr = { dd_name : string; dd_class : Sharing.t }

type static_pub = { sp_template : string; sp_module : string; sp_base : int }

type t = {
  entry_off : int;
  text : Bytes.t;
  data : Bytes.t;
  bss_size : int;
  veneer_off : int;
  veneer_cap : int;
  symbols : (string * int) list;
  pending : Objfile.reloc list;
  dynamics : dyn_descr list;
  static_pubs : static_pub list;
  static_dirs : string list;
  gp_base_off : int option;
}

let image_base = 0x1000

let private_arena_lo = 0x0200_0000
let private_arena_hi = 0x1000_0000

let align4 n = (n + 3) land lnot 3

let image_size t = align4 (Bytes.length t.text) + align4 (Bytes.length t.data) + align4 t.bss_size

(* Hashed image-symbol lookup, memoized per physical symbol list (the
   list is immutable, so identity proves validity); same discipline and
   kill switch as the Objfile export index. *)
(* per-domain: a cache miss on a worker domain only costs a rebuild *)
let symtab_memo_key : ((string * int) list * (string, int) Hashtbl.t) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let symtab_of t =
  let symtab_memo = Domain.DLS.get symtab_memo_key in
  match List.find_opt (fun (syms, _) -> syms == t.symbols) !symtab_memo with
  | Some (_, tbl) -> tbl
  | None ->
    let tbl = Hashtbl.create (List.length t.symbols * 2) in
    (* First binding of a name wins, as in the linear scan. *)
    List.iter (fun (n, off) -> if not (Hashtbl.mem tbl n) then Hashtbl.add tbl n off) t.symbols;
    if List.length !symtab_memo > 64 then symtab_memo := [];
    symtab_memo := (t.symbols, tbl) :: !symtab_memo;
    tbl

let find_symbol t name =
  if not !Objfile.sym_hash_enabled then
    Option.map snd (List.find_opt (fun (n, _) -> String.equal n name) t.symbols)
  else begin
    let found = Hashtbl.find_opt (symtab_of t) name in
    (match found with
    | Some _ ->
      Hemlock_util.(Stats.cur ()).sym_hash_hits <- Hemlock_util.(Stats.cur ()).sym_hash_hits + 1
    | None ->
      Hemlock_util.(Stats.cur ()).sym_hash_misses <-
        Hemlock_util.(Stats.cur ()).sym_hash_misses + 1);
    found
  end

let magic = "HEXE"

let class_code = function
  | Sharing.Static_private -> 0
  | Sharing.Dynamic_private -> 1
  | Sharing.Static_public -> 2
  | Sharing.Dynamic_public -> 3

let class_of_code = function
  | 0 -> Sharing.Static_private
  | 1 -> Sharing.Dynamic_private
  | 2 -> Sharing.Static_public
  | 3 -> Sharing.Dynamic_public
  | n -> failwith (Printf.sprintf "Aout.parse: bad class %d" n)

let kind_code = function
  | Objfile.Abs32 -> 0
  | Objfile.Hi16 -> 1
  | Objfile.Lo16 -> 2
  | Objfile.Jump26 -> 3
  | Objfile.Gprel16 -> 4

let kind_of_code = function
  | 0 -> Objfile.Abs32
  | 1 -> Objfile.Hi16
  | 2 -> Objfile.Lo16
  | 3 -> Objfile.Jump26
  | 4 -> Objfile.Gprel16
  | n -> failwith (Printf.sprintf "Aout.parse: bad reloc kind %d" n)

let serialize t =
  let w = Codec.Writer.create () in
  String.iter (fun c -> Codec.Writer.u8 w (Char.code c)) magic;
  Codec.Writer.u32 w t.entry_off;
  Codec.Writer.u32 w (Bytes.length t.text);
  Codec.Writer.bytes w t.text;
  Codec.Writer.u32 w (Bytes.length t.data);
  Codec.Writer.bytes w t.data;
  Codec.Writer.u32 w t.bss_size;
  Codec.Writer.u32 w t.veneer_off;
  Codec.Writer.u32 w t.veneer_cap;
  Codec.Writer.u32 w (List.length t.symbols);
  List.iter
    (fun (name, off) ->
      Codec.Writer.str w name;
      Codec.Writer.u32 w off)
    t.symbols;
  Codec.Writer.u32 w (List.length t.pending);
  List.iter
    (fun r ->
      Codec.Writer.u32 w r.Objfile.rel_offset;
      Codec.Writer.u8 w (kind_code r.Objfile.rel_kind);
      Codec.Writer.str w r.Objfile.rel_symbol;
      Codec.Writer.u32 w (r.Objfile.rel_addend land 0xFFFF_FFFF))
    t.pending;
  Codec.Writer.u32 w (List.length t.dynamics);
  List.iter
    (fun d ->
      Codec.Writer.str w d.dd_name;
      Codec.Writer.u8 w (class_code d.dd_class))
    t.dynamics;
  Codec.Writer.u32 w (List.length t.static_pubs);
  List.iter
    (fun s ->
      Codec.Writer.str w s.sp_template;
      Codec.Writer.str w s.sp_module;
      Codec.Writer.u32 w s.sp_base)
    t.static_pubs;
  Codec.Writer.u32 w (List.length t.static_dirs);
  List.iter (Codec.Writer.str w) t.static_dirs;
  (match t.gp_base_off with
  | None -> Codec.Writer.u8 w 0
  | Some off ->
    Codec.Writer.u8 w 1;
    Codec.Writer.u32 w off);
  Codec.Writer.contents w

let looks_like bytes =
  Bytes.length bytes >= 4 && String.equal (Bytes.sub_string bytes 0 4) magic

let parse bytes =
  let r = Codec.Reader.create bytes in
  let m = Bytes.to_string (Codec.Reader.bytes r 4) in
  if not (String.equal m magic) then failwith "Aout.parse: bad magic";
  let entry_off = Codec.Reader.u32 r in
  let text = Codec.Reader.bytes r (Codec.Reader.u32 r) in
  let data = Codec.Reader.bytes r (Codec.Reader.u32 r) in
  let bss_size = Codec.Reader.u32 r in
  let veneer_off = Codec.Reader.u32 r in
  let veneer_cap = Codec.Reader.u32 r in
  let symbols =
    List.init (Codec.Reader.u32 r) (fun _ ->
        let name = Codec.Reader.str r in
        let off = Codec.Reader.u32 r in
        (name, off))
  in
  let pending =
    List.init (Codec.Reader.u32 r) (fun _ ->
        let rel_offset = Codec.Reader.u32 r in
        let rel_kind = kind_of_code (Codec.Reader.u8 r) in
        let rel_symbol = Codec.Reader.str r in
        let rel_addend = Codec.sext32 (Codec.Reader.u32 r) in
        { Objfile.rel_section = Objfile.Text; rel_offset; rel_kind; rel_symbol; rel_addend })
  in
  let dynamics =
    List.init (Codec.Reader.u32 r) (fun _ ->
        let dd_name = Codec.Reader.str r in
        let dd_class = class_of_code (Codec.Reader.u8 r) in
        { dd_name; dd_class })
  in
  let static_pubs =
    List.init (Codec.Reader.u32 r) (fun _ ->
        let sp_template = Codec.Reader.str r in
        let sp_module = Codec.Reader.str r in
        let sp_base = Codec.Reader.u32 r in
        { sp_template; sp_module; sp_base })
  in
  let static_dirs = List.init (Codec.Reader.u32 r) (fun _ -> Codec.Reader.str r) in
  let gp_base_off = if Codec.Reader.u8 r = 1 then Some (Codec.Reader.u32 r) else None in
  {
    entry_off;
    text;
    data;
    bss_size;
    veneer_off;
    veneer_cap;
    symbols;
    pending;
    dynamics;
    static_pubs;
    static_dirs;
    gp_base_off;
  }

let pp ppf t =
  let p fmt = Format.fprintf ppf fmt in
  p "@[<v>a.out: entry at image+0x%x, loaded at %a@," t.entry_off
    Hemlock_util.Codec.(fun ppf v -> Format.fprintf ppf "0x%08x" (mask32 v)) image_base;
  p "text %d bytes (veneer pool at +0x%x, %d slots), data %d, bss %d@,"
    (Bytes.length t.text) t.veneer_off t.veneer_cap (Bytes.length t.data) t.bss_size;
  (match t.gp_base_off with
  | Some off -> p "$gp base at image+0x%x@," off
  | None -> ());
  p "exported symbols:@,";
  List.iter (fun (name, off) -> p "  %-24s image+0x%x@," name off)
    (List.sort compare t.symbols);
  if t.pending <> [] then begin
    p "retained relocations (for ldl):@,";
    List.iter
      (fun r ->
        p "  +0x%-6x %-8s %s%+d@," r.Objfile.rel_offset
          (Objfile.reloc_kind_to_string r.Objfile.rel_kind)
          r.Objfile.rel_symbol r.Objfile.rel_addend)
      t.pending
  end;
  if t.dynamics <> [] then begin
    p "dynamic modules:@,";
    List.iter
      (fun d -> p "  %-24s %s@," d.dd_name (Sharing.to_string d.dd_class))
      t.dynamics
  end;
  if t.static_pubs <> [] then begin
    p "static public modules:@,";
    List.iter
      (fun s -> p "  %-24s at 0x%08x (template %s)@," s.sp_module s.sp_base s.sp_template)
      t.static_pubs
  end;
  p "recorded search path: %s@]" (String.concat ":" t.static_dirs)

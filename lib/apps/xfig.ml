module Kernel = Hemlock_os.Kernel
module Proc = Hemlock_os.Proc
module Fs = Hemlock_sfs.Fs
module Prot = Hemlock_vm.Prot
module Layout = Hemlock_vm.Layout
module Prng = Hemlock_util.Prng
module Serializer = Hemlock_baseline.Serializer
module Shm_heap = Hemlock_runtime.Shm_heap
module Shared_list = Hemlock_runtime.Shared_list

type obj = { o_kind : int; o_x : int; o_y : int; o_w : int; o_h : int }

let gen_figure rng ~n =
  List.init n (fun _ ->
      {
        o_kind = Prng.int rng 5;
        o_x = Prng.int rng 1200;
        o_y = Prng.int rng 900;
        o_w = 1 + Prng.int rng 400;
        o_h = 1 + Prng.int rng 300;
      })

let n_fields = 5

let fields_of_obj o = [ o.o_kind; o.o_x; o.o_y; o.o_w; o.o_h ]

let obj_of_fields = function
  | [ kind; x; y; w; h ] -> { o_kind = kind; o_x = x; o_y = y; o_w = w; o_h = h }
  | _ -> invalid_arg "Xfig.obj_of_fields"

module File_format = struct
  let value_of_objs objs =
    Serializer.List
      (List.map (fun o -> Serializer.List (List.map (fun v -> Serializer.Int v) (fields_of_obj o))) objs)

  let objs_of_value = function
    | Serializer.List items ->
      List.map
        (function
          | Serializer.List fields ->
            obj_of_fields
              (List.map (function Serializer.Int v -> v | _ -> failwith "bad field") fields)
          | _ -> failwith "bad object")
        items
    | _ -> failwith "bad figure file"

  (* Translate the linked structure to pointer-free ASCII and write it. *)
  let save k proc ~path objs =
    let ascii = Serializer.to_ascii (value_of_objs objs) in
    let fd = Kernel.sys_open k proc ~create:true ~trunc:true path in
    ignore (Kernel.sys_write k proc fd (Bytes.of_string ascii));
    Kernel.sys_close k proc fd

  let load k proc ~path =
    let fd = Kernel.sys_open k proc path in
    let bytes = Kernel.sys_read k proc fd 0x100000 in
    Kernel.sys_close k proc fd;
    objs_of_value (Serializer.of_ascii (Bytes.to_string bytes))
end

module Shared_fig = struct
  (* Root (the object list head) is the heap's first block. *)
  let root_of base = base + 24

  let create k proc ~path =
    let fs = Kernel.fs k in
    if not (Fs.exists fs ~cwd:proc.Proc.cwd path) then
      Fs.create_file fs ~cwd:proc.Proc.cwd path;
    let base = Shm_heap.create k proc ~path in
    let root = Shm_heap.alloc k proc ~heap:base 4 in
    assert (root = root_of base);
    Kernel.store_u32 k proc root 0;
    base

  let attach k proc ~path = Kernel.map_shared_file k proc ~path ~prot:Prot.Read_write

  let add k proc ~fig o =
    ignore (Shared_list.push k proc ~head:(root_of fig) ~fields:(fields_of_obj o))

  let objects k proc ~fig =
    let acc = ref [] in
    Shared_list.iter k proc ~head:(root_of fig) (fun node ->
        acc := obj_of_fields (List.init n_fields (Shared_list.field k proc node)) :: !acc);
    List.rev !acc

  let count k proc ~fig = Shared_list.length k proc ~head:(root_of fig)

  (* The pre-existing pointer-based copy routine, now operating on the
     persistent figure. *)
  let duplicate k proc ~fig ~dx ~dy =
    let originals = objects k proc ~fig in
    List.iter
      (fun o -> add k proc ~fig { o with o_x = o.o_x + dx; o_y = o.o_y + dy })
      (List.rev originals)
end

let file_session k proc ~path ~n_new ~dup =
  let objs = if Fs.exists (Kernel.fs k) ~cwd:proc.Proc.cwd path then File_format.load k proc ~path else [] in
  let rng = Prng.create ~seed:(17 + n_new) in
  let objs = gen_figure rng ~n:n_new @ objs in
  (* Bill the in-memory pointer manipulation at the same per-field rate
     the shared version pays through its checked accesses, so the two
     sessions differ only in translation and file traffic. *)
  let bill objs =
    Hemlock_util.(Stats.cur ()).instructions <-
      Hemlock_util.(Stats.cur ()).instructions + ((n_fields + 1) * List.length objs)
  in
  bill objs;
  let objs =
    if dup then begin
      bill objs;
      List.map (fun o -> { o with o_x = o.o_x + 10; o_y = o.o_y + 10 }) objs @ objs
    end
    else objs
  in
  File_format.save k proc ~path objs;
  List.length objs

let shm_session k proc ~path ~n_new ~dup =
  let fig =
    if Fs.exists (Kernel.fs k) ~cwd:proc.Proc.cwd path then Shared_fig.attach k proc ~path
    else Shared_fig.create k proc ~path
  in
  let rng = Prng.create ~seed:(17 + n_new) in
  List.iter (fun o -> Shared_fig.add k proc ~fig o) (List.rev (gen_figure rng ~n:n_new));
  if dup then Shared_fig.duplicate k proc ~fig ~dx:10 ~dy:10;
  Shared_fig.count k proc ~fig

let naive_copy_is_broken k proc ~src ~dst =
  let fs = Kernel.fs k in
  (* cp: a plain byte copy of the file. *)
  let bytes = Fs.read_file fs ~cwd:proc.Proc.cwd src in
  Fs.write_file fs ~cwd:proc.Proc.cwd dst bytes;
  let dst_base = Kernel.map_shared_file k proc ~path:dst ~prot:Prot.Read_write in
  let head = Kernel.load_u32 k proc (Shared_fig.root_of dst_base) in
  (* The copied head pointer still aims into the original segment. *)
  head <> 0
  && not (head >= dst_base && head < dst_base + Layout.shared_slot_size)

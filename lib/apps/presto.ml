module Kernel = Hemlock_os.Kernel
module Proc = Hemlock_os.Proc
module Fs = Hemlock_sfs.Fs
module Path = Hemlock_sfs.Path
module Prot = Hemlock_vm.Prot
module Objfile = Hemlock_obj.Objfile
module Cc = Hemlock_cc.Cc
module Lds = Hemlock_linker.Lds
module Ldl = Hemlock_linker.Ldl
module Search = Hemlock_linker.Search
module Sharing = Hemlock_linker.Sharing
module Modinst = Hemlock_linker.Modinst

let max_workers = 64

let shared_data_source =
  Printf.sprintf
    {|
int presto_lock;
int presto_nworkers;
int presto_results[%d];
|}
    max_workers

let child_source ~work_iters =
  Printf.sprintf
    {|
extern int presto_lock;
extern int presto_nworkers;
extern int presto_results[%d];

int work(int idx) {
  int i;
  int acc;
  acc = idx;
  i = 0;
  while (i < %d) {
    acc = (acc * 13 + idx + 7) %% 100000;
    i = i + 1;
  }
  return acc + 1;
}

int main() {
  int idx;
  lock_acquire(&presto_lock);
  idx = presto_nworkers;
  presto_nworkers = idx + 1;
  lock_release(&presto_lock);
  presto_results[idx] = work(idx);
  return 0;
}
|}
    max_workers work_iters

let expected_results ~workers ~work_iters =
  let work idx =
    let acc = ref idx in
    for _ = 1 to work_iters do
      acc := ((!acc * 13) + idx + 7) mod 100000
    done;
    !acc + 1
  in
  List.init workers work

(* ----- the 432-line post-processor, in miniature ----- *)

(* Rewrites "la $reg, var" references to shared variables into absolute
   addresses.  Exactly the fragile business the paper describes: it
   pattern-matches the compiler's output. *)
let postprocess ~shared asm =
  let rewritten = ref 0 in
  let rewrite_line line =
    let trimmed = String.trim line in
    let is_la = String.length trimmed > 3 && String.sub trimmed 0 3 = "la " in
    if not is_la then line
    else
      match String.index_opt trimmed ',' with
      | None -> line
      | Some comma ->
        let target = String.trim (String.sub trimmed (comma + 1) (String.length trimmed - comma - 1)) in
        let reg = String.trim (String.sub trimmed 2 (comma - 2)) in
        (match List.assoc_opt target shared with
        | Some addr ->
          incr rewritten;
          Printf.sprintf "        la   %s, %d" reg addr
        | None -> line)
  in
  let lines = String.split_on_char '\n' asm in
  let out = String.concat "\n" (List.map rewrite_line lines) in
  (out, !rewritten)

(* ----- common pieces ----- *)

let write_obj fs path obj = Fs.write_file fs path (Objfile.serialize obj)

let spawn_children k ~prog ~env ~workers ~parent =
  List.init workers (fun i ->
      let child = Kernel.spawn_exec k ~name:(Printf.sprintf "worker%d" i) ~env prog in
      child.Proc.parent <- parent.Proc.pid;
      child)

let wait_all k proc n =
  for _ = 1 to n do
    ignore (Kernel.waitpid k proc)
  done

let read_results k proc ~base_of_results ~workers =
  List.init workers (fun i -> Kernel.load_u32 k proc (base_of_results + (4 * i)))

(* ----- the Hemlock protocol ----- *)

let run_hemlock ldl ~workers ~work_iters ~app_id =
  if workers > max_workers then invalid_arg "Presto.run_hemlock: too many workers";
  let k = Ldl.kernel ldl in
  let fs = Kernel.fs k in
  (* One-time setup: template and worker program. *)
  let templates = "/shared/presto" in
  if not (Fs.exists fs templates) then Fs.mkdir fs templates;
  let template_path = templates ^ "/shared_data.o" in
  if not (Fs.exists fs template_path) then
    write_obj fs template_path (Cc.to_object ~name:"shared_data.o" shared_data_source);
  let home = "/home/presto_" ^ app_id in
  Fs.mkdir fs home;
  write_obj fs (home ^ "/main.o")
    (Cc.to_object ~name:"main.o" (child_source ~work_iters));
  let ctx = { Search.fs; cwd = Path.of_string ~cwd:Path.root home; env = [] } in
  (* The children name the shared data as a bare dynamic public module:
     where it is found is decided at run time by LD_LIBRARY_PATH. *)
  let _warnings =
    Lds.link ctx
      ~specs:
        [
          { Lds.sp_name = "main.o"; sp_class = Sharing.Static_private };
          { Lds.sp_name = "shared_data.o"; sp_class = Sharing.Dynamic_public };
        ]
      ~output:"worker" ()
  in
  let results = ref [] in
  ignore
    (Kernel.spawn_native k ~name:"presto-parent" (fun k proc ->
         (* The parent does none of the application's work and never
            links the shared data. *)
         if not (Fs.exists fs "/shared/tmp") then Fs.mkdir fs "/shared/tmp";
         let tmpdir = "/shared/tmp/" ^ app_id in
         Fs.mkdir fs tmpdir;
         Fs.symlink fs ~target:template_path (tmpdir ^ "/shared_data.o");
         let env = [ ("LD_LIBRARY_PATH", tmpdir) ] in
         let kids = spawn_children k ~prog:(home ^ "/worker") ~env ~workers ~parent:proc in
         ignore kids;
         wait_all k proc workers;
         (* Read the results out of the created module, then clean up:
            segment, template symlink, temporary directory. *)
         let inst =
           Modinst.public_instance
             { Search.fs; cwd = proc.Proc.cwd; env = proc.Proc.env }
             ~module_path:(tmpdir ^ "/shared_data")
             ~scope:{ Modinst.sc_label = "parent"; sc_modules = []; sc_search = []; sc_parent = None }
         in
         ignore (Kernel.map_shared_file k proc ~path:(tmpdir ^ "/shared_data") ~prot:Prot.Read_only);
         let base =
           match Modinst.find_export inst "presto_results" with
           | Some addr -> addr
           | None -> failwith "presto_results not exported"
         in
         results := read_results k proc ~base_of_results:base ~workers;
         Fs.unlink fs (tmpdir ^ "/shared_data");
         Fs.unlink fs (tmpdir ^ "/shared_data.o");
         Fs.rmdir fs tmpdir;
         0));
  Kernel.run k;
  !results

(* ----- the post-processor baseline ----- *)

let run_postprocessed ldl ~workers ~work_iters ~app_id =
  if workers > max_workers then invalid_arg "Presto.run_postprocessed: too many workers";
  let k = Ldl.kernel ldl in
  let fs = Kernel.fs k in
  (* Pre-agreed shared segment for the explicitly placed variables. *)
  if not (Fs.exists fs "/shared/presto") then Fs.mkdir fs "/shared/presto";
  let seg_path = "/shared/presto/seg_" ^ app_id in
  Fs.create_file fs seg_path;
  let base = Fs.addr_of_path fs seg_path in
  let shared =
    [ ("presto_lock", base); ("presto_nworkers", base + 4); ("presto_results", base + 8) ]
  in
  (* Compile, then grovel over the assembly. *)
  let asm = Cc.to_asm (child_source ~work_iters) in
  let lines_scanned = List.length (String.split_on_char '\n' asm) in
  (* Bill the groveling: the paper's post-processor consumed a quarter to
     a third of total compilation time; ~60 cycles of lex work per
     assembly line reproduces that share against our pipeline. *)
  Hemlock_util.(Stats.cur ()).instructions <-
    Hemlock_util.(Stats.cur ()).instructions + (60 * lines_scanned);
  let asm', rewritten = postprocess ~shared asm in
  let obj =
    match Hemlock_isa.Asm.assemble ~name:"main.o" asm' with
    | obj -> obj
    | exception Hemlock_isa.Asm.Error { line; msg } ->
      failwith (Printf.sprintf "post-processed asm line %d: %s" line msg)
  in
  let home = "/home/presto_pp_" ^ app_id in
  Fs.mkdir fs home;
  write_obj fs (home ^ "/main.o") obj;
  let ctx = { Search.fs; cwd = Path.of_string ~cwd:Path.root home; env = [] } in
  let _warnings =
    Lds.link ctx
      ~specs:[ { Lds.sp_name = "main.o"; sp_class = Sharing.Static_private } ]
      ~output:"worker" ()
  in
  let results = ref [] in
  ignore
    (Kernel.spawn_native k ~name:"presto-pp-parent" (fun k proc ->
         (* Zero the segment (lock and counter). *)
         ignore (Kernel.map_shared_file k proc ~path:seg_path ~prot:Prot.Read_write);
         for i = 0 to 1 + workers do
           Kernel.store_u32 k proc (base + (4 * i)) 0
         done;
         let kids = spawn_children k ~prog:(home ^ "/worker") ~env:[] ~workers ~parent:proc in
         (* The old world: the parent must push the mapping into every
            child (inherited shmat); nothing faults it in on demand. *)
         List.iter
           (fun child ->
             ignore (Kernel.map_shared_file k child ~path:seg_path ~prot:Prot.Read_write))
           kids;
         wait_all k proc workers;
         results := read_results k proc ~base_of_results:(base + 8) ~workers;
         Fs.unlink fs seg_path;
         0));
  Kernel.run k;
  (!results, (lines_scanned, rewritten))

(** The rwhod / rwho workload (§4 "Administrative Files").

    rwhod receives status broadcasts from its peers.  The original
    implementation rewrote one spool file per remote machine on every
    update, and rwho / ruptime re-read and re-parsed all of them on
    every invocation.  The Hemlock re-implementation keeps the database
    as a pointer-linked structure in a shared segment: the daemon
    updates records in place and the utilities walk the structure
    directly.

    Both implementations produce byte-identical reports, so tests can
    check them against each other. *)

module Kernel = Hemlock_os.Kernel
module Proc = Hemlock_os.Proc

type user = { u_name : string; u_tty : string; u_idle : int }

type status = {
  st_host : string;
  st_load1 : int;  (** load average x100 *)
  st_load5 : int;
  st_load15 : int;
  st_uptime : int;  (** seconds *)
  st_users : user list;
}

(** Deterministic status generator. *)
val gen_status : Hemlock_util.Prng.t -> host:string -> max_users:int -> status

(** Host name list "host00".."hostNN". *)
val hosts : int -> string list

(** Network packet encoding (common to both daemons — the wire format
    is not what the paper compares). *)
val encode_packet : status -> Bytes.t

val decode_packet : Bytes.t -> status

(** {1 File-based implementation} *)

module Files : sig
  (** Spool directory used: [/tmp/rwho]. *)
  val setup : Kernel.t -> unit

  (** Store one update: linearise and rewrite the host's spool file. *)
  val store : Kernel.t -> Proc.t -> status -> unit

  (** rwho: all logged-in users across hosts, sorted by name. *)
  val rwho : Kernel.t -> Proc.t -> string

  (** ruptime: one line per host, sorted. *)
  val ruptime : Kernel.t -> Proc.t -> string
end

(** {1 Shared-memory implementation} *)

module Shm : sig
  (** Database segment: [/shared/rwho/db]. *)
  val setup : Kernel.t -> Proc.t -> unit

  (** Update the host's record in place (allocating it on first sight). *)
  val store : Kernel.t -> Proc.t -> status -> unit

  val rwho : Kernel.t -> Proc.t -> string
  val ruptime : Kernel.t -> Proc.t -> string
end

type style = File_spool | Shared_db

(** [run_simulation ~style ~n_hosts ~rounds ~max_users] boots a machine,
    runs a daemon consuming [rounds] full sweeps of broadcast updates,
    then one rwho and one ruptime call.  Returns the reports plus the
    counter deltas of (daemon update phase, rwho call, ruptime call). *)
val run_simulation :
  style:style ->
  n_hosts:int ->
  rounds:int ->
  max_users:int ->
  (string * string) * (Hemlock_util.Stats.t * Hemlock_util.Stats.t * Hemlock_util.Stats.t)

(** [run_cluster ~style ~machines ~rounds ~max_users] is the paper's
    actual deployment shape: one kernel per machine ({!Hemlock_os.Cluster}),
    an rwhod on each receiving its peers' broadcasts and maintaining its
    own local database, and the rwho/ruptime utilities run on machine 0.
    Returns machine 0's reports and the rwho-call counter delta. *)
val run_cluster :
  style:style ->
  machines:int ->
  rounds:int ->
  max_users:int ->
  (string * string) * Hemlock_util.Stats.t

(** {1 Gossip deployment}

    The cluster mode that survives a lossy network: pull-based
    anti-entropy instead of broadcast-everything.  Each epoch every
    live machine versions its own status with the epoch number, then
    pulls from one random peer by sending a digest of its known
    (host, version) pairs; the peer answers with a delta of everything
    newer.  Merging keeps the highest version per host, so drops merely
    delay convergence and duplicates are idempotent.  A host whose
    newest version has aged past [down_after] epochs is reported
    "down", exactly like real ruptime.

    Determinism: all draws (status contents, peer choice) come from
    per-machine {!Hemlock_util.Prng.stream}s consumed on the machine's
    own pinned domain, so one seed reproduces the same gossip trace at
    every domain count and under every network profile. *)
module Gossip : sig
  type t

  (** [create style ~machines ()] boots a cluster, sets up each
      machine's database and spawns its network daemon.  [down_after]
      (default 4) is the staleness horizon in epochs; [profile] and
      [seed] default to the environment as in {!Hemlock_os.Cluster.create};
      [domains] is passed to every internal {!Hemlock_os.Cluster.run}. *)
  val create :
    ?down_after:int ->
    ?max_users:int ->
    ?profile:Hemlock_os.Net.profile ->
    ?seed:int ->
    ?domains:int ->
    style ->
    machines:int ->
    unit ->
    t

  val cluster : t -> Hemlock_os.Cluster.t

  (** Epochs elapsed (the gossip clock — each {!epoch} or {!settle}
      advances it). *)
  val epoch_count : t -> int

  (** One full epoch: every live machine records a fresh local status
      and gossips.  [drive] may inject extra per-machine work before
      the cluster runs — the traffic harness's simulated users. *)
  val epoch : ?drive:(int -> Kernel.t -> unit) -> t -> unit

  (** Anti-entropy only: gossip without new statuses. *)
  val settle : ?drive:(int -> Kernel.t -> unit) -> t -> unit

  (** Do every live machine's database reports read identically? *)
  val converged : t -> bool

  (** Run {!settle} epochs until {!converged}; [Some epochs_taken] or
      [None] when [max_epochs] (default 64) wasn't enough. *)
  val converge : ?max_epochs:int -> t -> int option

  (** Machine [i]'s view: is [host] presumed down? *)
  val is_down : t -> int -> string -> bool

  (** rwho as machine [i] sees it — users on hosts believed up. *)
  val rwho : t -> int -> string

  (** ruptime as machine [i] sees it, with "down" marking. *)
  val ruptime : t -> int -> string

  (** [kill g i] stops machine [i] ticking and partitions it off;
      {!revive} undoes both.  Peers age it out as "down". *)
  val kill : t -> int -> unit

  val revive : t -> int -> unit

  (** Named partitions over the underlying network ({!Hemlock_os.Net}). *)
  val partition : t -> name:string -> groups:int list list -> unit

  val heal : t -> name:string -> unit
end

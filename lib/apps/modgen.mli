(** Reachability-graph workload generator for the lazy-linking
    experiment (E8).

    Builds a chain of M modules: module i exports function [fI] and
    datum [dI]; [fI(x)] returns [dI] when [x = 0] and otherwise recurses
    into [f(I+1)(x-1)], also reading [d(I+1)].  Each template embeds a
    module list naming its successor (lds -r metadata), so the {e
    reachability graph} spans all M modules while a run that calls
    [f0(u)] only ever {e uses} modules 0..u — the situation §3 motivates
    lazy linking with.

    Three load strategies are driven over the same templates:
    Hemlock's fault-driven lazy linking, fully eager linking, and the
    jump-table (PLT) loader. *)

module Kernel = Hemlock_os.Kernel
module Ldl = Hemlock_linker.Ldl

(** Expected value of [f0(u)] over a chain built with [modules]
    modules. *)
val expected : modules:int -> used:int -> int

(** [install ldl ~dir ~modules] compiles the chain templates into [dir]
    (which must exist; use a directory under /shared for public
    modules), embedding each one's module-list metadata.  Returns the
    template paths in chain order.

    With [~deep:true] the per-module lists stay empty; pair it with
    {!link_driver}'s [~deep] so the driver names the whole chain and
    every inter-module reference walks the root scope's full module list
    — the deep-dependency workload behind [bench/main.exe -- perf-link]. *)
val install : ?deep:bool -> Ldl.t -> dir:string -> modules:int -> string list

(** Driver program source calling [f0(used)] and printing the result. *)
val driver_source : used:int -> string

(** [link_driver ldl ~dir ~out ~used] links a driver program whose only
    dynamic module is the chain head; with [~deep:n > 0] the driver
    instead names all [n] chain modules as dynamic dependencies. *)
val link_driver : ?deep:int -> Ldl.t -> dir:string -> out:string -> used:int -> unit

(** Run the driver under normal (lazy) Hemlock linking; returns
    (printed result, modules linked, modules mapped). *)
val run_lazy : Ldl.t -> prog:string -> int * int * int

(** Same, but force every reachable module to be linked eagerly first. *)
val run_eager : Ldl.t -> prog:string -> int * int * int

(** Run under the jump-table loader: all modules loaded and data
    resolved at start, functions bound on first call.  Returns
    (printed result, stubs bound, stubs created). *)
val run_plt :
  Hemlock_baseline.Plt.t -> templates:string list -> used:int -> int * int * int

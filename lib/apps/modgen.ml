module Kernel = Hemlock_os.Kernel
module Proc = Hemlock_os.Proc
module Fs = Hemlock_sfs.Fs
module Path = Hemlock_sfs.Path
module Objfile = Hemlock_obj.Objfile
module Cc = Hemlock_cc.Cc
module Lds = Hemlock_linker.Lds
module Ldl = Hemlock_linker.Ldl
module Search = Hemlock_linker.Search
module Sharing = Hemlock_linker.Sharing
module Modinst = Hemlock_linker.Modinst
module Plt = Hemlock_baseline.Plt

let datum i = 100 + i

let expected ~modules ~used =
  let rec f i x =
    if i >= modules then invalid_arg "Modgen.expected: chain too short"
    else if x < 1 then datum i
    else f (i + 1) (x - 1) + datum i + datum (i + 1)
  in
  f 0 used

(* Deep-mode modules carry [deep_xrefs] extra data references into
   modules further down the chain, summed behind a branch the driver's
   recursion never takes.  Each is a real reloc the linker must resolve
   through the root scope's full module list — like the bulk of the
   references a real program ships, they never execute — so resolution
   traffic scales like a symbol-rich program while the executed
   instruction stream (and [expected]) stays that of the plain chain.
   Non-deep chains skip them: their scopes only reach each module's
   successor, so a forward reference would be unresolvable. *)
let deep_xrefs = 6

let module_source ?(deep = false) ~modules i =
  if i = modules - 1 then
    Printf.sprintf {|
int d%d = %d;
int f%d(int x) {
  return d%d;
}
|} i (datum i) i i
  else
    let dead =
      if not deep then []
      else
        List.filter
          (fun j -> j <> i && j <> i + 1)
          (List.sort_uniq compare
             (List.init deep_xrefs (fun j -> min (modules - 1) (i + 2 + j))))
    in
    let externs =
      String.concat ""
        (List.map (fun j -> Printf.sprintf "extern int d%d;\n" j) dead)
    in
    let dead_branch =
      if dead = [] then ""
      else
        Printf.sprintf "  if (x > 1000000) { return %s; }\n"
          (String.concat " + " (List.map (fun j -> Printf.sprintf "d%d" j) dead))
    in
    Printf.sprintf
      {|
extern int f%d(int x);
extern int d%d;
%sint d%d = %d;
int f%d(int x) {
  if (x < 1) { return d%d; }
%s  return f%d(x - 1) + d%d + d%d;
}
|}
      (i + 1) (i + 1) externs i (datum i) i i dead_branch (i + 1) i (i + 1)

let install ?(deep = false) ldl ~dir ~modules =
  let k = Ldl.kernel ldl in
  let fs = Kernel.fs k in
  let ctx = { Search.fs; cwd = Path.root; env = [] } in
  List.init modules (fun i ->
      let template = Printf.sprintf "%s/mod%d.o" dir i in
      let obj = Cc.to_object ~name:(Filename.basename template) (module_source ~deep ~modules i) in
      Fs.write_file fs template (Objfile.serialize obj);
      (* Embed the successor in the module's own list: the reachability
         graph the paper describes, one edge per module.  In [deep] mode
         the own lists stay empty and the driver names the whole chain
         instead, so every inter-module reference walks the root scope's
         full module list — the worst case for linear resolution. *)
      let own =
        if deep || i = modules - 1 then [] else [ Printf.sprintf "mod%d.o" (i + 1) ]
      in
      Lds.embed_metadata ctx ~template ~modules:own ~search_path:[ dir ];
      template)

let driver_source ~used =
  Printf.sprintf {|
extern int f0(int x);
int main() {
  print_int(f0(%d));
  return 0;
}
|} used

let link_driver ?(deep = 0) ldl ~dir ~out ~used =
  let k = Ldl.kernel ldl in
  let fs = Kernel.fs k in
  let home = Filename.dirname out in
  if not (Fs.exists fs home) then Fs.mkdir fs home;
  Fs.write_file fs (home ^ "/main.o")
    (Objfile.serialize (Cc.to_object ~name:"main.o" (driver_source ~used)));
  let cls =
    if String.length dir >= 7 && String.sub dir 0 7 = "/shared" then Sharing.Dynamic_public
    else Sharing.Dynamic_private
  in
  let chain =
    if deep <= 0 then [ { Lds.sp_name = "mod0.o"; sp_class = cls } ]
    else
      (* Deep mode: the driver names every module in the chain, so the
         root scope's module list is the whole workload. *)
      List.init deep (fun i ->
          { Lds.sp_name = Printf.sprintf "mod%d.o" i; sp_class = cls })
  in
  let ctx = { Search.fs; cwd = Path.of_string ~cwd:Path.root home; env = [] } in
  ignore
    (Lds.link ctx ~cli_dirs:[ dir ]
       ~specs:({ Lds.sp_name = "main.o"; sp_class = Sharing.Static_private } :: chain)
       ~output:out ())

let run_driver ldl ~prog =
  let k = Ldl.kernel ldl in
  Kernel.console_clear k;
  let proc = Kernel.spawn_exec k ~name:prog prog in
  Kernel.run k;
  let result =
    match int_of_string_opt (String.trim (Kernel.console k)) with
    | Some v -> v
    | None -> failwith ("driver output not an integer: " ^ Kernel.console k)
  in
  let instances = Ldl.instances ldl proc in
  let linked = List.length (List.filter (fun i -> i.Modinst.inst_linked) instances) in
  (result, linked, List.length instances)

let run_lazy ldl ~prog = run_driver ldl ~prog

let run_eager ldl ~prog =
  Ldl.set_bind_now ldl true;
  Fun.protect ~finally:(fun () -> Ldl.set_bind_now ldl false) (fun () -> run_driver ldl ~prog)

let boot_source =
  String.concat "\n"
    [
      "        .text";
      "        .globl _pltstart";
      "_pltstart:";
      "        jal  main";
      "        move $a0, $v0";
      "        li   $v0, " ^ string_of_int Hemlock_os.Sysno.exit;
      "        syscall";
      "";
    ]

let run_plt plt ~templates ~used =
  let k = Plt.kernel plt in
  let fs = Kernel.fs k in
  if not (Fs.exists fs "/home/plt") then Fs.mkdir fs "/home/plt";
  let driver = "/home/plt/driver.o" in
  Fs.write_file fs driver
    (Objfile.serialize (Cc.to_object ~name:"driver.o" (driver_source ~used)));
  let boot = "/home/plt/boot.o" in
  Fs.write_file fs boot
    (Objfile.serialize (Hemlock_isa.Asm.assemble ~name:"boot.o" boot_source));
  Kernel.console_clear k;
  let proc = Kernel.spawn_blank k ~name:"plt-driver" () in
  Plt.load plt proc ~located:((boot :: driver :: templates));
  let entry =
    match Plt.dlsym plt proc "_pltstart" with
    | Some a -> a
    | None -> failwith "no _pltstart"
  in
  Kernel.set_isa_entry k proc ~entry;
  Kernel.run k;
  let result =
    match int_of_string_opt (String.trim (Kernel.console k)) with
    | Some v -> v
    | None -> failwith ("plt driver output not an integer: " ^ Kernel.console k)
  in
  (result, Plt.bound plt proc, Plt.stubs plt proc)

module Kernel = Hemlock_os.Kernel
module Proc = Hemlock_os.Proc
module Fs = Hemlock_sfs.Fs
module Prot = Hemlock_vm.Prot
module Stats = Hemlock_util.Stats
module Prng = Hemlock_util.Prng
module Serializer = Hemlock_baseline.Serializer
module Shm_heap = Hemlock_runtime.Shm_heap
module Shared_list = Hemlock_runtime.Shared_list
module Shared_table = Hemlock_runtime.Shared_table

type user = { u_name : string; u_tty : string; u_idle : int }

type status = {
  st_host : string;
  st_load1 : int;
  st_load5 : int;
  st_load15 : int;
  st_uptime : int;
  st_users : user list;
}

let hosts n = List.init n (fun i -> Printf.sprintf "host%02d" i)

let gen_status rng ~host ~max_users =
  let n_users = Prng.int rng (max_users + 1) in
  {
    st_host = host;
    st_load1 = Prng.int rng 400;
    st_load5 = Prng.int rng 300;
    st_load15 = Prng.int rng 200;
    st_uptime = 3600 + Prng.int rng 1_000_000;
    st_users =
      List.init n_users (fun i ->
          {
            u_name = Printf.sprintf "user%c%c" (Char.chr (97 + Prng.int rng 26)) (Char.chr (97 + i));
            u_tty = Printf.sprintf "tty%d" i;
            u_idle = Prng.int rng 7200;
          });
  }

(* ----- wire format (common to both styles) ----- *)

let value_of_status st =
  Serializer.List
    [
      Serializer.Str st.st_host;
      Serializer.Int st.st_load1;
      Serializer.Int st.st_load5;
      Serializer.Int st.st_load15;
      Serializer.Int st.st_uptime;
      Serializer.List
        (List.map
           (fun u ->
             Serializer.List
               [ Serializer.Str u.u_name; Serializer.Str u.u_tty; Serializer.Int u.u_idle ])
           st.st_users);
    ]

let status_of_value = function
  | Serializer.List
      [
        Serializer.Str host;
        Serializer.Int l1;
        Serializer.Int l5;
        Serializer.Int l15;
        Serializer.Int up;
        Serializer.List users;
      ] ->
    {
      st_host = host;
      st_load1 = l1;
      st_load5 = l5;
      st_load15 = l15;
      st_uptime = up;
      st_users =
        List.map
          (function
            | Serializer.List
                [ Serializer.Str name; Serializer.Str tty; Serializer.Int idle ] ->
              { u_name = name; u_tty = tty; u_idle = idle }
            | _ -> raise (Serializer.Parse_error "bad user record"))
          users;
    }
  | _ -> raise (Serializer.Parse_error "bad status record")

let encode_packet st = Serializer.to_binary (value_of_status st)

let decode_packet b = status_of_value (Serializer.of_binary b)

(* ----- report formatting (shared) ----- *)

let format_load n = Printf.sprintf "%d.%02d" (n / 100) (n mod 100)

let format_rwho entries =
  let entries =
    List.sort
      (fun (n1, h1, t1, _) (n2, h2, t2, _) -> compare (n1, h1, t1) (n2, h2, t2))
      entries
  in
  String.concat ""
    (List.map
       (fun (name, host, tty, idle) ->
         Printf.sprintf "%-10s %s:%-6s idle %4d\n" name host tty idle)
       entries)

let format_ruptime rows =
  let rows = List.sort compare rows in
  String.concat ""
    (List.map
       (fun (host, uptime, n_users, l1, l5, l15) ->
         Printf.sprintf "%-8s up %6d, %2d users, load %s %s %s\n" host uptime n_users
           (format_load l1) (format_load l5) (format_load l15))
       rows)

(* ----- file-based implementation ----- *)

module Files = struct
  let spool = "/tmp/rwho"

  let setup k =
    let fs = Kernel.fs k in
    if not (Fs.exists fs spool) then Fs.mkdir fs spool

  let spool_file host = spool ^ "/whod." ^ host

  (* Every update rewrites the whole spool file, as rwhod did. *)
  let store k proc st =
    let ascii = Serializer.to_ascii (value_of_status st) in
    let fd = Kernel.sys_open k proc ~create:true ~trunc:true (spool_file st.st_host) in
    ignore (Kernel.sys_write k proc fd (Bytes.of_string ascii));
    Kernel.sys_close k proc fd

  let read_all k proc =
    let fs = Kernel.fs k in
    (Stats.cur ()).syscalls <- (Stats.cur ()).syscalls + 1 (* readdir *);
    let names = Fs.readdir fs spool in
    List.filter_map
      (fun name ->
        if String.length name > 5 && String.sub name 0 5 = "whod." then begin
          let fd = Kernel.sys_open k proc (spool ^ "/" ^ name) in
          let bytes = Kernel.sys_read k proc fd 0x100000 in
          Kernel.sys_close k proc fd;
          Some (status_of_value (Serializer.of_ascii (Bytes.to_string bytes)))
        end
        else None)
      names

  let rwho k proc =
    let entries =
      List.concat_map
        (fun st ->
          List.map (fun u -> (u.u_name, st.st_host, u.u_tty, u.u_idle)) st.st_users)
        (read_all k proc)
    in
    format_rwho entries

  let ruptime k proc =
    let rows =
      List.map
        (fun st ->
          (st.st_host, st.st_uptime, List.length st.st_users, st.st_load1, st.st_load5,
           st.st_load15))
        (read_all k proc)
    in
    format_ruptime rows
end

(* ----- shared-memory implementation ----- *)

module Shm = struct
  let db_path = "/shared/rwho/db"

  (* The root block is the heap's first allocation: header (20 bytes)
     plus the block-size word.  Two words: the host-list head and a
     pointer to the host-name index table. *)
  let root_of base = base + 24

  let head_of base = root_of base

  let table_of k proc base = Kernel.load_u32 k proc (root_of base + 4)

  (* Host record fields. *)
  let f_host = 0
  let f_load1 = 1
  let f_load5 = 2
  let f_load15 = 3
  let f_uptime = 4
  let f_users = 5 (* the users list head lives inside the record *)
  let host_fields = 6

  let user_fields = 3 (* name ptr, tty ptr, idle *)

  let users_head_addr node = node + 4 + (4 * f_users)

  let setup k proc =
    let fs = Kernel.fs k in
    if not (Fs.exists fs "/shared/rwho") then Fs.mkdir fs "/shared/rwho";
    Fs.create_file fs db_path;
    let base = Shm_heap.create k proc ~path:db_path in
    let root = Shm_heap.alloc k proc ~heap:base 8 in
    assert (root = root_of base);
    Kernel.store_u32 k proc root 0;
    (* hostname -> record index, so updates need not walk the list *)
    Kernel.store_u32 k proc (root + 4)
      (Shared_table.create k proc ~heap:base ~capacity:509)

  let attach k proc = Kernel.map_shared_file k proc ~path:db_path ~prot:Prot.Read_write

  let find_host k proc ~base host =
    Shared_table.get k proc ~table:(table_of k proc base) ~key:host

  let clear_users k proc ~heap node =
    let head = users_head_addr node in
    let rec drain () =
      match Kernel.load_u32 k proc head with
      | 0 -> ()
      | unode ->
        Shm_heap.free k proc ~heap (Shared_list.field k proc unode 0);
        Shm_heap.free k proc ~heap (Shared_list.field k proc unode 1);
        ignore (Shared_list.pop k proc ~head ~n_fields:user_fields);
        drain ()
    in
    drain ()

  (* Update in place: no linearisation, no file rewrite. *)
  let store k proc st =
    let base = attach k proc in
    let node =
      match find_host k proc ~base st.st_host with
      | Some node -> node
      | None ->
        let node =
          Shared_list.push k proc ~head:(head_of base)
            ~fields:(List.init host_fields (fun _ -> 0))
        in
        Shared_list.set_field k proc node f_host
          (Shared_list.alloc_string k proc ~near:base st.st_host);
        Shared_table.put k proc ~table:(table_of k proc base) ~key:st.st_host node;
        node
    in
    Shared_list.set_field k proc node f_load1 st.st_load1;
    Shared_list.set_field k proc node f_load5 st.st_load5;
    Shared_list.set_field k proc node f_load15 st.st_load15;
    Shared_list.set_field k proc node f_uptime st.st_uptime;
    clear_users k proc ~heap:base node;
    List.iter
      (fun u ->
        ignore
          (Shared_list.push k proc ~head:(users_head_addr node)
             ~fields:
               [
                 Shared_list.alloc_string k proc ~near:base u.u_name;
                 Shared_list.alloc_string k proc ~near:base u.u_tty;
                 u.u_idle;
               ]))
      (List.rev st.st_users)

  let fold_hosts k proc f =
    let base = attach k proc in
    let acc = ref [] in
    Shared_list.iter k proc ~head:(head_of base) (fun node -> acc := f node :: !acc);
    List.rev !acc

  let users_of k proc node =
    let acc = ref [] in
    Shared_list.iter k proc ~head:(users_head_addr node) (fun unode ->
        acc :=
          {
            u_name = Shared_list.read_string k proc (Shared_list.field k proc unode 0);
            u_tty = Shared_list.read_string k proc (Shared_list.field k proc unode 1);
            u_idle = Shared_list.field k proc unode 2;
          }
          :: !acc);
    List.rev !acc

  let rwho k proc =
    let entries =
      List.concat
        (fold_hosts k proc (fun node ->
             let host = Shared_list.read_string k proc (Shared_list.field k proc node f_host) in
             List.map
               (fun u -> (u.u_name, host, u.u_tty, u.u_idle))
               (users_of k proc node)))
    in
    format_rwho entries

  let ruptime k proc =
    let rows =
      fold_hosts k proc (fun node ->
          ( Shared_list.read_string k proc (Shared_list.field k proc node f_host),
            Shared_list.field k proc node f_uptime,
            List.length (users_of k proc node),
            Shared_list.field k proc node f_load1,
            Shared_list.field k proc node f_load5,
            Shared_list.field k proc node f_load15 ))
    in
    format_ruptime rows
end

(* ----- the simulation harness ----- *)

type style = File_spool | Shared_db

let run_simulation ~style ~n_hosts ~rounds ~max_users =
  let k = Kernel.create () in
  let host_names = hosts n_hosts in
  Kernel.msgq_create k "rwhod-net" ~capacity:(max 8 (n_hosts * 2));
  (match style with
  | File_spool -> Files.setup k
  | Shared_db ->
    let init = Kernel.spawn_native k ~name:"rwho-setup" (fun k proc ->
        Shm.setup k proc;
        0)
    in
    ignore init;
    Kernel.run k);
  let store k proc st =
    match style with
    | File_spool -> Files.store k proc st
    | Shared_db -> Shm.store k proc st
  in
  let total_updates = rounds * n_hosts in
  (* The daemon: receive a packet, decode, store. *)
  ignore
    (Kernel.spawn_native k ~name:"rwhod" (fun k proc ->
         for _ = 1 to total_updates do
           store k proc (decode_packet (Kernel.msg_recv k proc "rwhod-net"))
         done;
         0));
  (* The network: peers broadcasting their status each round. *)
  ignore
    (Kernel.spawn_native k ~name:"network" (fun k proc ->
         let rng = Prng.create ~seed:42 in
         for _ = 1 to rounds do
           List.iter
             (fun host ->
               Kernel.msg_send k proc "rwhod-net" (encode_packet (gen_status rng ~host ~max_users)))
             host_names
         done;
         0));
  let before = Stats.snapshot () in
  Kernel.run k;
  let update_stats = Stats.diff ~before ~after:(Stats.snapshot ()) in
  (* One rwho call and one ruptime call, measured separately. *)
  let reports = ref ("", "") in
  let measure_util f =
    let before = Stats.snapshot () in
    ignore
      (Kernel.spawn_native k ~name:"rwho-util" (fun k proc ->
           f k proc;
           0));
    Kernel.run k;
    Stats.diff ~before ~after:(Stats.snapshot ())
  in
  let rwho_stats =
    measure_util (fun k proc ->
        let r =
          match style with File_spool -> Files.rwho k proc | Shared_db -> Shm.rwho k proc
        in
        reports := (r, snd !reports))
  in
  let ruptime_stats =
    measure_util (fun k proc ->
        let r =
          match style with
          | File_spool -> Files.ruptime k proc
          | Shared_db -> Shm.ruptime k proc
        in
        reports := (fst !reports, r))
  in
  (!reports, (update_stats, rwho_stats, ruptime_stats))

(* ----- the true multi-machine deployment ----- *)

module Cluster = Hemlock_os.Cluster
module Net = Hemlock_os.Net

(* The original broadcast-everything deployment: every machine pushes
   its status to every peer each round.  Kept as the loss-free baseline
   (experiment E5 and the golden transcripts measure it); the gossip
   deployment below is the cluster mode that survives a real network. *)
let run_cluster ~style ~machines ~rounds ~max_users =
  let cluster = Cluster.create ~machines () in
  let store k proc st =
    match style with
    | File_spool -> Files.store k proc st
    | Shared_db -> Shm.store k proc st
  in
  for i = 0 to machines - 1 do
    let k = Cluster.machine cluster i in
    (match style with
    | File_spool -> Files.setup k
    | Shared_db ->
      ignore (Kernel.spawn_native k ~name:"rwho-setup" (fun k proc -> Shm.setup k proc; 0));
      Kernel.run k);
    (* the receiving half of rwhod: consume peers' broadcasts forever *)
    let daemon =
      Kernel.spawn_native k ~name:"rwhod" (fun k proc ->
          while true do
            store k proc (decode_packet (Kernel.msg_recv k proc Cluster.inbox))
          done;
          0)
    in
    Kernel.set_daemon k daemon;
    (* the sending half: record local status, broadcast it to the peers *)
    ignore
      (Kernel.spawn_native k ~name:"rwhod-tx" (fun k proc ->
           let rng = Prng.create ~seed:(1000 + i) in
           for _ = 1 to rounds do
             let st = gen_status rng ~host:(Printf.sprintf "host%02d" i) ~max_users in
             store k proc st;
             Cluster.broadcast cluster ~from:i (encode_packet st)
           done;
           0))
  done;
  Cluster.run cluster;
  (* the utilities run on machine 0, which now mirrors every host *)
  let k0 = Cluster.machine cluster 0 in
  let reports = ref ("", "") in
  let before = Stats.snapshot () in
  ignore
    (Kernel.spawn_native k0 ~name:"rwho" (fun k proc ->
         let r, u =
           match style with
           | File_spool -> (Files.rwho k proc, Files.ruptime k proc)
           | Shared_db -> (Shm.rwho k proc, Shm.ruptime k proc)
         in
         reports := (r, u);
         0));
  Kernel.run k0;
  (!reports, Stats.diff ~before ~after:(Stats.snapshot ()))

(* ----- pull-based gossip / anti-entropy deployment -----

   Broadcast-everything is O(n^2) datagrams per round and falls apart
   the moment the network drops packets: a missed broadcast is gone
   forever.  Real rwhod survived on a campus network by treating the
   spool as a database with timestamps and aging hosts out.  This
   deployment does the same over the simulated lossy network: each
   epoch every live machine records its own status (versioned by
   epoch), then pulls from one random peer — it sends a digest of the
   (host, version) pairs it knows, and the peer answers with a delta of
   everything newer.  Entries merge by highest version, so duplicated
   or reordered deltas are harmless, and a partitioned or dead host
   simply stops producing new versions and ages out as "down" after
   [down_after] epochs.  All randomness (status contents, peer choice)
   comes from per-machine [Prng.stream]s consumed on the machine's own
   pinned domain, so a seed reproduces the same gossip trace at every
   domain count. *)

module Gossip = struct
  (* Per-machine soft state alongside the authoritative /shared (or
     spool) database: the newest version merged per host, and a mirror
     of each host's latest status so digests and deltas need not
     re-parse the database. *)
  type peer = {
    p_versions : (string, int) Hashtbl.t;
    p_latest : (string, status) Hashtbl.t;
  }

  type gossip = {
    cluster : Cluster.t;
    style : style;
    machines : int;
    max_users : int;
    down_after : int;
    peers : peer array;
    rngs : Prng.t array;  (* per-machine: status draws, then peer pick *)
    alive : bool array;
    domains : int option;
    mutable epoch : int;
  }

  type t = gossip

  let host_name i = Printf.sprintf "host%02d" i

  let store_status g k proc st =
    match g.style with
    | File_spool -> Files.store k proc st
    | Shared_db -> Shm.store k proc st

  (* Merge one gossiped status: newest version per host wins, writing
     through to the shared database. *)
  let merge g i k proc st ver =
    let peer = g.peers.(i) in
    let cur = Option.value ~default:(-1) (Hashtbl.find_opt peer.p_versions st.st_host) in
    if ver > cur then begin
      store_status g k proc st;
      Hashtbl.replace peer.p_versions st.st_host ver;
      Hashtbl.replace peer.p_latest st.st_host st
    end

  let digest_of peer =
    List.sort compare
      (Hashtbl.fold (fun host ver acc -> (host, ver) :: acc) peer.p_versions [])

  let encode_pull ~requester peer =
    Serializer.to_binary
      (Serializer.List
         [
           Serializer.Str "pull";
           Serializer.Int requester;
           Serializer.List
             (List.map
                (fun (host, ver) ->
                  Serializer.List [ Serializer.Str host; Serializer.Int ver ])
                (digest_of peer));
         ])

  (* The per-machine network daemon: answers pulls with deltas, merges
     deltas, and executes remote-exec requests (the perf-net harness's
     simulated user traffic). *)
  let spawn_netd g i =
    let k = Cluster.machine g.cluster i in
    let d =
      Kernel.spawn_native k ~name:"netd" (fun k proc ->
          while true do
            (match Serializer.of_binary (Kernel.msg_recv k proc Cluster.inbox) with
            | Serializer.List
                [ Serializer.Str "pull"; Serializer.Int requester; Serializer.List digest ]
              ->
              let have = Hashtbl.create 16 in
              List.iter
                (function
                  | Serializer.List [ Serializer.Str h; Serializer.Int ver ] ->
                    Hashtbl.replace have h ver
                  | _ -> ())
                digest;
              let peer = g.peers.(i) in
              let fresh =
                List.sort compare
                  (Hashtbl.fold
                     (fun host ver acc ->
                       if ver > Option.value ~default:(-1) (Hashtbl.find_opt have host)
                       then (host, ver) :: acc
                       else acc)
                     peer.p_versions [])
              in
              if fresh <> [] then
                Cluster.send g.cluster ~from:i ~dst:requester
                  (Serializer.to_binary
                     (Serializer.List
                        [
                          Serializer.Str "delta";
                          Serializer.List
                            (List.map
                               (fun (host, ver) ->
                                 Serializer.List
                                   [
                                     value_of_status (Hashtbl.find peer.p_latest host);
                                     Serializer.Int ver;
                                   ])
                               fresh);
                        ]))
            | Serializer.List [ Serializer.Str "delta"; Serializer.List entries ] ->
              List.iter
                (function
                  | Serializer.List [ stv; Serializer.Int ver ] ->
                    merge g i k proc (status_of_value stv) ver
                  | _ -> ())
                entries
            | Serializer.List [ Serializer.Str "exec"; Serializer.Int cost ] ->
              (* a remote-exec request: run the command, i.e. bill its
                 simulated work on this machine *)
              let st = Stats.cur () in
              st.instructions <- st.instructions + cost;
              st.context_switches <- st.context_switches + 1
            | _ -> ())
          done;
          0)
    in
    Kernel.set_daemon k d

  let create ?(down_after = 4) ?(max_users = 3) ?profile ?seed ?domains style ~machines
      () =
    let cluster = Cluster.create ?profile ?seed ~machines () in
    let wseed =
      (match seed with Some s -> s | None -> Net.seed_from_env ()) + 0x9e37
    in
    let g =
      {
        cluster;
        style;
        machines;
        max_users;
        down_after;
        peers =
          Array.init machines (fun _ ->
              { p_versions = Hashtbl.create 16; p_latest = Hashtbl.create 16 });
        rngs = Array.init machines (fun i -> Prng.stream ~seed:wseed ~index:i);
        alive = Array.make machines true;
        domains;
        epoch = 0;
      }
    in
    for i = 0 to machines - 1 do
      let k = Cluster.machine cluster i in
      (match style with
      | File_spool -> Files.setup k
      | Shared_db ->
        ignore
          (Kernel.spawn_native k ~name:"rwho-setup" (fun k proc ->
               Shm.setup k proc;
               0));
        Kernel.run k);
      spawn_netd g i
    done;
    g

  let cluster g = g.cluster

  let epoch_count g = g.epoch

  (* One gossip epoch.  Every live machine runs a short-lived tick
     process on its own kernel: optionally record a fresh local status
     (versioned by the new epoch), then pull from one random peer.
     [drive] can add extra per-machine traffic (the perf-net harness's
     users) before the cluster runs to quiescence. *)
  let tick ?drive ~gen g =
    (* the staleness clock only advances when hosts speak: an
       anti-entropy-only settle round must not age anyone out *)
    if gen then g.epoch <- g.epoch + 1;
    let e = g.epoch in
    for i = 0 to g.machines - 1 do
      if g.alive.(i) then begin
        let k = Cluster.machine g.cluster i in
        ignore
          (Kernel.spawn_native k ~name:"rwhod-tick" (fun k proc ->
               let rng = g.rngs.(i) in
               if gen then
                 merge g i k proc
                   (gen_status rng ~host:(host_name i) ~max_users:g.max_users)
                   e;
               (* uniform pull target over the other machines — dead
                  peers included: you don't know who is down *)
               if g.machines > 1 then begin
                 let p = Prng.int rng (g.machines - 1) in
                 let p = if p >= i then p + 1 else p in
                 Cluster.send g.cluster ~from:i ~dst:p
                   (encode_pull ~requester:i g.peers.(i))
               end;
               0));
        match drive with Some f -> f i k | None -> ()
      end
    done;
    Cluster.run ?domains:g.domains g.cluster

  (* A full epoch: new local statuses plus anti-entropy. *)
  let epoch ?drive g = tick ?drive ~gen:true g

  (* Anti-entropy only: no new versions, just convergence traffic. *)
  let settle ?drive g = tick ?drive ~gen:false g

  (* The actual database contents as machine [i] sees them, via the
     same utilities the paper ran. *)
  let db_reports g i =
    let k = Cluster.machine g.cluster i in
    let out = ref ("", "") in
    ignore
      (Kernel.spawn_native k ~name:"rwho-util" (fun k proc ->
           out :=
             (match g.style with
             | File_spool -> (Files.rwho k proc, Files.ruptime k proc)
             | Shared_db -> (Shm.rwho k proc, Shm.ruptime k proc));
           0));
    Kernel.run k;
    !out

  let fingerprint g i =
    let r, u = db_reports g i in
    Digest.to_hex (Digest.string (r ^ "\x00" ^ u))

  let converged g =
    let fp = ref None in
    let same = ref true in
    for i = 0 to g.machines - 1 do
      if g.alive.(i) then begin
        let f = fingerprint g i in
        match !fp with
        | None -> fp := Some f
        | Some f0 -> if f <> f0 then same := false
      end
    done;
    !same

  (* Anti-entropy epochs until every live machine's database reads the
     same; [Some epochs_taken] or [None] past the budget. *)
  let converge ?(max_epochs = 64) g =
    let rec go n =
      if converged g then Some n
      else if n >= max_epochs then None
      else begin
        settle g;
        go (n + 1)
      end
    in
    go 0

  (* rwhod's staleness rule: a host whose newest gossiped version is
     older than [down_after] epochs is presumed down. *)
  let is_down g i host =
    match Hashtbl.find_opt g.peers.(i).p_versions host with
    | None -> true
    | Some v -> g.epoch - v > g.down_after

  (* rwho on machine [i]: logged-in users on hosts believed up. *)
  let rwho g i =
    let peer = g.peers.(i) in
    let entries =
      Hashtbl.fold
        (fun host st acc ->
          if is_down g i host then acc
          else
            List.map (fun u -> (u.u_name, host, u.u_tty, u.u_idle)) st.st_users @ acc)
        peer.p_latest []
    in
    format_rwho entries

  (* ruptime on machine [i], with the "down" marking real ruptime had. *)
  let ruptime g i =
    let peer = g.peers.(i) in
    let hosts =
      List.sort compare (Hashtbl.fold (fun h _ acc -> h :: acc) peer.p_latest [])
    in
    String.concat ""
      (List.map
         (fun host ->
           let st = Hashtbl.find peer.p_latest host in
           if is_down g i host then
             Printf.sprintf "%-8s down since epoch %d\n" host
               (Option.value ~default:0 (Hashtbl.find_opt peer.p_versions host))
           else
             Printf.sprintf "%-8s up %6d, %2d users, load %s %s %s\n" host st.st_uptime
               (List.length st.st_users) (format_load st.st_load1)
               (format_load st.st_load5) (format_load st.st_load15))
         hosts)

  (* Simulated host death: the machine stops ticking and its traffic is
     cut by a single-machine partition (its daemon can no longer be
     reached, nor answer). *)
  let kill g i =
    g.alive.(i) <- false;
    Net.partition (Cluster.net g.cluster) ~name:(Printf.sprintf "down-m%d" i)
      ~groups:[ [ i ] ]

  let revive g i =
    g.alive.(i) <- true;
    Net.heal (Cluster.net g.cluster) ~name:(Printf.sprintf "down-m%d" i)

  let partition g ~name ~groups = Net.partition (Cluster.net g.cluster) ~name ~groups

  let heal g ~name = Net.heal (Cluster.net g.cluster) ~name
end

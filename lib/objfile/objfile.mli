(** The object-file format — the "lowest common denominator for language
    implementations" on which Hemlock's linkers operate (§3).

    A template [.o] holds three sections (text, data, bss), a symbol
    table, and relocation records.  Modules are created from templates by
    relocating them to an address and resolving cross-module references.

    The on-disk encoding is a compact little-endian binary with magic
    "HOBJ"; see {!serialize} / {!parse}. *)

(** Which section a definition lives in. *)
type section = Text | Data | Bss

type binding = Local | Global

(** A defined symbol: [offset] is relative to its section's start. *)
type symbol = { sym_name : string; sym_section : section; sym_offset : int; sym_binding : binding }

(** Relocation kinds understood by the linkers:
    - [Abs32]: a 32-bit data word holding an absolute address (pointers,
      jump tables, [.word sym]);
    - [Hi16] / [Lo16]: the LUI/ORI pair of an address load;
    - [Jump26]: the 26-bit word-target field of J/JAL — only reachable
      within the enclosing 256 MB region, the R3000 limit that forces
      the linker to insert veneers (§3);
    - [Gprel16]: a 16-bit gp-relative displacement — incompatible with a
      large sparse address space, so the linkers reject it in public
      modules (§3). *)
type reloc_kind = Abs32 | Hi16 | Lo16 | Jump26 | Gprel16

(** A relocation: patch the word at [rel_offset] within [rel_section]
    using the address of [rel_symbol] plus [rel_addend].  [rel_symbol]
    may be defined locally or be an undefined external reference. *)
type reloc = {
  rel_section : section;
  rel_offset : int;
  rel_kind : reloc_kind;
  rel_symbol : string;
  rel_addend : int;
}

type t = {
  obj_name : string;  (** provenance, e.g. the template's path *)
  text : Bytes.t;
  data : Bytes.t;
  bss_size : int;
  symbols : symbol list;
  relocs : reloc list;
  uses_gp : bool;  (** compiled with gp-relative addressing enabled *)
  own_modules : string list;
      (** scoped-linking metadata optionally embedded by lds -r: the
          module's own module list (§2) *)
  own_search_path : string list;  (** ... and its own search path *)
}

val section_to_string : section -> string
val reloc_kind_to_string : reloc_kind -> string

val empty : name:string -> t

(** Total loaded size: text + data + bss, each padded to 4 bytes. *)
val load_size : t -> int

(** Offsets of each section within the loaded image (text at 0, then
    data, then bss), each aligned to 4. *)
val section_bases : t -> int * int * int

(** Kill switch for the hashed export index (set from the
    [HEMLOCK_NO_SYMHASH] environment variable at start-up).  Lookup
    results are identical either way; only host-side speed and the
    [sym_hash_*] observability counters change. *)
val sym_hash_enabled : bool ref

(** First defined symbol with this name, in declaration order (so a
    Local can shadow a later Global).  Served by a GNU-hash-style
    bloom-filter + bucket index when {!sym_hash_enabled}; the index is
    memoized per symbol table and never observable in results. *)
val find_symbol : t -> string -> symbol option

(** The always-linear reference implementation of {!find_symbol}. *)
val find_symbol_linear : t -> string -> symbol option

(** Global defined symbols, i.e. this module's exports. *)
val exports : t -> symbol list

(** Names referenced by relocations but not defined here — the module's
    undefined external references. *)
val undefined : t -> string list

(** [serialize t] emits the v1 ["HOBJ"] encoding, byte-identical to
    every earlier release.  [~with_index:true] emits the v2 ["HOB2"]
    encoding instead, appending the precomputed export index (bloom
    filter + buckets of symbol-table positions) after the v1 payload. *)
val serialize : ?with_index:bool -> t -> Bytes.t

(** Accepts both versions; a v2 object's persisted index is reloaded
    (and validated) rather than rebuilt, while v1 objects fall back to
    an in-memory index built on first lookup.
    @raise Failure on bad magic or truncation. *)
val parse : Bytes.t -> t

(** Drop the calling domain's export-index memo (reboot: kernel-resident
    host caches die with the kernel). *)
val clear_index_memo : unit -> unit

val pp : Format.formatter -> t -> unit

module Codec = Hemlock_util.Codec
module Stats = Hemlock_util.Stats

type section = Text | Data | Bss

type binding = Local | Global

type symbol = { sym_name : string; sym_section : section; sym_offset : int; sym_binding : binding }

type reloc_kind = Abs32 | Hi16 | Lo16 | Jump26 | Gprel16

type reloc = {
  rel_section : section;
  rel_offset : int;
  rel_kind : reloc_kind;
  rel_symbol : string;
  rel_addend : int;
}

type t = {
  obj_name : string;
  text : Bytes.t;
  data : Bytes.t;
  bss_size : int;
  symbols : symbol list;
  relocs : reloc list;
  uses_gp : bool;
  own_modules : string list;
  own_search_path : string list;
}

let section_to_string = function Text -> "text" | Data -> "data" | Bss -> "bss"

let reloc_kind_to_string = function
  | Abs32 -> "ABS32"
  | Hi16 -> "HI16"
  | Lo16 -> "LO16"
  | Jump26 -> "JUMP26"
  | Gprel16 -> "GPREL16"

let empty ~name =
  {
    obj_name = name;
    text = Bytes.empty;
    data = Bytes.empty;
    bss_size = 0;
    symbols = [];
    relocs = [];
    uses_gp = false;
    own_modules = [];
    own_search_path = [];
  }

let align4 n = (n + 3) land lnot 3

let section_bases t =
  let text_base = 0 in
  let data_base = align4 (Bytes.length t.text) in
  let bss_base = data_base + align4 (Bytes.length t.data) in
  (text_base, data_base, bss_base)

let load_size t =
  let _, _, bss_base = section_bases t in
  bss_base + align4 t.bss_size

(* ----- hashed export index ------------------------------------------------

   A GNU-hash-style index over the symbol table: a small bloom filter in
   front of hash buckets, each bucket listing its symbols in declaration
   order so the hashed lookup returns exactly the symbol the linear scan
   would (first match wins; a Local can shadow a later Global).  Indexes
   are memoized per physical symbol list, so `{obj with ...}` copies
   share them and a re-parsed object builds its own. *)

let sym_hash_enabled = ref (Sys.getenv_opt "HEMLOCK_NO_SYMHASH" = None)

type index = {
  ix_mask : int;  (* bucket count - 1 (power of two) *)
  ix_bloom : int array;  (* 62 usable bits per word *)
  ix_buckets : symbol list array;
}

let hash_name name =
  (* djb2, masked to 32 bits: cheap and stable across runs. *)
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h lsl 5) + !h + Char.code c) land 0xFFFF_FFFF) name;
  !h

let bloom_bits ix h =
  let nbits = Array.length ix.ix_bloom * 62 in
  (h mod nbits, (h lsr 16) mod nbits)

let bloom_set ix h =
  let b1, b2 = bloom_bits ix h in
  ix.ix_bloom.(b1 / 62) <- ix.ix_bloom.(b1 / 62) lor (1 lsl (b1 mod 62));
  ix.ix_bloom.(b2 / 62) <- ix.ix_bloom.(b2 / 62) lor (1 lsl (b2 mod 62))

let bloom_mem ix h =
  let b1, b2 = bloom_bits ix h in
  ix.ix_bloom.(b1 / 62) land (1 lsl (b1 mod 62)) <> 0
  && ix.ix_bloom.(b2 / 62) land (1 lsl (b2 mod 62)) <> 0

let build_index symbols =
  let n = List.length symbols in
  let rec pow2 v = if v >= n || v >= 1024 then v else pow2 (v * 2) in
  let buckets = pow2 8 in
  let ix =
    {
      ix_mask = buckets - 1;
      ix_bloom = Array.make (max 1 ((n / 16) + 1)) 0;
      ix_buckets = Array.make buckets [];
    }
  in
  (* Fill back-to-front so each bucket ends up in declaration order. *)
  List.iter
    (fun s ->
      let h = hash_name s.sym_name in
      bloom_set ix h;
      let b = h land ix.ix_mask in
      ix.ix_buckets.(b) <- s :: ix.ix_buckets.(b))
    (List.rev symbols);
  ix

(* Memo: obj_name -> (symbols-list == key, index) pairs.  Physical
   equality of the immutable symbol list is the validity proof; the
   table is bounded and cleared wholesale when it grows too large. *)
type index_memo_state = {
  memo : (string, (symbol list * index) list) Hashtbl.t;
  mutable entries : int;
}

(* per-domain: memoisation only; a worker domain rebuilds what it
   misses *)
let index_memo_key : index_memo_state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { memo = Hashtbl.create 64; entries = 0 })

let clear_index_memo () =
  let im = Domain.DLS.get index_memo_key in
  Hashtbl.reset im.memo;
  im.entries <- 0

let index_of t =
  let im = Domain.DLS.get index_memo_key in
  let index_memo = im.memo in
  let chain = Option.value ~default:[] (Hashtbl.find_opt index_memo t.obj_name) in
  match List.find_opt (fun (syms, _) -> syms == t.symbols) chain with
  | Some (_, ix) -> ix
  | None ->
    if im.entries > 4096 then begin
      Hashtbl.reset index_memo;
      im.entries <- 0
    end;
    let ix = build_index t.symbols in
    Hashtbl.replace index_memo t.obj_name
      ((t.symbols, ix) :: Option.value ~default:[] (Hashtbl.find_opt index_memo t.obj_name));
    im.entries <- im.entries + 1;
    ix

let find_symbol_linear t name =
  List.find_opt (fun s -> String.equal s.sym_name name) t.symbols

let find_symbol t name =
  if not !sym_hash_enabled then find_symbol_linear t name
  else begin
    let ix = index_of t in
    let h = hash_name name in
    let found =
      if bloom_mem ix h then
        List.find_opt
          (fun s -> String.equal s.sym_name name)
          ix.ix_buckets.(h land ix.ix_mask)
      else None
    in
    (match found with
    | Some _ -> (Stats.cur ()).sym_hash_hits <- (Stats.cur ()).sym_hash_hits + 1
    | None -> (Stats.cur ()).sym_hash_misses <- (Stats.cur ()).sym_hash_misses + 1);
    found
  end

let exports t = List.filter (fun s -> s.sym_binding = Global) t.symbols

let undefined t =
  let defined = List.map (fun s -> s.sym_name) t.symbols in
  let referenced = List.map (fun r -> r.rel_symbol) t.relocs in
  List.sort_uniq String.compare
    (List.filter (fun n -> not (List.mem n defined)) referenced)

(* Binary encoding *)

let magic = "HOBJ"

(* Version 2 appends the persisted export index after the v1 payload.
   Emission is opt-in so existing byte-exact expectations on v1 objects
   hold; any parser that predates v2 would reject the new magic rather
   than misread the trailer. *)
let magic_v2 = "HOB2"

let section_code = function Text -> 0 | Data -> 1 | Bss -> 2

let section_of_code = function
  | 0 -> Text
  | 1 -> Data
  | 2 -> Bss
  | n -> failwith (Printf.sprintf "Objfile.parse: bad section code %d" n)

let kind_code = function Abs32 -> 0 | Hi16 -> 1 | Lo16 -> 2 | Jump26 -> 3 | Gprel16 -> 4

let kind_of_code = function
  | 0 -> Abs32
  | 1 -> Hi16
  | 2 -> Lo16
  | 3 -> Jump26
  | 4 -> Gprel16
  | n -> failwith (Printf.sprintf "Objfile.parse: bad reloc kind %d" n)

let serialize ?(with_index = false) t =
  let w = Codec.Writer.create () in
  String.iter (fun c -> Codec.Writer.u8 w (Char.code c)) (if with_index then magic_v2 else magic);
  Codec.Writer.str w t.obj_name;
  Codec.Writer.u8 w (if t.uses_gp then 1 else 0);
  Codec.Writer.u32 w (Bytes.length t.text);
  Codec.Writer.bytes w t.text;
  Codec.Writer.u32 w (Bytes.length t.data);
  Codec.Writer.bytes w t.data;
  Codec.Writer.u32 w t.bss_size;
  Codec.Writer.u32 w (List.length t.symbols);
  List.iter
    (fun s ->
      Codec.Writer.str w s.sym_name;
      Codec.Writer.u8 w (section_code s.sym_section);
      Codec.Writer.u32 w s.sym_offset;
      Codec.Writer.u8 w (match s.sym_binding with Local -> 0 | Global -> 1))
    t.symbols;
  Codec.Writer.u32 w (List.length t.relocs);
  List.iter
    (fun r ->
      Codec.Writer.u8 w (section_code r.rel_section);
      Codec.Writer.u32 w r.rel_offset;
      Codec.Writer.u8 w (kind_code r.rel_kind);
      Codec.Writer.str w r.rel_symbol;
      Codec.Writer.u32 w (r.rel_addend land 0xFFFF_FFFF))
    t.relocs;
  Codec.Writer.u32 w (List.length t.own_modules);
  List.iter (Codec.Writer.str w) t.own_modules;
  Codec.Writer.u32 w (List.length t.own_search_path);
  List.iter (Codec.Writer.str w) t.own_search_path;
  if with_index then begin
    (* Persisted index: bucket count, bloom words, then each bucket as a
       count plus symbol-table positions (declaration order). *)
    let ix = build_index t.symbols in
    let pos = Hashtbl.create (List.length t.symbols) in
    List.iteri (fun i s -> if not (Hashtbl.mem pos s) then Hashtbl.add pos s i) t.symbols;
    Codec.Writer.u32 w (ix.ix_mask + 1);
    Codec.Writer.u32 w (Array.length ix.ix_bloom);
    Array.iter
      (fun word ->
        Codec.Writer.u32 w (word land 0xFFFF_FFFF);
        Codec.Writer.u32 w ((word lsr 32) land 0x3FFF_FFFF))
      ix.ix_bloom;
    Array.iter
      (fun bucket ->
        Codec.Writer.u32 w (List.length bucket);
        List.iter (fun s -> Codec.Writer.u32 w (Hashtbl.find pos s)) bucket)
      ix.ix_buckets
  end;
  Codec.Writer.contents w

let parse bytes =
  let r = Codec.Reader.create bytes in
  let m = Bytes.to_string (Codec.Reader.bytes r 4) in
  let v2 = String.equal m magic_v2 in
  if not (String.equal m magic || v2) then failwith "Objfile.parse: bad magic";
  let obj_name = Codec.Reader.str r in
  let uses_gp = Codec.Reader.u8 r = 1 in
  let text = Codec.Reader.bytes r (Codec.Reader.u32 r) in
  let data = Codec.Reader.bytes r (Codec.Reader.u32 r) in
  let bss_size = Codec.Reader.u32 r in
  let nsyms = Codec.Reader.u32 r in
  let read_symbol () =
    let sym_name = Codec.Reader.str r in
    let sym_section = section_of_code (Codec.Reader.u8 r) in
    let sym_offset = Codec.Reader.u32 r in
    let sym_binding = if Codec.Reader.u8 r = 1 then Global else Local in
    { sym_name; sym_section; sym_offset; sym_binding }
  in
  let symbols = List.init nsyms (fun _ -> read_symbol ()) in
  let nrels = Codec.Reader.u32 r in
  let read_reloc () =
    let rel_section = section_of_code (Codec.Reader.u8 r) in
    let rel_offset = Codec.Reader.u32 r in
    let rel_kind = kind_of_code (Codec.Reader.u8 r) in
    let rel_symbol = Codec.Reader.str r in
    let rel_addend = Codec.sext32 (Codec.Reader.u32 r) in
    { rel_section; rel_offset; rel_kind; rel_symbol; rel_addend }
  in
  let relocs = List.init nrels (fun _ -> read_reloc ()) in
  let own_modules = List.init (Codec.Reader.u32 r) (fun _ -> Codec.Reader.str r) in
  let own_search_path = List.init (Codec.Reader.u32 r) (fun _ -> Codec.Reader.str r) in
  let t =
    { obj_name; text; data; bss_size; symbols; relocs; uses_gp; own_modules; own_search_path }
  in
  if v2 then begin
    (* Reload the persisted index instead of rebuilding it, validating
       every symbol position so a corrupt trailer cannot alias. *)
    let syms = Array.of_list symbols in
    let buckets = Codec.Reader.u32 r in
    if buckets < 1 || buckets > 65536 || buckets land (buckets - 1) <> 0 then
      failwith "Objfile.parse: bad index bucket count";
    (* [build_index] emits (nsyms/16)+1 bloom words; anything outside
       [1, nsyms+1] is a corrupt trailer.  In particular 0 must be
       rejected here: it would parse fine and then divide by zero on the
       first lookup, escaping the parse-time Failure contract. *)
    let nwords = Codec.Reader.u32 r in
    if nwords < 1 || nwords > nsyms + 1 then
      failwith "Objfile.parse: bad index bloom word count";
    let bloom =
      Array.init nwords (fun _ ->
          let lo = Codec.Reader.u32 r in
          let hi = Codec.Reader.u32 r in
          lo lor (hi lsl 32))
    in
    let read_sym () =
      let i = Codec.Reader.u32 r in
      if i >= Array.length syms then failwith "Objfile.parse: bad index entry";
      syms.(i)
    in
    let ix =
      {
        ix_mask = buckets - 1;
        ix_bloom = bloom;
        ix_buckets =
          Array.init buckets (fun _ ->
              List.init (Codec.Reader.u32 r) (fun _ -> read_sym ()));
      }
    in
    let im = Domain.DLS.get index_memo_key in
    Hashtbl.replace im.memo t.obj_name
      ((t.symbols, ix) :: Option.value ~default:[] (Hashtbl.find_opt im.memo t.obj_name));
    im.entries <- im.entries + 1
  end;
  t

let pp ppf t =
  Format.fprintf ppf "@[<v>object %s%s@,text %d bytes, data %d bytes, bss %d bytes@,"
    t.obj_name (if t.uses_gp then " (uses gp)" else "")
    (Bytes.length t.text) (Bytes.length t.data) t.bss_size;
  List.iter
    (fun s ->
      Format.fprintf ppf "  %-6s %s+0x%x %s@,"
        (match s.sym_binding with Global -> "global" | Local -> "local")
        (section_to_string s.sym_section) s.sym_offset s.sym_name)
    t.symbols;
  List.iter
    (fun r ->
      Format.fprintf ppf "  reloc %s+0x%x %s -> %s%+d@,"
        (section_to_string r.rel_section) r.rel_offset
        (reloc_kind_to_string r.rel_kind) r.rel_symbol r.rel_addend)
    t.relocs;
  Format.fprintf ppf "@]"

open Ast
module Sysno = Hemlock_os.Sysno

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let builtins =
  [
    "print_int"; "print_str"; "getpid"; "yield"; "sbrk"; "fork"; "wait";
    "path_to_addr"; "addr_to_path"; "open"; "close"; "read"; "write"; "lseek";
    "exit"; "lock_acquire"; "lock_release";
  ]

type var_info =
  | Global_var of ty * bool (* is_array *)
  | Local_var of ty * int (* fp offset *)

type env = {
  buf : Buffer.t;
  mutable strings : (string * string) list; (* label, contents *)
  mutable label_count : int;
  globals : (string, ty * bool) Hashtbl.t;
  mutable locals : (string * (ty * int)) list;
  use_gp : bool;
  mutable current_fn : string;
}

let emit env fmt = Printf.ksprintf (fun s -> Buffer.add_string env.buf (s ^ "\n")) fmt

let fresh_label env hint =
  env.label_count <- env.label_count + 1;
  Printf.sprintf ".L%s_%s_%d" env.current_fn hint env.label_count

let string_label env s =
  match List.find_opt (fun (_, c) -> String.equal c s) env.strings with
  | Some (l, _) -> l
  | None ->
    let l = Printf.sprintf ".Lstr%d" (List.length env.strings) in
    env.strings <- (l, s) :: env.strings;
    l

let lookup env name =
  match List.assoc_opt name env.locals with
  | Some (ty, off) -> Local_var (ty, off)
  | None -> (
    match Hashtbl.find_opt env.globals name with
    | Some (ty, arr) -> Global_var (ty, arr)
    | None -> errf "undeclared variable %s (in %s)" name env.current_fn)

(* ----- types ----- *)

let rec type_of env = function
  | Num _ -> Int
  | Str _ -> Ptr Char
  | Var name -> (
    match lookup env name with
    | Global_var (ty, true) -> Ptr ty (* arrays decay *)
    | Global_var (ty, false) -> ty
    | Local_var (ty, _) -> ty)
  | Unary (Deref, e) -> (
    match type_of env e with
    | Ptr t -> t
    | Int | Char -> Int (* deref of int: treated as int* *) )
  | Unary (Addr, e) -> Ptr (type_of env e)
  | Unary ((Neg | Not), _) -> Int
  | Binary ((Add | Sub), a, b) -> (
    match (type_of env a, type_of env b) with
    | (Ptr _ as p), _ -> p
    | _, (Ptr _ as p) -> p
    | _, _ -> Int)
  | Binary (_, _, _) -> Int
  | Index (e, _) -> (
    match type_of env e with
    | Ptr t -> t
    | Int | Char -> Int)
  | Call (_, _) -> Int
  | Assign (lhs, _) -> type_of env lhs

let load_op = function Char -> "lb" | Int | Ptr _ -> "lw"
let store_op = function Char -> "sb" | Int | Ptr _ -> "sw"

(* ----- expressions -----
   Value of the expression ends in $v0.  $t0-$t3 are scratch; nested
   subexpressions save intermediates on the stack. *)

let push env = emit env "        addi $sp, $sp, -4\n        sw   $v0, 0($sp)"

let pop_t0 env = emit env "        lw   $t0, 0($sp)\n        addi $sp, $sp, 4"

(* Is this global a gp-addressable scalar under -use-gp? *)
let gp_scalar env name =
  env.use_gp
  &&
  match Hashtbl.find_opt env.globals name with
  | Some ((Int | Ptr _), false) -> true
  | Some _ | None -> false

let rec gen_expr env e =
  match e with
  | Num n ->
    if n >= -0x8000 && n <= 0x7FFF then emit env "        li   $v0, %d" n
    else begin
      emit env "        lui  $v0, 0x%x" ((n lsr 16) land 0xFFFF);
      emit env "        ori  $v0, $v0, 0x%x" (n land 0xFFFF)
    end
  | Str s -> emit env "        la   $v0, %s" (string_label env s)
  | Var name -> (
    match lookup env name with
    | Local_var (ty, off) -> emit env "        %s   $v0, %d($fp)" (load_op ty) off
    | Global_var (_, true) -> emit env "        la   $v0, %s" name
    | Global_var (ty, false) ->
      if gp_scalar env name then emit env "        %s   $v0, %s($gp)" (load_op ty) name
      else begin
        emit env "        la   $t0, %s" name;
        emit env "        %s   $v0, 0($t0)" (load_op ty)
      end)
  | Unary (Neg, e) ->
    gen_expr env e;
    emit env "        sub  $v0, $zero, $v0"
  | Unary (Not, e) ->
    gen_expr env e;
    emit env "        sltu $v0, $zero, $v0";
    emit env "        xori $v0, $v0, 1"
  | Unary (Deref, e) ->
    let ty = type_of env (Unary (Deref, e)) in
    gen_expr env e;
    emit env "        %s   $v0, 0($v0)" (load_op ty)
  | Unary (Addr, lv) -> gen_lvalue env lv
  | Binary (And, a, b) ->
    let out = fresh_label env "and" in
    gen_expr env a;
    emit env "        beq  $v0, $zero, %s" out;
    gen_expr env b;
    emit env "        sltu $v0, $zero, $v0";
    emit env "%s:" out
  | Binary (Or, a, b) ->
    let out = fresh_label env "or" in
    gen_expr env a;
    emit env "        sltu $v0, $zero, $v0";
    emit env "        bne  $v0, $zero, %s" out;
    gen_expr env b;
    emit env "        sltu $v0, $zero, $v0";
    emit env "%s:" out
  | Binary (op, a, b) ->
    let scale_a, scale_b =
      match op with
      | Add | Sub -> (
        match (type_of env a, type_of env b) with
        | Ptr t, (Int | Char) -> (1, size_of t)
        | (Int | Char), Ptr t -> (size_of t, 1)
        | _, _ -> (1, 1))
      | Mul | Div | Rem | Eq | Ne | Lt | Le | Gt | Ge | And | Or -> (1, 1)
    in
    gen_expr env a;
    if scale_a > 1 then begin
      emit env "        li   $t0, %d" scale_a;
      emit env "        mul  $v0, $v0, $t0"
    end;
    push env;
    gen_expr env b;
    if scale_b > 1 then begin
      emit env "        li   $t0, %d" scale_b;
      emit env "        mul  $v0, $v0, $t0"
    end;
    pop_t0 env;
    (match op with
    | Add -> emit env "        add  $v0, $t0, $v0"
    | Sub -> emit env "        sub  $v0, $t0, $v0"
    | Mul -> emit env "        mul  $v0, $t0, $v0"
    | Div -> emit env "        div  $v0, $t0, $v0"
    | Rem -> emit env "        rem  $v0, $t0, $v0"
    | Eq ->
      emit env "        xor  $v0, $t0, $v0";
      emit env "        sltu $v0, $zero, $v0";
      emit env "        xori $v0, $v0, 1"
    | Ne ->
      emit env "        xor  $v0, $t0, $v0";
      emit env "        sltu $v0, $zero, $v0"
    | Lt -> emit env "        slt  $v0, $t0, $v0"
    | Gt -> emit env "        slt  $v0, $v0, $t0"
    | Le ->
      emit env "        slt  $v0, $v0, $t0";
      emit env "        xori $v0, $v0, 1"
    | Ge ->
      emit env "        slt  $v0, $t0, $v0";
      emit env "        xori $v0, $v0, 1"
    | And | Or -> assert false)
  | Index (_, _) as e ->
    let ty = type_of env e in
    gen_lvalue env e;
    emit env "        %s   $v0, 0($v0)" (load_op ty)
  | Call (fn, args) -> gen_call env fn args
  | Assign (lv, rhs) ->
    let ty = type_of env lv in
    gen_lvalue env lv;
    push env;
    gen_expr env rhs;
    pop_t0 env;
    emit env "        %s   $v0, 0($t0)" (store_op ty)

(* Address of an lvalue into $v0. *)
and gen_lvalue env = function
  | Var name -> (
    match lookup env name with
    | Local_var (_, off) -> emit env "        addi $v0, $fp, %d" off
    | Global_var (_, _) -> emit env "        la   $v0, %s" name)
  | Unary (Deref, e) -> gen_expr env e
  | Index (base, idx) ->
    let elem =
      match type_of env base with
      | Ptr t -> size_of t
      | Int | Char -> 1
    in
    gen_expr env base;
    push env;
    gen_expr env idx;
    if elem > 1 then begin
      emit env "        li   $t0, %d" elem;
      emit env "        mul  $v0, $v0, $t0"
    end;
    pop_t0 env;
    emit env "        add  $v0, $t0, $v0"
  | e ->
    ignore e;
    errf "not an lvalue (in %s)" env.current_fn

and gen_call env fn args =
  let n_args = List.length args in
  let syscall_with_args num =
    (* Evaluate args, push, then pop into $a0..$a3. *)
    List.iter
      (fun a ->
        gen_expr env a;
        push env)
      args;
    List.iteri
      (fun i _ ->
        emit env "        lw   $a%d, %d($sp)" (n_args - 1 - i) (4 * i))
      args;
    emit env "        addi $sp, $sp, %d" (4 * n_args);
    emit env "        li   $v0, %d" num;
    emit env "        syscall"
  in
  match fn with
  | "print_int" -> syscall_with_args Sysno.print_int
  | "print_str" -> syscall_with_args Sysno.print_str
  | "getpid" -> syscall_with_args Sysno.getpid
  | "yield" -> syscall_with_args Sysno.yield
  | "sbrk" -> syscall_with_args Sysno.sbrk
  | "fork" -> syscall_with_args Sysno.fork
  | "wait" -> syscall_with_args Sysno.wait
  | "path_to_addr" -> syscall_with_args Sysno.path_to_addr
  | "addr_to_path" -> syscall_with_args Sysno.addr_to_path
  | "open" -> syscall_with_args Sysno.open_
  | "close" -> syscall_with_args Sysno.close
  | "read" -> syscall_with_args Sysno.read
  | "write" -> syscall_with_args Sysno.write
  | "lseek" -> syscall_with_args Sysno.lseek
  | "exit" -> syscall_with_args Sysno.exit
  | "lock_acquire" -> syscall_with_args Sysno.lock_acquire
  | "lock_release" -> syscall_with_args Sysno.lock_release
  | fn ->
    (* Push right-to-left so arg i sits at fp+8+4i in the callee. *)
    List.iter
      (fun a ->
        gen_expr env a;
        push env)
      (List.rev args);
    emit env "        jal  %s" fn;
    if n_args > 0 then emit env "        addi $sp, $sp, %d" (4 * n_args)

(* ----- statements ----- *)

let rec count_locals stmts =
  List.fold_left
    (fun acc s ->
      match s with
      | Local (_, _, _) -> acc + 1
      | If (_, a, b) -> acc + count_locals a + count_locals b
      | While (_, body) -> acc + count_locals body
      | For (_, _, _, body) -> acc + count_locals body
      | Block body -> acc + count_locals body
      | Expr _ | Return _ | Break | Continue -> acc)
    0 stmts

(* (break target, continue target) of the innermost enclosing loop *)
type loop_ctx = { lc_break : string; lc_continue : string }

let rec gen_stmt env ~exit_label ~loops next_slot s =
  match s with
  | Expr e ->
    gen_expr env e;
    next_slot
  | Return None ->
    emit env "        li   $v0, 0";
    emit env "        b    %s" exit_label;
    next_slot
  | Return (Some e) ->
    gen_expr env e;
    emit env "        b    %s" exit_label;
    next_slot
  | Local (ty, name, init) ->
    let off = -4 * (next_slot + 1) in
    env.locals <- (name, (ty, off)) :: env.locals;
    (match init with
    | Some e ->
      gen_expr env (Assign (Var name, e));
      ()
    | None -> ());
    next_slot + 1
  | If (cond, then_, else_) ->
    let l_else = fresh_label env "else" in
    let l_end = fresh_label env "endif" in
    gen_expr env cond;
    emit env "        beq  $v0, $zero, %s" l_else;
    let slot = gen_stmts env ~exit_label ~loops next_slot then_ in
    emit env "        b    %s" l_end;
    emit env "%s:" l_else;
    let slot' = gen_stmts env ~exit_label ~loops slot else_ in
    emit env "%s:" l_end;
    slot'
  | While (cond, body) ->
    let l_top = fresh_label env "loop" in
    let l_end = fresh_label env "endloop" in
    emit env "%s:" l_top;
    gen_expr env cond;
    emit env "        beq  $v0, $zero, %s" l_end;
    let ctx = { lc_break = l_end; lc_continue = l_top } in
    let slot = gen_stmts env ~exit_label ~loops:(ctx :: loops) next_slot body in
    emit env "        b    %s" l_top;
    emit env "%s:" l_end;
    slot
  | For (init, cond, step, body) ->
    let l_top = fresh_label env "for" in
    let l_step = fresh_label env "forstep" in
    let l_end = fresh_label env "endfor" in
    Option.iter (gen_expr env) init;
    emit env "%s:" l_top;
    (match cond with
    | Some c ->
      gen_expr env c;
      emit env "        beq  $v0, $zero, %s" l_end
    | None -> ());
    (* continue jumps to the step, not the top *)
    let ctx = { lc_break = l_end; lc_continue = l_step } in
    let slot = gen_stmts env ~exit_label ~loops:(ctx :: loops) next_slot body in
    emit env "%s:" l_step;
    Option.iter (gen_expr env) step;
    emit env "        b    %s" l_top;
    emit env "%s:" l_end;
    slot
  | Break -> (
    match loops with
    | ctx :: _ ->
      emit env "        b    %s" ctx.lc_break;
      next_slot
    | [] -> errf "break outside a loop (in %s)" env.current_fn)
  | Continue -> (
    match loops with
    | ctx :: _ ->
      emit env "        b    %s" ctx.lc_continue;
      next_slot
    | [] -> errf "continue outside a loop (in %s)" env.current_fn)
  | Block body ->
    let saved = env.locals in
    let slot = gen_stmts env ~exit_label ~loops next_slot body in
    env.locals <- saved;
    slot

and gen_stmts env ~exit_label ~loops next_slot stmts =
  List.fold_left (fun slot s -> gen_stmt env ~exit_label ~loops slot s) next_slot stmts

(* ----- top level ----- *)

let gen_func env f =
  env.current_fn <- f.f_name;
  env.locals <-
    List.mapi (fun i (ty, name) -> (name, (ty, 8 + (4 * i)))) f.f_params;
  let frame = 4 * count_locals f.f_body in
  if not f.f_static then emit env "        .globl %s" f.f_name;
  emit env "%s:" f.f_name;
  emit env "        addi $sp, $sp, -8";
  emit env "        sw   $ra, 4($sp)";
  emit env "        sw   $fp, 0($sp)";
  emit env "        move $fp, $sp";
  if frame > 0 then emit env "        addi $sp, $sp, %d" (-frame);
  let exit_label = Printf.sprintf ".L%s_exit" f.f_name in
  ignore (gen_stmts env ~exit_label ~loops:[] 0 f.f_body);
  emit env "        li   $v0, 0";
  emit env "%s:" exit_label;
  emit env "        move $sp, $fp";
  emit env "        lw   $ra, 4($sp)";
  emit env "        lw   $fp, 0($sp)";
  emit env "        addi $sp, $sp, 8";
  emit env "        jr   $ra";
  emit env ""

let compile ?(use_gp = false) prog =
  let env =
    {
      buf = Buffer.create 1024;
      strings = [];
      label_count = 0;
      globals = Hashtbl.create 16;
      locals = [];
      use_gp;
      current_fn = "";
    }
  in
  (* Register every global (including externs) for type information. *)
  List.iter
    (function
      | Global g -> Hashtbl.replace env.globals g.g_name (g.g_ty, g.g_array <> None)
      | Func _ -> ())
    prog;
  emit env "        .text";
  List.iter (function Func f -> gen_func env f | Global _ -> ()) prog;
  (* Data section: initialised globals and string literals. *)
  emit env "        .data";
  List.iter
    (function
      | Global { g_extern = true; _ } | Func _ -> ()
      | Global ({ g_init = Some v; _ } as g) ->
        emit env "        .globl %s" g.g_name;
        emit env "%s:" g.g_name;
        emit env "        .word %d" v
      | Global { g_init = None; _ } -> ())
    prog;
  List.iter
    (fun (label, s) ->
      emit env "%s:" label;
      let escaped =
        String.concat ""
          (List.map
             (function
               | '\n' -> "\\n"
               | '\t' -> "\\t"
               | '"' -> "\\\""
               | '\\' -> "\\\\"
               | '\000' -> "\\0"
               | c -> String.make 1 c)
             (List.init (String.length s) (String.get s)))
      in
      emit env "        .asciiz \"%s\"" escaped)
    (List.rev env.strings);
  (* Bss: uninitialised globals and arrays. *)
  emit env "        .bss";
  List.iter
    (function
      | Global { g_extern = true; _ } | Func _ -> ()
      | Global { g_init = Some _; _ } -> ()
      | Global ({ g_init = None; _ } as g) ->
        let size =
          match g.g_array with
          | Some len -> len * size_of g.g_ty
          | None -> size_of g.g_ty
        in
        emit env "        .globl %s" g.g_name;
        emit env "%s:" g.g_name;
        emit env "        .space %d" ((size + 3) land lnot 3))
    prog;
  Buffer.contents env.buf

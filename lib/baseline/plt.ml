module Kernel = Hemlock_os.Kernel
module Proc = Hemlock_os.Proc
module As = Hemlock_vm.Address_space
module Layout = Hemlock_vm.Layout
module Prot = Hemlock_vm.Prot
module Segment = Hemlock_vm.Segment
module Objfile = Hemlock_obj.Objfile
module Insn = Hemlock_isa.Insn
module Reg = Hemlock_isa.Reg
module Cpu = Hemlock_isa.Cpu
module Modinst = Hemlock_linker.Modinst
module Aout = Hemlock_linker.Aout
module Reloc_engine = Hemlock_linker.Reloc_engine
module Fs = Hemlock_sfs.Fs
module Stats = Hemlock_util.Stats

exception Link_error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Link_error s)) fmt

let bind_sysno = 42

let stub_bytes = 16

type stub = { st_symbol : string; st_addr : int; mutable st_bound : bool }

type pstate = {
  mutable ps_instances : Modinst.t list;
  ps_exports : (string, int) Hashtbl.t;
  ps_stub_seg : Segment.t;
  ps_stub_base : int;
  ps_stub_cap : int;
  mutable ps_stub_next : int;
  ps_stubs : (int, stub) Hashtbl.t; (* id -> stub *)
  ps_by_symbol : (string, int) Hashtbl.t; (* symbol -> id *)
  mutable ps_bound : int;
}

type t = { k : Kernel.t; states : (int, pstate) Hashtbl.t }

let kernel t = t.k

let state t proc =
  match Hashtbl.find_opt t.states proc.Proc.pid with
  | Some ps -> ps
  | None -> errf "process %d has no PLT state (call load first)" proc.Proc.pid

let dummy_scope =
  { Modinst.sc_label = "plt"; sc_modules = []; sc_search = []; sc_parent = None }

let write_stub_trap ps ~id ~addr =
  let seg_off = addr - ps.ps_stub_base in
  Segment.set_u32 ps.ps_stub_seg seg_off (Insn.encode (Insn.Addi (Reg.a3, Reg.zero, id)));
  Segment.set_u32 ps.ps_stub_seg (seg_off + 4)
    (Insn.encode (Insn.Addi (Reg.v0, Reg.zero, bind_sysno)));
  Segment.set_u32 ps.ps_stub_seg (seg_off + 8) (Insn.encode Insn.Syscall);
  Segment.set_u32 ps.ps_stub_seg (seg_off + 12) (Insn.encode Insn.nop)

let write_stub_direct ps ~addr ~target =
  let seg_off = addr - ps.ps_stub_base in
  Segment.set_u32 ps.ps_stub_seg seg_off
    (Insn.encode (Insn.Lui (Reg.at, (target lsr 16) land 0xFFFF)));
  Segment.set_u32 ps.ps_stub_seg (seg_off + 4)
    (Insn.encode (Insn.Ori (Reg.at, Reg.at, target land 0xFFFF)));
  Segment.set_u32 ps.ps_stub_seg (seg_off + 8) (Insn.encode (Insn.Jr Reg.at));
  Segment.set_u32 ps.ps_stub_seg (seg_off + 12) (Insn.encode Insn.nop)

let stub_for ps symbol =
  match Hashtbl.find_opt ps.ps_by_symbol symbol with
  | Some id -> (Hashtbl.find ps.ps_stubs id).st_addr
  | None ->
    if ps.ps_stub_next >= ps.ps_stub_cap then errf "jump table full";
    let id = ps.ps_stub_next in
    ps.ps_stub_next <- id + 1;
    let addr = ps.ps_stub_base + (id * stub_bytes) in
    write_stub_trap ps ~id ~addr;
    Hashtbl.replace ps.ps_stubs id { st_symbol = symbol; st_addr = addr; st_bound = false };
    Hashtbl.replace ps.ps_by_symbol symbol id;
    addr

let load t proc ~located =
  let fs = Kernel.fs t.k in
  let objs =
    List.map
      (fun path ->
        match Objfile.parse (Fs.read_file fs ~cwd:proc.Proc.cwd path) with
        | obj ->
          if obj.Objfile.uses_gp then errf "module %s uses $gp" path;
          (path, obj)
        | exception Fs.Error { kind; _ } ->
          errf "library %s missing at load time: %s" path (Fs.err_kind_to_string kind)
        | exception Failure msg -> errf "bad template %s: %s" path msg)
      located
  in
  (* Jump table sized for every distinct external call target. *)
  let call_targets =
    List.sort_uniq String.compare
      (List.concat_map
         (fun (_, obj) ->
           List.filter_map
             (fun r ->
               if r.Objfile.rel_kind = Objfile.Jump26 then Some r.Objfile.rel_symbol
               else None)
             obj.Objfile.relocs)
         objs)
  in
  let stub_cap = List.length call_targets + 4 in
  let stub_area = Layout.page_up (stub_cap * stub_bytes) in
  let stub_base =
    match
      As.find_gap proc.Proc.space ~lo:Aout.private_arena_lo ~hi:Aout.private_arena_hi
        ~size:stub_area
    with
    | Some base -> base
    | None -> errf "no arena space for the jump table"
  in
  let stub_seg = Segment.create ~name:(Printf.sprintf "plt:%d" proc.Proc.pid) ~max_size:stub_area () in
  Segment.resize stub_seg stub_area;
  As.map proc.Proc.space ~base:stub_base ~len:stub_area ~seg:stub_seg
    ~prot:Prot.Read_write_exec ~share:As.Private ~label:"jump-table" ();
  let ps =
    {
      ps_instances = [];
      ps_exports = Hashtbl.create 64;
      ps_stub_seg = stub_seg;
      ps_stub_base = stub_base;
      ps_stub_cap = stub_cap;
      ps_stub_next = 0;
      ps_stubs = Hashtbl.create 32;
      ps_by_symbol = Hashtbl.create 32;
      ps_bound = 0;
    }
  in
  Hashtbl.replace t.states proc.Proc.pid ps;
  (* Place every module eagerly. *)
  let instances =
    List.map
      (fun (path, obj) ->
        let size = Layout.page_up (Modinst.placed_size obj) in
        let base =
          match
            As.find_gap proc.Proc.space ~lo:Aout.private_arena_lo ~hi:Aout.private_arena_hi
              ~size
          with
          | Some base -> base
          | None -> errf "no arena space for %s" path
        in
        let inst = Modinst.private_instance ~located:path ~obj ~base ~scope:dummy_scope () in
        As.map proc.Proc.space ~base ~len:size ~seg:inst.Modinst.inst_seg
          ~prot:Prot.Read_write_exec ~share:As.Private ~label:path ();
        inst)
      objs
  in
  ps.ps_instances <- instances;
  (* Flat namespace: first definition wins. *)
  List.iter
    (fun inst ->
      List.iter
        (fun sym ->
          if not (Hashtbl.mem ps.ps_exports sym.Objfile.sym_name) then
            Hashtbl.replace ps.ps_exports sym.Objfile.sym_name (Modinst.symbol_addr inst sym))
        (Objfile.exports inst.Modinst.inst_obj))
    instances;
  (* Resolve: data eagerly, calls through stubs. *)
  let link_one inst =
    let obj = inst.Modinst.inst_obj in
    let image = Modinst.image_base inst in
    let text_b, data_b, bss_b = Objfile.section_bases obj in
    let bases = function
      | Objfile.Text -> image + text_b
      | Objfile.Data -> image + data_b
      | Objfile.Bss -> image + bss_b
    in
    let sink = Modinst.sink_of_segment inst.Modinst.inst_seg ~vaddr_base:inst.Modinst.inst_base in
    let resolve_data name =
      match Modinst.find_own inst name with
      | Some a -> Some a
      | None -> Hashtbl.find_opt ps.ps_exports name
    in
    List.iter
      (fun r ->
        let at = bases r.Objfile.rel_section + r.Objfile.rel_offset in
        (Stats.cur ()).relocs_applied <- (Stats.cur ()).relocs_applied + 1;
        match r.Objfile.rel_kind with
        | Objfile.Jump26 ->
          (* Lazy function binding: always through the jump table, even
             for targets known now. *)
          let stub = stub_for ps r.Objfile.rel_symbol in
          let word = sink.Reloc_engine.get32 at in
          sink.Reloc_engine.set32 at
            ((word land lnot 0x3FF_FFFF) lor Insn.jump_field ~target:stub)
        | Objfile.Abs32 | Objfile.Hi16 | Objfile.Lo16 -> (
          match resolve_data r.Objfile.rel_symbol with
          | Some addr ->
            (Stats.cur ()).symbols_resolved <- (Stats.cur ()).symbols_resolved + 1;
            Reloc_engine.apply sink ~at ~kind:r.Objfile.rel_kind
              ~value:(addr + r.Objfile.rel_addend) ~gp:None ~veneer:None
          | None ->
            errf "undefined data reference %s in %s (SunOS-style loading verifies \
                  all names at load time)"
              r.Objfile.rel_symbol inst.Modinst.inst_key)
        | Objfile.Gprel16 -> errf "gp-relative relocation in %s" inst.Modinst.inst_key)
      obj.Objfile.relocs;
    inst.Modinst.inst_linked <- true;
    (Stats.cur ()).modules_linked <- (Stats.cur ()).modules_linked + 1
  in
  List.iter link_one instances

let dlsym t proc name = Hashtbl.find_opt (state t proc).ps_exports name

let bound t proc = (state t proc).ps_bound

let stubs t proc = (state t proc).ps_stub_next

let install k =
  let t = { k; states = Hashtbl.create 8 } in
  Kernel.register_syscall k bind_sysno (fun _k proc cpu ->
      let ps = state t proc in
      let id = Cpu.reg cpu Reg.a3 in
      match Hashtbl.find_opt ps.ps_stubs id with
      | None -> raise (Kernel.Os_error (Printf.sprintf "plt: bad stub id %d" id))
      | Some stub -> (
        match Hashtbl.find_opt ps.ps_exports stub.st_symbol with
        | None ->
          raise (Kernel.Os_error (Printf.sprintf "plt: undefined function %s" stub.st_symbol))
        | Some target ->
          if not stub.st_bound then begin
            write_stub_direct ps ~addr:stub.st_addr ~target;
            stub.st_bound <- true;
            ps.ps_bound <- ps.ps_bound + 1;
            (Stats.cur ()).symbols_resolved <- (Stats.cur ()).symbols_resolved + 1
          end;
          (* Restart execution at the target; $ra still holds the
             original caller's return address. *)
          cpu.Cpu.pc <- target));
  t

(** The simulated Unix kernel — a thin facade over the layered pieces.

    One [t] is one machine: a file system (with the shared partition), a
    process table with a round-robin scheduler ({!Sched}), signal
    (SIGSEGV) delivery, file descriptors and file locks ({!Vfs}),
    System-V-style message queues and protection-domain calls ({!Ipc}),
    and a console.  The kernel knows nothing about objects or linking
    (§2: "Objects have no meaning to the kernel"); the linkers live in a
    separate library and hook in through {!register_syscall},
    {!register_binfmt} and {!install_segv_handler}.

    Errors: internally every fallible kernel call returns
    [('a, Errno.t) result] (the [_r] variants below); the classic names
    are compat wrappers that raise {!Os_error} with the errno folded
    into the message.  ISA programs get the same errnos as negative
    [$v0] values and are never killed by a failed syscall. *)

type t

(** One stuck process in a deadlock report (re-export of
    {!Sched.blocked}). *)
type blocked = Sched.blocked = { b_pid : int; b_comm : string; b_why : string }

(** Non-daemon processes blocked with no runnable process to unblock
    them; the payload lists each with its wait reason (see
    {!Sched.deadlock_message} for rendering). *)
exception Deadlock of blocked list

(** Raised out of kernel calls on OS-level errors (bad fd, etc.); the
    message names the {!Errno.t}. *)
exception Os_error of string

(** {1 Construction} *)

(** A booted kernel with a fresh file system.  Boot rescans the shared
    partition to rebuild the address lookup table, as in the paper. *)
val create : unit -> t

val fs : t -> Hemlock_sfs.Fs.t

(** Simulate a reboot: the in-kernel addr->path table is discarded and
    rebuilt by scanning the shared file system (crash survival, §3),
    then the registered reboot hooks run in registration order — the
    dynamic linker uses one to drop kernel-resident caches and reseed
    from the stable-link files persisted under [/shared/.stable]. *)
val reboot : t -> unit

(** [add_reboot_hook t h] runs [h] after every {!reboot}, in
    registration order. *)
val add_reboot_hook : t -> (unit -> unit) -> unit

(** {1 Console} *)

val console : t -> string
val console_clear : t -> unit

(** {1 Faults and signals} *)

(** Re-export of {!Hemlock_isa.Trap.fault}: the kernel's fault record
    {e is} the trap pipeline's. *)
type fault = Hemlock_isa.Trap.fault = {
  f_addr : int;
  f_access : Hemlock_vm.Prot.access;
  f_reason : Hemlock_vm.Address_space.fault_reason;
}

(** Outcome of a SIGSEGV handler: the fault was fixed (restart the
    instruction); it will be fixable once a condition holds (e.g. a file
    lock is busy — block the process and retry); or this handler cannot
    deal with it (try the next handler in the chain). *)
type segv_result = Resolved | Retry_when of (unit -> bool) | Unhandled

type segv_handler = t -> Proc.t -> fault -> segv_result

(** [install_segv_handler t proc ~name h] pushes [h] onto the front of
    the process's handler chain.  The Hemlock runtime installs its
    handler here; a program-provided handler installed earlier keeps
    running as the fallback, mirroring the paper's wrapped [signal]. *)
val install_segv_handler : t -> Proc.t -> name:string -> segv_handler -> unit

(** [deliver_segv t proc fault] walks the chain; [Unhandled] means no
    handler resolved it. *)
val deliver_segv : t -> Proc.t -> fault -> segv_result

(** {1 Extension points} *)

(** [register_syscall t num f] installs an ISA syscall (num >=
    {!Sysno.first_extension}). *)
val register_syscall : t -> int -> (t -> Proc.t -> Hemlock_isa.Cpu.t -> unit) -> unit

(** [block_syscall ?why cpu cond] aborts the current ISA syscall so that
    it retries once [cond] holds: rewinds the pc past the trap and
    raises the scheduler's internal blocking exception.  [why] labels
    the wait in deadlock reports.  For use by registered extension
    syscalls (e.g. ldl waiting on a file lock). *)
val block_syscall : ?why:string -> Hemlock_isa.Cpu.t -> (unit -> bool) -> 'a

(** A binfmt loader: given the raw image and its path, set up the
    process's address space and return the entry point.  Loaders are
    tried in registration order; a loader rejects by raising
    [Wrong_format]. *)
exception Wrong_format

val register_binfmt :
  t -> name:string -> (t -> Proc.t -> Bytes.t -> path:string -> int) -> unit

(** {1 Processes} *)

(** [spawn_native t ~name body] creates a runnable native process.  Its
    body runs under the scheduler's effect handler, so it may call the
    blocking kernel operations below. *)
val spawn_native :
  t ->
  ?name:string ->
  ?env:(string * string) list ->
  ?cwd:Hemlock_sfs.Path.t ->
  (t -> Proc.t -> int) ->
  Proc.t

(** Mark a process as a daemon: the scheduler is allowed to finish while
    it is still blocked (e.g. a server waiting for messages). *)
val set_daemon : t -> Proc.t -> unit

(** [exec t proc path] replaces the process image: fresh address space,
    image loaded by a registered binfmt, stack mapped, ISA body
    installed.  Environment and cwd survive, as in Unix.
    @raise Os_error ([ENOENT]/[ENOEXEC]) on a missing file or when no
    loader accepts the image. *)
val exec : t -> Proc.t -> string -> unit

(** [spawn_blank t ~name ()] creates a process that stays blocked until
    given a body — used by loaders that populate the address space
    themselves (e.g. the jump-table baseline linker). *)
val spawn_blank :
  t ->
  ?name:string ->
  ?env:(string * string) list ->
  ?cwd:Hemlock_sfs.Path.t ->
  unit ->
  Proc.t

(** [set_isa_entry t proc ~entry] maps a stack, installs an ISA body
    starting at [entry], and makes the process runnable. *)
val set_isa_entry : t -> Proc.t -> entry:int -> unit

(** [spawn_exec t ~name path] = spawn a fresh process + [exec]. *)
val spawn_exec :
  t ->
  ?name:string ->
  ?env:(string * string) list ->
  ?cwd:Hemlock_sfs.Path.t ->
  string ->
  Proc.t

(** Fork an ISA process (§5: private segments copied, public shared,
    both continue at the same pc).  Returns the child. *)
val fork_isa : t -> Proc.t -> Proc.t

(** [add_fork_hook t h] runs [h] after every fork, in registration
    order (registration itself is O(1)); the dynamic linker uses this
    to clone its per-process link state. *)
val add_fork_hook : t -> (parent:Proc.t -> child:Proc.t -> unit) -> unit

val find_proc : t -> int -> Proc.t option
val processes : t -> Proc.t list

(** Terminate a process abnormally. *)
val kill : t -> Proc.t -> reason:string -> unit

(** Native blocking wait; returns (pid, exit code).
    @raise Os_error ([ECHILD]) if the process has no children. *)
val waitpid : t -> Proc.t -> (int * int)

(** {1 Scheduling} *)

(** Run until every process has exited (daemons may remain blocked).
    @raise Deadlock when non-daemon processes are blocked with no
    runnable process to unblock them; the payload names each stuck
    process and what it is waiting on.
    @param max_ticks safety valve against runaway programs. *)
val run : ?max_ticks:int -> t -> unit

(** One scheduler pass: wake blocked processes whose conditions hold and
    give every runnable process a quantum.  [`Progress] — something ran;
    [`Idle] — nothing runnable but non-daemon processes are blocked
    (they may be waiting on events another machine will deliver);
    [`Done] — only zombies and blocked daemons remain.  {!Cluster} uses
    this to interleave several machines. *)
val step : t -> [ `Progress | `Idle | `Done ]

(** Blocked non-daemon processes with their wait reasons — the would-be
    {!Deadlock} payload.  {!Cluster} aggregates these across machines. *)
val blocked_processes : t -> blocked list

(** Like {!step}, but runnable ISA processes get their quanta in
    parallel across the pool's domains (process [i] of the runnable
    batch on worker [i mod domains]); native processes run afterwards
    on the calling domain, since their effect continuations must not
    migrate.  Trap handling serialises on the kernel lock; pager and
    COW faults resolve outside it under the space's range locks.
    Quantum billing happens up front on the calling domain, so tick
    and context-switch totals are partition-independent.  With a
    1-domain pool the pass is sequential and lock-free. *)
val step_par : t -> pool:Hemlock_util.Domain_pool.t -> [ `Progress | `Idle | `Done ]

(** Loop {!step_par} to completion — {!run} spread over a domain pool.
    @raise Deadlock as {!run}. *)
val run_par : ?max_ticks:int -> t -> pool:Hemlock_util.Domain_pool.t -> unit

(** Non-blocking network delivery onto a machine-local message queue,
    from outside any process context (no carrier process, no billing —
    the sender accounts the transfer on success).  [EAGAIN] when the
    queue is full: the caller keeps the message pending rather than
    dropping it. *)
val enqueue_net : t -> string -> Bytes.t -> (unit, Errno.t) result

(** {1 Checked user-memory access for native code}

    These retry through SIGSEGV delivery, so native workload code
    touching a shared pointer gets the same lazy-mapping behaviour as
    ISA loads and stores.  @raise Proc.Killed when unhandled. *)

val load_u8 : t -> Proc.t -> int -> int
val load_u32 : t -> Proc.t -> int -> int
val store_u8 : t -> Proc.t -> int -> int -> unit
val store_u32 : t -> Proc.t -> int -> int -> unit

(** Read a NUL-terminated user string.  A missing terminator within the
    64 KB bound raises {!Os_error} carrying [EFAULT] (the errno every
    ISA syscall string argument also answers with), never a bare
    failure. *)
val read_cstring : t -> Proc.t -> int -> string
val write_cstring : t -> Proc.t -> int -> string -> unit

(** {1 The new kernel calls (§2-3)} *)

(** Global address of a shared file. *)
val sys_path_to_addr : t -> Proc.t -> string -> int

val sys_path_to_addr_r : t -> Proc.t -> string -> (int, Errno.t) result

(** Path of the shared file containing a public address. *)
val sys_addr_to_path : t -> Proc.t -> int -> string

val sys_addr_to_path_r : t -> Proc.t -> int -> (string, Errno.t) result

(** Map a shared file into the process at its global address; returns
    the base.  Idempotent when already mapped. *)
val map_shared_file : t -> Proc.t -> path:string -> prot:Hemlock_vm.Prot.t -> int

val map_shared_file_r :
  t -> Proc.t -> path:string -> prot:Hemlock_vm.Prot.t -> (int, Errno.t) result

(** {1 File descriptors}

    Descriptor numbers follow Unix: allocation picks the lowest free
    slot from {!Vfs.first_fd}, so close-then-open reuses the number, and
    a table past {!Vfs.max_fds} descriptors answers [EMFILE]. *)

type fd = int

(** [sys_open t proc ?create ?trunc path] opens a file; [create] makes
    it when missing, [trunc] resets its length (O_TRUNC).
    @raise Os_error ([ENOENT], [EISDIR], [EMFILE], …) on failure. *)
val sys_open : t -> Proc.t -> ?create:bool -> ?trunc:bool -> string -> fd

val sys_open_r :
  t -> Proc.t -> ?create:bool -> ?trunc:bool -> string -> (fd, Errno.t) result

(** [sys_open_by_addr] is the overloaded open: open a shared file by any
    address inside it. *)
val sys_open_by_addr : t -> Proc.t -> int -> fd

val sys_open_by_addr_r : t -> Proc.t -> int -> (fd, Errno.t) result

val sys_read : t -> Proc.t -> fd -> int -> Bytes.t
val sys_read_r : t -> Proc.t -> fd -> int -> (Bytes.t, Errno.t) result
val sys_write : t -> Proc.t -> fd -> Bytes.t -> int
val sys_write_r : t -> Proc.t -> fd -> Bytes.t -> (int, Errno.t) result

(** Absolute seek.  Returns the new offset (Unix semantics); negative
    positions are [EINVAL]. *)
val sys_lseek : t -> Proc.t -> fd -> int -> int

val sys_lseek_r : t -> Proc.t -> fd -> int -> (int, Errno.t) result

(** [EBADF] on double close. *)
val sys_close : t -> Proc.t -> fd -> unit

val sys_close_r : t -> Proc.t -> fd -> (unit, Errno.t) result

(** {1 File locks} (ldl uses these to serialise shared-segment creation) *)

val try_flock : t -> Proc.t -> string -> bool

(** Blocking acquire (native processes only). *)
val flock : t -> Proc.t -> string -> unit

val funlock : t -> Proc.t -> string -> unit

(** Holder pid of the lock on a path, if locked. *)
val flock_holder : t -> string -> int option

(** {1 Message queues} (the messaging baseline, and rwhod's network) *)

(** [msgq_create t name ~capacity] makes a queue; sends block when full,
    receives when empty (native processes only). *)
val msgq_create : t -> string -> capacity:int -> unit

val msgq_exists : t -> string -> bool
val msg_send : t -> Proc.t -> string -> Bytes.t -> unit
val msg_recv : t -> Proc.t -> string -> Bytes.t
val msg_try_recv : t -> Proc.t -> string -> Bytes.t option
val msgq_length : t -> string -> int

(** {1 Protection-domain calls}

    The paper's §6 future work: "a protection-domain switching system
    call ... to support synchronous communication across protection
    boundaries".  A server registers a named entry point; a client's
    [pd_call] switches into the server's domain, runs the entry with an
    argument word, and switches back with the result — two domain
    switches, no kernel copying, no scheduler round trip.  Arguments
    larger than a word travel through shared segments. *)

(** [register_pd_service t ~name ~owner f] exports entry point [f] from
    the [owner] process's domain. *)
val register_pd_service : t -> name:string -> owner:Proc.t -> (t -> Proc.t -> int -> int) -> unit

(** [pd_call t proc ~service arg] — synchronous cross-domain call.  The
    handler runs in the {e server's} protection domain (its address
    space), with the caller suspended, and the result word comes back.
    @raise Os_error ([ENOENT]) for unknown services. *)
val pd_call : t -> Proc.t -> service:string -> int -> int

val pd_call_r : t -> Proc.t -> service:string -> int -> (int, Errno.t) result

(** {1 Misc} *)

(** Monotonic scheduler tick counter. *)
val ticks : t -> int

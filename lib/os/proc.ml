type state =
  | Runnable
  | Blocked of { cond : unit -> bool; why : string }
  | Zombie of int

type outcome = Finished of int | Crashed of exn | Paused

type nstate =
  | Not_started of (unit -> int)
  | Suspended of (unit, outcome) Effect.Deep.continuation
  | Done

type native = { mutable nstate : nstate }

type body = Isa of Hemlock_isa.Cpu.t | Native of native

type t = {
  pid : int;
  mutable parent : int;
  mutable space : Hemlock_vm.Address_space.t;
  mutable cwd : Hemlock_sfs.Path.t;
  mutable env : (string * string) list;
  mutable state : state;
  mutable body : body;
  mutable brk : int;
  mutable comm : string;
}

type _ Effect.t += Yield : unit Effect.t
type _ Effect.t += Wait_until : { cond : unit -> bool; why : string } -> unit Effect.t

exception Exit_proc of int
exception Killed of { pid : int; reason : string }

let yield () = Effect.perform Yield

let wait_until ?(why = "wait_until") cond =
  if not (cond ()) then Effect.perform (Wait_until { cond; why })

let is_zombie t = match t.state with Zombie _ -> true | Runnable | Blocked _ -> false

let getenv t name = List.assoc_opt name t.env

let setenv t name value = t.env <- (name, value) :: List.remove_assoc name t.env

(** A cluster of simulated machines connected by a broadcast network —
    the substrate for running rwhod the way the paper did, on "our local
    network of 65 rwhod-equipped machines", one kernel per machine.

    Each machine gets a message queue named {!inbox}.  {!broadcast}
    stamps a datagram with the current cluster round and posts it to
    every {e other} machine's mailbox; the datagram matures one round
    later, when the receiving machine drains its mailbox into the inbox
    queue (UDP broadcast, loss-free, uniform one-round latency).  The
    cluster scheduler interleaves the machines' kernels — spread over
    OCaml domains when asked — until all are quiescent, so a daemon
    blocked on its inbox wakes when a peer's broadcast arrives.

    Determinism: matured datagrams are delivered sorted by
    (round, sender, per-sender sequence number), each machine is pinned
    to one domain for a whole run, and per-domain statistics are merged
    in domain order — so console output and simulated costs are
    identical for every domain count. *)

type t

(** Name of the per-machine network inbox queue. *)
val inbox : string

(** [create ~machines] boots that many kernels, each with the inbox
    queue created. *)
val create : machines:int -> t

val size : t -> int

(** [machine t i] is machine [i]'s kernel. *)
val machine : t -> int -> Kernel.t

(** [broadcast t ~from payload] posts [payload] to every machine except
    [from], stamped with the current round.  Network traffic is billed
    ([messages_sent], [bytes_copied]) only when a datagram actually
    lands in a peer's inbox, on the delivering domain's stats. *)
val broadcast : t -> from:int -> Bytes.t -> unit

(** Interleave all machines until every one reports [`Done] and no
    datagrams remain in flight.  Each round drains every machine's
    matured datagrams into its inbox (a full inbox pushes the rest to a
    later round), then gives the machine one kernel step.

    [domains] defaults to [HEMLOCK_DOMAINS] (default 1 — the
    deterministic single-domain oracle) and is capped at the machine
    count; machine [i] runs on domain [i mod domains].

    @raise Kernel.Deadlock when no machine can make progress, nothing
    was delivered, and either some non-daemon process is blocked or
    in-flight datagrams are undeliverable (reported as [m<i>:net]).
    @param max_rounds safety valve. *)
val run : ?max_rounds:int -> ?domains:int -> t -> unit

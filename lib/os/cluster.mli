(** A cluster of simulated machines connected by a simulated network —
    the substrate for running rwhod the way the paper did, on "our local
    network of 65 rwhod-equipped machines", one kernel per machine.

    Each machine gets a message queue named {!inbox}.  {!broadcast}
    stamps a datagram with the current cluster round and offers it to
    every {e other} machine's mailbox through {!Net}: each link draws
    its fate — loss, latency in rounds, duplication, partition — from
    the sender's private PRNG stream ([HEMLOCK_NET_PROFILE] selects the
    parameters; the default [ideal] profile is the old loss-free
    one-round bus, draw-free and byte-identical).  A datagram is
    delivered when the receiving machine drains its mailbox into the
    inbox queue in the first round at or past the datagram's maturity.
    The cluster scheduler interleaves the machines' kernels — spread
    over OCaml domains when asked — until all are quiescent, so a
    daemon blocked on its inbox wakes when a peer's datagram arrives.

    Determinism: matured datagrams are delivered sorted by
    (maturity, sender, per-sender sequence number, duplicate index),
    network draws depend only on the sender's own send sequence, each
    machine is pinned to one domain for a whole run, and per-domain
    statistics are merged in domain order — so console output,
    simulated costs and the delivery trace are identical for every
    domain count, under every profile.

    Fault injection: every link send passes the [net.send] site and
    every matured delivery the [net.deliver] site ({!Fault.hit}); an
    injected error drops that datagram, a crash kills the machine
    mid-operation. *)

type t

(** Name of the per-machine network inbox queue. *)
val inbox : string

(** [create ~machines ()] boots that many kernels, each with the inbox
    queue created.  [profile] defaults to [HEMLOCK_NET_PROFILE]
    (default [ideal]) and [seed] to [HEMLOCK_NET_SEED] (default 1);
    pass them explicitly to pin behaviour regardless of environment. *)
val create : ?profile:Net.profile -> ?seed:int -> machines:int -> unit -> t

val size : t -> int

(** [machine t i] is machine [i]'s kernel. *)
val machine : t -> int -> Kernel.t

(** The cluster's network — for partitions, healing and telemetry. *)
val net : t -> Net.t

(** Cluster rounds elapsed so far (the simulated network clock). *)
val rounds : t -> int

(** [broadcast t ~from payload] offers [payload] to every machine
    except [from], stamped with the current round.  The payload is
    copied once at the send, so the sender may immediately reuse its
    buffer and receivers can never corrupt other receivers' copies.
    Network traffic is billed ([messages_sent], [bytes_copied]) only
    when a datagram actually lands in a peer's inbox, on the delivering
    domain's stats. *)
val broadcast : t -> from:int -> Bytes.t -> unit

(** [send t ~from ~dst payload] is a unicast {!broadcast}: one link,
    same fate draws, same billing.  Fire and forget. *)
val send : t -> from:int -> dst:int -> Bytes.t -> unit

(** [send_reliable t ~from ~dst payload] sends one datagram and blocks
    the calling native process (which must run on machine [from]) until
    the receiver's drain acks it or the retry budget is exhausted.
    Retransmits after [timeout] rounds (default [HEMLOCK_NET_TIMEOUT],
    4), doubling the window each retry up to a cap, at most [retries]
    times (default [HEMLOCK_NET_RETRIES], 4); each retransmit bills
    simulated backoff cycles, never wall time.  At-least-once
    semantics: the receiver may see duplicates when an ack is lost.
    Returns [Error ETIMEDOUT] when the budget runs out — the errno ABI,
    not a wedged cluster. *)
val send_reliable :
  t -> from:int -> dst:int -> ?retries:int -> ?timeout:int -> Bytes.t ->
  (unit, Errno.t) result

(** Interleave all machines until every one reports [`Done] and no
    datagrams remain in flight.  Each round drains every machine's
    matured datagrams into its inbox (a full inbox pushes the rest to a
    later round), then gives the machine one kernel step.

    [domains] defaults to [HEMLOCK_DOMAINS] (default 1 — the
    deterministic single-domain oracle) and is capped at the machine
    count; machine [i] runs on domain [i mod domains].

    Stall detection understands in-flight latency: a round with no
    kernel progress only counts against the cluster while nothing in
    the mailboxes has a maturity beyond the current round and no
    reliable sender is sleeping out an ack timeout.

    @raise Kernel.Deadlock when no machine can make progress, nothing
    was delivered, the horizon has passed, and either some non-daemon
    process is blocked or matured datagrams are undeliverable (reported
    as [m<i>:net] — datagrams still in flight are never counted).
    @param max_rounds safety valve. *)
val run : ?max_rounds:int -> ?domains:int -> t -> unit

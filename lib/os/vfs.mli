(** The kernel's file layer: per-process descriptor tables, open-file
    descriptions, and advisory file locks.

    Pure bookkeeping over segments — no scheduling, no address spaces,
    no console.  Every operation that can fail returns
    [('a, Errno.t) result]; {!Kernel} decides whether an error becomes
    an [Os_error] exception (native callers) or a negative [$v0]
    (ISA programs). *)

type fd = int

(** An open-file description: the backing segment and the file offset. *)
type entry = { fe_seg : Hemlock_vm.Segment.t; mutable fe_pos : int }

type t

val create : unit -> t

(** Per-process descriptor cap; allocation past it is [EMFILE]. *)
val max_fds : int

(** Descriptors start here (0–2 are reserved, as in Unix). *)
val first_fd : int

(** {1 Descriptors} *)

(** [alloc t ~pid seg] binds the lowest free descriptor (Unix
    semantics: close-then-open reuses the number).
    [EMFILE] at the table cap. *)
val alloc : t -> pid:int -> Hemlock_vm.Segment.t -> (fd, Errno.t) result

(** [EBADF] when the descriptor is not open. *)
val entry : t -> pid:int -> fd -> (entry, Errno.t) result

val close : t -> pid:int -> fd -> (unit, Errno.t) result

(** Drop every descriptor of a process (process exit). *)
val close_all : t -> pid:int -> unit

(** The process's open descriptors, ascending. *)
val open_fds : t -> pid:int -> fd list

(** [read t ~pid fd len] — up to [len] bytes from the offset; short at
    end of file.  [EBADF], or [EINVAL] for negative [len]. *)
val read : t -> pid:int -> fd -> int -> (Bytes.t, Errno.t) result

(** [write t ~pid fd b] appends at the offset, growing the file;
    [ENOSPC] when growth exceeds the backing slot. *)
val write : t -> pid:int -> fd -> Bytes.t -> (int, Errno.t) result

(** Absolute seek; returns the new offset.  [EINVAL] for negative
    positions. *)
val lseek : t -> pid:int -> fd -> int -> (int, Errno.t) result

(** {1 File locks}

    Advisory whole-file locks keyed by canonical path, re-entrant for
    the holder.  Blocking waits live in {!Kernel} (they need the
    scheduler); this layer only records ownership. *)

val try_lock : t -> key:string -> pid:int -> bool
val locked : t -> key:string -> bool
val lock_holder : t -> key:string -> int option

(** [EPERM] when held by another process; unlocking an unheld lock is a
    no-op. *)
val unlock : t -> key:string -> pid:int -> (unit, Errno.t) result

(** Drop every lock a process holds (process exit — crash recovery for
    ldl's creation locks). *)
val release_locks : t -> pid:int -> unit

(** Inter-process communication: System-V-style message queues and the
    paper's §6 protection-domain calls.

    Parametric over the kernel type (['k] is instantiated to
    [Kernel.t]) so the pd-service entry points can receive the kernel
    without this layer depending on it.  All failures are errnos;
    {!Kernel}'s compat wrappers turn them into [Os_error]. *)

type msgq

type 'k t

val create : unit -> 'k t

(** {1 Message queues} *)

(** [EEXIST] if the name is taken.  Sends block when full, receives
    when empty (native processes only — they block through the
    scheduler effect, with the queue name as the wait reason). *)
val msgq_create : 'k t -> string -> capacity:int -> (unit, Errno.t) result

val msgq_exists : 'k t -> string -> bool

(** [ENOENT] for an unknown queue, like the calls below. *)
val msgq_length : 'k t -> string -> (int, Errno.t) result

val msg_send : 'k t -> string -> Bytes.t -> (unit, Errno.t) result

(** Non-blocking enqueue from {e outside} any process context (the
    cluster's network pump): never waits, never bills — the sender
    accounts for the transfer on success.  [EAGAIN] when the queue is
    full, so the caller can hold the message for a later retry instead
    of dropping it. *)
val msg_enqueue : 'k t -> string -> Bytes.t -> (unit, Errno.t) result

val msg_recv : 'k t -> string -> (Bytes.t, Errno.t) result
val msg_try_recv : 'k t -> string -> (Bytes.t option, Errno.t) result

(** {1 Protection-domain calls} *)

(** [EEXIST] if the service name is taken. *)
val register_pd_service :
  'k t -> name:string -> owner:Proc.t -> ('k -> Proc.t -> int -> int) -> (unit, Errno.t) result

(** Synchronous cross-domain call: runs the entry in the server's
    domain with the caller suspended.  [ENOENT] for unknown services. *)
val pd_call : 'k t -> 'k -> service:string -> int -> (int, Errno.t) result

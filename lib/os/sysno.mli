(** Syscall numbers for ISA programs (placed in $v0 before [syscall]).
    Numbers 32+ are reserved for registered extensions; the dynamic
    linker's run-time service installs itself there (see
    {!Kernel.register_syscall}). *)

val exit : int  (** a0 = code *)

val fork : int  (** v0 = child pid in parent, 0 in child *)

val wait : int  (** v0 = pid reaped, v1 = exit code; blocks *)

val getpid : int
val yield : int

val sbrk : int  (** a0 = bytes; v0 = old break *)

val print_int : int  (** a0 = value, printed in decimal to the console *)

val print_str : int  (** a0 = address of NUL-terminated string *)

val path_to_addr : int
(** a0 = path cstring; v0 = addr, or -errno (not shared → -ENXIO) *)

val addr_to_path : int
(** a0 = addr, a1 = buffer, a2 = buflen; writes path, v0 = length or
    -errno *)

(** {2 File descriptors}

    All five return a negative errno in [$v0] on failure (and never
    kill the process), so compiled programs can test and recover. *)

val open_ : int
(** a0 = path cstring, a1 = flags ({!o_create} / {!o_trunc});
    v0 = fd or -errno (missing → -ENOENT, table full → -EMFILE) *)

val close : int  (** a0 = fd; v0 = 0 or -EBADF *)

val read : int
(** a0 = fd, a1 = buffer, a2 = len; v0 = bytes read (short at EOF) or
    -errno *)

val write : int
(** a0 = fd, a1 = buffer, a2 = len; v0 = bytes written or -errno
    (full slot → -ENOSPC) *)

val lseek : int
(** a0 = fd, a1 = absolute offset; v0 = new offset or -errno
    (negative offset → -EINVAL) *)

(** [open] flag bits for a1. *)
val o_create : int

val o_trunc : int

(** Kernel lock-word syscalls (registered by the Hemlock runtime's
    [Sync.install]; numbers fixed here so the compiler can emit them). *)
val lock_acquire : int

val lock_release : int

(** First number available to {!Kernel.register_syscall}. *)
val first_extension : int

val ldl_run : int  (** crt0 traps here to run the dynamic linker *)

(** POSIX-style error numbers — the kernel's internal error currency.

    Every kernel-boundary failure carries one of these; the compat
    wrappers in {!Kernel} turn them into [Os_error] exceptions for
    native callers, and the ISA syscall dispatcher reports them to user
    programs as negative [$v0] values (the Linux convention), so
    cc/Lisp code can test for and recover from [ENOENT], [ENOSPC],
    [EBADF], … instead of being killed. *)

type t =
  | EPERM
  | ENOENT
  | ESRCH
  | ENOEXEC
  | ENXIO
  | EIO
  | EBADF
  | ECHILD
  | EAGAIN
  | ENOMEM
  | EACCES
  | EFAULT
  | EBUSY
  | EEXIST
  | EXDEV
  | ENOTDIR
  | EISDIR
  | EINVAL
  | EMFILE
  | ENOSPC
  | ESPIPE
  | EDEADLK
  | ENOSYS
  | ENOTEMPTY
  | ELOOP
  | ETIMEDOUT

(** The Linux numeric code (e.g. [ENOENT] = 2); ISA programs see the
    negated code in [$v0]. *)
val code : t -> int

(** Every errno, in [code] order. *)
val all : t list

(** The conventional symbolic name, e.g. ["ENOENT"]. *)
val name : t -> string

(** The [strerror]-style text, e.g. ["no such file or directory"]. *)
val message : t -> string

val of_code : int -> t option

(** How file-system failures surface across the syscall boundary
    ([Not_found] → [ENOENT], [No_space] → [ENOSPC], [Not_shared] →
    [ENXIO], …). *)
val of_fs_kind : Hemlock_sfs.Fs.err_kind -> t

(** How injected faults surface: [Fault.Eio] → [EIO], [Enospc] →
    [ENOSPC], [Eagain] → [EAGAIN]. *)
val of_failure : Hemlock_util.Fault.failure -> t

(** ["ENOENT: no such file or directory"]. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

module Segment = Hemlock_vm.Segment
module Fault = Hemlock_util.Fault

type fd = int

type entry = { fe_seg : Segment.t; mutable fe_pos : int }

type t = {
  fd_entries : (int * fd, entry) Hashtbl.t;
  locks : (string, int) Hashtbl.t;
}

let max_fds = 64
let first_fd = 3

let create () = { fd_entries = Hashtbl.create 32; locks = Hashtbl.create 8 }

(* --- file descriptors -------------------------------------------------- *)

let open_fds t ~pid =
  List.sort compare
    (Hashtbl.fold
       (fun (p, fd) _ acc -> if p = pid then fd :: acc else acc)
       t.fd_entries [])

(* Unix allocation: the lowest descriptor not currently open, so a
   close-then-open pair reuses the number. *)
let alloc t ~pid seg =
  let rec scan fd =
    if fd >= first_fd + max_fds then Error Errno.EMFILE
    else if Hashtbl.mem t.fd_entries (pid, fd) then scan (fd + 1)
    else begin
      Hashtbl.replace t.fd_entries (pid, fd) { fe_seg = seg; fe_pos = 0 };
      Ok fd
    end
  in
  scan first_fd

let entry t ~pid fd =
  match Hashtbl.find_opt t.fd_entries (pid, fd) with
  | Some e -> Ok e
  | None -> Error Errno.EBADF

let close t ~pid fd =
  if Hashtbl.mem t.fd_entries (pid, fd) then begin
    match Fault.hit "vfs.close" with
    | exception Fault.Injected { failure; _ } -> Error (Errno.of_failure failure)
    | () ->
      Hashtbl.remove t.fd_entries (pid, fd);
      Ok ()
  end
  else Error Errno.EBADF

let close_all t ~pid =
  List.iter (fun fd -> Hashtbl.remove t.fd_entries (pid, fd)) (open_fds t ~pid)

let read t ~pid fd len =
  if len < 0 then Error Errno.EINVAL
  else
    match entry t ~pid fd with
    | Error err -> Error err
    | Ok e -> (
      match Fault.hit "vfs.read" with
      | exception Fault.Injected { failure; _ } -> Error (Errno.of_failure failure)
      | () ->
      let avail = max 0 (Segment.size e.fe_seg - e.fe_pos) in
      let n = min len avail in
      let out = Segment.blit_out e.fe_seg ~src_off:e.fe_pos ~len:n in
      e.fe_pos <- e.fe_pos + n;
      Ok out)

let write t ~pid fd b =
  match entry t ~pid fd with
  | Error err -> Error err
  | Ok e -> (
    match
      Fault.hit "vfs.write";
      if e.fe_pos + Bytes.length b > Segment.size e.fe_seg then Fault.hit "seg.grow"
    with
    | exception Fault.Injected { failure; _ } -> Error (Errno.of_failure failure)
    | () -> (
      match Segment.blit_in e.fe_seg ~dst_off:e.fe_pos b with
      | () ->
        e.fe_pos <- e.fe_pos + Bytes.length b;
        Ok (Bytes.length b)
      | exception Invalid_argument _ ->
        (* Growth past the segment's max_size: the backing slot is full. *)
        Error Errno.ENOSPC))

let lseek t ~pid fd pos =
  if pos < 0 then Error Errno.EINVAL
  else
    match entry t ~pid fd with
    | Error err -> Error err
    | Ok e -> (
      match Fault.hit "vfs.lseek" with
      | exception Fault.Injected { failure; _ } -> Error (Errno.of_failure failure)
      | () ->
        e.fe_pos <- pos;
        Ok pos)

(* --- file locks -------------------------------------------------------- *)

let try_lock t ~key ~pid =
  match Hashtbl.find_opt t.locks key with
  | Some holder when holder <> pid -> false
  | Some _ -> true (* re-entrant *)
  | None ->
    Hashtbl.replace t.locks key pid;
    true

let locked t ~key = Hashtbl.mem t.locks key

let lock_holder t ~key = Hashtbl.find_opt t.locks key

let unlock t ~key ~pid =
  match Hashtbl.find_opt t.locks key with
  | Some holder when holder = pid ->
    Hashtbl.remove t.locks key;
    Ok ()
  | Some _ -> Error Errno.EPERM
  | None -> Ok ()

let release_locks t ~pid =
  let held =
    Hashtbl.fold (fun k holder acc -> if holder = pid then k :: acc else acc) t.locks []
  in
  List.iter (Hashtbl.remove t.locks) held

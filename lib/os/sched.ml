module Stats = Hemlock_util.Stats

type blocked = { b_pid : int; b_comm : string; b_why : string }

exception Deadlock of blocked list

let deadlock_message blocked =
  String.concat ", "
    (List.map
       (fun b -> Printf.sprintf "pid %d (%s) waiting on %s" b.b_pid b.b_comm b.b_why)
       blocked)

let () =
  Printexc.register_printer (function
    | Deadlock blocked -> Some ("Deadlock: " ^ deadlock_message blocked)
    | _ -> None)

type t = {
  proc_table : (int, Proc.t) Hashtbl.t;
  mutable next_pid : int;
  daemons : (int, unit) Hashtbl.t;
  mutable tick_count : int;
  (* Pid-sorted snapshot of [proc_table], rebuilt lazily after an
     add/remove.  The scheduler walks the process list several times
     per pass, once per quantum — re-sorting the table each walk made
     every pass O(n log n) in the number of processes ever spawned
     (zombies included), which dominated long multi-process runs. *)
  mutable plist : Proc.t list;
  mutable plist_dirty : bool;
}

let create () =
  {
    proc_table = Hashtbl.create 32;
    next_pid = 1;
    daemons = Hashtbl.create 8;
    tick_count = 0;
    plist = [];
    plist_dirty = false;
  }

let fresh_pid t =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  pid

let add t proc =
  Hashtbl.replace t.proc_table proc.Proc.pid proc;
  t.plist_dirty <- true

let remove t pid =
  Hashtbl.remove t.proc_table pid;
  Hashtbl.remove t.daemons pid;
  t.plist_dirty <- true

let find t pid = Hashtbl.find_opt t.proc_table pid

let processes t =
  if t.plist_dirty then begin
    t.plist <-
      List.sort
        (fun a b -> compare a.Proc.pid b.Proc.pid)
        (Hashtbl.fold (fun _ p acc -> p :: acc) t.proc_table []);
    t.plist_dirty <- false
  end;
  t.plist

let set_daemon t proc = Hashtbl.replace t.daemons proc.Proc.pid ()

let is_daemon t pid = Hashtbl.mem t.daemons pid

let ticks t = t.tick_count

let unblock_pass t =
  List.iter
    (fun p ->
      match p.Proc.state with
      | Proc.Blocked { cond; _ } when cond () -> p.Proc.state <- Proc.Runnable
      | Proc.Blocked _ | Proc.Runnable | Proc.Zombie _ -> ())
    (processes t)

let blocked_nondaemons t =
  List.filter_map
    (fun p ->
      match p.Proc.state with
      | Proc.Blocked { why; _ } when not (is_daemon t p.Proc.pid) ->
        Some { b_pid = p.Proc.pid; b_comm = p.Proc.comm; b_why = why }
      | Proc.Blocked _ | Proc.Runnable | Proc.Zombie _ -> None)
    (processes t)

(* One scheduler pass.  [run_one] gives a runnable process its quantum;
   the caller (Kernel) owns what a quantum means. *)
let step t ~run_one =
  unblock_pass t;
  let runnable = List.filter (fun p -> p.Proc.state = Proc.Runnable) (processes t) in
  match runnable with
  | [] -> if blocked_nondaemons t = [] then `Done else `Idle
  | ps ->
    List.iter
      (fun p ->
        if p.Proc.state = Proc.Runnable then begin
          t.tick_count <- t.tick_count + 1;
          (Stats.cur ()).context_switches <- (Stats.cur ()).context_switches + 1;
          run_one p
        end)
      ps;
    `Progress

(* One parallel scheduler pass.  Billing (ticks, context switches) for
   every dispatched quantum happens up front on the calling domain —
   the same totals as the sequential pass, in a deterministic place —
   and [run_many] then executes the whole runnable batch however the
   kernel decides to spread it over domains. *)
let step_par t ~run_many =
  unblock_pass t;
  let runnable = List.filter (fun p -> p.Proc.state = Proc.Runnable) (processes t) in
  match runnable with
  | [] -> if blocked_nondaemons t = [] then `Done else `Idle
  | ps ->
    List.iter
      (fun _ ->
        t.tick_count <- t.tick_count + 1;
        (Stats.cur ()).context_switches <- (Stats.cur ()).context_switches + 1)
      ps;
    run_many ps;
    `Progress

let run ?(max_ticks = 2_000_000) t ~run_one ~on_budget =
  let deadline = t.tick_count + max_ticks in
  let rec loop () =
    if t.tick_count > deadline then on_budget ()
    else
      match step t ~run_one with
      | `Progress -> loop ()
      | `Done -> ()
      | `Idle -> raise (Deadlock (blocked_nondaemons t))
  in
  loop ()

module As = Hemlock_vm.Address_space
module Vm_object = Hemlock_vm.Vm_object
module Layout = Hemlock_vm.Layout
module Prot = Hemlock_vm.Prot
module Segment = Hemlock_vm.Segment
module Fs = Hemlock_sfs.Fs
module Path = Hemlock_sfs.Path
module Cpu = Hemlock_isa.Cpu
module Reg = Hemlock_isa.Reg
module Trap = Hemlock_isa.Trap
module Codec = Hemlock_util.Codec
module Stats = Hemlock_util.Stats
module Fault = Hemlock_util.Fault
module Domain_pool = Hemlock_util.Domain_pool

type blocked = Sched.blocked = { b_pid : int; b_comm : string; b_why : string }

exception Deadlock = Sched.Deadlock
exception Os_error of string
exception Wrong_format

(* The compat face of the errno ABI: result-returning calls have an
   exception-raising wrapper whose message carries the errno. *)
let os_error ctx e = Os_error (Printf.sprintf "%s: %s (%s)" ctx (Errno.message e) (Errno.name e))

let ok_exn ctx = function Ok v -> v | Error e -> raise (os_error ctx e)

type fault = Trap.fault = {
  f_addr : int;
  f_access : Prot.access;
  f_reason : As.fault_reason;
}

type segv_result = Resolved | Retry_when of (unit -> bool) | Unhandled

type fd = Vfs.fd

type t = {
  fs : Fs.t;
  sched : Sched.t;
  vfs : Vfs.t;
  ipc : t Ipc.t;
  console_buf : Buffer.t;
  segv_handlers : (int, (string * handler) list) Hashtbl.t;
  ext_syscalls : (int, t -> Proc.t -> Cpu.t -> unit) Hashtbl.t;
  mutable binfmts : (string * (t -> Proc.t -> Bytes.t -> path:string -> int)) list;
  mutable fork_hooks : (parent:Proc.t -> child:Proc.t -> unit) list;
  mutable reboot_hooks : (unit -> unit) list;
  lock : Mutex.t;
      (* the kernel big lock, contended only in parallel mode: one
         domain at a time mutates the shared tables (fs, vfs, ipc,
         scheduler, console) *)
  mutable par : bool;
      (* true only while a [step_par] round has ISA quanta spread over
         domains; the sequential paths never touch [lock] *)
}

and handler = t -> Proc.t -> fault -> segv_result

type segv_handler = handler

(* Internal control-flow exceptions for ISA syscall dispatch. *)
exception Isa_exit of int
exception Isa_yield
exception Isa_blocked of { cond : unit -> bool; why : string }
exception Isa_fatal of string

let create () =
  let fs = Fs.create () in
  Fs.rescan_shared fs;
  {
    fs;
    sched = Sched.create ();
    vfs = Vfs.create ();
    ipc = Ipc.create ();
    console_buf = Buffer.create 256;
    segv_handlers = Hashtbl.create 32;
    ext_syscalls = Hashtbl.create 8;
    binfmts = [];
    fork_hooks = [];
    reboot_hooks = [];
    lock = Mutex.create ();
    par = false;
  }

(* Lock order: kernel lock first, then any address-space range lock —
   never the reverse.  In sequential mode ([par = false]) this is a
   single branch; kernel code below the trap pipeline assumes its
   caller took the lock (or that no other domain is running). *)
let with_kernel_lock t f =
  if t.par then begin
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f
  end
  else f ()

(* Hooks are kept newest-first (O(1) registration) and reversed into
   registration order at each fork. *)
let add_fork_hook t hook = t.fork_hooks <- hook :: t.fork_hooks

let add_reboot_hook t hook = t.reboot_hooks <- hook :: t.reboot_hooks

let fs t = t.fs

let reboot t =
  Fs.rescan_shared t.fs;
  List.iter (fun h -> h ()) (List.rev t.reboot_hooks)

let console t = Buffer.contents t.console_buf
let console_clear t = Buffer.clear t.console_buf

let ticks t = Sched.ticks t.sched

(* Fs failures stop leaking out of kernel calls as Fs.Error: anything
   the file system raises on the far side of the syscall boundary comes
   back as an errno. *)
let fs_result f =
  match f () with
  | v -> Ok v
  | exception Fs.Error { kind; _ } -> Error (Errno.of_fs_kind kind)
  | exception Fault.Injected { failure; _ } -> Error (Errno.of_failure failure)

(* --- protection-domain calls (the paper's future-work syscall) -------- *)

let register_pd_service t ~name ~owner pd_entry =
  ok_exn ("pd service " ^ name) (Ipc.register_pd_service t.ipc ~name ~owner pd_entry)

let pd_call_r t proc ~service arg =
  ignore proc;
  Ipc.pd_call t.ipc t ~service arg

let pd_call t proc ~service arg =
  ok_exn ("pd_call " ^ service) (pd_call_r t proc ~service arg)

(* --- signals ----------------------------------------------------------- *)

let install_segv_handler t proc ~name h =
  let chain = Option.value ~default:[] (Hashtbl.find_opt t.segv_handlers proc.Proc.pid) in
  Hashtbl.replace t.segv_handlers proc.Proc.pid ((name, h) :: chain)

let deliver_segv t proc fault =
  (Stats.cur ()).faults <- (Stats.cur ()).faults + 1;
  let chain = Option.value ~default:[] (Hashtbl.find_opt t.segv_handlers proc.Proc.pid) in
  let rec walk = function
    | [] -> Unhandled
    | (_, h) :: rest -> (
      match h t proc fault with
      | Resolved -> Resolved
      | Retry_when cond -> Retry_when cond
      | Unhandled -> walk rest)
  in
  walk chain

(* --- extension points --------------------------------------------------- *)

let register_syscall t num f =
  if num < Sysno.first_extension then
    invalid_arg "Kernel.register_syscall: number reserved for the core";
  Hashtbl.replace t.ext_syscalls num f

let register_binfmt t ~name loader = t.binfmts <- t.binfmts @ [ (name, loader) ]

let block_syscall ?(why = "syscall retry") cpu cond =
  cpu.Cpu.pc <- cpu.Cpu.pc - 4;
  raise (Isa_blocked { cond; why })

(* --- process table ------------------------------------------------------ *)

let find_proc t pid = Sched.find t.sched pid

let processes t = Sched.processes t.sched

let set_daemon t proc = Sched.set_daemon t.sched proc

let exit_proc t proc code =
  proc.Proc.state <- Proc.Zombie code;
  (* Detach the dead space from every VmObject so eviction stops
     chasing it; the mapping table itself survives for post-mortem
     inspection.  Segment refcounts stay (the documented
     no-release-on-exit rule). *)
  As.detach_all proc.Proc.space;
  Vfs.close_all t.vfs ~pid:proc.Proc.pid;
  Vfs.release_locks t.vfs ~pid:proc.Proc.pid

let kill t proc ~reason =
  Buffer.add_string t.console_buf
    (Printf.sprintf "[kernel] pid %d (%s) killed: %s\n" proc.Proc.pid proc.Proc.comm reason);
  exit_proc t proc (-1)

let spawn_native t ?(name = "native") ?(env = []) ?(cwd = Path.root) body =
  let pid = Sched.fresh_pid t.sched in
  let proc =
    {
      Proc.pid;
      parent = 0;
      space = As.create ();
      cwd;
      env;
      state = Proc.Runnable;
      body = Proc.Native { nstate = Proc.Done };
      brk = Layout.heap_base;
      comm = name;
    }
  in
  (match proc.Proc.body with
  | Proc.Native n -> n.Proc.nstate <- Proc.Not_started (fun () -> body t proc)
  | Proc.Isa _ -> assert false);
  Sched.add t.sched proc;
  proc

(* --- memory helpers ----------------------------------------------------- *)

let fault_of_exn = function
  | As.Fault { addr; access; reason } ->
    Some { f_addr = addr; f_access = access; f_reason = reason }
  | _ -> None

let pp_fault f = Format.asprintf "%a" Trap.pp_fault f

(* Copy-on-write faults are a kernel-internal protocol, resolved before
   SIGSEGV delivery ever enters the picture: user-level handlers (the
   lazy linker included) never see them, [Stats.faults] never counts
   them, and an ISA process's quantum is not ended by one.  When this
   returns true the mapping's write permission is restored and the
   caller must simply retry the faulting access. *)
let cow_fault proc fault =
  fault.f_reason = As.Protection
  && fault.f_access = Prot.Write
  && As.resolve_cow proc.Proc.space fault.f_addr

(* Demand-paging faults ride the same kernel-internal protocol: a
   [Not_resident] access materialises the page (evicting under a full
   RAM budget) and the caller retries.  Never delivered to user
   handlers, never billed to [Stats.faults], no fuel consumed — so the
   cost model is pager-blind. *)
let pager_fault proc fault =
  fault.f_reason = As.Not_resident
  && As.resolve_pager proc.Proc.space fault.f_addr fault.f_access

(* Checked access for native process code: retries through SIGSEGV
   delivery, blocking on Retry_when conditions. *)
let rec native_access : 'a. t -> Proc.t -> (unit -> 'a) -> 'a =
  fun t proc f ->
  try f () with
  | As.Fault _ as e -> (
    let fault = Option.get (fault_of_exn e) in
    if pager_fault proc fault || cow_fault proc fault then native_access t proc f
    else
      match deliver_segv t proc fault with
      | Resolved -> native_access t proc f
      | Retry_when cond ->
        Proc.wait_until ~why:(pp_fault fault) cond;
        native_access t proc f
      | Unhandled ->
        raise (Proc.Killed { pid = proc.Proc.pid; reason = pp_fault fault }))

(* Each checked access bills one instruction, so native workload code
   and ISA code are accounted on the same scale. *)
let tick () = (Stats.cur ()).instructions <- (Stats.cur ()).instructions + 1

let load_u8 t proc addr =
  tick ();
  native_access t proc (fun () -> As.load_u8 proc.Proc.space addr)

let load_u32 t proc addr =
  tick ();
  native_access t proc (fun () -> As.load_u32 proc.Proc.space addr)

let store_u8 t proc addr v =
  tick ();
  native_access t proc (fun () -> As.store_u8 proc.Proc.space addr v)

let store_u32 t proc addr v =
  tick ();
  native_access t proc (fun () -> As.store_u32 proc.Proc.space addr v)
(* An unterminated string argument is a malformed *argument*, not a
   simulator bug: surface it as EFAULT through the errno ABI instead of
   letting the raw exception kill the whole simulation. *)
let read_cstring t proc addr =
  match native_access t proc (fun () -> As.read_cstring proc.Proc.space addr) with
  | s -> s
  | exception As.Cstring_unterminated _ ->
    raise (os_error (Printf.sprintf "read_cstring 0x%08x" addr) Errno.EFAULT)

let write_cstring t proc addr s =
  native_access t proc (fun () ->
      String.iteri (fun i c -> As.store_u8 proc.Proc.space (addr + i) (Char.code c)) s;
      As.store_u8 proc.Proc.space (addr + String.length s) 0)

(* Bounded retry for faults taken while the kernel touches user memory on
   behalf of an ISA syscall (e.g. reading a path argument). *)
let isa_access t proc f =
  let rec go fuel =
    if fuel = 0 then raise (Isa_fatal "fault loop in syscall argument")
    else
      try f () with
      | As.Fault _ as e -> (
        let fault = Option.get (fault_of_exn e) in
        if pager_fault proc fault || cow_fault proc fault then go (fuel - 1)
        else
          match deliver_segv t proc fault with
          | Resolved -> go (fuel - 1)
          | Retry_when _ | Unhandled ->
            raise (Isa_fatal ("fault in syscall argument: " ^ pp_fault fault)))
  in
  go 64

(* --- the new kernel calls ------------------------------------------------ *)

let sys_path_to_addr_r t proc path =
  (Stats.cur ()).syscalls <- (Stats.cur ()).syscalls + 1;
  fs_result (fun () -> Fs.addr_of_path t.fs ~cwd:proc.Proc.cwd path)

let sys_path_to_addr t proc path =
  ok_exn ("path_to_addr " ^ path) (sys_path_to_addr_r t proc path)

let sys_addr_to_path_r t _proc addr =
  (Stats.cur ()).syscalls <- (Stats.cur ()).syscalls + 1;
  fs_result (fun () -> Fs.path_of_addr t.fs addr)

let sys_addr_to_path t proc addr =
  ok_exn (Printf.sprintf "addr_to_path 0x%08x" addr) (sys_addr_to_path_r t proc addr)

let map_shared_file_r t proc ~path ~prot =
  (Stats.cur ()).syscalls <- (Stats.cur ()).syscalls + 1;
  fs_result (fun () ->
      let base = Fs.addr_of_path t.fs ~cwd:proc.Proc.cwd path in
      let canonical = Fs.path_of_addr t.fs base in
      match As.mapping_at proc.Proc.space base with
      | Some _ -> base
      | None ->
        let seg = Fs.segment_of t.fs canonical in
        As.map proc.Proc.space ~base ~len:Layout.shared_slot_size ~seg
          ~kind:
            (Vm_object.File_backed
               {
                 path = canonical;
                 writeback =
                   (fun ~page -> Fs.page_writeback t.fs ~path:canonical ~seg ~page);
               })
          ~prot ~share:As.Public ~label:canonical ();
        base)

let map_shared_file t proc ~path ~prot =
  ok_exn ("map_shared_file " ^ path) (map_shared_file_r t proc ~path ~prot)

(* --- file descriptors ----------------------------------------------------- *)

let sys_open_r t proc ?(create = false) ?(trunc = false) path =
  (Stats.cur ()).syscalls <- (Stats.cur ()).syscalls + 1;
  (Stats.cur ()).files_opened <- (Stats.cur ()).files_opened + 1;
  match
    fs_result (fun () ->
        Fault.hit "vfs.open";
        let cwd = proc.Proc.cwd in
        if create && not (Fs.exists t.fs ~cwd path) then Fs.create_file t.fs ~cwd path;
        let seg = Fs.segment_of t.fs ~cwd path in
        if trunc then Segment.resize seg 0;
        seg)
  with
  | Ok seg -> Vfs.alloc t.vfs ~pid:proc.Proc.pid seg
  | Error e -> Error e

let sys_open t proc ?create ?trunc path =
  ok_exn ("open " ^ path) (sys_open_r t proc ?create ?trunc path)

let sys_open_by_addr_r t proc addr =
  (Stats.cur ()).syscalls <- (Stats.cur ()).syscalls + 1;
  (Stats.cur ()).files_opened <- (Stats.cur ()).files_opened + 1;
  match
    fs_result (fun () ->
        let path = Fs.path_of_addr t.fs addr in
        Fs.segment_of t.fs path)
  with
  | Ok seg -> Vfs.alloc t.vfs ~pid:proc.Proc.pid seg
  | Error e -> Error e

let sys_open_by_addr t proc addr =
  ok_exn (Printf.sprintf "open 0x%08x" addr) (sys_open_by_addr_r t proc addr)

let sys_read_r t proc fd len =
  (Stats.cur ()).syscalls <- (Stats.cur ()).syscalls + 1;
  match Vfs.read t.vfs ~pid:proc.Proc.pid fd len with
  | Ok b ->
    (Stats.cur ()).bytes_copied <- (Stats.cur ()).bytes_copied + Bytes.length b;
    Ok b
  | Error e -> Error e

let sys_read t proc fd len = ok_exn (Printf.sprintf "read fd %d" fd) (sys_read_r t proc fd len)

let sys_write_r t proc fd b =
  (Stats.cur ()).syscalls <- (Stats.cur ()).syscalls + 1;
  match Vfs.write t.vfs ~pid:proc.Proc.pid fd b with
  | Ok n ->
    (Stats.cur ()).bytes_copied <- (Stats.cur ()).bytes_copied + n;
    Ok n
  | Error e -> Error e

let sys_write t proc fd b = ok_exn (Printf.sprintf "write fd %d" fd) (sys_write_r t proc fd b)

let sys_lseek_r t proc fd pos =
  (Stats.cur ()).syscalls <- (Stats.cur ()).syscalls + 1;
  Vfs.lseek t.vfs ~pid:proc.Proc.pid fd pos

let sys_lseek t proc fd pos =
  ok_exn (Printf.sprintf "lseek fd %d" fd) (sys_lseek_r t proc fd pos)

let sys_close_r t proc fd =
  (Stats.cur ()).syscalls <- (Stats.cur ()).syscalls + 1;
  Vfs.close t.vfs ~pid:proc.Proc.pid fd

let sys_close t proc fd = ok_exn (Printf.sprintf "close fd %d" fd) (sys_close_r t proc fd)

(* --- file locks ------------------------------------------------------------ *)

let lock_key proc path = Path.to_string (Path.of_string ~cwd:proc.Proc.cwd path)

let try_flock t proc path =
  (Stats.cur ()).syscalls <- (Stats.cur ()).syscalls + 1;
  Vfs.try_lock t.vfs ~key:(lock_key proc path) ~pid:proc.Proc.pid

let flock t proc path =
  let key = lock_key proc path in
  Proc.wait_until ~why:("flock " ^ key) (fun () -> not (Vfs.locked t.vfs ~key));
  ignore (try_flock t proc path)

let funlock t proc path =
  (Stats.cur ()).syscalls <- (Stats.cur ()).syscalls + 1;
  match Vfs.unlock t.vfs ~key:(lock_key proc path) ~pid:proc.Proc.pid with
  | Ok () -> ()
  | Error _ -> raise (Os_error "funlock: not the lock holder")

let flock_holder t path =
  Vfs.lock_holder t.vfs ~key:(Path.to_string (Path.of_string ~cwd:Path.root path))

(* --- message queues ---------------------------------------------------------- *)

let msgq_create t name ~capacity =
  match Ipc.msgq_create t.ipc name ~capacity with
  | Ok () -> ()
  | Error _ -> raise (Os_error ("msgq exists: " ^ name))

let msgq_exists t name = Ipc.msgq_exists t.ipc name

let msgq_length t name = ok_exn ("msgq " ^ name) (Ipc.msgq_length t.ipc name)

let msg_send t _proc name b = ok_exn ("msgq " ^ name) (Ipc.msg_send t.ipc name b)

let msg_recv t _proc name = ok_exn ("msgq " ^ name) (Ipc.msg_recv t.ipc name)

let msg_try_recv t _proc name = ok_exn ("msgq " ^ name) (Ipc.msg_try_recv t.ipc name)

(* --- exec / fork -------------------------------------------------------------- *)

let stack_bytes = 256 * 1024

let map_stack t proc =
  ignore t;
  let seg =
    Segment.create ~name:(Printf.sprintf "stack:%d" proc.Proc.pid) ~max_size:stack_bytes ()
  in
  As.map proc.Proc.space ~base:(Layout.stack_limit - stack_bytes) ~len:stack_bytes ~seg
    ~kind:Vm_object.Anonymous ~prot:Prot.Read_write ~share:As.Private ~label:"stack" ()

let exec t proc path =
  (Stats.cur ()).syscalls <- (Stats.cur ()).syscalls + 1;
  (* Signal dispositions are reset across exec, as in Unix. *)
  Hashtbl.remove t.segv_handlers proc.Proc.pid;
  let image =
    ok_exn ("exec " ^ path)
      (fs_result (fun () -> Fs.read_file t.fs ~cwd:proc.Proc.cwd path))
  in
  let rec try_loaders = function
    | [] ->
      raise
        (os_error (Printf.sprintf "exec %s: unrecognised format" path) Errno.ENOEXEC)
    | (_, loader) :: rest -> (
      (* exec replaces the image: tear the previous space down (the
         original one first, then each failed loader attempt's). *)
      As.teardown proc.Proc.space;
      proc.Proc.space <- As.create ();
      match loader t proc image ~path with
      | entry -> entry
      | exception Wrong_format -> try_loaders rest)
  in
  let entry = try_loaders t.binfmts in
  map_stack t proc;
  proc.Proc.brk <- Layout.heap_base;
  proc.Proc.comm <- path;
  let cpu = Cpu.create ~entry ~sp:(Layout.stack_limit - 64) in
  proc.Proc.body <- Proc.Isa cpu;
  proc.Proc.state <- Proc.Runnable

let spawn_blank t ?(name = "blank") ?(env = []) ?(cwd = Path.root) () =
  let proc = spawn_native t ~name ~env ~cwd (fun _ _ -> 0) in
  proc.Proc.state <- Proc.Blocked { cond = (fun () -> false); why = "a body" };
  proc

let set_isa_entry t proc ~entry =
  (match As.mapping_at proc.Proc.space (Layout.stack_limit - stack_bytes) with
  | Some _ -> ()
  | None -> map_stack t proc);
  let cpu = Cpu.create ~entry ~sp:(Layout.stack_limit - 64) in
  proc.Proc.body <- Proc.Isa cpu;
  proc.Proc.state <- Proc.Runnable

let spawn_exec t ?(name = "a.out") ?(env = []) ?(cwd = Path.root) path =
  let proc = spawn_native t ~name ~env ~cwd (fun _ _ -> 0) in
  exec t proc path;
  proc

let fork_isa t proc =
  match proc.Proc.body with
  | Proc.Native _ -> raise (Os_error "fork: only ISA processes can fork")
  | Proc.Isa cpu ->
    (Stats.cur ()).syscalls <- (Stats.cur ()).syscalls + 1;
    let pid = Sched.fresh_pid t.sched in
    let child_cpu = Cpu.fork cpu in
    let child =
      {
        Proc.pid;
        parent = proc.Proc.pid;
        space = As.clone proc.Proc.space;
        cwd = proc.Proc.cwd;
        env = proc.Proc.env;
        state = Proc.Runnable;
        body = Proc.Isa child_cpu;
        brk = proc.Proc.brk;
        comm = proc.Proc.comm;
      }
    in
    (* The child inherits the parent's signal dispositions. *)
    (match Hashtbl.find_opt t.segv_handlers proc.Proc.pid with
    | Some chain -> Hashtbl.replace t.segv_handlers pid chain
    | None -> ());
    Sched.add t.sched child;
    List.iter (fun hook -> hook ~parent:proc ~child) (List.rev t.fork_hooks);
    child

let children t pid =
  List.filter (fun p -> p.Proc.parent = pid) (processes t)

let reap t proc =
  let kids = children t proc.Proc.pid in
  match List.find_opt Proc.is_zombie kids with
  | Some z -> (
    match z.Proc.state with
    | Proc.Zombie code ->
      Sched.remove t.sched z.Proc.pid;
      Hashtbl.remove t.segv_handlers z.Proc.pid;
      Some (z.Proc.pid, code)
    | Proc.Runnable | Proc.Blocked _ -> assert false)
  | None -> None

let waitpid t proc =
  if children t proc.Proc.pid = [] then raise (os_error "waitpid" Errno.ECHILD);
  Proc.wait_until ~why:"waitpid: a child to exit" (fun () ->
      List.exists Proc.is_zombie (children t proc.Proc.pid));
  (Stats.cur ()).syscalls <- (Stats.cur ()).syscalls + 1;
  Option.get (reap t proc)

(* --- ISA syscall dispatch -------------------------------------------------------- *)

let sbrk t proc bytes =
  let old = proc.Proc.brk in
  if bytes > 0 then begin
    let len = Layout.page_up bytes in
    if proc.Proc.brk + len > Layout.heap_limit then Error Errno.ENOMEM
    else begin
      let seg =
        Segment.create ~name:(Printf.sprintf "heap:%d:0x%x" proc.Proc.pid old) ~max_size:len ()
      in
      Segment.resize seg len;
      As.map proc.Proc.space ~base:old ~len ~seg ~kind:Vm_object.Anonymous
        ~prot:Prot.Read_write ~share:As.Private ~label:"heap" ();
      proc.Proc.brk <- old + len;
      ignore t;
      Ok old
    end
  end
  else Ok old

(* Failed syscalls answer with a negative errno in $v0 — the Linux
   convention — so compiled programs observe and recover from ENOENT,
   EBADF, ENOSPC, … instead of dying inside the kernel. *)
let set_errno cpu e = Cpu.set_reg cpu Reg.v0 (Codec.mask32 (-Errno.code e))

let set_result cpu = function
  | Ok v -> Cpu.set_reg cpu Reg.v0 v
  | Error e -> set_errno cpu e

(* Read a syscall's string argument; an unterminated string answers the
   syscall with -EFAULT rather than killing the process (or, worse, the
   simulator). *)
let isa_cstring t proc addr =
  match isa_access t proc (fun () -> As.read_cstring proc.Proc.space addr) with
  | s -> Ok s
  | exception As.Cstring_unterminated _ -> Error Errno.EFAULT

let dispatch t proc cpu =
  let v0 = Cpu.reg cpu Reg.v0 in
  let a0 = Cpu.reg cpu Reg.a0 in
  let a1 = Cpu.reg cpu Reg.a1 in
  let a2 = Cpu.reg cpu Reg.a2 in
  if v0 = Sysno.exit then raise (Isa_exit (Codec.sext32 a0))
  else if v0 = Sysno.fork then begin
    let child = fork_isa t proc in
    (match child.Proc.body with
    | Proc.Isa child_cpu -> Cpu.set_reg child_cpu Reg.v0 0
    | Proc.Native _ -> assert false);
    Cpu.set_reg cpu Reg.v0 child.Proc.pid
  end
  else if v0 = Sysno.wait then begin
    if children t proc.Proc.pid = [] then set_errno cpu Errno.ECHILD
    else
      match reap t proc with
      | Some (pid, code) ->
        Cpu.set_reg cpu Reg.v0 pid;
        Cpu.set_reg cpu Reg.v1 code
      | None ->
        (* Block and retry the syscall: rewind past the trap. *)
        cpu.Cpu.pc <- cpu.Cpu.pc - 4;
        raise
          (Isa_blocked
             {
               cond = (fun () -> List.exists Proc.is_zombie (children t proc.Proc.pid));
               why = "wait: a child to exit";
             })
  end
  else if v0 = Sysno.getpid then Cpu.set_reg cpu Reg.v0 proc.Proc.pid
  else if v0 = Sysno.yield then raise Isa_yield
  else if v0 = Sysno.sbrk then set_result cpu (sbrk t proc a0)
  else if v0 = Sysno.print_int then
    Buffer.add_string t.console_buf (string_of_int (Codec.sext32 a0))
  else if v0 = Sysno.print_str then begin
    match isa_cstring t proc a0 with
    | Ok s -> Buffer.add_string t.console_buf s
    | Error e -> set_errno cpu e
  end
  else if v0 = Sysno.path_to_addr then begin
    match isa_cstring t proc a0 with
    | Ok path -> set_result cpu (sys_path_to_addr_r t proc path)
    | Error e -> set_errno cpu e
  end
  else if v0 = Sysno.addr_to_path then begin
    match sys_addr_to_path_r t proc a0 with
    | Ok path ->
      let truncated = String.sub path 0 (min (String.length path) (max 0 (a2 - 1))) in
      isa_access t proc (fun () ->
          String.iteri
            (fun i c -> As.store_u8 proc.Proc.space (a1 + i) (Char.code c))
            truncated;
          As.store_u8 proc.Proc.space (a1 + String.length truncated) 0);
      Cpu.set_reg cpu Reg.v0 (String.length truncated)
    | Error e -> set_errno cpu e
  end
  else if v0 = Sysno.open_ then begin
    match isa_cstring t proc a0 with
    | Ok path ->
      set_result cpu
        (sys_open_r t proc
           ~create:(a1 land Sysno.o_create <> 0)
           ~trunc:(a1 land Sysno.o_trunc <> 0)
           path)
    | Error e -> set_errno cpu e
  end
  else if v0 = Sysno.close then
    set_result cpu (Result.map (fun () -> 0) (sys_close_r t proc a0))
  else if v0 = Sysno.read then begin
    match sys_read_r t proc a0 (Codec.sext32 a2) with
    | Ok b ->
      isa_access t proc (fun () ->
          Bytes.iteri (fun i c -> As.store_u8 proc.Proc.space (a1 + i) (Char.code c)) b);
      Cpu.set_reg cpu Reg.v0 (Bytes.length b)
    | Error e -> set_errno cpu e
  end
  else if v0 = Sysno.write then begin
    let len = Codec.sext32 a2 in
    if len < 0 then set_errno cpu Errno.EINVAL
    else begin
      let b =
        isa_access t proc (fun () ->
            Bytes.init len (fun i -> Char.chr (As.load_u8 proc.Proc.space (a1 + i))))
      in
      set_result cpu (sys_write_r t proc a0 b)
    end
  end
  else if v0 = Sysno.lseek then set_result cpu (sys_lseek_r t proc a0 (Codec.sext32 a1))
  else
    match Hashtbl.find_opt t.ext_syscalls v0 with
    | Some f -> f t proc cpu
    | None ->
      (* Unknown numbers are a recoverable error, not a kill: the one
         deliberate hole programs can probe. *)
      set_errno cpu Errno.ENOSYS

(* --- the trap pipeline ------------------------------------------------------------ *)

let quantum = 4000

(* Every exit from user mode arrives here as a Trap.t.  [`Stop] ends the
   process's quantum (blocked, yielded, exited, or a fault that must be
   retried from the top); [`Continue] resumes the interrupted burst.

   Kernel-internal fault resolution (pager + COW) runs {e outside} the
   kernel lock: the address space's range locks provide all the
   exclusion page resolution needs, so concurrent quanta faulting on
   disjoint ranges never serialise here.  The one exception is a
   bounded RAM budget: eviction can push dirty pages through the shared
   Fs journal, so that path takes the kernel lock ([~locked] marks
   callers already holding it). *)
let internal_fault ?(locked = false) ?(ticked = true) t proc fault =
  let pager () =
    if t.par && (not locked) && !Vm_object.ram_pages <> None then
      with_kernel_lock t (fun () -> pager_fault proc fault)
    else pager_fault proc fault
  in
  if pager () then begin
    (* Like COW, resume the burst with no fuel consumed.  The tick
       rollback is asymmetric because [Cpu.step] bills [instructions]
       {e between} fetch and execute: a fetch fault raises before the
       tick, a load/store fault after, so only the latter double-counts
       on retry.  [~ticked:false] marks the raw-syscall path, where no
       interpreter tick happened at all. *)
    if ticked && fault.f_access <> Prot.Exec then
      (Stats.cur ()).instructions <- (Stats.cur ()).instructions - 1;
    true
  end
  else if cow_fault proc fault then begin
    (* The faulting store never completed and consumed no fuel; resume
       the burst so the quantum (and [context_switches]) are exactly
       what they would be without COW.  The store's [instructions] tick
       already happened in [Cpu.step], so roll it back — the retried
       store counts once, keeping the cost model COW-blind. *)
    (Stats.cur ()).instructions <- (Stats.cur ()).instructions - 1;
    true
  end
  else false

(* SIGSEGV delivery for a fault the kernel could not resolve
   internally.  In parallel mode the caller holds the kernel lock. *)
let deliver_fault t proc fault =
  match deliver_segv t proc fault with
  | Resolved -> `Stop (* pc still points at the faulting instruction *)
  | Retry_when cond ->
    proc.Proc.state <- Proc.Blocked { cond; why = pp_fault fault };
    `Stop
  | Unhandled ->
    kill t proc ~reason:(pp_fault fault);
    `Stop

let handle_trap t proc cpu trap =
  match trap with
  | Trap.Halt code ->
    with_kernel_lock t (fun () -> exit_proc t proc code);
    `Stop
  | Trap.Illegal _ ->
    (* SIGILL: the process dies, the simulator does not. *)
    with_kernel_lock t (fun () -> kill t proc ~reason:(Format.asprintf "%a" Trap.pp trap));
    `Stop
  | Trap.Fault fault ->
    if internal_fault t proc fault then `Continue
    else with_kernel_lock t (fun () -> deliver_fault t proc fault)
  | Trap.Syscall ->
    with_kernel_lock t (fun () ->
        match dispatch t proc cpu with
        | () -> `Continue
        | exception Isa_exit code ->
          exit_proc t proc code;
          `Stop
        | exception Isa_yield -> `Stop
        | exception Isa_blocked { cond; why } ->
          proc.Proc.state <- Proc.Blocked { cond; why };
          `Stop
        | exception Isa_fatal msg ->
          kill t proc ~reason:msg;
          `Stop
        | exception Os_error msg ->
          kill t proc ~reason:msg;
          `Stop
        | exception (As.Fault _ as e) ->
          (* A registered syscall touched user memory raw; same
             treatment as a fault trap from the interpreter — except no
             instruction ticked, so the pager branch must not roll one
             back (and the kernel lock is already held). *)
          let fault = Option.get (fault_of_exn e) in
          if internal_fault ~locked:true ~ticked:false t proc fault then `Continue
          else deliver_fault t proc fault)

let run_isa_quantum t proc cpu =
  let rec burst fuel =
    if fuel > 0 then
      match Cpu.run_trap ~fuel cpu proc.Proc.space with
      | Cpu.Out_of_fuel, _ -> ()
      | Cpu.Trapped trap, left -> (
        match handle_trap t proc cpu trap with
        | `Continue -> burst left
        | `Stop -> ())
  in
  try burst quantum with
  | Cpu.Cpu_error { pc; msg } ->
    kill t proc ~reason:(Printf.sprintf "cpu error at 0x%08x: %s" pc msg)

let resume_native t proc n =
  let handler =
    {
      Effect.Deep.retc = (fun code -> Proc.Finished code);
      exnc =
        (fun e ->
          match e with Proc.Exit_proc code -> Proc.Finished code | e -> Proc.Crashed e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Proc.Yield ->
            Some
              (fun (k : (a, Proc.outcome) Effect.Deep.continuation) ->
                n.Proc.nstate <- Proc.Suspended k;
                Proc.Paused)
          | Proc.Wait_until { cond; why } ->
            Some
              (fun (k : (a, Proc.outcome) Effect.Deep.continuation) ->
                n.Proc.nstate <- Proc.Suspended k;
                proc.Proc.state <- Proc.Blocked { cond; why };
                Proc.Paused)
          | _ -> None);
    }
  in
  let outcome =
    match n.Proc.nstate with
    | Proc.Not_started f ->
      n.Proc.nstate <- Proc.Done;
      Effect.Deep.match_with f () handler
    | Proc.Suspended k ->
      n.Proc.nstate <- Proc.Done;
      Effect.Deep.continue k ()
    | Proc.Done -> Proc.Finished 0
  in
  match outcome with
  | Proc.Finished code -> exit_proc t proc code
  | Proc.Crashed (Proc.Killed { reason; _ }) -> kill t proc ~reason
  | Proc.Crashed e -> kill t proc ~reason:("uncaught exception: " ^ Printexc.to_string e)
  | Proc.Paused -> ()

let run_one t proc =
  match proc.Proc.body with
  | Proc.Isa cpu -> run_isa_quantum t proc cpu
  | Proc.Native n -> resume_native t proc n

let step t = Sched.step t.sched ~run_one:(run_one t)

let blocked_processes t = Sched.blocked_nondaemons t.sched

let run ?max_ticks t =
  Sched.run ?max_ticks t.sched ~run_one:(run_one t) ~on_budget:(fun () ->
      raise (Os_error "Kernel.run: tick budget exhausted"))

(* --- network delivery ------------------------------------------------------------- *)

(* Direct enqueue onto a machine-local message queue, for deliveries
   that originate outside any process — the cluster's network pump.
   No carrier process is spawned and nothing is billed here: the
   {e sending} machine accounts [messages_sent]/[bytes_copied] when the
   enqueue succeeds, and a full queue answers [EAGAIN] so the sender
   holds the message instead of dropping it. *)
let enqueue_net t name payload = Ipc.msg_enqueue t.ipc name payload

(* --- parallel scheduling ---------------------------------------------------------- *)

(* One parallel pass: ISA quanta spread over the pool's domains (proc
   [i] of the runnable ISA list on worker [i mod domains]), natives
   afterwards on the calling domain — their effect continuations must
   not migrate, and running them with no ISA quantum in flight means
   the plain (unlocked) syscall entry points they call stay safe.  The
   scheduler bills every quantum up front on the calling domain, so
   tick and context-switch totals are independent of the partition. *)
let run_many t pool ps =
  let isa, native =
    List.partition
      (fun p -> match p.Proc.body with Proc.Isa _ -> true | Proc.Native _ -> false)
      ps
  in
  (match isa with
  | [] -> ()
  | [ p ] -> run_one t p (* one quantum: no need to arm the lock *)
  | _ ->
    let isa = Array.of_list isa in
    let n = Domain_pool.domains pool in
    t.par <- true;
    Fun.protect
      ~finally:(fun () -> t.par <- false)
      (fun () ->
        Domain_pool.round pool (fun w ->
            Array.iteri (fun i p -> if i mod n = w then run_one t p) isa)));
  List.iter (fun p -> if p.Proc.state = Proc.Runnable then run_one t p) native

let step_par t ~pool = Sched.step_par t.sched ~run_many:(run_many t pool)

let run_par ?(max_ticks = 2_000_000) t ~pool =
  let deadline = ticks t + max_ticks in
  let rec loop () =
    if ticks t > deadline then raise (Os_error "Kernel.run: tick budget exhausted")
    else
      match step_par t ~pool with
      | `Progress -> loop ()
      | `Done -> ()
      | `Idle -> raise (Deadlock (blocked_processes t))
  in
  loop ()
